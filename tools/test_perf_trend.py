"""Tests for tools/perf_trend.py (run via pytest or unittest).

Covers the CI contract: perf regressions and new benchmarks warn but pass
(warn-only perf gate), while structural problems -- malformed entries,
empty files, baseline benchmarks that were not measured -- exit nonzero.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import perf_trend  # noqa: E402


def write_json(directory, name, payload, raw=None):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        if raw is not None:
            f.write(raw)
        else:
            json.dump(payload, f)
    return path


def rows(**named):
    return [{"name": n, "ns_per_iter": v} for n, v in named.items()]


class PerfTrendTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def run_main(self, base_rows, cur_rows, tolerance=0.35):
        base = write_json(self.dir, "base.json", base_rows)
        cur = write_json(self.dir, "cur.json", cur_rows)
        out = io.StringIO()
        with redirect_stdout(out):
            code = perf_trend.main(["--baseline", base, "--current", cur,
                                    "--tolerance", str(tolerance)])
        return code, out.getvalue()

    def test_improvement_passes_without_warning(self):
        code, out = self.run_main(rows(gemm=100.0), rows(gemm=50.0))
        self.assertEqual(code, 0)
        self.assertNotIn("::warning::", out)
        self.assertNotIn("::error::", out)

    def test_within_tolerance_passes(self):
        code, out = self.run_main(rows(gemm=100.0), rows(gemm=120.0))
        self.assertEqual(code, 0)
        self.assertNotIn("::warning::", out)

    def test_regression_warns_but_passes(self):
        # Perf is warn-only: shared runners are too noisy for a hard gate.
        code, out = self.run_main(rows(gemm=100.0), rows(gemm=200.0))
        self.assertEqual(code, 0)
        self.assertIn("::warning::", out)
        self.assertIn("SLOWER", out)

    def test_new_benchmark_warns_but_passes(self):
        code, out = self.run_main(rows(gemm=100.0),
                                  rows(gemm=100.0, softmax=10.0))
        self.assertEqual(code, 0)
        self.assertIn("not in the committed baseline", out)

    def test_missing_benchmark_fails(self):
        # A baseline benchmark that was not measured is structural: the
        # bench binary silently dropped a case.
        code, out = self.run_main(rows(gemm=100.0, softmax=10.0),
                                  rows(gemm=100.0))
        self.assertEqual(code, 1)
        self.assertIn("::error::", out)
        self.assertIn("was not measured", out)

    def test_malformed_row_fails(self):
        code, _ = self.run_main(rows(gemm=100.0),
                                [{"name": "gemm"}])  # no ns_per_iter
        self.assertEqual(code, 1)

    def test_non_numeric_time_fails(self):
        code, _ = self.run_main(
            rows(gemm=100.0), [{"name": "gemm", "ns_per_iter": "fast"}])
        self.assertEqual(code, 1)

    def test_empty_baseline_fails(self):
        code, _ = self.run_main([], rows(gemm=100.0))
        self.assertEqual(code, 1)

    def test_non_list_payload_fails(self):
        base = write_json(self.dir, "base.json", rows(gemm=100.0))
        cur = write_json(self.dir, "cur.json", None,
                         raw='{"gemm": 100.0}')
        code = perf_trend.main(["--baseline", base, "--current", cur])
        self.assertEqual(code, 1)

    def test_unparsable_json_fails(self):
        base = write_json(self.dir, "base.json", rows(gemm=100.0))
        cur = write_json(self.dir, "cur.json", None, raw="not json")
        code = perf_trend.main(["--baseline", base, "--current", cur])
        self.assertEqual(code, 1)

    def test_missing_file_fails(self):
        base = write_json(self.dir, "base.json", rows(gemm=100.0))
        code = perf_trend.main(
            ["--baseline", base,
             "--current", os.path.join(self.dir, "absent.json")])
        self.assertEqual(code, 1)

    def test_committed_baseline_is_loadable(self):
        # The baseline shipped in the repo must itself satisfy the
        # structural contract this tool enforces.
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        baseline = os.path.join(repo_root, "BENCH_ops.json")
        loaded = perf_trend.load(baseline)
        self.assertGreater(len(loaded), 0)


if __name__ == "__main__":
    unittest.main()
