#!/usr/bin/env python3
"""Diff a fresh micro-kernel bench run against the committed perf baseline.

Usage:
    ./build/micro_cpu_kernels --json=BENCH_new.json
    python3 tools/perf_trend.py --baseline BENCH_ops.json \
        --current BENCH_new.json [--tolerance 0.35]

Compares ns_per_iter per benchmark name and prints a trend table. Rows
outside the tolerance band are reported as GitHub Actions `::warning::`
annotations (warn-only: shared CI runners are far too noisy for a hard
gate; the committed baseline is regenerated deliberately, in the PR that
changes performance). The exit code is nonzero for *structural* problems:
missing or unparsable files, malformed or empty entry lists, and baseline
benchmarks that were not measured at all (a benchmark that disappears
from the bench binary must be removed from the baseline deliberately,
not silently skipped). Slow rows never fail the run.
"""

import argparse
import json
import sys


class StructuralError(Exception):
    """A problem with the inputs themselves (not a perf regression)."""


def load(path):
    """Parses a bench JSON file into {name: ns_per_iter}.

    Raises StructuralError on unreadable files, non-list payloads, empty
    payloads, and malformed rows -- every entry must carry a string name
    and a numeric ns_per_iter.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise StructuralError(f"cannot read {path}: {e}") from e
    if not isinstance(rows, list):
        raise StructuralError(f"{path}: expected a JSON list of benchmark "
                              f"rows, got {type(rows).__name__}")
    if not rows:
        raise StructuralError(f"{path}: no benchmark entries")
    out = {}
    for row in rows:
        try:
            name = row["name"]
            if not isinstance(name, str):
                raise TypeError("name must be a string")
            out[name] = float(row["ns_per_iter"])
        except (KeyError, TypeError, ValueError) as e:
            raise StructuralError(
                f"malformed row in {path}: {row!r} ({e})") from e
    return out


def compare(base, cur, tolerance):
    """Prints the trend table; returns (warnings, structural_errors)."""
    width = max((len(n) for n in base | cur), default=4)
    print(f"{'benchmark':<{width}}  {'baseline ns':>14}  {'current ns':>14}"
          f"  {'ratio':>7}")
    warnings = 0
    errors = 0
    for name in sorted(base | cur):
        b, c = base.get(name), cur.get(name)
        if b is None:
            print(f"{name:<{width}}  {'--':>14}  {c:>14.0f}      new")
            print(f"::warning::perf-trend: {name} is not in the committed "
                  f"baseline; regenerate BENCH_ops.json")
            warnings += 1
            continue
        if c is None:
            print(f"{name:<{width}}  {b:>14.0f}  {'--':>14}  missing")
            print(f"::error::perf-trend: {name} is in the baseline but was "
                  f"not measured; remove it from BENCH_ops.json if it was "
                  f"retired deliberately")
            errors += 1
            continue
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  SLOWER"
            print(f"::warning::perf-trend: {name} is {ratio:.2f}x the "
                  f"baseline ({b:.0f} -> {c:.0f} ns/iter)")
            warnings += 1
        print(f"{name:<{width}}  {b:>14.0f}  {c:>14.0f}  {ratio:>7.2f}{flag}")
    print(f"perf_trend: {warnings} warning(s), {errors} structural "
          f"error(s), tolerance +{tolerance:.0%} (slow rows warn-only)")
    return warnings, errors


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (BENCH_ops.json)")
    ap.add_argument("--current", required=True,
                    help="freshly generated JSON from --json")
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="allowed fractional slowdown before warning "
                         "(default 0.35 = 35%%)")
    args = ap.parse_args(argv)

    try:
        base = load(args.baseline)
        cur = load(args.current)
    except StructuralError as e:
        print(f"perf_trend: {e}", file=sys.stderr)
        return 1

    _, errors = compare(base, cur, args.tolerance)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
