#!/usr/bin/env python3
"""Diff a fresh micro-kernel bench run against the committed perf baseline.

Usage:
    ./build/micro_cpu_kernels --json=BENCH_new.json
    python3 tools/perf_trend.py --baseline BENCH_ops.json \
        --current BENCH_new.json [--tolerance 0.35]

Compares ns_per_iter per benchmark name and prints a trend table. Rows
outside the tolerance band are reported as GitHub Actions `::warning::`
annotations (warn-only: shared CI runners are far too noisy for a hard
gate; the committed baseline is regenerated deliberately, in the PR that
changes performance). The exit code is nonzero only for structural
problems -- missing files or unparsable JSON -- never for slow rows.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    out = {}
    for row in rows:
        try:
            out[row["name"]] = float(row["ns_per_iter"])
        except (KeyError, TypeError, ValueError) as e:
            print(f"perf_trend: malformed row in {path}: {row!r} ({e})",
                  file=sys.stderr)
            sys.exit(1)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (BENCH_ops.json)")
    ap.add_argument("--current", required=True,
                    help="freshly generated JSON from --json")
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="allowed fractional slowdown before warning "
                         "(default 0.35 = 35%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    width = max((len(n) for n in base | cur), default=4)
    print(f"{'benchmark':<{width}}  {'baseline ns':>14}  {'current ns':>14}"
          f"  {'ratio':>7}")
    warnings = 0
    for name in sorted(base | cur):
        b, c = base.get(name), cur.get(name)
        if b is None:
            print(f"{name:<{width}}  {'--':>14}  {c:>14.0f}      new")
            print(f"::warning::perf-trend: {name} is not in the committed "
                  f"baseline; regenerate BENCH_ops.json")
            warnings += 1
            continue
        if c is None:
            print(f"{name:<{width}}  {b:>14.0f}  {'--':>14}  missing")
            print(f"::warning::perf-trend: {name} is in the baseline but "
                  f"was not measured")
            warnings += 1
            continue
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.tolerance:
            flag = "  SLOWER"
            print(f"::warning::perf-trend: {name} is {ratio:.2f}x the "
                  f"baseline ({b:.0f} -> {c:.0f} ns/iter)")
            warnings += 1
        print(f"{name:<{width}}  {b:>14.0f}  {c:>14.0f}  {ratio:>7.2f}{flag}")
    print(f"perf_trend: {warnings} warning(s), tolerance "
          f"+{args.tolerance:.0%} (warn-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
