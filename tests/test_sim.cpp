#include "sim/kernel_model.hpp"

#include <gtest/gtest.h>

#include "sim/calibration.hpp"

namespace xflow::sim {
namespace {

class GpuModelTest : public ::testing::Test {
 protected:
  GpuModel model_{DeviceSpec::V100()};
};

TEST_F(GpuModelTest, LargeGemmReachesPaperUtilization) {
  // Q/K/V fused projection: M=3072, N=4096, K=1024 -> paper: 56-62% peak.
  GemmExtents e{.m = 3072, .n = 4096, .k = 1024, .batch = 1};
  const auto t = model_.Contraction(e, {.algorithm = 0, .layout_factor = 1.0});
  EXPECT_GT(t.pct_peak, 50.0);
  EXPECT_LT(t.pct_peak, 70.0);
  EXPECT_FALSE(t.memory_bound);
}

TEST_F(GpuModelTest, ShallowBatchedGemmUnderutilizesTensorCores) {
  // QKT: per-head M=N=512, K=64, batch=128 -> paper: 16-27% peak.
  GemmExtents e{.m = 512, .n = 512, .k = 64, .batch = 128};
  const auto t = model_.Contraction(e, {.algorithm = 0, .layout_factor = 1.0});
  EXPECT_GT(t.pct_peak, 12.0);
  EXPECT_LT(t.pct_peak, 30.0);
}

TEST_F(GpuModelTest, DeepContractionsBeatShallowOnes) {
  // Property: utilization increases monotonically with K depth.
  double prev = 0;
  for (std::int64_t k : {32, 64, 128, 512, 1024, 4096}) {
    GemmExtents e{.m = 1024, .n = 1024, .k = k, .batch = 1};
    const double u = model_.TensorCoreUtilization(e);
    EXPECT_GT(u, prev) << "K=" << k;
    prev = u;
  }
}

TEST_F(GpuModelTest, TensorCoresBeatFp16UnitsOnLargeGemms) {
  GemmExtents e{.m = 4096, .n = 4096, .k = 1024, .batch = 1};
  const auto tc = model_.Contraction(e, {.tensor_cores = true, .algorithm = 0});
  const auto fp =
      model_.Contraction(e, {.tensor_cores = false, .algorithm = 0});
  EXPECT_LT(tc.time_us, fp.time_us / 2.0);
}

TEST_F(GpuModelTest, NarrowGemmsCloseGapToFp16Units) {
  // Paper Fig. 4: when one dim is 64 tensor cores barely beat the FPUs.
  GemmExtents e{.m = 512, .n = 64, .k = 512, .batch = 128};
  const auto tc = model_.Contraction(e, {.tensor_cores = true, .algorithm = 0});
  const auto fp =
      model_.Contraction(e, {.tensor_cores = false, .algorithm = 0});
  EXPECT_LT(tc.time_us, fp.time_us);          // still ahead...
  EXPECT_GT(tc.time_us, fp.time_us * 0.35);   // ...but much less than 3x
}

TEST_F(GpuModelTest, HeuristicAlgorithmIsSometimesSuboptimal) {
  // Sec. V-A: the built-in heuristic was up to 14.24% worse than the best.
  int suboptimal = 0;
  double worst_gap = 0;
  for (std::int64_t m : {512, 1024, 2048, 4096}) {
    for (std::int64_t k : {64, 512, 1024, 4096}) {
      GemmExtents e{.m = m, .n = 1024, .k = k, .batch = 1};
      const int chosen = model_.HeuristicAlgorithm(e);
      double best = 0;
      for (int a = 0; a < kNumGemmAlgorithms; ++a) {
        best = std::max(best, model_.AlgorithmFactor(e, a));
      }
      const double gap = 1.0 - model_.AlgorithmFactor(e, chosen) / best;
      worst_gap = std::max(worst_gap, gap);
      suboptimal += gap > 1e-12;
    }
  }
  EXPECT_GT(suboptimal, 0);
  EXPECT_LT(worst_gap, 0.16);  // bounded like the paper's 14.24%
}

TEST_F(GpuModelTest, SomeAlgorithmsDoubleFlop) {
  // Sec. VI-C: some library GEMM algorithms perform 2x the necessary flop.
  int doubled = 0;
  for (std::int64_t m : {512, 1024, 2048, 3072, 4096}) {
    for (int a = 0; a < kNumGemmAlgorithms; ++a) {
      GemmExtents e{.m = m, .n = 1024, .k = 1024, .batch = 1};
      doubled += model_.AlgorithmDoublesFlop(e, a);
    }
  }
  EXPECT_GT(doubled, 0);
  EXPECT_LT(doubled, 12);  // pathological, not the norm
}

TEST_F(GpuModelTest, MemoryBoundKernelScalesWithBytes) {
  MemoryConfig cfg{.bandwidth_frac = 0.8};
  const auto small = model_.MemoryBoundKernel(1e6, 1e6, 1e5, cfg);
  const auto big = model_.MemoryBoundKernel(1e8, 1e8, 1e7, cfg);
  EXPECT_GT(big.time_us, 25 * small.time_us);  // sublinear only via launch cost
  EXPECT_TRUE(big.memory_bound);
}

TEST_F(GpuModelTest, MueHundredWhenMovingExactlyTheMinimumAtPeak) {
  MemoryConfig cfg{.bandwidth_frac = 1.0, .kernel_launches = 0};
  // kernel_launches=0 removes launch overhead; frac clamps to 0.92.
  const auto t = model_.MemoryBoundKernel(1e9, 1e9, 0, cfg);
  EXPECT_NEAR(t.mue, 92.0, 1.0);
}

TEST_F(GpuModelTest, ExtraTrafficLowersMue) {
  MemoryConfig cfg{.bandwidth_frac = 0.9};
  const auto lean = model_.MemoryBoundKernel(1e8, 1e8, 0, cfg);
  const auto fat = model_.MemoryBoundKernel(1e8, 4e8, 0, cfg);
  EXPECT_GT(lean.mue, 2.5 * fat.mue);
}

TEST_F(GpuModelTest, MovingLessThanMinimumIsRejected) {
  EXPECT_THROW(model_.MemoryBoundKernel(1e6, 1e5, 0, {}), InvalidArgument);
}

TEST_F(GpuModelTest, ContractionMueStaysUnderFiftyPercent)
{
  // Paper Sec. IV-B: attained MUE for tensor contractions is consistently
  // under 50% -- they are compute-bound, not bandwidth-starved.
  for (std::int64_t m : {1024, 3072, 4096}) {
    GemmExtents e{.m = m, .n = 4096, .k = 1024, .batch = 1};
    const auto t = model_.Contraction(e, {.algorithm = 0});
    EXPECT_LT(t.mue, 50.0);
    EXPECT_FALSE(t.memory_bound);
  }
}

TEST(Calibration, TunedKernelsCoverThePaperSet) {
  for (const char* name : {"AIB", "SM", "DRLN", "BRD", "BDRLN", "BSB",
                           "BLNRD", "BDRB", "EBSB", "BS", "BEI", "BAOB",
                           "BAIB"}) {
    const double f = TunedKernelBandwidthFrac(name);
    EXPECT_GT(f, 0.0) << name;
    EXPECT_LE(f, 0.92) << name;
  }
  EXPECT_THROW(TunedKernelBandwidthFrac("NOPE"), InvalidArgument);
}

TEST(Calibration, ReductionKernelsAreSlowerThanStreamingKernels) {
  // Physical sanity: per-column reductions achieve far less bandwidth.
  EXPECT_LT(TunedKernelBandwidthFrac("BSB"), TunedKernelBandwidthFrac("BEI"));
  EXPECT_LT(FrameworkBandwidthFrac(graph::OpKind::kLayerNormDW),
            FrameworkBandwidthFrac(graph::OpKind::kDropout));
}

TEST(Calibration, FrameworkKernelsNeverBeatTunedOnes) {
  using graph::OpKind;
  EXPECT_LE(FrameworkBandwidthFrac(OpKind::kBias),
            TunedKernelBandwidthFrac("AIB"));
  EXPECT_LE(FrameworkBandwidthFrac(OpKind::kScaledSoftmax),
            TunedKernelBandwidthFrac("SM"));
  EXPECT_LE(FrameworkBandwidthFrac(OpKind::kLayerNormDW),
            TunedKernelBandwidthFrac("BSB"));
}

}  // namespace
}  // namespace xflow::sim
