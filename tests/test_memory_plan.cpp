#include "graph/memory_plan.hpp"

#include <gtest/gtest.h>

#include "common/half.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "transformer/arena.hpp"

namespace xflow::graph {
namespace {

int OpIndex(const DataflowGraph& g, const std::string& name) {
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    if (g.ops()[i].name == name) return static_cast<int>(i);
  }
  ADD_FAILURE() << "no op named " << name;
  return -1;
}

PlanOptions HalfOptions() {
  return transformer::EncoderPlanOptions<Half>();
}

TEST(MemoryPlan, LivenessHonorsSavedOutputs) {
  const auto dims = ModelDims::Tiny();
  // Forward + backward: saved tensors live exactly until the backward op
  // that consumes them, then their bytes are reusable.
  const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  const auto plan = PlanMemory(g, HalfOptions());
  EXPECT_EQ(plan.at("attn_mask").first_use, OpIndex(g, "scaled softmax"));
  EXPECT_EQ(plan.at("attn_mask").last_use, OpIndex(g, "scaled softmax dX"));
  EXPECT_EQ(plan.at("softmax_saved").last_use,
            OpIndex(g, "scaled softmax dX"));
  // Consumers inside a fused span keep their operands live to the span's
  // end: "layernorm 1 dX" fuses with "attn dropout dX" (BLNRD), "ff
  // dropout dX" sits inside BDRB which runs through "bias 1 dW".
  EXPECT_EQ(plan.at("ln1_mean").last_use, OpIndex(g, "attn dropout dX"));
  EXPECT_EQ(plan.at("ff_drop_mask").last_use, OpIndex(g, "bias 1 dW"));
  // Pure forward temporaries die immediately...
  EXPECT_EQ(plan.at("beta").last_use, OpIndex(g, "scaled softmax"));
  // ...and tensors nothing consumes (the output) live to the end.
  const int last_op = static_cast<int>(g.ops().size()) - 1;
  EXPECT_EQ(plan.at("y").last_use, last_op);
  EXPECT_EQ(plan.at("d_x").last_use, last_op);

  // In a forward-only graph the saved outputs have no in-graph consumer:
  // they must survive the whole step for a later backward.
  const auto fwd = BuildEncoder(dims, AlgebraicFusion::kQKV, false);
  const auto fwd_plan = PlanMemory(fwd, HalfOptions());
  const int fwd_last = static_cast<int>(fwd.ops().size()) - 1;
  EXPECT_EQ(fwd_plan.at("attn_mask").last_use, fwd_last);
  EXPECT_EQ(fwd_plan.at("softmax_saved").last_use, fwd_last);
}

TEST(MemoryPlan, InputsArePinnedAndWeightsExcluded) {
  const auto g = BuildEncoder(ModelDims::Tiny(), AlgebraicFusion::kQKV, true);
  const auto plan = PlanMemory(g, HalfOptions());
  EXPECT_TRUE(plan.at("x").pinned);
  EXPECT_EQ(plan.at("x").first_use, -1);
  EXPECT_EQ(plan.at("x").last_use, static_cast<int>(g.ops().size()) - 1);
  // d_y is passed to Backward by reference, never staged in the arena.
  EXPECT_FALSE(plan.Contains("d_y"));
  EXPECT_FALSE(plan.Contains("w_qkv"));
  EXPECT_FALSE(plan.Contains("d_w_qkv"));
  EXPECT_FALSE(plan.Contains("ln1_w"));
}

TEST(MemoryPlan, OverlappingLifetimesNeverShareBytes) {
  const auto g =
      BuildEncoder(ModelDims::BertBase(), AlgebraicFusion::kQKV, true);
  const auto plan = PlanMemory(g, HalfOptions());
  // Group members share their group block by construction; compare units
  // by skipping pairs inside the same group (their sub-ranges are
  // disjoint by packing, checked below).
  const auto& ps = plan.placements();
  for (auto a = ps.begin(); a != ps.end(); ++a) {
    for (auto b = std::next(a); b != ps.end(); ++b) {
      const auto& pa = a->second;
      const auto& pb = b->second;
      const bool alive_together =
          pa.first_use <= pb.last_use && pb.first_use <= pa.last_use;
      if (!alive_together) continue;
      const bool disjoint = pa.offset + pa.bytes <= pb.offset ||
                            pb.offset + pb.bytes <= pa.offset;
      const bool nested =  // a group alias contains its members
          (pa.offset <= pb.offset &&
           pb.offset + pb.bytes <= pa.offset + pa.bytes) ||
          (pb.offset <= pa.offset &&
           pa.offset + pa.bytes <= pb.offset + pb.bytes);
      EXPECT_TRUE(disjoint || nested)
          << pa.name << " [" << pa.offset << ", " << pa.offset + pa.bytes
          << ") overlaps " << pb.name << " [" << pb.offset << ", "
          << pb.offset + pb.bytes << ")";
    }
  }
}

TEST(MemoryPlan, GroupMembersArePackedContiguously) {
  const auto g = BuildEncoder(ModelDims::Tiny(), AlgebraicFusion::kQKV, true);
  const auto plan = PlanMemory(g, HalfOptions());
  const auto& stack = plan.at("d_qkv_proj");
  const auto& dq = plan.at("d_qq");
  const auto& dk = plan.at("d_kk");
  const auto& dv = plan.at("d_vv");
  EXPECT_EQ(dq.offset, stack.offset);
  EXPECT_EQ(dk.offset, dq.offset + dq.bytes);
  EXPECT_EQ(dv.offset, dk.offset + dk.bytes);
  EXPECT_EQ(stack.bytes, dq.bytes + dk.bytes + dv.bytes);
  const auto& proj = plan.at("qkv_proj");
  EXPECT_EQ(plan.at("qq").offset, proj.offset);
  EXPECT_EQ(plan.at("kk").offset, proj.offset + plan.at("qq").bytes);
}

TEST(MemoryPlan, FusedKernelInputsNeverAliasOutputs) {
  // A fused kernel reads its span's inputs while writing its outputs;
  // with per-op liveness first-fit could recycle an input's bytes for an
  // output of the same kernel. The fused_spans option must prevent any
  // such overlap, at every configuration we plan.
  for (const auto dims : {ModelDims::Tiny(), ModelDims::BertBase()}) {
    const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
    const auto opts = HalfOptions();
    const auto plan = PlanMemory(g, opts);
    for (const auto& span : opts.fused_spans) {
      std::vector<std::string> reads, writes;
      for (const auto& op_name : span) {
        const auto& op = g.op(op_name);
        for (const auto& in : op.inputs) reads.push_back(in);
        for (const auto& out : op.outputs) writes.push_back(out);
      }
      for (const auto& r : reads) {
        if (!plan.Contains(r)) continue;  // weights / excluded inputs
        const auto& pr = plan.at(r);
        for (const auto& w : writes) {
          if (!plan.Contains(w) || w == r) continue;
          const auto& pw = plan.at(w);
          const bool disjoint = pr.offset + pr.bytes <= pw.offset ||
                                pw.offset + pw.bytes <= pr.offset;
          EXPECT_TRUE(disjoint)
              << "fused kernel input " << r << " shares bytes with output "
              << w;
        }
      }
    }
  }
}

TEST(MemoryPlan, PlannedPeakWellBelowNaiveOnBertBase) {
  // The acceptance bar: >= 30% peak activation memory reduction vs the
  // naive sum-of-tensors on the BERT-base-shaped encoder (fp16
  // activations, fp32 layernorm statistics), forward + backward.
  const auto g =
      BuildEncoder(ModelDims::BertBase(), AlgebraicFusion::kQKV, true);
  const auto plan = PlanMemory(g, HalfOptions());
  EXPECT_GT(plan.naive_bytes(), 0u);
  EXPECT_LE(plan.peak_bytes(), plan.naive_bytes());
  EXPECT_GE(plan.Reduction(), 0.30) << plan.Summary();
}

TEST(MemoryPlan, WholeStackPlanBeatsPerLayerPlanningOnBertBase) {
  // Whole-stack acceptance bar: planning the 12-layer BERT-base
  // forward+backward as ONE graph lets cross-layer transients share
  // bytes, so its peak lands >= 15% below twelve independently planned
  // per-layer slabs (the prior deployment model, where each layer needs
  // its own slab because its saved activations must survive until its
  // backward runs).
  const auto dims = ModelDims::BertBase();
  constexpr std::size_t kLayers = 12;
  const auto layer = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  const auto layer_plan = PlanMemory(layer, HalfOptions());
  const std::size_t per_layer_sum = kLayers * layer_plan.PeakBytes();

  const auto stack =
      BuildEncoderStack(dims, {.num_layers = static_cast<int>(kLayers)});
  const auto stack_plan =
      PlanMemory(stack, transformer::StackPlanOptions<Half>(stack));
  // Report-style aliases mirror the snake_case accessors exactly.
  EXPECT_EQ(stack_plan.PeakBytes(), stack_plan.peak_bytes());
  EXPECT_EQ(stack_plan.NaiveSumBytes(), stack_plan.naive_bytes());
  EXPECT_GT(stack_plan.PeakBytes(), 0u);
  EXPECT_LE(static_cast<double>(stack_plan.PeakBytes()),
            0.85 * static_cast<double>(per_layer_sum))
      << "whole-stack " << stack_plan.PeakBytes() << " vs per-layer sum "
      << per_layer_sum << " (" << stack_plan.Summary() << ")";
}

TEST(MemoryPlan, CrossChecksGraphAnalysisAccounting) {
  // Every planned non-pinned container is produced by exactly one op, so
  // the naive sum must be consistent with the analysis layer's
  // data-movement accounting on the Fig. 2 graph: the planned element
  // count equals the op-output elements that are not weight gradients,
  // and is bounded by total data movement.
  const auto g =
      BuildEncoder(ModelDims::BertBase(), AlgebraicFusion::kQKV, true);
  PlanOptions one_byte;  // count elements, not bytes
  one_byte.alignment = 1;
  one_byte.default_elem_bytes = 1;
  const auto plan = PlanMemory(g, one_byte);

  std::int64_t planned_elems = 0;
  for (const auto& [name, p] : plan.placements()) {
    if (p.pinned || p.shape.rank() == 0) continue;  // inputs, group aliases
    planned_elems += p.shape.num_elements();
  }
  std::int64_t op_output_elems = 0;
  for (const auto& op : g.ops()) {
    for (const auto& out : op.outputs) {
      if (!g.tensor(out).is_weight) {
        op_output_elems += g.tensor(out).shape.num_elements();
      }
    }
  }
  EXPECT_EQ(planned_elems, op_output_elems);
  EXPECT_LE(planned_elems, TotalDataMovementElems(g));
  EXPECT_LE(static_cast<std::int64_t>(plan.peak_bytes()),
            TotalDataMovementElems(g));
}

TEST(MemoryPlan, DeterministicAcrossRuns) {
  const auto g = BuildEncoder(ModelDims::Tiny(), AlgebraicFusion::kQKV, true);
  const auto a = PlanMemory(g, HalfOptions());
  const auto b = PlanMemory(g, HalfOptions());
  ASSERT_EQ(a.placements().size(), b.placements().size());
  EXPECT_EQ(a.peak_bytes(), b.peak_bytes());
  EXPECT_EQ(a.naive_bytes(), b.naive_bytes());
  for (const auto& [name, p] : a.placements()) {
    EXPECT_EQ(p.offset, b.at(name).offset) << name;
    EXPECT_EQ(p.bytes, b.at(name).bytes) << name;
  }
}

TEST(MemoryPlan, MhaForwardGraphPlans) {
  const auto g = BuildMhaForward(ModelDims::Tiny());
  PlanOptions opts;
  opts.default_elem_bytes = sizeof(Half);
  const auto plan = PlanMemory(g, opts);
  EXPECT_TRUE(plan.at("q").pinned);
  EXPECT_LE(plan.peak_bytes(), plan.naive_bytes());
  // Forward-only: everything saved for a backward pass survives, so the
  // reduction is modest but the transient beta/qq/kk/vv still fold away.
  EXPECT_LT(plan.peak_bytes(), plan.naive_bytes());
}

TEST(MemoryPlan, MhaBackwardGraphIsModeledAndPlanned) {
  // The full MHA graph covers the backward pass: saved activations live
  // exactly until the backward op that consumes them (instead of being
  // pinned for the step), and the backward temporaries are planned too.
  const auto g = BuildMha(ModelDims::Tiny(), /*include_backward=*/true);
  for (const char* op : {"bias out dW", "out dX", "out dW", "gamma dX1",
                         "gamma dX2", "scaled softmax dX", "QKT dX1",
                         "QKT dX2", "Q dX", "Q dW"}) {
    EXPECT_GE(OpIndex(g, op), 0);
  }
  PlanOptions opts;
  opts.default_elem_bytes = sizeof(Half);
  opts.exclude = {"d_out"};  // caller-passed gradient, never staged
  const auto plan = PlanMemory(g, opts);
  EXPECT_EQ(plan.at("softmax_saved").last_use,
            OpIndex(g, "scaled softmax dX"));
  EXPECT_EQ(plan.at("alpha").last_use, OpIndex(g, "gamma dX2"));
  EXPECT_EQ(plan.at("kk_b").last_use, OpIndex(g, "QKT dX2"));
  EXPECT_TRUE(plan.Contains("d_beta"));
  EXPECT_EQ(plan.at("d_beta").last_use, OpIndex(g, "QKT dX2"));
  EXPECT_FALSE(plan.Contains("d_out"));
  EXPECT_FALSE(plan.Contains("d_wq"));  // weight gradients stay external

  // Planning the whole step beats the forward-only plan's pinning: the
  // full-graph peak is below forward-peak + separate backward buffers,
  // and the reduction is strictly better than the forward-only one.
  PlanOptions fwd_opts;
  fwd_opts.default_elem_bytes = sizeof(Half);
  fwd_opts.keep_live = {"qq_b",      "kk_b",          "vv_b", "alpha",
                        "attn_mask", "softmax_saved", "gamma", "out"};
  const auto fwd_plan =
      PlanMemory(BuildMhaForward(ModelDims::Tiny()), fwd_opts);
  EXPECT_GT(plan.Reduction(), fwd_plan.Reduction());
}

}  // namespace
}  // namespace xflow::graph
