#include <gtest/gtest.h>

#include <cmath>

#include "ops/elementwise.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"
#include "test_util.hpp"

namespace xflow::ops {
namespace {

using testutil::NumericalGradient;
using testutil::ProbeLoss;
using testutil::ProbeLossGrad;

TEST(Bias, BroadcastsOverMissingDims) {
  auto x = TensorF::Random(Shape("ibj", {4, 2, 3}), 1);
  auto b = TensorF::Random(Shape("i", {4}), 2);
  TensorF y(x.shape());
  BiasForward(x, b, y);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t bb = 0; bb < 2; ++bb) {
      for (std::int64_t j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(y.at({{'i', i}, {'b', bb}, {'j', j}}),
                        x.at({{'i', i}, {'b', bb}, {'j', j}}) +
                            b.at({{'i', i}}));
      }
    }
  }
}

TEST(Bias, LayoutIndependent) {
  auto x = TensorH::Random(Shape("ibj", {8, 4, 6}), 3);
  auto b = TensorH::Random(Shape("i", {8}), 4);
  TensorH y1(x.shape());
  BiasForward(x, b, y1);
  auto x2 = x.Permuted("jbi");
  TensorH y2(x.shape().Permuted("bji"));
  BiasForward(x2, b, y2);
  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
}

TEST(Bias, BackwardSumsOverReducedDims) {
  auto dy = TensorF::Full(Shape("ubj", {3, 2, 5}), 1.0f);
  TensorF db(Shape("u", {3}));
  BiasBackwardDW(dy, db);
  for (std::int64_t u = 0; u < 3; ++u) {
    EXPECT_FLOAT_EQ(db.at({{'u', u}}), 10.0f);
  }
}

TEST(Relu, ClampsNegativesAndPassesPositives) {
  TensorF x(Shape("x", {4}));
  x.data()[0] = -1.0f;
  x.data()[1] = 0.0f;
  x.data()[2] = 2.5f;
  x.data()[3] = -0.0f;
  TensorF y(x.shape());
  ReluForward(x, y);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 2.5f);
  EXPECT_FLOAT_EQ(y.data()[3], 0.0f);
}

TEST(Relu, BackwardGatesOnSavedOutput) {
  auto x = TensorF::Random(Shape("ub", {6, 5}), 7);
  TensorF y(x.shape());
  ReluForward(x, y);
  auto dy = TensorF::Full(x.shape(), 1.0f);
  TensorF dx(x.shape());
  ReluBackwardDX(dy, y, dx);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(dx.data()[i], x.data()[i] > 0 ? 1.0f : 0.0f);
  }
}

TEST(Dropout, MaskMatchesOutputAndScales) {
  auto x = TensorF::Full(Shape("ib", {32, 32}), 1.0f);
  DropoutMask mask(5, 0.25f);
  TensorF y(x.shape()), m(x.shape());
  DropoutForward(x, mask, y, m);
  int kept = 0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    if (m.data()[i] > 0.5f) {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.75f, 1e-6);
      ++kept;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
    }
  }
  EXPECT_GT(kept, 32 * 32 / 2);  // ~75% kept
}

TEST(Dropout, MaskIsLayoutIndependent) {
  // The same logical element must be kept/dropped in any layout.
  auto x = TensorH::Random(Shape("ibj", {6, 4, 5}), 11);
  DropoutMask mask(42, 0.5f);
  TensorH y1(x.shape()), m1(x.shape());
  DropoutForward(x, mask, y1, m1);
  auto x2 = x.Permuted("jib");
  TensorH y2(x2.shape()), m2(x2.shape());
  DropoutForward(x2, mask, y2, m2);
  EXPECT_EQ(MaxAbsDiff(m1, m2), 0.0);
  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
}

TEST(Dropout, BackwardAppliesSameMask) {
  auto x = TensorF::Random(Shape("ib", {8, 8}), 2);
  DropoutMask mask(9, 0.3f);
  TensorF y(x.shape()), m(x.shape());
  DropoutForward(x, mask, y, m);
  auto dy = TensorF::Full(x.shape(), 2.0f);
  TensorF dx(x.shape());
  DropoutBackwardDX(dy, m, mask.Scale(), dx);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float expect = m.data()[i] > 0.5f ? 2.0f * mask.Scale() : 0.0f;
    EXPECT_NEAR(dx.data()[i], expect, 1e-6);
  }
}

TEST(Softmax, RowsSumToOne) {
  auto x = TensorF::Random(Shape("hjk", {2, 3, 16}), 13);
  TensorF y(x.shape());
  SoftmaxForward(x, 'k', y);
  for (std::int64_t h = 0; h < 2; ++h) {
    for (std::int64_t j = 0; j < 3; ++j) {
      float sum = 0;
      for (std::int64_t k = 0; k < 16; ++k) {
        const float v = y.at({{'h', h}, {'j', j}, {'k', k}});
        EXPECT_GT(v, 0.0f);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  auto x = TensorF::Full(Shape("jk", {2, 8}), 500.0f);  // exp would overflow
  TensorF y(x.shape());
  SoftmaxForward(x, 'k', y);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], 1.0f / 8.0f, 1e-5);
  }
}

TEST(Softmax, BackwardMatchesFiniteDifferences) {
  auto x = TensorF::Random(Shape("jk", {3, 7}), 21);
  auto loss = [&] {
    TensorF y(x.shape());
    SoftmaxForward(x, 'k', y);
    return ProbeLoss(y);
  };
  const auto numeric = NumericalGradient(x, loss);

  TensorF y(x.shape());
  SoftmaxForward(x, 'k', y);
  auto dy = ProbeLossGrad(x.shape());
  TensorF dx(x.shape());
  SoftmaxBackwardDX(dy, y, 'k', dx);
  EXPECT_LT(MaxAbsDiff(dx, numeric), 2e-3);
}

TEST(ScaledSoftmax, ReducesToSoftmaxWithoutDropoutAndUnitScale) {
  auto x = TensorF::Random(Shape("hbjk", {2, 2, 3, 8}), 31);
  TensorF plain(x.shape());
  SoftmaxForward(x, 'k', plain);
  TensorF alpha(x.shape()), m(x.shape()), saved(x.shape());
  ScaledSoftmaxForward(x, 'k', 1.0f, DropoutMask(1, 0.0f), alpha, m, saved);
  EXPECT_LT(MaxAbsDiff(plain, alpha), 1e-6);
  EXPECT_LT(MaxAbsDiff(plain, saved), 1e-6);
}

TEST(ScaledSoftmax, BackwardMatchesFiniteDifferences) {
  const float scale = 0.37f;
  auto x = TensorF::Random(Shape("jk", {4, 6}), 17);
  DropoutMask mask(77, 0.4f);
  auto loss = [&] {
    TensorF alpha(x.shape()), m(x.shape()), saved(x.shape());
    ScaledSoftmaxForward(x, 'k', scale, mask, alpha, m, saved);
    return ProbeLoss(alpha);
  };
  const auto numeric = NumericalGradient(x, loss);

  TensorF alpha(x.shape()), m(x.shape()), saved(x.shape());
  ScaledSoftmaxForward(x, 'k', scale, mask, alpha, m, saved);
  auto d_alpha = ProbeLossGrad(x.shape());
  TensorF d_beta(x.shape());
  ScaledSoftmaxBackwardDX(d_alpha, m, saved, 'k', scale, mask.Scale(),
                          d_beta);
  EXPECT_LT(MaxAbsDiff(d_beta, numeric), 2e-3);
}

TEST(LayerNorm, NormalizesToZeroMeanUnitVariance) {
  auto x = TensorF::Random(Shape("bji", {2, 3, 64}), 41);
  auto gamma = TensorF::Full(Shape("i", {64}), 1.0f);
  auto beta = TensorF::Full(Shape("i", {64}), 0.0f);
  TensorF y(x.shape());
  TensorF mean(Shape("bj", {2, 3})), rstd(Shape("bj", {2, 3}));
  LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t j = 0; j < 3; ++j) {
      float sum = 0, sq = 0;
      for (std::int64_t i = 0; i < 64; ++i) {
        const float v = y.at({{'b', b}, {'j', j}, {'i', i}});
        sum += v;
        sq += v * v;
      }
      EXPECT_NEAR(sum / 64, 0.0f, 1e-4);
      EXPECT_NEAR(sq / 64, 1.0f, 1e-2);
    }
  }
}

TEST(LayerNorm, AffineParametersApply) {
  auto x = TensorF::Random(Shape("bi", {2, 32}), 43);
  auto gamma = TensorF::Full(Shape("i", {32}), 2.0f);
  auto beta = TensorF::Full(Shape("i", {32}), 0.5f);
  TensorF y(x.shape());
  TensorF mean(Shape("b", {2})), rstd(Shape("b", {2}));
  LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
  float sum = 0;
  for (std::int64_t i = 0; i < 32; ++i) sum += y.at({{'b', 0}, {'i', i}});
  EXPECT_NEAR(sum / 32, 0.5f, 1e-4);  // mean of y = beta
}

TEST(LayerNorm, DxMatchesFiniteDifferences) {
  auto x = TensorF::Random(Shape("bi", {3, 12}), 47);
  auto gamma = TensorF::Random(Shape("i", {12}), 48);
  auto beta = TensorF::Random(Shape("i", {12}), 49);
  auto loss = [&] {
    TensorF y(x.shape());
    TensorF mean(Shape("b", {3})), rstd(Shape("b", {3}));
    LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    return ProbeLoss(y);
  };
  const auto numeric = NumericalGradient(x, loss);

  TensorF y(x.shape());
  TensorF mean(Shape("b", {3})), rstd(Shape("b", {3}));
  LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
  auto dy = ProbeLossGrad(x.shape());
  TensorF dx(x.shape());
  LayerNormBackwardDX(dy, gamma, x, mean, rstd, 'i', dx);
  EXPECT_LT(MaxAbsDiff(dx, numeric), 2e-3);
}

TEST(LayerNorm, DwMatchesFiniteDifferences) {
  auto x = TensorF::Random(Shape("bi", {3, 12}), 53);
  auto gamma = TensorF::Random(Shape("i", {12}), 54);
  auto beta = TensorF::Random(Shape("i", {12}), 55);
  TensorF y(x.shape());
  TensorF mean(Shape("b", {3})), rstd(Shape("b", {3}));

  auto loss_gamma = [&] {
    LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    return ProbeLoss(y);
  };
  const auto num_dgamma = NumericalGradient(gamma, loss_gamma);
  const auto num_dbeta = NumericalGradient(beta, loss_gamma);

  LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
  auto dy = ProbeLossGrad(x.shape());
  TensorF dgamma(Shape("i", {12})), dbeta(Shape("i", {12}));
  LayerNormBackwardDW(dy, x, mean, rstd, 'i', dgamma, dbeta);
  EXPECT_LT(MaxAbsDiff(dgamma, num_dgamma), 2e-3);
  EXPECT_LT(MaxAbsDiff(dbeta, num_dbeta), 2e-3);
}

TEST(LayerNorm, LayoutIndependent) {
  auto x = TensorH::Random(Shape("ibj", {16, 3, 4}), 61);
  auto gamma = TensorH::Random(Shape("i", {16}), 62);
  auto beta = TensorH::Random(Shape("i", {16}), 63);
  TensorH y1(x.shape());
  TensorF mean(Shape("bj", {3, 4})), rstd(Shape("bj", {3, 4}));
  LayerNormForward(x, gamma, beta, 'i', 1e-5f, y1, mean, rstd);

  auto x2 = x.Permuted("bji");
  TensorH y2(x2.shape());
  TensorF mean2(Shape("jb", {4, 3})), rstd2(Shape("jb", {4, 3}));
  LayerNormForward(x2, gamma, beta, 'i', 1e-5f, y2, mean2, rstd2);
  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
}

// Residual/scale sweeps over layouts.
class ElementwiseLayoutSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ElementwiseLayoutSweep, ResidualAndScaleAreLayoutInvariant) {
  const std::string layout = GetParam();
  auto a = TensorH::Random(Shape("ibj", {5, 4, 3}), 71);
  auto b = TensorH::Random(Shape("ibj", {5, 4, 3}), 72);
  TensorH ref(a.shape());
  ResidualForward(a, b, ref);

  auto ap = a.Permuted(layout);
  auto bp = b.Permuted(layout);
  TensorH out(ap.shape());
  ResidualForward(ap, bp, out);
  EXPECT_EQ(MaxAbsDiff(ref, out), 0.0) << layout;

  TensorH s1(a.shape()), s2(ap.shape());
  ScaleForward(a, 0.125f, s1);
  ScaleForward(ap, 0.125f, s2);
  EXPECT_EQ(MaxAbsDiff(s1, s2), 0.0) << layout;
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ElementwiseLayoutSweep,
                         ::testing::Values("ibj", "ijb", "bij", "bji", "jib",
                                           "jbi"));

}  // namespace
}  // namespace xflow::ops
