// Shared test helpers: finite-difference gradient checking.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace xflow::testutil {

/// Central-difference numerical gradient of scalar `loss` w.r.t. `param`.
/// `loss` must be a pure function of the current contents of `param`.
inline TensorF NumericalGradient(TensorF& param,
                                 const std::function<double()>& loss,
                                 float eps = 1e-3f) {
  TensorF grad(param.shape());
  for (std::int64_t i = 0; i < param.size(); ++i) {
    const float saved = param.data()[i];
    param.data()[i] = saved + eps;
    const double up = loss();
    param.data()[i] = saved - eps;
    const double down = loss();
    param.data()[i] = saved;
    grad.data()[i] = static_cast<float>((up - down) / (2.0 * eps));
  }
  return grad;
}

/// Scalar probe loss: weighted sum of a tensor's elements with fixed
/// pseudo-random weights (makes every output element matter).
inline double ProbeLoss(const TensorF& t, std::uint64_t seed = 99) {
  Philox4x32 gen(seed);
  double sum = 0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    sum += static_cast<double>(t.data()[i]) *
           (static_cast<double>(gen.UniformAt(static_cast<std::uint64_t>(i))) -
            0.5);
  }
  return sum;
}

/// The probe loss's gradient w.r.t. the tensor (for seeding backward passes).
inline TensorF ProbeLossGrad(const Shape& shape, std::uint64_t seed = 99) {
  Philox4x32 gen(seed);
  TensorF g(shape);
  for (std::int64_t i = 0; i < g.size(); ++i) {
    g.data()[i] = gen.UniformAt(static_cast<std::uint64_t>(i)) - 0.5f;
  }
  return g;
}

}  // namespace xflow::testutil
