#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "layouts/contraction_space.hpp"
#include "layouts/fused_space.hpp"

namespace xflow::layouts {
namespace {

using graph::ModelDims;

class ContractionSpaceTest : public ::testing::Test {
 protected:
  sim::GpuModel model_{sim::DeviceSpec::V100()};
};

TEST_F(ContractionSpaceTest, TwelveTilesAsInFigure4) {
  const auto tiles = PaperContractionTiles(ModelDims::BertLarge());
  EXPECT_EQ(tiles.size(), 12u);
  // Spot-check the extents printed in the figure.
  std::set<std::string> labels;
  for (const auto& t : tiles) labels.insert(t.label);
  EXPECT_TRUE(labels.contains("QKV"));
  for (const auto& t : tiles) {
    if (t.label == "QKV") {
      EXPECT_EQ(t.extents.m, 4096);
      EXPECT_EQ(t.extents.n, 3072);
      EXPECT_EQ(t.extents.k, 1024);
      EXPECT_EQ(t.extents.batch, 1);
    }
    if (t.label == "dX1gamma, QKT") {
      EXPECT_EQ(t.extents.m, 512);
      EXPECT_EQ(t.extents.n, 512);
      EXPECT_EQ(t.extents.k, 64);
      EXPECT_EQ(t.extents.batch, 128);
    }
    EXPECT_GE(t.extents.m, t.extents.n) << t.label << ": figure uses M >= N";
  }
}

TEST_F(ContractionSpaceTest, SweepCoversLayoutsTimesAlgorithms) {
  GemmExtents e{.m = 512, .n = 512, .k = 64, .batch = 128};
  const auto samples = SweepContraction(model_, e, true, /*batched=*/true);
  EXPECT_EQ(samples.size(), 16u * sim::kNumGemmAlgorithms);
  const auto unbatched = SweepContraction(model_, e, true, false);
  EXPECT_EQ(unbatched.size(), 8u * sim::kNumGemmAlgorithms);
}

TEST_F(ContractionSpaceTest, LayoutMattersButBoundedly) {
  // Fig. 4: layout changes GEMM speed meaningfully (tens of percent), not
  // by orders of magnitude -- cuBLAS handles every layout decently.
  GemmExtents e{.m = 4096, .n = 1024, .k = 1024, .batch = 1};
  const auto samples = SweepContraction(model_, e, true, false);
  double best = 1e30, worst = 0;
  for (const auto& s : samples) {
    best = std::min(best, s.timing.time_us);
    worst = std::max(worst, s.timing.time_us);
  }
  EXPECT_GT(worst / best, 1.15);
  EXPECT_LT(worst / best, 3.0);
}

TEST_F(ContractionSpaceTest, MmmSpeedupFromLayoutCanExceedHalf) {
  // Abstract: "Using better layouts enables us to speed up MMM by up to
  // 52%" -- measured against the heuristic algorithm in the worst layout.
  double max_speedup = 0;
  for (const auto& tile : PaperContractionTiles(ModelDims::BertLarge())) {
    const auto samples =
        SweepContraction(model_, tile.extents, true, tile.extents.batch > 1);
    const double best = BestSample(samples).timing.time_us;
    double worst_default = 0;
    for (const auto& s : samples) {
      if (s.algorithm == model_.HeuristicAlgorithm(tile.extents)) {
        worst_default = std::max(worst_default, s.timing.time_us);
      }
    }
    max_speedup = std::max(max_speedup, worst_default / best - 1.0);
  }
  EXPECT_GT(max_speedup, 0.25);
  // Flop-doubling library algorithms can push the gap past 100%.
  EXPECT_LT(max_speedup, 2.0);
}

TEST_F(ContractionSpaceTest, NnLayoutNeverLosesToFullyTransposed) {
  GemmExtents e{.m = 4096, .n = 4096, .k = 1024, .batch = 1};
  const GemmLayout nn{};
  const GemmLayout ttt{.a_transposed = true,
                       .b_transposed = true,
                       .c_transposed = true};
  EXPECT_GT(GemmLayoutFactor(nn, e), GemmLayoutFactor(ttt, e));
}

class FusedSpaceTest : public ::testing::Test {
 protected:
  FusedSpaceTest()
      : g_(graph::BuildEncoder(ModelDims::BertLarge(),
                               graph::AlgebraicFusion::kQKV, true)),
        fused_(fusion::FuseMaximally(g_)) {}

  const fusion::FusedKernel& Kernel(const std::string& name) const {
    for (const auto& k : fused_.kernels) {
      if (k.name == name) return k;
    }
    throw std::runtime_error("kernel not found: " + name);
  }

  graph::DataflowGraph g_;
  fusion::FusionResult fused_;
  sim::GpuModel model_{sim::DeviceSpec::V100()};
};

TEST_F(FusedSpaceTest, SmSpaceHasRankFourPrimaryAndKReduction) {
  const auto space = SpaceFromKernel(g_, Kernel("SM"));
  EXPECT_EQ(space.primary.names().size(), 4u);
  EXPECT_EQ(space.reduce_dim, 'k');
  EXPECT_GT(space.min_bytes, 0);
}

TEST_F(FusedSpaceTest, SweepSizeMatchesConfigSpace) {
  const auto space = SpaceFromKernel(g_, Kernel("BRD"));  // rank-3, no reduce
  const auto samples = SweepFusedKernel(model_, space);
  EXPECT_EQ(samples.size(), 6u * 6u * 3u);  // in x out x vector dim
  const auto sm_space = SpaceFromKernel(g_, Kernel("SM"));
  EXPECT_EQ(SweepFusedKernel(model_, sm_space).size(),
            24u * 24u * 4u * 4u);  // + warp dim
}

TEST_F(FusedSpaceTest, DistributionsHaveLongTails) {
  // Fig. 5: the worst configuration can be 1-2 orders of magnitude slower.
  for (const char* name : {"SM", "BDRLN", "BLNRD", "BDRB"}) {
    const auto space = SpaceFromKernel(g_, Kernel(name));
    const auto samples = SweepFusedKernel(model_, space);
    double best = 1e30, worst = 0;
    for (const auto& s : samples) {
      best = std::min(best, s.timing.time_us);
      worst = std::max(worst, s.timing.time_us);
    }
    EXPECT_GT(worst / best, 8.0) << name;
    EXPECT_LT(worst / best, 300.0) << name;
  }
}

TEST_F(FusedSpaceTest, BestConfigVectorizesAndAlignsReduction) {
  const auto space = SpaceFromKernel(g_, Kernel("SM"));
  const auto& best = BestFusedSample(SweepFusedKernel(model_, space));
  // Paper: "the SM kernel has the same warp and reduction dimensions, and
  // these dimensions are the last and sequential ones for involved arrays".
  EXPECT_EQ(best.config.vector_dim, best.config.in_layout.back());
  EXPECT_EQ(best.config.warp_dim, space.reduce_dim);
  EXPECT_EQ(best.config.in_layout.back(), space.reduce_dim);
}

TEST_F(FusedSpaceTest, IntuitivelyGoodConfigsCanStillBeSlow) {
  // Paper: configurations satisfying the intuitive rules are not all fast;
  // exhaustive search is necessary. Check the spread among configs that
  // vectorize the innermost dim of the input.
  const auto space = SpaceFromKernel(g_, Kernel("BDRLN"));
  double best = 1e30, worst_good = 0;
  for (const auto& s : SweepFusedKernel(model_, space)) {
    if (s.config.in_layout.back() == s.config.vector_dim) {
      best = std::min(best, s.timing.time_us);
      worst_good = std::max(worst_good, s.timing.time_us);
    }
  }
  EXPECT_GT(worst_good / best, 2.0);
}

TEST_F(FusedSpaceTest, FusedKernelMovesNoMoreThanLowerBound) {
  for (const char* name : {"AIB", "SM", "BRD", "BDRLN", "BLNRD"}) {
    const auto space = SpaceFromKernel(g_, Kernel(name));
    EXPECT_DOUBLE_EQ(space.actual_bytes, space.min_bytes) << name;
  }
}

}  // namespace
}  // namespace xflow::layouts
