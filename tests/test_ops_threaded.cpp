// Bitwise thread-count determinism of the parallel ops layer: every
// memory-bound kernel (softmax, layernorm, dropout, elementwise, and the
// fused operators) runs rows on the pool and cross-row reductions through
// the fixed-chunk combine, so outputs and gradients must be identical --
// not merely close -- at 1, 2 and 8 threads, across layouts and dtypes.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"

namespace xflow {
namespace {

template <typename T>
::testing::AssertionResult BitwiseSame(const Tensor<T>& a,
                                       const Tensor<T>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.size()) * sizeof(T)) != 0) {
    return ::testing::AssertionFailure()
           << "buffers differ (max abs diff " << MaxAbsDiff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

class OpsThreadedDeterminism : public ::testing::Test {
 protected:
  ~OpsThreadedDeterminism() override {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

/// Runs `kernel` (which writes its outputs afresh each call) at 1 thread,
/// then re-runs at 2 and 8 and checks every listed output bitwise.
template <typename Kernel, typename Check>
void ExpectThreadInvariant(Kernel&& kernel, Check&& check) {
  ThreadPool::SetGlobalThreads(1);
  kernel();
  const auto snapshot = check();  // captures the 1-thread outputs
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    kernel();
    snapshot(threads);
  }
}

// ------------------------------------------------------------- softmax

template <typename T>
void SoftmaxFamilyCase(const char* layout) {
  const Shape shape(Shape("hbjk", {3, 2, 9, 33}).Permuted(layout));
  auto x = Tensor<T>::Random(shape, 1);
  DropoutMask mask(17, 0.2f);
  Tensor<T> y(shape), alpha(shape), m(shape), saved(shape), dx(shape),
      dbeta(shape);
  auto dy = Tensor<T>::Random(shape, 2);

  ExpectThreadInvariant(
      [&] {
        ops::SoftmaxForward(x, 'k', y);
        ops::ScaledSoftmaxForward(x, 'k', 0.125f, mask, alpha, m, saved);
        ops::SoftmaxBackwardDX(dy, y, 'k', dx);
        ops::ScaledSoftmaxBackwardDX(dy, m, saved, 'k', 0.125f, mask.Scale(),
                                     dbeta);
      },
      [&] {
        auto y1 = y, a1 = alpha, m1 = m, s1 = saved, dx1 = dx, db1 = dbeta;
        return [&, y1, a1, m1, s1, dx1, db1](int threads) {
          EXPECT_TRUE(BitwiseSame(y1, y)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(a1, alpha)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(m1, m)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(s1, saved)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(dx1, dx)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(db1, dbeta)) << layout << " t=" << threads;
        };
      });
}

TEST_F(OpsThreadedDeterminism, SoftmaxFamilyHalf) {
  SoftmaxFamilyCase<Half>("hbjk");
  SoftmaxFamilyCase<Half>("kjbh");
}

TEST_F(OpsThreadedDeterminism, SoftmaxFamilyFloat) {
  SoftmaxFamilyCase<float>("hbjk");
  SoftmaxFamilyCase<float>("bkhj");
}

TEST_F(OpsThreadedDeterminism, CausalSoftmax) {
  const Shape shape("hbjk", {2, 2, 16, 16});
  auto x = TensorH::Random(shape, 3);
  DropoutMask mask(19, 0.1f);
  TensorH alpha(shape), m(shape), saved(shape);
  ExpectThreadInvariant(
      [&] {
        ops::CausalScaledSoftmaxForward(x, 'k', 'j', 0.25f, mask, alpha, m,
                                        saved);
      },
      [&] {
        auto a1 = alpha, m1 = m, s1 = saved;
        return [&, a1, m1, s1](int threads) {
          EXPECT_TRUE(BitwiseSame(a1, alpha)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(m1, m)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(s1, saved)) << "t=" << threads;
        };
      });
}

// ----------------------------------------------------------- layernorm

template <typename T>
void LayerNormCase(const char* layout) {
  const Shape shape(Shape("ibj", {40, 6, 10}).Permuted(layout));
  const Shape stat("bj", {6, 10});
  auto x = Tensor<T>::Random(shape, 4);
  auto gamma = Tensor<T>::Random(Shape("i", {40}), 5);
  auto beta = Tensor<T>::Random(Shape("i", {40}), 6);
  auto dy = Tensor<T>::Random(shape, 7);
  Tensor<T> y(shape), dx(shape);
  Tensor<T> dgamma(Shape("i", {40})), dbeta(Shape("i", {40}));
  TensorF mean(stat), rstd(stat);

  ExpectThreadInvariant(
      [&] {
        ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
        ops::LayerNormBackwardDX(dy, gamma, x, mean, rstd, 'i', dx);
        ops::LayerNormBackwardDW(dy, x, mean, rstd, 'i', dgamma, dbeta);
      },
      [&] {
        auto y1 = y, dx1 = dx, dg1 = dgamma, db1 = dbeta;
        auto mean1 = mean, rstd1 = rstd;
        return [&, y1, dx1, dg1, db1, mean1, rstd1](int threads) {
          EXPECT_TRUE(BitwiseSame(y1, y)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(mean1, mean)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(rstd1, rstd)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(dx1, dx)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(dg1, dgamma)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(db1, dbeta)) << layout << " t=" << threads;
        };
      });
}

TEST_F(OpsThreadedDeterminism, LayerNormHalf) {
  LayerNormCase<Half>("ibj");
  LayerNormCase<Half>("bji");
}

TEST_F(OpsThreadedDeterminism, LayerNormFloat) {
  LayerNormCase<float>("ibj");
  LayerNormCase<float>("jib");
}

// ------------------------------------------------- elementwise / dropout

template <typename T>
void ElementwiseCase(const char* layout) {
  const Shape shape(Shape("ibj", {33, 5, 7}).Permuted(layout));
  auto x = Tensor<T>::Random(shape, 8);
  auto r = Tensor<T>::Random(shape, 9);
  auto bias = Tensor<T>::Random(Shape("i", {33}), 10);
  DropoutMask mask(23, 0.3f);
  Tensor<T> biased(shape), relu(shape), drop(shape), m(shape), sum(shape),
      scaled(shape), ddx(shape), rdx(shape);
  Tensor<T> db(Shape("i", {33}));

  ExpectThreadInvariant(
      [&] {
        ops::BiasForward(x, bias, biased);
        ops::ReluForward(biased, relu);
        ops::DropoutForward(relu, mask, drop, m);
        ops::ResidualForward(drop, r, sum);
        ops::ScaleForward(sum, 0.125f, scaled);
        ops::BiasBackwardDW(scaled, db);
        ops::DropoutBackwardDX(scaled, m, mask.Scale(), ddx);
        ops::ReluBackwardDX(ddx, relu, rdx);
      },
      [&] {
        auto b1 = biased, rl1 = relu, d1 = drop, m1 = m, s1 = sum,
             sc1 = scaled, ddx1 = ddx, rdx1 = rdx, db1 = db;
        return [&, b1, rl1, d1, m1, s1, sc1, ddx1, rdx1, db1](int threads) {
          EXPECT_TRUE(BitwiseSame(b1, biased)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(rl1, relu)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(d1, drop)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(m1, m)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(s1, sum)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(sc1, scaled)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(ddx1, ddx)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(rdx1, rdx)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(db1, db)) << layout << " t=" << threads;
        };
      });
}

TEST_F(OpsThreadedDeterminism, ElementwiseAndDropoutHalf) {
  ElementwiseCase<Half>("ibj");
  ElementwiseCase<Half>("jbi");
}

TEST_F(OpsThreadedDeterminism, ElementwiseAndDropoutFloat) {
  ElementwiseCase<float>("ibj");
  ElementwiseCase<float>("bij");
}

// Dropout must also stay layout-independent when threaded: the canonical
// mask indexing may not interact with row partitioning.
TEST_F(OpsThreadedDeterminism, DropoutLayoutIndependentAt8Threads) {
  ThreadPool::SetGlobalThreads(8);
  auto x = TensorH::Random(Shape("ibj", {32, 4, 6}), 11);
  DropoutMask mask(29, 0.4f);
  TensorH y1(x.shape()), m1(x.shape());
  ops::DropoutForward(x, mask, y1, m1);
  auto xp = x.Permuted("bji");
  TensorH y2(xp.shape()), m2(xp.shape());
  ops::DropoutForward(xp, mask, y2, m2);
  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
  EXPECT_EQ(MaxAbsDiff(m1, m2), 0.0);
}

// ----------------------------------------------------------- fused ops

template <typename T>
void FusedForwardCase(const char* layout) {
  const Shape shape(Shape("ibj", {24, 4, 9}).Permuted(layout));
  const Shape stat("bj", {4, 9});
  auto x = Tensor<T>::Random(shape, 12);
  auto resid_in = Tensor<T>::Random(shape, 13);
  auto bias = Tensor<T>::Random(Shape("i", {24}), 14);
  auto gamma = Tensor<T>::Random(Shape("i", {24}), 15);
  auto beta = Tensor<T>::Random(Shape("i", {24}), 16);
  DropoutMask mask(31, 0.25f);
  Tensor<T> relu(shape), brd_y(shape), brd_m(shape);
  Tensor<T> resid(shape), m(shape), y(shape);
  TensorF mean(stat), rstd(stat);

  ExpectThreadInvariant(
      [&] {
        ops::BiasReluDropout(x, bias, mask, relu, brd_y, brd_m);
        ops::BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma,
                                          beta, 'i', 1e-5f, resid, m, y, mean,
                                          rstd);
      },
      [&] {
        auto r1 = relu, by1 = brd_y, bm1 = brd_m, re1 = resid, m1 = m, y1 = y;
        auto mean1 = mean, rstd1 = rstd;
        return [&, r1, by1, bm1, re1, m1, y1, mean1, rstd1](int threads) {
          EXPECT_TRUE(BitwiseSame(r1, relu)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(by1, brd_y)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(bm1, brd_m)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(re1, resid)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(m1, m)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(y1, y)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(mean1, mean)) << layout << " t=" << threads;
          EXPECT_TRUE(BitwiseSame(rstd1, rstd)) << layout << " t=" << threads;
        };
      });
}

TEST_F(OpsThreadedDeterminism, FusedForwardHalf) {
  FusedForwardCase<Half>("ibj");
  FusedForwardCase<Half>("bji");
}

TEST_F(OpsThreadedDeterminism, FusedForwardFloat) { FusedForwardCase<float>("ibj"); }

template <typename T>
void FusedBackwardCase() {
  const Shape ibj("ibj", {18, 4, 8});
  const Shape ubj("ubj", {30, 4, 8});
  const Shape stat("bj", {4, 8});
  auto dy = Tensor<T>::Random(ibj, 17);
  auto dy_lo = Tensor<T>::Random(ubj, 18);
  auto gamma = Tensor<T>::Random(Shape("i", {18}), 19);
  auto x = Tensor<T>::Random(ibj, 20);
  auto da = Tensor<T>::Random(ibj, 21);
  auto db2 = Tensor<T>::Random(ibj, 22);
  auto relu_saved = Tensor<T>::Random(ubj, 23);
  DropoutMask mask(37, 0.35f);
  Tensor<T> dummy(ibj), drop_mask(ibj), dummy_lo(ubj), drop_mask_lo(ubj);
  ops::DropoutForward(x, mask, dummy, drop_mask);
  ops::DropoutForward(relu_saved, mask, dummy_lo, drop_mask_lo);
  auto beta = Tensor<T>::Random(Shape("i", {18}), 24);
  Tensor<T> y(ibj);
  TensorF mean(stat), rstd(stat);
  ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);

  Tensor<T> d_resid(ibj), d_out(ibj);
  Tensor<T> d_b_hi(Shape("i", {18})), d_x(ubj), d_b_lo(Shape("u", {30}));
  Tensor<T> d_sum(ibj), dgamma(Shape("i", {18})), dbeta(Shape("i", {18}));

  ExpectThreadInvariant(
      [&] {
        ops::LayerNormDropoutBackward(dy, gamma, x, mean, rstd, drop_mask,
                                      'i', mask.Scale(), d_resid, d_out);
        ops::BiasDropoutReluBiasBackward(dy, dy_lo, drop_mask_lo, relu_saved,
                                         mask.Scale(), d_b_hi, d_x, d_b_lo);
        ops::ResidualLayerNormDwBackward(da, db2, x, mean, rstd, 'i', d_sum,
                                         dgamma, dbeta);
      },
      [&] {
        auto dr1 = d_resid, do1 = d_out, dbh1 = d_b_hi, dx1 = d_x,
             dbl1 = d_b_lo, ds1 = d_sum, dg1 = dgamma, dbt1 = dbeta;
        return [&, dr1, do1, dbh1, dx1, dbl1, ds1, dg1, dbt1](int threads) {
          EXPECT_TRUE(BitwiseSame(dr1, d_resid)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(do1, d_out)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(dbh1, d_b_hi)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(dx1, d_x)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(dbl1, d_b_lo)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(ds1, d_sum)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(dg1, dgamma)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(dbt1, dbeta)) << "t=" << threads;
        };
      });
}

TEST_F(OpsThreadedDeterminism, FusedBackwardHalf) { FusedBackwardCase<Half>(); }

TEST_F(OpsThreadedDeterminism, FusedBackwardFloat) {
  FusedBackwardCase<float>();
}

TEST_F(OpsThreadedDeterminism, AttnInputBiasForwardAndBackward) {
  const Shape proj("phbj", {6, 3, 4, 11});
  auto qq = TensorH::Random(proj, 25);
  auto kk = TensorH::Random(proj, 26);
  auto vv = TensorH::Random(proj, 27);
  auto bias = TensorH::Random(Shape("ph", {18, 3}), 28);
  TensorH q(proj), k(proj), v(proj);
  TensorH d_bias(Shape("ph", {18, 3}));

  ExpectThreadInvariant(
      [&] {
        ops::AttnInputBias<Half>({&qq, &kk, &vv}, bias, 'p', {&q, &k, &v});
        ops::AttnInputBiasBackward<Half>({&qq, &kk, &vv}, 'p', d_bias);
      },
      [&] {
        auto q1 = q, k1 = k, v1 = v, db1 = d_bias;
        return [&, q1, k1, v1, db1](int threads) {
          EXPECT_TRUE(BitwiseSame(q1, q)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(k1, k)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(v1, v)) << "t=" << threads;
          EXPECT_TRUE(BitwiseSame(db1, d_bias)) << "t=" << threads;
        };
      });
}

// ----------------------- strided (staged) vs contiguous, bitwise

// The transpose-on-the-fly path stages strided rows through per-thread
// scratch tiles but runs the *same* body instantiation as the contiguous
// fast path, so a kernel must produce bitwise-identical values on every
// layout -- at every thread count. Extents are chosen to exercise partial
// tiles (rows not a multiple of the tile height) and multiple gather
// column blocks (innermost extent > 64).

/// Bitwise comparison of `t` against `ref` after canonicalizing `t` to
/// ref's dimension order (a pure copy -- Permuted reorders elements).
template <typename T>
::testing::AssertionResult SameCanonical(const Tensor<T>& ref,
                                         const Tensor<T>& t) {
  return BitwiseSame(ref, t.Permuted(ref.dim_order()));
}

template <typename T>
void StridedLayerNormMatchesContiguous(const char* strided_layout) {
  const Shape contig("bji", {5, 27, 130});  // i innermost, n = 130
  const Shape stat("bj", {5, 27});
  auto x = Tensor<T>::Random(contig, 41);
  auto gamma = Tensor<T>::Random(Shape("i", {130}), 42);
  auto beta = Tensor<T>::Random(Shape("i", {130}), 43);
  auto dy = Tensor<T>::Random(contig, 44);
  Tensor<T> y(contig), dx(contig);
  Tensor<T> dgamma(Shape("i", {130})), dbeta(Shape("i", {130}));
  TensorF mean(stat), rstd(stat);
  ThreadPool::SetGlobalThreads(1);
  ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
  ops::LayerNormBackwardDX(dy, gamma, x, mean, rstd, 'i', dx);
  ops::LayerNormBackwardDW(dy, x, mean, rstd, 'i', dgamma, dbeta);

  const auto xs = x.Permuted(strided_layout);
  const auto dys = dy.Permuted(strided_layout);
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor<T> ys(xs.shape()), dxs(xs.shape());
    Tensor<T> dgs(Shape("i", {130})), dbs(Shape("i", {130}));
    TensorF means(stat), rstds(stat);
    ops::LayerNormForward(xs, gamma, beta, 'i', 1e-5f, ys, means, rstds);
    ops::LayerNormBackwardDX(dys, gamma, xs, means, rstds, 'i', dxs);
    ops::LayerNormBackwardDW(dys, xs, means, rstds, 'i', dgs, dbs);
    EXPECT_TRUE(SameCanonical(y, ys)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(BitwiseSame(mean, means)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(BitwiseSame(rstd, rstds)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(dx, dxs)) << strided_layout << " t=" << threads;
    // Cross-row reductions fold rows in the output's memory order, so a
    // layout change regroups the fp32 sums: dgamma/dbeta are equal to
    // rounding (they stay bitwise stable across thread counts and between
    // fused/unfused on any *fixed* layout -- covered above).
    EXPECT_LT(MaxAbsDiff(dgamma, dgs), 1e-4)
        << strided_layout << " t=" << threads;
    EXPECT_LT(MaxAbsDiff(dbeta, dbs), 1e-4)
        << strided_layout << " t=" << threads;
  }
}

TEST_F(OpsThreadedDeterminism, StridedLayerNormBitwiseHalf) {
  StridedLayerNormMatchesContiguous<Half>("ijb");
  StridedLayerNormMatchesContiguous<Half>("jib");
}

TEST_F(OpsThreadedDeterminism, StridedLayerNormBitwiseFloat) {
  StridedLayerNormMatchesContiguous<float>("ijb");
}

template <typename T>
void StridedSoftmaxMatchesContiguous(const char* strided_layout) {
  const Shape contig("hbjk", {2, 3, 9, 70});  // k innermost
  auto x = Tensor<T>::Random(contig, 51);
  auto dy = Tensor<T>::Random(contig, 52);
  DropoutMask mask(53, 0.2f);
  Tensor<T> y(contig), alpha(contig), m(contig), saved(contig), dx(contig),
      dbeta(contig);
  ThreadPool::SetGlobalThreads(1);
  ops::SoftmaxForward(x, 'k', y);
  ops::ScaledSoftmaxForward(x, 'k', 0.125f, mask, alpha, m, saved);
  ops::SoftmaxBackwardDX(dy, y, 'k', dx);
  ops::ScaledSoftmaxBackwardDX(dy, m, saved, 'k', 0.125f, mask.Scale(),
                               dbeta);

  const auto xs = x.Permuted(strided_layout);
  const auto dys = dy.Permuted(strided_layout);
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor<T> ys(xs.shape()), as(xs.shape()), ms(xs.shape()),
        ss(xs.shape()), dxs(xs.shape()), dbs(xs.shape());
    ops::SoftmaxForward(xs, 'k', ys);
    ops::ScaledSoftmaxForward(xs, 'k', 0.125f, mask, as, ms, ss);
    ops::SoftmaxBackwardDX(dys, ys, 'k', dxs);
    ops::ScaledSoftmaxBackwardDX(dys, ms, ss, 'k', 0.125f, mask.Scale(),
                                 dbs);
    EXPECT_TRUE(SameCanonical(y, ys)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(alpha, as)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(m, ms)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(saved, ss)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(dx, dxs)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(dbeta, dbs)) << strided_layout << " t=" << threads;
  }
}

TEST_F(OpsThreadedDeterminism, StridedSoftmaxBitwiseHalf) {
  StridedSoftmaxMatchesContiguous<Half>("kjbh");
}

TEST_F(OpsThreadedDeterminism, StridedSoftmaxBitwiseFloat) {
  StridedSoftmaxMatchesContiguous<float>("kbhj");
}

template <typename T>
void StridedFusedMatchesContiguous(const char* strided_layout) {
  const Shape contig("bji", {4, 9, 96});  // i innermost
  const Shape stat("bj", {4, 9});
  auto x = Tensor<T>::Random(contig, 61);
  auto resid_in = Tensor<T>::Random(contig, 62);
  auto bias = Tensor<T>::Random(Shape("i", {96}), 63);
  auto gamma = Tensor<T>::Random(Shape("i", {96}), 64);
  auto beta = Tensor<T>::Random(Shape("i", {96}), 65);
  DropoutMask mask(67, 0.25f);
  Tensor<T> relu(contig), brd_y(contig), brd_m(contig);
  Tensor<T> resid(contig), m(contig), y(contig);
  TensorF mean(stat), rstd(stat);
  ThreadPool::SetGlobalThreads(1);
  ops::BiasReluDropout(x, bias, mask, relu, brd_y, brd_m);
  ops::BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma, beta,
                                    'i', 1e-5f, resid, m, y, mean, rstd);

  const auto xs = x.Permuted(strided_layout);
  const auto rins = resid_in.Permuted(strided_layout);
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor<T> relus(xs.shape()), brd_ys(xs.shape()), brd_ms(xs.shape());
    Tensor<T> resids(xs.shape()), ms(xs.shape()), ys(xs.shape());
    TensorF means(stat), rstds(stat);
    ops::BiasReluDropout(xs, bias, mask, relus, brd_ys, brd_ms);
    ops::BiasDropoutResidualLayerNorm(xs, bias, rins, mask, gamma, beta, 'i',
                                      1e-5f, resids, ms, ys, means, rstds);
    EXPECT_TRUE(SameCanonical(relu, relus)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(brd_y, brd_ys)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(brd_m, brd_ms)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(resid, resids)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(m, ms)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(SameCanonical(y, ys)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(BitwiseSame(mean, means)) << strided_layout << " t=" << threads;
    EXPECT_TRUE(BitwiseSame(rstd, rstds)) << strided_layout << " t=" << threads;
  }
}

TEST_F(OpsThreadedDeterminism, StridedFusedBitwiseHalf) {
  StridedFusedMatchesContiguous<Half>("ijb");
}

TEST_F(OpsThreadedDeterminism, StridedFusedBitwiseFloat) {
  StridedFusedMatchesContiguous<float>("ibj");
}

}  // namespace
}  // namespace xflow
