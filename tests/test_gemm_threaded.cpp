// Bitwise determinism of the parallel GEMM: the macro-tile grid may be
// executed by any number of threads, but every output element must come out
// identical to the single-threaded run, across dtypes, ragged extents and
// strided (transposed) operand layouts.
#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"

namespace xflow {
namespace {

std::vector<std::int64_t> Iota(std::int64_t n, std::int64_t stride) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = i * stride;
  }
  return v;
}

std::vector<float> RandomFloats(std::int64_t n, std::uint64_t seed) {
  Philox4x32 gen(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] =
        gen.UniformAt(static_cast<std::uint64_t>(i)) - 0.5f;
  }
  return v;
}

std::vector<Half> RandomHalves(std::int64_t n, std::uint64_t seed) {
  const auto f = RandomFloats(n, seed);
  return {f.begin(), f.end()};
}

template <typename T>
bool BitwiseEqual(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

/// Runs C = alpha*A*B + beta*C on row-major operands at the given thread
/// count and returns the raw output buffer.
template <typename TIn, typename TOut>
std::vector<TOut> RunRowMajor(const std::vector<TIn>& a,
                              const std::vector<TIn>& b, std::int64_t m,
                              std::int64_t n, std::int64_t k, int threads,
                              float alpha = 1.0f, float beta = 0.0f) {
  ThreadPool::SetGlobalThreads(threads);
  // Pre-fill C deterministically so beta != 0 paths are exercised.
  std::vector<TOut> c(static_cast<std::size_t>(m * n));
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = TOut(static_cast<float>(i % 17) * 0.25f);
  }
  const auto a_m = Iota(m, k), a_k = Iota(k, 1);
  const auto b_k = Iota(k, n), b_n = Iota(n, 1);
  const auto c_m = Iota(m, n), c_n = Iota(n, 1);
  GemmOffsets<TIn, TOut>(a.data(), b.data(), c.data(), a_m, a_k, b_k, b_n,
                         c_m, c_n, alpha, beta);
  return c;
}

struct Extents {
  std::int64_t m, n, k;
};

// Block sizes in gemm.cpp are MB=64, NB=96, KB=256 with an 8x16 register
// tile; the ragged cases straddle every one of those boundaries.
const Extents kCases[] = {
    {1, 1, 1},      {3, 5, 7},      {4, 16, 1},    {64, 96, 256},
    {65, 97, 257},  {63, 95, 255},  {130, 50, 40}, {30, 200, 33},
    {128, 192, 64}, {17, 113, 300},
};

class GemmThreadedDeterminism : public ::testing::Test {
 protected:
  ~GemmThreadedDeterminism() override {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

TEST_F(GemmThreadedDeterminism, Fp32BitwiseAcrossThreadCounts) {
  for (const auto& e : kCases) {
    const auto a = RandomFloats(e.m * e.k, 1);
    const auto b = RandomFloats(e.k * e.n, 2);
    const auto ref =
        RunRowMajor<float, float>(a, b, e.m, e.n, e.k, /*threads=*/1);
    for (int threads : {2, 4, 8}) {
      const auto got = RunRowMajor<float, float>(a, b, e.m, e.n, e.k, threads);
      EXPECT_TRUE(BitwiseEqual(ref, got))
          << "m=" << e.m << " n=" << e.n << " k=" << e.k
          << " threads=" << threads;
    }
  }
}

TEST_F(GemmThreadedDeterminism, Fp16BitwiseAcrossThreadCounts) {
  for (const auto& e : kCases) {
    const auto a = RandomHalves(e.m * e.k, 3);
    const auto b = RandomHalves(e.k * e.n, 4);
    const auto ref =
        RunRowMajor<Half, Half>(a, b, e.m, e.n, e.k, /*threads=*/1);
    for (int threads : {2, 8}) {
      const auto got = RunRowMajor<Half, Half>(a, b, e.m, e.n, e.k, threads);
      EXPECT_TRUE(BitwiseEqual(ref, got))
          << "m=" << e.m << " n=" << e.n << " k=" << e.k
          << " threads=" << threads;
    }
  }
}

TEST_F(GemmThreadedDeterminism, MixedFp16InFp32OutBitwise) {
  for (const auto& e : kCases) {
    const auto a = RandomHalves(e.m * e.k, 5);
    const auto b = RandomHalves(e.k * e.n, 6);
    const auto ref =
        RunRowMajor<Half, float>(a, b, e.m, e.n, e.k, /*threads=*/1);
    const auto got = RunRowMajor<Half, float>(a, b, e.m, e.n, e.k, 8);
    EXPECT_TRUE(BitwiseEqual(ref, got))
        << "m=" << e.m << " n=" << e.n << " k=" << e.k;
  }
}

TEST_F(GemmThreadedDeterminism, AlphaBetaBitwiseAcrossThreadCounts) {
  const auto a = RandomFloats(65 * 130, 7);
  const auto b = RandomFloats(130 * 97, 8);
  const auto ref = RunRowMajor<float, float>(a, b, 65, 97, 130, 1, 0.5f, 2.0f);
  const auto got = RunRowMajor<float, float>(a, b, 65, 97, 130, 8, 0.5f, 2.0f);
  EXPECT_TRUE(BitwiseEqual(ref, got));
}

TEST_F(GemmThreadedDeterminism, TransposedLayoutsBitwiseAcrossThreadCounts) {
  // A stored column-major (a_m stride 1, a_k stride m) and B stored
  // column-major (b_k stride 1, b_n stride k): the offset tables encode
  // the transposition, packing must still be deterministic.
  const std::int64_t m = 70, n = 110, k = 90;
  const auto a = RandomFloats(m * k, 9);
  const auto b = RandomFloats(k * n, 10);
  const auto a_m = Iota(m, 1), a_k = Iota(k, m);
  const auto b_k = Iota(k, 1), b_n = Iota(n, k);
  const auto c_m = Iota(m, n), c_n = Iota(n, 1);
  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    GemmOffsets<float, float>(a.data(), b.data(), c.data(), a_m, a_k, b_k,
                              b_n, c_m, c_n, 1.0f, 0.0f);
    return c;
  };
  const auto ref = run(1);
  EXPECT_TRUE(BitwiseEqual(ref, run(4)));
  EXPECT_TRUE(BitwiseEqual(ref, run(8)));
}

TEST_F(GemmThreadedDeterminism, MatchesNaiveReferenceWithinTolerance) {
  // Guards against the parallel rewrite computing the *wrong* product
  // deterministically: check against a naive triple loop.
  const std::int64_t m = 33, n = 47, k = 129;
  const auto a = RandomFloats(m * k, 11);
  const auto b = RandomFloats(k * n, 12);
  const auto got = RunRowMajor<float, float>(a, b, m, n, k, 8);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float want = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        want += a[static_cast<std::size_t>(i * k + p)] *
                b[static_cast<std::size_t>(p * n + j)];
      }
      ASSERT_NEAR(want, got[static_cast<std::size_t>(i * n + j)],
                  1e-4f * static_cast<float>(k))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST_F(GemmThreadedDeterminism, EmptyKZeroesOrScalesOutput) {
  // k = 0: C must become beta * C (and exactly 0 when beta = 0).
  ThreadPool::SetGlobalThreads(4);
  const std::int64_t m = 8, n = 8;
  std::vector<float> a, b;
  std::vector<float> c(static_cast<std::size_t>(m * n), 3.0f);
  const auto c_m = Iota(m, n), c_n = Iota(n, 1);
  const std::vector<std::int64_t> empty;
  GemmOffsets<float, float>(a.data(), b.data(), c.data(), c_m, empty, empty,
                            c_n, c_m, c_n, 1.0f, 0.5f);
  for (float v : c) EXPECT_EQ(v, 1.5f);
}

}  // namespace
}  // namespace xflow
