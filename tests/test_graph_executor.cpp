// The graph-level executor must be an exact stand-in for the hand-wired
// layer: walking the planned dataflow graph op by op (or fused kernel by
// fused kernel) over arena views produces bitwise-identical activations
// and gradients at every thread count, in both kernel styles, and a
// steady-state executor step performs zero tensor/workspace allocations
// and zero einsum offset-table rebuilds.
#include "graph/executor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "fusion/fuser.hpp"
#include "graph/builder.hpp"
#include "tensor/memstats.hpp"
#include "transformer/arena.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

namespace xflow::transformer {
namespace {

using graph::ModelDims;

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { ThreadPool::SetGlobalThreads(threads); }
  ~ThreadGuard() {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

bool UnderSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

EncoderConfig Config(const ModelDims& dims, bool fused, bool executor) {
  EncoderConfig cfg;
  cfg.dims = dims;
  cfg.dropout_prob = 0.1f;
  cfg.seed = 7;
  cfg.use_fused_kernels = fused;
  cfg.use_graph_executor = executor;
  return cfg;
}

Shape Ibj(const ModelDims& d) { return Shape("ibj", {d.i, d.b, d.j}); }

/// Runs one forward+backward under each config (same dims, same seeds)
/// and asserts every saved activation and every gradient is bitwise
/// identical between the two runs.
void ExpectLayersMatchBitwise(const EncoderConfig& hand_cfg,
                              const EncoderConfig& exec_cfg) {
  const auto& dims = hand_cfg.dims;
  auto params = EncoderParamsT<Half>::Init(dims, 11);
  EncoderLayerT<Half> hand(hand_cfg, params);
  EncoderLayerT<Half> exec(exec_cfg, params);
  auto hand_arena = MakeEncoderArena<Half>(hand_cfg);
  auto exec_arena = MakeEncoderArena<Half>(exec_cfg);
  auto x = TensorH::Random(Ibj(dims), 13);

  EncoderActivationsT<Half> hand_acts, exec_acts;
  hand_acts.arena = &hand_arena;
  exec_acts.arena = &exec_arena;
  hand.Forward(x, hand_acts);
  exec.Forward(x, exec_acts);
  EXPECT_EQ(MaxAbsDiff(hand_acts.y, exec_acts.y), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.qq_b, exec_acts.qq_b), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.kk_b, exec_acts.kk_b), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.vv_b, exec_acts.vv_b), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.alpha, exec_acts.alpha), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.attn_mask, exec_acts.attn_mask), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.softmax_saved, exec_acts.softmax_saved),
            0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.gamma_t, exec_acts.gamma_t), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.attn_drop_mask, exec_acts.attn_drop_mask),
            0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.resid1, exec_acts.resid1), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ln1_mean, exec_acts.ln1_mean), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ln1_rstd, exec_acts.ln1_rstd), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ln1_out, exec_acts.ln1_out), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.relu1, exec_acts.relu1), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ff_dropped, exec_acts.ff_dropped), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ff_drop_mask, exec_acts.ff_drop_mask), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.lin2_drop_mask, exec_acts.lin2_drop_mask),
            0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.resid2, exec_acts.resid2), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ln2_mean, exec_acts.ln2_mean), 0.0);
  EXPECT_EQ(MaxAbsDiff(hand_acts.ln2_rstd, exec_acts.ln2_rstd), 0.0);

  auto d_y = TensorH::Random(Ibj(dims), 17);
  EncoderGradientsT<Half> hand_grads, exec_grads;
  hand_grads.arena = &hand_arena;
  exec_grads.arena = &exec_arena;
  hand.Backward(d_y, hand_acts, hand_grads);
  exec.Backward(d_y, exec_acts, exec_grads);
  EXPECT_EQ(MaxAbsDiff(hand_grads.d_x, exec_grads.d_x), 0.0);
  auto hand_named = hand_grads.params.Named();
  auto exec_named = exec_grads.params.Named();
  for (std::size_t p = 0; p < hand_named.size(); ++p) {
    EXPECT_EQ(MaxAbsDiff(*hand_named[p].second, *exec_named[p].second), 0.0)
        << hand_named[p].first;
  }
}

/// Hand-wired arena path vs executor path (task scheduler at its
/// default), bitwise.
void ExpectExecutorMatchesHandWired(const ModelDims& dims, bool fused,
                                    bool causal = false) {
  auto hand_cfg = Config(dims, fused, /*executor=*/false);
  auto exec_cfg = Config(dims, fused, /*executor=*/true);
  hand_cfg.causal = exec_cfg.causal = causal;
  ExpectLayersMatchBitwise(hand_cfg, exec_cfg);
}

/// Executor with the serial step loop vs executor with the concurrent
/// task scheduler, bitwise -- the scheduler may only change which thread
/// runs a step, never any result byte.
void ExpectTaskSchedulerMatchesSerial(const ModelDims& dims, bool fused) {
  auto serial_cfg = Config(dims, fused, /*executor=*/true);
  auto sched_cfg = Config(dims, fused, /*executor=*/true);
  serial_cfg.use_task_scheduler = false;
  sched_cfg.use_task_scheduler = true;
  ExpectLayersMatchBitwise(serial_cfg, sched_cfg);
}

TEST(GraphExecutor, BitwiseMatchesHandWiredTiny) {
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    for (bool fused : {true, false}) {
      SCOPED_TRACE(StrFormat("threads=%d fused=%d", threads, int(fused)));
      ExpectExecutorMatchesHandWired(ModelDims::Tiny(), fused);
    }
  }
}

TEST(GraphExecutor, BitwiseMatchesHandWiredTinyCausal) {
  ExpectExecutorMatchesHandWired(ModelDims::Tiny(), /*fused=*/true,
                                 /*causal=*/true);
}

TEST(GraphExecutor, BitwiseMatchesHandWiredBertBase) {
  // Full-size dims; the 1/8-thread CTest re-runs of this suite provide
  // the thread-count coverage. Skipped under sanitizers, where the
  // BERT-base contractions alone would dominate the job's budget (the
  // Tiny matrix above exercises every dispatch path there).
  if (UnderSanitizer()) {
    GTEST_SKIP() << "BERT-base bitwise suite is too slow under ASan/UBSan";
  }
  for (bool fused : {true, false}) {
    SCOPED_TRACE(StrFormat("fused=%d", int(fused)));
    ExpectExecutorMatchesHandWired(ModelDims::BertBase(), fused);
  }
}

TEST(GraphExecutor, TaskSchedulerBitwiseMatchesSerialTiny) {
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    for (bool fused : {true, false}) {
      SCOPED_TRACE(StrFormat("threads=%d fused=%d", threads, int(fused)));
      ExpectTaskSchedulerMatchesSerial(ModelDims::Tiny(), fused);
    }
  }
}

TEST(GraphExecutor, TaskSchedulerBitwiseMatchesSerialBertBase) {
  // Full-size dims, pool forced wide so the ready list genuinely runs
  // branches concurrently (the unfused schedule has the deepest DAG).
  if (UnderSanitizer()) {
    GTEST_SKIP() << "BERT-base bitwise suite is too slow under ASan/UBSan";
  }
  ThreadGuard guard(8);
  for (bool fused : {true, false}) {
    SCOPED_TRACE(StrFormat("fused=%d", int(fused)));
    ExpectTaskSchedulerMatchesSerial(ModelDims::BertBase(), fused);
  }
}

TEST(GraphExecutor, TaskSchedulerTrainsIdenticallyToSerial) {
  // Whole-loop equivalence under concurrency: a 4-step Adam trajectory
  // through the task-scheduled executor matches the serial-schedule
  // executor bit for bit (any schedule-dependent result byte would
  // compound across steps and show up here).
  ThreadGuard guard(8);
  constexpr int kLayers = 2;
  const auto dims = ModelDims::Tiny();
  auto run = [&](bool task_sched) {
    auto cfg = Config(dims, /*fused=*/true, /*executor=*/true);
    cfg.use_task_scheduler = task_sched;
    EncoderStackT<Half> stack(cfg, kLayers, 3);
    EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
    std::vector<EncoderActivationsT<Half>> acts;
    std::vector<EncoderGradientsT<Half>> grads;
    stack.BindWorkspace(workspace, acts, grads);
    auto x = TensorH::Random(Ibj(dims), 5);
    auto target = TensorH::Random(Ibj(dims), 6);
    TensorH d_y(Ibj(dims));
    MixedPrecisionAdam opt({.lr = 2e-3f});
    std::vector<std::vector<TensorF>> masters(kLayers);
    for (int l = 0; l < kLayers; ++l) {
      for (auto& [name, t] : stack.layer(l).params().Named()) {
        masters[static_cast<std::size_t>(l)].push_back(t->Cast<float>());
      }
    }
    for (int s = 0; s < 4; ++s) {
      const auto& y = stack.Forward(x, acts);
      MseLoss(y, target, d_y);
      stack.Backward(d_y, acts, grads);
      for (int l = 0; l < kLayers; ++l) {
        const auto lu = static_cast<std::size_t>(l);
        auto named_params = stack.layer(l).params().Named();
        auto named_grads = grads[lu].params.Named();
        for (std::size_t p = 0; p < named_params.size(); ++p) {
          opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                   masters[lu][p], *named_params[p].second,
                   *named_grads[p].second);
        }
      }
    }
    const auto& y = stack.Forward(x, acts);
    TensorH out(y.shape());
    CopyValuesInto(y, out);
    return out;
  };
  auto serial = run(false);
  auto sched = run(true);
  EXPECT_EQ(MaxAbsDiff(serial, sched), 0.0);
}

TEST(GraphExecutor, StackTrainsIdenticallyToHandWired) {
  // Whole-loop equivalence including the optimizer trajectory: N executor
  // train steps == N hand-wired train steps, bit for bit.
  constexpr int kLayers = 2;
  const auto dims = ModelDims::Tiny();
  auto run = [&](bool executor) {
    const auto cfg = Config(dims, /*fused=*/true, executor);
    EncoderStackT<Half> stack(cfg, kLayers, 3);
    EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
    std::vector<EncoderActivationsT<Half>> acts;
    std::vector<EncoderGradientsT<Half>> grads;
    stack.BindWorkspace(workspace, acts, grads);
    auto x = TensorH::Random(Ibj(dims), 5);
    auto target = TensorH::Random(Ibj(dims), 6);
    TensorH d_y(Ibj(dims));
    MixedPrecisionAdam opt({.lr = 2e-3f});
    std::vector<std::vector<TensorF>> masters(kLayers);
    for (int l = 0; l < kLayers; ++l) {
      for (auto& [name, t] : stack.layer(l).params().Named()) {
        masters[static_cast<std::size_t>(l)].push_back(t->Cast<float>());
      }
    }
    for (int s = 0; s < 4; ++s) {
      const auto& y = stack.Forward(x, acts);
      MseLoss(y, target, d_y);
      stack.Backward(d_y, acts, grads);
      for (int l = 0; l < kLayers; ++l) {
        const auto lu = static_cast<std::size_t>(l);
        auto named_params = stack.layer(l).params().Named();
        auto named_grads = grads[lu].params.Named();
        for (std::size_t p = 0; p < named_params.size(); ++p) {
          opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                   masters[lu][p], *named_params[p].second,
                   *named_grads[p].second);
        }
      }
    }
    const auto& y = stack.Forward(x, acts);
    TensorH out(y.shape());
    CopyValuesInto(y, out);
    return out;
  };
  auto hand = run(false);
  auto exec = run(true);
  EXPECT_EQ(MaxAbsDiff(hand, exec), 0.0);
}

TEST(GraphExecutor, SteadyStateExecutorStepIsAllocationFree) {
  // The executor's steady-state contract: after warmup, a full train step
  // through the graph executor performs zero tensor-buffer and zero
  // workspace allocations AND zero einsum offset-table rebuilds (the
  // per-(spec, shapes) table cache is warm).
  const auto dims = ModelDims::Tiny();
  const auto cfg = Config(dims, /*fused=*/true, /*executor=*/true);
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
  std::vector<EncoderActivationsT<Half>> acts;
  std::vector<EncoderGradientsT<Half>> grads;
  stack.BindWorkspace(workspace, acts, grads);

  auto x = TensorH::Random(Ibj(dims), 5);
  auto target = TensorH::Random(Ibj(dims), 6);
  TensorH d_y(Ibj(dims));
  MixedPrecisionAdam opt({.lr = 1e-3f});
  std::vector<std::vector<TensorF>> masters(kLayers);
  for (int l = 0; l < kLayers; ++l) {
    for (auto& [name, t] : stack.layer(l).params().Named()) {
      masters[static_cast<std::size_t>(l)].push_back(t->Cast<float>());
    }
  }

  double loss = 0;
  auto step = [&] {
    const auto& y = stack.Forward(x, acts);
    loss = MseLoss(y, target, d_y);
    stack.Backward(d_y, acts, grads);
    for (int l = 0; l < kLayers; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      auto named_params = stack.layer(l).params().Named();
      auto named_grads = grads[lu].params.Named();
      for (std::size_t p = 0; p < named_params.size(); ++p) {
        opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                 masters[lu][p], *named_params[p].second,
                 *named_grads[p].second);
      }
    }
  };

  step();  // warmup: executors, accumulators, optimizer state, tables
  step();
  const double warm_loss = loss;
  const auto before = memstats::Read();
  step();
  const auto after = memstats::Read();
  EXPECT_EQ(after.tensor_allocs, before.tensor_allocs)
      << "steady-state executor step allocated "
      << after.tensor_bytes - before.tensor_bytes << " tensor bytes";
  EXPECT_EQ(after.workspace_allocs, before.workspace_allocs);
  EXPECT_EQ(after.einsum_table_builds, before.einsum_table_builds)
      << "steady-state executor step rebuilt einsum offset tables";
  EXPECT_EQ(after.einsum_class_builds, before.einsum_class_builds)
      << "steady-state executor step reclassified einsum contractions";
  EXPECT_EQ(after.autotune_measures, before.autotune_measures)
      << "steady-state executor step re-tuned a contraction bucket";
  EXPECT_LT(loss, warm_loss);  // and it still trains
}

TEST(GraphExecutor, FuserGroupsMatchPlannedFusedSpans) {
  // The executor takes its fused schedule from fusion::FuseMaximally and
  // the memory plan takes its aliasing constraints from the hand-listed
  // fused_spans in EncoderPlanOptions. These must agree: a fused kernel
  // whose span the planner did not model could read inputs whose bytes
  // its own outputs recycled.
  const auto g = graph::BuildEncoder(ModelDims::Tiny(),
                                     graph::AlgebraicFusion::kQKV, true);
  const auto fused = fusion::FuseMaximally(g);
  std::vector<std::vector<std::string>> multi_op_groups;
  for (const auto& kernel : fused.kernels) {
    if (kernel.op_indices.size() < 2) continue;
    std::vector<std::string> names;
    for (int idx : kernel.op_indices) {
      names.push_back(g.ops()[static_cast<std::size_t>(idx)].name);
    }
    multi_op_groups.push_back(std::move(names));
  }
  EXPECT_EQ(multi_op_groups, EncoderPlanOptions<Half>().fused_spans);
}

TEST(GraphExecutor, ScheduleAndBoundary) {
  const auto dims = ModelDims::Tiny();
  const auto g =
      graph::BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);
  auto arena = MakeEncoderArena<Half>(Config(dims, true, true));
  graph::ExecutorOptions opts;
  opts.dropout_prob = 0.1f;
  opts.dropout_seeds = {1, 2, 3, 4};
  opts.stacked = EncoderPlanOptions<Half>().groups;

  opts.use_fused_kernels = true;
  graph::GraphExecutorT<Half> fused_exec(g, &arena.plan(), &arena.workspace(),
                                         opts);
  opts.use_fused_kernels = false;
  graph::GraphExecutorT<Half> unfused_exec(g, &arena.plan(),
                                           &arena.workspace(), opts);
  // The backward boundary is the first backward-kind op ("layernorm 2
  // dW"), identical in both schedules.
  int expected = -1;
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    if (g.ops()[i].name == "layernorm 2 dW") expected = static_cast<int>(i);
  }
  EXPECT_EQ(fused_exec.backward_begin(), expected);
  EXPECT_EQ(unfused_exec.backward_begin(), expected);
  // Fusion shrinks the schedule: the unfused schedule launches one kernel
  // per op, the fused one merges the paper's multi-op groups.
  EXPECT_EQ(unfused_exec.num_steps(), static_cast<int>(g.ops().size()));
  EXPECT_LT(fused_exec.num_steps(), unfused_exec.num_steps());
}

TEST(GraphExecutor, ExecutorForwardThenHandWiredBackward) {
  // Half-bound combination: acts on an arena (executor Forward), grads
  // owning (hand-wired Backward). The executor must leave acts complete
  // -- including the saved input x -- so the hand-wired backward works
  // and matches the fully hand-wired run bitwise.
  const auto dims = ModelDims::Tiny();
  auto params = EncoderParamsT<Half>::Init(dims, 11);
  EncoderLayerT<Half> hand(Config(dims, true, false), params);
  EncoderLayerT<Half> exec(Config(dims, true, true), params);
  auto exec_arena = MakeEncoderArena<Half>(Config(dims, true, true));
  auto x = TensorH::Random(Ibj(dims), 13);
  auto d_y = TensorH::Random(Ibj(dims), 17);

  EncoderActivationsT<Half> hand_acts, exec_acts;
  exec_acts.arena = &exec_arena;
  hand.Forward(x, hand_acts);
  exec.Forward(x, exec_acts);
  EXPECT_EQ(MaxAbsDiff(hand_acts.x, exec_acts.x), 0.0);

  EncoderGradientsT<Half> hand_grads, exec_grads;  // both owning
  hand.Backward(d_y, hand_acts, hand_grads);
  exec.Backward(d_y, exec_acts, exec_grads);  // falls back to hand-wired
  EXPECT_EQ(MaxAbsDiff(hand_grads.d_x, exec_grads.d_x), 0.0);
  auto hand_named = hand_grads.params.Named();
  auto exec_named = exec_grads.params.Named();
  for (std::size_t p = 0; p < hand_named.size(); ++p) {
    EXPECT_EQ(MaxAbsDiff(*hand_named[p].second, *exec_named[p].second), 0.0)
        << hand_named[p].first;
  }
}

TEST(GraphExecutor, RequiresExternalBindings) {
  // Running without binding the graph inputs/weights must fail loudly,
  // naming the container, instead of reading unbound memory.
  const auto dims = ModelDims::Tiny();
  const auto g =
      graph::BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);
  auto arena = MakeEncoderArena<Half>(Config(dims, true, true));
  graph::ExecutorOptions opts;
  opts.dropout_prob = 0.1f;
  opts.dropout_seeds = {1, 2, 3, 4};
  opts.stacked = EncoderPlanOptions<Half>().groups;
  graph::GraphExecutorT<Half> exec(g, &arena.plan(), &arena.workspace(),
                                   opts);
  EXPECT_THROW(exec.Forward(), InvalidArgument);
}

}  // namespace
}  // namespace xflow::transformer
