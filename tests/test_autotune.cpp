// The online contraction autotuner: a (class, shape bucket) is tuned at
// most once per process, warm lookups never re-measure (the memstats
// counters are the contract the serving plans of ROADMAP item 2 build
// on), the sim mode never touches the host timers, and tuning never
// changes a result byte -- every candidate is numerics-free.
#include "config/autotune.hpp"

#include <gtest/gtest.h>

#include "sim/kernel_model.hpp"
#include "tensor/memstats.hpp"
#include "transformer/arena.hpp"
#include "transformer/encoder.hpp"

namespace xflow {
namespace {

using config::AutotuneMode;
using config::Autotune;
using config::BucketOf;
using config::ExecCandidates;
using config::ParseAutotuneMode;
using config::ResetAutotuneCacheForTesting;
using config::ShapeBucket;

TEST(AutotuneMode, ParsesTheEnvKnob) {
  EXPECT_EQ(ParseAutotuneMode(nullptr), AutotuneMode::kMeasure);
  EXPECT_EQ(ParseAutotuneMode(""), AutotuneMode::kMeasure);
  EXPECT_EQ(ParseAutotuneMode("measure"), AutotuneMode::kMeasure);
  EXPECT_EQ(ParseAutotuneMode("on"), AutotuneMode::kMeasure);
  EXPECT_EQ(ParseAutotuneMode("sim"), AutotuneMode::kSim);
  EXPECT_EQ(ParseAutotuneMode("SIM"), AutotuneMode::kSim);
  EXPECT_EQ(ParseAutotuneMode("off"), AutotuneMode::kOff);
  EXPECT_EQ(ParseAutotuneMode("OFF"), AutotuneMode::kOff);
  EXPECT_EQ(ParseAutotuneMode("0"), AutotuneMode::kOff);
  EXPECT_EQ(ParseAutotuneMode("false"), AutotuneMode::kOff);
  EXPECT_EQ(ParseAutotuneMode("no"), AutotuneMode::kOff);
}

TEST(AutotuneBucket, RoundsExtentsUpToPowersOfTwo) {
  const GemmExtents e{.m = 70, .n = 1, .k = 33, .batch = 5};
  const auto b = BucketOf(EinsumClass::kGemv, e, 2);
  EXPECT_EQ(b.cls, EinsumClass::kGemv);
  EXPECT_EQ(b.m, 128);
  EXPECT_EQ(b.n, 1);
  EXPECT_EQ(b.k, 64);
  EXPECT_EQ(b.batch, 8);
  EXPECT_EQ(b.elem_bytes, 2);
  // Shapes in the same bucket share one tuned entry; shapes in different
  // buckets do not.
  const GemmExtents near{.m = 65, .n = 1, .k = 60, .batch = 8};
  EXPECT_EQ(BucketOf(EinsumClass::kGemv, near, 2), b);
  EXPECT_NE(BucketOf(EinsumClass::kGemm, e, 2), b);
  EXPECT_NE(BucketOf(EinsumClass::kGemv, e, 4), b);
}

TEST(AutotuneCandidates, HeuristicFirstThenClassSpecificKnobs) {
  const auto gemv =
      ExecCandidates(BucketOf(EinsumClass::kGemv,
                              {.m = 512, .n = 1, .k = 512, .batch = 1}, 4));
  ASSERT_FALSE(gemv.empty());
  EXPECT_EQ(gemv.front().batch_parallel, -1);
  EXPECT_EQ(gemv.front().row_grain, 0);
  EXPECT_GT(gemv.size(), 1u);  // row-grain variants for the row kernels

  const auto gemm =
      ExecCandidates(BucketOf(EinsumClass::kGemm,
                              {.m = 512, .n = 512, .k = 512, .batch = 1}, 4));
  EXPECT_EQ(gemm.size(), 1u);  // nothing to vary: the tile pipeline

  const auto batched = ExecCandidates(BucketOf(
      EinsumClass::kBatchedGemm, {.m = 64, .n = 64, .k = 64, .batch = 8}, 4));
  EXPECT_GT(batched.size(), 1u);  // batch-vs-tile parallelism variants
}

TEST(Autotune, ColdTunesOnceThenEveryLookupIsWarm) {
  ResetAutotuneCacheForTesting();
  const auto bucket = BucketOf(EinsumClass::kGemv,
                               {.m = 300, .n = 1, .k = 77, .batch = 1}, 4);
  int calls = 0;
  const config::MeasureFn fn = [&](const EinsumExecConfig& cand) {
    ++calls;
    return cand.row_grain == 256 ? 0.5 : 1.0;  // deterministic "winner"
  };

  const auto before = memstats::Read();
  const auto cold = Autotune(bucket, fn, AutotuneMode::kMeasure);
  const auto mid = memstats::Read();
  EXPECT_EQ(mid.autotune_measures, before.autotune_measures + 1);
  EXPECT_TRUE(cold.measured);
  EXPECT_GT(calls, 0);
  EXPECT_EQ(cold.exec.row_grain, 256);  // the measured-fastest candidate

  const int calls_after_cold = calls;
  const auto warm = Autotune(bucket, fn, AutotuneMode::kMeasure);
  const auto after = memstats::Read();
  EXPECT_EQ(after.autotune_measures, mid.autotune_measures)
      << "a warm autotune lookup re-measured";
  EXPECT_EQ(after.autotune_hits, mid.autotune_hits + 1);
  EXPECT_EQ(calls, calls_after_cold);
  EXPECT_EQ(warm.exec.row_grain, cold.exec.row_grain);
  EXPECT_EQ(warm.exec.batch_parallel, cold.exec.batch_parallel);
}

TEST(Autotune, SimModeNeverTouchesTheTimers) {
  ResetAutotuneCacheForTesting();
  const auto bucket = BucketOf(EinsumClass::kBatchedGemm,
                               {.m = 48, .n = 48, .k = 48, .batch = 6}, 2);
  int calls = 0;
  const config::MeasureFn fn = [&](const EinsumExecConfig&) {
    ++calls;
    return 1.0;
  };
  const auto entry = Autotune(bucket, fn, AutotuneMode::kSim);
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(entry.measured);
  // The roofline ranking still ran: a concrete algorithm was picked.
  EXPECT_GE(entry.algorithm, 0);
  EXPECT_LT(entry.algorithm, sim::kNumGemmAlgorithms);
  EXPECT_GT(entry.sim_us, 0.0);
}

TEST(Autotune, OffModeBypassesTheCacheEntirely) {
  const auto bucket = BucketOf(EinsumClass::kGer,
                               {.m = 99, .n = 31, .k = 1, .batch = 1}, 4);
  const auto before = memstats::Read();
  const auto entry = Autotune(bucket, nullptr, AutotuneMode::kOff);
  const auto after = memstats::Read();
  EXPECT_EQ(after.autotune_measures, before.autotune_measures);
  EXPECT_EQ(after.autotune_hits, before.autotune_hits);
  EXPECT_FALSE(entry.measured);
  EXPECT_EQ(entry.exec.batch_parallel, -1);  // the built-in heuristics
  EXPECT_EQ(entry.exec.row_grain, 0);
}

// End-to-end: a warm executor step never re-measures -- the second
// execution of every (op class, shape bucket) hits the config cache.
TEST(Autotune, WarmExecutorStepHitsTheConfigCache) {
  if (config::AutotuneModeFromEnv() == AutotuneMode::kOff) {
    GTEST_SKIP() << "XFLOW_AUTOTUNE=off disables the cache";
  }
  using namespace transformer;
  EncoderConfig cfg;
  cfg.dims = graph::ModelDims::Tiny();
  cfg.dropout_prob = 0.1f;
  cfg.seed = 7;
  cfg.use_fused_kernels = true;
  cfg.use_graph_executor = true;
  auto params = EncoderParamsT<Half>::Init(cfg.dims, 11);
  EncoderLayerT<Half> layer(cfg, params);
  auto arena = MakeEncoderArena<Half>(cfg);
  auto x = TensorH::Random(Shape("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j}),
                           13);
  EncoderActivationsT<Half> acts;
  acts.arena = &arena;

  layer.Forward(x, acts);  // cold: fills the per-bucket entries
  const auto before = memstats::Read();
  layer.Forward(x, acts);
  const auto after = memstats::Read();
  EXPECT_EQ(after.autotune_measures, before.autotune_measures)
      << "a warm executor step re-tuned a contraction bucket";
  EXPECT_GT(after.autotune_hits, before.autotune_hits)
      << "the warm step did not consult the config cache";

  // A *new* executor over the same shapes is warm from the start -- the
  // process-wide cache is what item 2's plan cache will lean on.
  EncoderLayerT<Half> second(cfg, params);
  auto arena2 = MakeEncoderArena<Half>(cfg);
  EncoderActivationsT<Half> acts2;
  acts2.arena = &arena2;
  const auto fresh_before = memstats::Read();
  second.Forward(x, acts2);
  const auto fresh_after = memstats::Read();
  EXPECT_EQ(fresh_after.autotune_measures, fresh_before.autotune_measures)
      << "a second executor over tuned shapes re-measured";
  EXPECT_EQ(MaxAbsDiff(acts.y, acts2.y), 0.0);
}

}  // namespace
}  // namespace xflow
