// Failure injection: malformed inputs must be rejected loudly, with the
// library's exception types, never with silent corruption.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"
#include "transformer/encoder.hpp"

namespace xflow {
namespace {

TEST(Errors, EinsumMismatchedContractionExtents) {
  auto a = TensorF::Random(Shape("mk", {4, 8}), 1);
  auto b = TensorF::Random(Shape("kn", {9, 4}), 2);  // k: 8 vs 9
  EXPECT_THROW(Einsum<float>("mk,kn->mn", a, b), InvalidArgument);
}

TEST(Errors, EinsumMismatchedBatchExtents) {
  auto a = TensorF::Random(Shape("bmk", {2, 4, 8}), 1);
  auto b = TensorF::Random(Shape("bkn", {3, 8, 4}), 2);  // b: 2 vs 3
  EXPECT_THROW(Einsum<float>("bmk,bkn->bmn", a, b), InvalidArgument);
}

TEST(Errors, EinsumIntoWrongRankOutput) {
  auto a = TensorF::Random(Shape("mk", {4, 8}), 1);
  auto b = TensorF::Random(Shape("kn", {8, 4}), 2);
  TensorF bad(Shape("mnx", {4, 4, 2}));
  EXPECT_THROW(
      EinsumInto<float>(EinsumSpec::Parse("mk,kn->mn"), a, b, bad, 1, 0),
      InvalidArgument);
}

TEST(Errors, SoftmaxOverMissingDim) {
  auto x = TensorF::Random(Shape("ab", {4, 4}), 1);
  TensorF y(x.shape());
  EXPECT_THROW(ops::SoftmaxForward(x, 'z', y), InvalidArgument);
}

TEST(Errors, CausalSoftmaxNeedsQueryDim) {
  auto x = TensorF::Random(Shape("hbjk", {2, 2, 4, 4}), 1);
  TensorF a(x.shape()), m(x.shape()), s(x.shape());
  EXPECT_THROW(
      ops::CausalScaledSoftmaxForward(x, 'k', 'z', 1.0f, DropoutMask(1, 0.0f),
                                      a, m, s),
      InvalidArgument);
}

TEST(Errors, LayerNormDwRequiresOneDimensionalGradients) {
  auto dy = TensorF::Random(Shape("bi", {2, 8}), 1);
  auto x = TensorF::Random(Shape("bi", {2, 8}), 2);
  TensorF mean(Shape("b", {2})), rstd(Shape("b", {2}));
  TensorF bad_dgamma(Shape("bi", {2, 8})), dbeta(Shape("i", {8}));
  EXPECT_THROW(ops::LayerNormBackwardDW(dy, x, mean, rstd, 'i', bad_dgamma,
                                        dbeta),
               InvalidArgument);
}

TEST(Errors, SliceOutOfRange) {
  auto t = TensorF::Random(Shape("pi", {8, 4}), 1);
  EXPECT_THROW(t.SliceDim('p', 6, 4), InvalidArgument);
  EXPECT_THROW(t.SliceDim('p', -1, 2), InvalidArgument);
  EXPECT_THROW(t.SliceDim('p', 0, 0), InvalidArgument);
}

TEST(Errors, PermutedRequiresFullPermutation) {
  auto t = TensorF::Random(Shape("abc", {2, 3, 4}), 1);
  EXPECT_THROW(t.Permuted("ab"), InvalidArgument);     // missing dim
  EXPECT_THROW(t.Permuted("abz"), InvalidArgument);    // unknown dim
}

TEST(Errors, BackwardGraphRequiresQkvFusion) {
  EXPECT_THROW(BuildEncoder(graph::ModelDims::Tiny(),
                            graph::AlgebraicFusion::kNone, true),
               InvalidArgument);
}

TEST(Errors, ViewBindRejectsOversizedRank) {
  // Kernels are documented for rank <= 4; a rank-5 tensor must be refused.
  Shape big("abcde", {2, 2, 2, 2, 2});
  auto x = TensorF::Random(big, 1);
  TensorF y(big);
  EXPECT_THROW(ops::SoftmaxForward(x, 'e', y), InvalidArgument);
}

TEST(Errors, MessagesCarrySourceLocation) {
  try {
    require(false, "synthetic failure");
    FAIL();
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_errors.cpp"), std::string::npos);
    EXPECT_NE(what.find("synthetic failure"), std::string::npos);
  }
}

}  // namespace
}  // namespace xflow
