// TaskGroup semantics and stress: nested spawns, help-while-waiting,
// exception propagation, and the Resize-safety contract. The *Stress
// tests exist primarily for the TSan CI stage (they run under the
// threaded label's pinned-thread re-runs): they drive heavy concurrent
// spawn/steal/ParallelFor traffic so any unlocked shared state in the
// pool surfaces as a race report.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/threadpool.hpp"

namespace xflow {
namespace {

TEST(TaskGroup, RunsEverySpawnedTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  auto task = [&] { runs.fetch_add(1, std::memory_order_relaxed); };
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) group.Spawn(task);
  group.Wait();
  EXPECT_EQ(runs.load(), 100);
}

TEST(TaskGroup, IsReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  auto task = [&] { runs.fetch_add(1, std::memory_order_relaxed); };
  TaskGroup group(pool);
  for (int round = 1; round <= 5; ++round) {
    for (int i = 0; i < 10; ++i) group.Spawn(task);
    group.Wait();
    ASSERT_EQ(runs.load(), 10 * round);
  }
}

TEST(TaskGroup, SingleThreadPoolRunsInlineInSpawnOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  int next = 0;
  auto task = [&] { order.push_back(next++); };
  TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) group.Spawn(task);
  // Inline execution: everything already ran, in spawn order, before Wait.
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  group.Wait();
}

TEST(TaskGroup, NestedGroupsDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  auto leaf = [&] { leaves.fetch_add(1, std::memory_order_relaxed); };
  auto branch = [&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) inner.Spawn(leaf);
    inner.Wait();
  };
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) outer.Spawn(branch);
  outer.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGroup, TasksMayRunParallelForOnTheSamePool) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  auto task = [&] {
    pool.ParallelFor(256, 16, [&](std::int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  };
  TaskGroup group(pool);
  for (int i = 0; i < 6; ++i) group.Spawn(task);
  group.Wait();
  EXPECT_EQ(total.load(), 6 * 256);
}

TEST(TaskGroup, WaitRethrowsTheFirstTaskError) {
  ThreadPool pool(4);
  std::atomic<int> ticket{0};
  std::atomic<int> ran{0};
  auto task = [&] {
    if (ticket.fetch_add(1, std::memory_order_relaxed) == 3) {
      throw std::runtime_error("task failure");
    }
    ran.fetch_add(1, std::memory_order_relaxed);
  };
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) group.Spawn(task);
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // A failed group skips (not crashes) its stragglers and is reusable.
  const int before = ran.load();
  auto ok = [&] { ran.fetch_add(1, std::memory_order_relaxed); };
  group.Spawn(ok);
  group.Wait();
  EXPECT_EQ(ran.load(), before + 1);
}

TEST(TaskGroup, DestructorWaitsSoClosuresNeverDangle) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  {
    // Declared before the group: the group's destructor must finish every
    // task before `slow` (and `done`) go out of scope.
    auto slow = [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    };
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) group.Spawn(slow);
    // No Wait(): the destructor provides the lifetime guarantee.
  }
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskGroup, ConcurrentGroupsFromTwoApplicationThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  auto work = [&] {
    auto leaf = [&] { total.fetch_add(1, std::memory_order_relaxed); };
    for (int round = 0; round < 25; ++round) {
      TaskGroup group(pool);
      for (int i = 0; i < 20; ++i) group.Spawn(leaf);
      group.Wait();
    }
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 25 * 20);
}

TEST(TaskGroup, SetGlobalThreadsRefusesWhileAGroupIsActive) {
  ThreadPool::SetGlobalThreads(2);
  {
    TaskGroup group;  // on the global pool
    // Resizing now would tear down workers a live group may be using.
    EXPECT_THROW(ThreadPool::SetGlobalThreads(4), InvalidArgument);
  }
  // With the group gone the resize is legal again.
  ThreadPool::SetGlobalThreads(4);
  EXPECT_EQ(ThreadPool::Global().threads(), 4);
  ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
}

// The TSan centerpiece: nested groups, work stealing between eight
// workers, ParallelFor splitting inside tasks, and cross-group help all
// running hot for many rounds. Any missing synchronization in the deque /
// inbox / sleep handshake shows up here as a race or a lost task (the
// exact final count is asserted).
TEST(TaskGroupStress, NestedSpawnStealAndParallelForMix) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> cells{0};
  auto leaf = [&] { cells.fetch_add(1, std::memory_order_relaxed); };
  auto branch = [&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 4; ++i) inner.Spawn(leaf);
    pool.ParallelFor(64, 4, [&](std::int64_t) {
      cells.fetch_add(1, std::memory_order_relaxed);
    });
    inner.Wait();
  };
  constexpr int kRounds = 50;
  constexpr int kBranches = 16;
  for (int round = 0; round < kRounds; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < kBranches; ++i) group.Spawn(branch);
    group.Wait();
  }
  EXPECT_EQ(cells.load(),
            static_cast<std::int64_t>(kRounds) * kBranches * (4 + 64));
}

TEST(TaskGroupStress, DeepNestingUnderConcurrentExternalSubmitters) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> total{0};
  auto leaf = [&] { total.fetch_add(1, std::memory_order_relaxed); };
  auto mid = [&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 3; ++i) inner.Spawn(leaf);
    inner.Wait();
  };
  // Three external (non-worker) threads each submit nested trees through
  // the shared inbox while workers steal between themselves.
  auto submitter = [&] {
    for (int round = 0; round < 20; ++round) {
      TaskGroup group(pool);
      for (int i = 0; i < 8; ++i) group.Spawn(mid);
      group.Wait();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) threads.emplace_back(submitter);
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 3 * 20 * 8 * 3);
}

}  // namespace
}  // namespace xflow
