// Coverage for the tensor helpers added for the transformer layer:
// RenamedDim, ConcatDim, SliceDim round trips, and GemmOffsets corners.
#include <gtest/gtest.h>

#include "tensor/einsum.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace xflow {
namespace {

TEST(RenamedDim, KeepsDataAndOrder) {
  auto t = TensorF::Random(Shape("phbj", {2, 3, 4, 5}), 1);
  auto r = t.RenamedDim('j', 'k');
  EXPECT_EQ(r.shape().names(), "phbk");
  EXPECT_EQ(r.extent('k'), 5);
  // Same memory contents, element for element.
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], r.data()[i]);
  }
}

TEST(RenamedDim, DoubleRenameRoundTrips) {
  auto t = TensorF::Random(Shape("whbk", {2, 3, 4, 5}), 2);
  auto round = t.RenamedDim('w', 'p').RenamedDim('p', 'w');
  EXPECT_EQ(round.shape(), t.shape());
}

TEST(ConcatDim, StacksAlongNamedDim) {
  auto a = TensorF::Full(Shape("pb", {2, 3}), 1.0f);
  auto b = TensorF::Full(Shape("pb", {2, 3}), 2.0f);
  auto c = TensorF::Full(Shape("pb", {1, 3}), 3.0f);
  auto s = ConcatDim<float>({&a, &b, &c}, 'p');
  EXPECT_EQ(s.extent('p'), 5);
  EXPECT_EQ(s.extent('b'), 3);
  EXPECT_FLOAT_EQ(s.at({{'p', 0}, {'b', 1}}), 1.0f);
  EXPECT_FLOAT_EQ(s.at({{'p', 3}, {'b', 2}}), 2.0f);
  EXPECT_FLOAT_EQ(s.at({{'p', 4}, {'b', 0}}), 3.0f);
}

TEST(ConcatDim, InverseOfSliceDim) {
  auto t = TensorH::Random(Shape("phb", {6, 2, 3}), 3);
  auto a = t.SliceDim('p', 0, 2);
  auto b = t.SliceDim('p', 2, 2);
  auto c = t.SliceDim('p', 4, 2);
  auto round = ConcatDim<Half>({&a, &b, &c}, 'p');
  EXPECT_EQ(MaxAbsDiff(t, round), 0.0);
}

TEST(ConcatDim, WorksAcrossLayouts) {
  auto a = TensorF::Random(Shape("pb", {2, 3}), 4).Permuted("bp");
  auto b = TensorF::Random(Shape("pb", {2, 3}), 5).Permuted("bp");
  auto s = ConcatDim<float>({&a, &b}, 'p');
  EXPECT_EQ(s.extent('p'), 4);
  EXPECT_FLOAT_EQ(s.at({{'p', 2}, {'b', 1}}), b.at({{'p', 0}, {'b', 1}}));
}

TEST(GemmOffsets, BetaTwoDoublesPriorOutput) {
  const std::vector<std::int64_t> m = {0, 1}, n = {0, 1}, k = {0, 1};
  std::vector<float> a = {1, 0, 0, 1};  // identity
  std::vector<float> b = {1, 2, 3, 4};
  std::vector<float> c = {10, 10, 10, 10};
  const std::vector<std::int64_t> row = {0, 2}, col = {0, 1};
  GemmOffsets<float, float>(a.data(), b.data(), c.data(), row, col, row, col,
                            row, col, 1.0f, 2.0f);
  // c = 1*A.B + 2*c_prior = b + 20.
  EXPECT_FLOAT_EQ(c[0], 21.0f);
  EXPECT_FLOAT_EQ(c[3], 24.0f);
}

TEST(GemmOffsets, AlphaZeroWithBetaOneIsIdentityOnC) {
  const std::vector<std::int64_t> idx = {0, 1}, stride = {0, 2};
  std::vector<float> a = {1, 2, 3, 4}, b = {5, 6, 7, 8};
  std::vector<float> c = {9, 9, 9, 9};
  GemmOffsets<float, float>(a.data(), b.data(), c.data(), stride, idx,
                            stride, idx, stride, idx, 0.0f, 1.0f);
  for (float v : c) EXPECT_FLOAT_EQ(v, 9.0f);
}

TEST(GemmOffsets, LargeKExercisesBlocking) {
  // K larger than the 256-wide blocking: verify against the reference.
  auto a = TensorF::Random(Shape("mk", {3, 700}), 6);
  auto b = TensorF::Random(Shape("kn", {700, 2}), 7);
  auto fast = Einsum<float>("mk,kn->mn", a, b);
  auto ref = EinsumRef<float>("mk,kn->mn", a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-4);
}

TEST(Einsum, FourDimBatchedContractionAcrossLayouts) {
  // gamma-style: whbk,hbjk->whbj with every operand in a shuffled layout.
  auto vv = TensorH::Random(Shape("whbk", {4, 2, 3, 6}), 8).Permuted("bkwh");
  auto alpha =
      TensorH::Random(Shape("hbjk", {2, 3, 5, 6}), 9).Permuted("kjhb");
  auto fast = Einsum<Half>("whbk,hbjk->whbj", vv, alpha);
  auto ref = EinsumRef<Half>("whbk,hbjk->whbj", vv, alpha);
  EXPECT_LT(MaxAbsDiff(fast, ref), 0.02);
}

}  // namespace
}  // namespace xflow
