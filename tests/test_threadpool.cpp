#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace xflow {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 7, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, HandlesEmptyAndSingleElementLoops) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, 64, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<int> count{0};
  pool.ParallelFor(10, 1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, CallerParticipatesInTheLoop) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  // The caller claims chunks from the same cursor as the worker, but on a
  // heavily loaded machine the lone worker can drain a whole small loop
  // before the caller's first fetch -- so assert participation across a
  // few attempts rather than demanding it on one specific run.
  bool caller_ran = false;
  for (int attempt = 0; attempt < 50 && !caller_ran; ++attempt) {
    std::mutex mu;
    std::set<std::thread::id> ids;
    pool.ParallelFor(1024, 1, [&](std::int64_t) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
      if (std::this_thread::get_id() == caller) caller_ran = true;
    });
    EXPECT_LE(ids.size(), 2u);  // caller + at most one worker
  }
  EXPECT_TRUE(caller_ran);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.ParallelFor(8, 1, [&](std::int64_t) {
    EXPECT_TRUE(ThreadPool::InWorker() || true);  // either role is fine
    pool.ParallelFor(8, 1, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, InWorkerIsFalseOnTheMainThread) {
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPool, ConcurrentTopLevelCallsFromTwoThreads) {
  // Two application threads race top-level ParallelFor on one pool; the
  // loser of the job-ownership race must fall back to inline execution,
  // never clobber the in-flight job.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  auto work = [&] {
    for (int round = 0; round < 25; ++round) {
      pool.ParallelFor(100, 3, [&](std::int64_t) { total.fetch_add(1); });
    }
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 25 * 100);
}

TEST(ThreadPool, SequentialReuseOfTheSamePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(97, 5, [&](std::int64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 97) << "round " << round;
  }
}

TEST(ThreadPool, GlobalPoolExistsAndSetGlobalThreadsResizes) {
  EXPECT_GE(ThreadPool::Global().threads(), 1);
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().threads(), 3);
  std::atomic<int> count{0};
  ParallelFor(33, 2, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 33);
  // Restore the env-resolved default for any later test in this binary.
  ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
}

TEST(ThreadPool, ResolveGlobalThreadsIsPositive) {
  EXPECT_GE(ThreadPool::ResolveGlobalThreads(), 1);
}

}  // namespace
}  // namespace xflow
