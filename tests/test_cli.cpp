#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xflow {
namespace {

ArgParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesIntsDoublesStrings) {
  auto p = Parse({"--batch=8", "--lr=0.001", "--name=bert"});
  EXPECT_EQ(p.GetInt("batch", 1), 8);
  EXPECT_DOUBLE_EQ(p.GetDouble("lr", 1.0), 0.001);
  EXPECT_EQ(p.GetString("name", "x"), "bert");
}

TEST(Cli, FallbacksApplyWhenMissing) {
  auto p = Parse({});
  EXPECT_EQ(p.GetInt("batch", 42), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("lr", 0.5), 0.5);
  EXPECT_EQ(p.GetString("name", "dflt"), "dflt");
  EXPECT_FALSE(p.GetFlag("verbose"));
}

TEST(Cli, FlagsWithAndWithoutValues) {
  auto p = Parse({"--verbose", "--fused=false", "--causal=1"});
  EXPECT_TRUE(p.GetFlag("verbose"));
  EXPECT_FALSE(p.GetFlag("fused"));
  EXPECT_TRUE(p.GetFlag("causal"));
}

TEST(Cli, FlagValuesAreCaseInsensitive) {
  auto p = Parse({"--a=False", "--b=FALSE", "--c=Off", "--d=NO",
                  "--e=True", "--f=ON", "--g=Yes"});
  EXPECT_FALSE(p.GetFlag("a"));
  EXPECT_FALSE(p.GetFlag("b"));
  EXPECT_FALSE(p.GetFlag("c"));
  EXPECT_FALSE(p.GetFlag("d"));
  EXPECT_TRUE(p.GetFlag("e"));
  EXPECT_TRUE(p.GetFlag("f"));
  EXPECT_TRUE(p.GetFlag("g"));
}

TEST(Cli, FlagOffAndNoSpellingsAreFalse) {
  auto p = Parse({"--x=off", "--y=no", "--z=0"});
  EXPECT_FALSE(p.GetFlag("x"));
  EXPECT_FALSE(p.GetFlag("y"));
  EXPECT_FALSE(p.GetFlag("z"));
}

TEST(Cli, UnrecognizedFlagValueThrows) {
  auto p = Parse({"--fused=maybe", "--causal=2"});
  EXPECT_THROW((void)p.GetFlag("fused"), InvalidArgument);
  EXPECT_THROW((void)p.GetFlag("causal"), InvalidArgument);
}

TEST(Cli, IntTrailingGarbageThrows) {
  auto p = Parse({"--batch=8x", "--hex=0x10", "--pad=12 "});
  EXPECT_THROW((void)p.GetInt("batch", 1), InvalidArgument);
  EXPECT_THROW((void)p.GetInt("hex", 1), InvalidArgument);
  EXPECT_THROW((void)p.GetInt("pad", 1), InvalidArgument);
}

TEST(Cli, IntRangeAndSigns) {
  auto p = Parse({"--huge=99999999999999999999999", "--neg=-3", "--pos=+5",
                  "--empty="});
  EXPECT_THROW((void)p.GetInt("huge", 1), InvalidArgument);
  EXPECT_EQ(p.GetInt("neg", 1), -3);
  EXPECT_EQ(p.GetInt("pos", 1), 5);
  EXPECT_THROW((void)p.GetInt("empty", 1), InvalidArgument);
}

TEST(Cli, DoubleTrailingGarbageAndOverflowThrow) {
  auto p = Parse({"--lr=1.5GB", "--big=1e999", "--sci=2.5e-3"});
  EXPECT_THROW((void)p.GetDouble("lr", 1.0), InvalidArgument);
  EXPECT_THROW((void)p.GetDouble("big", 1.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(p.GetDouble("sci", 1.0), 2.5e-3);
}

TEST(Cli, DoubleRejectsInfAndNan) {
  auto p = Parse({"--a=inf", "--b=-inf", "--c=nan"});
  EXPECT_THROW((void)p.GetDouble("a", 1.0), InvalidArgument);
  EXPECT_THROW((void)p.GetDouble("b", 1.0), InvalidArgument);
  EXPECT_THROW((void)p.GetDouble("c", 1.0), InvalidArgument);
}

TEST(Cli, PositionalArgumentsPreserved) {
  auto p = Parse({"input.bin", "--x=1", "output.bin"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.bin");
  EXPECT_EQ(p.positional()[1], "output.bin");
}

TEST(Cli, MalformedNumbersThrow) {
  auto p = Parse({"--batch=eight", "--lr=fast"});
  EXPECT_THROW((void)p.GetInt("batch", 1), InvalidArgument);
  EXPECT_THROW((void)p.GetDouble("lr", 1.0), InvalidArgument);
}

TEST(Cli, UnknownOptionDetection) {
  auto p = Parse({"--known=1", "--typo=2"});
  EXPECT_EQ(p.GetInt("known", 0), 1);
  const auto unknown = p.UnknownOptions();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace xflow
