#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "common/units.hpp"

namespace xflow::graph {
namespace {

TEST(DataflowGraph, RejectsUndefinedInputs) {
  DataflowGraph g;
  g.AddTensor("a", Shape("x", {4}));
  OpNode op;
  op.name = "bad";
  op.inputs = {"missing"};
  op.outputs = {"a"};
  EXPECT_THROW(g.AddOp(op), InvalidArgument);
}

TEST(DataflowGraph, RejectsDoubleProducer) {
  DataflowGraph g;
  g.AddTensor("a", Shape("x", {4}));
  g.AddTensor("b", Shape("x", {4}));
  OpNode op1{.name = "p1", .inputs = {"a"}, .outputs = {"b"}};
  OpNode op2{.name = "p2", .inputs = {"a"}, .outputs = {"b"}};
  g.AddOp(op1);
  EXPECT_THROW(g.AddOp(op2), InvalidArgument);
}

TEST(DataflowGraph, ProducerConsumerLookup) {
  DataflowGraph g;
  g.AddTensor("a", Shape("x", {4}));
  g.AddTensor("b", Shape("x", {4}));
  g.AddTensor("c", Shape("x", {4}));
  g.AddOp({.name = "f", .inputs = {"a"}, .outputs = {"b"}});
  g.AddOp({.name = "g", .inputs = {"b"}, .outputs = {"c"}});
  EXPECT_EQ(g.ProducerOf("a"), -1);
  EXPECT_EQ(g.ProducerOf("b"), 0);
  EXPECT_EQ(g.ProducerOf("c"), 1);
  EXPECT_EQ(g.ConsumersOf("b"), std::vector<int>{1});
  EXPECT_TRUE(g.ConsumersOf("c").empty());
}

// ---------------------------------------------------------------------------
// Fig. 1: MHA forward dataflow annotations.

class MhaGraphTest : public ::testing::Test {
 protected:
  DataflowGraph g_ = BuildMhaForward(ModelDims::BertLarge());
};

TEST_F(MhaGraphTest, ProjectionFlopMatchesPaper) {
  // Fig. 1 annotates each input projection with 8G flop at ~910 flop/IO.
  for (const char* name : {"Q", "K", "V"}) {
    const auto cost = CostOf(g_, g_.op(name));
    EXPECT_NEAR(cost.flop / 1e9, 8.6, 0.1) << name;
    EXPECT_NEAR(cost.FlopPerIo(), 910, 15) << name;
    EXPECT_EQ(ClassifyBoundedness(cost), Boundedness::kFlopDominated);
  }
}

TEST_F(MhaGraphTest, AttentionScoreFlopPerIoMatchesPaper) {
  // Fig. 1: QKT and gamma are 4G flop at ~102 flop/IO.
  for (const char* name : {"QKT", "gamma"}) {
    const auto cost = CostOf(g_, g_.op(name));
    EXPECT_NEAR(cost.flop / 1e9, 4.3, 0.1) << name;
    EXPECT_NEAR(cost.FlopPerIo(), 102, 5) << name;
  }
}

TEST_F(MhaGraphTest, SoftmaxIsIoDominatedAtPaperRatio) {
  // Fig. 1: softmax ~160-200M flop at ~2.5 flop/IO => memory bound.
  const auto cost = CostOf(g_, g_.op("scaled softmax"));
  EXPECT_NEAR(cost.flop / 1e6, 201, 5);
  EXPECT_NEAR(cost.FlopPerIo(), 1.5, 1.2);  // mask outputs included
  EXPECT_EQ(ClassifyBoundedness(cost), Boundedness::kIoDominated);
}

TEST_F(MhaGraphTest, BiasOpsAreIoDominated) {
  for (const char* name : {"bias Q", "bias K", "bias V", "bias out"}) {
    const auto cost = CostOf(g_, g_.op(name));
    EXPECT_LT(cost.FlopPerIo(), 1.0) << name;
    EXPECT_EQ(ClassifyBoundedness(cost), Boundedness::kIoDominated) << name;
  }
}

TEST_F(MhaGraphTest, DotExportMentionsEveryOp) {
  const std::string dot = ToDot(g_);
  for (const auto& op : g_.ops()) {
    EXPECT_NE(dot.find("op:" + op.name), std::string::npos) << op.name;
  }
}

// ---------------------------------------------------------------------------
// Table III / Fig. 2: encoder layer, forward + backward.

class EncoderGraphTest : public ::testing::Test {
 protected:
  DataflowGraph g_ =
      BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kQKV, true);
};

TEST_F(EncoderGraphTest, HasAllTableIiiOperators) {
  EXPECT_EQ(g_.ops().size(), 19u + 27u);  // 19 forward + 27 backward rows
}

TEST_F(EncoderGraphTest, QkvProjectionMatchesTableIii) {
  const auto cost = CostOf(g_, g_.op("Q,K,V"));
  EXPECT_NEAR(ToGflop(cost.flop), 24.0, 0.01);          // paper: 24
  EXPECT_NEAR(ToMega(cost.input_elems), 7.3, 0.1);      // paper: 7.3
  EXPECT_NEAR(ToMega(cost.output_elems), 12.5, 0.2);    // paper: 12.5
}

TEST_F(EncoderGraphTest, LinearLayersMatchTableIii) {
  const auto lin1 = CostOf(g_, g_.op("linear 1"));
  EXPECT_NEAR(ToGflop(lin1.flop), 32.0, 0.01);
  EXPECT_NEAR(ToMega(lin1.input_elems), 8.3, 0.2);
  EXPECT_NEAR(ToMega(lin1.output_elems), 16.7, 0.2);
  const auto lin2 = CostOf(g_, g_.op("linear 2"));
  EXPECT_NEAR(ToGflop(lin2.flop), 32.0, 0.01);
  EXPECT_NEAR(ToMega(lin2.input_elems), 20.9, 0.2);
  EXPECT_NEAR(ToMega(lin2.output_elems), 4.1, 0.2);
}

TEST_F(EncoderGraphTest, SoftmaxVolumesMatchTableIii) {
  const auto sm = CostOf(g_, g_.op("scaled softmax"));
  EXPECT_NEAR(ToGflop(sm.flop), 0.188, 0.005);        // paper: 0.188
  EXPECT_NEAR(ToMega(sm.input_elems), 33.5, 0.2);     // paper: 33.5
  EXPECT_NEAR(ToMega(sm.output_elems), 100.6, 0.3);   // paper: 100.6
}

TEST_F(EncoderGraphTest, BackwardProjectionVolumesMatchTableIii) {
  const auto dx = CostOf(g_, g_.op("Q,K,V dX"));
  EXPECT_NEAR(ToGflop(dx.flop), 24.0, 0.1);
  EXPECT_NEAR(ToMega(dx.input_elems), 15.7, 0.2);  // paper: 15.7
  EXPECT_NEAR(ToMega(dx.output_elems), 4.1, 0.2);  // paper: 4.1
}

TEST_F(EncoderGraphTest, ClassTotalsMatchTableIii) {
  const auto by_class = FlopByClass(g_);
  // Paper totals: 312 / 0.535 / 0.098 Gflop (2^30 convention).
  EXPECT_NEAR(ToGflop(by_class.at(OpClass::kContraction)), 312.0, 0.5);
  EXPECT_NEAR(ToGflop(by_class.at(OpClass::kStatNorm)), 0.535, 0.02);
  EXPECT_NEAR(ToGflop(by_class.at(OpClass::kElementwise)), 0.098, 0.01);
}

TEST_F(EncoderGraphTest, ClassFlopSharesMatchTableI) {
  const auto by_class = FlopByClass(g_);
  const double total = TotalFlop(g_);
  EXPECT_NEAR(by_class.at(OpClass::kContraction) / total, 0.9980, 0.0005);
  EXPECT_NEAR(by_class.at(OpClass::kStatNorm) / total, 0.0017, 0.0005);
  EXPECT_NEAR(by_class.at(OpClass::kElementwise) / total, 0.0003, 0.0002);
}

TEST_F(EncoderGraphTest, BackwardMirrorsForwardContractelyFlop) {
  // Forward contractions: 24+4+4+8+32+32 = 104 G; backward: 208 G.
  double fwd = 0, bwd = 0;
  bool in_bwd = false;
  for (const auto& op : g_.ops()) {
    if (op.name == "layernorm 2 dW") in_bwd = true;
    if (op.cls() == OpClass::kContraction) (in_bwd ? bwd : fwd) += op.flop;
  }
  EXPECT_NEAR(ToGflop(fwd), 104.0, 0.2);
  EXPECT_NEAR(ToGflop(bwd), 208.0, 0.4);
}

TEST_F(EncoderGraphTest, EveryActivationGradientHasMatchingShape) {
  // Property: d_<t> always has the same element count as <t>.
  for (const auto& [name, t] : g_.tensors()) {
    if (name.rfind("d_", 0) != 0) continue;
    const std::string primal = name.substr(2);
    if (!g_.HasTensor(primal)) continue;
    EXPECT_EQ(t.shape.num_elements(),
              g_.tensor(primal).shape.num_elements())
        << name;
  }
}

TEST_F(EncoderGraphTest, AlgebraicFusionVariantsPreserveFlop) {
  // Stacking Q/K/V GEMMs must not change total forward flop.
  const auto qkv =
      BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kQKV, false);
  const auto qk =
      BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kQK, false);
  const auto none =
      BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kNone, false);
  EXPECT_NEAR(TotalFlop(qkv), TotalFlop(qk), 1.0);
  EXPECT_NEAR(TotalFlop(qkv), TotalFlop(none), 1.0);
  // But the number of projection GEMM launches differs: 1 vs 2 vs 3.
  auto contraction_count = [](const DataflowGraph& g) {
    int n = 0;
    for (const auto& op : g.ops()) n += op.cls() == OpClass::kContraction;
    return n;
  };
  EXPECT_EQ(contraction_count(none) - contraction_count(qkv), 2);
  EXPECT_EQ(contraction_count(qk) - contraction_count(qkv), 1);
}

TEST_F(EncoderGraphTest, TinyDimsBuildConsistently) {
  const auto g = BuildEncoder(ModelDims::Tiny(), AlgebraicFusion::kQKV, true);
  EXPECT_EQ(g.ops().size(), g_.ops().size());
  for (const auto& op : g.ops()) {
    EXPECT_GT(g.InputElements(op), 0) << op.name;
    EXPECT_GT(g.OutputElements(op), 0) << op.name;
  }
}

}  // namespace
}  // namespace xflow::graph
