#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xflow {
namespace {

TEST(Philox, DeterministicAcrossInstances) {
  Philox4x32 a(42), b(42);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.At(i), b.At(i));
  }
}

TEST(Philox, OrderIndependent) {
  // Counter-based: reading indices in any order yields the same values.
  Philox4x32 gen(7);
  std::vector<std::uint32_t> forward(256), backward(256);
  for (std::uint64_t i = 0; i < 256; ++i) forward[i] = gen.At(i);
  for (std::uint64_t i = 256; i-- > 0;) backward[i] = gen.At(i);
  EXPECT_EQ(forward, backward);
}

TEST(Philox, SeedsDecorrelate) {
  Philox4x32 a(1), b(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) same += (a.At(i) == b.At(i));
  EXPECT_LT(same, 3) << "different seeds should give different streams";
}

TEST(Philox, UniformInUnitInterval) {
  Philox4x32 gen(123);
  double sum = 0;
  constexpr int kN = 100000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const float u = gen.UniformAt(i);
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.005) << "mean of U[0,1) samples";
}

TEST(Philox, BlockLanesDiffer) {
  Philox4x32 gen(9);
  const auto block = gen.Block(5);
  std::set<std::uint32_t> uniq(block.begin(), block.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(DropoutMask, MatchesProbability) {
  DropoutMask mask(99, 0.25f);
  int kept = 0;
  constexpr int kN = 100000;
  for (std::uint64_t i = 0; i < kN; ++i) kept += mask.Keep(i);
  EXPECT_NEAR(static_cast<double>(kept) / kN, 0.75, 0.01);
  EXPECT_FLOAT_EQ(mask.Scale(), 1.0f / 0.75f);
}

TEST(DropoutMask, ZeroProbabilityKeepsEverything) {
  DropoutMask mask(1, 0.0f);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(mask.Keep(i));
  EXPECT_FLOAT_EQ(mask.Scale(), 1.0f);
}

TEST(SplitMix, ProducesDistinctValues) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(SplitMix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace xflow
