#include "transformer/mha.hpp"

#include <gtest/gtest.h>

#include "ops/softmax.hpp"
#include "test_util.hpp"

namespace xflow::transformer {
namespace {

using graph::ModelDims;

MhaConfig TinyMha(bool causal = false, float dropout = 0.0f) {
  MhaConfig c;
  c.dims = ModelDims::Tiny();
  c.dropout_prob = dropout;
  c.causal = causal;
  c.seed = 3;
  return c;
}

TensorH SeqInput(const ModelDims& d, char seq_dim, std::uint64_t seed) {
  return TensorH::Random(
      Shape(std::string("ib") + seq_dim,
            {d.i, d.b, seq_dim == 'j' ? d.j : d.k}),
      seed);
}

TEST(Mha, GeneralAttentionRuns) {
  auto cfg = TinyMha();
  MhaLayer layer(cfg, MhaParams::Init(cfg.dims, 5));
  MhaActivations acts;
  const auto& out = layer.Forward(SeqInput(cfg.dims, 'j', 1),
                                  SeqInput(cfg.dims, 'k', 2),
                                  SeqInput(cfg.dims, 'k', 3), acts);
  EXPECT_EQ(out.shape().names(), "ibj");
  EXPECT_EQ(out.extent('j'), cfg.dims.j);
}

TEST(Mha, AttentionRowsSumToOne) {
  auto cfg = TinyMha();
  MhaLayer layer(cfg, MhaParams::Init(cfg.dims, 7));
  MhaActivations acts;
  layer.Forward(SeqInput(cfg.dims, 'j', 1), SeqInput(cfg.dims, 'k', 2),
                SeqInput(cfg.dims, 'k', 3), acts);
  for (std::int64_t h = 0; h < cfg.dims.h; ++h) {
    for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
      for (std::int64_t j = 0; j < cfg.dims.j; ++j) {
        float sum = 0;
        for (std::int64_t k = 0; k < cfg.dims.k; ++k) {
          sum += float(acts.softmax_saved.at(
              {{'h', h}, {'b', b}, {'j', j}, {'k', k}}));
        }
        EXPECT_NEAR(sum, 1.0f, 0.02f);
      }
    }
  }
}

TEST(Mha, CausalMaskZeroesTheFuture) {
  auto cfg = TinyMha(/*causal=*/true);
  MhaLayer layer(cfg, MhaParams::Init(cfg.dims, 9));
  MhaActivations acts;
  auto x = SeqInput(cfg.dims, 'j', 4);
  layer.Forward(x, x.RenamedDim('j', 'k'), x.RenamedDim('j', 'k'), acts);
  for (std::int64_t h = 0; h < cfg.dims.h; ++h) {
    for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
      for (std::int64_t j = 0; j < cfg.dims.j; ++j) {
        float sum = 0;
        for (std::int64_t k = 0; k < cfg.dims.k; ++k) {
          const float s = float(acts.softmax_saved.at(
              {{'h', h}, {'b', b}, {'j', j}, {'k', k}}));
          if (k > j) {
            EXPECT_EQ(s, 0.0f) << "future position attended";
          }
          sum += s;
        }
        EXPECT_NEAR(sum, 1.0f, 0.02f);  // visible prefix still normalized
      }
    }
  }
}

TEST(Mha, CausalFirstPositionAttendsOnlyItself) {
  auto cfg = TinyMha(true);
  MhaLayer layer(cfg, MhaParams::Init(cfg.dims, 11));
  MhaActivations acts;
  auto x = SeqInput(cfg.dims, 'j', 5);
  layer.Forward(x, x.RenamedDim('j', 'k'), x.RenamedDim('j', 'k'), acts);
  for (std::int64_t h = 0; h < cfg.dims.h; ++h) {
    for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
      EXPECT_NEAR(float(acts.softmax_saved.at(
                      {{'h', h}, {'b', b}, {'j', 0}, {'k', 0}})),
                  1.0f, 1e-3f);
    }
  }
}

TEST(Mha, CausalOutputIndependentOfFutureInput) {
  // Changing tokens after position t must not change the output at t.
  auto cfg = TinyMha(true);
  MhaLayer layer(cfg, MhaParams::Init(cfg.dims, 13));
  auto x = SeqInput(cfg.dims, 'j', 6);
  MhaActivations a1;
  layer.Forward(x, x.RenamedDim('j', 'k'), x.RenamedDim('j', 'k'), a1);

  auto x2 = x;  // perturb the last position only
  for (std::int64_t i = 0; i < cfg.dims.i; ++i) {
    for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
      x2.at({{'i', i}, {'b', b}, {'j', cfg.dims.j - 1}}) = Half(9.0f);
    }
  }
  MhaActivations a2;
  layer.Forward(x2, x2.RenamedDim('j', 'k'), x2.RenamedDim('j', 'k'), a2);

  for (std::int64_t i = 0; i < cfg.dims.i; ++i) {
    for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
      for (std::int64_t j = 0; j + 1 < cfg.dims.j; ++j) {
        EXPECT_EQ(
            float(a1.out.at({{'i', i}, {'b', b}, {'j', j}})),
            float(a2.out.at({{'i', i}, {'b', b}, {'j', j}})))
            << "position " << j << " saw the future";
      }
    }
  }
}

// Gradient checks for the standalone MHA (fp32, no dropout).
class MhaGradCheck : public ::testing::Test {
 protected:
  MhaGradCheck() {
    cfg_.dims = ModelDims::Tiny();
    params_ = MhaParamsT<float>::Init(cfg_.dims, 21);
    q_ = TensorF::Random(
        Shape("ibj", {cfg_.dims.i, cfg_.dims.b, cfg_.dims.j}), 22);
    k_ = TensorF::Random(
        Shape("ibk", {cfg_.dims.i, cfg_.dims.b, cfg_.dims.k}), 23);
    v_ = TensorF::Random(
        Shape("ibk", {cfg_.dims.i, cfg_.dims.b, cfg_.dims.k}), 24);
  }

  double Loss() {
    MhaLayerT<float> layer(cfg_, params_);
    MhaActivationsT<float> acts;
    layer.Forward(q_, k_, v_, acts);
    return testutil::ProbeLoss(acts.out);
  }

  MhaGradientsT<float> Analytic() {
    MhaLayerT<float> layer(cfg_, params_);
    MhaActivationsT<float> acts;
    layer.Forward(q_, k_, v_, acts);
    MhaGradientsT<float> grads;
    layer.Backward(testutil::ProbeLossGrad(acts.out.shape()), acts, grads);
    return grads;
  }

  MhaConfig cfg_;
  MhaParamsT<float> params_;
  TensorF q_, k_, v_;
};

TEST_F(MhaGradCheck, InputGradientsMatchFiniteDifferences) {
  auto grads = Analytic();
  auto num_q = testutil::NumericalGradient(q_, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.d_q, num_q), 5e-3);
  auto num_k = testutil::NumericalGradient(k_, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.d_k, num_k), 5e-3);
  auto num_v = testutil::NumericalGradient(v_, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.d_v, num_v), 5e-3);
}

TEST_F(MhaGradCheck, WeightGradientsMatchFiniteDifferences) {
  auto grads = Analytic();
  for (auto [name, param, grad] :
       {std::tuple{"wq", &params_.wq, &grads.params.wq},
        std::tuple{"wv", &params_.wv, &grads.params.wv},
        std::tuple{"wo", &params_.wo, &grads.params.wo},
        std::tuple{"bk", &params_.bk, &grads.params.bk}}) {
    auto numeric =
        testutil::NumericalGradient(*param, [&] { return Loss(); }, 5e-3f);
    EXPECT_LT(MaxAbsDiff(*grad, numeric), 5e-3) << name;
  }
}

TEST_F(MhaGradCheck, CausalGradientsMatchFiniteDifferences) {
  cfg_.causal = true;
  auto grads = Analytic();
  auto num_q = testutil::NumericalGradient(q_, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.d_q, num_q), 5e-3);
  auto num_wv = testutil::NumericalGradient(
      params_.wv, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.params.wv, num_wv), 5e-3);
}

TEST(CausalSoftmaxOp, MatchesPlainSoftmaxOnVisiblePrefix) {
  const Shape hbjk("hbjk", {1, 1, 4, 4});
  auto beta = TensorF::Random(hbjk, 31);
  TensorF alpha(hbjk), mask(hbjk), saved(hbjk);
  ops::CausalScaledSoftmaxForward(beta, 'k', 'j', 0.7f, DropoutMask(1, 0.0f),
                                  alpha, mask, saved);
  // Last row (j = 3) sees everything: equals the unmasked softmax row.
  TensorF a2(hbjk), m2(hbjk), s2(hbjk);
  ops::ScaledSoftmaxForward(beta, 'k', 0.7f, DropoutMask(1, 0.0f), a2, m2,
                            s2);
  for (std::int64_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(
        float(saved.at({{'h', 0}, {'b', 0}, {'j', 3}, {'k', k}})),
        float(s2.at({{'h', 0}, {'b', 0}, {'j', 3}, {'k', k}})), 1e-6);
  }
}

}  // namespace
}  // namespace xflow::transformer
