#include "baselines/plans.hpp"

#include <gtest/gtest.h>

namespace xflow::baselines {
namespace {

using graph::ModelDims;

class BaselineTest : public ::testing::Test {
 protected:
  sim::GpuModel model_{sim::DeviceSpec::V100()};
  ModelDims dims_ = ModelDims::BertLarge();
};

TEST_F(BaselineTest, EncoderOrderingMatchesTableV) {
  // Table V: Ours < DeepSpeed < TF+XLA < PyTorch (total time).
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  const auto ds = PlanEncoder(Framework::kDeepSpeed, model_, dims_);
  const auto tf = PlanEncoder(Framework::kTensorFlowXla, model_, dims_);
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, dims_);
  EXPECT_LT(ours.TotalUs(), ds.TotalUs());
  EXPECT_LT(ds.TotalUs(), tf.TotalUs());
  EXPECT_LT(tf.TotalUs(), pt.TotalUs());
}

TEST_F(BaselineTest, SpeedupOverPyTorchNearPaperFactor) {
  // Paper: 1.30x over PyTorch end-to-end for the encoder layer.
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, dims_);
  const double speedup = pt.TotalUs() / ours.TotalUs();
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.55);
}

TEST_F(BaselineTest, SpeedupOverDeepSpeedIsModest) {
  // Paper: 1.08x over DeepSpeed.
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  const auto ds = PlanEncoder(Framework::kDeepSpeed, model_, dims_);
  const double speedup = ds.TotalUs() / ours.TotalUs();
  EXPECT_GT(speedup, 1.02);
  EXPECT_LT(speedup, 1.20);
}

TEST_F(BaselineTest, AbsoluteTimesNearTableV) {
  // Table V: PT 3.45/5.69 ms, Ours 2.63/4.38 ms. The device model should
  // land in the right regime (+-35%).
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, dims_);
  EXPECT_NEAR(pt.ForwardUs(), 3450, 3450 * 0.35);
  EXPECT_NEAR(pt.BackwardUs(), 5690, 5690 * 0.35);
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  EXPECT_NEAR(ours.ForwardUs(), 2630, 2630 * 0.35);
  EXPECT_NEAR(ours.BackwardUs(), 4380, 4380 * 0.35);
}

TEST_F(BaselineTest, PyTorchRuntimeSharesMatchTableI) {
  // Table I: tensor contractions 61.0%, stat. norm 25.5%, element-wise
  // 13.5% of PyTorch runtime.
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, dims_);
  const double total = pt.TotalUs();
  using graph::OpClass;
  EXPECT_NEAR(pt.ClassUs(OpClass::kContraction) / total, 0.61, 0.10);
  EXPECT_NEAR(pt.ClassUs(OpClass::kStatNorm) / total, 0.255, 0.10);
  EXPECT_NEAR(pt.ClassUs(OpClass::kElementwise) / total, 0.135, 0.07);
}

TEST_F(BaselineTest, MhaOrderingMatchesTableIv) {
  // Table IV: Ours < TF+XLA < PyTorch << cuDNN.
  const auto ours =
      PlanEncoder(Framework::kOurs, model_, dims_, PlanScope::kMhaOnly);
  const auto tf = PlanEncoder(Framework::kTensorFlowXla, model_, dims_,
                              PlanScope::kMhaOnly);
  const auto pt =
      PlanEncoder(Framework::kPyTorch, model_, dims_, PlanScope::kMhaOnly);
  const auto cudnn =
      PlanEncoder(Framework::kCuDnn, model_, dims_, PlanScope::kMhaOnly);
  EXPECT_LT(ours.ForwardUs(), tf.ForwardUs());
  EXPECT_LT(tf.ForwardUs(), pt.ForwardUs());
  EXPECT_GT(cudnn.ForwardUs(), 20 * pt.ForwardUs());
  EXPECT_GT(cudnn.BackwardUs(), 50 * pt.BackwardUs());
}

TEST_F(BaselineTest, CudnnMhaNearPaperMagnitudes) {
  // Table IV: cuDNN 131 ms forward, 652 ms backward.
  const auto cudnn =
      PlanEncoder(Framework::kCuDnn, model_, dims_, PlanScope::kMhaOnly);
  EXPECT_NEAR(cudnn.ForwardUs() / 1000.0, 131, 45);
  EXPECT_NEAR(cudnn.BackwardUs() / 1000.0, 652, 200);
}

TEST_F(BaselineTest, OursMovesFewerBytesThanPyTorch) {
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, dims_);
  EXPECT_LT(ours.TotalBytesMoved(), pt.TotalBytesMoved());
}

TEST_F(BaselineTest, EveryOpCoveredExactlyOnceInOurPlan) {
  const auto g = BuildEncoder(dims_, graph::AlgebraicFusion::kQKV, true);
  const auto ours = PlanEncoder(Framework::kOurs, model_, dims_);
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    EXPECT_NE(ours.KernelForOp(static_cast<int>(i)), nullptr) << i;
  }
}

TEST_F(BaselineTest, SecondConfigurationMatchesDeepSpeedAtB96) {
  // Paper Sec. VI-C: at B=96, L=128 our implementation matches DeepSpeed
  // (16.22 vs 16.19 ms per layer) and beats PyTorch (18.43 ms).
  const auto d = ModelDims::BertLargeB96();
  const auto ours = PlanEncoder(Framework::kOurs, model_, d);
  const auto ds = PlanEncoder(Framework::kDeepSpeed, model_, d);
  const auto pt = PlanEncoder(Framework::kPyTorch, model_, d);
  EXPECT_LT(ours.TotalUs(), pt.TotalUs());
  EXPECT_NEAR(ours.TotalUs() / ds.TotalUs(), 1.0, 0.12);
}

}  // namespace
}  // namespace xflow::baselines
