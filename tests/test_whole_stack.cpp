// Whole-stack executor parity: one graph (embedding -> N layers -> loss),
// one plan, one slab -- bitwise identical to the per-layer hand-wired
// path at every thread count, fused and unfused, checkpointed or not.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/threadpool.hpp"
#include "graph/executor.hpp"
#include "transformer/arena.hpp"
#include "transformer/embedding.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

namespace xflow::transformer {
namespace {

EncoderConfig TestConfig(bool fused) {
  EncoderConfig cfg;
  cfg.dims = graph::ModelDims::Tiny();
  cfg.dropout_prob = 0.1f;  // nonzero: exercises the whole seed schedule
  cfg.use_fused_kernels = fused;
  // The per-layer reference below must be the hand-wired kernel sequence.
  cfg.use_graph_executor = false;
  return cfg;
}

Shape Ibj(const graph::ModelDims& d) {
  return Shape("ibj", {d.i, d.b, d.j});
}

/// Hand-wired per-layer forward+backward; outputs stay in acts/grads.
void HandWiredRun(const EncoderStack& stack, const TensorH& x,
                  const TensorH& d_y, std::vector<EncoderActivations>& acts,
                  std::vector<EncoderGradients>& grads) {
  stack.Forward(x, acts);
  stack.Backward(d_y, acts, grads);
}

/// Runs the whole-stack executor over `arena` and checks y, d_x and every
/// weight gradient bitwise against the hand-wired reference.
void ExpectWholeStackMatches(const EncoderStack& stack,
                             StackArenaT<Half>& arena, const TensorH& x,
                             const TensorH& d_y,
                             const std::vector<EncoderActivations>& ref_acts,
                             std::vector<EncoderGradients>& ref_grads) {
  const TensorH& y = stack.Forward(x, arena);
  EXPECT_EQ(MaxAbsDiff(y, ref_acts.back().y), 0.0);
  std::vector<EncoderGradients> grads;
  const TensorH& d_x = stack.Backward(d_y, arena, grads);
  EXPECT_EQ(MaxAbsDiff(d_x, ref_grads.front().d_x), 0.0);
  ASSERT_EQ(grads.size(), ref_grads.size());
  for (std::size_t l = 0; l < grads.size(); ++l) {
    auto got = grads[l].params.Named();
    auto want = ref_grads[l].params.Named();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < got.size(); ++p) {
      EXPECT_EQ(MaxAbsDiff(*got[p].second, *want[p].second), 0.0)
          << "layer " << l << " grad " << got[p].first;
    }
  }
}

void ParityAt(bool fused, bool scheduler, int threads) {
  SCOPED_TRACE(::testing::Message() << "fused=" << fused << " scheduler="
                                    << scheduler << " threads=" << threads);
  ThreadPool::SetGlobalThreads(threads);
  EncoderConfig cfg = TestConfig(fused);
  cfg.use_task_scheduler = scheduler;
  const auto& d = cfg.dims;
  EncoderStack stack(cfg, 3, 21);
  const auto x = TensorH::Random(Ibj(d), 2);
  const auto d_y = TensorH::Random(Ibj(d), 3);
  std::vector<EncoderActivations> acts;
  std::vector<EncoderGradients> ref_grads;
  HandWiredRun(stack, x, d_y, acts, ref_grads);

  auto arena = MakeStackArena<Half>(cfg, {.num_layers = 3});
  ExpectWholeStackMatches(stack, arena, x, d_y, acts, ref_grads);
  ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
}

TEST(WholeStack, BitwiseMatchesHandWiredFused) {
  for (const int threads : {1, 2, 8}) {
    ParityAt(/*fused=*/true, /*scheduler=*/true, threads);
  }
}

TEST(WholeStack, BitwiseMatchesHandWiredUnfused) {
  for (const int threads : {1, 8}) {
    ParityAt(/*fused=*/false, /*scheduler=*/true, threads);
  }
}

TEST(WholeStack, BitwiseMatchesHandWiredSerialSchedule) {
  ParityAt(/*fused=*/true, /*scheduler=*/false, 8);
}

TEST(WholeStack, CheckpointedLayersStayBitwiseIdentical) {
  // Recomputing layers 0 and 1 in the backward pass must not change a
  // single bit: the clones reuse the originals' dropout seeds and the
  // plan keeps every still-needed tensor apart.
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool::SetGlobalThreads(threads);
    const EncoderConfig cfg = TestConfig(/*fused=*/true);
    const auto& d = cfg.dims;
    EncoderStack stack(cfg, 3, 23);
    const auto x = TensorH::Random(Ibj(d), 4);
    const auto d_y = TensorH::Random(Ibj(d), 5);
    std::vector<EncoderActivations> acts;
    std::vector<EncoderGradients> ref_grads;
    HandWiredRun(stack, x, d_y, acts, ref_grads);

    auto arena =
        MakeStackArena<Half>(cfg, {.num_layers = 3, .recompute_layers = {0, 1}});
    EXPECT_EQ(arena.recompute_layers(), (std::vector<int>{0, 1}));
    ExpectWholeStackMatches(stack, arena, x, d_y, acts, ref_grads);
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
}

TEST(WholeStack, BudgetedPlanRunsBitwiseIdentical) {
  // A memory budget below the uncheckpointed peak routes through the
  // checkpoint planner; whatever it decides, execution stays bitwise
  // identical and the planned peak never exceeds the uncheckpointed one.
  const EncoderConfig cfg = TestConfig(/*fused=*/true);
  const auto& d = cfg.dims;
  EncoderStack stack(cfg, 3, 29);
  const auto x = TensorH::Random(Ibj(d), 6);
  const auto d_y = TensorH::Random(Ibj(d), 7);
  std::vector<EncoderActivations> acts;
  std::vector<EncoderGradients> ref_grads;
  HandWiredRun(stack, x, d_y, acts, ref_grads);

  auto uncheckpointed = MakeStackArena<Half>(cfg, {.num_layers = 3});
  const std::size_t full_peak = uncheckpointed.plan().PeakBytes();
  auto arena = MakeStackArena<Half>(cfg, {.num_layers = 3},
                                    /*memory_budget_bytes=*/full_peak / 2);
  EXPECT_LE(arena.plan().PeakBytes(), full_peak);
  ExpectWholeStackMatches(stack, arena, x, d_y, acts, ref_grads);
}

TEST(WholeStack, EmbeddingAndLossHeadsMatchReference) {
  // Whole pipeline in one graph: token ids -> embedding -> 2 layers ->
  // MSE loss -> backward -> table gradients, checked bitwise against the
  // module-by-module reference (EmbeddingT + hand-wired stack + MseLoss).
  const EncoderConfig cfg = TestConfig(/*fused=*/true);
  const auto& d = cfg.dims;
  const std::int64_t vocab = 17;
  EncoderStack stack(cfg, 2, 31);
  EmbeddingT<Half> emb(vocab, d, 41);
  TokenIds tokens(static_cast<std::size_t>(d.b * d.j));
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    tokens[t] = static_cast<std::int32_t>((7 * t + 3) % vocab);
  }
  const auto target = TensorH::Random(Ibj(d), 8);

  const auto x = emb.Forward(tokens);
  std::vector<EncoderActivations> acts;
  stack.Forward(x, acts);
  TensorH ref_d_y(acts.back().y.shape());
  const double ref_loss = MseLoss(acts.back().y, target, ref_d_y);
  std::vector<EncoderGradients> ref_grads;
  stack.Backward(ref_d_y, acts, ref_grads);
  TensorH ref_d_tok(emb.token_table().shape());
  TensorH ref_d_pos(emb.pos_table().shape());
  emb.Backward(ref_grads.front().d_x, tokens, ref_d_tok, ref_d_pos);

  auto arena = MakeStackArena<Half>(
      cfg, {.num_layers = 2, .vocab = vocab, .include_loss = true});
  auto& ex = stack.Executor(arena);
  ex.BindInput("token_table", emb.token_table());
  ex.BindInput("pos_table", emb.pos_table());
  ex.BindTokens(tokens);
  ex.BindInput("target", target);
  TensorH d_tok(emb.token_table().shape());
  TensorH d_pos(emb.pos_table().shape());
  ex.BindOutput("d_token_table", d_tok);
  ex.BindOutput("d_pos_table", d_pos);
  std::vector<EncoderGradients> grads(2);
  for (std::size_t l = 0; l < grads.size(); ++l) {
    grads[l].params.EnsureShapes(d);
    for (auto& [name, tensor] : grads[l].params.Named()) {
      ex.BindOutput(StrFormat("L%zu.d_%s", l, name.c_str()), *tensor);
    }
  }
  ex.Forward();
  EXPECT_DOUBLE_EQ(ex.last_loss(), ref_loss);  // loss head runs in Forward
  // Read y before Backward: the loss op is its last consumer, so the plan
  // legitimately recycles its bytes during the backward pass.
  const auto y = arena.arena().ViewAs<Half>("L1.y", Ibj(d));
  EXPECT_EQ(MaxAbsDiff(y, acts.back().y), 0.0);
  ex.Backward();
  EXPECT_EQ(MaxAbsDiff(d_tok, ref_d_tok), 0.0);
  EXPECT_EQ(MaxAbsDiff(d_pos, ref_d_pos), 0.0);
  for (std::size_t l = 0; l < grads.size(); ++l) {
    auto got = grads[l].params.Named();
    auto want = ref_grads[l].params.Named();
    for (std::size_t p = 0; p < got.size(); ++p) {
      EXPECT_EQ(MaxAbsDiff(*got[p].second, *want[p].second), 0.0)
          << "layer " << l << " grad " << got[p].first;
    }
  }
}

TEST(WholeStack, PlanVerifiesCleanWithOptions) {
  // Every produced plan -- plain, explicitly checkpointed, and budgeted --
  // passes the full three-argument verifier (the executor pre-flight runs
  // the two-argument form; this is the strict cross-check).
  const EncoderConfig cfg = TestConfig(/*fused=*/true);
  for (const std::size_t budget :
       {std::size_t{0}, std::size_t{1}}) {  // 1 byte: maximal checkpointing
    graph::StackGraphOptions options{.num_layers = 3,
                                     .vocab = 17,
                                     .include_loss = true};
    if (budget == 0) {
      auto graph = graph::BuildEncoderStack(cfg.dims, options);
      const auto plan_options = StackPlanOptions<Half>(graph);
      const auto plan = graph::PlanMemory(graph, plan_options);
      EXPECT_TRUE(graph::Verify(graph, plan, plan_options).ok())
          << graph::Verify(graph, plan, plan_options).Summary();
    } else {
      const auto ckpt = graph::PlanCheckpointedStack(
          cfg.dims, options,
          [](const graph::DataflowGraph& g) {
            return StackPlanOptions<Half>(g);
          },
          budget);
      EXPECT_FALSE(ckpt.recompute_layers.empty());
      const auto plan_options = StackPlanOptions<Half>(ckpt.graph);
      EXPECT_TRUE(graph::Verify(ckpt.graph, ckpt.plan, plan_options).ok())
          << graph::Verify(ckpt.graph, ckpt.plan, plan_options).Summary();
    }
  }
}

}  // namespace
}  // namespace xflow::transformer
