#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace xflow {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "broken invariant");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
  }
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "bad arg"), InvalidArgument);
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(HumanCount(4.19e6), "4.2M");
  EXPECT_EQ(HumanCount(8.59e9), "8.59G");
  EXPECT_EQ(HumanCount(512), "512");
}

TEST(Units, PaperGflopConvention) {
  // 24 Gflop in the paper == 24 * 2^30 flop.
  EXPECT_DOUBLE_EQ(ToGflop(24.0 * kGiFlop), 24.0);
  EXPECT_DOUBLE_EQ(ToMega(4.19e6), 4.19);
}

TEST(Table, RendersAlignedColumns) {
  AsciiTable t({"op", "time"});
  t.AddRow({"softmax", "453"});
  t.AddRow({"layernorm extra long", "63"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| op "), std::string::npos);
  EXPECT_NE(out.find("| softmax "), std::string::npos);
  // All lines must have identical width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only one"}), InvalidArgument);
}

TEST(Distribution, SummaryQuartiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);  // 1..101
  auto s = Summarize(v, 10);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 101);
  EXPECT_DOUBLE_EQ(s.median, 51);
  EXPECT_DOUBLE_EQ(s.q1, 26);
  EXPECT_DOUBLE_EQ(s.q3, 76);
  EXPECT_EQ(s.count, 101u);
}

TEST(Distribution, DensityPeaksWhereMassIs) {
  std::vector<double> v(100, 5.0);
  v.push_back(0.0);
  v.push_back(10.0);
  auto s = Summarize(v, 11);
  // Middle bin holds the repeated value => normalized density 1.
  EXPECT_DOUBLE_EQ(s.density[5], 1.0);
  EXPECT_LT(s.density[1], 0.1);
  const std::string sketch = RenderDensity(s);
  EXPECT_EQ(sketch.size(), 11u);
  EXPECT_EQ(sketch[5], '@');
}

TEST(Distribution, EmptyInputThrows) {
  EXPECT_THROW(Summarize({}, 8), InvalidArgument);
}

}  // namespace
}  // namespace xflow
