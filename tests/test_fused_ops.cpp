// The paper's fused kernels must be numerically identical to the unfused
// operator pipelines they replace -- fusion changes data movement, not math.
#include <gtest/gtest.h>

#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"

namespace xflow::ops {
namespace {

constexpr float kEps = 1e-5f;

TEST(FusedAIB, MatchesThreeSeparateBiasKernels) {
  const Shape proj("phbj", {4, 2, 3, 5});
  auto qq = TensorH::Random(proj, 1);
  auto kk = TensorH::Random(proj, 2);
  auto vv = TensorH::Random(proj, 3);
  auto bias = TensorH::Random(Shape("ph", {12, 2}), 4);  // stacked 3x4

  // Unfused: slice the stacked bias, then three bias kernels.
  TensorH q_ref(proj), k_ref(proj), v_ref(proj);
  BiasForward(qq, bias.SliceDim('p', 0, 4), q_ref);
  BiasForward(kk, bias.SliceDim('p', 4, 4), k_ref);
  BiasForward(vv, bias.SliceDim('p', 8, 4), v_ref);

  TensorH q_f(proj), k_f(proj), v_f(proj);
  AttnInputBias<Half>({&qq, &kk, &vv}, bias, 'p', {&q_f, &k_f, &v_f});
  EXPECT_EQ(MaxAbsDiff(q_ref, q_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(k_ref, k_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(v_ref, v_f), 0.0);
}

TEST(FusedBRD, MatchesBiasReluDropoutPipeline) {
  const Shape ubj("ubj", {8, 2, 6});
  auto x = TensorH::Random(ubj, 5);
  auto bias = TensorH::Random(Shape("u", {8}), 6);
  DropoutMask mask(123, 0.3f);

  TensorH biased(ubj), relu_ref(ubj), y_ref(ubj), m_ref(ubj);
  BiasForward(x, bias, biased);
  ReluForward(biased, relu_ref);
  DropoutForward(relu_ref, mask, y_ref, m_ref);

  TensorH relu_f(ubj), y_f(ubj), m_f(ubj);
  BiasReluDropout(x, bias, mask, relu_f, y_f, m_f);
  EXPECT_EQ(MaxAbsDiff(relu_ref, relu_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(y_ref, y_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(m_ref, m_f), 0.0);
}

TEST(FusedBDRLN, MatchesFourOperatorPipeline) {
  const Shape ibj("ibj", {16, 2, 4});
  auto x = TensorH::Random(ibj, 7);
  auto bias = TensorH::Random(Shape("i", {16}), 8);
  auto resid_in = TensorH::Random(ibj, 9);
  auto gamma = TensorH::Random(Shape("i", {16}), 10);
  auto beta = TensorH::Random(Shape("i", {16}), 11);
  DropoutMask mask(321, 0.25f);

  // Unfused pipeline: bias -> dropout -> residual -> layernorm.
  TensorH biased(ibj), dropped(ibj), m_ref(ibj), resid_ref(ibj), y_ref(ibj);
  TensorF mean_ref(Shape("bj", {2, 4})), rstd_ref(Shape("bj", {2, 4}));
  BiasForward(x, bias, biased);
  DropoutForward(biased, mask, dropped, m_ref);
  ResidualForward(dropped, resid_in, resid_ref);
  LayerNormForward(resid_ref, gamma, beta, 'i', kEps, y_ref, mean_ref,
                   rstd_ref);

  TensorH resid_f(ibj), m_f(ibj), y_f(ibj);
  TensorF mean_f(Shape("bj", {2, 4})), rstd_f(Shape("bj", {2, 4}));
  BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma, beta, 'i',
                               kEps, resid_f, m_f, y_f, mean_f, rstd_f);
  EXPECT_EQ(MaxAbsDiff(resid_ref, resid_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(m_ref, m_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(y_ref, y_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(mean_ref, mean_f), 0.0);
}

TEST(FusedBLNRD, MatchesLayerNormDxThenDropoutDx) {
  const Shape ibj("ibj", {12, 2, 3});
  auto dy = TensorH::Random(ibj, 12);
  auto gamma = TensorH::Random(Shape("i", {12}), 13);
  auto x = TensorH::Random(ibj, 14);
  DropoutMask mask(55, 0.4f);

  // Forward pieces needed by backward.
  auto beta = TensorH::Random(Shape("i", {12}), 15);
  TensorH y(ibj);
  TensorF mean(Shape("bj", {2, 3})), rstd(Shape("bj", {2, 3}));
  LayerNormForward(x, gamma, beta, 'i', kEps, y, mean, rstd);
  TensorH dummy(ibj), drop_mask(ibj);
  DropoutForward(x, mask, dummy, drop_mask);

  TensorH d_resid_ref(ibj), d_out_ref(ibj);
  LayerNormBackwardDX(dy, gamma, x, mean, rstd, 'i', d_resid_ref);
  DropoutBackwardDX(d_resid_ref, drop_mask, mask.Scale(), d_out_ref);

  TensorH d_resid_f(ibj), d_out_f(ibj);
  LayerNormDropoutBackward(dy, gamma, x, mean, rstd, drop_mask, 'i',
                           mask.Scale(), d_resid_f, d_out_f);
  EXPECT_EQ(MaxAbsDiff(d_resid_ref, d_resid_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(d_out_ref, d_out_f), 0.0);
}

TEST(FusedBDRB, MatchesFourOperatorBackwardPipeline) {
  const Shape ibj("ibj", {6, 2, 4});
  const Shape ubj("ubj", {10, 2, 4});
  auto dy_hi = TensorH::Random(ibj, 16);
  auto dy_lo = TensorH::Random(ubj, 17);
  auto relu_saved = TensorH::Random(ubj, 18);
  DropoutMask mask(77, 0.35f);
  TensorH dummy(ubj), drop_mask(ubj);
  DropoutForward(relu_saved, mask, dummy, drop_mask);

  TensorH d_b_hi_ref(Shape("i", {6}));
  BiasBackwardDW(dy_hi, d_b_hi_ref);
  TensorH d_drop(ubj), d_x_ref(ubj), d_b_lo_ref(Shape("u", {10}));
  DropoutBackwardDX(dy_lo, drop_mask, mask.Scale(), d_drop);
  ReluBackwardDX(d_drop, relu_saved, d_x_ref);
  BiasBackwardDW(d_x_ref, d_b_lo_ref);

  TensorH d_b_hi_f(Shape("i", {6})), d_x_f(ubj), d_b_lo_f(Shape("u", {10}));
  BiasDropoutReluBiasBackward(dy_hi, dy_lo, drop_mask, relu_saved,
                              mask.Scale(), d_b_hi_f, d_x_f, d_b_lo_f);
  EXPECT_EQ(MaxAbsDiff(d_b_hi_ref, d_b_hi_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(d_x_ref, d_x_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(d_b_lo_ref, d_b_lo_f), 0.0);
}

TEST(FusedEBSB, MatchesResidualThenLayerNormDw) {
  const Shape ibj("ibj", {10, 2, 3});
  auto da = TensorH::Random(ibj, 19);
  auto db = TensorH::Random(ibj, 20);
  auto x = TensorH::Random(ibj, 21);
  auto gamma = TensorH::Random(Shape("i", {10}), 22);
  auto beta = TensorH::Random(Shape("i", {10}), 23);
  TensorH y(ibj);
  TensorF mean(Shape("bj", {2, 3})), rstd(Shape("bj", {2, 3}));
  LayerNormForward(x, gamma, beta, 'i', kEps, y, mean, rstd);

  TensorH d_sum_ref(ibj);
  ResidualForward(da, db, d_sum_ref);
  TensorH dgamma_ref(Shape("i", {10})), dbeta_ref(Shape("i", {10}));
  LayerNormBackwardDW(d_sum_ref, x, mean, rstd, 'i', dgamma_ref, dbeta_ref);

  TensorH d_sum_f(ibj), dgamma_f(Shape("i", {10})), dbeta_f(Shape("i", {10}));
  ResidualLayerNormDwBackward(da, db, x, mean, rstd, 'i', d_sum_f, dgamma_f,
                              dbeta_f);
  EXPECT_EQ(MaxAbsDiff(d_sum_ref, d_sum_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(dgamma_ref, dgamma_f), 0.0);
  EXPECT_EQ(MaxAbsDiff(dbeta_ref, dbeta_f), 0.0);
}

TEST(FusedBAIB, MatchesThreeBiasGradients) {
  const Shape proj("phbj", {4, 2, 3, 5});
  auto dq = TensorH::Random(proj, 24);
  auto dk = TensorH::Random(proj, 25);
  auto dv = TensorH::Random(proj, 26);

  TensorH ref_q(Shape("ph", {4, 2})), ref_k(Shape("ph", {4, 2})),
      ref_v(Shape("ph", {4, 2}));
  BiasBackwardDW(dq, ref_q);
  BiasBackwardDW(dk, ref_k);
  BiasBackwardDW(dv, ref_v);

  TensorH stacked(Shape("ph", {12, 2}));
  AttnInputBiasBackward<Half>({&dq, &dk, &dv}, 'p', stacked);
  EXPECT_EQ(MaxAbsDiff(ref_q, stacked.SliceDim('p', 0, 4)), 0.0);
  EXPECT_EQ(MaxAbsDiff(ref_k, stacked.SliceDim('p', 4, 4)), 0.0);
  EXPECT_EQ(MaxAbsDiff(ref_v, stacked.SliceDim('p', 8, 4)), 0.0);
}

// Fused kernels must also be layout-independent (the whole point of the
// paper's layout exploration is that layout is a free knob).
TEST(FusedKernels, BdrlnIsLayoutIndependent) {
  const Shape ibj("ibj", {8, 2, 4});
  auto x = TensorH::Random(ibj, 30);
  auto bias = TensorH::Random(Shape("i", {8}), 31);
  auto resid_in = TensorH::Random(ibj, 32);
  auto gamma = TensorH::Random(Shape("i", {8}), 33);
  auto beta = TensorH::Random(Shape("i", {8}), 34);
  DropoutMask mask(99, 0.2f);

  TensorH resid1(ibj), m1(ibj), y1(ibj);
  TensorF mean1(Shape("bj", {2, 4})), rstd1(Shape("bj", {2, 4}));
  BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma, beta, 'i',
                               kEps, resid1, m1, y1, mean1, rstd1);

  auto xp = x.Permuted("bji");
  auto rp = resid_in.Permuted("jbi");
  TensorH resid2(ibj.Permuted("bji")), m2(ibj.Permuted("bji")),
      y2(ibj.Permuted("jbi"));
  TensorF mean2(Shape("bj", {2, 4})), rstd2(Shape("bj", {2, 4}));
  BiasDropoutResidualLayerNorm(xp, bias, rp, mask, gamma, beta, 'i', kEps,
                               resid2, m2, y2, mean2, rstd2);
  EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0);
  EXPECT_EQ(MaxAbsDiff(resid1, resid2), 0.0);
}

}  // namespace
}  // namespace xflow::ops
