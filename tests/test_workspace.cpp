#include "tensor/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "tensor/memstats.hpp"

namespace xflow {
namespace {

TEST(Workspace, ViewsAliasTheSlab) {
  Workspace ws(1024);
  auto a = ws.ViewAt<float>(0, Shape("x", {8}));
  auto b = ws.ViewAt<float>(0, Shape("x", {8}));
  a.data()[3] = 7.0f;
  EXPECT_EQ(b.data()[3], 7.0f);  // same bytes
  EXPECT_FALSE(a.owns_data());
  // Copies of a view alias too.
  TensorF c = a;
  c.data()[3] = 9.0f;
  EXPECT_EQ(a.data()[3], 9.0f);
}

TEST(Workspace, ReserveZeroesAndViewsAreBoundsChecked) {
  Workspace ws;
  ws.Reserve(256);
  auto v = ws.ViewAt<std::int64_t>(64, Shape("x", {4}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(v.data()[i], 0);
  EXPECT_THROW((void)ws.ViewAt<float>(256, Shape("x", {1})),
               InvalidArgument);
  EXPECT_THROW((void)ws.ViewAt<float>(2, Shape("x", {1})),
               InvalidArgument);  // misaligned for float
}

TEST(Workspace, AcquireBumpsAlignedAndResetRewinds) {
  Workspace ws(4096);
  auto a = ws.Acquire<Half>(Shape("x", {3}));  // 6 bytes
  auto b = ws.Acquire<float>(Shape("x", {4}));
  const auto* base = reinterpret_cast<std::byte*>(a.data());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % Workspace::kAlignment,
            0u);
  // b starts at the next aligned offset, not at byte 6.
  EXPECT_EQ(reinterpret_cast<std::byte*>(b.data()) - base,
            static_cast<std::ptrdiff_t>(Workspace::kAlignment));
  ws.Reset();
  auto c = ws.Acquire<Half>(Shape("x", {3}));
  EXPECT_EQ(reinterpret_cast<std::byte*>(c.data()), base);
}

TEST(Workspace, GrowthIsRecordedByTheAllocationHook) {
  const auto before = memstats::Read();
  Workspace ws(128);
  auto mid = memstats::Read();
  EXPECT_EQ(mid.workspace_allocs - before.workspace_allocs, 1);
  (void)ws.Acquire<float>(Shape("x", {1024}));  // forces growth
  const auto after = memstats::Read();
  EXPECT_EQ(after.workspace_allocs - mid.workspace_allocs, 1);
  EXPECT_GE(after.workspace_bytes - mid.workspace_bytes, 4096);
}

TEST(TensorView, EnsureShapeReusesStorage) {
  TensorF t(Shape("ab", {4, 8}));
  const float* data = t.data();
  const auto before = memstats::Read();
  t.EnsureShape(Shape("ba", {8, 4}));  // same element count: relabel only
  EXPECT_EQ(t.data(), data);
  EXPECT_EQ(memstats::Read().tensor_allocs, before.tensor_allocs);
  t.EnsureShape(Shape("ab", {2, 2}));  // different count: realloc + zero
  EXPECT_EQ(memstats::Read().tensor_allocs, before.tensor_allocs + 1);
  EXPECT_EQ(t.data()[3], 0.0f);

  Workspace ws(1024);
  auto v = ws.ViewAt<float>(0, Shape("x", {16}));
  v.EnsureShape(Shape("y", {16}));  // views relabel freely...
  EXPECT_FALSE(v.owns_data());
  // ...but never resize: their planned storage is fixed.
  EXPECT_THROW(v.EnsureShape(Shape("y", {17})), InvalidArgument);
}

TEST(TensorView, SliceViewDimAliasesOutermostSlices) {
  auto t = TensorF::Random(Shape("pab", {6, 3, 4}), 1);
  auto view = t.SliceViewDim('p', 2, 2);
  auto copy = t.SliceDim('p', 2, 2);
  EXPECT_EQ(view.shape(), copy.shape());
  EXPECT_EQ(MaxAbsDiff(view, copy), 0.0);
  EXPECT_FALSE(view.owns_data());
  EXPECT_EQ(view.data(), t.data() + 2 * t.stride('p'));
  // Writes through the view hit the parent.
  view.data()[0] = 123.0f;
  EXPECT_EQ(t.at({{'p', 2}, {'a', 0}, {'b', 0}}), 123.0f);
  // Only the outermost dimension slices as a contiguous view.
  EXPECT_THROW((void)t.SliceViewDim('a', 0, 1), InvalidArgument);
}

TEST(TensorAlloc, CopiesCountViewsDoNot) {
  TensorF owning(Shape("x", {64}));
  const auto before = memstats::Read();
  TensorF deep = owning;  // owning copy allocates
  EXPECT_EQ(memstats::Read().tensor_allocs, before.tensor_allocs + 1);
  auto view = TensorF::FromSpan(owning.shape(), owning.data());
  TensorF shallow = view;  // view copy aliases
  EXPECT_EQ(memstats::Read().tensor_allocs, before.tensor_allocs + 1);
  EXPECT_EQ(shallow.data(), owning.data());
  EXPECT_NE(deep.data(), owning.data());
}

TEST(TensorInit, ParallelFillMatchesSerialReference) {
  // Random/Full/zero-fill run chunked on the pool; values are a pure
  // function of the element index, so the thread count must not matter.
  constexpr std::int64_t kN = 1 << 18;  // several chunks
  ThreadPool::SetGlobalThreads(8);
  auto par = TensorF::Random(Shape("x", {kN}), 42);
  auto full_par = TensorH::Full(Shape("x", {kN}), 3.5f);
  ThreadPool::SetGlobalThreads(1);
  auto ser = TensorF::Random(Shape("x", {kN}), 42);
  ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  EXPECT_EQ(MaxAbsDiff(par, ser), 0.0);
  // And against the generator directly.
  Philox4x32 gen(42);
  for (std::int64_t i : {std::int64_t{0}, kN / 2, kN - 1}) {
    EXPECT_EQ(par.data()[i],
              gen.UniformAt(static_cast<std::uint64_t>(i)) * 2.0f - 1.0f);
  }
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(float(full_par.data()[i]), 3.5f);
  }
}

}  // namespace
}  // namespace xflow
