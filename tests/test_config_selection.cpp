#include "config/selection.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace xflow::config {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest()
      : g_(graph::BuildEncoder(graph::ModelDims::BertLarge(),
                               graph::AlgebraicFusion::kQKV, true)),
        fused_(fusion::FuseMaximally(g_)),
        model_(sim::DeviceSpec::V100()) {}

  graph::DataflowGraph g_;
  fusion::FusionResult fused_;
  sim::GpuModel model_;
};

TEST_F(SelectionTest, CoversTheElevenForwardStages) {
  const auto r = SelectConfigurations(model_, g_, fused_);
  // Forward chain: QKV, AIB, QKT, SM, gamma, out, DRLN, lin1, BRD, lin2,
  // BDRLN.
  ASSERT_EQ(r.stages.size(), 11u);
  EXPECT_EQ(r.stages.front().kernel_name, "Q,K,V");
  EXPECT_EQ(r.stages[1].kernel_name, "AIB");
  EXPECT_EQ(r.stages[3].kernel_name, "SM");
  EXPECT_EQ(r.stages.back().kernel_name, "BDRLN");
}

TEST_F(SelectionTest, LayoutsChainConsistently) {
  const auto r = SelectConfigurations(model_, g_, fused_);
  for (std::size_t i = 0; i + 1 < r.stages.size(); ++i) {
    EXPECT_EQ(r.stages[i].out_layout, r.stages[i + 1].in_layout)
        << "boundary " << i;
  }
}

TEST_F(SelectionTest, WithinFourPercentOfPerStageLowerBound) {
  // Paper Sec. VI-A: the selected configuration is within 4% of the sum of
  // each operator's unconstrained best.
  const auto r = SelectConfigurations(model_, g_, fused_);
  EXPECT_GE(r.GapToLowerBound(), 0.0);
  EXPECT_LT(r.GapToLowerBound(), 0.04);
}

TEST_F(SelectionTest, GlobalBeatsGreedyLocalChoices) {
  const auto r = SelectConfigurations(model_, g_, fused_);
  const double greedy = GreedySelectionTime(model_, g_, fused_);
  EXPECT_LE(r.total_time_us, greedy);
}

TEST_F(SelectionTest, StageTimesNeverBelowTheirOwnBest) {
  const auto r = SelectConfigurations(model_, g_, fused_);
  for (const auto& s : r.stages) {
    EXPECT_GE(s.time_us + 1e-9, s.best_time_us) << s.kernel_name;
    EXPECT_GE(r.StagePenalty(s.kernel_name), 1.0) << s.kernel_name;
  }
}

TEST_F(SelectionTest, GraphIsSmallEnoughForLinearTimeSssp) {
  // Paper: the DAG is small; SSSP takes seconds for BERT. Ours is smaller
  // still -- sanity-bound it.
  const auto r = SelectConfigurations(model_, g_, fused_);
  EXPECT_GT(r.graph_nodes, 10);
  EXPECT_LT(r.graph_nodes, 1000);
  EXPECT_GT(r.graph_edges, 100);
  EXPECT_LT(r.graph_edges, 100000);
}

TEST_F(SelectionTest, WorksAtOtherModelSizes) {
  auto g = graph::BuildEncoder(graph::ModelDims::BertLargeB96(),
                               graph::AlgebraicFusion::kQKV, true);
  auto fused = fusion::FuseMaximally(g);
  const auto r = SelectConfigurations(model_, g, fused);
  EXPECT_EQ(r.stages.size(), 11u);
  EXPECT_GT(r.total_time_us, 0);
  EXPECT_LT(r.GapToLowerBound(), 0.06);
}

}  // namespace
}  // namespace xflow::config
