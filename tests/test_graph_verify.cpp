// The static verifier must catch every class of graph/plan corruption
// with exactly the rule that owns it -- each broken fixture here trips
// its own rule and nothing else -- while every (graph, plan) pair the
// builders and planner produce verifies clean. The executor's pre-flight
// and error paths reuse the same diagnostics, so failures name graph
// containers and ops instead of surfacing bare indices.
#include "graph/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/executor.hpp"
#include "graph/lowering.hpp"
#include "graph/memory_plan.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "transformer/arena.hpp"

namespace xflow::graph {
namespace {

/// Every error in `report` must carry `rule` (and there must be at least
/// one): the fixture broke exactly one property, so any other rule firing
/// means two rules overlap on one corruption.
void ExpectOnlyRule(const VerifyReport& report, const std::string& rule) {
  EXPECT_FALSE(report.ok()) << "expected " << rule << " to fire\n"
                            << report.Summary();
  for (const auto& issue : report.issues) {
    EXPECT_EQ(issue.rule_id, rule) << ToString(issue);
  }
}

MemoryPlan Corrupted(
    const MemoryPlan& plan,
    const std::function<void(std::map<std::string, TensorPlacement>&)>&
        mutate,
    std::size_t peak_delta = 0) {
  auto placements = plan.placements();
  mutate(placements);
  return MemoryPlan::FromPlacements(std::move(placements),
                                    plan.peak_bytes() + peak_delta,
                                    plan.naive_bytes());
}

// ------------------------------------------------------------ graph rules

TEST(VerifyGraph, TopoOrderViolation) {
  DataflowGraph g;
  const Shape bj("bj", {2, 3});
  g.AddTensor("x", bj);
  g.AddTensor("a", bj);
  g.AddTensor("y", bj);
  // The consumer is listed before the producer of `a`.
  g.AddOpUnchecked({.name = "use",
                    .kind = OpKind::kReLU,
                    .inputs = {"a"},
                    .outputs = {"y"}});
  g.AddOpUnchecked({.name = "make",
                    .kind = OpKind::kReLU,
                    .inputs = {"x"},
                    .outputs = {"a"}});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "graph/topo-order");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].op, "use");
  EXPECT_EQ(report.issues[0].container, "a");
  EXPECT_NE(report.issues[0].message.find("op 'make'"), std::string::npos);
}

TEST(VerifyGraph, SingleProducerViolation) {
  DataflowGraph g;
  const Shape bj("bj", {2, 3});
  g.AddTensor("x", bj);
  g.AddTensor("y", bj);
  g.AddOpUnchecked({.name = "w1",
                    .kind = OpKind::kReLU,
                    .inputs = {"x"},
                    .outputs = {"y"}});
  g.AddOpUnchecked({.name = "w2",
                    .kind = OpKind::kReLU,
                    .inputs = {"x"},
                    .outputs = {"y"}});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "graph/single-producer");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].container, "y");
}

TEST(VerifyGraph, DanglingReference) {
  DataflowGraph g;
  g.AddTensor("y", Shape("bj", {2, 3}));
  g.AddOpUnchecked({.name = "r",
                    .kind = OpKind::kReLU,
                    .inputs = {"ghost"},
                    .outputs = {"y"}});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "graph/dangling");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].container, "ghost");
}

TEST(VerifyGraph, ArityViolation) {
  DataflowGraph g;
  const Shape bj("bj", {2, 3});
  g.AddTensor("x", bj);
  g.AddTensor("b", bj);
  g.AddTensor("c", bj);
  g.AddTensor("y", bj);
  // Bias takes (x, b) -> y; a third operand is malformed.
  g.AddOpUnchecked({.name = "bad bias",
                    .kind = OpKind::kBias,
                    .inputs = {"x", "b", "c"},
                    .outputs = {"y"}});
  ExpectOnlyRule(Verify(g), "graph/arity");
}

TEST(VerifyGraph, ContractionWithoutEinsum) {
  DataflowGraph g;
  g.AddTensor("x", Shape("ik", {2, 3}));
  g.AddTensor("w", Shape("kj", {3, 4}), /*is_weight=*/true);
  g.AddTensor("y", Shape("ij", {2, 4}));
  g.AddOpUnchecked({.name = "mm",
                    .kind = OpKind::kContraction,
                    .inputs = {"x", "w"},
                    .outputs = {"y"}});
  ExpectOnlyRule(Verify(g), "graph/arity");
}

TEST(VerifyGraph, ContractionShapeMismatch) {
  DataflowGraph g;
  g.AddTensor("x", Shape("ik", {2, 3}));
  g.AddTensor("w", Shape("kj", {3, 4}), /*is_weight=*/true);
  // j must be 4 to fit ik,kj->ij; the declared output says 5.
  g.AddTensor("y", Shape("ij", {2, 5}));
  g.AddOp({.name = "mm",
           .kind = OpKind::kContraction,
           .inputs = {"x", "w"},
           .outputs = {"y"},
           .einsum = "ik,kj->ij"});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "shape/contraction");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].op, "mm");
}

TEST(VerifyGraph, LoweringClassMismatch) {
  DataflowGraph g;
  g.AddTensor("x", Shape("ik", {2, 3}));
  g.AddTensor("w", Shape("kj", {3, 4}), /*is_weight=*/true);
  g.AddTensor("y", Shape("ij", {2, 4}));
  // The shapes re-derive kGemm; a stale annotation claims kGemv.
  g.AddOp({.name = "mm",
           .kind = OpKind::kContraction,
           .inputs = {"x", "w"},
           .outputs = {"y"},
           .einsum = "ik,kj->ij",
           .lowered = EinsumClass::kGemv});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "graph/lowering-consistent");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].op, "mm");
  // The message names both classes so the stale pass is identifiable.
  EXPECT_NE(report.issues[0].message.find("gemv"), std::string::npos);
  EXPECT_NE(report.issues[0].message.find("gemm"), std::string::npos);
}

TEST(VerifyGraph, LoweredBuilderGraphsVerifyClean) {
  for (const bool training : {false, true}) {
    // Inference graphs exercise the unfused builder; the backward graph
    // requires the QKV-fused one.
    auto g = BuildEncoder(
        ModelDims::Tiny(),
        training ? AlgebraicFusion::kQKV : AlgebraicFusion::kNone, training);
    EXPECT_GT(LowerContractions(g), 0u);
    for (const auto& op : g.ops()) {
      if (op.kind != OpKind::kContraction) continue;
      EXPECT_NE(op.lowered, EinsumClass::kUnclassified) << op.name;
    }
    const auto report = Verify(g);
    EXPECT_TRUE(report.ok()) << report.Summary();
    // Idempotent: re-running the pass finds nothing left to classify and
    // the annotated graph still cross-checks clean.
    EXPECT_EQ(LowerContractions(g), 0u);
    EXPECT_TRUE(Verify(g).ok());
  }
}

TEST(VerifyGraph, ElementwiseShapeMismatch) {
  DataflowGraph g;
  g.AddTensor("x", Shape("bj", {2, 3}));
  g.AddTensor("b", Shape("j", {3}), /*is_weight=*/true);
  g.AddTensor("y", Shape("bj", {2, 4}));  // wrong j extent
  g.AddOp({.name = "bias",
           .kind = OpKind::kBias,
           .inputs = {"x", "b"},
           .outputs = {"y"}});
  ExpectOnlyRule(Verify(g), "shape/elementwise");
}

TEST(VerifyGraph, NormStatisticShapeMismatch) {
  DataflowGraph g;
  g.AddTensor("x", Shape("bj", {2, 3}));
  g.AddTensor("w", Shape("j", {3}), /*is_weight=*/true);
  g.AddTensor("b", Shape("j", {3}), /*is_weight=*/true);
  g.AddTensor("y", Shape("bj", {2, 3}));
  // Statistics reduce over j, so they live in the b space; mean is
  // declared in the j space instead.
  g.AddTensor("mean", Shape("j", {3}));
  g.AddTensor("rstd", Shape("b", {2}));
  g.AddOp({.name = "ln",
           .kind = OpKind::kLayerNorm,
           .inputs = {"x", "w", "b"},
           .outputs = {"y", "mean", "rstd"},
           .reduction_dims = {{'j', 3}}});
  const auto report = Verify(g);
  ExpectOnlyRule(report, "shape/norm");
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].container, "mean");
}

TEST(VerifyGraph, NondeterministicReduction) {
  DataflowGraph g;
  g.AddTensor("x", Shape("bj", {2, 3}));
  g.AddTensor("y", Shape("bj", {2, 3}));
  // ReLU is not in the fixed-split deterministic kernel set, so a
  // reduction declared on it is a schedule bug.
  g.AddOp({.name = "r",
           .kind = OpKind::kReLU,
           .inputs = {"x"},
           .outputs = {"y"},
           .reduction_dims = {{'j', 3}}});
  ExpectOnlyRule(Verify(g), "determinism/reduction");
}

// ------------------------------------------------------------- plan rules
//
// Fixtures perturb the planner's own output for a relu chain
// x -> a -> b -> y (one producer per tensor, disjoint interior
// lifetimes), so each corruption is the *only* divergence from a valid
// plan.

struct ChainFixture {
  DataflowGraph graph;
  PlanOptions options;
  MemoryPlan plan;
};

ChainFixture MakeChain() {
  ChainFixture f;
  const Shape bj("bj", {2, 3});
  for (const char* name : {"x", "a", "b", "y"}) {
    f.graph.AddTensor(name, bj);
  }
  f.graph.AddOp({.name = "r0",
                 .kind = OpKind::kReLU,
                 .inputs = {"x"},
                 .outputs = {"a"}});
  f.graph.AddOp({.name = "r1",
                 .kind = OpKind::kReLU,
                 .inputs = {"a"},
                 .outputs = {"b"}});
  f.graph.AddOp({.name = "r2",
                 .kind = OpKind::kReLU,
                 .inputs = {"b"},
                 .outputs = {"y"}});
  f.plan = PlanMemory(f.graph, f.options);
  return f;
}

TEST(VerifyPlan, ChainPlanVerifiesClean) {
  const auto f = MakeChain();
  const auto with = Verify(f.graph, f.plan, f.options);
  EXPECT_TRUE(with.ok()) << with.Summary();
  const auto without = Verify(f.graph, f.plan);
  EXPECT_TRUE(without.ok()) << without.Summary();
}

TEST(VerifyPlan, MissingContainer) {
  const auto f = MakeChain();
  const auto plan =
      Corrupted(f.plan, [](auto& p) { p.erase("a"); });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/coverage");
  // Without options the verifier cannot know `a` was not excluded, so
  // coverage only checks for extras: the two-arg form stays clean.
  const auto without = Verify(f.graph, plan);
  EXPECT_TRUE(without.ok()) << without.Summary();
}

TEST(VerifyPlan, UndeclaredContainer) {
  const auto f = MakeChain();
  const auto plan = Corrupted(f.plan, [](auto& p) {
    p["mystery"] = TensorPlacement{.name = "mystery",
                                   .elem_bytes = 4,
                                   .offset = 0,
                                   .bytes = 8,
                                   .first_use = 0,
                                   .last_use = 0};
  });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/coverage");
}

TEST(VerifyPlan, WrongSize) {
  const auto f = MakeChain();
  const auto plan =
      Corrupted(f.plan, [](auto& p) { p.at("y").bytes -= 4; });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/size");
}

TEST(VerifyPlan, MisalignedOffset) {
  const auto f = MakeChain();
  // Shift the topmost placement, so nothing above it can be overlapped;
  // peak is raised so only the alignment rule is at stake.
  const auto plan = Corrupted(
      f.plan,
      [](auto& p) {
        auto top = p.begin();
        for (auto it = p.begin(); it != p.end(); ++it) {
          if (it->second.offset > top->second.offset) top = it;
        }
        top->second.offset += 63;
      },
      /*peak_delta=*/128);
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/alignment");
}

TEST(VerifyPlan, OverlappingLiveContainers) {
  const auto f = MakeChain();
  // a is live [0, 1] and b [1, 2]: both are live at op 1, so sharing
  // bytes corrupts a's value mid-step.
  const auto plan = Corrupted(
      f.plan, [](auto& p) { p.at("b").offset = p.at("a").offset; });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/overlap");
  ExpectOnlyRule(Verify(f.graph, plan), "plan/overlap");
}

TEST(VerifyPlan, ConcurrentOverlapBetweenPathFreeBranches) {
  // Two fully independent relu chains in one graph: x0 -> a -> out0 and
  // x1 -> b -> out1. a (live [0, 1]) and b (live [2, 3]) have disjoint
  // per-op intervals, so plan/overlap permits them to share bytes -- but
  // no graph path connects the branches, so the task scheduler is free to
  // run them concurrently and the sharing races. Exactly (and only)
  // plan/concurrent-overlap owns this corruption.
  DataflowGraph g;
  const Shape bj("bj", {2, 3});
  for (const char* name : {"x0", "a", "out0", "x1", "b", "out1"}) {
    g.AddTensor(name, bj);
  }
  g.AddOp({.name = "a0",
           .kind = OpKind::kReLU,
           .inputs = {"x0"},
           .outputs = {"a"}});
  g.AddOp({.name = "a1",
           .kind = OpKind::kReLU,
           .inputs = {"a"},
           .outputs = {"out0"}});
  g.AddOp({.name = "b0",
           .kind = OpKind::kReLU,
           .inputs = {"x1"},
           .outputs = {"b"}});
  g.AddOp({.name = "b1",
           .kind = OpKind::kReLU,
           .inputs = {"b"},
           .outputs = {"out1"}});
  const PlanOptions options;
  const auto clean = PlanMemory(g, options);
  // The planner itself must refuse this reuse (concurrency-safe by
  // construction), so its own output verifies clean.
  const auto ok = Verify(g, clean, options);
  EXPECT_TRUE(ok.ok()) << ok.Summary();
  const auto plan = Corrupted(
      clean, [](auto& p) { p.at("b").offset = p.at("a").offset; });
  ExpectOnlyRule(Verify(g, plan, options), "plan/concurrent-overlap");
  ExpectOnlyRule(Verify(g, plan), "plan/concurrent-overlap");
}

TEST(VerifyPlan, CrossLayerSavedActivationAliasing) {
  // Whole-stack fixture: layer 1's forward transient "L1.beta" lives
  // entirely inside layer 0's attention-mask store-until-backward window,
  // so aliasing the two clobbers the saved activation before L0's
  // backward reads it. Exactly (and only) plan/cross-layer-liveness owns
  // this corruption, in both the strict three-arg form and the two-arg
  // executor pre-flight form.
  const auto g = BuildEncoderStack(ModelDims::Tiny(), {.num_layers = 2});
  const auto options = transformer::StackPlanOptions<Half>(g);
  const auto clean = PlanMemory(g, options);
  const auto ok = Verify(g, clean, options);
  EXPECT_TRUE(ok.ok()) << ok.Summary();
  const auto plan = Corrupted(clean, [](auto& p) {
    p.at("L1.beta").offset = p.at("L0.attn_mask").offset;
  });
  ExpectOnlyRule(Verify(g, plan, options), "plan/cross-layer-liveness");
  ExpectOnlyRule(Verify(g, plan), "plan/cross-layer-liveness");
}

TEST(VerifyPlan, ShrunkLivenessInterval) {
  const auto f = MakeChain();
  const auto plan = Corrupted(f.plan, [](auto& p) {
    p.at("a").last_use = p.at("a").first_use;  // graph implies [0, 1]
  });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/liveness");
  // Without options the rule is containment, which a shrink also breaks.
  ExpectOnlyRule(Verify(f.graph, plan), "plan/liveness");
}

TEST(VerifyPlan, DroppedPinnedFlag) {
  const auto f = MakeChain();
  const auto plan =
      Corrupted(f.plan, [](auto& p) { p.at("x").pinned = false; });
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/pinned");
}

TEST(VerifyPlan, PlacementPastPeak) {
  const auto f = MakeChain();
  auto placements = f.plan.placements();
  const auto plan = MemoryPlan::FromPlacements(
      std::move(placements), f.plan.peak_bytes() - 8, f.plan.naive_bytes());
  ExpectOnlyRule(Verify(f.graph, plan, f.options), "plan/peak");
}

TEST(VerifyPlan, BrokenGroupTiling) {
  // The encoder's qkv_proj group must be tiled contiguously by qq, kk,
  // vv in order (the zero-copy stacked GEMM reads it as one tensor);
  // shifting kk breaks the tiling and nothing else.
  const auto dims = ModelDims::Tiny();
  const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  const auto options = transformer::EncoderPlanOptions<float>();
  const auto plan = Corrupted(PlanMemory(g, options),
                              [](auto& p) { p.at("kk").offset += 64; },
                              /*peak_delta=*/128);
  ExpectOnlyRule(Verify(g, plan, options), "plan/group");
}

TEST(VerifyPlan, FusedKernelInputOutputAliasing) {
  // A bias+relu+dropout chain the fuser launches as one BRD kernel: the
  // kernel reads lin while writing out, so recycling lin's bytes into
  // out is only caught by the fused-atomic rule -- per-op liveness says
  // the intervals are disjoint.
  DataflowGraph g;
  const Shape ubj("ubj", {2, 1, 2});
  const std::vector<DimExt> space = {{'u', 2}, {'b', 1}, {'j', 2}};
  g.AddTensor("lin", ubj);
  g.AddTensor("bias", Shape("u", {2}), /*is_weight=*/true);
  g.AddTensor("y1", ubj);
  g.AddTensor("y2", ubj);
  g.AddTensor("out", ubj);
  g.AddTensor("mask", ubj);
  g.AddOp({.name = "bias 1",
           .kind = OpKind::kBias,
           .inputs = {"lin", "bias"},
           .outputs = {"y1"},
           .independent_dims = space});
  g.AddOp({.name = "relu",
           .kind = OpKind::kReLU,
           .inputs = {"y1"},
           .outputs = {"y2"},
           .independent_dims = space});
  g.AddOp({.name = "drop",
           .kind = OpKind::kDropout,
           .inputs = {"y2"},
           .outputs = {"out", "mask"},
           .independent_dims = space,
           .saved_outputs = {"mask"}});
  PlanOptions options;
  options.fused_spans = {{"bias 1", "relu", "drop"}};
  const auto plan = PlanMemory(g, options);
  const auto clean = Verify(g, plan, options);
  ASSERT_TRUE(clean.ok()) << clean.Summary();

  const auto corrupted = Corrupted(
      plan, [](auto& p) { p.at("out").offset = p.at("y1").offset; });
  ExpectOnlyRule(Verify(g, corrupted, options), "plan/fused-atomic");
}

TEST(VerifyPlan, UndeclaredFusedSpan) {
  // Dropping a declared span while the fuser still launches those ops as
  // one kernel means their liveness was planned per-op: the lint flags
  // the schedule/plan divergence.
  const auto dims = ModelDims::Tiny();
  const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  auto options = transformer::EncoderPlanOptions<float>();
  ASSERT_FALSE(options.fused_spans.empty());
  options.fused_spans.erase(options.fused_spans.begin());
  const auto plan = PlanMemory(g, options);
  ExpectOnlyRule(Verify(g, plan, options), "determinism/fused-spans");
}

TEST(VerifyPlan, PartiallyPresentFusedSpan) {
  const auto dims = ModelDims::Tiny();
  const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  auto options = transformer::EncoderPlanOptions<float>();
  options.fused_spans[0] = {"output bias", "attn dropout", "no such op"};
  const auto plan = PlanMemory(g, options);
  ExpectOnlyRule(Verify(g, plan, options), "determinism/fused-spans");
}

// ------------------------------------------------- builder/planner pairs

TEST(VerifyClean, EveryBuilderPlanPairVerifies) {
  for (const ModelDims& dims :
       {ModelDims::Tiny(), ModelDims::BertBase()}) {
    EXPECT_TRUE(Verify(BuildMhaForward(dims)).ok());

    const auto mha = BuildMha(dims, /*include_backward=*/true);
    for (const std::size_t elem : {sizeof(float), sizeof(Half)}) {
      PlanOptions options;  // MakeMhaArena's options
      options.default_elem_bytes = elem;
      options.exclude = {"d_out"};
      const auto plan = PlanMemory(mha, options);
      const auto with = Verify(mha, plan, options);
      EXPECT_TRUE(with.ok()) << "mha elem=" << elem << "\n"
                             << with.Summary();
      const auto without = Verify(mha, plan);
      EXPECT_TRUE(without.ok()) << "mha elem=" << elem << "\n"
                                << without.Summary();
    }

    for (const auto fusion : {AlgebraicFusion::kNone, AlgebraicFusion::kQK,
                              AlgebraicFusion::kQKV}) {
      const auto fwd_only = Verify(BuildEncoder(dims, fusion, false));
      EXPECT_TRUE(fwd_only.ok())
          << "fusion=" << static_cast<int>(fusion) << "\n"
          << fwd_only.Summary();
      // The builder only supports backward (and hence planning) for the
      // fully stacked kQKV form.
      if (fusion != AlgebraicFusion::kQKV) continue;
      const auto enc = BuildEncoder(dims, fusion, /*include_backward=*/true);
      for (const bool half : {false, true}) {
        const auto options =
            half ? transformer::EncoderPlanOptions<Half>()
                 : transformer::EncoderPlanOptions<float>();
        const auto plan = PlanMemory(enc, options);
        const auto with = Verify(enc, plan, options);
        EXPECT_TRUE(with.ok())
            << "encoder fusion=" << static_cast<int>(fusion)
            << " half=" << half << "\n"
            << with.Summary();
        const auto without = Verify(enc, plan);
        EXPECT_TRUE(without.ok())
            << "encoder fusion=" << static_cast<int>(fusion)
            << " half=" << half << "\n"
            << without.Summary();
      }
    }
  }
}

// ------------------------------------------------------------------ fuzz

TEST(VerifyFuzz, EveryPlanPerturbationIsCaught) {
  const auto dims = ModelDims::Tiny();
  const auto g = BuildEncoder(dims, AlgebraicFusion::kQKV, true);
  const auto options = transformer::EncoderPlanOptions<float>();
  const auto plan = PlanMemory(g, options);
  ASSERT_TRUE(Verify(g, plan, options).ok());

  std::vector<std::string> names;
  names.reserve(plan.placements().size());
  for (const auto& [name, p] : plan.placements()) names.push_back(name);

  std::mt19937 rng(20260808);
  auto pick = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  for (int iter = 0; iter < 100; ++iter) {
    auto placements = plan.placements();
    const std::string& victim = names[pick(names.size())];
    TensorPlacement& p = placements.at(victim);
    const int kind = static_cast<int>(pick(4));
    std::string what;
    switch (kind) {
      case 0: {  // unaligned (or tiling-breaking) shift
        const std::size_t delta = 1 + pick(63);
        p.offset += delta;
        what = "shift offset by " + std::to_string(delta);
        break;
      }
      case 1:  // move past the slab
        p.offset += plan.peak_bytes();
        what = "move past peak";
        break;
      case 2:  // shrink the span
        p.bytes -= p.elem_bytes;
        what = "shrink span";
        break;
      default: {  // swap liveness intervals with a differing placement
        std::vector<std::string> partners;
        for (const auto& name : names) {
          const TensorPlacement& q = placements.at(name);
          if (q.first_use != p.first_use || q.last_use != p.last_use) {
            partners.push_back(name);
          }
        }
        ASSERT_FALSE(partners.empty());
        TensorPlacement& q = placements.at(partners[pick(partners.size())]);
        std::swap(p.first_use, q.first_use);
        std::swap(p.last_use, q.last_use);
        what = "swap intervals with '" + q.name + "'";
        break;
      }
    }
    const auto corrupted = MemoryPlan::FromPlacements(
        std::move(placements), plan.peak_bytes(), plan.naive_bytes());
    EXPECT_FALSE(Verify(g, corrupted, options).ok())
        << "iteration " << iter << ": " << what << " on '" << victim
        << "' was not caught";
  }
}

// ----------------------------------------------------- executor bindings

/// x -> relu -> y with both containers external (excluded from the
/// plan), so binding completeness and writability are fully exercised.
struct ReluExecFixture {
  DataflowGraph graph;
  MemoryPlan plan;
  Workspace workspace;
  ReluExecFixture() {
    const Shape bj("bj", {2, 3});
    graph.AddTensor("x", bj);
    graph.AddTensor("y", bj);
    graph.AddOp({.name = "r",
                 .kind = OpKind::kReLU,
                 .inputs = {"x"},
                 .outputs = {"y"}});
    PlanOptions options;
    options.exclude = {"x", "y"};
    plan = PlanMemory(graph, options);
    workspace.Reserve(plan.peak_bytes());
  }
  GraphExecutorT<float> MakeExecutor() {
    return {graph, &plan, &workspace, ExecutorOptions{}};
  }
};

TEST(ExecutorBindings, ReportsUnboundContainers) {
  ReluExecFixture f;
  auto exec = f.MakeExecutor();
  const auto report = exec.VerifyBindings();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 2);  // x and y
  for (const auto& issue : report.issues) {
    EXPECT_EQ(issue.rule_id, "binding/unbound") << ToString(issue);
  }
}

TEST(ExecutorBindings, ReportsReadOnlyOutputByOpName) {
  ReluExecFixture f;
  auto exec = f.MakeExecutor();
  const Shape bj("bj", {2, 3});
  const auto x = TensorF::Random(bj, 5);
  auto y = TensorF(bj);
  exec.BindInput("x", x);
  exec.BindInput("y", y);  // wrong: op "r" writes y
  const auto report = exec.VerifyBindings();
  ASSERT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.issues[0].rule_id, "binding/read-only");
  EXPECT_EQ(report.issues[0].container, "y");
  EXPECT_EQ(report.issues[0].op, "r");
  EXPECT_NE(report.issues[0].message.find("op 'r'"), std::string::npos)
      << report.issues[0].message;
}

TEST(ExecutorBindings, WarnsOnUnusedWritableWithoutFailing) {
  ReluExecFixture f;
  auto exec = f.MakeExecutor();
  const Shape bj("bj", {2, 3});
  auto x = TensorF::Random(bj, 5);
  auto y = TensorF(bj);
  exec.BindOutput("x", x);  // writable, but nothing writes x
  exec.BindOutput("y", y);
  const auto report = exec.VerifyBindings();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.Has("binding/unused-writable")) << report.Summary();
}

TEST(ExecutorBindings, CleanBindingsRunTheGraph) {
  ReluExecFixture f;
  auto exec = f.MakeExecutor();
  const Shape bj("bj", {2, 3});
  const auto x = TensorF::Random(bj, 5);
  auto y = TensorF(bj);
  exec.BindInput("x", x);
  exec.BindOutput("y", y);
  EXPECT_TRUE(exec.VerifyBindings().ok());
  exec.Forward();
  for (std::int64_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y.data()[i], std::max(x.data()[i], 0.0f));
  }
}

TEST(ExecutorBindings, PreflightNamesTheMissingContainer) {
  if (!PreflightVerifyEnabled()) {
    GTEST_SKIP() << "pre-flight disabled (Release build, XFLOW_VERIFY unset)";
  }
  ReluExecFixture f;
  auto exec = f.MakeExecutor();
  try {
    exec.Forward();
    FAIL() << "expected the pre-flight to reject unbound containers";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pre-flight failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("binding/unbound"), std::string::npos) << msg;
    EXPECT_NE(msg.find("container 'x'"), std::string::npos) << msg;
  }
}

TEST(ExecutorBindings, DispatchFailureNamesTheOp) {
  // A bound operand with the right element count but foreign dim names
  // passes the binding pre-flight (count-only) and fails inside the
  // einsum kernel; the executor must attribute the error to the op by
  // name, not leave a bare kernel message.
  DataflowGraph g;
  g.AddTensor("a", Shape("ij", {2, 3}));
  g.AddTensor("w", Shape("jk", {3, 4}), /*is_weight=*/true);
  g.AddTensor("out", Shape("ik", {2, 4}));
  g.AddOp({.name = "mm",
           .kind = OpKind::kContraction,
           .inputs = {"a", "w"},
           .outputs = {"out"},
           .einsum = "ij,jk->ik"});
  PlanOptions options;
  options.exclude = {"a", "out"};
  const auto plan = PlanMemory(g, options);
  Workspace ws;
  ws.Reserve(plan.peak_bytes());
  GraphExecutorT<float> exec(g, &plan, &ws, ExecutorOptions{});
  const auto a = TensorF::Random(Shape("ij", {2, 3}), 5);
  const auto w_bad = TensorF::Random(Shape("pq", {3, 4}), 7);
  auto out = TensorF(Shape("ik", {2, 4}));
  exec.BindInput("a", a);
  exec.BindInput("w", w_bad);  // 12 elements, wrong dim names
  exec.BindOutput("out", out);
  try {
    exec.Forward();
    FAIL() << "expected the einsum kernel to reject the operand";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("[while executing op 'mm'"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ formatting

TEST(VerifyReporting, IssueAndSummaryFormat) {
  const VerifyIssue err{VerifySeverity::kError, "plan/overlap", "r0", "a",
                        "shares bytes"};
  EXPECT_EQ(ToString(err),
            "[error] plan/overlap (op 'r0') (container 'a'): shares bytes");
  const VerifyIssue warn{VerifySeverity::kWarning, "binding/unused-writable",
                         "", "x", "never written"};
  EXPECT_EQ(ToString(warn),
            "[warning] binding/unused-writable (container 'x'): never "
            "written");

  VerifyReport report;
  report.issues = {err, warn};
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 1);
  EXPECT_TRUE(report.Has("plan/overlap"));
  EXPECT_TRUE(report.Has("binding/unused-writable"));
  EXPECT_FALSE(report.Has("plan/size"));
  EXPECT_NE(report.Summary().find("2 issue(s), 1 error(s)"),
            std::string::npos);

  VerifyReport clean;
  EXPECT_TRUE(clean.ok());
}

TEST(VerifyReporting, OpRefNamesOpIndexAndKind) {
  const auto f = MakeChain();
  const std::string ref = OpRef(f.graph, 0);
  EXPECT_EQ(ref.find("op 'r0' (#0, "), 0u) << ref;
  EXPECT_EQ(OpRef(f.graph, 7), "op #7");
  EXPECT_EQ(OpRef(f.graph, -1), "op #-1");
}

TEST(VerifyReporting, EnvGateParsesCommonSpellings) {
  for (const char* on : {"1", "true", "TRUE", "on", "On", "yes"}) {
    EXPECT_TRUE(VerifyEnvEnabled(on, false)) << on;
  }
  for (const char* off : {"0", "false", "OFF", "off", "no", "No"}) {
    EXPECT_FALSE(VerifyEnvEnabled(off, true)) << off;
  }
  // Unset and unparsable fall back to the build-type default.
  EXPECT_TRUE(VerifyEnvEnabled(nullptr, true));
  EXPECT_FALSE(VerifyEnvEnabled(nullptr, false));
  EXPECT_TRUE(VerifyEnvEnabled("", true));
  EXPECT_FALSE(VerifyEnvEnabled("", false));
  EXPECT_TRUE(VerifyEnvEnabled("garbage", true));
  EXPECT_FALSE(VerifyEnvEnabled("garbage", false));
}

}  // namespace
}  // namespace xflow::graph
