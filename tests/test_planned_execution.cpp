// Planned (arena-backed) execution must be bitwise identical to owning
// execution at every thread count, in both kernel styles -- planning
// changes where bytes live, never their values -- and a steady-state
// stack train step must perform zero allocations at the tensor layer.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "tensor/memstats.hpp"
#include "transformer/arena.hpp"
#include "transformer/mha.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

namespace xflow::transformer {
namespace {

using graph::ModelDims;

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { ThreadPool::SetGlobalThreads(threads); }
  ~ThreadGuard() {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

EncoderConfig TinyConfig(bool fused) {
  EncoderConfig cfg;
  cfg.dims = ModelDims::Tiny();
  cfg.dropout_prob = 0.1f;
  cfg.seed = 7;
  cfg.use_fused_kernels = fused;
  return cfg;
}

Shape TinyIbj() {
  const auto d = ModelDims::Tiny();
  return Shape("ibj", {d.i, d.b, d.j});
}

TEST(PlannedExecution, EncoderMatchesOwningBitwise) {
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    for (bool fused : {true, false}) {
      SCOPED_TRACE(StrFormat("threads=%d fused=%d", threads, int(fused)));
      const auto cfg = TinyConfig(fused);
      auto params = EncoderParamsT<Half>::Init(cfg.dims, 11);
      EncoderLayerT<Half> layer(cfg, params);
      auto x = TensorH::Random(TinyIbj(), 13);

      auto arena = MakeEncoderArena<Half>(cfg);
      EncoderActivationsT<Half> own_acts, plan_acts;
      plan_acts.arena = &arena;
      layer.Forward(x, own_acts);
      layer.Forward(x, plan_acts);
      EXPECT_EQ(MaxAbsDiff(own_acts.y, plan_acts.y), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.qq_b, plan_acts.qq_b), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.kk_b, plan_acts.kk_b), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.vv_b, plan_acts.vv_b), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.alpha, plan_acts.alpha), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.softmax_saved, plan_acts.softmax_saved),
                0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.gamma_t, plan_acts.gamma_t), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.resid1, plan_acts.resid1), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.ln1_out, plan_acts.ln1_out), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.ln1_mean, plan_acts.ln1_mean), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.relu1, plan_acts.relu1), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.ff_dropped, plan_acts.ff_dropped), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.resid2, plan_acts.resid2), 0.0);

      auto d_y = TensorH::Random(TinyIbj(), 17);
      EncoderGradientsT<Half> own_grads, plan_grads;
      plan_grads.arena = &arena;
      layer.Backward(d_y, own_acts, own_grads);
      layer.Backward(d_y, plan_acts, plan_grads);
      EXPECT_EQ(MaxAbsDiff(own_grads.d_x, plan_grads.d_x), 0.0);
      auto own_named = own_grads.params.Named();
      auto plan_named = plan_grads.params.Named();
      for (std::size_t p = 0; p < own_named.size(); ++p) {
        EXPECT_EQ(MaxAbsDiff(*own_named[p].second, *plan_named[p].second),
                  0.0)
            << own_named[p].first;
      }
    }
  }
}

TEST(PlannedExecution, MhaForwardAndBackwardMatchOwning) {
  for (int threads : {1, 8}) {
    ThreadGuard guard(threads);
    for (bool causal : {false, true}) {
      SCOPED_TRACE(StrFormat("threads=%d causal=%d", threads, int(causal)));
      MhaConfig cfg;
      cfg.dims = ModelDims::Tiny();
      cfg.dropout_prob = 0.1f;
      cfg.seed = 3;
      cfg.causal = causal;
      const auto d = cfg.dims;
      MhaLayerT<Half> layer(cfg, MhaParamsT<Half>::Init(d, 5));
      auto q = TensorH::Random(Shape("ibj", {d.i, d.b, d.j}), 7);
      auto k = TensorH::Random(Shape("ibk", {d.i, d.b, d.k}), 8);
      auto v = TensorH::Random(Shape("ibk", {d.i, d.b, d.k}), 9);

      auto arena = MakeMhaArena<Half>(cfg);
      MhaActivationsT<Half> own_acts, plan_acts;
      plan_acts.arena = &arena;
      layer.Forward(q, k, v, own_acts);
      layer.Forward(q, k, v, plan_acts);
      EXPECT_EQ(MaxAbsDiff(own_acts.out, plan_acts.out), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.alpha, plan_acts.alpha), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_acts.gamma_t, plan_acts.gamma_t), 0.0);

      auto d_out = TensorH::Random(Shape("ibj", {d.i, d.b, d.j}), 21);
      MhaGradientsT<Half> own_grads, plan_grads;
      plan_grads.arena = &arena;  // backward is planned too (full graph)
      layer.Backward(d_out, own_acts, own_grads);
      layer.Backward(d_out, plan_acts, plan_grads);
      EXPECT_EQ(MaxAbsDiff(own_grads.d_q, plan_grads.d_q), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_grads.d_k, plan_grads.d_k), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_grads.d_v, plan_grads.d_v), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_grads.params.wq, plan_grads.params.wq), 0.0);
      EXPECT_EQ(MaxAbsDiff(own_grads.params.bo, plan_grads.params.bo), 0.0);
    }
  }
}

TEST(PlannedExecution, RepeatedBackwardIntoReusedGradientsIsIdempotent) {
  // Gradient accumulators are reused across steps (EnsureShapes); a kernel
  // that accumulated instead of overwriting would drift on the second run.
  const auto cfg = TinyConfig(true);
  EncoderLayerT<Half> layer(cfg, EncoderParamsT<Half>::Init(cfg.dims, 23));
  EncoderActivationsT<Half> acts;
  layer.Forward(TensorH::Random(TinyIbj(), 29), acts);
  auto d_y = TensorH::Random(TinyIbj(), 31);
  EncoderGradientsT<Half> reused, fresh;
  layer.Backward(d_y, acts, reused);
  layer.Backward(d_y, acts, reused);  // second run into the same buffers
  layer.Backward(d_y, acts, fresh);
  EXPECT_EQ(MaxAbsDiff(reused.d_x, fresh.d_x), 0.0);
  auto rn = reused.params.Named();
  auto fn = fresh.params.Named();
  for (std::size_t p = 0; p < rn.size(); ++p) {
    EXPECT_EQ(MaxAbsDiff(*rn[p].second, *fn[p].second), 0.0) << rn[p].first;
  }
}

TEST(PlannedExecution, SteadyStateTrainStepIsAllocationFree) {
  // The planner's headline contract: after warmup, a full train step
  // (forward, loss, backward, optimizer) on a planned stack performs zero
  // tensor-buffer and zero workspace allocations.
  const auto cfg = TinyConfig(true);
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
  std::vector<EncoderActivationsT<Half>> acts;
  std::vector<EncoderGradientsT<Half>> grads;
  stack.BindWorkspace(workspace, acts, grads);

  auto x = TensorH::Random(TinyIbj(), 5);
  auto target = TensorH::Random(TinyIbj(), 6);
  TensorH d_y(TinyIbj());
  MixedPrecisionAdam opt({.lr = 1e-3f});
  std::vector<std::vector<TensorF>> masters(kLayers);
  for (int l = 0; l < kLayers; ++l) {
    for (auto& [name, t] : stack.layer(l).params().Named()) {
      masters[static_cast<std::size_t>(l)].push_back(t->Cast<float>());
    }
  }

  double loss = 0;
  auto step = [&] {
    const auto& y = stack.Forward(x, acts);
    loss = MseLoss(y, target, d_y);
    stack.Backward(d_y, acts, grads);
    for (int l = 0; l < kLayers; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      auto named_params = stack.layer(l).params().Named();
      auto named_grads = grads[lu].params.Named();
      for (std::size_t p = 0; p < named_params.size(); ++p) {
        opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                 masters[lu][p], *named_params[p].second,
                 *named_grads[p].second);
      }
    }
  };

  step();  // warmup: gradient accumulators + optimizer state allocate here
  step();
  const double warm_loss = loss;
  const auto before = memstats::Read();
  step();
  const auto after = memstats::Read();
  EXPECT_EQ(after.tensor_allocs, before.tensor_allocs)
      << "steady-state step allocated "
      << after.tensor_bytes - before.tensor_bytes << " tensor bytes";
  EXPECT_EQ(after.workspace_allocs, before.workspace_allocs);
  EXPECT_EQ(after.einsum_table_builds, before.einsum_table_builds)
      << "steady-state step rebuilt einsum offset tables";
  EXPECT_EQ(after.einsum_class_builds, before.einsum_class_builds)
      << "steady-state step reclassified einsum contractions";
  EXPECT_EQ(after.autotune_measures, before.autotune_measures)
      << "steady-state step re-tuned a contraction bucket";
  EXPECT_LT(loss, warm_loss);  // and it still trains
}

TEST(PlannedExecution, PlannedStackTrainsIdenticallyToOwning) {
  // Whole-loop equivalence: N planned train steps == N owning train steps,
  // bit for bit, including the optimizer trajectory.
  const auto cfg = TinyConfig(true);
  constexpr int kLayers = 2;
  auto run = [&](bool planned) {
    EncoderStackT<Half> stack(cfg, kLayers, 3);
    EncoderStackWorkspaceT<Half> workspace(cfg, planned ? kLayers : 1);
    std::vector<EncoderActivationsT<Half>> acts;
    std::vector<EncoderGradientsT<Half>> grads;
    if (planned) stack.BindWorkspace(workspace, acts, grads);
    auto x = TensorH::Random(TinyIbj(), 5);
    auto target = TensorH::Random(TinyIbj(), 6);
    TensorH d_y(TinyIbj());
    MixedPrecisionAdam opt({.lr = 2e-3f});
    std::vector<std::vector<TensorF>> masters(kLayers);
    for (int l = 0; l < kLayers; ++l) {
      for (auto& [name, t] : stack.layer(l).params().Named()) {
        masters[static_cast<std::size_t>(l)].push_back(t->Cast<float>());
      }
    }
    for (int s = 0; s < 4; ++s) {
      const auto& y = stack.Forward(x, acts);
      MseLoss(y, target, d_y);
      stack.Backward(d_y, acts, grads);
      for (int l = 0; l < kLayers; ++l) {
        const auto lu = static_cast<std::size_t>(l);
        auto named_params = stack.layer(l).params().Named();
        auto named_grads = grads[lu].params.Named();
        for (std::size_t p = 0; p < named_params.size(); ++p) {
          opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                   masters[lu][p], *named_params[p].second,
                   *named_grads[p].second);
        }
      }
    }
    // Deep-copy the result: in planned mode y is a view into the local
    // workspace, and view copies alias.
    const auto& y = stack.Forward(x, acts);
    TensorH out(y.shape());
    CopyValuesInto(y, out);
    return out;
  };
  auto owning = run(false);
  auto planned = run(true);
  EXPECT_EQ(MaxAbsDiff(owning, planned), 0.0);
}

}  // namespace
}  // namespace xflow::transformer
