#include "common/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace xflow {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(Half(static_cast<float>(i))), static_cast<float>(i))
        << "integer " << i << " must be exact in binary16";
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3C00);
  EXPECT_EQ(Half(-1.0f).bits(), 0xBC00);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7BFF);  // max finite
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_EQ(Half(65520.0f).bits(), 0x7C00);  // rounds up past max finite
  EXPECT_EQ(Half(1e30f).bits(), 0x7C00);
  EXPECT_EQ(Half(-1e30f).bits(), 0xFC00);
}

TEST(Half, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Half(inf).bits(), 0x7C00);
  EXPECT_EQ(Half(-inf).bits(), 0xFC00);
  EXPECT_TRUE(std::isnan(float(Half(std::nanf("")))));
  EXPECT_TRUE(std::isinf(float(Half::FromBits(0x7C00))));
}

TEST(Half, SubnormalsRoundTrip) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001);
  EXPECT_EQ(float(Half::FromBits(0x0001)), tiny);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float big_sub = std::ldexp(1023.0f / 1024.0f, -14);
  EXPECT_EQ(Half(big_sub).bits(), 0x03FF);
  EXPECT_EQ(float(Half::FromBits(0x03FF)), big_sub);
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000);
  EXPECT_EQ(Half(-std::ldexp(1.0f, -26)).bits(), 0x8000);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10):
  // must round to even mantissa (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3C00);
  // 1 + 3*2^-11 is halfway between (1 + 2^-10) and (1 + 2^-9): rounds to
  // even, i.e. 1 + 2^-9.
  EXPECT_EQ(Half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(), 0x3C02);
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Exhaustive: every finite half value converts to float and back exactly.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = Half::FromBits(static_cast<std::uint16_t>(bits));
    const float f = float(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(Half(f).bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Half, ArithmeticRoundsOnce) {
  Half a(1.0f), b(0.0004883f);  // b ~= 2^-11, below 1.0's ulp.
  a += b;
  EXPECT_EQ(float(a), 1.0f) << "sum must round back to 1.0 in fp16";
}

}  // namespace
}  // namespace xflow
