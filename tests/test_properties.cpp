// Property-based sweeps over the system's core invariants, parameterized
// across model shapes and seeds.
#include <gtest/gtest.h>

#include "baselines/plans.hpp"
#include "fusion/fuser.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "transformer/encoder.hpp"

namespace xflow {
namespace {

using graph::AlgebraicFusion;
using graph::BuildEncoder;
using graph::ModelDims;

ModelDims MakeDims(std::int64_t b, std::int64_t j, std::int64_t h,
                   std::int64_t p, std::int64_t u_mult) {
  ModelDims d;
  d.b = b;
  d.j = d.k = j;
  d.h = h;
  d.p = p;
  d.i = h * p;
  d.u = u_mult * d.i;
  return d;
}

// ---------------------------------------------------------------------------
// Graph invariants across shapes.

class GraphShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GraphShapeSweep, StructureIsShapeIndependent) {
  const auto [b, j, h, p] = GetParam();
  const auto d = MakeDims(b, j, h, p, 4);
  const auto g = BuildEncoder(d, AlgebraicFusion::kQKV, true);
  EXPECT_EQ(g.ops().size(), 46u);

  // Flop is always dominated by contractions; the share grows with the
  // embedding size (99.8% at BERT-large, less at toy scale).
  const auto by_class = FlopByClass(g);
  EXPECT_GT(by_class.at(graph::OpClass::kContraction) / TotalFlop(g), 0.90);

  // The fusion result is structurally identical at every size.
  const auto fused = fusion::FuseMaximally(g);
  EXPECT_EQ(fused.kernels.size(), 32u);
  EXPECT_GT(fused.DataMovementReduction(g), 0.05);
  EXPECT_LT(fused.DataMovementReduction(g), 0.40);
}

TEST_P(GraphShapeSweep, ForwardBackwardFlopRatioIsTwo) {
  const auto [b, j, h, p] = GetParam();
  const auto d = MakeDims(b, j, h, p, 4);
  const auto g = BuildEncoder(d, AlgebraicFusion::kQKV, true);
  double fwd = 0, bwd = 0;
  bool in_bwd = false;
  for (const auto& op : g.ops()) {
    if (op.name == "layernorm 2 dW") in_bwd = true;
    if (op.cls() == graph::OpClass::kContraction) {
      (in_bwd ? bwd : fwd) += op.flop;
    }
  }
  EXPECT_NEAR(bwd / fwd, 2.0, 1e-9);  // dX + dW per forward GEMM
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphShapeSweep,
    ::testing::Values(std::tuple{2, 16, 2, 8}, std::tuple{4, 64, 4, 16},
                      std::tuple{8, 512, 16, 64},   // BERT-large
                      std::tuple{96, 128, 16, 64},  // second config
                      std::tuple{1, 32, 8, 32}));

// ---------------------------------------------------------------------------
// Device-model monotonicity properties.

class ModelMonotonicity : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ModelMonotonicity, MoreWorkNeverRunsMuchFaster) {
  // Doubling M doubles flop but can also improve utilization (wave
  // quantization, per-shape algorithm behavior), so the property is
  // "never much faster", not strict monotonicity.
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const std::int64_t n = GetParam();
  GemmExtents small{.m = n, .n = 1024, .k = 1024, .batch = 1};
  GemmExtents big{.m = 2 * n, .n = 1024, .k = 1024, .batch = 1};
  auto best = [&](const GemmExtents& e) {
    double t = 1e30;
    for (int a = 0; a < sim::kNumGemmAlgorithms; ++a) {
      t = std::min(t, model.Contraction(e, {.algorithm = a}).time_us);
    }
    return t;
  };
  EXPECT_LE(best(small), best(big) * 1.10);
}

TEST_P(ModelMonotonicity, BandwidthFractionInverselyScalesTime) {
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const double bytes = static_cast<double>(GetParam()) * 1e5;
  double prev = 1e30;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto t = model.MemoryBoundKernel(
        bytes, bytes, 0, {.bandwidth_frac = frac});
    EXPECT_LT(t.time_us, prev);
    prev = t.time_us;
  }
}

TEST_P(ModelMonotonicity, MueAlwaysInRange) {
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const std::int64_t n = GetParam();
  GemmExtents e{.m = n, .n = n, .k = 64, .batch = 8};
  for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
    const auto t = model.Contraction(e, {.algorithm = algo});
    EXPECT_GE(t.mue, 0.0);
    EXPECT_LE(t.mue, 100.0);
    EXPECT_GE(t.pct_peak, 0.0);
    EXPECT_LE(t.pct_peak, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ModelMonotonicity,
                         ::testing::Values(128, 256, 512, 1024, 4096));

// ---------------------------------------------------------------------------
// Encoder numerics across shapes and seeds: fused == unfused everywhere.

class EncoderShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EncoderShapeSweep, FusedEqualsUnfusedEverywhere) {
  const auto [h, p, seed] = GetParam();
  transformer::EncoderConfig cfg;
  cfg.dims = MakeDims(2, 8, h, p, 2);
  cfg.dropout_prob = 0.15f;
  cfg.seed = static_cast<std::uint64_t>(seed);

  auto params = transformer::EncoderParams::Init(cfg.dims, 100 + seed);
  cfg.use_fused_kernels = true;
  transformer::EncoderLayer fused(cfg, params);
  cfg.use_fused_kernels = false;
  transformer::EncoderLayer unfused(cfg, params);

  auto x = TensorH::Random(
      Shape("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j}), 200 + seed);
  transformer::EncoderActivations a_f, a_u;
  fused.Forward(x, a_f);
  unfused.Forward(x, a_u);
  EXPECT_EQ(MaxAbsDiff(a_f.y, a_u.y), 0.0);

  auto d_y = TensorH::Random(a_f.y.shape(), 300 + seed);
  transformer::EncoderGradients g_f, g_u;
  fused.Backward(d_y, a_f, g_f);
  unfused.Backward(d_y, a_u, g_u);
  EXPECT_EQ(MaxAbsDiff(g_f.d_x, g_u.d_x), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.w_qkv, g_u.params.w_qkv), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, EncoderShapeSweep,
    ::testing::Combine(::testing::Values(2, 4), ::testing::Values(4, 8),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Baseline ordering holds across model scales (not just BERT-large).

class BaselineScaleSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineScaleSweep, OursNeverLosesToPyTorch) {
  const auto [b, j] = GetParam();
  const auto d = MakeDims(b, j, 16, 64, 4);
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto ours =
      baselines::PlanEncoder(baselines::Framework::kOurs, model, d);
  const auto pt =
      baselines::PlanEncoder(baselines::Framework::kPyTorch, model, d);
  EXPECT_LT(ours.TotalUs(), pt.TotalUs());
  EXPECT_LT(ours.TotalBytesMoved(), pt.TotalBytesMoved());
}

INSTANTIATE_TEST_SUITE_P(Scales, BaselineScaleSweep,
                         ::testing::Values(std::tuple{2, 128},
                                           std::tuple{8, 512},
                                           std::tuple{16, 256},
                                           std::tuple{96, 128},
                                           std::tuple{32, 64}));

}  // namespace
}  // namespace xflow
