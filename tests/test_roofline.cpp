#include "sim/roofline.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "transformer/training.hpp"

namespace xflow::sim {
namespace {

TEST(Roofline, MachineBalanceMatchesV100Specs) {
  const auto spec = DeviceSpec::V100();
  EXPECT_NEAR(MachineBalance(spec, false), 31.4e12 / 900e9, 1e-6);
  EXPECT_NEAR(MachineBalance(spec, true), 125e12 / 900e9, 1e-6);
}

TEST(Roofline, ClassifiesEncoderOperatorsLikeThePaper) {
  const auto spec = DeviceSpec::V100();
  const auto g = BuildEncoder(graph::ModelDims::BertLarge(),
                              graph::AlgebraicFusion::kQKV, true);
  // Linear layers: compute-bound on tensor cores; every element-wise and
  // normalization op: memory-bound on the fp16 pipes.
  for (const auto& op : g.ops()) {
    const auto cost = CostOf(g, op);
    if (op.name == "linear 1" || op.name == "Q,K,V") {
      EXPECT_EQ(PredictBound(spec, cost, true), RooflineBound::kCompute)
          << op.name;
    }
    if (op.cls() != graph::OpClass::kContraction) {
      EXPECT_EQ(PredictBound(spec, cost, false), RooflineBound::kMemory)
          << op.name;
    }
  }
}

TEST(Roofline, AttainableFlopsCapsAtPeak) {
  const auto spec = DeviceSpec::V100();
  graph::OpCost huge{.flop = 1e15, .input_elems = 10, .output_elems = 10};
  EXPECT_DOUBLE_EQ(AttainableFlops(spec, huge, true),
                   spec.tensor_core_flops);
  graph::OpCost tiny{.flop = 10, .input_elems = 1 << 20,
                     .output_elems = 1 << 20};
  EXPECT_LT(AttainableFlops(spec, tiny, true), 1e9);
}

TEST(Roofline, SubstantialRuntimeIsMemoryBound) {
  // Paper Sec. I: "over a third (37%) of the runtime in a BERT training
  // iteration is spent in memory-bound operators". An ideal roofline
  // machine shows the same qualitative picture.
  const auto g = BuildEncoder(graph::ModelDims::BertLarge(),
                              graph::AlgebraicFusion::kQKV, true);
  const double frac = MemoryBoundRuntimeFraction(g, DeviceSpec::V100());
  EXPECT_GT(frac, 0.20);
  EXPECT_LT(frac, 0.60);
}

TEST(Roofline, BatchedAttentionGemmsAreBalancedNotComputeBound) {
  // QKT at BERT dims: ~100 flop/word < TC machine balance of ~139 -- on
  // tensor cores even a GEMM can be memory-limited (the paper's MUE
  // discussion for QKT).
  const auto g = BuildEncoder(graph::ModelDims::BertLarge(),
                              graph::AlgebraicFusion::kQKV, true);
  const auto cost = CostOf(g, g.op("QKT"));
  EXPECT_EQ(PredictBound(DeviceSpec::V100(), cost, true),
            RooflineBound::kMemory);
  EXPECT_EQ(PredictBound(DeviceSpec::V100(), cost, false),
            RooflineBound::kCompute);
}

}  // namespace
}  // namespace xflow::sim

namespace xflow::transformer {
namespace {

TEST(WarmupSchedule, LinearRampThenInverseSqrtDecay) {
  WarmupSchedule sched(1.0f, 100);
  EXPECT_NEAR(sched.At(1), 0.01f, 1e-6);
  EXPECT_NEAR(sched.At(50), 0.5f, 1e-6);
  EXPECT_NEAR(sched.At(100), 1.0f, 1e-6);
  EXPECT_NEAR(sched.At(400), 0.5f, 1e-6);   // sqrt(100/400)
  EXPECT_NEAR(sched.At(10000), 0.1f, 1e-6); // sqrt(100/10000)
  EXPECT_THROW((void)sched.At(0), InvalidArgument);
}

TEST(WarmupSchedule, ZeroWarmupIsConstant) {
  WarmupSchedule sched(0.5f, 0);
  EXPECT_FLOAT_EQ(sched.At(1), 0.5f);
  EXPECT_FLOAT_EQ(sched.At(1000), 0.5f);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  auto g = TensorH::Full(Shape("x", {4}), 0.1f);
  const double norm = ClipGradNorm({&g}, 10.0);
  EXPECT_NEAR(norm, 0.2, 1e-3);  // sqrt(4 * 0.01)
  EXPECT_FLOAT_EQ(float(g.data()[0]), float(Half(0.1f)));  // untouched
}

TEST(ClipGradNorm, ScalesLargeGradientsToMaxNorm) {
  auto g1 = TensorH::Full(Shape("x", {4}), 3.0f);
  auto g2 = TensorH::Full(Shape("y", {4}), 4.0f);
  const double norm = ClipGradNorm({&g1, &g2}, 1.0);  // norm = 10
  EXPECT_NEAR(norm, 10.0, 1e-2);
  double after = 0;
  for (auto* g : {&g1, &g2}) {
    for (std::int64_t i = 0; i < g->size(); ++i) {
      after += float(g->data()[i]) * float(g->data()[i]);
    }
  }
  EXPECT_NEAR(std::sqrt(after), 1.0, 1e-2);
}

TEST(ClipGradNorm, RejectsNonPositiveMaxNorm) {
  auto g = TensorH::Full(Shape("x", {2}), 1.0f);
  EXPECT_THROW(ClipGradNorm({&g}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace xflow::transformer
