#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/shape.hpp"

namespace xflow {
namespace {

TEST(Shape, BasicProperties) {
  Shape s("phb", {64, 16, 8});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.names(), "phb");
  EXPECT_EQ(s.extent('p'), 64);
  EXPECT_EQ(s.extent('h'), 16);
  EXPECT_EQ(s.num_elements(), 64 * 16 * 8);
}

TEST(Shape, RowMajorStrides) {
  Shape s("abc", {2, 3, 4});
  EXPECT_EQ(s.stride('c'), 1);
  EXPECT_EQ(s.stride('b'), 4);
  EXPECT_EQ(s.stride('a'), 12);
}

TEST(Shape, PermutedKeepsExtents) {
  Shape s("abc", {2, 3, 4});
  Shape p = s.Permuted("cab");
  EXPECT_EQ(p.names(), "cab");
  EXPECT_EQ(p.extent('a'), 2);
  EXPECT_EQ(p.stride('c'), 6);  // now outermost
  EXPECT_EQ(p.stride('b'), 1);
}

TEST(Shape, RejectsDuplicateNames) {
  EXPECT_THROW(Shape("aab", {1, 2, 3}), InvalidArgument);
}

TEST(Shape, RejectsNonPositiveExtent) {
  EXPECT_THROW(Shape("ab", {2, 0}), InvalidArgument);
}

TEST(Shape, AllPermutationsCount) {
  EXPECT_EQ(AllPermutations("ab").size(), 2u);
  EXPECT_EQ(AllPermutations("abc").size(), 6u);
  EXPECT_EQ(AllPermutations("abcd").size(), 24u);
}

TEST(Shape, ForEachIndexVisitsAllOnce) {
  Shape s("xy", {3, 5});
  int count = 0;
  std::int64_t checksum = 0;
  ForEachIndex(s, [&](std::span<const std::int64_t> idx) {
    ++count;
    checksum += idx[0] * 5 + idx[1];
  });
  EXPECT_EQ(count, 15);
  EXPECT_EQ(checksum, 14 * 15 / 2);  // sum of 0..14
}

TEST(Tensor, AtMatchesLinearLayout) {
  TensorF t("ab", {2, 3});
  for (std::int64_t i = 0; i < 6; ++i) t.data()[i] = static_cast<float>(i);
  EXPECT_EQ(t.at({{'a', 1}, {'b', 2}}), 5.0f);
  EXPECT_EQ(t.at({{'a', 0}, {'b', 1}}), 1.0f);
}

TEST(Tensor, PermutedPreservesLogicalValues) {
  auto t = TensorF::Random(Shape("abc", {3, 4, 5}), 1);
  auto p = t.Permuted("cba");
  for (std::int64_t a = 0; a < 3; ++a) {
    for (std::int64_t b = 0; b < 4; ++b) {
      for (std::int64_t c = 0; c < 5; ++c) {
        EXPECT_EQ(t.at({{'a', a}, {'b', b}, {'c', c}}),
                  p.at({{'a', a}, {'b', b}, {'c', c}}));
      }
    }
  }
  EXPECT_EQ(MaxAbsDiff(t, p), 0.0);
}

TEST(Tensor, PermutedRoundTripIsIdentity) {
  auto t = TensorH::Random(Shape("pbhj", {4, 3, 2, 5}), 7);
  auto round = t.Permuted("jhbp").Permuted("pbhj");
  EXPECT_EQ(MaxAbsDiff(t, round), 0.0);
  EXPECT_EQ(round.dim_order(), "pbhj");
}

TEST(Tensor, RandomIsDeterministic) {
  auto a = TensorF::Random(Shape("x", {100}), 5);
  auto b = TensorF::Random(Shape("x", {100}), 5);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0);
}

TEST(Tensor, CastToHalfRounds) {
  TensorF t("x", {1});
  t.data()[0] = 1.0f + std::ldexp(1.0f, -12);  // below fp16 resolution
  auto h = t.Cast<Half>();
  EXPECT_EQ(float(h.data()[0]), 1.0f);
}

TEST(Tensor, MaxAbsDiffDetectsDifference) {
  auto a = TensorF::Full(Shape("xy", {2, 2}), 1.0f);
  auto b = TensorF::Full(Shape("xy", {2, 2}), 1.0f);
  b.data()[3] = 1.5f;
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 0.5);
}

}  // namespace
}  // namespace xflow
