#include "fusion/fuser.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/builder.hpp"

namespace xflow::fusion {
namespace {

using graph::AlgebraicFusion;
using graph::BuildEncoder;
using graph::ModelDims;
using graph::OpKind;
using graph::OpNode;

OpNode MapOp(std::string name, std::vector<DimExt> indep,
             std::vector<DimExt> red = {}) {
  OpNode op;
  op.name = std::move(name);
  op.kind = OpKind::kBias;
  op.independent_dims = std::move(indep);
  op.reduction_dims = std::move(red);
  return op;
}

TEST(IterationSpaces, IdenticalMapsAreCompatible) {
  auto a = MapOp("a", {{'i', 8}, {'b', 2}});
  auto b = MapOp("b", {{'i', 8}, {'b', 2}});
  EXPECT_TRUE(IterationSpacesCompatible(a, b));
}

TEST(IterationSpaces, MapPlusReductionOverSameSpaceCompatible) {
  auto a = MapOp("map", {{'i', 8}, {'b', 2}, {'j', 3}});
  auto b = MapOp("reduce", {{'b', 2}, {'j', 3}}, {{'i', 8}});
  EXPECT_TRUE(IterationSpacesCompatible(a, b));
}

TEST(IterationSpaces, DifferentReductionDimsIncompatible) {
  auto a = MapOp("r1", {{'i', 8}}, {{'b', 2}, {'j', 3}});
  auto b = MapOp("r2", {{'b', 2}, {'j', 3}}, {{'i', 8}});
  EXPECT_FALSE(IterationSpacesCompatible(a, b));
}

TEST(IterationSpaces, DisjointSpacesIncompatible) {
  auto a = MapOp("a", {{'i', 8}, {'b', 2}});
  auto b = MapOp("b", {{'u', 4}, {'k', 3}});
  EXPECT_FALSE(IterationSpacesCompatible(a, b));
}

class EncoderFusionTest : public ::testing::Test {
 protected:
  graph::DataflowGraph g_ =
      BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kQKV, true);
  FusionResult r_ = FuseMaximally(g_);

  std::vector<std::string> NonContractionNames() const {
    std::vector<std::string> names;
    for (const auto& k : r_.kernels) {
      if (!k.IsContraction(g_)) names.push_back(k.name);
    }
    return names;
  }
};

TEST_F(EncoderFusionTest, ProducesThePapersFusedKernelSequence) {
  // Sec. IV-A lists exactly these fused element-wise/normalization kernels.
  const std::vector<std::string> expected = {
      "AIB", "SM",    "DRLN", "BRD",  "BDRLN",  // forward
      "BSB", "BLNRD", "BDRB", "EBSB", "BLNRD",  // backward (feed-forward)
      "BAOB", "BS", "BAIB", "BEI"};              // backward (attention)
  EXPECT_EQ(NonContractionNames(), expected);
}

TEST_F(EncoderFusionTest, ContractionsRemainUnfused) {
  int contractions = 0;
  for (const auto& k : r_.kernels) contractions += k.IsContraction(g_);
  EXPECT_EQ(contractions, 18);  // 6 forward + 12 backward GEMM launches
}

TEST_F(EncoderFusionTest, EveryOpAppearsInExactlyOneKernel) {
  std::map<int, int> seen;
  for (const auto& k : r_.kernels) {
    for (int idx : k.op_indices) ++seen[idx];
  }
  EXPECT_EQ(seen.size(), g_.ops().size());
  for (const auto& [idx, count] : seen) {
    EXPECT_EQ(count, 1) << "op " << idx << " fused more than once";
  }
}

TEST_F(EncoderFusionTest, DrlnEliminatesInterimTensors) {
  for (const auto& k : r_.kernels) {
    if (k.name == "DRLN") {
      // attn_biased and attn_dropped never reach memory.
      EXPECT_EQ(k.interim.size(), 2u);
      for (const auto& t : k.interim) {
        EXPECT_TRUE(t == "attn_biased" || t == "attn_dropped") << t;
      }
      return;
    }
  }
  FAIL() << "DRLN kernel not found";
}

TEST_F(EncoderFusionTest, BrdKeepsReluOutputExternal) {
  // relu1 is needed by the backward BDRB kernel, so fusion must not
  // eliminate it even though the next forward op consumes it.
  for (const auto& k : r_.kernels) {
    if (k.name == "BRD") {
      EXPECT_EQ(k.interim, std::vector<std::string>{"lin1_biased"});
      const auto& outs = k.external_outputs;
      EXPECT_NE(std::find(outs.begin(), outs.end(), "relu1"), outs.end());
      return;
    }
  }
  FAIL() << "BRD kernel not found";
}

TEST_F(EncoderFusionTest, BdrbMergesBothGradientStreams) {
  for (const auto& k : r_.kernels) {
    if (k.name == "BDRB") {
      EXPECT_EQ(k.op_indices.size(), 4u);
      // d_relu1 is the only interim (bias grads and d_lin1_biased escape).
      EXPECT_EQ(k.interim, std::vector<std::string>{"d_relu1"});
      EXPECT_EQ(k.reduction_dims, "bj");
      return;
    }
  }
  FAIL() << "BDRB kernel not found";
}

TEST_F(EncoderFusionTest, BaibAndBeiStaySeparate) {
  // The trailing residual (BEI) must not launch-merge into the bias-grad
  // reduction (BAIB): it performs no reduction of its own.
  const auto names = NonContractionNames();
  const auto baib = std::find(names.begin(), names.end(), "BAIB");
  ASSERT_NE(baib, names.end());
  EXPECT_EQ(*(baib + 1), "BEI");
}

TEST_F(EncoderFusionTest, DataMovementReductionNearPaperValue) {
  // Paper (Sec. VI-C): ~22.91% data-movement reduction over the standard
  // implementation. Our accounting reproduces the effect; accept 15-30%.
  const double reduction = r_.DataMovementReduction(g_);
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.30);
}

TEST_F(EncoderFusionTest, FusedNeverMovesMoreThanStandard) {
  EXPECT_LE(r_.FusedElementsMoved(g_), r_.StandardElementsMoved(g_));
}

TEST_F(EncoderFusionTest, TinyDimsGiveSameStructure) {
  // Fusion decisions depend on dimension names, not extents.
  auto tiny = BuildEncoder(ModelDims::Tiny(), AlgebraicFusion::kQKV, true);
  auto r = FuseMaximally(tiny);
  ASSERT_EQ(r.kernels.size(), r_.kernels.size());
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    EXPECT_EQ(r.kernels[i].name, r_.kernels[i].name);
  }
}

TEST(FusionMha, ForwardOnlyGraphFusesBiases) {
  auto g = graph::BuildMhaForward(ModelDims::BertLarge());
  auto r = FuseMaximally(g);
  // bias Q / bias K / bias V are adjacent, space-compatible and share no
  // tensors -- they stay separate kernels (no dataflow link), matching the
  // paper's general-attention MHA where AIB handles the fused-QKV case.
  int bias_kernels = 0;
  for (const auto& k : r.kernels) {
    if (!k.IsContraction(g) && k.op_indices.size() == 1) ++bias_kernels;
  }
  EXPECT_GE(bias_kernels, 4);  // 3 projection biases + softmax + out bias
}

}  // namespace
}  // namespace xflow::fusion
