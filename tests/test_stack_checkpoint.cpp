#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "transformer/arena.hpp"
#include "transformer/checkpoint.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

namespace xflow::transformer {
namespace {

EncoderConfig StackConfig() {
  EncoderConfig cfg;
  cfg.dims = graph::ModelDims::Tiny();
  cfg.dropout_prob = 0.0f;
  return cfg;
}

TEST(EncoderStack, ForwardChainsLayers) {
  EncoderStack stack(StackConfig(), 3, 1);
  auto dims = StackConfig().dims;
  auto x = TensorH::Random(Shape("ibj", {dims.i, dims.b, dims.j}), 2);
  std::vector<EncoderActivations> acts;
  const auto& y = stack.Forward(x, acts);
  ASSERT_EQ(acts.size(), 3u);
  // Each layer's input is the previous layer's output.
  EXPECT_EQ(MaxAbsDiff(acts[1].x, acts[0].y), 0.0);
  EXPECT_EQ(MaxAbsDiff(acts[2].x, acts[1].y), 0.0);
  EXPECT_EQ(MaxAbsDiff(y, acts[2].y), 0.0);
}

TEST(EncoderStack, StackOfOneEqualsSingleLayer) {
  auto cfg = StackConfig();
  EncoderStack stack(cfg, 1, 7);
  auto dims = cfg.dims;
  auto x = TensorH::Random(Shape("ibj", {dims.i, dims.b, dims.j}), 3);
  std::vector<EncoderActivations> acts;
  stack.Forward(x, acts);

  cfg.seed = cfg.seed;  // layer 0 uses the same seed
  EncoderLayer single(cfg, EncoderParams::Init(dims, 7));
  EncoderActivations single_acts;
  single.Forward(x, single_acts);
  EXPECT_EQ(MaxAbsDiff(acts[0].y, single_acts.y), 0.0);
}

TEST(EncoderStack, BackwardReturnsInputGradient) {
  EncoderStack stack(StackConfig(), 2, 11);
  auto dims = StackConfig().dims;
  auto x = TensorH::Random(Shape("ibj", {dims.i, dims.b, dims.j}), 5);
  std::vector<EncoderActivations> acts;
  stack.Forward(x, acts);
  auto d_y = TensorH::Random(acts.back().y.shape(), 6);
  std::vector<EncoderGradients> grads;
  auto d_x = stack.Backward(d_y, acts, grads);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_EQ(d_x.shape().names(), "ibj");
  EXPECT_EQ(MaxAbsDiff(d_x, grads[0].d_x), 0.0);
  // Layer 1's input gradient feeds layer 0's backward.
  EXPECT_GT(MaxAbsDiff(grads[1].d_x, d_y), 0.0);
}

TEST(EncoderStack, NamedParamsArePrefixedAndComplete) {
  EncoderStack stack(StackConfig(), 2, 13);
  const auto named = stack.NamedParams();
  EXPECT_EQ(named.size(), 2u * 12u);  // 12 parameters per layer
  EXPECT_EQ(named.front().first, "layer0.w_qkv");
  EXPECT_EQ(named.back().first, "layer1.ln2_b");
}

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = "/tmp/xflow_ckpt_test.bin";
};

TEST_F(CheckpointTest, RoundTripsBitExactly) {
  auto a = TensorH::Random(Shape("phi", {4, 2, 8}), 1);
  auto b = TensorH::Random(Shape("i", {8}), 2);
  SaveCheckpoint(path_, {{"a", &a}, {"b", &b}});

  TensorH a2(Shape("phi", {4, 2, 8})), b2(Shape("i", {8}));
  LoadCheckpoint(path_, {{"a", &a2}, {"b", &b2}});
  for (std::int64_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a.data()[e].bits(), a2.data()[e].bits());
  }
  EXPECT_EQ(MaxAbsDiff(b, b2), 0.0);
}

TEST_F(CheckpointTest, LoadIsOrderInsensitive) {
  auto a = TensorH::Random(Shape("x", {4}), 3);
  auto b = TensorH::Random(Shape("y", {5}), 4);
  SaveCheckpoint(path_, {{"a", &a}, {"b", &b}});
  TensorH a2(Shape("x", {4})), b2(Shape("y", {5}));
  LoadCheckpoint(path_, {{"b", &b2}, {"a", &a2}});  // reversed order
  EXPECT_EQ(MaxAbsDiff(a, a2), 0.0);
  EXPECT_EQ(MaxAbsDiff(b, b2), 0.0);
}

TEST_F(CheckpointTest, MissingTensorAndShapeMismatchThrow) {
  auto a = TensorH::Random(Shape("x", {4}), 5);
  SaveCheckpoint(path_, {{"a", &a}});
  TensorH wrong_shape(Shape("x", {5}));
  EXPECT_THROW(LoadCheckpoint(path_, {{"a", &wrong_shape}}),
               InvalidArgument);
  TensorH missing(Shape("x", {4}));
  EXPECT_THROW(LoadCheckpoint(path_, {{"nope", &missing}}),
               InvalidArgument);
}

TEST_F(CheckpointTest, RejectsGarbageFiles) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  TensorH t(Shape("x", {4}));
  EXPECT_THROW(LoadCheckpoint(path_, {{"a", &t}}), InvalidArgument);
}

TEST_F(CheckpointTest, InspectListsContents) {
  auto a = TensorH::Random(Shape("phi", {4, 2, 8}), 6);
  SaveCheckpoint(path_, {{"weights", &a}});
  const auto listing = InspectCheckpoint(path_);
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].first, "weights");
  EXPECT_EQ(listing[0].second.names(), "phi");
  EXPECT_EQ(listing[0].second.extent('i'), 8);
}

TEST_F(CheckpointTest, FullStackRoundTrip) {
  EncoderStack stack(StackConfig(), 2, 17);
  std::vector<std::pair<std::string, const TensorH*>> to_save;
  for (auto& [name, t] : stack.NamedParams()) to_save.emplace_back(name, t);
  SaveCheckpoint(path_, to_save);

  EncoderStack restored(StackConfig(), 2, 99);  // different init
  LoadCheckpoint(path_, restored.NamedParams());

  auto dims = StackConfig().dims;
  auto x = TensorH::Random(Shape("ibj", {dims.i, dims.b, dims.j}), 18);
  std::vector<EncoderActivations> a1, a2;
  stack.Forward(x, a1);
  restored.Forward(x, a2);
  EXPECT_EQ(MaxAbsDiff(a1.back().y, a2.back().y), 0.0);
}

// ---- Checkpoint-aware whole-stack training -------------------------------

/// Four mixed-precision Adam steps through the whole-stack executor over
/// `arena`; returns the final fp16 weights, flattened in layer/param
/// order. Fixed seeds everywhere, so two arenas that plan the same math
/// (stored vs recomputed activations) must land on identical weights.
std::vector<TensorH> TrainedParams(const EncoderConfig& cfg, int layers,
                                   StackArenaT<Half>& arena) {
  EncoderStack stack(cfg, layers, 91);
  const auto& d = cfg.dims;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const auto x = TensorH::Random(ibj, 13);
  const auto target = TensorH::Random(ibj, 14);
  std::vector<std::map<std::string, TensorF>> masters(
      static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (auto& [name, t] : stack.layer(l).params().Named()) {
      masters[static_cast<std::size_t>(l)].emplace(name, t->Cast<float>());
    }
  }
  MixedPrecisionAdam opt({.lr = 5e-3f});
  TensorH d_y(ibj);
  std::vector<EncoderGradients> grads;
  for (int step = 0; step < 4; ++step) {
    const auto& y = stack.Forward(x, arena);
    MseLoss(y, target, d_y);
    stack.Backward(d_y, arena, grads);
    for (int l = 0; l < layers; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      auto named_params = stack.layer(l).params().Named();
      auto named_grads = grads[lu].params.Named();
      for (std::size_t p = 0; p < named_params.size(); ++p) {
        opt.Step(StrFormat("L%d.%s", l, named_params[p].first.c_str()),
                 masters[lu].at(named_params[p].first),
                 *named_params[p].second, *named_grads[p].second);
      }
    }
  }
  std::vector<TensorH> out;
  for (int l = 0; l < layers; ++l) {
    for (auto& [name, t] : stack.layer(l).params().Named()) {
      out.push_back(*t);
    }
  }
  return out;
}

TEST(StackCheckpoint, RecomputeTrainsBitwiseIdenticalToStore) {
  // Recompute-in-backward vs store-until-backward is a pure memory
  // tradeoff: over forward + backward + four Adam steps the weights must
  // stay bitwise equal, at every thread count (the recompute clones reuse
  // the originals' dropout seeds and the plan keeps every still-needed
  // tensor apart).
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool::SetGlobalThreads(threads);
    EncoderConfig cfg = StackConfig();
    cfg.dropout_prob = 0.1f;
    cfg.use_fused_kernels = true;
    cfg.use_task_scheduler = true;
    auto stored = MakeStackArena<Half>(cfg, {.num_layers = 3});
    const auto want = TrainedParams(cfg, 3, stored);
    auto recomputed = MakeStackArena<Half>(
        cfg, {.num_layers = 3, .recompute_layers = {0, 1}});
    const auto got = TrainedParams(cfg, 3, recomputed);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(MaxAbsDiff(got[i], want[i]), 0.0) << "param " << i;
    }
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
}

TEST(StackCheckpoint, ShrinkingBudgetNeverRaisesPlannedPeak) {
  // The budget knob is monotone: asking for less memory never produces a
  // plan that needs more. At an impossible budget the planner commits to
  // maximal recomputation and reports the roofline-costed overhead.
  const auto dims = graph::ModelDims::Tiny();
  const graph::StackGraphOptions base{.num_layers = 4};
  const auto options_for = [](const graph::DataflowGraph& g) {
    return StackPlanOptions<Half>(g);
  };
  const auto stack_graph = graph::BuildEncoderStack(dims, base);
  const auto full = graph::PlanMemory(stack_graph, options_for(stack_graph));
  const std::size_t full_peak = full.PeakBytes();
  std::size_t prev = std::numeric_limits<std::size_t>::max();
  for (const std::size_t budget :
       std::vector<std::size_t>{full_peak, full_peak * 3 / 4, full_peak / 2,
                                full_peak / 4, 1}) {
    const auto ckpt =
        graph::PlanCheckpointedStack(dims, base, options_for, budget);
    EXPECT_LE(ckpt.plan.PeakBytes(), prev) << "budget " << budget;
    EXPECT_LE(ckpt.plan.PeakBytes(), full_peak) << "budget " << budget;
    prev = ckpt.plan.PeakBytes();
  }
  const auto maximal = graph::PlanCheckpointedStack(dims, base, options_for, 1);
  EXPECT_FALSE(maximal.recompute_layers.empty());
  EXPECT_FALSE(maximal.decisions.empty());
  EXPECT_GT(maximal.recompute_seconds, 0.0);
}

}  // namespace
}  // namespace xflow::transformer
