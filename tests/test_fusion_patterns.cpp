#include "fusion/patterns.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace xflow::fusion {
namespace {

using graph::AlgebraicFusion;
using graph::BuildEncoder;
using graph::ModelDims;

class PatternTest : public ::testing::Test {
 protected:
  PatternTest()
      : g_(BuildEncoder(ModelDims::BertLarge(), AlgebraicFusion::kQKV, true)),
        fused_(FuseMaximally(g_)) {}

  const FusedKernel& Kernel(const std::string& name) const {
    for (const auto& k : fused_.kernels) {
      if (k.name == name) return k;
    }
    throw std::runtime_error("kernel not found: " + name);
  }

  graph::DataflowGraph g_;
  FusionResult fused_;
};

TEST_F(PatternTest, DrlnChainsMapsIntoAReduction) {
  // bias -> dropout -> residual -> layernorm: two map-map edges, then a
  // map-reduce edge (Fig. 3's patterns 1 and 2).
  const auto patterns = KernelPatterns(g_, Kernel("DRLN"));
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].pattern, FusionPattern::kMapMap);
  EXPECT_EQ(patterns[1].pattern, FusionPattern::kMapMap);
  EXPECT_EQ(patterns[2].pattern, FusionPattern::kMapReduce);
  EXPECT_EQ(patterns[2].consumer, "layernorm 1");
}

TEST_F(PatternTest, BlnrdIsReduceThenMap) {
  // layernorm dX (reduction) feeding dropout dX (map): pattern 3.
  const auto patterns = KernelPatterns(g_, Kernel("BLNRD"));
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].pattern, FusionPattern::kReduceMap);
}

TEST_F(PatternTest, BdrbLeadsWithASiblingMerge) {
  // bias2 dW shares no tensor with the dropout-dX chain that follows: the
  // launch-merge is pattern 4; the chain inside ends in a map-reduce.
  const auto patterns = KernelPatterns(g_, Kernel("BDRB"));
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].pattern, FusionPattern::kSibling);
  EXPECT_EQ(patterns[1].pattern, FusionPattern::kMapMap);
  EXPECT_EQ(patterns[2].pattern, FusionPattern::kMapReduce);
}

TEST_F(PatternTest, EbsbMergesResidualIntoReduction) {
  const auto patterns = KernelPatterns(g_, Kernel("EBSB"));
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].pattern, FusionPattern::kMapReduce);
  EXPECT_EQ(patterns[0].producer, "residual 2 bwd");
}

TEST_F(PatternTest, SingleOpKernelsHaveNoPairs) {
  for (const char* name : {"SM", "BS", "BAOB", "BAIB", "BEI", "BSB"}) {
    EXPECT_TRUE(KernelPatterns(g_, Kernel(name)).empty()) << name;
  }
}

TEST_F(PatternTest, CensusCoversAllFourPatterns) {
  const auto census = PatternCensus(g_, fused_);
  int total = 0;
  for (const auto& [pattern, count] : census) {
    EXPECT_GT(count, 0) << ToString(pattern);
    total += count;
  }
  // 14 fused kernels contribute |ops|-1 edges each:
  // DRLN 3 + BRD 2 + BDRLN 3 + BLNRD 1 + BDRB 3 + EBSB 1 + BLNRD 1 = 14.
  EXPECT_EQ(total, 14);
}

}  // namespace
}  // namespace xflow::fusion
