#include "tensor/einsum.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/memstats.hpp"

namespace xflow {
namespace {

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { ThreadPool::SetGlobalThreads(threads); }
  ~ThreadGuard() {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

TEST(EinsumSpec, ParsesAndClassifiesMhaProjection) {
  // Input projection from the paper's MHA code: wq[phi] * q[ibj] -> [phbj].
  auto s = EinsumSpec::Parse("phi,ibj->phbj");
  EXPECT_EQ(s.m_dims, "ph");
  EXPECT_EQ(s.n_dims, "bj");
  EXPECT_EQ(s.k_dims, "i");
  EXPECT_EQ(s.batch_dims, "");
}

TEST(EinsumSpec, ParsesBatchedAttentionScore) {
  // beta = kk[phbk] * qq[phbj] -> [hbjk]: batched over h,b; contracts p.
  auto s = EinsumSpec::Parse("phbk,phbj->hbjk");
  EXPECT_EQ(s.batch_dims, "hb");
  EXPECT_EQ(s.m_dims, "k");
  EXPECT_EQ(s.n_dims, "j");
  EXPECT_EQ(s.k_dims, "p");
}

TEST(EinsumSpec, ParsesOutputProjection) {
  auto s = EinsumSpec::Parse("whi,whbj->ibj");
  EXPECT_EQ(s.m_dims, "i");
  EXPECT_EQ(s.n_dims, "bj");
  EXPECT_EQ(s.k_dims, "wh");
}

TEST(EinsumSpec, RejectsMalformed) {
  EXPECT_THROW(EinsumSpec::Parse("abc"), InvalidArgument);
  EXPECT_THROW(EinsumSpec::Parse("ab,bc"), InvalidArgument);
  // 'x' appears only in one input and not the output:
  EXPECT_THROW(EinsumSpec::Parse("ax,ab->b"), InvalidArgument);
}

TEST(EinsumSpec, FlopCountMatchesPaperQkv) {
  // Q/K/V fused projection at paper dims: 2 * (3*64*16) * 1024 * (8*512)
  // = 24 "Gflop" in the paper's 2^30 convention (Table III row 1).
  auto s = EinsumSpec::Parse("phi,ibj->phbj");
  Shape w("phi", {192, 16, 1024});
  Shape x("ibj", {1024, 8, 512});
  const double gflop =
      static_cast<double>(s.FlopCount(w, x)) / (1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(gflop, 24.0, 1e-9);
}

TEST(Einsum, MatchesReferenceMatmul) {
  auto a = TensorF::Random(Shape("mk", {17, 23}), 1);
  auto b = TensorF::Random(Shape("kn", {23, 9}), 2);
  auto fast = Einsum<float>("mk,kn->mn", a, b);
  auto ref = EinsumRef<float>("mk,kn->mn", a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-5);
}

TEST(Einsum, HandlesTransposedOperandLayouts) {
  auto a = TensorF::Random(Shape("mk", {17, 23}), 1).Permuted("km");
  auto b = TensorF::Random(Shape("kn", {23, 9}), 2).Permuted("nk");
  auto fast = Einsum<float>("mk,kn->mn", a, b);
  auto ref = EinsumRef<float>("mk,kn->mn", a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-5);
}

TEST(Einsum, AlphaScalesResult) {
  auto a = TensorF::Random(Shape("mk", {5, 7}), 3);
  auto b = TensorF::Random(Shape("kn", {7, 4}), 4);
  auto one = Einsum<float>("mk,kn->mn", a, b, 1.0f);
  auto eight = Einsum<float>("mk,kn->mn", a, b, 0.125f);
  for (std::int64_t i = 0; i < one.size(); ++i) {
    EXPECT_NEAR(one.data()[i] * 0.125f, eight.data()[i], 1e-6);
  }
}

TEST(Einsum, BetaAccumulatesIntoOutput) {
  auto a = TensorF::Random(Shape("mk", {5, 7}), 3);
  auto b = TensorF::Random(Shape("kn", {7, 4}), 4);
  auto c = Einsum<float>("mk,kn->mn", a, b);
  auto acc = TensorF::Full(Shape("mn", {5, 4}), 1.0f);
  EinsumInto<float>(EinsumSpec::Parse("mk,kn->mn"), a, b, acc, 1.0f, 1.0f);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(acc.data()[i], c.data()[i] + 1.0f, 1e-5);
  }
}

TEST(Einsum, HalfInputsAccumulateInFp32) {
  // Sum of 4096 values of 0.01: fp16 accumulation would stall at ~0.25
  // increments; fp32 accumulation keeps full precision until final rounding.
  auto a = Tensor<Half>::Full(Shape("mk", {1, 4096}), 0.01f);
  auto b = Tensor<Half>::Full(Shape("kn", {4096, 1}), 1.0f);
  auto c = Einsum<Half>("mk,kn->mn", a, b);
  const float expected = 4096.0f * float(Half(0.01f));
  EXPECT_NEAR(float(c.data()[0]), expected, expected * 1e-3);
}

// Property-style sweep: fast path equals reference on every MHA contraction
// at reduced dimensions, in every operand memory layout combination tested.
class EinsumContractionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(EinsumContractionSweep, FastPathMatchesReference) {
  const auto& [spec_str, layout_kind] = GetParam();
  auto spec = EinsumSpec::Parse(spec_str);

  // Reduced paper dimensions.
  auto extent = [](char d) -> std::int64_t {
    switch (d) {
      case 'p': case 'w': return 8;
      case 'h': return 3;
      case 'i': return 24;
      case 'b': return 2;
      case 'j': case 'k': return 10;
      case 'u': return 16;
      default: return 4;
    }
  };
  auto make = [&](const std::string& dims, std::uint64_t seed) {
    std::vector<DimExt> de;
    for (char d : dims) de.push_back({d, extent(d)});
    auto t = TensorH::Random(Shape(de), seed);
    if (layout_kind == "reversed") {
      std::string rev(dims.rbegin(), dims.rend());
      return t.Permuted(rev);
    }
    return t;
  };

  auto a = make(spec.a, 11);
  auto b = make(spec.b, 22);
  auto fast = Einsum<Half>(spec, a, b);
  auto ref = EinsumRef<Half>(spec, a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 0.01) << spec_str << " " << layout_kind;
}

INSTANTIATE_TEST_SUITE_P(
    AllMhaContractions, EinsumContractionSweep,
    ::testing::Combine(
        ::testing::Values("phi,ibj->phbj",    // Q/K/V projection
                          "phbk,phbj->hbjk",  // QK^T
                          "whbk,hbjk->whbj",  // gamma
                          "whi,whbj->ibj",    // output projection
                          "ui,ibj->ubj",      // linear1
                          "iu,ubj->ibj"),     // linear2
        ::testing::Values("natural", "reversed")));

// ---------------------------------------------------------------------
// Lowering classification (tensor/einsum_class.hpp).

TEST(EinsumClassify, CoversTheTaxonomy) {
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 8, .k = 8, .batch = 1}),
            EinsumClass::kGemm);
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 8, .k = 8, .batch = 3}),
            EinsumClass::kBatchedGemm);
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 1, .k = 8, .batch = 1}),
            EinsumClass::kGemv);
  EXPECT_EQ(ClassifyContraction({.m = 1, .n = 8, .k = 8, .batch = 1}),
            EinsumClass::kGemv);
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 8, .k = 1, .batch = 1}),
            EinsumClass::kGer);
  EXPECT_EQ(ClassifyContraction({.m = 1, .n = 1, .k = 8, .batch = 1}),
            EinsumClass::kReduction);
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 1, .k = 1, .batch = 1}),
            EinsumClass::kView);
  EXPECT_EQ(ClassifyContraction({.m = 1, .n = 8, .k = 1, .batch = 1}),
            EinsumClass::kView);
  EXPECT_EQ(ClassifyContraction({.m = 1, .n = 1, .k = 1, .batch = 1}),
            EinsumClass::kView);
  // The batch loop wraps any class: a batched gemv is still a gemv.
  EXPECT_EQ(ClassifyContraction({.m = 8, .n = 1, .k = 8, .batch = 4}),
            EinsumClass::kGemv);
}

TEST(EinsumClassify, DerivesFromSpecAndShapes) {
  auto spec = EinsumSpec::Parse("phbk,phbj->hbjk");
  Shape k("phbk", {8, 3, 2, 10});
  Shape q("phbj", {8, 3, 2, 10});
  const auto& info = ClassifyEinsum(spec, k, q);
  EXPECT_EQ(info.cls, EinsumClass::kBatchedGemm);
  EXPECT_EQ(info.extents.batch, 6);
  EXPECT_EQ(info.extents.m, 10);
  EXPECT_EQ(info.extents.n, 10);
  EXPECT_EQ(info.extents.k, 8);
  // Degenerate named extents classify by extent, not by rank: an n-group
  // of extent 1 is a gemv even though the spec has an n dim.
  auto mk = EinsumSpec::Parse("mk,kn->mn");
  EXPECT_EQ(ClassifyEinsum(mk, Shape("mk", {9, 17}), Shape("kn", {17, 1})).cls,
            EinsumClass::kGemv);
}

TEST(EinsumClassify, CacheRebuildsNothingOnRepeatLookups) {
  auto spec = EinsumSpec::Parse("ui,ibj->ubj");
  Shape w("ui", {12, 24});
  Shape x("ibj", {24, 2, 5});
  (void)ClassifyEinsum(spec, w, x);  // may or may not be the first build
  const auto before = memstats::Read();
  const auto& again = ClassifyEinsum(spec, w, x);
  const auto after = memstats::Read();
  EXPECT_EQ(after.einsum_class_builds, before.einsum_class_builds);
  EXPECT_EQ(again.cls, EinsumClass::kGemm);
}

TEST(EinsumErrors, NameTheSpecAndShapes) {
  try {
    EinsumSpec::Parse("ax,ab->b");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("ax,ab->b"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos)
        << e.what();
  }
  auto spec = EinsumSpec::Parse("mk,kn->mn");
  try {
    ContractionExtents(spec, Shape("mx", {4, 5}), Shape("kn", {5, 6}));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mk,kn->mn"), std::string::npos) << what;
    EXPECT_NE(what.find("[m:4,x:5]"), std::string::npos) << what;
    EXPECT_NE(what.find("[k:5,n:6]"), std::string::npos) << what;
  }
  auto a = TensorF::Random(Shape("mk", {3, 4}), 1);
  auto b = TensorF::Random(Shape("kn", {5, 2}), 2);  // k mismatch: 4 vs 5
  auto out = TensorF{Shape("mn", {3, 2})};
  try {
    EinsumInto<float>(spec, a, b, out);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mk,kn->mn"), std::string::npos) << what;
    EXPECT_NE(what.find("'k'"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------
// Bitwise identity: every specialized class equals the generic
// macro-tile pipeline (forced via EinsumClass::kGemm), at 1/2/8 threads,
// for Half and float, in natural and reversed (strided-view) layouts.

template <typename T>
void ExpectClassBitwiseEqual(const std::string& spec_str,
                             const std::map<char, std::int64_t>& extent,
                             EinsumClass want, bool reversed) {
  auto spec = EinsumSpec::Parse(spec_str);
  auto make = [&](const std::string& dims, std::uint64_t seed) {
    std::vector<DimExt> de;
    for (char d : dims) de.push_back({d, extent.at(d)});
    auto t = Tensor<T>::Random(Shape(de), seed);
    if (reversed && dims.size() > 1) {
      return t.Permuted(std::string(dims.rbegin(), dims.rend()));
    }
    return t;
  };
  auto a = make(spec.a, 7);
  auto b = make(spec.b, 9);
  ASSERT_EQ(ClassifyEinsum(spec, a.shape(), b.shape()).cls, want) << spec_str;

  std::vector<DimExt> out_dims;
  for (char d : spec.out) out_dims.push_back({d, extent.at(d)});
  const Shape out_shape{out_dims};

  Tensor<T> baseline{out_shape};
  {
    ThreadGuard guard(1);
    EinsumLowered(spec, EinsumClass::kGemm, a, b, baseline);
  }
  // Exec-config overrides are numerics-free by contract, so sweep a few.
  const EinsumExecConfig tile16{.batch_parallel = 0, .row_grain = 16};
  const EinsumExecConfig batch3{.batch_parallel = 1, .row_grain = 3};
  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    for (const EinsumExecConfig* exec :
         {static_cast<const EinsumExecConfig*>(nullptr), &tile16, &batch3}) {
      for (EinsumClass cls : {want, EinsumClass::kGemm}) {
        Tensor<T> out{out_shape};
        EinsumLowered(spec, cls, a, b, out, 1.0f, 0.0f, exec);
        ASSERT_EQ(out.size(), baseline.size());
        EXPECT_EQ(std::memcmp(out.data(), baseline.data(),
                              sizeof(T) * static_cast<std::size_t>(out.size())),
                  0)
            << spec_str << " cls=" << ToString(cls) << " threads=" << threads
            << (reversed ? " reversed" : " natural");
      }
    }
  }
}

template <typename T>
void SweepClassesBitwise(bool reversed) {
  // gemv, n side degenerate two ways: no n dims at all, and n extent 1.
  ExpectClassBitwiseEqual<T>("mk,k->m", {{'m', 70}, {'k', 33}},
                             EinsumClass::kGemv, reversed);
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 70}, {'k', 33}, {'n', 1}},
                             EinsumClass::kGemv, reversed);
  // gemv, m side degenerate.
  ExpectClassBitwiseEqual<T>("k,kn->n", {{'k', 33}, {'n', 70}},
                             EinsumClass::kGemv, reversed);
  // Batched gemv (empty batch covered by every spec above).
  ExpectClassBitwiseEqual<T>("bmk,bk->bm", {{'b', 5}, {'m', 40}, {'k', 17}},
                             EinsumClass::kGemv, reversed);
  // ger / outer product (k == 1 two ways).
  ExpectClassBitwiseEqual<T>("m,n->mn", {{'m', 40}, {'n', 23}},
                             EinsumClass::kGer, reversed);
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 40}, {'k', 1}, {'n', 23}},
                             EinsumClass::kGer, reversed);
  // Pure reduction (m == n == 1) and its batched form.
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 1}, {'k', 501}, {'n', 1}},
                             EinsumClass::kReduction, reversed);
  ExpectClassBitwiseEqual<T>("bk,bk->b", {{'b', 6}, {'k', 91}},
                             EinsumClass::kReduction, reversed);
  // Transpose-free view (k == 1 and one free side), both orientations
  // plus the fully-degenerate single element.
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 120}, {'k', 1}, {'n', 1}},
                             EinsumClass::kView, reversed);
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 1}, {'k', 1}, {'n', 120}},
                             EinsumClass::kView, reversed);
  ExpectClassBitwiseEqual<T>("mk,kn->mn", {{'m', 1}, {'k', 1}, {'n', 1}},
                             EinsumClass::kView, reversed);
}

TEST(EinsumLoweredBitwise, FloatNaturalLayouts) {
  SweepClassesBitwise<float>(false);
}
TEST(EinsumLoweredBitwise, FloatReversedLayouts) {
  SweepClassesBitwise<float>(true);
}
TEST(EinsumLoweredBitwise, HalfNaturalLayouts) {
  SweepClassesBitwise<Half>(false);
}
TEST(EinsumLoweredBitwise, HalfReversedLayouts) {
  SweepClassesBitwise<Half>(true);
}

// The branch-free converter the specialized kernels store Half results
// through must match Half::FromFloat bit for bit, or "lowered equals
// generic" silently breaks on edge values random sweeps rarely hit. The
// full 2^32 sweep runs out-of-band; here: every exact half value, the
// exhaustive float bands around every behavior boundary (normal edge,
// subnormal edge, overflow, Inf/NaN), and a wide deterministic sample.
TEST(LoweredHalfBits, MatchesHalfFromFloatEverywhere) {
  const auto check = [](std::uint32_t u) {
    const float f = std::bit_cast<float>(u);
    ASSERT_EQ(LoweredHalfBits(f), Half::FromFloat(f))
        << "float bits 0x" << std::hex << u;
  };
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    check(std::bit_cast<std::uint32_t>(
        float(Half::FromBits(static_cast<std::uint16_t>(h)))));
  }
  constexpr std::uint32_t kHalfBand = 1u << 14;
  for (const std::uint32_t edge :
       {0x3880'0000u,    // smallest normal half (2^-14)
        0x3300'0000u,    // half-subnormal underflow boundary (2^-25)
        0x477F'E000u,    // largest finite half (65504.0f)
        0x7F80'0000u}) {  // Inf / NaN
    for (std::uint32_t u = edge - kHalfBand; u <= edge + kHalfBand; ++u) {
      check(u);
      check(u | 0x8000'0000u);
    }
  }
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 1'000'000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    check(static_cast<std::uint32_t>(lcg >> 32));
  }
}

TEST(EinsumLowered, RejectsAMismatchedSpecializedClass) {
  auto spec = EinsumSpec::Parse("mk,kn->mn");
  auto a = TensorF::Random(Shape("mk", {8, 8}), 1);
  auto b = TensorF::Random(Shape("kn", {8, 8}), 2);
  auto out = TensorF{Shape("mn", {8, 8})};
  EXPECT_THROW(EinsumLowered(spec, EinsumClass::kGemv, a, b, out),
               InvalidArgument);
}

}  // namespace
}  // namespace xflow
