#include "tensor/einsum.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/error.hpp"

namespace xflow {
namespace {

TEST(EinsumSpec, ParsesAndClassifiesMhaProjection) {
  // Input projection from the paper's MHA code: wq[phi] * q[ibj] -> [phbj].
  auto s = EinsumSpec::Parse("phi,ibj->phbj");
  EXPECT_EQ(s.m_dims, "ph");
  EXPECT_EQ(s.n_dims, "bj");
  EXPECT_EQ(s.k_dims, "i");
  EXPECT_EQ(s.batch_dims, "");
}

TEST(EinsumSpec, ParsesBatchedAttentionScore) {
  // beta = kk[phbk] * qq[phbj] -> [hbjk]: batched over h,b; contracts p.
  auto s = EinsumSpec::Parse("phbk,phbj->hbjk");
  EXPECT_EQ(s.batch_dims, "hb");
  EXPECT_EQ(s.m_dims, "k");
  EXPECT_EQ(s.n_dims, "j");
  EXPECT_EQ(s.k_dims, "p");
}

TEST(EinsumSpec, ParsesOutputProjection) {
  auto s = EinsumSpec::Parse("whi,whbj->ibj");
  EXPECT_EQ(s.m_dims, "i");
  EXPECT_EQ(s.n_dims, "bj");
  EXPECT_EQ(s.k_dims, "wh");
}

TEST(EinsumSpec, RejectsMalformed) {
  EXPECT_THROW(EinsumSpec::Parse("abc"), InvalidArgument);
  EXPECT_THROW(EinsumSpec::Parse("ab,bc"), InvalidArgument);
  // 'x' appears only in one input and not the output:
  EXPECT_THROW(EinsumSpec::Parse("ax,ab->b"), InvalidArgument);
}

TEST(EinsumSpec, FlopCountMatchesPaperQkv) {
  // Q/K/V fused projection at paper dims: 2 * (3*64*16) * 1024 * (8*512)
  // = 24 "Gflop" in the paper's 2^30 convention (Table III row 1).
  auto s = EinsumSpec::Parse("phi,ibj->phbj");
  Shape w("phi", {192, 16, 1024});
  Shape x("ibj", {1024, 8, 512});
  const double gflop =
      static_cast<double>(s.FlopCount(w, x)) / (1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(gflop, 24.0, 1e-9);
}

TEST(Einsum, MatchesReferenceMatmul) {
  auto a = TensorF::Random(Shape("mk", {17, 23}), 1);
  auto b = TensorF::Random(Shape("kn", {23, 9}), 2);
  auto fast = Einsum<float>("mk,kn->mn", a, b);
  auto ref = EinsumRef<float>("mk,kn->mn", a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-5);
}

TEST(Einsum, HandlesTransposedOperandLayouts) {
  auto a = TensorF::Random(Shape("mk", {17, 23}), 1).Permuted("km");
  auto b = TensorF::Random(Shape("kn", {23, 9}), 2).Permuted("nk");
  auto fast = Einsum<float>("mk,kn->mn", a, b);
  auto ref = EinsumRef<float>("mk,kn->mn", a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-5);
}

TEST(Einsum, AlphaScalesResult) {
  auto a = TensorF::Random(Shape("mk", {5, 7}), 3);
  auto b = TensorF::Random(Shape("kn", {7, 4}), 4);
  auto one = Einsum<float>("mk,kn->mn", a, b, 1.0f);
  auto eight = Einsum<float>("mk,kn->mn", a, b, 0.125f);
  for (std::int64_t i = 0; i < one.size(); ++i) {
    EXPECT_NEAR(one.data()[i] * 0.125f, eight.data()[i], 1e-6);
  }
}

TEST(Einsum, BetaAccumulatesIntoOutput) {
  auto a = TensorF::Random(Shape("mk", {5, 7}), 3);
  auto b = TensorF::Random(Shape("kn", {7, 4}), 4);
  auto c = Einsum<float>("mk,kn->mn", a, b);
  auto acc = TensorF::Full(Shape("mn", {5, 4}), 1.0f);
  EinsumInto<float>(EinsumSpec::Parse("mk,kn->mn"), a, b, acc, 1.0f, 1.0f);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(acc.data()[i], c.data()[i] + 1.0f, 1e-5);
  }
}

TEST(Einsum, HalfInputsAccumulateInFp32) {
  // Sum of 4096 values of 0.01: fp16 accumulation would stall at ~0.25
  // increments; fp32 accumulation keeps full precision until final rounding.
  auto a = Tensor<Half>::Full(Shape("mk", {1, 4096}), 0.01f);
  auto b = Tensor<Half>::Full(Shape("kn", {4096, 1}), 1.0f);
  auto c = Einsum<Half>("mk,kn->mn", a, b);
  const float expected = 4096.0f * float(Half(0.01f));
  EXPECT_NEAR(float(c.data()[0]), expected, expected * 1e-3);
}

// Property-style sweep: fast path equals reference on every MHA contraction
// at reduced dimensions, in every operand memory layout combination tested.
class EinsumContractionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(EinsumContractionSweep, FastPathMatchesReference) {
  const auto& [spec_str, layout_kind] = GetParam();
  auto spec = EinsumSpec::Parse(spec_str);

  // Reduced paper dimensions.
  auto extent = [](char d) -> std::int64_t {
    switch (d) {
      case 'p': case 'w': return 8;
      case 'h': return 3;
      case 'i': return 24;
      case 'b': return 2;
      case 'j': case 'k': return 10;
      case 'u': return 16;
      default: return 4;
    }
  };
  auto make = [&](const std::string& dims, std::uint64_t seed) {
    std::vector<DimExt> de;
    for (char d : dims) de.push_back({d, extent(d)});
    auto t = TensorH::Random(Shape(de), seed);
    if (layout_kind == "reversed") {
      std::string rev(dims.rbegin(), dims.rend());
      return t.Permuted(rev);
    }
    return t;
  };

  auto a = make(spec.a, 11);
  auto b = make(spec.b, 22);
  auto fast = Einsum<Half>(spec, a, b);
  auto ref = EinsumRef<Half>(spec, a, b);
  EXPECT_LT(MaxAbsDiff(fast, ref), 0.01) << spec_str << " " << layout_kind;
}

INSTANTIATE_TEST_SUITE_P(
    AllMhaContractions, EinsumContractionSweep,
    ::testing::Combine(
        ::testing::Values("phi,ibj->phbj",    // Q/K/V projection
                          "phbk,phbj->hbjk",  // QK^T
                          "whbk,hbjk->whbj",  // gamma
                          "whi,whbj->ibj",    // output projection
                          "ui,ibj->ubj",      // linear1
                          "iu,ubj->ibj"),     // linear2
        ::testing::Values("natural", "reversed")));

}  // namespace
}  // namespace xflow
