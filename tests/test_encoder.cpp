#include "transformer/encoder.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace xflow::transformer {
namespace {

using graph::ModelDims;

EncoderConfig TinyConfig(bool fused, float dropout = 0.1f) {
  EncoderConfig c;
  c.dims = ModelDims::Tiny();
  c.dropout_prob = dropout;
  c.seed = 7;
  c.use_fused_kernels = fused;
  return c;
}

TensorH TinyInput(const ModelDims& d, std::uint64_t seed) {
  return TensorH::Random(Shape("ibj", {d.i, d.b, d.j}), seed);
}

TEST(Encoder, ForwardProducesLayerNormalizedOutput) {
  auto cfg = TinyConfig(true, 0.0f);
  EncoderLayer layer(cfg, EncoderParams::Init(cfg.dims, 3));
  EncoderActivations acts;
  auto x = TinyInput(cfg.dims, 5);
  const auto& y = layer.Forward(x, acts);
  // Per (b, j) column: mean ~ 0, variance ~ 1 (final layernorm, scale=1).
  for (std::int64_t b = 0; b < cfg.dims.b; ++b) {
    for (std::int64_t j = 0; j < cfg.dims.j; ++j) {
      float sum = 0, sq = 0;
      for (std::int64_t i = 0; i < cfg.dims.i; ++i) {
        const float v = float(y.at({{'i', i}, {'b', b}, {'j', j}}));
        sum += v;
        sq += v * v;
      }
      const float n = static_cast<float>(cfg.dims.i);
      EXPECT_NEAR(sum / n, 0.0f, 0.01f);
      EXPECT_NEAR(sq / n, 1.0f, 0.05f);
    }
  }
}

TEST(Encoder, FusedAndUnfusedForwardAreBitIdentical) {
  auto params = EncoderParams::Init(ModelDims::Tiny(), 11);
  EncoderLayer fused(TinyConfig(true), params);
  EncoderLayer unfused(TinyConfig(false), params);
  auto x = TinyInput(ModelDims::Tiny(), 13);
  EncoderActivations a_f, a_u;
  fused.Forward(x, a_f);
  unfused.Forward(x, a_u);
  EXPECT_EQ(MaxAbsDiff(a_f.y, a_u.y), 0.0);
  EXPECT_EQ(MaxAbsDiff(a_f.resid1, a_u.resid1), 0.0);
  EXPECT_EQ(MaxAbsDiff(a_f.ff_dropped, a_u.ff_dropped), 0.0);
  EXPECT_EQ(MaxAbsDiff(a_f.alpha, a_u.alpha), 0.0);
}

TEST(Encoder, FusedAndUnfusedBackwardAreBitIdentical) {
  auto params = EncoderParams::Init(ModelDims::Tiny(), 17);
  EncoderLayer fused(TinyConfig(true), params);
  EncoderLayer unfused(TinyConfig(false), params);
  auto x = TinyInput(ModelDims::Tiny(), 19);
  EncoderActivations a_f, a_u;
  fused.Forward(x, a_f);
  unfused.Forward(x, a_u);
  auto d_y = TensorH::Random(a_f.y.shape(), 23);
  EncoderGradients g_f, g_u;
  fused.Backward(d_y, a_f, g_f);
  unfused.Backward(d_y, a_u, g_u);
  EXPECT_EQ(MaxAbsDiff(g_f.d_x, g_u.d_x), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.w_qkv, g_u.params.w_qkv), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.b_qkv, g_u.params.b_qkv), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.w1, g_u.params.w1), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.b2, g_u.params.b2), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.ln1_w, g_u.params.ln1_w), 0.0);
  EXPECT_EQ(MaxAbsDiff(g_f.params.ln2_b, g_u.params.ln2_b), 0.0);
}

TEST(Encoder, DropoutZeroMeansDeterministicIdentityMasks) {
  auto cfg = TinyConfig(true, 0.0f);
  EncoderLayer layer(cfg, EncoderParams::Init(cfg.dims, 29));
  EncoderActivations acts;
  layer.Forward(TinyInput(cfg.dims, 31), acts);
  for (std::int64_t i = 0; i < acts.ff_drop_mask.size(); ++i) {
    EXPECT_EQ(float(acts.ff_drop_mask.data()[i]), 1.0f);
  }
}

TEST(Encoder, DifferentSeedsChangeDropout) {
  auto params = EncoderParams::Init(ModelDims::Tiny(), 37);
  auto cfg_a = TinyConfig(true);
  auto cfg_b = TinyConfig(true);
  cfg_b.seed = cfg_a.seed + 1;
  EncoderLayer a(cfg_a, params), b(cfg_b, params);
  EncoderActivations aa, ab;
  auto x = TinyInput(ModelDims::Tiny(), 41);
  a.Forward(x, aa);
  b.Forward(x, ab);
  EXPECT_GT(MaxAbsDiff(aa.ff_drop_mask, ab.ff_drop_mask), 0.0);
}

// Gradient checks against finite differences (fp32, dropout off).
class EncoderGradCheck : public ::testing::Test {
 protected:
  EncoderGradCheck() {
    cfg_.dims = ModelDims::Tiny();
    cfg_.dropout_prob = 0.0f;
    cfg_.use_fused_kernels = true;
    params_ = EncoderParamsT<float>::Init(cfg_.dims, 43);
    x_ = TensorF::Random(Shape("ibj", {cfg_.dims.i, cfg_.dims.b, cfg_.dims.j}),
                         47);
  }

  double Loss() {
    EncoderLayerT<float> layer(cfg_, params_);
    EncoderActivationsT<float> acts;
    layer.Forward(x_, acts);
    return testutil::ProbeLoss(acts.y);
  }

  EncoderGradientsT<float> Analytic() {
    EncoderLayerT<float> layer(cfg_, params_);
    EncoderActivationsT<float> acts;
    layer.Forward(x_, acts);
    auto d_y = testutil::ProbeLossGrad(acts.y.shape());
    EncoderGradientsT<float> grads;
    layer.Backward(d_y, acts, grads);
    return grads;
  }

  EncoderConfig cfg_;
  EncoderParamsT<float> params_;
  TensorF x_;
};

TEST_F(EncoderGradCheck, InputGradientMatchesFiniteDifferences) {
  auto grads = Analytic();
  auto numeric =
      testutil::NumericalGradient(x_, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.d_x, numeric), 5e-3);
}

TEST_F(EncoderGradCheck, ProjectionWeightGradientMatches) {
  auto grads = Analytic();
  auto numeric = testutil::NumericalGradient(
      params_.w_qkv, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.params.w_qkv, numeric), 5e-3);
}

TEST_F(EncoderGradCheck, FeedForwardWeightGradientsMatch) {
  // w1 sits right before the ReLU: central differences straddle the kink
  // for a few elements, so bound the mean error tightly and the max
  // loosely (the analytic subgradient is correct there).
  auto mean_abs_diff = [](const TensorF& a, const TensorF& b) {
    double sum = 0;
    for (std::int64_t i = 0; i < a.size(); ++i) {
      sum += std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]);
    }
    return sum / static_cast<double>(a.size());
  };
  auto grads = Analytic();
  auto num_w1 = testutil::NumericalGradient(
      params_.w1, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(mean_abs_diff(grads.params.w1, num_w1), 1e-3);
  EXPECT_LT(MaxAbsDiff(grads.params.w1, num_w1), 5e-2);
  auto num_w2 = testutil::NumericalGradient(
      params_.w2, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.params.w2, num_w2), 5e-3);
}

TEST_F(EncoderGradCheck, BiasAndLayerNormGradientsMatch) {
  auto grads = Analytic();
  for (auto [name, param, grad] :
       {std::tuple{"b_out", &params_.b_out, &grads.params.b_out},
        std::tuple{"ln1_w", &params_.ln1_w, &grads.params.ln1_w},
        std::tuple{"ln2_b", &params_.ln2_b, &grads.params.ln2_b},
        std::tuple{"b1", &params_.b1, &grads.params.b1}}) {
    auto numeric =
        testutil::NumericalGradient(*param, [&] { return Loss(); }, 5e-3f);
    EXPECT_LT(MaxAbsDiff(*grad, numeric), 5e-3) << name;
  }
}

TEST_F(EncoderGradCheck, OutputProjectionGradientMatches) {
  auto grads = Analytic();
  auto numeric = testutil::NumericalGradient(
      params_.w_out, [&] { return Loss(); }, 5e-3f);
  EXPECT_LT(MaxAbsDiff(grads.params.w_out, numeric), 5e-3);
}

}  // namespace
}  // namespace xflow::transformer
