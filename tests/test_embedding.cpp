#include "transformer/embedding.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"

namespace xflow::transformer {
namespace {

graph::ModelDims EmbDims() {
  auto d = graph::ModelDims::Tiny();
  d.b = 2;
  d.j = 4;
  d.i = 8;
  return d;
}

TEST(Embedding, ForwardSumsTokenAndPosition) {
  const auto d = EmbDims();
  EmbeddingT<float> emb(10, d, 1);
  TokenIds tokens = {0, 1, 2, 3, 4, 5, 6, 7};
  auto x = emb.Forward(tokens);
  EXPECT_EQ(x.shape().names(), "ibj");
  for (std::int64_t i = 0; i < d.i; ++i) {
    const float expected = emb.token_table().at({{'v', 3}, {'i', i}}) +
                           emb.pos_table().at({{'j', 3}, {'i', i}});
    EXPECT_FLOAT_EQ(x.at({{'i', i}, {'b', 0}, {'j', 3}}), expected);
  }
}

TEST(Embedding, SameTokenSharesRows) {
  const auto d = EmbDims();
  EmbeddingT<float> emb(10, d, 2);
  TokenIds tokens = {5, 5, 5, 5, 5, 5, 5, 5};
  auto x = emb.Forward(tokens);
  // Same token at the same position in different batches => same vector.
  for (std::int64_t i = 0; i < d.i; ++i) {
    EXPECT_FLOAT_EQ(x.at({{'i', i}, {'b', 0}, {'j', 2}}),
                    x.at({{'i', i}, {'b', 1}, {'j', 2}}));
  }
}

TEST(Embedding, RejectsBadInput) {
  const auto d = EmbDims();
  EmbeddingT<float> emb(10, d, 3);
  EXPECT_THROW(emb.Forward({1, 2, 3}), InvalidArgument);  // wrong count
  TokenIds bad(static_cast<std::size_t>(d.b * d.j), 0);
  bad[0] = 99;  // out of vocab
  EXPECT_THROW(emb.Forward(bad), InvalidArgument);
}

TEST(Embedding, BackwardAccumulatesRepeatedTokens) {
  const auto d = EmbDims();
  EmbeddingT<float> emb(10, d, 4);
  TokenIds tokens = {7, 7, 7, 7, 7, 7, 7, 7};  // all the same token
  auto d_x = TensorF::Full(Shape("ibj", {d.i, d.b, d.j}), 1.0f);
  TensorF d_tok(Shape("vi", {10, d.i})), d_pos(Shape("ji", {d.j, d.i}));
  emb.Backward(d_x, tokens, d_tok, d_pos);
  for (std::int64_t i = 0; i < d.i; ++i) {
    // Token 7 occurs b*j = 8 times.
    EXPECT_FLOAT_EQ(d_tok.at({{'v', 7}, {'i', i}}), 8.0f);
    EXPECT_FLOAT_EQ(d_tok.at({{'v', 0}, {'i', i}}), 0.0f);
    // Each position occurs b = 2 times.
    EXPECT_FLOAT_EQ(d_pos.at({{'j', 1}, {'i', i}}), 2.0f);
  }
}

TEST(Embedding, GradientMatchesFiniteDifferences) {
  const auto d = EmbDims();
  EmbeddingT<float> emb(6, d, 5);
  TokenIds tokens = {0, 1, 2, 3, 4, 5, 0, 1};
  auto loss = [&] { return testutil::ProbeLoss(emb.Forward(tokens)); };
  auto numeric = testutil::NumericalGradient(emb.token_table(), loss, 1e-3f);

  auto d_x = testutil::ProbeLossGrad(Shape("ibj", {d.i, d.b, d.j}));
  TensorF d_tok(Shape("vi", {6, d.i})), d_pos(Shape("ji", {d.j, d.i}));
  emb.Backward(d_x, tokens, d_tok, d_pos);
  EXPECT_LT(MaxAbsDiff(d_tok, numeric), 1e-3);
}

TEST(LmHead, LogitsAreTableTimesActivations) {
  const auto d = EmbDims();
  auto table = TensorF::Random(Shape("vi", {5, d.i}), 6);
  auto x = TensorF::Random(Shape("ibj", {d.i, d.b, d.j}), 7);
  auto logits = LmLogits(table, x);
  EXPECT_EQ(logits.shape().names(), "vbj");
  float manual = 0;
  for (std::int64_t i = 0; i < d.i; ++i) {
    manual += table.at({{'v', 2}, {'i', i}}) *
              x.at({{'i', i}, {'b', 1}, {'j', 3}});
  }
  EXPECT_NEAR(logits.at({{'v', 2}, {'b', 1}, {'j', 3}}), manual, 1e-4);
}

TEST(CrossEntropy, PerfectPredictionHasLowLossAndTinyGradient) {
  TensorF logits(Shape("vbj", {4, 1, 2}));
  TokenIds targets = {2, 0};
  // Put huge mass on the targets.
  logits.at({{'v', 2}, {'b', 0}, {'j', 0}}) = 20.0f;
  logits.at({{'v', 0}, {'b', 0}, {'j', 1}}) = 20.0f;
  TensorF d_logits(logits.shape());
  const double loss = SoftmaxCrossEntropy(logits, targets, d_logits);
  EXPECT_LT(loss, 1e-6);
  for (std::int64_t e = 0; e < d_logits.size(); ++e) {
    EXPECT_LT(std::abs(d_logits.data()[e]), 1e-6);
  }
}

TEST(CrossEntropy, UniformLogitsGiveLogVocab) {
  TensorF logits(Shape("vbj", {8, 2, 3}));  // all zeros -> uniform
  TokenIds targets = {0, 1, 2, 3, 4, 5};
  TensorF d_logits(logits.shape());
  const double loss = SoftmaxCrossEntropy(logits, targets, d_logits);
  EXPECT_NEAR(loss, std::log(8.0), 1e-6);
}

TEST(CrossEntropy, GradientMatchesFiniteDifferences) {
  auto logits = TensorF::Random(Shape("vbj", {5, 2, 2}), 8);
  TokenIds targets = {1, 4, 0, 2};
  TensorF d_logits(logits.shape());
  SoftmaxCrossEntropy(logits, targets, d_logits);

  auto numeric = testutil::NumericalGradient(
      logits,
      [&] {
        TensorF tmp(logits.shape());
        return SoftmaxCrossEntropy(logits, targets, tmp);
      },
      1e-3f);
  EXPECT_LT(MaxAbsDiff(d_logits, numeric), 1e-4);
}

}  // namespace
}  // namespace xflow::transformer
