#include "transformer/training.hpp"

#include <gtest/gtest.h>

#include "common/threadpool.hpp"
#include "transformer/encoder.hpp"

namespace xflow::transformer {
namespace {

TEST(Adam, StepIsBitwiseDeterministicAcrossThreadCounts) {
  // The update runs chunked on the pool; each element depends only on
  // itself, so the thread count must never change the result.
  const Shape shape("x", {100001});  // not a multiple of the chunk size
  auto grad = TensorH::Random(shape, 3);
  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    auto master = TensorF::Random(shape, 5);
    TensorH working = master.Cast<Half>();
    MixedPrecisionAdam opt({.lr = 1e-2f});
    for (int step = 0; step < 3; ++step) {
      opt.Step("w", master, working, grad);
    }
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
    return master;
  };
  auto serial = run(1);
  auto wide = run(8);
  EXPECT_EQ(MaxAbsDiff(serial, wide), 0.0);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  TensorF master(Shape("x", {4}));
  TensorH working = master.Cast<Half>();
  MixedPrecisionAdam opt({.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    TensorH grad(Shape("x", {4}));
    for (std::int64_t i = 0; i < 4; ++i) {
      grad.data()[i] = Half(2.0f * (master.data()[i] - 3.0f));
    }
    opt.Step("w", master, working, grad);
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(master.data()[i], 3.0f, 0.05f);
    EXPECT_NEAR(float(working.data()[i]), 3.0f, 0.05f);
  }
  EXPECT_EQ(opt.steps("w"), 300);
  EXPECT_EQ(opt.steps("unknown"), 0);
}

TEST(Adam, WorkingCopyTracksMasterThroughFp16) {
  TensorF master(Shape("x", {1}));
  master.data()[0] = 1.0f;
  TensorH working = master.Cast<Half>();
  MixedPrecisionAdam opt({.lr = 1e-4f});
  TensorH grad(Shape("x", {1}));
  grad.data()[0] = Half(1.0f);
  opt.Step("w", master, working, grad);
  // Master moved by ~lr; fp16 copy is the rounded master.
  EXPECT_LT(master.data()[0], 1.0f);
  EXPECT_EQ(float(working.data()[0]), float(Half(master.data()[0])));
}

TEST(MseLoss, ZeroAtTargetAndGradientPointsUp) {
  auto y = TensorH::Random(Shape("ib", {4, 4}), 1);
  TensorH d_y(y.shape());
  EXPECT_DOUBLE_EQ(MseLoss(y, y, d_y), 0.0);
  for (std::int64_t i = 0; i < d_y.size(); ++i) {
    EXPECT_EQ(float(d_y.data()[i]), 0.0f);
  }

  auto target = TensorH::Full(y.shape(), 0.0f);
  const double loss = MseLoss(y, target, d_y);
  EXPECT_GT(loss, 0.0);
  for (std::int64_t i = 0; i < d_y.size(); ++i) {
    // d/dy of (y-0)^2/N has the sign of y.
    EXPECT_GE(float(d_y.data()[i]) * float(y.data()[i]), 0.0f);
  }
}

TEST(Training, EncoderLayerLearnsIdentityTarget) {
  // End-to-end: train the tiny encoder to reproduce a fixed target; loss
  // must drop substantially. Exercises forward, backward and the optimizer.
  EncoderConfig cfg;
  cfg.dims = graph::ModelDims::Tiny();
  cfg.dropout_prob = 0.0f;
  cfg.use_fused_kernels = true;

  auto params = EncoderParams::Init(cfg.dims, 5);
  EncoderLayer layer(cfg, params);
  auto x = TensorH::Random(Shape("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j}),
                           9);
  auto target =
      TensorH::Random(Shape("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j}), 11);

  MixedPrecisionAdam opt({.lr = 5e-3f});
  std::map<std::string, TensorF> masters;
  for (auto& [name, t] : layer.params().Named()) {
    masters.emplace(name, t->Cast<float>());
  }

  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 30; ++step) {
    EncoderActivations acts;
    layer.Forward(x, acts);
    TensorH d_y(acts.y.shape());
    const double loss = MseLoss(acts.y, target, d_y);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    EncoderGradients grads;
    layer.Backward(d_y, acts, grads);
    auto grad_named = grads.params.Named();
    auto param_named = layer.params().Named();
    for (std::size_t p = 0; p < param_named.size(); ++p) {
      opt.Step(param_named[p].first, masters.at(param_named[p].first),
               *param_named[p].second, *grad_named[p].second);
    }
  }
  EXPECT_LT(last_loss, 0.6 * first_loss)
      << "loss should drop: " << first_loss << " -> " << last_loss;
}

}  // namespace
}  // namespace xflow::transformer
