// End-to-end training: a two-layer transformer encoder stack learning a
// synthetic sequence-denoising task with mixed-precision Adam -- the
// "stacking our optimized layers" extension the paper describes (Sec. VI-C).
#include <cstdio>
#include <map>
#include <vector>

#include "common/strings.hpp"
#include "transformer/encoder.hpp"
#include "transformer/training.hpp"

int main() {
  using namespace xflow;
  using namespace xflow::transformer;

  graph::ModelDims dims;
  dims.b = 2;
  dims.j = dims.k = 16;
  dims.h = 2;
  dims.p = 8;
  dims.i = 16;
  dims.u = 64;

  constexpr int kLayers = 2;
  std::vector<EncoderLayer> stack;
  std::vector<std::map<std::string, TensorF>> masters(kLayers);
  for (int l = 0; l < kLayers; ++l) {
    EncoderConfig cfg;
    cfg.dims = dims;
    cfg.dropout_prob = 0.0f;  // deterministic toy task
    cfg.seed = 100 + static_cast<std::uint64_t>(l);
    stack.emplace_back(cfg, EncoderParams::Init(dims, 7 + l));
    for (auto& [name, t] : stack.back().params().Named()) {
      masters[l].emplace(name, t->Cast<float>());
    }
  }

  // Task: reconstruct a clean signal from a noisy input.
  const Shape ibj("ibj", {dims.i, dims.b, dims.j});
  auto clean = TensorH::Random(ibj, 1);
  auto noisy = TensorH(ibj);
  {
    auto noise = TensorH::Random(ibj, 2);
    for (std::int64_t e = 0; e < noisy.size(); ++e) {
      noisy.data()[e] =
          Half(float(clean.data()[e]) + 0.3f * float(noise.data()[e]));
    }
  }

  MixedPrecisionAdam opt({.lr = 2e-3f});
  std::printf("step   loss\n");
  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    // Forward through the stack.
    std::vector<EncoderActivations> acts(kLayers);
    const TensorH* cur = &noisy;
    for (int l = 0; l < kLayers; ++l) {
      stack[static_cast<std::size_t>(l)].Forward(*cur, acts[l]);
      cur = &acts[static_cast<std::size_t>(l)].y;
    }
    TensorH d_y(cur->shape());
    const double loss = MseLoss(*cur, clean, d_y);
    if (step == 0) first = loss;
    last = loss;
    if (step % 10 == 0) std::printf("%4d   %.5f\n", step, loss);

    // Backward through the stack; gradients chain via d_x.
    TensorH grad_in = d_y;
    for (int l = kLayers - 1; l >= 0; --l) {
      auto lu = static_cast<std::size_t>(l);
      EncoderGradients grads;
      stack[lu].Backward(grad_in, acts[lu], grads);
      auto named_params = stack[lu].params().Named();
      auto named_grads = grads.params.Named();
      for (std::size_t p = 0; p < named_params.size(); ++p) {
        opt.Step(StrFormat("l%d.%s", l, named_params[p].first.c_str()),
                 masters[lu].at(named_params[p].first),
                 *named_params[p].second, *named_grads[p].second);
      }
      grad_in = grads.d_x;
    }
  }
  std::printf("final  %.5f  (%.1fx lower than the initial %.5f)\n", last,
              first / last, first);
  std::printf("%s\n", last < first ? "training converges."
                                   : "WARNING: loss did not decrease");
  return last < first ? 0 : 1;
}
