// End-to-end training through the whole-stack graph: token ids ->
// embedding -> two encoder layers -> MSE loss live in ONE dataflow graph
// with ONE memory plan and ONE slab, so cross-layer transients share
// bytes and the steady-state step is allocation-free. Mixed-precision
// Adam updates every parameter, embedding tables included -- the
// "stacking our optimized layers" full-pipeline extension the paper
// describes (Sec. VI-C).
#include <cstdio>
#include <map>
#include <vector>

#include "common/strings.hpp"
#include "graph/executor.hpp"
#include "transformer/arena.hpp"
#include "transformer/embedding.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

int main() {
  using namespace xflow;
  using namespace xflow::transformer;

  graph::ModelDims dims;
  dims.b = 2;
  dims.j = dims.k = 16;
  dims.h = 2;
  dims.p = 8;
  dims.i = 16;
  dims.u = 64;
  constexpr int kLayers = 2;
  constexpr std::int64_t kVocab = 32;

  EncoderConfig cfg;
  cfg.dims = dims;
  cfg.dropout_prob = 0.0f;  // deterministic toy task
  EncoderStack stack(cfg, kLayers, 100);
  EmbeddingT<Half> emb(kVocab, dims, 7);

  // Task: map a fixed token sequence onto a fixed target signal.
  TokenIds tokens(static_cast<std::size_t>(dims.b * dims.j));
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    tokens[t] = static_cast<std::int32_t>((5 * t + 3) % kVocab);
  }
  const Shape ibj("ibj", {dims.i, dims.b, dims.j});
  const auto target = TensorH::Random(ibj, 1);

  // One plan for the whole step: embedding, every layer's forward and
  // backward, and the loss head share a single liveness-planned slab.
  auto arena = MakeStackArena<Half>(
      cfg, {.num_layers = kLayers, .vocab = kVocab, .include_loss = true});
  std::printf("whole-stack plan: %s\n", arena.plan().Summary().c_str());

  // Bind everything once; Forward/Backward then run the planned graph
  // with zero per-step allocations.
  auto& ex = stack.Executor(arena);
  ex.BindInput("token_table", emb.token_table());
  ex.BindInput("pos_table", emb.pos_table());
  ex.BindTokens(tokens);
  ex.BindInput("target", target);
  TensorH d_tok(emb.token_table().shape());
  TensorH d_pos(emb.pos_table().shape());
  ex.BindOutput("d_token_table", d_tok);
  ex.BindOutput("d_pos_table", d_pos);
  std::vector<EncoderGradients> grads(kLayers);
  for (int l = 0; l < kLayers; ++l) {
    auto lu = static_cast<std::size_t>(l);
    grads[lu].params.EnsureShapes(dims);
    for (auto& [name, tensor] : grads[lu].params.Named()) {
      ex.BindOutput(StrFormat("L%d.d_%s", l, name.c_str()), *tensor);
    }
  }

  // fp32 masters for every trainable tensor, tables included.
  std::vector<std::map<std::string, TensorF>> masters(kLayers);
  for (int l = 0; l < kLayers; ++l) {
    for (auto& [name, t] : stack.layer(l).params().Named()) {
      masters[static_cast<std::size_t>(l)].emplace(name, t->Cast<float>());
    }
  }
  TensorF tok_master = emb.token_table().Cast<float>();
  TensorF pos_master = emb.pos_table().Cast<float>();

  MixedPrecisionAdam opt({.lr = 2e-3f});
  std::printf("step   loss\n");
  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    ex.Forward();  // embedding -> layers -> loss in one planned graph
    const double loss = ex.last_loss();
    if (step == 0) first = loss;
    last = loss;
    if (step % 10 == 0) std::printf("%4d   %.5f\n", step, loss);

    ex.Backward();  // fills d_token_table/d_pos_table and every layer grad
    for (int l = 0; l < kLayers; ++l) {
      auto lu = static_cast<std::size_t>(l);
      auto named_params = stack.layer(l).params().Named();
      auto named_grads = grads[lu].params.Named();
      for (std::size_t p = 0; p < named_params.size(); ++p) {
        opt.Step(StrFormat("L%d.%s", l, named_params[p].first.c_str()),
                 masters[lu].at(named_params[p].first),
                 *named_params[p].second, *named_grads[p].second);
      }
    }
    opt.Step("emb.token_table", tok_master, emb.token_table(), d_tok);
    opt.Step("emb.pos_table", pos_master, emb.pos_table(), d_pos);
  }
  std::printf("final  %.5f  (%.1fx lower than the initial %.5f)\n", last,
              first / last, first);
  std::printf("%s\n", last < first ? "training converges."
                                   : "WARNING: loss did not decrease");
  return last < first ? 0 : 1;
}
