// GPT-style causal language model: embedding + a stack of causal encoder
// blocks + tied LM head + softmax cross-entropy, trained to memorize a
// synthetic token sequence. Demonstrates the paper's claim that decoder
// models (GPT-2/3) reuse the same building blocks (Sec. VIII).
//
//   ./gpt_decoder [--layers=2] [--steps=40] [--vocab=17] [--threads=N]
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "tensor/einsum.hpp"
#include "transformer/embedding.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

int main(int argc, char** argv) {
  using namespace xflow;
  using namespace xflow::transformer;
  const ArgParser args(argc, argv);
  const int layers = static_cast<int>(args.GetInt("layers", 2));
  const int steps = static_cast<int>(args.GetInt("steps", 40));
  const std::int64_t vocab = args.GetInt("vocab", 17);
  if (args.Has("threads")) {
    ThreadPool::SetGlobalThreads(
        static_cast<int>(args.GetInt("threads", 1)));
  }

  graph::ModelDims dims;
  dims.b = 2;
  dims.j = dims.k = 12;
  dims.h = 2;
  dims.p = 8;
  dims.i = 16;
  dims.u = 64;

  EncoderConfig cfg;
  cfg.dims = dims;
  cfg.dropout_prob = 0.0f;
  cfg.causal = true;  // GPT-style masked self-attention

  // fp32 model end to end for a stable toy optimization.
  EncoderStackT<float> stack(cfg, layers, 5);
  EmbeddingT<float> embedding(vocab, dims, 11);

  // Task: next-token prediction on a fixed periodic sequence.
  TokenIds tokens(static_cast<std::size_t>(dims.b * dims.j));
  TokenIds targets(tokens.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    tokens[t] = static_cast<std::int32_t>((t * 3 + 1) % vocab);
    targets[t] = static_cast<std::int32_t>((t * 3 + 4) % vocab);
  }

  MixedPrecisionAdam opt({.lr = 3e-3f});
  std::map<std::string, TensorF> masters;
  std::map<std::string, TensorH> workings;  // fp16 mirrors for the optimizer

  auto adam_step = [&](const std::string& name, TensorF& param,
                       const TensorF& grad) {
    if (!masters.contains(name)) {
      masters.emplace(name, param);
      workings.emplace(name, param.Cast<Half>());
    }
    opt.Step(name, masters.at(name), workings.at(name), grad.Cast<Half>());
    param = masters.at(name);
  };

  std::printf("GPT-style decoder: %d layers, vocab %ld, %d steps\n", layers,
              vocab, steps);
  double first = 0, last = 0;
  for (int step = 0; step < steps; ++step) {
    auto x = embedding.Forward(tokens);
    std::vector<EncoderActivationsT<float>> acts;
    stack.Forward(x, acts);
    auto logits = LmLogits(embedding.token_table(), acts.back().y);
    TensorF d_logits(logits.shape());
    const double loss = SoftmaxCrossEntropy(logits, targets, d_logits);
    if (step == 0) first = loss;
    last = loss;
    if (step % 10 == 0) std::printf("  step %3d  loss %.4f\n", step, loss);

    // Backward: head -> stack -> embedding (head/embedding tied).
    auto d_y = Einsum<float>("vi,vbj->ibj", embedding.token_table(),
                             d_logits);
    auto d_table_head =
        Einsum<float>("vbj,ibj->vi", d_logits, acts.back().y);
    std::vector<EncoderGradientsT<float>> grads;
    auto d_x = stack.Backward(d_y, acts, grads);
    TensorF d_table_emb(embedding.token_table().shape());
    TensorF d_pos(embedding.pos_table().shape());
    embedding.Backward(d_x, tokens, d_table_emb, d_pos);
    for (std::int64_t e = 0; e < d_table_emb.size(); ++e) {
      d_table_emb.data()[e] += d_table_head.data()[e];  // tied weights
    }

    for (int l = 0; l < layers; ++l) {
      auto lu = static_cast<std::size_t>(l);
      auto named_p = stack.layer(l).params().Named();
      auto named_g = grads[lu].params.Named();
      for (std::size_t p = 0; p < named_p.size(); ++p) {
        adam_step(StrFormat("l%d.%s", l, named_p[p].first.c_str()),
                  *named_p[p].second, *named_g[p].second);
      }
    }
    adam_step("embed.tok", embedding.token_table(), d_table_emb);
    adam_step("embed.pos", embedding.pos_table(), d_pos);
  }
  std::printf("loss %.4f -> %.4f (%.1fx)\n", first, last, first / last);
  std::printf("%s\n", last < 0.7 * first ? "decoder learns the sequence."
                                         : "WARNING: poor convergence");
  return last < 0.7 * first ? 0 : 1;
}
