// Layout tuning -- steps 3-4 of the recipe: exhaustively benchmark the
// configurations of one contraction and one fused kernel, then run the
// global SSSP selection and compare it against greedy per-operator choices.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/selection.hpp"
#include "graph/builder.hpp"
#include "layouts/contraction_space.hpp"
#include "layouts/fused_space.hpp"

int main() {
  using namespace xflow;
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto dims = graph::ModelDims::BertLarge();

  std::printf("== Step 3a: sweep one contraction (the Q/K/V projection) ==\n");
  const GemmExtents qkv{.m = 4096, .n = 3072, .k = 1024, .batch = 1};
  const auto samples = layouts::SweepContraction(model, qkv, true, false);
  const auto best = layouts::BestSample(samples);
  double worst = 0;
  for (const auto& s : samples) worst = std::max(worst, s.timing.time_us);
  std::printf("  %zu configurations; best %.0f us (%s, algo %d, %.1f%% of"
              " peak), worst %.0f us\n",
              samples.size(), best.timing.time_us,
              best.layout.Describe().c_str(), best.algorithm,
              best.timing.pct_peak, worst);

  std::printf("\n== Step 3b: sweep one fused kernel (SM) ==\n");
  const auto g = BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);
  const auto fused = fusion::FuseMaximally(g);
  for (const auto& k : fused.kernels) {
    if (k.name != "SM") continue;
    const auto space = layouts::SpaceFromKernel(g, k);
    const auto sweep = layouts::SweepFusedKernel(model, space);
    const auto best_f = layouts::BestFusedSample(sweep);
    double worst_f = 0;
    for (const auto& s : sweep) {
      worst_f = std::max(worst_f, s.timing.time_us);
    }
    std::printf("  %zu configurations; best %.0f us (%s) at %.0f%% of peak"
                " bandwidth; worst %.0f us (%.0fx slower)\n",
                sweep.size(), best_f.timing.time_us,
                best_f.config.Describe().c_str(),
                100.0 * best_f.bandwidth_frac, worst_f,
                worst_f / best_f.timing.time_us);
  }

  std::printf("\n== Step 4: global configuration selection (SSSP) ==\n");
  const auto result = config::SelectConfigurations(model, g, fused);
  for (const auto& s : result.stages) {
    std::printf("  %-8s %s -> %s  (%.0f us%s)\n", s.kernel_name.c_str(),
                s.in_layout.c_str(), s.out_layout.c_str(), s.time_us,
                s.time_us > s.best_time_us * 1.001 ? ", locally suboptimal"
                                                   : "");
  }
  const double greedy = config::GreedySelectionTime(model, g, fused);
  std::printf("  SSSP total %.0f us; greedy %.0f us; per-stage bound %.0f us"
              " (gap %.2f%%)\n",
              result.total_time_us, greedy, result.per_stage_lower_bound_us,
              100.0 * result.GapToLowerBound());
  std::printf("  note: a stage may run a locally suboptimal layout when that"
              " wins globally (Sec. VI-B).\n");
  return 0;
}
