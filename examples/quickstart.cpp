// Quickstart: build a BERT encoder layer, run forward + backward on the
// CPU substrate, and ask the device model what the same schedule costs on
// a V100 -- the three public API layers of this library in ~80 lines.
//
//   ./quickstart [--threads=N]   (or XFLOW_THREADS=N ./quickstart)
#include <chrono>
#include <cstdio>

#include "baselines/plans.hpp"
#include "common/cli.hpp"
#include "common/threadpool.hpp"
#include "transformer/encoder.hpp"
#include "transformer/training.hpp"

int main(int argc, char** argv) {
  using namespace xflow;
  using Clock = std::chrono::steady_clock;

  // All einsum/GEMM calls below run on the global pool; --threads
  // overrides the XFLOW_THREADS env var, which overrides the core count.
  const ArgParser args(argc, argv);
  if (args.Has("threads")) {
    ThreadPool::SetGlobalThreads(
        static_cast<int>(args.GetInt("threads", 1)));
  }
  std::printf("xflow threads: %d\n", ThreadPool::Global().threads());

  // 1. A small encoder layer (the full BERT-large dims also work; they are
  //    just slow on a CPU). Dimension names follow the paper.
  graph::ModelDims dims;
  dims.b = 2;       // batch
  dims.j = dims.k = 32;  // sequence length
  dims.h = 4;       // heads
  dims.p = 16;      // projection size
  dims.i = 64;      // embedding
  dims.u = 256;     // feed-forward width

  transformer::EncoderConfig cfg;
  cfg.dims = dims;
  cfg.dropout_prob = 0.1f;
  cfg.use_fused_kernels = true;  // the paper's fused kernels

  transformer::EncoderLayer layer(
      cfg, transformer::EncoderParams::Init(dims, /*seed=*/42));

  // 2. Forward + backward on synthetic data (fp16 storage, fp32 math).
  auto x = TensorH::Random(Shape("ibj", {dims.i, dims.b, dims.j}), 7);
  transformer::EncoderActivations acts;

  const auto t0 = Clock::now();
  layer.Forward(x, acts);
  const auto t1 = Clock::now();

  auto target = TensorH::Random(acts.y.shape(), 9);
  TensorH d_y(acts.y.shape());
  const double loss = transformer::MseLoss(acts.y, target, d_y);

  transformer::EncoderGradients grads;
  layer.Backward(d_y, acts, grads);
  const auto t2 = Clock::now();

  const auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
        .count();
  };
  std::printf("encoder layer: i=%ld h=%ld p=%ld u=%ld, batch=%ld, seq=%ld\n",
              dims.i, dims.h, dims.p, dims.u, dims.b, dims.j);
  std::printf("forward:  %lld us (CPU substrate)\n",
              static_cast<long long>(us(t0, t1)));
  std::printf("backward: %lld us (CPU substrate)\n",
              static_cast<long long>(us(t1, t2)));
  std::printf("loss vs random target: %.4f\n", loss);
  std::printf("d_x norm check: |d_x| max = %.4f\n", [&] {
    float m = 0;
    for (std::int64_t i = 0; i < grads.d_x.size(); ++i) {
      m = std::max(m, std::abs(float(grads.d_x.data()[i])));
    }
    return m;
  }());

  // 3. The same layer at paper scale through the V100 device model.
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto ours = baselines::PlanEncoder(
      baselines::Framework::kOurs, model, graph::ModelDims::BertLarge());
  const auto pt = baselines::PlanEncoder(
      baselines::Framework::kPyTorch, model, graph::ModelDims::BertLarge());
  std::printf("\nBERT-large on the V100 model: ours %.2f ms vs PyTorch %.2f"
              " ms per layer (%.2fx)\n",
              ours.TotalUs() / 1000.0, pt.TotalUs() / 1000.0,
              pt.TotalUs() / ours.TotalUs());
  return 0;
}
