// Dataflow analysis of multi-head attention -- steps 1-2 of the paper's
// recipe applied through the public API: build the graph, classify the
// operators, find the memory-bound ones, and measure what fusion saves.
//
// MHA matters beyond transformers (the paper cites vision and RL uses), so
// this example analyzes it standalone with general q/k/v inputs.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fusion/fuser.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace xflow;

  const auto dims = graph::ModelDims::BertLarge();
  const auto g = graph::BuildMhaForward(dims);

  std::printf("== Step 1: dataflow graph and operator classes ==\n");
  AsciiTable table({"operator", "class", "flop", "flop/IO", "verdict"});
  for (const auto& op : g.ops()) {
    const auto cost = CostOf(g, op);
    const auto b = ClassifyBoundedness(cost);
    table.AddRow({op.name, ToString(op.cls()), HumanCount(cost.flop),
                  StrFormat("%.2f", cost.FlopPerIo()),
                  b == graph::Boundedness::kIoDominated
                      ? "optimize data movement"
                      : "optimize compute"});
  }
  std::printf("%s", table.Render().c_str());

  const auto by_class = FlopByClass(g);
  const double total = TotalFlop(g);
  std::printf("\n== Step 2: where the flop is vs where the bytes are ==\n");
  for (auto cls : {graph::OpClass::kContraction, graph::OpClass::kStatNorm,
                   graph::OpClass::kElementwise}) {
    std::printf("  %-28s %6.2f%% of flop\n", ToString(cls).c_str(),
                100.0 * by_class.at(cls) / total);
  }
  std::printf("  => tensor contractions own the flop; everything else owns"
              " the runtime (Table I).\n");

  const auto fused = fusion::FuseMaximally(g);
  int fused_groups = 0;
  for (const auto& k : fused.kernels) {
    fused_groups += !k.IsContraction(g) && k.op_indices.size() > 1;
  }
  std::printf("\n== Fusion opportunities found: %d multi-op kernels, "
              "%.2f%% less data movement ==\n",
              fused_groups, 100.0 * fused.DataMovementReduction(g));
  for (const auto& k : fused.kernels) {
    if (k.IsContraction(g) || k.op_indices.size() < 2) continue;
    std::vector<std::string> names;
    for (int idx : k.op_indices) {
      names.push_back(g.ops()[static_cast<std::size_t>(idx)].name);
    }
    std::printf("  %-6s = %s\n", k.name.c_str(), Join(names, " + ").c_str());
  }
  return 0;
}
