#include "layouts/fused_space.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/strings.hpp"
#include "sim/calibration.hpp"

namespace xflow::layouts {

FusedKernelSpace SpaceFromKernel(const graph::DataflowGraph& g,
                                 const fusion::FusedKernel& k) {
  require(!k.IsContraction(g), "contractions use the GEMM space");
  FusedKernelSpace s;
  s.kernel_name = k.name;
  s.member_ops = static_cast<int>(k.op_indices.size());

  // Primary shape: the largest tensor the kernel touches.
  std::int64_t largest = 0;
  for (const auto& lists : {k.external_inputs, k.external_outputs}) {
    for (const auto& t : lists) {
      const auto& shape = g.tensor(t).shape;
      if (shape.num_elements() > largest) {
        largest = shape.num_elements();
        s.primary = shape;
      }
    }
  }
  if (!k.reduction_dims.empty()) {
    // A single warp-reduction dim drives the kernel template; use the first
    // reduced dim present in the primary shape (e.g. 'k' for SM, 'i' for
    // layernorm dX, 'b' for the dW reductions over b,j).
    for (char d : k.reduction_dims) {
      if (s.primary.has(d)) {
        s.reduce_dim = d;
        break;
      }
    }
  }

  double elems_min = 0;
  for (const auto& lists : {k.external_inputs, k.external_outputs}) {
    for (const auto& t : lists) {
      elems_min += static_cast<double>(g.tensor(t).shape.num_elements());
    }
  }
  s.min_bytes = elems_min * kHalfBytes;
  s.actual_bytes = s.min_bytes;  // fused kernels move exactly their I/O
  for (int idx : k.op_indices) {
    s.flop += g.ops()[static_cast<std::size_t>(idx)].flop;
  }
  return s;
}

std::string FusedConfig::Describe() const {
  return StrFormat("in=%s out=%s vec=%c%s", in_layout.c_str(),
                   out_layout.c_str(), vector_dim ? vector_dim : '-',
                   warp_dim ? StrFormat(" warp=%c", warp_dim).c_str() : "");
}

double FusedConfigBandwidthFrac(const FusedKernelSpace& space,
                                const FusedConfig& cfg) {
  double f = sim::TunedKernelBandwidthFrac(space.kernel_name);

  // Vectorized 16-byte accesses need the vector dim innermost (sequential).
  const bool in_vec = !cfg.in_layout.empty() &&
                      cfg.in_layout.back() == cfg.vector_dim;
  const bool out_vec = !cfg.out_layout.empty() &&
                       cfg.out_layout.back() == cfg.vector_dim;
  f *= in_vec ? 1.0 : 0.34;
  f *= out_vec ? 1.0 : 0.34;

  // Eight fp16 lanes per vector: a short dimension cannot fill them.
  if (space.primary.has(cfg.vector_dim) &&
      space.primary.extent(cfg.vector_dim) < 8) {
    f *= 0.55;
  }

  if (space.reduce_dim != '\0') {
    // Reducing along the warp dimension uses register shuffles; any other
    // placement spills partials through shared memory.
    f *= cfg.warp_dim == space.reduce_dim ? 1.0 : 0.50;
    // Joining reduce and vector dims cuts register pressure from the vector
    // width to one accumulator (Sec. V-B).
    f *= cfg.warp_dim == cfg.vector_dim ? 1.0 : 0.84;
    // Fully strided reductions (reduce dim outermost in both layouts) are
    // the pathological tail of Fig. 5.
    const bool in_outer = !cfg.in_layout.empty() &&
                          cfg.in_layout.front() == space.reduce_dim;
    const bool out_outer = !cfg.out_layout.empty() &&
                           cfg.out_layout.front() == space.reduce_dim;
    if (in_outer && out_outer && !in_vec && !out_vec) f *= 0.18;
  }

  // Mismatched input/output orders force a transposing access pattern on
  // one side; the cost grows with how far the permutation is from identity.
  if (cfg.in_layout != cfg.out_layout) {
    int displaced = 0;
    for (std::size_t i = 0; i < cfg.in_layout.size(); ++i) {
      displaced += cfg.in_layout[i] != cfg.out_layout[i];
    }
    f *= 1.0 - 0.08 * displaced;
  }
  return f;
}

std::vector<FusedSample> SweepFusedKernel(const sim::GpuModel& model,
                                          const FusedKernelSpace& space) {
  std::vector<FusedSample> samples;
  const auto perms = AllPermutations(space.primary.names());
  std::string dims = space.primary.names();

  std::vector<char> warp_dims;
  if (space.reduce_dim == '\0') {
    warp_dims.push_back('\0');
  } else {
    warp_dims.assign(dims.begin(), dims.end());
  }

  const double overhead =
      space.kernel_name == "SM" || space.kernel_name == "BS" ? 10.0 : 1.0;
  for (const auto& in_layout : perms) {
    for (const auto& out_layout : perms) {
      for (char vec : dims) {
        for (char warp : warp_dims) {
          FusedConfig cfg{.in_layout = in_layout,
                          .out_layout = out_layout,
                          .vector_dim = vec,
                          .warp_dim = warp};
          const double frac = FusedConfigBandwidthFrac(space, cfg);
          sim::MemoryConfig mc{.bandwidth_frac = frac,
                               .flop_per_byte_overhead = overhead,
                               .kernel_launches = 1};
          samples.push_back(
              {.config = cfg,
               .bandwidth_frac = frac,
               .timing = model.MemoryBoundKernel(space.min_bytes,
                                                 space.actual_bytes,
                                                 space.flop, mc)});
        }
      }
    }
  }
  return samples;
}

FusedSample BestFusedSample(const std::vector<FusedSample>& samples) {
  require(!samples.empty(), "sweep produced no samples");
  return *std::min_element(samples.begin(), samples.end(),
                           [](const auto& a, const auto& b) {
                             return a.timing.time_us < b.timing.time_us;
                           });
}

}  // namespace xflow::layouts
