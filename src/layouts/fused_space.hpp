// Configuration search space for the fused element-wise / statistical
// normalization kernels (Sec. V-B, Fig. 5).
//
// Each fused kernel exposes: the memory layout (dimension order) of its
// primary input and output, the vectorization dimension, and -- for kernels
// with reductions -- the warp-reduction dimension. The paper benchmarks
// every combination; distributions have long tails (a bad configuration can
// be orders of magnitude slower).
#pragma once

#include <string>
#include <vector>

#include "fusion/fuser.hpp"
#include "graph/graph.hpp"
#include "sim/kernel_model.hpp"

namespace xflow::layouts {

/// Everything needed to cost one fused kernel's configurations.
struct FusedKernelSpace {
  std::string kernel_name;   // paper name, keys the calibration table
  Shape primary;             // the shape whose dims define the config space
  char reduce_dim = '\0';    // '\0' when the kernel performs no reduction
  double min_bytes = 0;      // I/O lower bound Q
  double actual_bytes = 0;   // external I/O of the fused kernel
  double flop = 0;
  int member_ops = 1;
};

/// Build the space descriptor for a fused kernel from the dataflow graph.
FusedKernelSpace SpaceFromKernel(const graph::DataflowGraph& g,
                                 const fusion::FusedKernel& k);

struct FusedConfig {
  std::string in_layout;   // dim order of the primary input
  std::string out_layout;  // dim order of the primary output
  char vector_dim = '\0';
  char warp_dim = '\0';    // reduction kernels only

  [[nodiscard]] std::string Describe() const;
};

struct FusedSample {
  FusedConfig config;
  double bandwidth_frac = 0;
  sim::KernelTiming timing;
};

/// The achieved-bandwidth fraction of one configuration: vectorization of
/// input/output, vector-width feasibility, warp-reduction placement, and
/// the register-pressure interaction the paper describes (joining reduce
/// and vector dims frees registers).
double FusedConfigBandwidthFrac(const FusedKernelSpace& space,
                                const FusedConfig& cfg);

/// Evaluate every configuration (layouts x vector dim x warp dim).
std::vector<FusedSample> SweepFusedKernel(const sim::GpuModel& model,
                                          const FusedKernelSpace& space);

FusedSample BestFusedSample(const std::vector<FusedSample>& samples);

}  // namespace xflow::layouts
