#include "layouts/contraction_space.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::layouts {

std::vector<ContractionTile> PaperContractionTiles(const graph::ModelDims& d) {
  // Labels and extents follow Fig. 4 (cuBLAS convention: M is the larger
  // free dim). bj = b*j flattened; i = p*h.
  const std::int64_t bj = d.b * d.j;
  const std::int64_t i = d.i;
  const std::int64_t u = d.u;
  const std::int64_t heads = d.h * d.b;
  return {
      {"dXQK", {.m = bj, .n = i, .k = 2 * i, .batch = 1}},
      {"dXQKV", {.m = bj, .n = i, .k = 3 * i, .batch = 1}},
      {"KV", {.m = bj, .n = 2 * i, .k = i, .batch = 1}},
      {"QKV", {.m = bj, .n = 3 * i, .k = i, .batch = 1}},
      {"dX1gamma, QKT", {.m = d.j, .n = d.k, .k = d.p, .batch = heads}},
      {"dX1QKT, dX2gamma, dX2QKT, gamma",
       {.m = d.j, .n = d.p, .k = d.k, .batch = heads}},
      {"dXlin2, lin1", {.m = bj, .n = u, .k = i, .batch = 1}},
      {"dXout, dXQ, out, Q", {.m = bj, .n = i, .k = i, .batch = 1}},
      {"dWlin1, dWlin2, dXlin1, lin2", {.m = bj, .n = i, .k = u, .batch = 1}},
      {"dWout, dWQ", {.m = i, .n = i, .k = bj, .batch = 1}},
      {"dWQK", {.m = 2 * i, .n = i, .k = bj, .batch = 1}},
      {"dWQKV", {.m = 3 * i, .n = i, .k = bj, .batch = 1}},
  };
}

std::string GemmLayout::Describe() const {
  return StrFormat("%c%c%c%s", a_transposed ? 'T' : 'N',
                   b_transposed ? 'T' : 'N', c_transposed ? 'T' : 'N',
                   batch_interleaved ? "+interleaved" : "");
}

std::vector<GemmLayout> AllGemmLayouts(bool batched) {
  std::vector<GemmLayout> out;
  for (int mask = 0; mask < 8; ++mask) {
    for (int inter = 0; inter < (batched ? 2 : 1); ++inter) {
      out.push_back({.a_transposed = (mask & 1) != 0,
                     .b_transposed = (mask & 2) != 0,
                     .c_transposed = (mask & 4) != 0,
                     .batch_interleaved = inter != 0});
    }
  }
  return out;
}

double GemmLayoutFactor(const GemmLayout& layout, const GemmExtents& e) {
  // NN GEMMs stream both operands contiguously; transposing A costs less
  // than transposing B (A panels are staged through shared memory anyway);
  // writing C transposed serializes stores. Interleaved batch strides break
  // L2 locality across the batch.
  double f = 1.0;
  if (layout.a_transposed) f *= 0.96;
  if (layout.b_transposed) f *= 0.91;
  if (layout.c_transposed) f *= 0.93;
  if (layout.batch_interleaved) f *= 0.90;
  // Deterministic shape interaction: some transpose combos tile better for
  // particular extents (this is why exhaustive search beats rules).
  std::uint64_t h = static_cast<std::uint64_t>(e.m * 1315423911 + e.n) ^
                    (static_cast<std::uint64_t>(e.k) << 17) ^
                    (static_cast<std::uint64_t>(layout.a_transposed) << 1) ^
                    (static_cast<std::uint64_t>(layout.b_transposed) << 2) ^
                    (static_cast<std::uint64_t>(layout.c_transposed) << 3);
  h ^= h >> 23;
  h *= 0x2127'599B'F432'5C37ull;
  h ^= h >> 47;
  f *= 0.97 + 0.03 * (static_cast<double>(h % 1000) / 999.0);
  return f;
}

std::vector<ContractionSample> SweepContraction(const sim::GpuModel& model,
                                                const GemmExtents& extents,
                                                bool tensor_cores,
                                                bool batched) {
  std::vector<ContractionSample> samples;
  for (const auto& layout : AllGemmLayouts(batched)) {
    const double lf = GemmLayoutFactor(layout, extents);
    for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
      sim::ContractionConfig cfg{
          .tensor_cores = tensor_cores, .algorithm = algo, .layout_factor = lf};
      samples.push_back({.layout = layout,
                         .algorithm = algo,
                         .tensor_cores = tensor_cores,
                         .timing = model.Contraction(extents, cfg)});
    }
  }
  return samples;
}

ContractionSample BestSample(
    const std::vector<ContractionSample>& samples) {
  require(!samples.empty(), "sweep produced no samples");
  return *std::min_element(samples.begin(), samples.end(),
                           [](const auto& a, const auto& b) {
                             return a.timing.time_us < b.timing.time_us;
                           });
}

}  // namespace xflow::layouts
