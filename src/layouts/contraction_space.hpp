// Layout / algorithm search space for tensor contractions (Sec. V-A).
//
// For every contraction in encoder training we benchmark, through the
// device model, all equivalent operand/output layouts (transpositions and
// batch-stride interleavings expressible to a cuBLAS-style API), every
// algorithm, and both tensor-core and fp16-FPU execution -- the data behind
// the paper's Fig. 4 violins.
#pragma once

#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "sim/kernel_model.hpp"

namespace xflow::layouts {

/// One Fig. 4 tile: a contraction shape appearing in encoder training,
/// with the paper's label (equivalent contractions share a tile).
struct ContractionTile {
  std::string label;       // e.g. "dXlin2, lin1"
  GemmExtents extents;     // cuBLAS convention, M >= N as in the figure
};

/// The twelve tiles of Fig. 4 for the given model dimensions.
std::vector<ContractionTile> PaperContractionTiles(const graph::ModelDims& d);

/// Layout choice for one GEMM call: operand transpositions plus whether the
/// batch dimension is interleaved (strided) or outermost (contiguous).
struct GemmLayout {
  bool a_transposed = false;
  bool b_transposed = false;
  bool c_transposed = false;
  bool batch_interleaved = false;

  [[nodiscard]] std::string Describe() const;
};

/// All feasible layout choices (8 transposition combos x batch placement).
std::vector<GemmLayout> AllGemmLayouts(bool batched);

/// Efficiency of a layout choice in (0, 1]; deterministic per extents.
double GemmLayoutFactor(const GemmLayout& layout, const GemmExtents& e);

/// One evaluated configuration.
struct ContractionSample {
  GemmLayout layout;
  int algorithm = 0;
  bool tensor_cores = true;
  sim::KernelTiming timing;
};

/// Evaluate every (layout x algorithm) configuration of a contraction.
std::vector<ContractionSample> SweepContraction(const sim::GpuModel& model,
                                                const GemmExtents& extents,
                                                bool tensor_cores,
                                                bool batched);

/// Best configuration of a sweep (by time).
ContractionSample BestSample(
    const std::vector<ContractionSample>& samples);

}  // namespace xflow::layouts
