#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace xflow {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "table needs at least one column");
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "row width must match header width");
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddSeparator() { rows_.emplace_back(); }

std::string AsciiTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      s += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

DistributionSummary Summarize(std::vector<double> samples, int bins) {
  require(!samples.empty(), "cannot summarize an empty sample");
  require(bins > 0, "bins must be positive");
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };

  DistributionSummary s;
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = quantile(0.25);
  s.median = quantile(0.5);
  s.q3 = quantile(0.75);

  s.density.assign(static_cast<std::size_t>(bins), 0.0);
  const double span = s.max - s.min;
  for (double v : samples) {
    int b = span > 0 ? static_cast<int>((v - s.min) / span * bins) : 0;
    b = std::clamp(b, 0, bins - 1);
    s.density[static_cast<std::size_t>(b)] += 1.0;
  }
  const double peak = *std::max_element(s.density.begin(), s.density.end());
  if (peak > 0) {
    for (double& d : s.density) d /= peak;
  }
  return s;
}

std::string RenderDensity(const DistributionSummary& s) {
  static constexpr std::string_view kRamp = " .:-=+*#%@";
  std::string out;
  out.reserve(s.density.size());
  for (double d : s.density) {
    const auto idx = static_cast<std::size_t>(
        std::round(d * static_cast<double>(kRamp.size() - 1)));
    out += kRamp[idx];
  }
  return out;
}

}  // namespace xflow
