// Counter-based random number generation (Philox4x32-10).
//
// The paper's dropout kernels use cuRAND (Philox) to generate masks on the
// fly inside fused kernels. A counter-based generator is essential there:
// every (seed, offset) pair yields the same value regardless of evaluation
// order, so a fused kernel and its unfused reference produce identical masks.
#pragma once

#include <array>
#include <cstdint>

namespace xflow {

/// Philox4x32-10 block cipher; stateless, keyed by a 64-bit seed.
/// Generates 4 x 32-bit random words per 128-bit counter value.
class Philox4x32 {
 public:
  explicit Philox4x32(std::uint64_t seed) : key_{Lo(seed), Hi(seed)} {}

  /// The 4 random words for counter value `ctr` (10 rounds).
  [[nodiscard]] std::array<std::uint32_t, 4> Block(std::uint64_t ctr) const;

  /// The i-th random 32-bit word of the stream (i = 4*ctr + lane).
  [[nodiscard]] std::uint32_t At(std::uint64_t index) const {
    return Block(index / 4)[index % 4];
  }

  /// Uniform float in [0, 1) derived from the i-th word.
  [[nodiscard]] float UniformAt(std::uint64_t index) const {
    // 24 mantissa-ish bits; exact in float, never returns 1.0.
    return static_cast<float>(At(index) >> 8) * (1.0f / 16777216.0f);
  }

 private:
  static constexpr std::uint32_t Lo(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }
  static constexpr std::uint32_t Hi(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32);
  }

  std::array<std::uint32_t, 2> key_;
};

/// Deterministic dropout mask source: keep element i iff
/// Uniform(seed, i) >= drop_probability.
class DropoutMask {
 public:
  DropoutMask(std::uint64_t seed, float drop_probability)
      : gen_(seed), drop_prob_(drop_probability) {}

  [[nodiscard]] bool Keep(std::uint64_t index) const {
    return gen_.UniformAt(index) >= drop_prob_;
  }
  /// Scale applied to kept elements (inverted dropout).
  [[nodiscard]] float Scale() const {
    return drop_prob_ < 1.0f ? 1.0f / (1.0f - drop_prob_) : 0.0f;
  }
  [[nodiscard]] float drop_probability() const { return drop_prob_; }

 private:
  Philox4x32 gen_;
  float drop_prob_;
};

/// Small splitmix64 helper for seeding / hashing.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace xflow
