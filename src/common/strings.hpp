// printf-style string formatting and small string helpers (GCC 12 lacks
// std::format, so we provide a thin type-safe-enough wrapper).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace xflow {

/// snprintf into a std::string.
[[gnu::format(printf, 1, 2)]] std::string StrFormat(const char* fmt, ...);

/// Join elements with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Human-readable quantity with SI-ish suffix, e.g. 4.19e6 -> "4.2M".
std::string HumanCount(double value);

/// Format microseconds as "123 us" or "1.23 ms" as appropriate.
std::string HumanTimeUs(double us);

}  // namespace xflow
