#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace xflow {

namespace {

thread_local bool t_in_worker = false;
// Identity of the pool (if any) whose worker this thread is, plus its
// slot index in that pool. A worker of pool A calling into pool B must
// use B's inbox, not A's deque, so slot lookups are always paired with a
// pool identity check.
thread_local const void* t_pool = nullptr;
thread_local int t_slot = -1;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  const char* env = std::getenv("XFLOW_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 1 || v > 1024) {
    // A malformed value must not silently fall back to hardware
    // concurrency: a misconfigured run (XFLOW_THREADS=8x, =-2, =99999)
    // would otherwise look exactly like an unconfigured one. Warn once.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "xflow: ignoring invalid XFLOW_THREADS=\"%s\" (expected an "
                   "integer in [1, 1024]); using hardware concurrency\n",
                   env);
    }
    return 0;
  }
  return static_cast<int>(v);
}

/// One queued task: a borrowed closure plus the group awaiting it.
struct Task {
  FunctionRef<void()> fn;
  TaskGroup* group;
};

/// Chase-lev discipline over a guarded deque: the owning worker pushes
/// and pops at the bottom (LIFO keeps a task's freshly spawned subtasks
/// hot in its own cache), thieves take from the top (FIFO steals the
/// oldest -- typically largest -- piece of work). The mutex keeps the
/// structure simple and TSan-provable; at task granularity (graph ops
/// and loop-helper tickets, not individual indices) it is uncontended.
class WorkDeque {
 public:
  void PushBottom(const Task& t) {
    MutexLock lock(mu_);
    q_.push_back(t);
  }
  bool PopBottom(Task* out) {
    MutexLock lock(mu_);
    if (q_.empty()) return false;
    *out = q_.back();
    q_.pop_back();
    return true;
  }
  bool StealTop(Task* out) {
    MutexLock lock(mu_);
    if (q_.empty()) return false;
    *out = q_.front();
    q_.pop_front();
    return true;
  }

 private:
  Mutex mu_;
  std::deque<Task> q_ XFLOW_GUARDED_BY(mu_);
};

}  // namespace

namespace detail {
/// Private bridge between the pool internals and TaskGroup (the pool's
/// nested Impl cannot be named in a friend declaration from TaskGroup).
struct TaskGroupAccess {
  static void Run(const Task& t) noexcept {
    if (!t.group->aborted_.load(std::memory_order_relaxed)) {
      try {
        t.fn();
      } catch (...) {
        t.group->RecordError();
      }
    }
    t.group->FinishOne();
  }
  static ThreadPool::Impl* PoolImpl(const TaskGroup& g) {
    return g.pool_.impl_;
  }
};
}  // namespace detail

struct ThreadPool::Impl {
  int threads = 1;
  // queues[s] belongs to worker slot s; external threads (including the
  // application thread driving a top-level loop) share the inbox.
  std::vector<std::unique_ptr<WorkDeque>> queues;
  WorkDeque inbox;

  // Sleep/wake handshake. `queued` counts tasks sitting in any queue;
  // waiters re-check it under sleep_mu before blocking, and pushers
  // bump it and then acquire/release sleep_mu before notifying, so a
  // waiter that saw zero is guaranteed to be inside wait() by the time
  // the notification fires.
  Mutex sleep_mu;
  std::condition_variable_any cv;
  bool shutdown XFLOW_GUARDED_BY(sleep_mu) = false;
  std::atomic<std::int64_t> queued{0};

  // Live TaskGroup / ParallelFor count, for the resize-safety contract.
  std::atomic<int> active_groups{0};

  std::vector<std::thread> workers;

  void Push(const Task& t) {
    if (t_pool == this && t_slot >= 0) {
      queues[static_cast<std::size_t>(t_slot)]->PushBottom(t);
    } else {
      inbox.PushBottom(t);
    }
    queued.fetch_add(1, std::memory_order_relaxed);
    { MutexLock lock(sleep_mu); }  // order the push before the notify
    cv.notify_all();
  }

  /// Own deque first (bottom), then the inbox, then the other workers'
  /// deques (top), scanning from the next slot so thieves spread out.
  bool TryGetWork(Task* out) {
    const int slot = (t_pool == this) ? t_slot : -1;
    if (slot >= 0 && queues[static_cast<std::size_t>(slot)]->PopBottom(out)) {
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (slot < 0 && inbox.PopBottom(out)) {
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    const int w = static_cast<int>(queues.size());
    for (int d = 0; d < w; ++d) {
      const int victim = (slot < 0 ? d : (slot + 1 + d) % w);
      if (victim == slot) continue;
      if (queues[static_cast<std::size_t>(victim)]->StealTop(out)) {
        queued.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    if (slot >= 0 && inbox.StealTop(out)) {
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void NotifyAll() {
    { MutexLock lock(sleep_mu); }
    cv.notify_all();
  }

  void WorkerLoop(int slot) {
    t_in_worker = true;
    t_pool = this;
    t_slot = slot;
    for (;;) {
      Task t{[] {}, nullptr};
      if (TryGetWork(&t)) {
        detail::TaskGroupAccess::Run(t);
        continue;
      }
      MutexLock lock(sleep_mu);
      if (shutdown) return;
      if (queued.load(std::memory_order_relaxed) != 0) continue;
      cv.wait(sleep_mu);
      if (shutdown) return;
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(std::max(1, threads)) {
  impl_->threads = threads_;
  impl_->queues.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->queues.push_back(std::make_unique<WorkDeque>());
  }
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_, i] { impl->WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_->active_groups.load(std::memory_order_acquire) != 0) {
    // A throwing destructor would terminate with no context; fail loudly
    // instead. Queued tasks reference TaskGroups (and usually stack
    // frames) that are about to disappear -- there is no safe recovery.
    std::fprintf(stderr,
                 "xflow: fatal: ThreadPool destroyed while %d task group(s) "
                 "/ parallel loop(s) are still active\n",
                 impl_->active_groups.load(std::memory_order_relaxed));
    std::abort();
  }
  {
    MutexLock lock(impl_->sleep_mu);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::InWorker() { return t_in_worker; }

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup(ThreadPool& pool) : pool_(pool) {
  pool_.impl_->active_groups.fetch_add(1, std::memory_order_acq_rel);
}

TaskGroup::TaskGroup() : TaskGroup(ThreadPool::Global()) {}

TaskGroup::~TaskGroup() {
  if (pending_.load(std::memory_order_acquire) != 0) {
    try {
      Wait();
    } catch (...) {
      // The explicit-Wait contract is the error path; the destructor only
      // guarantees the lifetime invariant (no task outlives its closure).
    }
  }
  pool_.impl_->active_groups.fetch_sub(1, std::memory_order_acq_rel);
}

void TaskGroup::Spawn(FunctionRef<void()> task) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  const Task t{task, this};
  if (pool_.threads() == 1) {
    // No workers: run inline, immediately, in spawn order -- the
    // deterministic degenerate schedule.
    detail::TaskGroupAccess::Run(t);
    return;
  }
  pool_.impl_->Push(t);
}

void TaskGroup::Wait() {
  ThreadPool::Impl* impl = pool_.impl_;
  while (pending_.load(std::memory_order_acquire) != 0) {
    Task t{[] {}, nullptr};
    if (impl->TryGetWork(&t)) {
      // Help: the stolen task may belong to any group (running it cannot
      // deadlock -- it only ever waits on tasks that waiters also run).
      detail::TaskGroupAccess::Run(t);
      continue;
    }
    MutexLock lock(impl->sleep_mu);
    if (pending_.load(std::memory_order_acquire) == 0) break;
    if (impl->queued.load(std::memory_order_relaxed) != 0) continue;
    impl->cv.wait(impl->sleep_mu);
  }
  RethrowIfError();
}

void TaskGroup::RecordError() noexcept {
  aborted_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(err_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void TaskGroup::FinishOne() noexcept {
  // The final decrement releases the waiter, which may return from
  // Wait() and destroy this group immediately -- so nothing on `this`
  // may be touched after the fetch_sub. The pool's impl is safe to use
  // past that point: workers are joined before the pool deletes it, and
  // an external helper reaching here is inside some group's Wait() on
  // the same pool, so active_groups != 0 and the pool destructor would
  // abort rather than free it.
  ThreadPool::Impl* impl = pool_.impl_;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out wakes the (possibly sleeping) waiter.
    impl->NotifyAll();
  }
}

void TaskGroup::RethrowIfError() {
  if (!aborted_.load(std::memory_order_acquire)) return;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  aborted_.store(false, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// ParallelFor

namespace {

/// Shared state of one loop: fixed chunk grid + per-region claim
/// cursors. Chunk c always covers [c*grain, min((c+1)*grain, n)) -- a
/// pure function of (n, grain) -- so region shape and claim order can
/// never change what any index computes, only which thread runs it.
struct LoopState {
  FunctionRef<void(std::int64_t)> fn;
  std::int64_t n;
  std::int64_t grain;
  std::int64_t chunks;
  int regions;
  const std::atomic<bool>* aborted;
  std::unique_ptr<std::atomic<std::int64_t>[]> cursor;

  LoopState(FunctionRef<void(std::int64_t)> f, std::int64_t n_,
            std::int64_t grain_, std::int64_t chunks_, int regions_,
            const std::atomic<bool>* aborted_)
      : fn(f),
        n(n_),
        grain(grain_),
        chunks(chunks_),
        regions(regions_),
        aborted(aborted_),
        cursor(new std::atomic<std::int64_t>[static_cast<std::size_t>(
            regions_)]) {
    for (int r = 0; r < regions; ++r) {
      cursor[r].store(RegionBegin(r), std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::int64_t RegionBegin(int r) const {
    return chunks * r / regions;
  }

  /// Claims and runs chunks, own region first, then the rest in ring
  /// order. With the same chunking used by the first-touch fills, the
  /// worker on slot `home` re-claims the rows it faulted in whenever the
  /// load is balanced; stealing across regions only kicks in when a
  /// region runs dry.
  void Drain(int home) {
    for (int d = 0; d < regions; ++d) {
      const int r = (home + d) % regions;
      const std::int64_t hi = RegionBegin(r + 1);
      for (;;) {
        const std::int64_t c = cursor[r].fetch_add(1, std::memory_order_relaxed);
        if (c >= hi) break;
        const std::int64_t begin = c * grain;
        const std::int64_t end = std::min(begin + grain, n);
        for (std::int64_t i = begin; i < end; ++i) fn(i);
        if (aborted->load(std::memory_order_relaxed)) return;
      }
    }
  }
};

/// Home region of the calling thread within `pool`: workers use their
/// slot, everyone else (the application thread, or a worker of some
/// other pool) takes the last region -- the one no worker claims first.
int HomeRegion(const void* pool_impl, int regions) {
  if (t_pool == pool_impl && t_slot >= 0 && t_slot < regions) return t_slot;
  return regions - 1;
}

}  // namespace

void ThreadPool::ParallelFor(std::int64_t n, std::int64_t grain,
                             FunctionRef<void(std::int64_t)> fn) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (threads_ == 1 || chunks <= 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(*this);
  std::atomic<bool> stop{false};
  LoopState loop(fn, n, grain, chunks, threads_, &stop);
  // Helper tickets: claimed by idle workers (or threads helping in their
  // own Wait). Each ticket drains from the claiming thread's home
  // region, so affinity follows the executing thread, not the ticket.
  // A throwing chunk flips `stop` so every participant quits claiming.
  auto drain = [&loop, &stop, impl = impl_] {
    try {
      loop.Drain(HomeRegion(impl, loop.regions));
    } catch (...) {
      stop.store(true, std::memory_order_relaxed);
      throw;
    }
  };
  const std::int64_t helpers =
      std::min<std::int64_t>(threads_ - 1, chunks - 1);
  for (std::int64_t h = 0; h < helpers; ++h) group.Spawn(drain);
  try {
    loop.Drain(HomeRegion(impl_, loop.regions));  // the caller participates
  } catch (...) {
    // Stop helpers claiming further chunks, quiesce, then propagate.
    stop.store(true, std::memory_order_relaxed);
    group.Wait();
    throw;
  }
  group.Wait();
}

// ---------------------------------------------------------------------------
// Global pool

namespace {
Mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool XFLOW_GUARDED_BY(g_global_mu);
}  // namespace

int ThreadPool::ResolveGlobalThreads() {
  const int env = EnvThreads();
  return env > 0 ? env : HardwareThreads();
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(ResolveGlobalThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  MutexLock lock(g_global_mu);
  if (g_global_pool) {
    require(g_global_pool->impl_->active_groups.load(
                std::memory_order_acquire) == 0,
            "ThreadPool::SetGlobalThreads: cannot resize the pool while "
            "task groups or parallel loops are active on it; wait for "
            "in-flight work to finish first");
  }
  g_global_pool = std::make_unique<ThreadPool>(std::max(1, threads));
}

void ParallelFor(std::int64_t n, std::int64_t grain,
                 FunctionRef<void(std::int64_t)> fn) {
  ThreadPool::Global().ParallelFor(n, grain, fn);
}

void* ThreadScratch(std::size_t bytes) {
  // One arena per OS thread (pool workers and application threads alike),
  // grown monotonically: kernels request tile-sized buffers repeatedly, so
  // after warm-up this never allocates on the hot path. Only stable
  // within a chunk body -- see the header contract.
  thread_local std::vector<std::byte> arena;
  if (arena.size() < bytes) arena.resize(bytes);
  return arena.data();
}

}  // namespace xflow
