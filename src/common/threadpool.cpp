#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace xflow {

namespace {

thread_local bool t_in_worker = false;
// True on a thread currently coordinating a ParallelFor; a nested call
// from that thread must run inline rather than republish a job on the
// already-busy pool.
thread_local bool t_in_parallel = false;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  const char* env = std::getenv("XFLOW_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 1 || v > 1024) {
    // A malformed value must not silently fall back to hardware
    // concurrency: a misconfigured run (XFLOW_THREADS=8x, =-2, =99999)
    // would otherwise look exactly like an unconfigured one. Warn once.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "xflow: ignoring invalid XFLOW_THREADS=\"%s\" (expected an "
                   "integer in [1, 1024]); using hardware concurrency\n",
                   env);
    }
    return 0;
  }
  return static_cast<int>(v);
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex run_mu;  // held by the thread coordinating the current job
  Mutex mu;
  // condition_variable_any waits on the annotated Mutex directly; workers
  // wait on work_cv for a new job, ParallelFor waits on done_cv for
  // completion.
  std::condition_variable_any work_cv;
  std::condition_variable_any done_cv;
  std::vector<std::thread> workers;

  // Current job, identified by a generation counter so every worker runs
  // each job exactly once.
  std::uint64_t generation XFLOW_GUARDED_BY(mu) = 0;
  int workers_left XFLOW_GUARDED_BY(mu) = 0;
  bool shutdown XFLOW_GUARDED_BY(mu) = false;
  // fn/n/grain are written under mu before the generation bump but read
  // lock-free by workers after they observe the new generation -- the
  // mu release/acquire of the handshake orders the accesses. That
  // publication protocol is beyond the static analysis, so these stay
  // unannotated on purpose.
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::int64_t n = 0;
  std::int64_t grain = 1;
  std::atomic<std::int64_t> next{0};

  void RunChunks() {
    while (true) {
      const std::int64_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      const std::int64_t end = std::min(begin + grain, n);
      for (std::int64_t i = begin; i < end; ++i) (*fn)(i);
    }
  }

  void WorkerLoop() {
    t_in_worker = true;
    std::uint64_t seen = 0;
    while (true) {
      {
        MutexLock lock(mu);
        while (!shutdown && generation == seen) work_cv.wait(mu);
        if (shutdown) return;
        seen = generation;
      }
      RunChunks();
      {
        MutexLock lock(mu);
        if (--workers_left == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(std::max(1, threads)) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::ParallelFor(std::int64_t n, std::int64_t grain,
                             const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  // Inline fallback: single-threaded pool, nested call from a worker or a
  // coordinating thread, or a loop that fits in one chunk anyway.
  if (threads_ == 1 || t_in_worker || t_in_parallel || n <= grain) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Only one top-level loop can own the workers; a concurrent caller on
  // another application thread falls back to inline execution rather
  // than clobbering the in-flight job state.
  std::unique_lock<std::mutex> run_lock(impl_->run_mu, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  t_in_parallel = true;
  {
    MutexLock lock(impl_->mu);
    impl_->fn = &fn;
    impl_->n = n;
    impl_->grain = grain;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->workers_left = static_cast<int>(impl_->workers.size());
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->RunChunks();  // the caller participates
  {
    MutexLock lock(impl_->mu);
    while (impl_->workers_left != 0) impl_->done_cv.wait(impl_->mu);
    impl_->fn = nullptr;
  }
  t_in_parallel = false;
}

bool ThreadPool::InWorker() { return t_in_worker; }

namespace {
Mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool XFLOW_GUARDED_BY(g_global_mu);
}  // namespace

int ThreadPool::ResolveGlobalThreads() {
  const int env = EnvThreads();
  return env > 0 ? env : HardwareThreads();
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(ResolveGlobalThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  MutexLock lock(g_global_mu);
  g_global_pool = std::make_unique<ThreadPool>(std::max(1, threads));
}

void ParallelFor(std::int64_t n, std::int64_t grain,
                 const std::function<void(std::int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(n, grain, fn);
}

void* ThreadScratch(std::size_t bytes) {
  // One arena per OS thread (pool workers and application threads alike),
  // grown monotonically: kernels request tile-sized buffers repeatedly, so
  // after warm-up this never allocates on the hot path.
  thread_local std::vector<std::byte> arena;
  if (arena.size() < bytes) arena.resize(bytes);
  return arena.data();
}

}  // namespace xflow
