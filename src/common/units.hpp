// Unit conventions shared across the library.
//
// The paper reports "Gflop" in the binary convention (2^30 flop) -- this is
// the only convention under which its Table III entries (e.g. 24 Gflop for
// the fused Q/K/V projection at I=1024, B=8, J=512) are self-consistent.
// Element counts are decimal millions.
#pragma once

#include <cstdint>

namespace xflow {

inline constexpr double kGiFlop = 1024.0 * 1024.0 * 1024.0;  // 2^30
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// flop -> paper-convention Gflop.
inline constexpr double ToGflop(double flop) { return flop / kGiFlop; }
/// element count -> paper-convention "(1e6)" column.
inline constexpr double ToMega(double count) { return count / kMega; }

}  // namespace xflow
