#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace xflow {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      options_[arg.substr(2)] = "";
    } else {
      options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "option --" + name + " expects an integer");
  return v;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "option --" + name + " expects a number");
  return v;
}

std::string ArgParser::GetString(const std::string& name,
                                 std::string fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

bool ArgParser::GetFlag(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  return it->second != "0" && it->second != "false";
}

bool ArgParser::Has(const std::string& name) const {
  queried_[name] = true;
  return options_.contains(name);
}

std::vector<std::string> ArgParser::UnknownOptions() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace xflow
