#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace xflow {

namespace {

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      options_[arg.substr(2)] = "";
    } else {
      options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const auto v = std::strtoll(s.c_str(), &end, 10);
  // The whole value must parse: trailing garbage ("8x") and out-of-range
  // magnitudes are errors, never silent truncation.
  require(!s.empty() && end == s.c_str() + s.size() && errno != ERANGE,
          "option --" + name + " expects an integer, got \"" + s + "\"");
  return v;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  // Same full-consumption rule as GetInt. Overflow to infinity and
  // explicit inf/nan are errors; underflow to (sub)normal tiny values is
  // accepted.
  require(!s.empty() && end == s.c_str() + s.size() && !std::isinf(v) &&
              !std::isnan(v),
          "option --" + name + " expects a number, got \"" + s + "\"");
  return v;
}

std::string ArgParser::GetString(const std::string& name,
                                 std::string fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

bool ArgParser::GetFlag(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  const std::string v = AsciiLower(it->second);
  if (v.empty() || v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  require(false, "option --" + name + " expects a boolean (1/true/on/yes or " +
                     "0/false/off/no), got \"" + it->second + "\"");
  return false;  // unreachable
}

bool ArgParser::Has(const std::string& name) const {
  queried_[name] = true;
  return options_.contains(name);
}

std::vector<std::string> ArgParser::UnknownOptions() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace xflow
