// Non-owning callable reference: two words (object pointer + invoker),
// no allocation, no virtual dispatch, trivially copyable.
//
// std::function on the ParallelFor hot path cost an allocation check and
// a double indirection per loop launch; every call site passes a stack
// lambda that outlives the loop, so ownership was never needed.
// FunctionRef borrows the callable for the duration of the call -- the
// referenced object MUST outlive every invocation (for TaskGroup::Spawn
// that means: until the group's Wait returns).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace xflow {

template <class Signature>
class FunctionRef;  // undefined; use the R(Args...) partial specialization

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable invocable as R(Args...). Implicit on purpose so
  /// `ParallelFor(n, g, [&](std::int64_t i) { ... })` keeps working
  /// unchanged. The callable is borrowed, never copied.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace xflow
