#include "common/rng.hpp"

namespace xflow {

namespace {
constexpr std::uint32_t kPhiloxM0 = 0xD251'1F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E'8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E37'79B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67'AE85u;

inline std::uint32_t MulHi(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
}
inline std::uint32_t MulLo(std::uint32_t a, std::uint32_t b) {
  return a * b;
}
}  // namespace

std::array<std::uint32_t, 4> Philox4x32::Block(std::uint64_t ctr) const {
  std::array<std::uint32_t, 4> c = {static_cast<std::uint32_t>(ctr),
                                    static_cast<std::uint32_t>(ctr >> 32), 0u,
                                    0u};
  std::array<std::uint32_t, 2> k = key_;
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = MulHi(kPhiloxM0, c[0]);
    const std::uint32_t lo0 = MulLo(kPhiloxM0, c[0]);
    const std::uint32_t hi1 = MulHi(kPhiloxM1, c[2]);
    const std::uint32_t lo1 = MulLo(kPhiloxM1, c[2]);
    c = {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
    k[0] += kPhiloxW0;
    k[1] += kPhiloxW1;
  }
  return c;
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E37'79B9'7F4A'7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
  return z ^ (z >> 31);
}

}  // namespace xflow
