// Minimal command-line parsing for benches and examples:
//   --name=value  or  --flag
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xflow {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      std::string fallback) const;
  /// True when --name was given (bare, or with a true-ish value). Values
  /// are compared case-insensitively: 1/true/on/yes are true, 0/false/off/no
  /// are false, anything else throws InvalidArgument.
  [[nodiscard]] bool GetFlag(const std::string& name) const;

  [[nodiscard]] bool Has(const std::string& name) const;
  /// Arguments that did not look like --options, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Options that were provided but never queried (typo detection).
  [[nodiscard]] std::vector<std::string> UnknownOptions() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace xflow
