// Software IEEE 754 binary16 ("half") arithmetic.
//
// The paper trains with FP16 storage and FP32 accumulation (mixed precision,
// Sec. III-D). This type reproduces that numerics contract on hardware
// without native fp16: values are stored as 16-bit patterns and every
// arithmetic operation round-trips through float.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace xflow {

/// IEEE 754 binary16 value. Conversions use round-to-nearest-even.
class Half {
 public:
  constexpr Half() = default;
  Half(float f) : bits_(FromFloat(f)) {}  // NOLINT: implicit by design

  /// Reinterpret a raw bit pattern as a Half.
  static constexpr Half FromBits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  operator float() const { return ToFloat(bits_); }  // NOLINT: implicit

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  Half& operator+=(Half o) { return *this = Half(float(*this) + float(o)); }
  Half& operator-=(Half o) { return *this = Half(float(*this) - float(o)); }
  Half& operator*=(Half o) { return *this = Half(float(*this) * float(o)); }
  Half& operator/=(Half o) { return *this = Half(float(*this) / float(o)); }

  friend bool operator==(Half a, Half b) { return float(a) == float(b); }
  friend bool operator!=(Half a, Half b) { return float(a) != float(b); }
  friend bool operator<(Half a, Half b) { return float(a) < float(b); }
  friend bool operator<=(Half a, Half b) { return float(a) <= float(b); }
  friend bool operator>(Half a, Half b) { return float(a) > float(b); }
  friend bool operator>=(Half a, Half b) { return float(a) >= float(b); }

  /// float -> binary16 bit pattern, round-to-nearest-even, with proper
  /// handling of subnormals, infinities and NaN.
  static std::uint16_t FromFloat(float f);
  /// binary16 bit pattern -> float (exact).
  static float ToFloat(std::uint16_t bits);

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Half h);

/// Number of bytes per element for the storage type used by the paper (fp16).
inline constexpr int kHalfBytes = 2;

}  // namespace xflow
