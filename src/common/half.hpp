// Software IEEE 754 binary16 ("half") arithmetic.
//
// The paper trains with FP16 storage and FP32 accumulation (mixed precision,
// Sec. III-D). This type reproduces that numerics contract on hardware
// without native fp16: values are stored as 16-bit patterns and every
// arithmetic operation round-trips through float.
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>

namespace xflow {

/// IEEE 754 binary16 value. Conversions use round-to-nearest-even.
class Half {
 public:
  constexpr Half() = default;
  Half(float f) : bits_(FromFloat(f)) {}  // NOLINT: implicit by design

  /// Reinterpret a raw bit pattern as a Half.
  static constexpr Half FromBits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  operator float() const { return ToFloat(bits_); }  // NOLINT: implicit

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  Half& operator+=(Half o) { return *this = Half(float(*this) + float(o)); }
  Half& operator-=(Half o) { return *this = Half(float(*this) - float(o)); }
  Half& operator*=(Half o) { return *this = Half(float(*this) * float(o)); }
  Half& operator/=(Half o) { return *this = Half(float(*this) / float(o)); }

  friend bool operator==(Half a, Half b) { return float(a) == float(b); }
  friend bool operator!=(Half a, Half b) { return float(a) != float(b); }
  friend bool operator<(Half a, Half b) { return float(a) < float(b); }
  friend bool operator<=(Half a, Half b) { return float(a) <= float(b); }
  friend bool operator>(Half a, Half b) { return float(a) > float(b); }
  friend bool operator>=(Half a, Half b) { return float(a) >= float(b); }

  /// float -> binary16 bit pattern, round-to-nearest-even, with proper
  /// handling of subnormals, infinities and NaN. Defined inline (below) so
  /// the conversion folds into kernel row loops instead of costing a
  /// function call per element.
  static std::uint16_t FromFloat(float f);
  /// binary16 bit pattern -> float (exact).
  static float ToFloat(std::uint16_t bits);

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Half h);

/// Number of bytes per element for the storage type used by the paper (fp16).
inline constexpr int kHalfBytes = 2;

// Conversion definitions. Pure integer bit manipulation (no FP environment
// dependence), kept in the header so every kernel loop inlines them.

inline std::uint16_t Half::FromFloat(float f) {
  constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
  constexpr int kF32MantBits = 23;
  constexpr int kF16MantBits = 10;
  constexpr int kMantShift = kF32MantBits - kF16MantBits;  // 13

  const auto u = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign =
      static_cast<std::uint16_t>((u & kF32SignMask) >> 16);
  const std::int32_t exp =
      static_cast<std::int32_t>((u >> kF32MantBits) & 0xFF) - 127;
  std::uint32_t mant = u & 0x007F'FFFFu;

  if (exp == 128) {  // Inf or NaN
    if (mant != 0) return static_cast<std::uint16_t>(sign | 0x7E00u);  // qNaN
    return static_cast<std::uint16_t>(sign | 0x7C00u);                 // Inf
  }
  if (exp > 15) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp >= -14) {  // normal range
    // Round mantissa to 10 bits, round-to-nearest-even.
    std::uint32_t rounded = mant + 0x0FFFu + ((mant >> kMantShift) & 1u);
    std::uint32_t e16 = static_cast<std::uint32_t>(exp + 15);
    if (rounded & 0x0080'0000u) {  // mantissa overflow bumps exponent
      rounded = 0;
      ++e16;
      if (e16 >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    return static_cast<std::uint16_t>(sign | (e16 << kF16MantBits) |
                                      (rounded >> kMantShift));
  }
  if (exp >= -25) {  // subnormal range
    // Implicit leading 1 becomes explicit; shift right by the deficit.
    mant |= 0x0080'0000u;
    const int shift = -exp - 14 + kMantShift;  // in [14, 24]
    const std::uint32_t half_ulp = 1u << (shift - 1);
    const std::uint32_t lsb = (mant >> shift) & 1u;
    const std::uint32_t rounded = mant + half_ulp - 1u + lsb;
    return static_cast<std::uint16_t>(sign | (rounded >> shift));
  }
  return sign;  // underflow to signed zero
}

inline float Half::ToFloat(std::uint16_t bits) {
  constexpr int kF32MantBits = 23;
  constexpr int kF16MantBits = 10;
  constexpr int kMantShift = kF32MantBits - kF16MantBits;  // 13

  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> kF16MantBits) & 0x1Fu;
  std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x0400u) == 0);
      mant &= 0x03FFu;
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << kF32MantBits) |
            (mant << kMantShift);
    }
  } else if (exp == 31) {
    out = sign | 0x7F80'0000u | (mant << kMantShift);  // Inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << kF32MantBits) | (mant << kMantShift);
  }
  return std::bit_cast<float>(out);
}

}  // namespace xflow
