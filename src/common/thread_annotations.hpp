// Clang -Wthread-safety annotations plus a minimal annotated mutex.
//
// libstdc++'s std::mutex carries no capability attributes, so locking it
// is invisible to Clang's thread-safety analysis. The Mutex/MutexLock
// pair below wraps it with the attributes the analysis needs; under any
// other compiler (or without -Wthread-safety) every macro expands to
// nothing and the wrappers cost exactly a std::mutex.
#pragma once

#include <mutex>

#if defined(__clang__)
#define XFLOW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define XFLOW_THREAD_ANNOTATION(x)
#endif

// NOLINTBEGIN(bugprone-macro-parentheses): attribute arguments are
// capability expressions and must be pasted unparenthesized.
#define XFLOW_CAPABILITY(x) XFLOW_THREAD_ANNOTATION(capability(x))
#define XFLOW_SCOPED_CAPABILITY XFLOW_THREAD_ANNOTATION(scoped_lockable)
#define XFLOW_GUARDED_BY(x) XFLOW_THREAD_ANNOTATION(guarded_by(x))
#define XFLOW_PT_GUARDED_BY(x) XFLOW_THREAD_ANNOTATION(pt_guarded_by(x))
#define XFLOW_REQUIRES(...) \
  XFLOW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define XFLOW_ACQUIRE(...) \
  XFLOW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define XFLOW_RELEASE(...) \
  XFLOW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define XFLOW_TRY_ACQUIRE(...) \
  XFLOW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define XFLOW_EXCLUDES(...) XFLOW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define XFLOW_NO_THREAD_SAFETY_ANALYSIS \
  XFLOW_THREAD_ANNOTATION(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)

namespace xflow {

/// std::mutex with capability attributes. BasicLockable, so
/// std::condition_variable_any can wait on it directly (the analysis does
/// not model the wait's release/reacquire, which is exactly right: the
/// capability is held across the wait from the caller's point of view).
class XFLOW_CAPABILITY("mutex") Mutex {
 public:
  void lock() XFLOW_ACQUIRE() { mu_.lock(); }
  void unlock() XFLOW_RELEASE() { mu_.unlock(); }
  bool try_lock() XFLOW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock of a Mutex (std::lock_guard is as unannotated as
/// std::mutex).
class XFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XFLOW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() XFLOW_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace xflow
