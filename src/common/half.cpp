#include "common/half.hpp"

#include <ostream>

namespace xflow {

std::ostream& operator<<(std::ostream& os, Half h) { return os << float(h); }

}  // namespace xflow
