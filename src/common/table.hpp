// ASCII table and distribution ("violin") rendering for bench output.
#pragma once

#include <string>
#include <vector>

namespace xflow {

/// Column-aligned ASCII table. Benches use this to print the paper's tables.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Five-number summary plus a density sketch of a sample, the textual
/// equivalent of one violin in the paper's Figs. 4 and 5.
struct DistributionSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t count = 0;
  /// Histogram over [min, max], normalized to [0, 1] per bin.
  std::vector<double> density;
};

/// Summarize samples with `bins` histogram bins. Requires non-empty input.
DistributionSummary Summarize(std::vector<double> samples, int bins = 24);

/// One-line density sketch, e.g. " .:|#|:. " (wider = more configurations).
std::string RenderDensity(const DistributionSummary& s);

}  // namespace xflow
