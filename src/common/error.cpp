#include "common/error.hpp"

#include <sstream>

namespace xflow::detail {

[[noreturn]] void fail(std::string_view kind, std::string_view msg,
                       const std::source_location& loc) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << loc.file_name() << ":" << loc.line()
     << " in " << loc.function_name() << "]";
  if (kind == "invalid argument") throw InvalidArgument(os.str());
  throw ContractViolation(os.str());
}

}  // namespace xflow::detail
