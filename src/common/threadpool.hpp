// Persistent thread pool for data-parallel loops over independent work items.
//
// The pool is deliberately simple -- no work stealing, no futures: a single
// ParallelFor primitive hands out contiguous index chunks from an atomic
// cursor, which is all the GEMM macro-tile grid and batched einsum loops
// need. Determinism contract: ParallelFor only changes *which thread* runs
// an index, never the work done for that index, so any kernel whose items
// are independent produces bit-identical results at every thread count.
//
// Thread count resolution order: SetGlobalThreads() (e.g. a --threads CLI
// flag) > XFLOW_THREADS environment variable > hardware concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace xflow {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller of ParallelFor is the final
  /// participant. `threads < 1` is clamped to 1 (inline execution, no
  /// workers).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing chunks of `grain`
  /// consecutive indices across the workers plus the calling thread, and
  /// blocks until all n invocations have returned. Runs inline (no
  /// handoff) when the loop is too small to split, the pool has one
  /// thread, or the caller is itself a pool worker -- nested ParallelFor
  /// therefore serializes instead of deadlocking.
  void ParallelFor(std::int64_t n, std::int64_t grain,
                   const std::function<void(std::int64_t)>& fn);

  /// True when called from inside a ParallelFor worker thread.
  static bool InWorker();

  /// Process-wide pool, created on first use with the resolved thread
  /// count (see header comment for the resolution order).
  static ThreadPool& Global();
  /// Rebuilds the global pool with `threads` workers (clamped to >= 1).
  /// Not safe concurrently with ParallelFor on the global pool.
  static void SetGlobalThreads(int threads);
  /// Thread count the global pool would use if created now.
  static int ResolveGlobalThreads();

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Shorthand for ThreadPool::Global().ParallelFor(n, grain, fn).
void ParallelFor(std::int64_t n, std::int64_t grain,
                 const std::function<void(std::int64_t)>& fn);

/// Per-thread scratch arena for kernels that stage tiles (e.g. the ops
/// engine's transpose-on-the-fly path). Returns a buffer of at least
/// `bytes` bytes, aligned for any scalar type, private to the calling
/// thread and reused across calls: the next ThreadScratch call on the same
/// thread may return the same (possibly reallocated) memory, so a caller
/// must be done with the previous buffer before requesting another. The
/// contents are uninitialized.
[[nodiscard]] void* ThreadScratch(std::size_t bytes);

}  // namespace xflow
