// Work-stealing task scheduler for data-parallel loops and task graphs.
//
// Two primitives share one pool of persistent workers:
//
//   * TaskGroup -- Spawn/Wait over arbitrary task closures. Each worker
//     owns a chase-lev style deque (owner pushes and pops at the bottom,
//     LIFO; thieves steal from the top, FIFO), threads outside the pool
//     submit through a shared inbox. A thread blocked in Wait() does not
//     idle: it pops its own deque, then steals, so nested groups (a task
//     that spawns and waits on subtasks) cannot deadlock -- every waiter
//     is also an executor.
//   * ParallelFor -- compatibility shim on top of TaskGroup: the index
//     space is cut into fixed chunks of `grain` consecutive indices and
//     participants claim chunks from per-region atomic cursors (regions
//     follow the worker that likely first-touched the rows, see
//     ParallelFor below).
//
// Determinism contract (repo-wide, unchanged since PR 1): the chunk
// boundaries are a pure function of (n, grain) and reduction kernels
// combine fixed chunks in a fixed order, so scheduling only ever changes
// *which thread* runs a chunk, never what that chunk computes. Results
// are bit-identical at every thread count and under any steal order.
//
// Thread count resolution order: SetGlobalThreads() (e.g. a --threads CLI
// flag) > XFLOW_THREADS environment variable > hardware concurrency.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>

#include "common/function_ref.hpp"

namespace xflow {

class TaskGroup;

namespace detail {
struct TaskGroupAccess;
}  // namespace detail

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the thread calling ParallelFor or
  /// TaskGroup::Wait is the final participant. `threads < 1` is clamped
  /// to 1 (inline execution, no workers).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing chunks of `grain`
  /// consecutive indices across the workers plus the calling thread, and
  /// blocks until all n invocations have returned. Runs inline when the
  /// loop fits in one chunk or the pool has one thread. Chunks are dealt
  /// from per-region cursors: a participant first drains the region
  /// matching its own worker slot, then scans the others -- for a loop
  /// whose rows were first-touch initialized by the same chunking (see
  /// Workspace/Tensor fills), a worker therefore re-claims the rows it
  /// faulted in, keeping chunks cache- and NUMA-local in the balanced
  /// case. Nested calls (from inside a task or another loop) spawn onto
  /// the caller's own deque, so idle workers help while a busy pool
  /// degrades to inline execution. Throws the first chunk exception
  /// after the loop has quiesced.
  void ParallelFor(std::int64_t n, std::int64_t grain,
                   FunctionRef<void(std::int64_t)> fn);

  /// True when called from inside a pool worker thread.
  static bool InWorker();

  /// Process-wide pool, created on first use with the resolved thread
  /// count (see header comment for the resolution order).
  static ThreadPool& Global();
  /// Rebuilds the global pool with `threads` workers (clamped to >= 1).
  /// Resizing while any TaskGroup or ParallelFor is active on the global
  /// pool would tear down workers mid-task, so it throws InvalidArgument
  /// when active work is detected instead of racing.
  static void SetGlobalThreads(int threads);
  /// Thread count the global pool would use if created now.
  static int ResolveGlobalThreads();

 private:
  friend class TaskGroup;
  friend struct detail::TaskGroupAccess;
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// A set of spawned tasks that one thread waits on. Nested-safe: tasks
/// may create and wait on their own groups, and any thread blocked in
/// Wait() executes queued tasks (its own group's or others') instead of
/// idling. Spawned callables are borrowed (FunctionRef), so they must
/// stay alive until Wait() returns; the destructor waits for stragglers
/// for exactly that reason. Not movable: queued tasks point back at this
/// object.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  /// Group over the process-wide pool.
  TaskGroup();
  /// Waits for any still-pending tasks (swallowing their errors -- call
  /// Wait() explicitly to observe them) so spawned closures never
  /// outlive their referents.
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` for execution. On a worker thread of the pool the
  /// task goes to that worker's own deque (bottom); elsewhere to the
  /// shared inbox. On a single-threaded pool the task runs inline, in
  /// spawn order. If a task of this group has already thrown, the new
  /// task is recorded but will be skipped.
  void Spawn(FunctionRef<void()> task);

  /// Runs and steals tasks until every spawned task has finished, then
  /// rethrows the first exception any of them raised (remaining tasks of
  /// a failed group are skipped, not cancelled mid-run). The group is
  /// reusable afterwards.
  void Wait();

 private:
  friend struct detail::TaskGroupAccess;

  void RecordError() noexcept;
  void FinishOne() noexcept;
  void RethrowIfError();

  ThreadPool& pool_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> aborted_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;  // guarded by err_mu_
};

/// Shorthand for ThreadPool::Global().ParallelFor(n, grain, fn).
void ParallelFor(std::int64_t n, std::int64_t grain,
                 FunctionRef<void(std::int64_t)> fn);

/// Per-thread scratch arena for kernels that stage tiles (e.g. the ops
/// engine's transpose-on-the-fly path). Returns a buffer of at least
/// `bytes` bytes, aligned for any scalar type, private to the calling
/// thread and reused across calls: the next ThreadScratch call on the same
/// thread may return the same (possibly reallocated) memory, so a caller
/// must be done with the previous buffer before requesting another. The
/// contents are uninitialized. Because a thread blocked in Wait() (or
/// between chunks of a ParallelFor) may execute unrelated stolen tasks,
/// the buffer is only stable within a single chunk body: never hold a
/// ThreadScratch pointer across a ParallelFor, Spawn-heavy region, or
/// Wait.
[[nodiscard]] void* ThreadScratch(std::size_t bytes);

}  // namespace xflow
