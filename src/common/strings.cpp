#include "common/strings.hpp"

#include <cmath>
#include <cstdio>

namespace xflow {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanCount(double value) {
  const double a = std::fabs(value);
  if (a >= 1e9) return StrFormat("%.2fG", value / 1e9);
  if (a >= 1e6) return StrFormat("%.1fM", value / 1e6);
  if (a >= 1e3) return StrFormat("%.1fK", value / 1e3);
  return StrFormat("%.0f", value);
}

std::string HumanTimeUs(double us) {
  if (us >= 1000.0) return StrFormat("%.2f ms", us / 1000.0);
  return StrFormat("%.0f us", us);
}

}  // namespace xflow
