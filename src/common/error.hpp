// Error handling utilities: contract checks that throw with source location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xflow {

/// Thrown when a runtime contract (precondition, invariant) is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an operation is given invalid or inconsistent arguments.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void fail(std::string_view kind, std::string_view msg,
                       const std::source_location& loc);
}  // namespace detail

/// Precondition check: throws ContractViolation when `cond` is false.
inline void check(
    bool cond, std::string_view msg,
    const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail("check failed", msg, loc);
}

/// Argument validation: throws InvalidArgument when `cond` is false.
inline void require(
    bool cond, std::string_view msg,
    const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail("invalid argument", msg, loc);
}

}  // namespace xflow
