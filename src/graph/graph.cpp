#include "graph/graph.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::graph {

void DataflowGraph::AddTensor(std::string name, Shape shape, bool is_weight) {
  require(!tensors_.contains(name),
          StrFormat("duplicate tensor '%s'", name.c_str()));
  tensors_.emplace(name, TensorNode{name, std::move(shape), is_weight});
}

void DataflowGraph::AddOp(OpNode op) {
  for (const auto& in : op.inputs) {
    require(tensors_.contains(in),
            StrFormat("op '%s' reads undefined tensor '%s'", op.name.c_str(),
                      in.c_str()));
  }
  for (const auto& out : op.outputs) {
    require(tensors_.contains(out),
            StrFormat("op '%s' writes undeclared tensor '%s'", op.name.c_str(),
                      out.c_str()));
    require(!producer_.contains(out),
            StrFormat("tensor '%s' already has a producer", out.c_str()));
    producer_[out] = static_cast<int>(ops_.size());
  }
  for (const auto& other : ops_) {
    require(other.name != op.name,
            StrFormat("duplicate op '%s'", op.name.c_str()));
  }
  ops_.push_back(std::move(op));
}

void DataflowGraph::AddOpUnchecked(OpNode op) {
  for (const auto& out : op.outputs) {
    // First writer wins, matching what AddOp would have recorded.
    producer_.try_emplace(out, static_cast<int>(ops_.size()));
  }
  ops_.push_back(std::move(op));
}

bool DataflowGraph::HasTensor(const std::string& name) const {
  return tensors_.contains(name);
}

const TensorNode& DataflowGraph::tensor(const std::string& name) const {
  const auto it = tensors_.find(name);
  require(it != tensors_.end(),
          StrFormat("unknown tensor '%s'", name.c_str()));
  return it->second;
}

const OpNode& DataflowGraph::op(const std::string& name) const {
  for (const auto& o : ops_) {
    if (o.name == name) return o;
  }
  require(false, StrFormat("unknown op '%s'", name.c_str()));
  return ops_.front();
}

int DataflowGraph::ProducerOf(const std::string& tensor_name) const {
  const auto it = producer_.find(tensor_name);
  return it == producer_.end() ? -1 : it->second;
}

std::vector<int> DataflowGraph::ConsumersOf(
    const std::string& tensor_name) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    for (const auto& in : ops_[i].inputs) {
      if (in == tensor_name) {
        out.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  return out;
}

std::int64_t DataflowGraph::InputElements(const OpNode& op) const {
  std::int64_t total = 0;
  for (const auto& in : op.inputs) total += tensor(in).shape.num_elements();
  return total;
}

std::int64_t DataflowGraph::OutputElements(const OpNode& op) const {
  std::int64_t total = 0;
  for (const auto& out : op.outputs) total += tensor(out).shape.num_elements();
  return total;
}

}  // namespace xflow::graph
