#include "graph/analysis.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace xflow::graph {

OpCost CostOf(const DataflowGraph& graph, const OpNode& op) {
  OpCost c;
  c.flop = op.flop;
  c.input_elems = graph.InputElements(op);
  c.output_elems = graph.OutputElements(op);
  return c;
}

Boundedness ClassifyBoundedness(const OpCost& cost) {
  const double ratio = cost.FlopPerIo();
  // One fused multiply-add per word is the balance point at fp16 on V100-
  // class hardware (~31 Tflop/s over ~0.45 Twords/s); an order of magnitude
  // either side is clearly bound by one resource.
  if (ratio < 2.0) return Boundedness::kIoDominated;
  if (ratio < 64.0) return Boundedness::kBalanced;
  return Boundedness::kFlopDominated;
}

std::string ToString(Boundedness b) {
  switch (b) {
    case Boundedness::kIoDominated:
      return "IO > flop";
    case Boundedness::kBalanced:
      return "IO ~ flop";
    case Boundedness::kFlopDominated:
      return "IO < flop";
  }
  return "?";
}

std::map<OpClass, double> FlopByClass(const DataflowGraph& graph) {
  std::map<OpClass, double> by_class{{OpClass::kContraction, 0.0},
                                     {OpClass::kStatNorm, 0.0},
                                     {OpClass::kElementwise, 0.0}};
  for (const auto& op : graph.ops()) by_class[op.cls()] += op.flop;
  return by_class;
}

double TotalFlop(const DataflowGraph& graph) {
  double total = 0;
  for (const auto& op : graph.ops()) total += op.flop;
  return total;
}

std::int64_t TotalDataMovementElems(const DataflowGraph& graph) {
  std::int64_t total = 0;
  for (const auto& op : graph.ops()) {
    total += graph.InputElements(op) + graph.OutputElements(op);
  }
  return total;
}

std::string ToDot(const DataflowGraph& graph) {
  std::ostringstream os;
  os << "digraph dataflow {\n  rankdir=TB;\n";
  for (const auto& [name, t] : graph.tensors()) {
    os << StrFormat("  \"%s\" [shape=ellipse%s];\n", name.c_str(),
                    t.is_weight ? " style=dashed" : "");
  }
  for (const auto& op : graph.ops()) {
    const auto cost = CostOf(graph, op);
    os << StrFormat(
        "  \"op:%s\" [shape=box label=\"%s\\n[%s] %s flop, %.2g flop/IO\"];\n",
        op.name.c_str(), op.name.c_str(), ClassGlyph(op.cls()).c_str(),
        HumanCount(cost.flop).c_str(), cost.FlopPerIo());
    for (const auto& in : op.inputs) {
      os << StrFormat("  \"%s\" -> \"op:%s\";\n", in.c_str(), op.name.c_str());
    }
    for (const auto& out : op.outputs) {
      os << StrFormat("  \"op:%s\" -> \"%s\";\n", op.name.c_str(),
                      out.c_str());
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace xflow::graph
