// Graph-level execution of a DataflowGraph over a liveness-planned arena.
//
// PR 4 made the dataflow graph the unit of *planning*: every container
// gets a fixed offset in one Workspace slab. This executor makes it the
// unit of *execution* too, closing the loop of the paper's data-centric
// recipe (Ivanov et al., MLSys 2021; cf. Rausch et al. 2021): the same
// graph that is analyzed, fused and planned is walked op by op, each
// tensor id resolving to its planned slab bytes, and each OpKind
// dispatching to the existing kernel library (EinsumInto, the softmax /
// layernorm / element-wise ops and the paper's fused kernels).
//
// Binding rules:
//   * planned containers (activations, masks, statistics, gradients of
//     activations) resolve to Workspace views at their MemoryPlan offset;
//   * weights, weight gradients and graph inputs (x, d_y) are *external*:
//     the caller binds them by reference (BindInput / BindOutput) and the
//     executor never copies or stages them;
//   * plan groups (the algebraically stacked Q/K/V blocks) resolve to one
//     contiguous view spanning their members, so stacked contractions
//     read/write a single tensor with zero-copy splits.
//
// With `use_fused_kernels` the schedule comes from fusion::FuseMaximally:
// recognized multi-op kernels (DRLN/BDRLN, BRD, BLNRD, BDRB, EBSB)
// dispatch as one fused launch -- the same launches the hand-wired layer
// performs -- so executor results are bitwise identical to the hand-wired
// path at every thread count. Steady-state Run calls perform zero tensor
// or workspace allocations: all views are non-owning aliases.
//
// With `use_task_scheduler` the schedule additionally runs *concurrently*:
// BuildSchedule derives a step-level dependency DAG (an edge whenever two
// steps touch a common container and at least one writes it, plus a
// planned-byte-overlap safety net), and RunRange dispatches every
// dependency-free step as a TaskGroup task over the work-stealing pool.
// Independent graph branches -- the attention head and the residual leg,
// the mutually independent dW/dX gradients -- overlap, while each step's
// internal ParallelFor splits across the remaining workers (nested groups
// are deadlock-free: a waiter steals instead of idling). Results stay
// bitwise identical to serial execution at every thread count: the
// dependency DAG serializes every pair of steps whose bytes could
// interact, and each kernel's determinism contract (fixed chunking, fixed
// reduction order) is scheduling-independent. One executor instance still
// serves one caller at a time; concurrency lives *inside* RunRange.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/memory_plan.hpp"
#include "graph/verify.hpp"
#include "tensor/einsum.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace xflow {
class TaskGroup;  // common/threadpool.hpp
}  // namespace xflow

namespace xflow::graph {

/// Default for ExecutorOptions::use_task_scheduler: the XFLOW_TASK_SCHED
/// environment variable when set (1/true/on/yes enables, 0/false/off/no
/// disables, case-insensitive), otherwise on. Read once per process.
bool TaskSchedulerDefault();

/// Runtime attributes the graph does not carry: the scalar knobs of the
/// softmax/layernorm/dropout kernels and the dropout seed schedule.
struct ExecutorOptions {
  /// Dispatch recognized multi-op groups as the paper's fused kernels;
  /// otherwise every op runs as its own kernel launch.
  bool use_fused_kernels = true;
  /// Run dependency-free schedule steps concurrently on the global
  /// work-stealing pool (see the header comment). Bitwise identical to
  /// serial execution; falls back to the serial loop on a single-thread
  /// pool.
  bool use_task_scheduler = TaskSchedulerDefault();
  /// Causal (decoder-style) attention masking inside the SM kernel.
  bool causal = false;
  float dropout_prob = 0.0f;
  float ln_eps = 1e-5f;
  /// The 1/sqrt(p) scaling folded into the SM/BS kernels (also used for
  /// standalone kScale nodes, which model the same attention scaling).
  float attn_scale = 1.0f;
  /// Query-position dim for causal masking (the paper's j).
  char attn_query_dim = 'j';
  /// Seeds for the dropout-bearing ops (kScaledSoftmax, kDropout), in
  /// graph appearance order -- the layer's per-site Philox streams.
  std::vector<std::uint64_t> dropout_seeds;
  /// Contiguous stacked blocks of the plan (PlanOptions::groups): a
  /// contraction whose input/output list matches a group's members
  /// reads/writes the group's single spanning view.
  std::vector<PlanGroup> stacked;
};

/// Interprets a DataflowGraph over a planned Workspace slab. `plan` and
/// `workspace` (typically a LayerArenaT's) must outlive the executor and
/// the workspace must already be reserved to plan->peak_bytes().
template <typename T>
class GraphExecutorT {
 public:
  GraphExecutorT(DataflowGraph graph, const MemoryPlan* plan,
                 Workspace* workspace, ExecutorOptions options);

  /// Binds a read-only external container (graph input or weight). The
  /// tensor's storage must stay valid and unmoved until the next rebind;
  /// rebinding every Run is cheap (an aliasing view, no copy).
  void BindInput(const std::string& name, const Tensor<T>& tensor);
  /// Binds a writable external container (a weight gradient). Must
  /// already have its graph shape's element count.
  void BindOutput(const std::string& name, Tensor<T>& tensor);
  /// Binds the token ids a kEmbed/kEmbedDW op reads (row-major [b][j]).
  /// Copied: the caller's vector need not outlive the call.
  void BindTokens(const std::vector<std::int32_t>& tokens);

  /// Executes the forward ops: [0, backward_begin).
  void Forward();
  /// Executes the backward ops: [backward_begin, num_ops).
  void Backward();

  /// Binding completeness as verifier diagnostics (rules binding/unbound,
  /// binding/read-only, binding/unused-writable): every graph container
  /// must resolve to a planned view or a bound external, and externals an
  /// op writes must have been bound writable. Checks the whole graph; the
  /// pre-flight runs the same rules restricted to the pass it is about to
  /// execute (Forward does not need the weight-gradient bindings yet).
  [[nodiscard]] VerifyReport VerifyBindings() const;

  /// Scalar loss of the last kMseLoss dispatch (also written to the
  /// graph's fp32 `loss` container). Meaningful after Backward() -- the
  /// loss head is the last forward op, but graphs with a loss produce
  /// d_y there, so Forward() already runs it.
  [[nodiscard]] double last_loss() const { return last_loss_; }

  /// Index of the first backward op (== ops().size() for forward-only
  /// graphs): the boundary between Forward() and Backward(). Checkpoint
  /// recompute clones count as backward -- they run directly before the
  /// backward ops that read their outputs.
  [[nodiscard]] int backward_begin() const { return backward_begin_; }
  [[nodiscard]] const DataflowGraph& graph() const { return graph_; }
  [[nodiscard]] const ExecutorOptions& options() const { return options_; }
  /// Number of scheduled kernel launches (fused groups count once).
  [[nodiscard]] int num_steps() const {
    return static_cast<int>(steps_.size());
  }

  /// True for the backward-pass kinds (the kinds appended after the
  /// forward graph by the builders).
  static bool IsBackwardKind(OpKind kind);

 private:
  /// One scheduled kernel launch: a single op, or a recognized fused
  /// group dispatched as one of the paper's fused kernels.
  enum class StepKind {
    kSingle,  // dispatch by OpKind
    kDRLN,    // [B]DRLN: bias + dropout + residual + layernorm
    kBRD,     // bias + ReLU + dropout
    kBLNRD,   // layernorm dX + dropout dX
    kBDRB,    // bias dW + dropout dX + ReLU dX + bias dW
    kEBSB,    // residual merge + layernorm dW
  };
  struct Step {
    StepKind kind = StepKind::kSingle;
    std::vector<int> ops;  // graph op indices, in graph order
  };
  /// Resolved operand roles of a contraction step (group names already
  /// substituted for stacked member lists).
  struct ContractionOperands {
    std::string a, b, out;
  };

  void BuildBindings();
  void BuildSchedule();
  void BuildStepDeps();
  /// Pre-flight: when PreflightVerifyEnabled() and a bind happened since
  /// the last successful check of this pass, re-verify (graph, plan) plus
  /// the bindings the ops in [begin_op, end_op) touch, and throw
  /// InvalidArgument on any error. Rebind-only re-checks are cheap (no
  /// fusion pass in the two-arg Verify).
  void MaybeVerify(int begin_op, int end_op, bool* pending);
  [[nodiscard]] VerifyReport VerifyBindingsInRange(int begin_op, int end_op,
                                                   bool warn_unused) const;
  void RunRange(int begin_step, int end_step);
  void RunRangeConcurrent(int begin_step, int end_step);
  /// One step's dispatch with kernel failures wrapped in the op-naming
  /// "[while executing ...]" context (shared by both execution modes).
  void RunStepChecked(int s);
  /// Task body of one scheduled step: run it, then release (and spawn)
  /// every in-range successor whose dependency count hits zero.
  void RunStepTask(int s);
  void Dispatch(const Step& step);
  void DispatchSingle(const OpNode& op, int op_index);

  [[nodiscard]] Tensor<T>& View(const std::string& name);
  [[nodiscard]] Tensor<T>& MutableView(const std::string& name);
  [[nodiscard]] TensorF& StatView(const std::string& name);
  [[nodiscard]] const PlanGroup* GroupMatching(
      const std::vector<std::string>& names, std::size_t begin,
      std::size_t count) const;

  DataflowGraph graph_;
  const MemoryPlan* plan_;
  Workspace* workspace_;
  ExecutorOptions options_;

  std::map<std::string, Tensor<T>> bound_;  // planned views + externals
  std::map<std::string, bool> writable_;    // externals only
  std::map<std::string, TensorF> stats_;    // fp32 statistics views
  std::map<int, EinsumSpec> specs_;         // parsed once per contraction
  std::map<int, ContractionOperands> contraction_operands_;
  std::map<int, std::uint64_t> dropout_seed_;  // per dropout-bearing op
  std::vector<std::int32_t> tokens_;           // kEmbed/kEmbedDW input
  double last_loss_ = 0;                       // kMseLoss scalar result
  std::vector<Step> steps_;
  // Step-level dependency DAG (BuildStepDeps): edges always point from
  // the earlier schedule index to the later one, so step j runs only
  // after every in-range predecessor in step_preds_[j]. runners_ and
  // remaining_ are preallocated scheduling state RunRangeConcurrent
  // reuses every call; run_ points at the active call's stack context
  // (one caller at a time, like the rest of the executor API).
  struct StepRunner {
    GraphExecutorT* self = nullptr;
    int step = 0;
    void operator()() const { self->RunStepTask(step); }
  };
  struct RunCtx {
    TaskGroup* group = nullptr;
    int begin_step = 0;
    int end_step = 0;
    std::atomic<bool> failed{false};
  };
  std::vector<std::vector<int>> step_preds_;
  std::vector<std::vector<int>> step_succs_;
  std::vector<StepRunner> runners_;
  std::unique_ptr<std::atomic<int>[]> remaining_;
  RunCtx* run_ = nullptr;
  int backward_begin_ = 0;       // op index
  int backward_begin_step_ = 0;  // step index
  // Re-verify before the next Forward/Backward (set on construction and
  // on every rebind, cleared per pass on a clean pre-flight).
  bool forward_preflight_pending_ = true;
  bool backward_preflight_pending_ = true;
};

using GraphExecutor = GraphExecutorT<Half>;

extern template class GraphExecutorT<Half>;
extern template class GraphExecutorT<float>;

}  // namespace xflow::graph
