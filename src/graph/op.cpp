#include "graph/op.hpp"

#include "common/error.hpp"

namespace xflow::graph {

OpClass ClassOf(OpKind kind) {
  switch (kind) {
    case OpKind::kContraction:
      return OpClass::kContraction;
    case OpKind::kScaledSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kMseLoss:
    case OpKind::kBiasDW:
    case OpKind::kScaledSoftmaxDX:
    case OpKind::kLayerNormDX:
    case OpKind::kLayerNormDW:
    case OpKind::kEmbedDW:
      return OpClass::kStatNorm;
    case OpKind::kBias:
    case OpKind::kReLU:
    case OpKind::kDropout:
    case OpKind::kResidual:
    case OpKind::kScale:
    case OpKind::kEmbed:
    case OpKind::kReLUDX:
    case OpKind::kDropoutDX:
    case OpKind::kResidualBwd:
      return OpClass::kElementwise;
  }
  check(false, "unknown OpKind");
  return OpClass::kElementwise;
}

bool IsBackwardOp(OpKind kind) {
  switch (kind) {
    case OpKind::kBiasDW:
    case OpKind::kReLUDX:
    case OpKind::kDropoutDX:
    case OpKind::kResidualBwd:
    case OpKind::kScaledSoftmaxDX:
    case OpKind::kLayerNormDX:
    case OpKind::kLayerNormDW:
    case OpKind::kEmbedDW:
      return true;
    case OpKind::kContraction:
    case OpKind::kBias:
    case OpKind::kReLU:
    case OpKind::kDropout:
    case OpKind::kResidual:
    case OpKind::kScale:
    case OpKind::kScaledSoftmax:
    case OpKind::kLayerNorm:
    case OpKind::kEmbed:
    case OpKind::kMseLoss:
      return false;
  }
  return false;
}

std::string ToString(OpClass cls) {
  switch (cls) {
    case OpClass::kContraction:
      return "tensor contraction";
    case OpClass::kStatNorm:
      return "statistical normalization";
    case OpClass::kElementwise:
      return "element-wise";
  }
  return "?";
}

std::string ClassGlyph(OpClass cls) {
  switch (cls) {
    case OpClass::kContraction:
      return "TC";
    case OpClass::kStatNorm:
      return "SN";
    case OpClass::kElementwise:
      return "EW";
  }
  return "??";
}

std::string ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kContraction: return "contraction";
    case OpKind::kBias: return "bias";
    case OpKind::kReLU: return "relu";
    case OpKind::kDropout: return "dropout";
    case OpKind::kResidual: return "residual";
    case OpKind::kScale: return "scale";
    case OpKind::kScaledSoftmax: return "scaled softmax";
    case OpKind::kLayerNorm: return "layernorm";
    case OpKind::kEmbed: return "embedding";
    case OpKind::kMseLoss: return "mse loss";
    case OpKind::kBiasDW: return "bias dW";
    case OpKind::kReLUDX: return "relu dX";
    case OpKind::kDropoutDX: return "dropout dX";
    case OpKind::kResidualBwd: return "residual bwd";
    case OpKind::kScaledSoftmaxDX: return "scaled softmax dX";
    case OpKind::kLayerNormDX: return "layernorm dX";
    case OpKind::kLayerNormDW: return "layernorm dW";
    case OpKind::kEmbedDW: return "embedding dW";
  }
  return "?";
}

double FlopPerElement(OpKind kind) {
  switch (kind) {
    case OpKind::kContraction:
      check(false, "contraction flop comes from the einsum spec");
      return 0;
    case OpKind::kBias:
    case OpKind::kDropout:
    case OpKind::kResidual:
    case OpKind::kScale:
    case OpKind::kEmbed:      // one table add per output element
    case OpKind::kBiasDW:
    case OpKind::kDropoutDX:
    case OpKind::kResidualBwd:
    case OpKind::kEmbedDW:    // one scatter-add per gradient element
      return 1;
    case OpKind::kReLU:
    case OpKind::kReLUDX:
      return 0;  // comparisons and selects, no arithmetic (paper counts 0)
    case OpKind::kScaledSoftmax:
      return 6;
    case OpKind::kScaledSoftmaxDX:
      return 5;
    case OpKind::kLayerNorm:
      return 7;
    case OpKind::kLayerNormDX:
      return 9;
    case OpKind::kLayerNormDW:
      return 4;
    case OpKind::kMseLoss:
      return 3;  // diff, square-accumulate, gradient scale
  }
  return 0;
}

}  // namespace xflow::graph
