// Dataflow graphs for training (the SDFG-lite of our recipe, Sec. III-A).
//
// Containers (named tensors) and operators form a bipartite graph; every
// operator edge represents exact data movement, so flop counts and access
// volumes -- the annotations of the paper's Figs. 1 and 2 -- are derivable
// by inspection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "tensor/einsum_class.hpp"
#include "tensor/shape.hpp"

namespace xflow::graph {

/// A data container node.
struct TensorNode {
  std::string name;
  Shape shape;
  bool is_weight = false;  // parameters (and their gradients)
};

/// An operator node. `independent_dims`/`reduction_dims` define its
/// iteration space, the basis of the fusion rules (Sec. IV).
struct OpNode {
  std::string name;
  OpKind kind = OpKind::kContraction;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::string einsum;  // contractions only
  std::vector<DimExt> independent_dims;
  std::vector<DimExt> reduction_dims;
  double flop = 0;
  /// Tensors, among `outputs`, that exist only to be stashed for the backward
  /// pass (e.g. dropout masks); they count toward data movement but carry no
  /// dataflow into the next forward operator.
  std::vector<std::string> saved_outputs;
  /// Non-empty when this op is a checkpoint-recompute clone: the name of the
  /// forward op it re-executes just before the backward pass. Clones reuse
  /// the original's dropout seed (bitwise-identical masks) and any clone
  /// output nothing consumes dies at its producer instead of living to the
  /// end of the graph.
  std::string recompute_of;
  /// Contractions only: the kernel class the lowering pass derived from
  /// this op's spec and operand extents (graph/lowering.hpp). Stays
  /// kUnclassified until LowerContractions runs; the verifier's
  /// graph/lowering-consistent rule re-derives and cross-checks it.
  EinsumClass lowered = EinsumClass::kUnclassified;

  [[nodiscard]] OpClass cls() const { return ClassOf(kind); }
};

/// Operator + container graph in topological order.
class DataflowGraph {
 public:
  /// Adds a container. Name must be unique.
  void AddTensor(std::string name, Shape shape, bool is_weight = false);
  /// Adds an operator; all inputs must already exist, outputs must have been
  /// added via AddTensor, and each tensor may have at most one producer.
  void AddOp(OpNode op);
  /// Adds an operator without AddOp's invariant checks. Exists so tests can
  /// build deliberately-broken graphs for the verifier; never use it to
  /// construct a graph meant to execute.
  void AddOpUnchecked(OpNode op);

  [[nodiscard]] bool HasTensor(const std::string& name) const;
  [[nodiscard]] const TensorNode& tensor(const std::string& name) const;
  [[nodiscard]] const std::vector<OpNode>& ops() const { return ops_; }
  /// Mutable op access for annotation passes (e.g. LowerContractions
  /// recording each contraction's EinsumClass); the graph's structure --
  /// names, edges, producers -- must not change through this.
  [[nodiscard]] std::vector<OpNode>& mutable_ops() { return ops_; }
  [[nodiscard]] const std::map<std::string, TensorNode>& tensors() const {
    return tensors_;
  }
  [[nodiscard]] const OpNode& op(const std::string& name) const;

  /// Index of the op producing `tensor_name`, or -1 for graph inputs.
  [[nodiscard]] int ProducerOf(const std::string& tensor_name) const;
  /// Indices of ops consuming `tensor_name`.
  [[nodiscard]] std::vector<int> ConsumersOf(
      const std::string& tensor_name) const;

  /// Total elements read by an op (the "Input (1e6)" column of Table III).
  [[nodiscard]] std::int64_t InputElements(const OpNode& op) const;
  /// Total elements written (the "Output (1e6)" column).
  [[nodiscard]] std::int64_t OutputElements(const OpNode& op) const;

 private:
  std::map<std::string, TensorNode> tensors_;
  std::vector<OpNode> ops_;
  std::map<std::string, int> producer_;  // tensor -> op index
};

}  // namespace xflow::graph
