#include "graph/memory_plan.hpp"

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::graph {

namespace {

/// A placement unit: one container, or one packed group of containers.
struct Unit {
  std::string name;  // group name, or the tensor name for singles
  std::vector<TensorPlacement> members;  // packed in order; offsets relative
  std::vector<int> ops;      // accessor ops (producers + consumers), deduped
  std::vector<int> writers;  // producer ops of the members, deduped
  std::size_t bytes = 0;                 // packed total
  std::size_t base = 0;                  // slab offset once placed
  int first_use = 0;
  int last_use = 0;
  bool pinned = false;
};

bool Overlaps(const Unit& a, const Unit& b) {
  return a.first_use <= b.last_use && b.first_use <= a.last_use;
}

/// Transitive successor closure over the op DAG, one bitset row per op
/// (own bit set). Builders emit ops in topological order (rule
/// graph/topo-order), so a reverse scan folds every consumer's closure
/// into its producer in one pass.
class OpReachability {
 public:
  explicit OpReachability(const DataflowGraph& graph)
      : words_((graph.ops().size() + 63) / 64),
        bits_(graph.ops().size() * words_, 0) {
    for (std::size_t i = graph.ops().size(); i-- > 0;) {
      std::uint64_t* row = bits_.data() + i * words_;
      row[i / 64] |= std::uint64_t{1} << (i % 64);
      for (const auto& out : graph.ops()[i].outputs) {
        for (int c : graph.ConsumersOf(out)) {
          const std::uint64_t* crow =
              bits_.data() + static_cast<std::size_t>(c) * words_;
          for (std::size_t w = 0; w < words_; ++w) row[w] |= crow[w];
        }
      }
    }
  }

  /// True when a path a -> ... -> b exists (a == b counts as reachable).
  [[nodiscard]] bool Reaches(int a, int b) const {
    return (bits_[static_cast<std::size_t>(a) * words_ +
                  static_cast<std::size_t>(b) / 64] >>
            (static_cast<std::size_t>(b) % 64)) &
           1u;
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

std::size_t AlignUp(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

}  // namespace

const TensorPlacement& MemoryPlan::at(const std::string& name) const {
  const auto it = placements_.find(name);
  require(it != placements_.end(),
          StrFormat("memory plan has no container '%s'", name.c_str()));
  return it->second;
}

double MemoryPlan::Reduction() const {
  if (naive_bytes_ == 0) return 0.0;
  return 1.0 - static_cast<double>(peak_bytes_) /
                   static_cast<double>(naive_bytes_);
}

std::string MemoryPlan::Summary() const {
  return StrFormat(
      "planned %zu containers into %zu bytes (naive sum %zu, %.1f%% saved)",
      placements_.size(), peak_bytes_, naive_bytes_, 100.0 * Reduction());
}

MemoryPlan MemoryPlan::FromPlacements(
    std::map<std::string, TensorPlacement> placements, std::size_t peak_bytes,
    std::size_t naive_bytes) {
  MemoryPlan plan;
  plan.placements_ = std::move(placements);
  plan.peak_bytes_ = peak_bytes;
  plan.naive_bytes_ = naive_bytes;
  return plan;
}

MemoryPlan PlanMemory(const DataflowGraph& graph,
                      const PlanOptions& options) {
  require(options.alignment > 0, "alignment must be positive");
  const int last_op = static_cast<int>(graph.ops().size()) - 1;
  auto elem_bytes = [&](const TensorNode& t) {
    return options.elem_bytes ? options.elem_bytes(t)
                              : options.default_elem_bytes;
  };
  // Liveness: producer .. last consumer. No in-graph consumer means the
  // tensor (an output or a forward-only saved tensor) is read after the
  // step, so it stays live to the end; graph inputs are pinned -- the
  // caller owns their contents for the whole step.
  auto kept = [&](const std::string& name) {
    return std::find(options.keep_live.begin(), options.keep_live.end(),
                     name) != options.keep_live.end();
  };
  auto excluded = [&](const std::string& name) {
    return std::find(options.exclude.begin(), options.exclude.end(), name) !=
           options.exclude.end();
  };
  // Fused spans: every member op of a span acts, for liveness purposes,
  // across the whole span -- its outputs are born at the span's first
  // index and its inputs stay live to the span's last.
  std::vector<std::pair<int, int>> op_span(graph.ops().size());
  for (std::size_t i = 0; i < op_span.size(); ++i) {
    op_span[i] = {static_cast<int>(i), static_cast<int>(i)};
  }
  for (const auto& span : options.fused_spans) {
    int lo = last_op + 1, hi = -1;
    std::vector<int> members;
    for (const auto& op_name : span) {
      for (std::size_t i = 0; i < graph.ops().size(); ++i) {
        if (graph.ops()[i].name == op_name) {
          members.push_back(static_cast<int>(i));
          lo = std::min(lo, static_cast<int>(i));
          hi = std::max(hi, static_cast<int>(i));
        }
      }
    }
    for (int i : members) op_span[static_cast<std::size_t>(i)] = {lo, hi};
  }
  auto interval = [&](const std::string& name) {
    const int producer = graph.ProducerOf(name);
    const int first =
        producer < 0 ? -1 : op_span[static_cast<std::size_t>(producer)].first;
    const auto consumers = graph.ConsumersOf(name);
    int last = -1;
    for (int c : consumers) {
      last = std::max(last, op_span[static_cast<std::size_t>(c)].second);
    }
    if (producer < 0 || consumers.empty() || kept(name)) {
      last = last_op;
      // Exceptions to "no consumer -> live to end", both checkpoint
      // artifacts (mirrored by the verifier's liveness re-derivation,
      // graph/verify.cpp):
      //  * an unread output of a recompute clone (e.g. the re-derived
      //    layer output "L<l>.y@r" -- the backward pass reads the stored
      //    original) is a byproduct of the clone kernel, not a result
      //    anyone reads after the step: it dies with its producer;
      //  * an original whose backward readers were retargeted to its "@r"
      //    clone has no consumers left, but it is not a step output
      //    either: it dies with its producer -- that early death is the
      //    entire point of checkpointing. Stored layer boundaries
      //    ("L<l>.y") are exempt: the top one IS the step output.
      if (producer >= 0 && consumers.empty() && !kept(name)) {
        const bool clone_byproduct =
            !graph.ops()[static_cast<std::size_t>(producer)]
                 .recompute_of.empty();
        const bool recompute_dropped =
            graph.HasTensor(name + "@r") && !name.ends_with(".y");
        if (clone_byproduct || recompute_dropped) {
          last = op_span[static_cast<std::size_t>(producer)].second;
        }
      }
    }
    return std::pair<int, int>{first, std::max(first, last)};
  };
  // Accessor/writer sets feed the concurrency check below; these are the
  // actual graph ops (rule plan/concurrent-overlap is op-level -- fused
  // atomicity is already handled by the span-widened liveness, which
  // keeps two liveness-disjoint units out of any common span).
  auto add_accessors = [&](const std::string& name, Unit& u) {
    const int producer = graph.ProducerOf(name);
    if (producer >= 0) {
      u.ops.push_back(producer);
      u.writers.push_back(producer);
    }
    for (int c : graph.ConsumersOf(name)) u.ops.push_back(c);
  };
  auto dedupe_accessors = [](Unit& u) {
    std::sort(u.ops.begin(), u.ops.end());
    u.ops.erase(std::unique(u.ops.begin(), u.ops.end()), u.ops.end());
    std::sort(u.writers.begin(), u.writers.end());
    u.writers.erase(std::unique(u.writers.begin(), u.writers.end()),
                    u.writers.end());
  };
  auto member_of = [&](const std::string& name) -> const PlanGroup* {
    for (const auto& g : options.groups) {
      for (const auto& m : g.members) {
        if (m == name) return &g;
      }
    }
    return nullptr;
  };

  std::vector<Unit> units;
  for (const auto& g : options.groups) {
    require(!g.members.empty(),
            StrFormat("plan group '%s' has no members", g.name.c_str()));
    // A group only applies when the graph has all of its members (e.g.
    // the backward gradient stack is absent from forward-only graphs);
    // a partially present group is a caller bug.
    std::size_t present = 0;
    for (const auto& name : g.members) present += graph.HasTensor(name);
    if (present == 0) continue;
    require(present == g.members.size(),
            StrFormat("plan group '%s' is only partially present",
                      g.name.c_str()));
    Unit u;
    u.name = g.name;
    u.first_use = last_op;
    u.last_use = -1;
    for (const auto& name : g.members) {
      const TensorNode& t = graph.tensor(name);
      require(!t.is_weight, StrFormat("plan group '%s' contains weight '%s'",
                                      g.name.c_str(), name.c_str()));
      const auto [first, last] = interval(name);
      u.first_use = std::min(u.first_use, first);
      u.last_use = std::max(u.last_use, last);
      u.pinned = u.pinned || first < 0;
      TensorPlacement p;
      p.name = name;
      p.shape = t.shape;
      p.elem_bytes = elem_bytes(t);
      p.offset = u.bytes;  // packed tightly: the stacked view needs
                           // members back to back with no padding
      p.bytes =
          static_cast<std::size_t>(t.shape.num_elements()) * p.elem_bytes;
      u.bytes += p.bytes;
      u.members.push_back(std::move(p));
      add_accessors(name, u);
    }
    dedupe_accessors(u);
    units.push_back(std::move(u));
  }
  for (const auto& [name, t] : graph.tensors()) {
    if (t.is_weight || excluded(name) || member_of(name) != nullptr) continue;
    Unit u;
    u.name = name;
    const auto [first, last] = interval(name);
    u.first_use = first;
    u.last_use = last;
    u.pinned = first < 0;
    TensorPlacement p;
    p.name = name;
    p.shape = t.shape;
    p.elem_bytes = elem_bytes(t);
    p.bytes = static_cast<std::size_t>(t.shape.num_elements()) * p.elem_bytes;
    u.bytes = p.bytes;
    u.members.push_back(std::move(p));
    add_accessors(name, u);
    dedupe_accessors(u);
    units.push_back(std::move(u));
  }

  // First-fit in a deterministic order: earlier birth first, then larger
  // blocks (classic interval-coloring heuristic), then by name.
  std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.first_use != b.first_use) return a.first_use < b.first_use;
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    return a.name < b.name;
  });

  // Concurrency safety: the executor may run graph-independent steps at
  // the same time, so liveness disjointness alone no longer licenses byte
  // reuse -- two units may share bytes only when every access to the
  // earlier-live one is ordered *by graph edges* before every access to
  // the later one (rule plan/concurrent-overlap). Liveness uses
  // span-widened op indices, so two liveness-disjoint units can never
  // share a fused step; the remaining question is pure reachability.
  const OpReachability reach(graph);
  // The executor's Forward()/Backward() call boundary is a hard
  // synchronization point (recompute clones count as backward -- they run
  // inside Backward()): accesses on opposite sides of it are ordered even
  // without a graph path. Without this, a checkpointed layer's recompute
  // clones -- which read only graph inputs and weights, so no path links
  // them to the layer's original forward ops -- could never reuse the
  // originals' bytes, defeating checkpointing. Mirrored by the verifier's
  // plan/concurrent-overlap rule (graph/verify.cpp).
  int bwd_begin = static_cast<int>(graph.ops().size());
  for (std::size_t i = 0; i < graph.ops().size(); ++i) {
    if (IsBackwardOp(graph.ops()[i].kind) ||
        !graph.ops()[i].recompute_of.empty()) {
      bwd_begin = static_cast<int>(i);
      break;
    }
  }
  // Every access to `early` must be a graph predecessor of every *write*
  // to `late` (or separated from it by the pass barrier); reads of `late`
  // are then ordered transitively through their member's producer edge.
  // (a == b cannot happen for liveness-disjoint units -- an op touching
  // both puts both intervals across itself -- but is rejected
  // defensively.)
  // A recompute-clone unit: everything it writes is produced by a
  // checkpoint-recompute twin. Clones read only graph inputs and weights,
  // so no graph path orders them against the subgraphs whose bytes they
  // should reuse (another layer's backward temporaries) -- yet that reuse
  // is exactly what makes checkpointing pay. It is still race-free: the
  // executor's byte-span safety net (BuildStepDeps) serializes
  // byte-sharing steps in schedule order, so for clone-involved pairs
  // kernel-level schedule order alone licenses reuse. The verifier
  // mirrors this by exempting clone-involved pairs from
  // plan/concurrent-overlap (their liveness is still checked).
  auto clone_unit = [&](const Unit& u) {
    for (int w : u.writers) {
      if (graph.ops()[static_cast<std::size_t>(w)].recompute_of.empty()) {
        return false;
      }
    }
    return !u.writers.empty();
  };
  auto ordered_before = [&](const Unit& early, const Unit& late) {
    if (early.ops.empty() || late.writers.empty()) return false;
    if (early.ops.back() < bwd_begin && late.writers.front() >= bwd_begin) {
      return true;  // accessor sets are sorted: all-forward vs all-backward
    }
    if (clone_unit(early) || clone_unit(late)) {
      // Kernel-level schedule order: every fused kernel touching `early`
      // must fully precede every kernel writing `late`.
      int early_end = -1;
      for (int a : early.ops) {
        early_end =
            std::max(early_end, op_span[static_cast<std::size_t>(a)].second);
      }
      int late_begin = static_cast<int>(graph.ops().size());
      for (int b : late.writers) {
        late_begin =
            std::min(late_begin, op_span[static_cast<std::size_t>(b)].first);
      }
      if (early_end < late_begin) return true;
    }
    for (int a : early.ops) {
      for (int b : late.writers) {
        if (a == b || !reach.Reaches(a, b)) return false;
      }
    }
    return true;
  };
  auto conflicts = [&](const Unit& a, const Unit& b) {
    if (Overlaps(a, b)) return true;
    return a.last_use < b.first_use ? !ordered_before(a, b)
                                    : !ordered_before(b, a);
  };

  MemoryPlan plan;
  std::vector<std::pair<std::size_t, std::size_t>> occupied;  // offset, end
  std::vector<Unit> placed;
  for (Unit& u : units) {
    occupied.clear();
    for (const Unit& v : placed) {
      if (conflicts(u, v)) occupied.emplace_back(v.base, v.base + v.bytes);
    }
    std::sort(occupied.begin(), occupied.end());
    std::size_t offset = 0;
    for (const auto& [begin, end] : occupied) {
      if (offset + u.bytes <= begin) break;
      offset = std::max(offset, AlignUp(end, options.alignment));
    }
    plan.peak_bytes_ = std::max(plan.peak_bytes_, offset + u.bytes);
    u.base = offset;
    for (TensorPlacement& p : u.members) {
      plan.naive_bytes_ += AlignUp(p.bytes, options.alignment);
      p.offset += offset;
      p.first_use = u.first_use;
      p.last_use = u.last_use;
      p.pinned = u.pinned;
      plan.placements_.emplace(p.name, p);
    }
    if (u.members.size() > 1) {
      TensorPlacement alias;
      alias.name = u.name;
      alias.elem_bytes = u.members.front().elem_bytes;
      alias.offset = offset;
      alias.bytes = u.bytes;
      alias.first_use = u.first_use;
      alias.last_use = u.last_use;
      alias.pinned = u.pinned;
      plan.placements_.emplace(u.name, std::move(alias));
    }
    u.members.clear();
    placed.push_back(std::move(u));
  }
  return plan;
}

}  // namespace xflow::graph
