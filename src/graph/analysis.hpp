// Dataflow analytics: the flop / data-volume annotations of Figs. 1 and 2
// and the class proportions of Table I.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "graph/graph.hpp"

namespace xflow::graph {

/// Exact cost annotation of one operator, derived purely from the graph.
struct OpCost {
  double flop = 0;                  // required flop
  std::int64_t input_elems = 0;     // elements read
  std::int64_t output_elems = 0;    // elements written
  /// flop per word moved (the edge annotations in Figs. 1-2).
  [[nodiscard]] double FlopPerIo() const {
    const auto io = static_cast<double>(input_elems + output_elems);
    return io > 0 ? flop / io : 0;
  }
};

OpCost CostOf(const DataflowGraph& graph, const OpNode& op);

/// The paper's coloring: IO > flop / IO ~ flop / IO < flop.
enum class Boundedness { kIoDominated, kBalanced, kFlopDominated };
Boundedness ClassifyBoundedness(const OpCost& cost);
std::string ToString(Boundedness b);

/// Aggregate flop per operator class (Table I's "% flop" numerator).
std::map<OpClass, double> FlopByClass(const DataflowGraph& graph);
double TotalFlop(const DataflowGraph& graph);

/// Total elements moved by every operator (reads + writes). This is the
/// unfused data-movement baseline used for the ~22.91% reduction claim.
std::int64_t TotalDataMovementElems(const DataflowGraph& graph);

/// Graphviz DOT rendering (containers as ellipses, ops as boxes with class
/// glyphs and flop / flop-per-IO annotations, like Fig. 1b).
std::string ToDot(const DataflowGraph& graph);

}  // namespace xflow::graph
