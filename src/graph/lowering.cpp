#include "graph/lowering.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::graph {

std::string ShapeStr(const Shape& s) {
  std::string out = s.names() + "[";
  for (int d = 0; d < s.rank(); ++d) {
    if (d > 0) out += ",";
    out += std::to_string(s.dims()[static_cast<std::size_t>(d)].extent);
  }
  return out + "]";
}

std::optional<Shape> StackShapes(const std::vector<const Shape*>& members,
                                 std::string* why) {
  const Shape& first = *members.front();
  if (first.rank() == 0) {
    *why = "stacked member has rank 0";
    return std::nullopt;
  }
  std::int64_t lead = 0;
  for (const Shape* m : members) {
    if (m->rank() != first.rank()) {
      *why = StrFormat("stacked members %s and %s differ in rank",
                       ShapeStr(first).c_str(), ShapeStr(*m).c_str());
      return std::nullopt;
    }
    for (int d = 1; d < first.rank(); ++d) {
      const auto dd = static_cast<std::size_t>(d);
      if (m->dims()[dd].extent != first.dims()[dd].extent) {
        *why = StrFormat("stacked members %s and %s differ beyond the "
                         "stack dim",
                         ShapeStr(first).c_str(), ShapeStr(*m).c_str());
        return std::nullopt;
      }
    }
    lead += m->dims().front().extent;
  }
  std::vector<DimExt> dims = first.dims();
  dims.front().extent = lead;
  return Shape(std::move(dims));
}

bool BindExtents(const Shape& shape, const std::string& letters, DimMap& ext,
                 std::string* why) {
  if (static_cast<std::size_t>(shape.rank()) != letters.size()) {
    *why = StrFormat("%s does not match spec dims '%s'",
                     ShapeStr(shape).c_str(), letters.c_str());
    return false;
  }
  std::string sorted_names = shape.names();
  std::string sorted_letters = letters;
  std::sort(sorted_names.begin(), sorted_names.end());
  std::sort(sorted_letters.begin(), sorted_letters.end());
  const bool by_name = sorted_names == sorted_letters;
  for (std::size_t d = 0; d < letters.size(); ++d) {
    const char letter = letters[d];
    const std::int64_t e =
        by_name ? shape.extent(letter) : shape.dims()[d].extent;
    const auto [it, inserted] = ext.emplace(letter, e);
    if (!inserted && it->second != e) {
      *why = StrFormat("dim '%c' would need extent %lld and %lld at once",
                       letter, static_cast<long long>(it->second),
                       static_cast<long long>(e));
      return false;
    }
  }
  return true;
}

namespace {

std::int64_t GroupExtent(const std::string& letters, const DimMap& ext) {
  std::int64_t total = 1;
  for (char d : letters) total *= ext.at(d);
  return total;
}

}  // namespace

std::optional<GemmExtents> DeriveContractionExtents(const DataflowGraph& g,
                                                    const OpNode& op,
                                                    const EinsumSpec& spec,
                                                    std::string* why) {
  for (const auto& name : op.inputs) {
    if (!g.HasTensor(name)) {
      *why = StrFormat("input '%s' is not declared", name.c_str());
      return std::nullopt;
    }
  }
  for (const auto& name : op.outputs) {
    if (!g.HasTensor(name)) {
      *why = StrFormat("output '%s' is not declared", name.c_str());
      return std::nullopt;
    }
  }
  auto shape_of = [&](const std::string& n) -> const Shape& {
    return g.tensor(n).shape;
  };
  // Output side, shared by every input candidate.
  Shape out_shape;
  if (op.outputs.size() == 1) {
    out_shape = shape_of(op.outputs.front());
  } else {
    std::vector<const Shape*> members;
    members.reserve(op.outputs.size());
    for (const auto& name : op.outputs) members.push_back(&shape_of(name));
    auto stacked = StackShapes(members, why);
    if (!stacked) return std::nullopt;
    out_shape = std::move(*stacked);
  }
  // Input candidates, in the same order the verifier's shape rule tries
  // them: plain (a, b), then b = stack(inputs[1..]) (the Q,K,V dX form),
  // then a = stack(inputs[..n-2]) (the Q,K,V dW form).
  struct Candidate {
    Shape a, b;
  };
  std::vector<Candidate> candidates;
  if (op.inputs.size() == 2) {
    candidates.push_back({shape_of(op.inputs[0]), shape_of(op.inputs[1])});
  } else if (op.inputs.size() > 2) {
    {
      std::vector<const Shape*> members;
      for (std::size_t i = 1; i < op.inputs.size(); ++i) {
        members.push_back(&shape_of(op.inputs[i]));
      }
      if (auto stacked = StackShapes(members, why)) {
        candidates.push_back({shape_of(op.inputs[0]), std::move(*stacked)});
      }
    }
    {
      std::vector<const Shape*> members;
      for (std::size_t i = 0; i + 1 < op.inputs.size(); ++i) {
        members.push_back(&shape_of(op.inputs[i]));
      }
      if (auto stacked = StackShapes(members, why)) {
        candidates.push_back({std::move(*stacked), shape_of(op.inputs.back())});
      }
    }
    if (candidates.empty()) return std::nullopt;  // *why set by StackShapes
  } else {
    *why = "contraction has fewer than 2 inputs";
    return std::nullopt;
  }
  std::string first_error;
  for (const Candidate& cand : candidates) {
    DimMap ext;
    std::string bind_why;
    const bool fits = BindExtents(cand.a, spec.a, ext, &bind_why) &&
                      BindExtents(cand.b, spec.b, ext, &bind_why) &&
                      BindExtents(out_shape, spec.out, ext, &bind_why);
    if (!fits) {
      if (first_error.empty()) first_error = bind_why;
      continue;
    }
    GemmExtents e;
    e.batch = GroupExtent(spec.batch_dims, ext);
    e.m = GroupExtent(spec.m_dims, ext);
    e.n = GroupExtent(spec.n_dims, ext);
    e.k = GroupExtent(spec.k_dims, ext);
    return e;
  }
  *why = std::move(first_error);
  return std::nullopt;
}

EinsumClass DeriveLoweredClass(const DataflowGraph& g, const OpNode& op) {
  if (op.kind != OpKind::kContraction || op.einsum.empty()) {
    return EinsumClass::kUnclassified;
  }
  EinsumSpec spec;
  try {
    spec = EinsumSpec::Parse(op.einsum);
  } catch (const InvalidArgument&) {
    return EinsumClass::kUnclassified;
  }
  std::string why;
  const auto extents = DeriveContractionExtents(g, op, spec, &why);
  if (!extents) return EinsumClass::kUnclassified;
  return ClassifyContraction(*extents);
}

std::size_t LowerContractions(DataflowGraph& g) {
  std::size_t lowered = 0;
  for (OpNode& op : g.mutable_ops()) {
    if (op.kind != OpKind::kContraction) continue;
    if (op.lowered != EinsumClass::kUnclassified) continue;
    const EinsumClass cls = DeriveLoweredClass(g, op);
    if (cls == EinsumClass::kUnclassified) continue;
    op.lowered = cls;
    ++lowered;
  }
  return lowered;
}

}  // namespace xflow::graph
