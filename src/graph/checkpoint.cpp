#include "graph/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "graph/analysis.hpp"

namespace xflow::graph {
namespace {

std::size_t AlignUp(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

/// Roofline time of one kernel on `spec`: launch overhead plus the higher
/// of the compute roof (tensor cores for contractions, fp16 FPUs
/// otherwise) and the bandwidth roof at fp16 element size.
double OpSeconds(const DataflowGraph& graph, const OpNode& op,
                 const sim::DeviceSpec& spec) {
  const OpCost cost = CostOf(graph, op);
  const double bytes =
      2.0 * static_cast<double>(cost.input_elems + cost.output_elems);
  const double peak = op.kind == OpKind::kContraction ? spec.tensor_core_flops
                                                      : spec.fp16_flops;
  return spec.kernel_launch_us * 1e-6 +
         std::max(cost.flop / peak, bytes / spec.mem_bandwidth);
}

/// First op index of the backward pass (every forward op, including the
/// loss head, precedes it by construction in BuildEncoderStack).
int BackwardBegin(const DataflowGraph& graph) {
  for (std::size_t i = 0; i < graph.ops().size(); ++i) {
    if (IsBackwardOp(graph.ops()[i].kind)) return static_cast<int>(i);
  }
  return static_cast<int>(graph.ops().size());
}

std::size_t ElemBytes(const PlanOptions& options, const TensorNode& t) {
  return options.elem_bytes ? options.elem_bytes(t)
                            : options.default_elem_bytes;
}

}  // namespace

CheckpointedStackPlan PlanCheckpointedStack(
    const ModelDims& dims, StackGraphOptions base,
    const StackPlanOptionsFn& options_for, std::size_t memory_budget_bytes,
    const sim::DeviceSpec& spec) {
  require(base.include_backward,
          "checkpoint planning needs the backward pass in the graph");
  require(static_cast<bool>(options_for), "options_for must be callable");
  base.recompute_layers.clear();

  auto build = [&](std::vector<int> recompute) {
    std::sort(recompute.begin(), recompute.end());
    StackGraphOptions o = base;
    o.recompute_layers = std::move(recompute);
    DataflowGraph g = BuildEncoderStack(dims, o);
    MemoryPlan p = PlanMemory(g, options_for(g));
    return std::pair<DataflowGraph, MemoryPlan>{std::move(g), std::move(p)};
  };

  // Per-layer droppable bytes (saved interior activations the backward
  // pass reads) and recompute cost, measured on the stored-everything
  // graph.
  auto [base_graph, base_plan] = build({});
  const PlanOptions base_options = options_for(base_graph);
  const int bwd_begin = BackwardBegin(base_graph);
  struct LayerCost {
    int layer = 0;
    std::size_t droppable_bytes = 0;
    double recompute_seconds = 0;
    std::vector<std::string> droppable;  // the saved interior activations
  };
  std::vector<LayerCost> layers;
  for (int l = 0; l < base.num_layers; ++l) {
    LayerCost lc;
    lc.layer = l;
    const std::string prefix = StrFormat("L%d.", l);
    const std::string boundary = StrFormat("L%d.y", l);
    std::set<std::string> seen;
    for (int oi = 0; oi < bwd_begin; ++oi) {
      const OpNode& op = base_graph.ops()[static_cast<std::size_t>(oi)];
      if (!op.name.starts_with(prefix)) continue;
      lc.recompute_seconds += OpSeconds(base_graph, op, spec);
      for (const std::string& out : op.outputs) {
        if (out == boundary || seen.contains(out)) continue;
        const TensorNode& t = base_graph.tensor(out);
        if (t.is_weight) continue;
        bool read_in_backward = false;
        for (int c : base_graph.ConsumersOf(out)) {
          if (c >= bwd_begin) read_in_backward = true;
        }
        if (!read_in_backward) continue;
        seen.insert(out);
        lc.droppable.push_back(out);
        lc.droppable_bytes +=
            AlignUp(static_cast<std::size_t>(t.shape.num_elements()) *
                        ElemBytes(base_options, t),
                    base_options.alignment);
      }
    }
    layers.push_back(std::move(lc));
  }

  // Greedy: highest bytes-freed-per-second first; keep the best (lowest)
  // peak seen over the prefix, so the achieved peak is monotone in how far
  // the budget forces us down the list.
  std::vector<LayerCost> order = layers;
  std::sort(order.begin(), order.end(), [](const LayerCost& a,
                                           const LayerCost& b) {
    const double ra = static_cast<double>(a.droppable_bytes) /
                      std::max(a.recompute_seconds, 1e-12);
    const double rb = static_cast<double>(b.droppable_bytes) /
                      std::max(b.recompute_seconds, 1e-12);
    if (ra != rb) return ra > rb;
    return a.layer < b.layer;
  });

  CheckpointedStackPlan best;
  best.graph = std::move(base_graph);
  best.plan = std::move(base_plan);
  if (memory_budget_bytes > 0 &&
      best.plan.PeakBytes() > memory_budget_bytes) {
    std::vector<int> recompute;
    for (const LayerCost& lc : order) {
      recompute.push_back(lc.layer);
      auto [g, p] = build(recompute);
      if (p.PeakBytes() < best.plan.PeakBytes()) {
        best.graph = std::move(g);
        best.plan = std::move(p);
        best.recompute_layers = recompute;
        std::sort(best.recompute_layers.begin(),
                  best.recompute_layers.end());
      }
      if (best.plan.PeakBytes() <= memory_budget_bytes) break;
    }
  }

  const std::set<int> chosen(best.recompute_layers.begin(),
                             best.recompute_layers.end());
  for (const LayerCost& lc : layers) {
    const bool recompute = chosen.contains(lc.layer);
    if (recompute) best.recompute_seconds += lc.recompute_seconds;
    for (const std::string& name : lc.droppable) {
      ActivationDecision d;
      d.tensor = name;
      d.layer = lc.layer;
      d.recompute = recompute;
      const TensorNode& t = best.graph.tensor(name);
      d.bytes = AlignUp(static_cast<std::size_t>(t.shape.num_elements()) *
                            ElemBytes(base_options, t),
                        base_options.alignment);
      best.decisions.push_back(std::move(d));
    }
  }
  return best;
}

}  // namespace xflow::graph
