// Checkpoint-aware whole-stack planning: choose, per saved activation,
// between storing it until its backward consumer and re-deriving it in the
// backward pass, so the planned arena fits a byte budget. Recompute is
// chosen at layer granularity (a layer's forward operators re-execute as a
// block directly before its backward operators -- the classic
// gradient-checkpointing scheme of Chen et al. 2016), prioritized by bytes
// freed per second of re-execution under the sim/ roofline model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/memory_plan.hpp"
#include "sim/device.hpp"

namespace xflow::graph {

/// One store-vs-recompute decision for a saved interior activation.
struct ActivationDecision {
  std::string tensor;      // e.g. "L3.softmax_saved"
  int layer = 0;
  bool recompute = false;  // true: the backward pass reads the "@r" clone
  std::size_t bytes = 0;   // aligned planned size when stored
};

/// A whole-stack graph + plan under (or as close as achievable to) the
/// requested budget, with the decisions that produced it.
struct CheckpointedStackPlan {
  DataflowGraph graph;
  MemoryPlan plan;
  std::vector<int> recompute_layers;  // sorted ascending
  std::vector<ActivationDecision> decisions;
  /// Roofline estimate of the extra forward re-execution per step (s).
  double recompute_seconds = 0;
};

/// Builds PlanOptions for a given stack graph. Injected by the caller
/// (e.g. transformer::StackPlanOptions<T>) because element sizes, groups
/// and fused spans are a runtime concern the graph layer cannot know.
using StackPlanOptionsFn = std::function<PlanOptions(const DataflowGraph&)>;

/// Plans the whole-stack graph of `base`, checkpointing layers greedily
/// until the planned peak fits `memory_budget_bytes` (0 = no budget: plan
/// with everything stored). Greedy order is droppable-bytes per
/// recompute-second, and the result is the best (lowest) peak seen over
/// the prefix of that order -- so a smaller budget never yields a smaller
/// recompute set, and the achieved peak is monotone non-increasing as the
/// budget shrinks. When even full recompute misses the budget, the best
/// plan is returned anyway; callers can compare plan.PeakBytes() to the
/// budget. `base.recompute_layers` is overwritten; `base.include_backward`
/// must be set.
CheckpointedStackPlan PlanCheckpointedStack(
    const ModelDims& dims, StackGraphOptions base,
    const StackPlanOptionsFn& options_for, std::size_t memory_budget_bytes,
    const sim::DeviceSpec& spec = sim::DeviceSpec::V100());

}  // namespace xflow::graph
