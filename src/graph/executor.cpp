#include "graph/executor.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "config/autotune.hpp"
#include "fusion/fuser.hpp"
#include "graph/lowering.hpp"
#include "ops/elementwise.hpp"
#include "ops/embedding.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"

namespace xflow::graph {

namespace {

/// Aliasing relabel: the same bytes under positional dim names `names`
/// (the executor's equivalent of the hand-wired layer's RenamedDim
/// chains, e.g. presenting the phbk key block as phbj for the stacked
/// bias kernels).
template <typename T>
Tensor<T> Relabeled(const Tensor<T>& t, const std::string& names) {
  require(static_cast<std::size_t>(t.shape().rank()) == names.size(),
          "relabel rank mismatch");
  std::vector<DimExt> dims;
  dims.reserve(names.size());
  for (std::size_t d = 0; d < names.size(); ++d) {
    dims.push_back({names[d], t.shape().dims()[d].extent});
  }
  return Tensor<T>::FromSpan(Shape(std::move(dims)),
                             const_cast<T*>(t.data()));
}

/// The normalization dim of a layernorm-family op. Forward and dX reduce
/// over it; dW iterates it independently and reduces everything else.
char NormDim(const OpNode& op) {
  const auto& dims = op.kind == OpKind::kLayerNormDW ? op.independent_dims
                                                     : op.reduction_dims;
  require(!dims.empty(), StrFormat("op '%s' has no normalization dim",
                                   op.name.c_str()));
  return dims.front().name;
}

char ReduceDim(const OpNode& op) {
  require(!op.reduction_dims.empty(),
          StrFormat("op '%s' has no reduction dim", op.name.c_str()));
  return op.reduction_dims.front().name;
}

}  // namespace

bool TaskSchedulerDefault() {
  static const bool value = [] {
    const char* env = std::getenv("XFLOW_TASK_SCHED");
    if (env == nullptr || *env == '\0') return true;
    std::string v(env);
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return v != "0" && v != "false" && v != "off" && v != "no";
  }();
  return value;
}

template <typename T>
bool GraphExecutorT<T>::IsBackwardKind(OpKind kind) {
  return IsBackwardOp(kind);
}

template <typename T>
GraphExecutorT<T>::GraphExecutorT(DataflowGraph graph, const MemoryPlan* plan,
                                  Workspace* workspace,
                                  ExecutorOptions options)
    : graph_(std::move(graph)), plan_(plan), workspace_(workspace),
      options_(std::move(options)) {
  require(plan_ != nullptr && workspace_ != nullptr,
          "executor needs a memory plan and a workspace");
  require(workspace_->capacity() >= plan_->peak_bytes(),
          "workspace is smaller than the plan's peak bytes");
  // Annotate each contraction with its kernel class before scheduling;
  // ops already carrying a class keep it (the pre-flight verifier's
  // graph/lowering-consistent rule cross-checks recorded classes, so a
  // stale annotation fails fast instead of being silently overwritten).
  LowerContractions(graph_);
  BuildBindings();
  BuildSchedule();
}

template <typename T>
void GraphExecutorT<T>::BuildBindings() {
  // Planned containers become fixed views into the slab. Statistics
  // containers (a different element width than T, e.g. fp32 layernorm
  // moments among fp16 activations) get fp32 views; when T is float the
  // widths coincide and everything lands in the T map.
  for (const auto& [name, node] : graph_.tensors()) {
    if (!plan_->Contains(name)) continue;  // weights / excluded inputs
    const TensorPlacement& p = plan_->at(name);
    if (p.shape.rank() == 0) continue;  // group aliases handled below
    if (p.elem_bytes == sizeof(T)) {
      bound_.emplace(name, workspace_->ViewAt<T>(p.offset, node.shape));
    } else {
      require(p.elem_bytes == sizeof(float),
              StrFormat("container '%s' has unsupported element width",
                        name.c_str()));
      stats_.emplace(name, workspace_->ViewAt<float>(p.offset, node.shape));
    }
  }
  // Stacked groups: one spanning view, shaped as the first member with
  // the stack dim's extent summed (the zero-copy [Q~ K~ V~] block).
  for (const PlanGroup& g : options_.stacked) {
    if (!plan_->Contains(g.name)) continue;
    const TensorPlacement& alias = plan_->at(g.name);
    const Shape& first = graph_.tensor(g.members.front()).shape;
    std::int64_t stacked_extent = 0;
    for (const auto& m : g.members) {
      stacked_extent += graph_.tensor(m).shape.dims().front().extent;
    }
    std::vector<DimExt> dims = first.dims();
    dims.front().extent = stacked_extent;
    Shape shape{std::move(dims)};
    require(static_cast<std::size_t>(shape.num_elements()) * sizeof(T) ==
                alias.bytes,
            StrFormat("group '%s' does not span its members",
                      g.name.c_str()));
    bound_.emplace(g.name, workspace_->ViewAt<T>(alias.offset, shape));
  }
}

template <typename T>
void GraphExecutorT<T>::BuildSchedule() {
  const auto& ops = graph_.ops();
  backward_begin_ = static_cast<int>(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    // Checkpoint recompute clones precede the first backward-kind op of
    // their layer; they belong to Backward(), not Forward().
    if (IsBackwardKind(ops[i].kind) || !ops[i].recompute_of.empty()) {
      backward_begin_ = static_cast<int>(i);
      break;
    }
  }

  // Per-op attributes resolved once: parsed einsum specs, stacked-operand
  // substitution, and the dropout seed schedule (appearance order over
  // the dropout-bearing ops, matching the layer's per-site streams).
  // Recompute clones reuse the original op's seed -- bitwise-identical
  // masks -- and do not consume a schedule slot.
  std::size_t next_seed = 0;
  std::map<std::string, std::uint64_t> seed_by_name;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpNode& op = ops[i];
    const int idx = static_cast<int>(i);
    if (op.kind == OpKind::kScaledSoftmax || op.kind == OpKind::kDropout) {
      if (!op.recompute_of.empty()) {
        const auto it = seed_by_name.find(op.recompute_of);
        require(it != seed_by_name.end(),
                StrFormat("recompute clone '%s' precedes its original '%s'",
                          op.name.c_str(), op.recompute_of.c_str()));
        dropout_seed_[idx] = it->second;
      } else {
        require(next_seed < options_.dropout_seeds.size(),
                StrFormat("no dropout seed for op '%s' (provide one per "
                          "dropout-bearing op, in graph order)",
                          op.name.c_str()));
        dropout_seed_[idx] = options_.dropout_seeds[next_seed++];
        seed_by_name[op.name] = dropout_seed_[idx];
      }
    }
    if (op.kind != OpKind::kContraction) continue;
    require(!op.einsum.empty(),
            StrFormat("contraction '%s' has no einsum spec", op.name.c_str()));
    specs_.emplace(idx, EinsumSpec::Parse(op.einsum));
    ContractionOperands operands;
    if (op.inputs.size() == 2) {
      operands.a = op.inputs[0];
      operands.b = op.inputs[1];
    } else if (const PlanGroup* g =
                   GroupMatching(op.inputs, 1, op.inputs.size() - 1)) {
      operands.a = op.inputs[0];  // e.g. Q,K,V dX: w_qkv x [dQ~ dK~ dV~]
      operands.b = g->name;
    } else if (const PlanGroup* h =
                   GroupMatching(op.inputs, 0, op.inputs.size() - 1)) {
      operands.a = h->name;  // e.g. Q,K,V dW: [dQ~ dK~ dV~] x x
      operands.b = op.inputs.back();
    } else {
      require(false, StrFormat("contraction '%s' has %zu inputs and no "
                               "matching stacked group",
                               op.name.c_str(), op.inputs.size()));
    }
    if (op.outputs.size() == 1) {
      operands.out = op.outputs[0];
    } else if (const PlanGroup* g =
                   GroupMatching(op.outputs, 0, op.outputs.size())) {
      operands.out = g->name;  // e.g. Q,K,V: one stacked GEMM output
    } else {
      require(false, StrFormat("contraction '%s' writes %zu outputs and no "
                               "matching stacked group",
                               op.name.c_str(), op.outputs.size()));
    }
    contraction_operands_[idx] = std::move(operands);
  }

  // Schedule. Fused mode takes the groups the fusion pass chooses and
  // dispatches the recognized paper kernels as single launches; anything
  // unrecognized falls back to per-op execution, so fuser changes degrade
  // to correct (if slower) schedules instead of failing.
  steps_.clear();
  auto push_single = [&](int idx) {
    steps_.push_back(Step{StepKind::kSingle, {idx}});
  };
  if (options_.use_fused_kernels) {
    const auto fused = fusion::FuseMaximally(graph_);
    for (const auto& kernel : fused.kernels) {
      if (kernel.op_indices.size() == 1) {
        push_single(kernel.op_indices.front());
        continue;
      }
      StepKind kind = StepKind::kSingle;
      if (kernel.name == "DRLN" || kernel.name == "BDRLN") {
        kind = StepKind::kDRLN;
      } else if (kernel.name == "BRD") {
        kind = StepKind::kBRD;
      } else if (kernel.name == "BLNRD") {
        kind = StepKind::kBLNRD;
      } else if (kernel.name == "BDRB") {
        kind = StepKind::kBDRB;
      } else if (kernel.name == "EBSB") {
        kind = StepKind::kEBSB;
      }
      if (kind == StepKind::kSingle) {
        for (int idx : kernel.op_indices) push_single(idx);
      } else {
        steps_.push_back(Step{kind, kernel.op_indices});
      }
    }
  } else {
    for (std::size_t i = 0; i < graph_.ops().size(); ++i) {
      push_single(static_cast<int>(i));
    }
  }

  backward_begin_step_ = static_cast<int>(steps_.size());
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    if (steps_[s].ops.front() >= backward_begin_) {
      backward_begin_step_ = static_cast<int>(s);
      break;
    }
  }

  BuildStepDeps();
}

template <typename T>
void GraphExecutorT<T>::BuildStepDeps() {
  const int count = static_cast<int>(steps_.size());
  step_preds_.assign(steps_.size(), {});
  step_succs_.assign(steps_.size(), {});
  runners_.resize(steps_.size());
  for (int s = 0; s < count; ++s) runners_[static_cast<std::size_t>(s)] =
      StepRunner{this, s};
  remaining_ = std::make_unique<std::atomic<int>[]>(steps_.size());

  // What every step touches: container names with a written-by-this-step
  // flag, plus the planned byte span of each planned container. Names
  // catch external containers (weights, graph inputs, weight gradients)
  // that the plan never sees; byte spans are the safety net against a
  // plan that recycles bytes between name-independent steps -- the
  // planner proves such reuse path-ordered (and the verifier's
  // plan/concurrent-overlap rule re-checks it), but a scheduler must not
  // rely on an optimizer's proof to stay memory-safe.
  struct Access {
    std::map<std::string, bool> names;  // name -> step writes it
    std::vector<std::array<std::size_t, 3>> spans;  // begin, end, writes
  };
  std::vector<Access> access(steps_.size());
  for (int s = 0; s < count; ++s) {
    Access& a = access[static_cast<std::size_t>(s)];
    for (int idx : steps_[static_cast<std::size_t>(s)].ops) {
      const OpNode& op = graph_.ops()[static_cast<std::size_t>(idx)];
      for (const auto& in : op.inputs) a.names.try_emplace(in, false);
      for (const auto& out : op.outputs) a.names.insert_or_assign(out, true);
    }
    for (const auto& [name, writes] : a.names) {
      if (!plan_->Contains(name)) continue;
      const TensorPlacement& p = plan_->at(name);
      if (p.bytes == 0) continue;
      a.spans.push_back({p.offset, p.offset + p.bytes,
                         writes ? std::size_t{1} : std::size_t{0}});
    }
  }
  const auto conflicts = [](const Access& x, const Access& y) {
    const Access& probe = x.names.size() <= y.names.size() ? x : y;
    const Access& table = x.names.size() <= y.names.size() ? y : x;
    for (const auto& [name, writes] : probe.names) {
      const auto it = table.names.find(name);
      if (it != table.names.end() && (writes || it->second)) return true;
    }
    for (const auto& sx : x.spans) {
      for (const auto& sy : y.spans) {
        if (sx[2] == 0 && sy[2] == 0) continue;  // two reads never race
        if (sx[0] < sy[1] && sy[0] < sx[1]) return true;
      }
    }
    return false;
  };
  // Edges run strictly forward in schedule order, so the DAG is acyclic
  // by construction and step_succs_ lists stay sorted ascending.
  for (int j = 1; j < count; ++j) {
    for (int i = 0; i < j; ++i) {
      if (conflicts(access[static_cast<std::size_t>(i)],
                    access[static_cast<std::size_t>(j)])) {
        step_preds_[static_cast<std::size_t>(j)].push_back(i);
        step_succs_[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
}

template <typename T>
const PlanGroup* GraphExecutorT<T>::GroupMatching(
    const std::vector<std::string>& names, std::size_t begin,
    std::size_t count) const {
  for (const PlanGroup& g : options_.stacked) {
    if (g.members.size() != count || !plan_->Contains(g.name)) continue;
    bool match = true;
    for (std::size_t m = 0; m < count; ++m) {
      if (g.members[m] != names[begin + m]) {
        match = false;
        break;
      }
    }
    if (match) return &g;
  }
  return nullptr;
}

template <typename T>
void GraphExecutorT<T>::BindInput(const std::string& name,
                                  const Tensor<T>& tensor) {
  require(graph_.HasTensor(name),
          StrFormat("graph has no container '%s'", name.c_str()));
  require(tensor.size() == graph_.tensor(name).shape.num_elements(),
          StrFormat("bound '%s' does not match its graph element count",
                    name.c_str()));
  // Stored as an aliasing view: never copied, never written (enforced at
  // dispatch through the writable_ flag).
  bound_.insert_or_assign(
      name, Tensor<T>::FromSpan(tensor.shape(), const_cast<T*>(tensor.data())));
  writable_[name] = false;
  forward_preflight_pending_ = true;
  backward_preflight_pending_ = true;
}

template <typename T>
void GraphExecutorT<T>::BindOutput(const std::string& name, Tensor<T>& tensor) {
  require(graph_.HasTensor(name),
          StrFormat("graph has no container '%s'", name.c_str()));
  require(tensor.size() == graph_.tensor(name).shape.num_elements(),
          StrFormat("bound '%s' does not match its graph element count",
                    name.c_str()));
  bound_.insert_or_assign(name,
                          Tensor<T>::FromSpan(tensor.shape(), tensor.data()));
  writable_[name] = true;
  forward_preflight_pending_ = true;
  backward_preflight_pending_ = true;
}

template <typename T>
void GraphExecutorT<T>::BindTokens(const std::vector<std::int32_t>& tokens) {
  tokens_.assign(tokens.begin(), tokens.end());
}

template <typename T>
Tensor<T>& GraphExecutorT<T>::View(const std::string& name) {
  const auto it = bound_.find(name);
  require(it != bound_.end(),
          StrFormat("container '%s' is not planned and not bound -- bind "
                    "weights and graph inputs with BindInput/BindOutput",
                    name.c_str()));
  return it->second;
}

template <typename T>
Tensor<T>& GraphExecutorT<T>::MutableView(const std::string& name) {
  Tensor<T>& t = View(name);
  const auto w = writable_.find(name);
  require(w == writable_.end() || w->second,
          StrFormat("op writes read-only external container '%s' (bind it "
                    "with BindOutput)",
                    name.c_str()));
  return t;
}

template <typename T>
TensorF& GraphExecutorT<T>::StatView(const std::string& name) {
  if constexpr (std::is_same_v<T, float>) {
    return View(name);
  } else {
    const auto it = stats_.find(name);
    require(it != stats_.end(),
            StrFormat("container '%s' is not a planned statistic",
                      name.c_str()));
    return it->second;
  }
}

template <typename T>
VerifyReport GraphExecutorT<T>::VerifyBindings() const {
  return VerifyBindingsInRange(0, static_cast<int>(graph_.ops().size()),
                               /*warn_unused=*/true);
}

template <typename T>
VerifyReport GraphExecutorT<T>::VerifyBindingsInRange(
    int begin_op, int end_op, bool warn_unused) const {
  VerifyReport report;
  // Containers the range touches, with their last writer in the range.
  std::map<std::string, int> writer_of;
  for (int i = begin_op; i < end_op; ++i) {
    const OpNode& op = graph_.ops()[static_cast<std::size_t>(i)];
    for (const auto& in : op.inputs) writer_of.try_emplace(in, -1);
    for (const auto& out : op.outputs) writer_of[out] = i;
  }
  for (const auto& [name, writer] : writer_of) {
    if (!bound_.contains(name) && !stats_.contains(name)) {
      report.issues.push_back(VerifyIssue{
          VerifySeverity::kError, "binding/unbound", "", name,
          "not planned and not bound -- bind weights and graph inputs "
          "with BindInput/BindOutput"});
      continue;
    }
    const auto w = writable_.find(name);
    if (w == writable_.end()) continue;  // planned view, always writable
    if (writer >= 0 && !w->second) {
      report.issues.push_back(VerifyIssue{
          VerifySeverity::kError, "binding/read-only",
          graph_.ops()[static_cast<std::size_t>(writer)].name, name,
          StrFormat("written by %s but bound read-only (use BindOutput)",
                    OpRef(graph_, writer).c_str())});
    } else if (writer < 0 && w->second && warn_unused) {
      report.issues.push_back(VerifyIssue{
          VerifySeverity::kWarning, "binding/unused-writable", "", name,
          "bound writable but no op writes it (BindInput suffices)"});
    }
  }
  return report;
}

template <typename T>
void GraphExecutorT<T>::MaybeVerify(int begin_op, int end_op, bool* pending) {
  if (!*pending || !PreflightVerifyEnabled()) return;
  VerifyReport report = Verify(graph_, *plan_);
  VerifyReport bindings =
      VerifyBindingsInRange(begin_op, end_op, /*warn_unused=*/false);
  report.issues.insert(report.issues.end(),
                       std::make_move_iterator(bindings.issues.begin()),
                       std::make_move_iterator(bindings.issues.end()));
  require(report.ok(), StrFormat("graph executor pre-flight failed: %s",
                                 report.Summary().c_str()));
  *pending = false;  // clean until the next rebind
}

template <typename T>
void GraphExecutorT<T>::Forward() {
  MaybeVerify(0, backward_begin_, &forward_preflight_pending_);
  RunRange(0, backward_begin_step_);
}

template <typename T>
void GraphExecutorT<T>::Backward() {
  MaybeVerify(backward_begin_, static_cast<int>(graph_.ops().size()),
              &backward_preflight_pending_);
  RunRange(backward_begin_step_, static_cast<int>(steps_.size()));
}

template <typename T>
void GraphExecutorT<T>::RunRange(int begin_step, int end_step) {
  if (options_.use_task_scheduler && end_step - begin_step > 1 &&
      ThreadPool::Global().threads() > 1) {
    RunRangeConcurrent(begin_step, end_step);
    return;
  }
  for (int s = begin_step; s < end_step; ++s) RunStepChecked(s);
}

template <typename T>
void GraphExecutorT<T>::RunRangeConcurrent(int begin_step, int end_step) {
  // Dependency counts restricted to this range (predecessors before
  // begin_step already ran in a prior call), biased by one so the kickoff
  // loop below and completing steps use the same release discipline: the
  // decrement that reaches zero -- wherever it came from -- spawns.
  for (int s = begin_step; s < end_step; ++s) {
    int preds = 0;
    for (int p : step_preds_[static_cast<std::size_t>(s)]) {
      preds += p >= begin_step ? 1 : 0;
    }
    remaining_[s].store(preds + 1, std::memory_order_relaxed);
  }
  TaskGroup group;  // over the global pool
  RunCtx ctx;
  ctx.group = &group;
  ctx.begin_step = begin_step;
  ctx.end_step = end_step;
  run_ = &ctx;
  for (int s = begin_step; s < end_step; ++s) {
    if (remaining_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      group.Spawn(runners_[static_cast<std::size_t>(s)]);
    }
  }
  try {
    group.Wait();  // rethrows the first step failure after quiescing
  } catch (...) {
    run_ = nullptr;
    throw;
  }
  run_ = nullptr;
}

template <typename T>
void GraphExecutorT<T>::RunStepTask(int s) {
  RunCtx& ctx = *run_;
  if (ctx.failed.load(std::memory_order_acquire)) return;
  try {
    RunStepChecked(s);
  } catch (...) {
    // Leave successors unreleased: the range is being abandoned, and
    // TaskGroup::Wait will rethrow this (its first recorded error) once
    // the already-spawned steps have drained.
    ctx.failed.store(true, std::memory_order_release);
    throw;
  }
  for (int t : step_succs_[static_cast<std::size_t>(s)]) {
    if (t >= ctx.end_step) break;  // ascending, rest is out of range too
    if (remaining_[t].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ctx.group->Spawn(runners_[static_cast<std::size_t>(t)]);
    }
  }
}

template <typename T>
void GraphExecutorT<T>::RunStepChecked(int s) {
  const Step& step = steps_[static_cast<std::size_t>(s)];
  // Kernel-layer failures name the op(s) being executed, in the
  // verifier's diagnostic form, instead of surfacing a bare index.
  auto step_ref = [&] {
    std::vector<std::string> refs;
    refs.reserve(step.ops.size());
    for (int idx : step.ops) refs.push_back(OpRef(graph_, idx));
    return Join(refs, " + ");
  };
  try {
    Dispatch(step);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(
        StrFormat("%s [while executing %s]", e.what(), step_ref().c_str()));
  } catch (const ContractViolation& e) {
    throw ContractViolation(
        StrFormat("%s [while executing %s]", e.what(), step_ref().c_str()));
  } catch (const std::out_of_range& e) {
    throw ContractViolation(
        StrFormat("missing per-op attribute (%s) [while executing %s]",
                  e.what(), step_ref().c_str()));
  }
}

template <typename T>
void GraphExecutorT<T>::Dispatch(const Step& step) {
  const auto op = [&](std::size_t member) -> const OpNode& {
    return graph_.ops()[static_cast<std::size_t>(step.ops[member])];
  };
  const float keep = 1.0f - options_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  switch (step.kind) {
    case StepKind::kSingle:
      DispatchSingle(op(0), step.ops[0]);
      return;
    case StepKind::kDRLN: {
      // bias -> dropout -> residual -> layernorm, one pass over memory.
      const OpNode& bias = op(0);
      const OpNode& drop = op(1);
      const OpNode& resid = op(2);
      const OpNode& ln = op(3);
      // The residual leg is the input the group did not produce itself.
      const std::string& res_in =
          resid.inputs[0] == drop.outputs[0] ? resid.inputs[1]
                                             : resid.inputs[0];
      const DropoutMask mask(dropout_seed_.at(step.ops[1]),
                             options_.dropout_prob);
      ops::BiasDropoutResidualLayerNorm(
          View(bias.inputs[0]), View(bias.inputs[1]), View(res_in), mask,
          View(ln.inputs[1]), View(ln.inputs[2]), NormDim(ln),
          options_.ln_eps, MutableView(resid.outputs[0]),
          MutableView(drop.outputs[1]), MutableView(ln.outputs[0]),
          StatView(ln.outputs[1]), StatView(ln.outputs[2]));
      return;
    }
    case StepKind::kBRD: {
      const OpNode& bias = op(0);
      const OpNode& relu = op(1);
      const OpNode& drop = op(2);
      const DropoutMask mask(dropout_seed_.at(step.ops[2]),
                             options_.dropout_prob);
      ops::BiasReluDropout(View(bias.inputs[0]), View(bias.inputs[1]), mask,
                           MutableView(relu.outputs[0]),
                           MutableView(drop.outputs[0]),
                           MutableView(drop.outputs[1]));
      return;
    }
    case StepKind::kBLNRD: {
      const OpNode& ln_dx = op(0);
      const OpNode& drop_dx = op(1);
      ops::LayerNormDropoutBackward(
          View(ln_dx.inputs[0]), View(ln_dx.inputs[1]), View(ln_dx.inputs[2]),
          StatView(ln_dx.inputs[3]), StatView(ln_dx.inputs[4]),
          View(drop_dx.inputs[1]), NormDim(ln_dx), keep_scale,
          MutableView(ln_dx.outputs[0]), MutableView(drop_dx.outputs[0]));
      return;
    }
    case StepKind::kBDRB: {
      const OpNode& bias_hi = op(0);
      const OpNode& drop_dx = op(1);
      const OpNode& relu_dx = op(2);
      const OpNode& bias_lo = op(3);
      ops::BiasDropoutReluBiasBackward(
          View(bias_hi.inputs[0]), View(drop_dx.inputs[0]),
          View(drop_dx.inputs[1]), View(relu_dx.inputs[1]), keep_scale,
          MutableView(bias_hi.outputs[0]), MutableView(relu_dx.outputs[0]),
          MutableView(bias_lo.outputs[0]));
      return;
    }
    case StepKind::kEBSB: {
      const OpNode& resid = op(0);
      const OpNode& ln_dw = op(1);
      ops::ResidualLayerNormDwBackward(
          View(resid.inputs[0]), View(resid.inputs[1]), View(ln_dw.inputs[1]),
          StatView(ln_dw.inputs[2]), StatView(ln_dw.inputs[3]),
          NormDim(ln_dw), MutableView(resid.outputs[0]),
          MutableView(ln_dw.outputs[0]), MutableView(ln_dw.outputs[1]));
      return;
    }
  }
}

template <typename T>
void GraphExecutorT<T>::DispatchSingle(const OpNode& op, int op_index) {
  const float keep = 1.0f - options_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  switch (op.kind) {
    case OpKind::kContraction: {
      const ContractionOperands& o = contraction_operands_.at(op_index);
      const EinsumSpec& spec = specs_.at(op_index);
      const Tensor<T>& a = View(o.a);
      const Tensor<T>& b = View(o.b);
      Tensor<T>& out = MutableView(o.out);
      const auto mode = config::AutotuneModeFromEnv();
      if (mode == config::AutotuneMode::kOff) {
        EinsumLowered(spec, op.lowered, a, b, out);
        return;
      }
      // Online autotune: look up (or tune, once, process-wide) the
      // execution strategy for this (class, shape bucket). Measuring
      // re-runs the real dispatch -- legal because beta == 0 here, so
      // every candidate writes the same bits the final run writes.
      const EinsumClassInfo& info = ClassifyEinsum(spec, a.shape(),
                                                   b.shape());
      const auto bucket = config::BucketOf(
          info.cls, info.extents,
          static_cast<std::int64_t>(sizeof(T)));
      const config::TunedEntry tuned = config::Autotune(
          bucket,
          [&](const EinsumExecConfig& cand) {
            const auto t0 = std::chrono::steady_clock::now();
            EinsumLowered(spec, op.lowered, a, b, out, 1.0f, 0.0f, &cand);
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                .count();
          },
          mode);
      EinsumLowered(spec, op.lowered, a, b, out, 1.0f, 0.0f, &tuned.exec);
      return;
    }
    case OpKind::kBias: {
      if (op.outputs.size() == 1) {
        ops::BiasForward(View(op.inputs[0]), View(op.inputs[1]),
                         MutableView(op.outputs[0]));
        return;
      }
      // Stacked projection bias (the AIB site): the last input is the
      // stacked bias; member blocks are presented under the first
      // member's dim names, exactly like the hand-wired layer's renamed
      // views, so the bias's stack dim lines up for every block.
      require(op.outputs.size() == 3 && op.inputs.size() == 4,
              StrFormat("unsupported bias arity on '%s'", op.name.c_str()));
      const Tensor<T>& stacked_bias = View(op.inputs.back());
      const std::string names = View(op.inputs[0]).shape().names();
      std::array<Tensor<T>, 3> in;
      std::array<Tensor<T>, 3> out;
      for (std::size_t s = 0; s < 3; ++s) {
        in[s] = Relabeled(View(op.inputs[s]), names);
        out[s] = Relabeled(MutableView(op.outputs[s]), names);
      }
      const char stack_dim = stacked_bias.shape().dims().front().name;
      if (options_.use_fused_kernels) {
        ops::AttnInputBias<T>({&in[0], &in[1], &in[2]}, stacked_bias,
                              stack_dim, {&out[0], &out[1], &out[2]});
      } else {
        std::int64_t start = 0;
        for (std::size_t s = 0; s < 3; ++s) {
          const std::int64_t count = in[s].shape().dims().front().extent;
          ops::BiasForward(in[s],
                           stacked_bias.SliceViewDim(stack_dim, start, count),
                           out[s]);
          start += count;
        }
      }
      return;
    }
    case OpKind::kReLU:
      ops::ReluForward(View(op.inputs[0]), MutableView(op.outputs[0]));
      return;
    case OpKind::kDropout: {
      const DropoutMask mask(dropout_seed_.at(op_index),
                             options_.dropout_prob);
      ops::DropoutForward(View(op.inputs[0]), mask,
                          MutableView(op.outputs[0]),
                          MutableView(op.outputs[1]));
      return;
    }
    case OpKind::kResidual:
    case OpKind::kResidualBwd:
      ops::ResidualForward(View(op.inputs[0]), View(op.inputs[1]),
                           MutableView(op.outputs[0]));
      return;
    case OpKind::kScale:
      ops::ScaleForward(View(op.inputs[0]), options_.attn_scale,
                        MutableView(op.outputs[0]));
      return;
    case OpKind::kScaledSoftmax: {
      const DropoutMask mask(dropout_seed_.at(op_index),
                             options_.dropout_prob);
      if (options_.causal) {
        ops::CausalScaledSoftmaxForward(
            View(op.inputs[0]), ReduceDim(op), options_.attn_query_dim,
            options_.attn_scale, mask, MutableView(op.outputs[0]),
            MutableView(op.outputs[1]), MutableView(op.outputs[2]));
      } else {
        ops::ScaledSoftmaxForward(
            View(op.inputs[0]), ReduceDim(op), options_.attn_scale, mask,
            MutableView(op.outputs[0]), MutableView(op.outputs[1]),
            MutableView(op.outputs[2]));
      }
      return;
    }
    case OpKind::kLayerNorm:
      ops::LayerNormForward(View(op.inputs[0]), View(op.inputs[1]),
                            View(op.inputs[2]), NormDim(op), options_.ln_eps,
                            MutableView(op.outputs[0]),
                            StatView(op.outputs[1]),
                            StatView(op.outputs[2]));
      return;
    case OpKind::kBiasDW: {
      if (op.inputs.size() == 1) {
        ops::BiasBackwardDW(View(op.inputs[0]), MutableView(op.outputs[0]));
        return;
      }
      // Stacked bias gradient (the BAIB site).
      const PlanGroup* g = GroupMatching(op.inputs, 0, op.inputs.size());
      require(g != nullptr && op.inputs.size() == 3,
              StrFormat("bias dW '%s' has multiple inputs but no stacked "
                        "group",
                        op.name.c_str()));
      Tensor<T>& d_bias = MutableView(op.outputs[0]);
      if (options_.use_fused_kernels) {
        const std::string names = View(op.inputs[0]).shape().names();
        std::array<Tensor<T>, 3> in;
        for (std::size_t s = 0; s < 3; ++s) {
          in[s] = Relabeled(View(op.inputs[s]), names);
        }
        const char stack_dim = d_bias.shape().dims().front().name;
        ops::AttnInputBiasBackward<T>({&in[0], &in[1], &in[2]}, stack_dim,
                                      d_bias);
      } else {
        ops::BiasBackwardDW(View(g->name), d_bias);
      }
      return;
    }
    case OpKind::kReLUDX:
      ops::ReluBackwardDX(View(op.inputs[0]), View(op.inputs[1]),
                          MutableView(op.outputs[0]));
      return;
    case OpKind::kDropoutDX:
      ops::DropoutBackwardDX(View(op.inputs[0]), View(op.inputs[1]),
                             keep_scale, MutableView(op.outputs[0]));
      return;
    case OpKind::kScaledSoftmaxDX:
      ops::ScaledSoftmaxBackwardDX(View(op.inputs[0]), View(op.inputs[1]),
                                   View(op.inputs[2]), ReduceDim(op),
                                   options_.attn_scale, keep_scale,
                                   MutableView(op.outputs[0]));
      return;
    case OpKind::kLayerNormDX:
      ops::LayerNormBackwardDX(View(op.inputs[0]), View(op.inputs[1]),
                               View(op.inputs[2]), StatView(op.inputs[3]),
                               StatView(op.inputs[4]), NormDim(op),
                               MutableView(op.outputs[0]));
      return;
    case OpKind::kLayerNormDW:
      ops::LayerNormBackwardDW(View(op.inputs[0]), View(op.inputs[1]),
                               StatView(op.inputs[2]), StatView(op.inputs[3]),
                               NormDim(op), MutableView(op.outputs[0]),
                               MutableView(op.outputs[1]));
      return;
    case OpKind::kEmbed:
      require(!tokens_.empty(),
              "kEmbed needs token ids -- call BindTokens before Forward");
      ops::EmbeddingForwardKernel(View(op.inputs[0]), View(op.inputs[1]),
                                  tokens_, MutableView(op.outputs[0]));
      return;
    case OpKind::kEmbedDW:
      require(!tokens_.empty(),
              "kEmbedDW needs token ids -- call BindTokens before Backward");
      ops::EmbeddingBackwardKernel(View(op.inputs[0]), tokens_,
                                   MutableView(op.outputs[0]),
                                   MutableView(op.outputs[1]));
      return;
    case OpKind::kMseLoss:
      last_loss_ = ops::MseLossKernel(View(op.inputs[0]), View(op.inputs[1]),
                                      MutableView(op.outputs[1]));
      StatView(op.outputs[0]).data()[0] = static_cast<float>(last_loss_);
      return;
  }
  require(false, StrFormat("no dispatch for op '%s'", op.name.c_str()));
}

template class GraphExecutorT<Half>;
template class GraphExecutorT<float>;

}  // namespace xflow::graph
