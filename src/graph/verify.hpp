// Static verification of (graph, plan, binding) triples.
//
// Since PR 5 the planned DataflowGraph is the thing that actually
// executes, so a planner or builder bug no longer skews an accounting
// number -- it silently corrupts activations. This verifier re-derives
// every property the executor relies on from first principles (shapes
// from the einsum specs, liveness from the graph edges, byte disjointness
// from the recorded intervals) and cross-checks it against what the
// builder declared and the planner recorded, the same whole-program
// validation DaCe runs before transforming an SDFG.
//
// Rules (the `rule_id` of each VerifyIssue):
//   graph/topo-order        ops are listed after their input producers
//   graph/single-producer   every container has at most one writer (SSA)
//   graph/dangling          ops reference only declared containers
//   graph/arity             operand counts/roles are valid for the OpKind
//   graph/lowering-consistent  each contraction's recorded EinsumClass
//                           (graph/lowering.hpp) matches the class its
//                           spec + operand extents re-derive
//   shape/contraction       einsum output/operand extents re-derived from
//                           the spec (stacked AIB/BAIB forms included)
//   shape/elementwise       element-wise ops preserve their space; bias
//                           vectors broadcast over declared dims
//   shape/norm              softmax/layernorm statistics have the reduced
//                           space; scale/bias vectors span the norm dim
//   plan/coverage           plan covers exactly the planned container set
//                           (no weights, no excluded, nothing unknown)
//   plan/size               placement bytes == elements * element size
//   plan/alignment          placement bases are alignment-multiples
//   plan/overlap            byte ranges only shared across disjoint per-op
//                           live intervals (span-induced concurrency is
//                           plan/fused-atomic's job)
//   plan/cross-layer-liveness  the overlap involves a saved activation (a
//                           forward output the backward pass reads): byte
//                           sharing inside its store-until-backward window
//                           would hand the backward pass clobbered data --
//                           the failure mode whole-stack planning must
//                           never produce
//   plan/concurrent-overlap byte-sharing containers must have every access
//                           to one ordered by graph paths against every
//                           write to the other -- the task scheduler runs
//                           path-free ops concurrently, so interval
//                           disjointness alone no longer licenses reuse
//   plan/liveness           recorded intervals match (or contain, without
//                           options) the intervals recomputed from edges
//   plan/pinned             recorded pinned flags == "is a graph input"
//   plan/group              group aliases tiled exactly by their members,
//                           contiguously and in order (zero-copy stacks)
//   plan/fused-atomic       no fused-kernel op span aliases an input byte
//                           range with an output byte range
//   plan/peak               every placement fits under peak_bytes
//   determinism/reduction   reduction-bearing ops use the fixed-split
//                           deterministic kernel set
//   determinism/fused-spans recognized fuser groups == declared
//                           fused_spans (the schedule the plan assumed)
//
// The executor adds binding/* rules (completeness and writability of
// external containers) in its pre-flight, reusing VerifyIssue/VerifyReport.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/memory_plan.hpp"

namespace xflow::graph {

enum class VerifySeverity { kWarning, kError };

/// One structured diagnostic. `op` / `container` name the graph nodes
/// involved (empty when the rule concerns none); `rule_id` is stable and
/// machine-matchable (tests assert on it), `message` is for humans.
struct VerifyIssue {
  VerifySeverity severity = VerifySeverity::kError;
  std::string rule_id;
  std::string op;
  std::string container;
  std::string message;
};

/// "[error] plan/overlap (container 'a'): ..." -- one line, no newline.
std::string ToString(const VerifyIssue& issue);

struct VerifyReport {
  std::vector<VerifyIssue> issues;

  /// No errors (warnings do not fail verification).
  [[nodiscard]] bool ok() const;
  [[nodiscard]] int error_count() const;
  /// True when any issue carries `rule_id` (errors and warnings alike).
  [[nodiscard]] bool Has(std::string_view rule_id) const;
  /// All issues, one ToString line each, preceded by a count header.
  [[nodiscard]] std::string Summary() const;
};

/// "op 'layernorm 1' (#14, layer normalization)" -- the diagnostic form
/// shared by verifier messages and executor error paths.
std::string OpRef(const DataflowGraph& graph, int op_index);

/// Graph well-formedness + shape inference + the graph-level determinism
/// lint (rules graph/*, shape/*, determinism/reduction).
VerifyReport Verify(const DataflowGraph& graph);

/// Graph rules plus plan safety against recomputed liveness. Without
/// PlanOptions the verifier cannot know the exclusion list or fused
/// spans, so recorded intervals must *contain* the recomputed ones and
/// coverage is only checked for extras; alignment is assumed 64.
/// Plan rules are skipped when the graph itself has errors.
VerifyReport Verify(const DataflowGraph& graph, const MemoryPlan& plan);

/// Full cross-check against the exact planning inputs: interval equality
/// (fused spans included), group order, element sizes, exclusions, and
/// the determinism/fused-spans lint over the fused schedule.
VerifyReport Verify(const DataflowGraph& graph, const MemoryPlan& plan,
                    const PlanOptions& options);

/// Gate for the executor's pre-flight verification: the XFLOW_VERIFY
/// environment variable when set (1/true/on/yes or 0/false/off/no),
/// otherwise on in Debug builds (!NDEBUG) and off in Release. Read once
/// per process.
bool PreflightVerifyEnabled();

/// The pure decision behind PreflightVerifyEnabled (exposed for tests):
/// `value` is the environment string or nullptr for unset.
bool VerifyEnvEnabled(const char* value, bool debug_default);

}  // namespace xflow::graph
