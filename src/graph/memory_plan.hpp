// Liveness-driven arena planning over a DataflowGraph.
//
// The graph's edges give exact producer/consumer relationships, so every
// container's lifetime is an op-index interval: born at its producer,
// dead after its last consumer. Saved forward outputs (dropout masks,
// softmax results, layernorm statistics) are consumed deep in the
// backward pass, so they naturally stay live until then; tensors nothing
// consumes inside the graph (the layer output, forward-only saved
// tensors, d_x) stay live to the end of the step. Graph inputs are
// pinned -- live for the whole step -- and weights are excluded entirely
// (they persist across steps and belong to the parameter structs).
//
// First-fit interval allocation then assigns every container a fixed
// offset in one slab such that containers share bytes exactly when their
// lifetimes do not overlap. This is the data-centric memory optimization
// of the paper's recipe (cf. Rausch et al. 2021) applied to our
// SDFG-lite: steady-state steps reuse one planned arena instead of
// churning the allocator, and peak activation memory drops well below
// the naive sum-of-tensors.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace xflow::graph {

/// Containers that must occupy one contiguous block, packed tightly in
/// member order -- the algebraic-fusion stacks, e.g. [dQ~ dK~ dV~]
/// (Sec. IV-D), whose stacked GEMM reads/writes them as one tensor. The
/// plan gains an extra placement under `name` spanning all members.
struct PlanGroup {
  std::string name;
  std::vector<std::string> members;
};

struct PlanOptions {
  /// Offset alignment for every placed container (group members are
  /// packed tightly inside their block instead).
  std::size_t alignment = 64;
  /// Element size when `elem_bytes` is not set; matches fp32.
  std::size_t default_elem_bytes = 4;
  /// Per-container element size (e.g. fp16 activations but fp32
  /// layernorm statistics).
  std::function<std::size_t(const TensorNode&)> elem_bytes;
  std::vector<PlanGroup> groups;
  /// Containers forced live to the end of the graph even when something
  /// consumes them earlier -- saved activations of a forward-only graph,
  /// whose backward pass lives outside the plan.
  std::vector<std::string> keep_live;
  /// Containers excluded from the plan entirely (like weights): graph
  /// inputs the executor passes by reference instead of staging in the
  /// arena, e.g. the encoder's d_y.
  std::vector<std::string> exclude;
  /// Op groups the runtime executes as ONE fused kernel (Sec. IV-A).
  /// Liveness treats each group as a single operator spanning its op-index
  /// range, so a kernel's inputs can never share bytes with its outputs --
  /// the kernel reads and writes them concurrently, and per-op liveness
  /// would otherwise let first-fit recycle an input mid-kernel. Names
  /// missing from the graph are ignored (forward-only graphs lack the
  /// backward spans).
  std::vector<std::vector<std::string>> fused_spans;
};

/// One planned container (or group alias): a fixed [offset, offset+bytes)
/// slab range plus the liveness interval justifying it.
struct TensorPlacement {
  std::string name;
  Shape shape;  // default-constructed for group aliases
  std::size_t elem_bytes = 0;
  std::size_t offset = 0;
  std::size_t bytes = 0;
  /// Liveness in op indices: first_use is the producer (-1 for graph
  /// inputs, which are live before op 0); last_use is the final consumer,
  /// or the last op of the graph when nothing consumes the tensor inside
  /// it. Group members carry their group's merged interval.
  int first_use = -1;
  int last_use = 0;
  bool pinned = false;  // graph input: never recycled
};

class MemoryPlan {
 public:
  [[nodiscard]] bool Contains(const std::string& name) const {
    return placements_.contains(name);
  }
  [[nodiscard]] const TensorPlacement& at(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, TensorPlacement>& placements()
      const {
    return placements_;
  }

  /// Slab bytes required to run the whole graph with this plan.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_bytes_; }
  /// What separate allocation of every planned container would cost
  /// (aligned, groups counted member-by-member) -- the owning executor's
  /// footprint and the baseline of the reported reduction.
  [[nodiscard]] std::size_t naive_bytes() const { return naive_bytes_; }
  /// Report-style aliases of peak_bytes()/naive_bytes(), the pair every
  /// memory comparison quotes (e.g. whole-stack plan vs per-layer sum).
  [[nodiscard]] std::size_t PeakBytes() const { return peak_bytes_; }
  [[nodiscard]] std::size_t NaiveSumBytes() const { return naive_bytes_; }
  /// 1 - peak/naive, in [0, 1).
  [[nodiscard]] double Reduction() const;

  [[nodiscard]] std::string Summary() const;

  /// Assembles a plan directly from placements, bypassing the planner.
  /// Exists so tests can hand the verifier deliberately-corrupted plans;
  /// never use it to construct a plan meant to execute.
  static MemoryPlan FromPlacements(
      std::map<std::string, TensorPlacement> placements,
      std::size_t peak_bytes, std::size_t naive_bytes);

 private:
  friend MemoryPlan PlanMemory(const DataflowGraph&, const PlanOptions&);

  std::map<std::string, TensorPlacement> placements_;
  std::size_t peak_bytes_ = 0;
  std::size_t naive_bytes_ = 0;
};

/// Plans every non-weight container of `graph` into one arena by
/// first-fit over liveness intervals. Deterministic: identical graphs and
/// options produce identical plans. Concurrency-safe: two containers
/// share bytes only when, beyond disjoint liveness, every op touching
/// the earlier one has a graph path to every op touching the later one
/// -- the task scheduler runs path-free ops concurrently, so plans must
/// (and do, by construction) satisfy verify rule plan/concurrent-overlap.
MemoryPlan PlanMemory(const DataflowGraph& graph,
                      const PlanOptions& options = {});

}  // namespace xflow::graph
