#include "graph/verify.hpp"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fusion/fuser.hpp"
#include "graph/lowering.hpp"
#include "tensor/einsum.hpp"

namespace xflow::graph {

namespace {

using IssueList = std::vector<VerifyIssue>;

void Error(IssueList& issues, std::string rule, std::string op,
           std::string container, std::string message) {
  issues.push_back(VerifyIssue{VerifySeverity::kError, std::move(rule),
                               std::move(op), std::move(container),
                               std::move(message)});
}

// ShapeStr, DimMap, StackShapes and BindExtents moved to
// graph/lowering.{hpp,cpp} -- the lowering pass derives contraction
// extents through the exact helpers the shape/contraction rule binds
// with, which is what makes graph/lowering-consistent a real
// cross-check rather than a reimplementation.

DimMap ToDimMap(const Shape& s) {
  DimMap m;
  for (const auto& d : s.dims()) m[d.name] = d.extent;
  return m;
}

bool SameDims(const Shape& a, const Shape& b) {
  return a.rank() == b.rank() && ToDimMap(a) == ToDimMap(b);
}

/// Reduction-bearing kinds whose kernels split the reduction
/// deterministically (fixed chunk counts independent of thread count).
bool DeterministicReduction(OpKind kind) {
  switch (kind) {
    case OpKind::kContraction:
    case OpKind::kScaledSoftmax:
    case OpKind::kScaledSoftmaxDX:
    case OpKind::kLayerNorm:
    case OpKind::kLayerNormDX:
    case OpKind::kLayerNormDW:
    case OpKind::kBiasDW:
    case OpKind::kMseLoss:   // serial accumulation, one pass
    case OpKind::kEmbedDW:   // serial scatter-add over fp32 accumulators
      return true;
    default:
      return false;
  }
}

/// Validates operand counts and role metadata for `op`'s kind. Returns
/// false when shape inference should be skipped for this op.
bool CheckArity(const OpNode& op, int op_index, IssueList& issues,
                std::map<int, EinsumSpec>& specs) {
  bool ok = true;
  auto arity_error = [&](std::string msg) {
    Error(issues, "graph/arity", op.name, "", std::move(msg));
    ok = false;
  };
  auto expect = [&](bool cond, const char* what) {
    if (!cond) arity_error(what);
  };
  const std::size_t in = op.inputs.size();
  const std::size_t out = op.outputs.size();
  switch (op.kind) {
    case OpKind::kContraction:
      if (op.einsum.empty()) {
        arity_error("contraction has no einsum spec");
      } else {
        try {
          specs.emplace(op_index, EinsumSpec::Parse(op.einsum));
        } catch (const InvalidArgument& e) {
          arity_error(StrFormat("malformed einsum '%s': %s",
                                op.einsum.c_str(), e.what()));
        }
      }
      expect(in >= 2 && in <= 4,
             "contraction wants 2 operands (3-4 with one stacked block)");
      expect(out >= 1 && out <= 3,
             "contraction writes 1 output (or 2-3 stacked blocks)");
      break;
    case OpKind::kBias:
      expect((in == 2 && out == 1) || (in == 4 && out == 3),
             "bias wants (x, b) -> y or the stacked "
             "(x0, x1, x2, b) -> (y0, y1, y2)");
      break;
    case OpKind::kReLU:
    case OpKind::kScale:
      expect(in == 1 && out == 1, "element-wise map wants x -> y");
      break;
    case OpKind::kDropout:
      expect(in == 1 && out == 2, "dropout wants x -> (y, mask)");
      break;
    case OpKind::kResidual:
    case OpKind::kResidualBwd:
      expect(in == 2 && out == 1, "residual wants (a, b) -> y");
      break;
    case OpKind::kScaledSoftmax:
      expect(in == 1 && out == 3,
             "scaled softmax wants x -> (y, mask, saved)");
      expect(!op.reduction_dims.empty(),
             "scaled softmax needs its reduction (key) dim");
      break;
    case OpKind::kLayerNorm:
      expect(in == 3 && out == 3,
             "layernorm wants (x, w, b) -> (y, mean, rstd)");
      expect(!op.reduction_dims.empty(),
             "layernorm needs its normalization dim");
      break;
    case OpKind::kBiasDW:
      expect((in == 1 || in == 3) && out == 1,
             "bias dW wants dy -> db (or 3 stacked blocks -> db)");
      break;
    case OpKind::kReLUDX:
      expect(in == 2 && out == 1, "relu dX wants (dy, y) -> dx");
      break;
    case OpKind::kDropoutDX:
      expect(in == 2 && out == 1, "dropout dX wants (dy, mask) -> dx");
      break;
    case OpKind::kScaledSoftmaxDX:
      expect(in == 3 && out == 1,
             "scaled softmax dX wants (dy, mask, saved) -> dx");
      expect(!op.reduction_dims.empty(),
             "scaled softmax dX needs its reduction (key) dim");
      break;
    case OpKind::kLayerNormDX:
      expect(in == 5 && out == 1,
             "layernorm dX wants (dy, w, x, mean, rstd) -> dx");
      expect(!op.reduction_dims.empty(),
             "layernorm dX needs its normalization dim");
      break;
    case OpKind::kLayerNormDW:
      expect(in == 4 && out == 2,
             "layernorm dW wants (dy, x, mean, rstd) -> (dw, db)");
      expect(!op.independent_dims.empty(),
             "layernorm dW needs its norm dim among independent dims");
      break;
    case OpKind::kEmbed:
      expect(in == 2 && out == 1,
             "embedding wants (token_table, pos_table) -> x");
      break;
    case OpKind::kEmbedDW:
      expect(in == 1 && out == 2,
             "embedding dW wants dx -> (d_token_table, d_pos_table)");
      break;
    case OpKind::kMseLoss:
      expect(in == 2 && out == 2, "MSE loss wants (y, target) -> (loss, dy)");
      expect(!op.reduction_dims.empty(),
             "MSE loss reduces over the whole space");
      break;
  }
  for (const auto& saved : op.saved_outputs) {
    if (std::find(op.outputs.begin(), op.outputs.end(), saved) ==
        op.outputs.end()) {
      arity_error(
          StrFormat("saved output '%s' is not an output", saved.c_str()));
    }
  }
  return ok;
}

void CheckContractionShapes(const DataflowGraph& g, const OpNode& op,
                            const EinsumSpec& spec, IssueList& issues) {
  auto shape_of = [&](const std::string& n) -> const Shape& {
    return g.tensor(n).shape;
  };
  // Output side, shared by every input candidate.
  Shape out_shape;
  if (op.outputs.size() == 1) {
    out_shape = shape_of(op.outputs.front());
  } else {
    std::vector<const Shape*> members;
    members.reserve(op.outputs.size());
    for (const auto& name : op.outputs) members.push_back(&shape_of(name));
    std::string why;
    auto stacked = StackShapes(members, &why);
    if (!stacked) {
      Error(issues, "shape/contraction", op.name, op.outputs.front(),
            StrFormat("stacked outputs do not form one block: %s",
                      why.c_str()));
      return;
    }
    out_shape = std::move(*stacked);
  }
  // Input candidates: plain (a, b), or one side is a stacked block --
  // b = stack(inputs[1..]) (the Q,K,V dX form) or a = stack(inputs[..n-2])
  // (the Q,K,V dW form).
  struct Candidate {
    Shape a, b;
  };
  std::vector<Candidate> candidates;
  if (op.inputs.size() == 2) {
    candidates.push_back({shape_of(op.inputs[0]), shape_of(op.inputs[1])});
  } else {
    std::string why;
    {
      std::vector<const Shape*> members;
      for (std::size_t i = 1; i < op.inputs.size(); ++i) {
        members.push_back(&shape_of(op.inputs[i]));
      }
      if (auto stacked = StackShapes(members, &why)) {
        candidates.push_back({shape_of(op.inputs[0]), std::move(*stacked)});
      }
    }
    {
      std::vector<const Shape*> members;
      for (std::size_t i = 0; i + 1 < op.inputs.size(); ++i) {
        members.push_back(&shape_of(op.inputs[i]));
      }
      if (auto stacked = StackShapes(members, &why)) {
        candidates.push_back(
            {std::move(*stacked), shape_of(op.inputs.back())});
      }
    }
    if (candidates.empty()) {
      Error(issues, "shape/contraction", op.name, "",
            StrFormat("multi-input contraction has no stackable operand "
                      "block: %s",
                      why.c_str()));
      return;
    }
  }
  std::string first_error;
  for (const Candidate& cand : candidates) {
    DimMap ext;
    std::string why;
    const bool fits = BindExtents(cand.a, spec.a, ext, &why) &&
                      BindExtents(cand.b, spec.b, ext, &why) &&
                      BindExtents(out_shape, spec.out, ext, &why);
    if (fits) return;
    if (first_error.empty()) first_error = why;
  }
  Error(issues, "shape/contraction", op.name, op.outputs.front(),
        StrFormat("einsum '%s' does not fit the declared operand shapes: %s",
                  op.einsum.c_str(), first_error.c_str()));
}

void CheckOpShapes(const DataflowGraph& g, const OpNode& op,
                   const std::map<int, EinsumSpec>& specs, int op_index,
                   IssueList& issues) {
  auto shape_of = [&](const std::string& n) -> const Shape& {
    return g.tensor(n).shape;
  };
  auto expect_same = [&](const char* rule, const std::string& a,
                         const std::string& b) {
    if (!SameDims(shape_of(a), shape_of(b))) {
      Error(issues, rule, op.name, b,
            StrFormat("'%s' is %s but '%s' is %s -- same space required",
                      a.c_str(), ShapeStr(shape_of(a)).c_str(), b.c_str(),
                      ShapeStr(shape_of(b)).c_str()));
    }
  };
  // Every (name, extent) of `vec` must appear in `base` (broadcast /
  // reduced-vector compatibility).
  auto expect_subset = [&](const char* rule, const Shape& base,
                           const std::string& vec) {
    const DimMap base_dims = ToDimMap(base);
    for (const auto& d : shape_of(vec).dims()) {
      const auto it = base_dims.find(d.name);
      if (it == base_dims.end() || it->second != d.extent) {
        Error(issues, rule, op.name, vec,
              StrFormat("'%s' %s does not broadcast over %s", vec.c_str(),
                        ShapeStr(shape_of(vec)).c_str(),
                        ShapeStr(base).c_str()));
        return;
      }
    }
  };
  // The effective input of a (possibly stacked) bias-family op: the
  // member blocks joined along their leading dim.
  auto stacked_input = [&](std::size_t count) -> std::optional<Shape> {
    std::vector<const Shape*> members;
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(&shape_of(op.inputs[i]));
    }
    std::string why;
    auto stacked = StackShapes(members, &why);
    if (!stacked) {
      Error(issues, "shape/elementwise", op.name, op.inputs.front(),
            StrFormat("stacked inputs do not form one block: %s",
                      why.c_str()));
    }
    return stacked;
  };
  // The norm dim of the statistical-normalization family, plus the
  // derived statistics space (input minus the reduced dim).
  auto reduced_dims = [&](const Shape& x, char r) {
    DimMap m = ToDimMap(x);
    m.erase(r);
    return m;
  };
  auto expect_stats = [&](const Shape& x, char r, const std::string& stat) {
    if (ToDimMap(shape_of(stat)) != reduced_dims(x, r)) {
      Error(issues, "shape/norm", op.name, stat,
            StrFormat("statistic '%s' is %s, expected %s reduced over '%c'",
                      stat.c_str(), ShapeStr(shape_of(stat)).c_str(),
                      ShapeStr(x).c_str(), r));
    }
  };
  auto expect_norm_vector = [&](const Shape& x, char r,
                                const std::string& vec) {
    const Shape& v = shape_of(vec);
    if (v.rank() != 1 || v.dims().front().name != r ||
        v.dims().front().extent != x.extent(r)) {
      Error(issues, "shape/norm", op.name, vec,
            StrFormat("'%s' is %s, expected the norm-dim vector %c[%lld]",
                      vec.c_str(), ShapeStr(v).c_str(), r,
                      static_cast<long long>(x.has(r) ? x.extent(r) : -1)));
    }
  };
  auto expect_has_dim = [&](const Shape& x, char r) {
    if (!x.has(r)) {
      Error(issues, "shape/norm", op.name, op.inputs.front(),
            StrFormat("reduction dim '%c' is not a dim of %s", r,
                      ShapeStr(x).c_str()));
      return false;
    }
    return true;
  };

  switch (op.kind) {
    case OpKind::kContraction:
      CheckContractionShapes(g, op, specs.at(op_index), issues);
      return;
    case OpKind::kBias: {
      if (op.inputs.size() == 2) {
        expect_same("shape/elementwise", op.inputs[0], op.outputs[0]);
        expect_subset("shape/elementwise", shape_of(op.inputs[0]),
                      op.inputs[1]);
        return;
      }
      // Stacked AIB: three member blocks plus the stacked bias vector.
      for (std::size_t s = 0; s < 3; ++s) {
        expect_same("shape/elementwise", op.inputs[s], op.outputs[s]);
      }
      if (auto eff = stacked_input(3)) {
        expect_subset("shape/elementwise", *eff, op.inputs.back());
      }
      return;
    }
    case OpKind::kReLU:
    case OpKind::kScale:
      expect_same("shape/elementwise", op.inputs[0], op.outputs[0]);
      return;
    case OpKind::kDropout:
      expect_same("shape/elementwise", op.inputs[0], op.outputs[0]);
      expect_same("shape/elementwise", op.inputs[0], op.outputs[1]);
      return;
    case OpKind::kResidual:
    case OpKind::kResidualBwd:
      expect_same("shape/elementwise", op.inputs[0], op.inputs[1]);
      expect_same("shape/elementwise", op.inputs[0], op.outputs[0]);
      return;
    case OpKind::kBiasDW: {
      if (op.inputs.size() == 1) {
        expect_subset("shape/elementwise", shape_of(op.inputs[0]),
                      op.outputs[0]);
        return;
      }
      // Stacked BAIB: the gradient of the stacked bias vector.
      if (auto eff = stacked_input(3)) {
        expect_subset("shape/elementwise", *eff, op.outputs[0]);
      }
      return;
    }
    case OpKind::kReLUDX:
    case OpKind::kDropoutDX:
      expect_same("shape/elementwise", op.inputs[0], op.inputs[1]);
      expect_same("shape/elementwise", op.inputs[0], op.outputs[0]);
      return;
    case OpKind::kScaledSoftmax: {
      const Shape& x = shape_of(op.inputs[0]);
      if (!expect_has_dim(x, op.reduction_dims.front().name)) return;
      for (const auto& out : op.outputs) {
        expect_same("shape/norm", op.inputs[0], out);
      }
      return;
    }
    case OpKind::kScaledSoftmaxDX: {
      const Shape& x = shape_of(op.inputs[0]);
      if (!expect_has_dim(x, op.reduction_dims.front().name)) return;
      expect_same("shape/norm", op.inputs[0], op.inputs[1]);
      expect_same("shape/norm", op.inputs[0], op.inputs[2]);
      expect_same("shape/norm", op.inputs[0], op.outputs[0]);
      return;
    }
    case OpKind::kLayerNorm: {
      const char r = op.reduction_dims.front().name;
      const Shape& x = shape_of(op.inputs[0]);
      if (!expect_has_dim(x, r)) return;
      expect_norm_vector(x, r, op.inputs[1]);
      expect_norm_vector(x, r, op.inputs[2]);
      expect_same("shape/norm", op.inputs[0], op.outputs[0]);
      expect_stats(x, r, op.outputs[1]);
      expect_stats(x, r, op.outputs[2]);
      return;
    }
    case OpKind::kLayerNormDX: {
      const char r = op.reduction_dims.front().name;
      const Shape& x = shape_of(op.inputs[2]);
      if (!expect_has_dim(x, r)) return;
      expect_same("shape/norm", op.inputs[2], op.inputs[0]);
      expect_norm_vector(x, r, op.inputs[1]);
      expect_stats(x, r, op.inputs[3]);
      expect_stats(x, r, op.inputs[4]);
      expect_same("shape/norm", op.inputs[2], op.outputs[0]);
      return;
    }
    case OpKind::kLayerNormDW: {
      const char r = op.independent_dims.front().name;
      const Shape& x = shape_of(op.inputs[1]);
      if (!expect_has_dim(x, r)) return;
      expect_same("shape/norm", op.inputs[1], op.inputs[0]);
      expect_stats(x, r, op.inputs[2]);
      expect_stats(x, r, op.inputs[3]);
      expect_norm_vector(x, r, op.outputs[0]);
      expect_norm_vector(x, r, op.outputs[1]);
      return;
    }
    case OpKind::kEmbed: {
      // (token_table [v,i], pos_table) -> x: the positional table must
      // broadcast over x, and the tables' embedding dim must match x's.
      const Shape& x = shape_of(op.outputs[0]);
      expect_subset("shape/elementwise", x, op.inputs[1]);
      const Shape& tok = shape_of(op.inputs[0]);
      if (!tok.has('i') || !x.has('i') ||
          tok.extent('i') != x.extent('i')) {
        Error(issues, "shape/elementwise", op.name, op.inputs[0],
              StrFormat("token table %s does not share the embedding dim "
                        "'i' of %s",
                        ShapeStr(tok).c_str(), ShapeStr(x).c_str()));
      }
      return;
    }
    case OpKind::kEmbedDW: {
      const Shape& dx = shape_of(op.inputs[0]);
      expect_subset("shape/elementwise", dx, op.outputs[1]);
      const Shape& tok = shape_of(op.outputs[0]);
      if (!tok.has('i') || !dx.has('i') ||
          tok.extent('i') != dx.extent('i')) {
        Error(issues, "shape/elementwise", op.name, op.outputs[0],
              StrFormat("token-table gradient %s does not share the "
                        "embedding dim 'i' of %s",
                        ShapeStr(tok).c_str(), ShapeStr(dx).c_str()));
      }
      return;
    }
    case OpKind::kMseLoss: {
      expect_same("shape/elementwise", op.inputs[0], op.inputs[1]);
      expect_same("shape/elementwise", op.inputs[0], op.outputs[1]);
      if (shape_of(op.outputs[0]).num_elements() != 1) {
        Error(issues, "shape/elementwise", op.name, op.outputs[0],
              StrFormat("scalar loss must hold one element, not %s",
                        ShapeStr(shape_of(op.outputs[0])).c_str()));
      }
      return;
    }
  }
}

void CheckGraph(const DataflowGraph& g, IssueList& issues) {
  const auto& ops = g.ops();
  // Writers are rescanned from the op list: the graph's incremental
  // producer map cannot be trusted on fixture graphs built through
  // AddOpUnchecked (the whole point of this pass).
  std::map<std::string, std::vector<int>> writers;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (const auto& out : ops[i].outputs) {
      writers[out].push_back(static_cast<int>(i));
    }
  }
  std::vector<bool> shapes_ok(ops.size(), true);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpNode& op = ops[i];
    for (const auto& in : op.inputs) {
      if (!g.HasTensor(in)) {
        Error(issues, "graph/dangling", op.name, in,
              "reads a container the graph does not declare");
        shapes_ok[i] = false;
      }
    }
    for (const auto& out : op.outputs) {
      if (!g.HasTensor(out)) {
        Error(issues, "graph/dangling", op.name, out,
              "writes a container the graph does not declare");
        shapes_ok[i] = false;
      }
    }
  }
  for (const auto& [name, w] : writers) {
    if (w.size() <= 1) continue;
    std::vector<std::string> names;
    names.reserve(w.size());
    for (int idx : w) names.push_back(ops[static_cast<std::size_t>(idx)].name);
    Error(issues, "graph/single-producer", Join(names, "', '"), name,
          StrFormat("container has %zu producers; exactly one writer is "
                    "allowed (SSA)",
                    w.size()));
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (const auto& in : ops[i].inputs) {
      const auto it = writers.find(in);
      if (it == writers.end()) continue;  // graph input
      const int first_writer =
          *std::min_element(it->second.begin(), it->second.end());
      if (first_writer >= static_cast<int>(i)) {
        Error(issues, "graph/topo-order", ops[i].name, in,
              StrFormat("input is produced later by %s -- ops must be "
                        "listed in topological order",
                        OpRef(g, first_writer).c_str()));
      }
    }
  }
  std::map<int, EinsumSpec> specs;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!CheckArity(ops[i], static_cast<int>(i), issues, specs)) {
      shapes_ok[i] = false;
    }
    if (!ops[i].reduction_dims.empty() &&
        !DeterministicReduction(ops[i].kind)) {
      Error(issues, "determinism/reduction", ops[i].name, "",
            StrFormat("'%s' reduces over dims but is not in the "
                      "fixed-split deterministic kernel set",
                      ToString(ops[i].kind).c_str()));
    }
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (shapes_ok[i]) {
      CheckOpShapes(g, ops[i], specs, static_cast<int>(i), issues);
    }
  }
  // Lowered-class cross-check: a recorded class must be re-derivable
  // from the spec + operand extents through the lowering pass's own
  // entry point. Unlowered ops (kUnclassified) are legal -- the executor
  // classifies on the fly -- and ops whose class cannot be derived at
  // all already failed graph/arity or shape/contraction above.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpNode& op = ops[i];
    if (op.kind != OpKind::kContraction ||
        op.lowered == EinsumClass::kUnclassified || !shapes_ok[i]) {
      continue;
    }
    const EinsumClass derived = DeriveLoweredClass(g, op);
    if (derived != EinsumClass::kUnclassified && derived != op.lowered) {
      Error(issues, "graph/lowering-consistent", op.name,
            op.outputs.empty() ? "" : op.outputs.front(),
            StrFormat("recorded lowered class '%.*s' but spec '%s' and "
                      "operand extents re-derive '%.*s'",
                      static_cast<int>(xflow::ToString(op.lowered).size()),
                      xflow::ToString(op.lowered).data(), op.einsum.c_str(),
                      static_cast<int>(xflow::ToString(derived).size()),
                      xflow::ToString(derived).data()));
    }
  }
}

bool HasGraphErrors(const IssueList& issues) {
  for (const auto& issue : issues) {
    if (issue.severity == VerifySeverity::kError &&
        (issue.rule_id.starts_with("graph/") ||
         issue.rule_id.starts_with("shape/"))) {
      return true;
    }
  }
  return false;
}

std::string JoinSpan(const std::vector<std::string>& names) {
  return Join(names, "' + '");
}

void CheckFusedSpanLint(const DataflowGraph& g, const PlanOptions& options,
                        IssueList& issues) {
  auto present_count = [&](const std::vector<std::string>& span) {
    std::size_t present = 0;
    for (const auto& name : span) {
      for (const auto& op : g.ops()) {
        if (op.name == name) {
          ++present;
          break;
        }
      }
    }
    return present;
  };
  std::vector<std::vector<std::string>> declared;
  for (const auto& span : options.fused_spans) {
    const std::size_t present = present_count(span);
    if (present == 0) continue;  // forward-only graphs lack backward spans
    if (present != span.size()) {
      Error(issues, "determinism/fused-spans", JoinSpan(span), "",
            "fused span is only partially present in the graph");
      continue;
    }
    declared.push_back(span);
  }
  auto recognized = [](const std::string& name) {
    return name == "DRLN" || name == "BDRLN" || name == "BRD" ||
           name == "BLNRD" || name == "BDRB" || name == "EBSB";
  };
  const auto fused = fusion::FuseMaximally(g);
  std::vector<std::vector<std::string>> launched;
  for (const auto& kernel : fused.kernels) {
    if (kernel.op_indices.size() < 2 || !recognized(kernel.name)) continue;
    std::vector<std::string> names;
    names.reserve(kernel.op_indices.size());
    for (int idx : kernel.op_indices) {
      names.push_back(g.ops()[static_cast<std::size_t>(idx)].name);
    }
    if (std::find(declared.begin(), declared.end(), names) ==
        declared.end()) {
      Error(issues, "determinism/fused-spans", JoinSpan(names), "",
            StrFormat("fuser launches these ops as one %s kernel but the "
                      "plan declares no matching fused span -- their "
                      "liveness was planned per-op",
                      kernel.name.c_str()));
    }
    launched.push_back(std::move(names));
  }
  for (const auto& span : declared) {
    if (std::find(launched.begin(), launched.end(), span) ==
        launched.end()) {
      Error(issues, "determinism/fused-spans", JoinSpan(span), "",
            "declared fused span does not match any multi-op kernel the "
            "fuser produces");
    }
  }
}

void CheckPlan(const DataflowGraph& g, const MemoryPlan& plan,
               const PlanOptions* opt, IssueList& issues) {
  const std::size_t alignment = opt != nullptr ? opt->alignment : 64;
  if (alignment == 0) {
    Error(issues, "plan/alignment", "", "", "options alignment is zero");
    return;
  }
  const int last_op = static_cast<int>(g.ops().size()) - 1;
  // ---- Liveness recomputed from the graph edges, independently of the
  // planner (deliberate duplication: a planner bug must not propagate).
  std::vector<std::pair<int, int>> op_span(g.ops().size());
  for (std::size_t i = 0; i < op_span.size(); ++i) {
    op_span[i] = {static_cast<int>(i), static_cast<int>(i)};
  }
  if (opt != nullptr) {
    for (const auto& span : opt->fused_spans) {
      int lo = last_op + 1;
      int hi = -1;
      std::vector<int> members;
      for (const auto& op_name : span) {
        for (std::size_t i = 0; i < g.ops().size(); ++i) {
          if (g.ops()[i].name == op_name) {
            members.push_back(static_cast<int>(i));
            lo = std::min(lo, static_cast<int>(i));
            hi = std::max(hi, static_cast<int>(i));
          }
        }
      }
      for (int i : members) op_span[static_cast<std::size_t>(i)] = {lo, hi};
    }
  }
  auto kept = [&](const std::string& name) {
    return opt != nullptr &&
           std::find(opt->keep_live.begin(), opt->keep_live.end(), name) !=
               opt->keep_live.end();
  };
  auto excluded = [&](const std::string& name) {
    return opt != nullptr &&
           std::find(opt->exclude.begin(), opt->exclude.end(), name) !=
               opt->exclude.end();
  };
  // `expanded` mirrors the planner (fused spans widen intervals); the
  // plain form is per-op concurrency, which is what the overlap rule
  // checks -- span-induced concurrency is plan/fused-atomic's job, so a
  // broken plan trips exactly one of the two.
  auto interval = [&](const std::string& name, bool expanded) {
    const int producer = g.ProducerOf(name);
    const int first =
        producer < 0
            ? -1
            : (expanded ? op_span[static_cast<std::size_t>(producer)].first
                        : producer);
    const auto consumers = g.ConsumersOf(name);
    int last = -1;
    for (int c : consumers) {
      last = std::max(
          last, expanded ? op_span[static_cast<std::size_t>(c)].second : c);
    }
    if (producer < 0 || consumers.empty() || kept(name)) {
      last = last_op;
      // Mirrors the planner's checkpoint exceptions: an unread output of a
      // recompute clone, and an original whose backward readers were
      // retargeted to its "@r" clone (stored ".y" boundaries exempt), are
      // not step outputs -- both die with their producer.
      if (producer >= 0 && consumers.empty() && !kept(name)) {
        const bool clone_byproduct =
            !g.ops()[static_cast<std::size_t>(producer)].recompute_of.empty();
        const bool recompute_dropped =
            g.HasTensor(name + "@r") && !name.ends_with(".y");
        if (clone_byproduct || recompute_dropped) {
          last = expanded ? op_span[static_cast<std::size_t>(producer)].second
                          : producer;
        }
      }
    }
    return std::pair<int, int>{first, std::max(first, last)};
  };

  // ---- Classify placements into units (group alias + members, or one
  // container).
  struct VUnit {
    std::string name;
    const TensorPlacement* alias = nullptr;
    std::vector<const TensorPlacement*> members;
    bool ordered = false;  // members must tile the alias in declared order
  };
  std::vector<VUnit> units;
  std::set<std::string> used;
  if (opt != nullptr) {
    for (const auto& group : opt->groups) {
      std::size_t present = 0;
      for (const auto& m : group.members) present += g.HasTensor(m);
      if (present == 0) continue;
      if (present != group.members.size()) {
        Error(issues, "plan/group", "", group.name,
              "plan group is only partially present in the graph");
        continue;
      }
      VUnit u;
      u.name = group.name;
      u.ordered = true;
      if (plan.Contains(group.name)) {
        u.alias = &plan.at(group.name);
        used.insert(group.name);
      } else if (group.members.size() > 1) {
        Error(issues, "plan/coverage", "", group.name,
              "plan is missing the group's spanning alias");
      }
      for (const auto& m : group.members) {
        if (!plan.Contains(m)) {
          Error(issues, "plan/coverage", "", m,
                "group member is missing from the plan");
          continue;
        }
        u.members.push_back(&plan.at(m));
        used.insert(m);
      }
      if (!u.members.empty()) units.push_back(std::move(u));
    }
  } else {
    // Without options, group aliases are the planned names the graph does
    // not declare; members are the graph containers whose byte range the
    // alias contains *and* whose recorded interval overlaps it (byte
    // reuse across disjoint lifetimes is legal, not membership).
    for (const auto& [name, p] : plan.placements()) {
      if (g.HasTensor(name)) continue;
      VUnit u;
      u.name = name;
      u.alias = &p;
      for (const auto& [mname, mp] : plan.placements()) {
        if (!g.HasTensor(mname)) continue;
        const bool contained = mp.offset >= p.offset &&
                               mp.offset + mp.bytes <= p.offset + p.bytes;
        const bool live_overlap = mp.first_use <= p.last_use &&
                                  p.first_use <= mp.last_use;
        if (contained && live_overlap) {
          u.members.push_back(&mp);
          used.insert(mname);
        }
      }
      if (u.members.size() >= 2) {
        used.insert(name);
        units.push_back(std::move(u));
      } else {
        Error(issues, "plan/coverage", "", name,
              "plan contains a container the graph does not declare (and "
              "it spans no member containers)");
      }
    }
  }
  for (const auto& [name, p] : plan.placements()) {
    if (used.contains(name)) continue;
    if (!g.HasTensor(name)) {
      if (opt != nullptr) {
        Error(issues, "plan/coverage", "", name,
              "plan contains a container the graph does not declare");
      }
      continue;
    }
    VUnit u;
    u.name = name;
    u.members.push_back(&p);
    units.push_back(std::move(u));
  }

  // ---- Per-placement checks over graph containers.
  for (const auto& [name, p] : plan.placements()) {
    if (!g.HasTensor(name)) continue;
    const TensorNode& t = g.tensor(name);
    if (t.is_weight) {
      Error(issues, "plan/coverage", "", name,
            "weights persist across steps and must not be planned");
    }
    if (excluded(name)) {
      Error(issues, "plan/coverage", "", name,
            "container is excluded from planning but planned anyway");
    }
    if (ToDimMap(p.shape) != ToDimMap(t.shape)) {
      Error(issues, "plan/size", "", name,
            StrFormat("planned shape %s differs from the declared %s",
                      ShapeStr(p.shape).c_str(),
                      ShapeStr(t.shape).c_str()));
      continue;
    }
    if (opt != nullptr) {
      const std::size_t expected =
          opt->elem_bytes ? opt->elem_bytes(t) : opt->default_elem_bytes;
      if (p.elem_bytes != expected) {
        Error(issues, "plan/size", "", name,
              StrFormat("element size %zu, but the options say %zu",
                        p.elem_bytes, expected));
      }
    }
    const auto elements = static_cast<std::size_t>(t.shape.num_elements());
    if (p.elem_bytes == 0 || p.bytes != elements * p.elem_bytes) {
      Error(issues, "plan/size", "", name,
            StrFormat("spans %zu bytes but holds %zu elements of %zu bytes",
                      p.bytes, elements, p.elem_bytes));
    }
  }
  for (const auto& [name, p] : plan.placements()) {
    if (p.offset + p.bytes > plan.peak_bytes()) {
      Error(issues, "plan/peak", "", name,
            StrFormat("placement ends at %zu, past the plan's peak of %zu "
                      "bytes",
                      p.offset + p.bytes, plan.peak_bytes()));
    }
  }

  // ---- Unit-level checks: group tiling, liveness, alignment, overlap.
  // Saved activations -- containers a forward op produces and a backward
  // op (or recompute clone) reads -- are what whole-stack planning must
  // keep distinct across layers; byte sharing that involves one is
  // reported as plan/cross-layer-liveness instead of plain plan/overlap.
  int bwd_begin = static_cast<int>(g.ops().size());
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    if (IsBackwardOp(g.ops()[i].kind) || !g.ops()[i].recompute_of.empty()) {
      bwd_begin = static_cast<int>(i);
      break;
    }
  }
  auto saved_activation = [&](const std::string& name) {
    const int producer = g.ProducerOf(name);
    if (producer < 0 || producer >= bwd_begin) return false;
    for (int c : g.ConsumersOf(name)) {
      if (c >= bwd_begin) return true;
    }
    return false;
  };
  struct UnitExtent {
    std::string name;
    std::size_t begin = 0, end = 0;
    int first = 0, last = 0;
    bool saved = false;
  };
  std::vector<UnitExtent> extents;
  for (const VUnit& u : units) {
    const TensorPlacement* rep = u.alias != nullptr ? u.alias
                                                    : u.members.front();
    if (u.alias != nullptr || u.members.size() > 1) {
      for (const TensorPlacement* m : u.members) {
        if (m->first_use != rep->first_use || m->last_use != rep->last_use ||
            m->pinned != rep->pinned) {
          Error(issues, "plan/group", "", m->name,
                StrFormat("member interval [%d, %d] differs from its "
                          "group's [%d, %d]",
                          m->first_use, m->last_use, rep->first_use,
                          rep->last_use));
        }
      }
    }
    if (u.alias != nullptr) {
      if (u.alias->elem_bytes != u.members.front()->elem_bytes) {
        Error(issues, "plan/group", "", u.name,
              "alias element size differs from its members");
      }
      // Zero-copy consistency: the members must tile the alias range
      // exactly and contiguously (in declared order when known).
      std::vector<const TensorPlacement*> tiled = u.members;
      if (!u.ordered) {
        std::sort(tiled.begin(), tiled.end(),
                  [](const TensorPlacement* a, const TensorPlacement* b) {
                    return a->offset < b->offset;
                  });
      }
      std::size_t off = u.alias->offset;
      for (const TensorPlacement* m : tiled) {
        if (m->offset != off) {
          Error(issues, "plan/group", "", m->name,
                StrFormat("member starts at %zu; the zero-copy stack "
                          "needs it at %zu",
                          m->offset, off));
          off = m->offset;  // resync: report each break once
        }
        off += m->bytes;
      }
      if (off != u.alias->offset + u.alias->bytes) {
        Error(issues, "plan/group", "", u.name,
              StrFormat("members tile %zu bytes but the alias spans %zu",
                        off - u.alias->offset, u.alias->bytes));
      }
    }
    // Liveness: recompute the unit's merged interval from graph edges.
    int comp_first = INT_MAX;
    int comp_last = -1;
    int plain_first = INT_MAX;
    int plain_last = -1;
    for (const TensorPlacement* m : u.members) {
      const auto [first, last] = interval(m->name, /*expanded=*/true);
      comp_first = std::min(comp_first, first);
      comp_last = std::max(comp_last, last);
      const auto [pf, pl] = interval(m->name, /*expanded=*/false);
      plain_first = std::min(plain_first, pf);
      plain_last = std::max(plain_last, pl);
    }
    const bool comp_pinned = comp_first < 0;
    if (opt != nullptr) {
      if (rep->first_use != comp_first || rep->last_use != comp_last) {
        Error(issues, "plan/liveness", "", u.name,
              StrFormat("recorded interval [%d, %d] but the graph implies "
                        "[%d, %d]",
                        rep->first_use, rep->last_use, comp_first,
                        comp_last));
      }
    } else if (rep->first_use > comp_first || rep->last_use < comp_last) {
      Error(issues, "plan/liveness", "", u.name,
            StrFormat("recorded interval [%d, %d] does not cover the "
                      "graph-implied [%d, %d]",
                      rep->first_use, rep->last_use, comp_first, comp_last));
    }
    if (rep->pinned != comp_pinned) {
      Error(issues, "plan/pinned", "", u.name,
            comp_pinned
                ? "graph input must be recorded pinned (never recycled)"
                : "recorded pinned but the container is not a graph input");
    }
    if (rep->offset % alignment != 0) {
      Error(issues, "plan/alignment", "", u.name,
            StrFormat("offset %zu is not a multiple of %zu", rep->offset,
                      alignment));
    }
    bool saved = false;
    for (const TensorPlacement* m : u.members) {
      saved = saved || saved_activation(m->name);
    }
    extents.push_back({u.name, rep->offset, rep->offset + rep->bytes,
                       plain_first, plain_last, saved});
  }
  if (opt != nullptr) {
    for (const auto& [name, t] : g.tensors()) {
      if (t.is_weight || excluded(name)) continue;
      if (!plan.Contains(name)) {
        Error(issues, "plan/coverage", "", name,
              "live container is missing from the plan");
      }
    }
  }
  for (std::size_t i = 0; i < extents.size(); ++i) {
    for (std::size_t j = i + 1; j < extents.size(); ++j) {
      const UnitExtent& a = extents[i];
      const UnitExtent& b = extents[j];
      if (a.begin >= b.end || b.begin >= a.end) continue;
      if (a.first <= b.last && b.first <= a.last) {
        if (a.saved || b.saved) {
          const UnitExtent& s = a.saved ? a : b;
          const UnitExtent& o = a.saved ? b : a;
          Error(issues, "plan/cross-layer-liveness", "", s.name,
                StrFormat("saved activation shares bytes with '%s' inside "
                          "its store-until-backward window ([%d, %d] vs "
                          "[%d, %d]) -- the backward pass would read "
                          "clobbered data",
                          o.name.c_str(), s.first, s.last, o.first, o.last));
        } else {
          Error(issues, "plan/overlap", "", a.name,
                StrFormat("shares bytes with '%s' while both are live "
                          "([%d, %d] vs [%d, %d])",
                          b.name.c_str(), a.first, a.last, b.first, b.last));
        }
      }
    }
  }
  // ---- Concurrent overlap: the task scheduler runs ops with no graph
  // path between them at the same time, so byte reuse justified only by
  // interval disjointness is a data race waiting to happen. For every
  // pair of byte-sharing containers, every access to one must be ordered
  // against every *write* to the other by actual graph edges (reads on
  // both sides are harmless). Independent of opt on purpose: the rule
  // re-derives accessors and reachability from the graph alone.
  {
    // Successor closure per op (own bit set). Ops are in topological
    // order here -- rule graph/topo-order gates all plan checks.
    const std::size_t nops = g.ops().size();
    const std::size_t words = (nops + 63) / 64;
    std::vector<std::uint64_t> closure(nops * words, 0);
    for (std::size_t i = nops; i-- > 0;) {
      std::uint64_t* row = closure.data() + i * words;
      row[i / 64] |= std::uint64_t{1} << (i % 64);
      for (const auto& out : g.ops()[i].outputs) {
        for (int c : g.ConsumersOf(out)) {
          const std::uint64_t* crow =
              closure.data() + static_cast<std::size_t>(c) * words;
          for (std::size_t w = 0; w < words; ++w) row[w] |= crow[w];
        }
      }
    }
    auto reaches = [&](int a, int b) {
      return ((closure[static_cast<std::size_t>(a) * words +
                       static_cast<std::size_t>(b) / 64] >>
               (static_cast<std::size_t>(b) % 64)) &
              1u) != 0;
    };
    struct Touched {
      const TensorPlacement* p = nullptr;
      int producer = -1;
      std::vector<int> accessors;  // producer + consumers
    };
    std::vector<Touched> touched;
    for (const auto& [name, p] : plan.placements()) {
      if (!g.HasTensor(name)) continue;  // group aliases have no edges
      Touched t;
      t.p = &p;
      t.producer = g.ProducerOf(name);
      if (t.producer >= 0) t.accessors.push_back(t.producer);
      for (int c : g.ConsumersOf(name)) t.accessors.push_back(c);
      touched.push_back(std::move(t));
    }
    for (std::size_t i = 0; i < touched.size(); ++i) {
      for (std::size_t j = i + 1; j < touched.size(); ++j) {
        const Touched& x = touched[i];
        const Touched& y = touched[j];
        if (x.p->offset >= y.p->offset + y.p->bytes ||
            y.p->offset >= x.p->offset + x.p->bytes) {
          continue;
        }
        // Clone-involved byte sharing is exempt: recompute clones have no
        // graph path to the subgraphs whose bytes they reuse, but the
        // executor's byte-span safety net (BuildStepDeps) serializes
        // byte-sharing steps in schedule order, and the liveness rules
        // above already rejected any window overlap. Mirrors the
        // planner's clone relaxation (graph/memory_plan.cpp).
        const auto clone_made = [&](const Touched& t) {
          return t.producer >= 0 &&
                 !g.ops()[static_cast<std::size_t>(t.producer)]
                      .recompute_of.empty();
        };
        if (clone_made(x) || clone_made(y)) continue;
        bool reported = false;
        for (int p : x.accessors) {
          for (int q : y.accessors) {
            if (p == q) continue;
            if (p != x.producer && q != y.producer) continue;  // both read
            if (reaches(p, q) || reaches(q, p)) continue;
            // The Forward()/Backward() call boundary is a hard
            // synchronization point: accesses on opposite sides of it can
            // never run concurrently even without a graph path (recompute
            // clones count as backward). The planner's concurrency check
            // relies on the same barrier (graph/memory_plan.cpp).
            if ((p < bwd_begin) != (q < bwd_begin)) continue;
            Error(issues, "plan/concurrent-overlap",
                  g.ops()[static_cast<std::size_t>(p)].name, x.p->name,
                  StrFormat("shares bytes with '%s', but the graph has no "
                            "path between '%s' and '%s' and one of them "
                            "writes -- the scheduler may run them "
                            "concurrently",
                            y.p->name.c_str(),
                            g.ops()[static_cast<std::size_t>(p)].name.c_str(),
                            g.ops()[static_cast<std::size_t>(q)].name.c_str()));
            reported = true;
            break;
          }
          if (reported) break;
        }
      }
    }
  }
  // ---- Fused-kernel atomicity: inside one fused launch every input is
  // read while the outputs are written, so their bytes must be disjoint.
  if (opt != nullptr) {
    for (const auto& span : opt->fused_spans) {
      std::set<std::string> ins, outs;
      for (const auto& op_name : span) {
        for (const auto& op : g.ops()) {
          if (op.name != op_name) continue;
          for (const auto& in : op.inputs) {
            if (plan.Contains(in) && g.HasTensor(in)) ins.insert(in);
          }
          for (const auto& out : op.outputs) {
            if (plan.Contains(out) && g.HasTensor(out)) outs.insert(out);
          }
        }
      }
      for (const auto& out : outs) {
        const TensorPlacement& po = plan.at(out);
        for (const auto& in : ins) {
          if (in == out) continue;
          const TensorPlacement& pi = plan.at(in);
          if (po.offset < pi.offset + pi.bytes &&
              pi.offset < po.offset + po.bytes) {
            Error(issues, "plan/fused-atomic", JoinSpan(span), out,
                  StrFormat("fused-kernel output shares bytes with span "
                            "input '%s'",
                            in.c_str()));
          }
        }
      }
    }
    CheckFusedSpanLint(g, *opt, issues);
  }
}

}  // namespace

std::string ToString(const VerifyIssue& issue) {
  std::string s =
      issue.severity == VerifySeverity::kError ? "[error] " : "[warning] ";
  s += issue.rule_id;
  if (!issue.op.empty()) s += StrFormat(" (op '%s')", issue.op.c_str());
  if (!issue.container.empty()) {
    s += StrFormat(" (container '%s')", issue.container.c_str());
  }
  s += ": ";
  s += issue.message;
  return s;
}

bool VerifyReport::ok() const { return error_count() == 0; }

int VerifyReport::error_count() const {
  int n = 0;
  for (const auto& issue : issues) {
    n += issue.severity == VerifySeverity::kError;
  }
  return n;
}

bool VerifyReport::Has(std::string_view rule_id) const {
  for (const auto& issue : issues) {
    if (issue.rule_id == rule_id) return true;
  }
  return false;
}

std::string VerifyReport::Summary() const {
  std::string s = StrFormat("%zu issue(s), %d error(s)", issues.size(),
                            error_count());
  for (const auto& issue : issues) {
    s += "\n  ";
    s += ToString(issue);
  }
  return s;
}

std::string OpRef(const DataflowGraph& graph, int op_index) {
  if (op_index < 0 ||
      op_index >= static_cast<int>(graph.ops().size())) {
    return StrFormat("op #%d", op_index);
  }
  const OpNode& op = graph.ops()[static_cast<std::size_t>(op_index)];
  return StrFormat("op '%s' (#%d, %s)", op.name.c_str(), op_index,
                   ToString(op.kind).c_str());
}

VerifyReport Verify(const DataflowGraph& graph) {
  VerifyReport report;
  CheckGraph(graph, report.issues);
  return report;
}

VerifyReport Verify(const DataflowGraph& graph, const MemoryPlan& plan) {
  VerifyReport report = Verify(graph);
  if (!HasGraphErrors(report.issues)) {
    CheckPlan(graph, plan, nullptr, report.issues);
  }
  return report;
}

VerifyReport Verify(const DataflowGraph& graph, const MemoryPlan& plan,
                    const PlanOptions& options) {
  VerifyReport report = Verify(graph);
  if (!HasGraphErrors(report.issues)) {
    CheckPlan(graph, plan, &options, report.issues);
  }
  return report;
}

bool VerifyEnvEnabled(const char* value, bool debug_default) {
  if (value == nullptr || *value == '\0') return debug_default;
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return debug_default;
}

bool PreflightVerifyEnabled() {
#ifndef NDEBUG
  constexpr bool kDefault = true;
#else
  constexpr bool kDefault = false;
#endif
  static const bool enabled =
      VerifyEnvEnabled(std::getenv("XFLOW_VERIFY"), kDefault);
  return enabled;
}

}  // namespace xflow::graph
