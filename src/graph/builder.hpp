// Builders for the paper's dataflow graphs: multi-head attention (Fig. 1),
// the full BERT encoder layer, forward + backward (Fig. 2 / Table III),
// and the whole-stack training-step graph (embedding -> N layers -> loss).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace xflow::graph {

/// Model dimensions, named as in the paper (Sec. III-D):
/// B=8, J=K=512, H=16, P=W=64, I=P*H=1024, U=4I=4096 for BERT-large.
struct ModelDims {
  std::int64_t b = 8;     // mini-batch
  std::int64_t j = 512;   // query sequence length
  std::int64_t k = 512;   // key/value sequence length
  std::int64_t h = 16;    // attention heads
  std::int64_t p = 64;    // key/query projection size (w = p for values)
  std::int64_t i = 1024;  // embedding size
  std::int64_t u = 4096;  // feed-forward intermediate size

  static ModelDims BertLarge() { return {}; }
  /// The paper's second configuration (Sec. VI-C): B=96, L=128.
  static ModelDims BertLargeB96() {
    ModelDims d;
    d.b = 96;
    d.j = d.k = 128;
    return d;
  }
  /// BERT-base (Devlin et al.): 12 heads of 64, I=768, U=3072, with the
  /// paper-style batch 8 over sequence length 128. The memory planner's
  /// reported peak-activation reduction is quoted on this configuration.
  static ModelDims BertBase() {
    ModelDims d;
    d.b = 8;
    d.j = d.k = 128;
    d.h = 12;
    d.p = 64;
    d.i = 768;
    d.u = 3072;
    return d;
  }
  /// Reduced dimensions for unit tests (numerics are size-independent).
  static ModelDims Tiny() {
    ModelDims d;
    d.b = 2;
    d.j = d.k = 6;
    d.h = 2;
    d.p = 4;
    d.i = 8;
    d.u = 12;
    return d;
  }
};

/// The algebraic-fusion choice for the Q/K/V input projections (Sec. IV-D).
enum class AlgebraicFusion { kNone, kQK, kQKV };

/// Multi-head attention graph with distinct query/key/value inputs
/// (general attention), matching the paper's Fig. 1. With
/// `include_backward` the backpropagation operators are appended in the
/// order MhaLayerT::Backward executes them, so the memory planner covers
/// the whole step (saved activations live exactly until the backward op
/// that consumes them instead of being pinned for the step).
DataflowGraph BuildMha(const ModelDims& dims, bool include_backward);

/// The forward-only Fig. 1 graph (the figure's own scope).
DataflowGraph BuildMhaForward(const ModelDims& dims);

/// Full BERT encoder layer graph (self-attention + feed-forward), at the
/// operator granularity of Table III. With `include_backward`, the
/// backpropagation operators are appended in the paper's order.
DataflowGraph BuildEncoder(const ModelDims& dims,
                           AlgebraicFusion fusion = AlgebraicFusion::kQKV,
                           bool include_backward = true);

/// Options for the whole-stack training-step graph (BuildEncoderStack).
struct StackGraphOptions {
  int num_layers = 1;
  bool include_backward = true;
  /// Non-zero folds the token+position embedding in front of layer 0: the
  /// graph gains weight tables `token_table`/`pos_table` (and their
  /// gradients), `x` becomes the embedding op's output, and the backward
  /// pass ends with the table-gradient scatter (`embed dW`). Token ids are
  /// runtime data, bound on the executor (GraphExecutorT::BindTokens).
  std::int64_t vocab = 0;
  /// Folds the MSE loss head after the top layer: the graph gains a
  /// `target` input and a one-element fp32 `loss` output, and `d_y`
  /// becomes the loss op's output instead of a graph input.
  bool include_loss = false;
  /// Layers whose interior saved activations are recomputed in the
  /// backward pass instead of stored: the layer's forward operators are
  /// cloned (containers suffixed "@r", OpNode::recompute_of set) directly
  /// before its backward operators, which then read the "@r" versions, so
  /// the originals die inside the forward pass and their bytes recycle.
  /// Layer boundaries (`L<l>.y`) are always stored. Chosen under a byte
  /// budget by the checkpoint planner (graph/checkpoint.hpp).
  std::vector<int> recompute_layers;
};

/// One DataflowGraph for the entire training step: embedding (optional) ->
/// `num_layers` encoder layers -> loss head (optional), forward+backward.
/// Layer l's containers and operators are prefixed "L<l>."; layer l's `x`
/// IS layer l-1's `y` (one container, no copies) and layer l's `d_y` IS
/// layer l+1's `d_x`. Planning this graph as one arena lets cross-layer
/// transients overlap -- only saved activations keep distinct bytes.
DataflowGraph BuildEncoderStack(const ModelDims& dims,
                                const StackGraphOptions& options);

}  // namespace xflow::graph
