// Contraction lowering: classify every einsum op by its spec + extents.
//
// The lowering pass walks a DataflowGraph and records, on each
// kContraction op, the EinsumClass its spec and operand extents derive
// (tensor/einsum_class.hpp) -- plain gemm, strided-batched gemm, gemv,
// ger/outer-product, pure reduction, or transpose-free view -- so the
// executor dispatches each contraction straight to its specialized
// kernel instead of the generic macro-tile pipeline. Classification is a
// pure function of (spec, shapes); the verifier's
// graph/lowering-consistent rule re-derives it through the same entry
// points exported here and cross-checks the recorded class, so a stale
// or hand-forged annotation cannot reach the executor.
//
// Also home to the shared operand-resolution helpers (stacked-block
// shapes, spec-letter extent binding) used by both this pass and
// graph/verify.cpp's shape rules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "tensor/einsum.hpp"

namespace xflow::graph {

/// Spec letter -> bound extent, accumulated across operands.
using DimMap = std::map<char, std::int64_t>;

/// "phbj[8,3,2,10]" -- shape diagnostics shared with the verifier.
std::string ShapeStr(const Shape& s);

/// Stacked operand resolution (the algebraic Q/K/V stacks, Sec. IV-D):
/// members must share rank and trailing extents; the effective operand is
/// member[0] with the leading extent summed. Member dim names beyond the
/// first are positional relabels (the paper's j->k / p->w renames).
std::optional<Shape> StackShapes(const std::vector<const Shape*>& members,
                                 std::string* why);

/// Binds a tensor's extents to the spec letters `letters`, accumulating
/// into `ext` (shared across a, b and out so every letter's extent must
/// cohere). Binding is by name when the name sets agree -- memory order
/// is free -- and positional otherwise (a pure relabel, e.g. the
/// builders' whbj -> whbk value path).
bool BindExtents(const Shape& shape, const std::string& letters, DimMap& ext,
                 std::string* why);

/// The flattened GEMM extents `op`'s spec + operand shapes derive, after
/// stacked-block resolution (the same candidate forms the verifier's
/// shape/contraction rule accepts: plain (a, b), b = stack(inputs[1..]),
/// or a = stack(inputs[..n-2]); stacked outputs form one block).
/// std::nullopt with *why when no candidate binds -- that graph already
/// fails shape/contraction, which owns the diagnostic.
std::optional<GemmExtents> DeriveContractionExtents(const DataflowGraph& g,
                                                    const OpNode& op,
                                                    const EinsumSpec& spec,
                                                    std::string* why);

/// The class `op`'s spec/extents re-derive, or kUnclassified when the
/// spec is malformed or the operand shapes do not bind (those graphs
/// trip graph/arity or shape/contraction instead).
EinsumClass DeriveLoweredClass(const DataflowGraph& g, const OpNode& op);

/// The lowering pass: annotate every kContraction op whose `lowered`
/// field is still kUnclassified with its derived class. Ops already
/// carrying a class are left untouched (so the verifier can still catch
/// a stale annotation), as are ops whose class cannot be derived.
/// Returns the number of ops annotated.
std::size_t LowerContractions(DataflowGraph& g);

}  // namespace xflow::graph
