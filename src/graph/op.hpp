// Operator kinds and the paper's three-class taxonomy (Sec. III-B).
#pragma once

#include <string>

namespace xflow::graph {

/// The paper's operator classes: tensor contractions (△), statistical
/// normalizations (⬜) and element-wise operators (○).
enum class OpClass { kContraction, kStatNorm, kElementwise };

/// Logical operators appearing in transformer training. Following the paper,
/// an operator is one logical computation; it may map to several kernels.
enum class OpKind {
  // Forward.
  kContraction,    // einsum / (batched) MMM
  kBias,           // y = x + b (broadcast add)
  kReLU,           // y = max(x, 0)
  kDropout,        // y = x * mask * 1/(1-p); also emits the mask
  kResidual,       // y = a + b
  kScale,          // y = alpha * x
  kScaledSoftmax,  // softmax(alpha * x) over the key dim + attention dropout
  kLayerNorm,      // per-(b,j) normalization over the embedding dim
  kEmbed,          // x[i,b,j] = token_table[ids[b,j], i] + pos_table[j, i]
  kMseLoss,        // loss = mean((y - target)^2); also emits d_y
  // Backward.
  kBiasDW,            // db = sum over independent dims of dy
  kReLUDX,            // dx = dy * (y > 0)
  kDropoutDX,         // dx = dy * mask * 1/(1-p)
  kResidualBwd,       // gradient merge of a residual connection: dx = da + db
  kScaledSoftmaxDX,   // backward of scaled softmax + dropout
  kLayerNormDX,       // gradient w.r.t. layernorm input
  kLayerNormDW,       // gradients w.r.t. layernorm scale/bias
  kEmbedDW,           // scatter-add of d_x into both embedding tables
};

/// Class of each kind (border style of the node in the paper's figures).
OpClass ClassOf(OpKind kind);

/// True for gradient-computing kinds. The first backward-kind op splits a
/// training-step graph into the forward and backward regions (the loss op
/// is a forward op: it runs at the end of Forward and emits d_y).
bool IsBackwardOp(OpKind kind);

/// Display names, e.g. "tensor contraction".
std::string ToString(OpClass cls);
std::string ToString(OpKind kind);

/// The paper's class glyphs for bench output: "TC" / "SN" / "EW".
std::string ClassGlyph(OpClass cls);

/// flop per *output-driving* element for non-contraction operators, i.e. the
/// constants behind Table III's "required Gflop" column:
///   bias/dropout/residual/scale: 1, relu: 0, softmax fwd: 6 (scale, max,
///   sub, exp, sum, div), softmax bwd: 5, layernorm fwd: 7, dX: 9, dW: 4.
double FlopPerElement(OpKind kind);

}  // namespace xflow::graph
