#include "graph/builder.hpp"

#include <set>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "tensor/einsum.hpp"

namespace xflow::graph {

namespace {

/// Shorthand for adding a contraction node whose flop count comes from its
/// einsum spec evaluated on the named operand shapes.
void AddContraction(DataflowGraph& g, std::string name, std::string spec,
                    const std::string& a, const std::string& b,
                    const std::vector<std::string>& outputs) {
  const auto parsed = EinsumSpec::Parse(spec);
  OpNode op;
  op.name = std::move(name);
  op.kind = OpKind::kContraction;
  op.einsum = std::move(spec);
  op.inputs = {a, b};
  op.outputs = outputs;
  op.flop = static_cast<double>(
      parsed.FlopCount(g.tensor(a).shape, g.tensor(b).shape));
  // Iteration space: all output dims independent, contracted dims reduced.
  const Shape& out_shape = g.tensor(outputs.front()).shape;
  for (const auto& d : out_shape.dims()) op.independent_dims.push_back(d);
  for (char d : parsed.k_dims) {
    op.reduction_dims.push_back({d, g.tensor(a).shape.extent(d)});
  }
  g.AddOp(std::move(op));
}

/// Adds a non-contraction node. `space_of` names the tensor whose shape
/// drives the element count; reduction dims are subtracted from it.
void AddMapOp(DataflowGraph& g, std::string name, OpKind kind,
              std::vector<std::string> inputs, std::vector<std::string> outputs,
              const std::string& space_of, std::string reduce_dims = "",
              std::vector<std::string> saved_outputs = {}) {
  OpNode op;
  op.name = std::move(name);
  op.kind = kind;
  op.inputs = std::move(inputs);
  op.outputs = std::move(outputs);
  op.saved_outputs = std::move(saved_outputs);
  const Shape& space = g.tensor(space_of).shape;
  for (const auto& d : space.dims()) {
    if (reduce_dims.find(d.name) == std::string::npos) {
      op.independent_dims.push_back(d);
    } else {
      op.reduction_dims.push_back(d);
    }
  }
  op.flop = FlopPerElement(kind) * static_cast<double>(space.num_elements());
  g.AddOp(std::move(op));
}

}  // namespace

DataflowGraph BuildMhaForward(const ModelDims& d) {
  return BuildMha(d, /*include_backward=*/false);
}

DataflowGraph BuildMha(const ModelDims& d, bool include_backward) {
  DataflowGraph g;
  // Inputs (general attention: distinct q, k, v as in Fig. 1).
  g.AddTensor("q", Shape("ibj", {d.i, d.b, d.j}));
  g.AddTensor("k", Shape("ibk", {d.i, d.b, d.k}));
  g.AddTensor("v", Shape("ibk", {d.i, d.b, d.k}));
  g.AddTensor("wq", Shape("phi", {d.p, d.h, d.i}), /*is_weight=*/true);
  g.AddTensor("wk", Shape("phi", {d.p, d.h, d.i}), true);
  g.AddTensor("wv", Shape("whi", {d.p, d.h, d.i}), true);
  g.AddTensor("wo", Shape("whi", {d.p, d.h, d.i}), true);
  g.AddTensor("bq", Shape("ph", {d.p, d.h}), true);
  g.AddTensor("bk", Shape("ph", {d.p, d.h}), true);
  g.AddTensor("bv", Shape("wh", {d.p, d.h}), true);
  g.AddTensor("bo", Shape("i", {d.i}), true);

  g.AddTensor("qq", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("kk", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("vv", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("qq_b", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("kk_b", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("vv_b", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("beta", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("alpha", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("attn_mask", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("softmax_saved", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("gamma", Shape("whbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("attn_out", Shape("ibj", {d.i, d.b, d.j}));
  g.AddTensor("out", Shape("ibj", {d.i, d.b, d.j}));

  AddContraction(g, "Q", "phi,ibj->phbj", "wq", "q", {"qq"});
  AddContraction(g, "K", "phi,ibk->phbk", "wk", "k", {"kk"});
  AddContraction(g, "V", "whi,ibk->whbk", "wv", "v", {"vv"});
  AddMapOp(g, "bias Q", OpKind::kBias, {"qq", "bq"}, {"qq_b"}, "qq");
  AddMapOp(g, "bias K", OpKind::kBias, {"kk", "bk"}, {"kk_b"}, "kk");
  AddMapOp(g, "bias V", OpKind::kBias, {"vv", "bv"}, {"vv_b"}, "vv");
  AddContraction(g, "QKT", "phbk,phbj->hbjk", "kk_b", "qq_b", {"beta"});
  AddMapOp(g, "scaled softmax", OpKind::kScaledSoftmax, {"beta"},
           {"alpha", "attn_mask", "softmax_saved"}, "beta", "k",
           {"attn_mask", "softmax_saved"});
  AddContraction(g, "gamma", "whbk,hbjk->whbj", "vv_b", "alpha", {"gamma"});
  AddContraction(g, "out", "whi,whbj->ibj", "wo", "gamma", {"attn_out"});
  AddMapOp(g, "bias out", OpKind::kBias, {"attn_out", "bo"}, {"out"},
           "attn_out");
  if (!include_backward) return g;

  // ---- Containers: backward (d_out arrives from the caller).
  g.AddTensor("d_out", Shape("ibj", {d.i, d.b, d.j}));
  g.AddTensor("d_bo", Shape("i", {d.i}), /*is_weight=*/true);
  g.AddTensor("d_gamma", Shape("whbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("d_wo", Shape("whi", {d.p, d.h, d.i}), true);
  g.AddTensor("d_alpha", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("d_vv", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("d_beta", Shape("hbjk", {d.h, d.b, d.j, d.k}));
  g.AddTensor("d_kk", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("d_qq", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("d_bq", Shape("ph", {d.p, d.h}), true);
  g.AddTensor("d_bk", Shape("ph", {d.p, d.h}), true);
  g.AddTensor("d_bv", Shape("wh", {d.p, d.h}), true);
  g.AddTensor("d_q", Shape("ibj", {d.i, d.b, d.j}));
  g.AddTensor("d_k", Shape("ibk", {d.i, d.b, d.k}));
  g.AddTensor("d_v", Shape("ibk", {d.i, d.b, d.k}));
  g.AddTensor("d_wq", Shape("phi", {d.p, d.h, d.i}), true);
  g.AddTensor("d_wk", Shape("phi", {d.p, d.h, d.i}), true);
  g.AddTensor("d_wv", Shape("whi", {d.p, d.h, d.i}), true);

  // ---- Backward operators, in MhaLayerT::Backward's execution order so
  // the first-fit plan's liveness matches the runtime exactly.
  AddMapOp(g, "bias out dW", OpKind::kBiasDW, {"d_out"}, {"d_bo"},
           "attn_out", "bj");
  AddContraction(g, "out dX", "whi,ibj->whbj", "wo", "d_out", {"d_gamma"});
  AddContraction(g, "out dW", "ibj,whbj->whi", "d_out", "gamma", {"d_wo"});
  AddContraction(g, "gamma dX1", "whbk,whbj->hbjk", "vv_b", "d_gamma",
                 {"d_alpha"});
  AddContraction(g, "gamma dX2", "whbj,hbjk->whbk", "d_gamma", "alpha",
                 {"d_vv"});
  AddMapOp(g, "scaled softmax dX", OpKind::kScaledSoftmaxDX,
           {"d_alpha", "attn_mask", "softmax_saved"}, {"d_beta"}, "beta",
           "k");
  AddContraction(g, "QKT dX1", "phbj,hbjk->phbk", "qq_b", "d_beta", {"d_kk"});
  AddContraction(g, "QKT dX2", "hbjk,phbk->phbj", "d_beta", "kk_b", {"d_qq"});
  AddMapOp(g, "bias Q dW", OpKind::kBiasDW, {"d_qq"}, {"d_bq"}, "qq", "bj");
  AddMapOp(g, "bias K dW", OpKind::kBiasDW, {"d_kk"}, {"d_bk"}, "kk", "bk");
  AddMapOp(g, "bias V dW", OpKind::kBiasDW, {"d_vv"}, {"d_bv"}, "vv", "bk");
  AddContraction(g, "Q dX", "phi,phbj->ibj", "wq", "d_qq", {"d_q"});
  AddContraction(g, "K dX", "phi,phbk->ibk", "wk", "d_kk", {"d_k"});
  AddContraction(g, "V dX", "whi,whbk->ibk", "wv", "d_vv", {"d_v"});
  AddContraction(g, "Q dW", "phbj,ibj->phi", "d_qq", "q", {"d_wq"});
  AddContraction(g, "K dW", "phbk,ibk->phi", "d_kk", "k", {"d_wk"});
  AddContraction(g, "V dW", "whbk,ibk->whi", "d_vv", "v", {"d_wv"});
  return g;
}

DataflowGraph BuildEncoder(const ModelDims& d, AlgebraicFusion fusion,
                           bool include_backward) {
  // The backward graph is modeled for the fully (QKV) algebraically fused
  // projection, the configuration Table III reports; forward-only graphs
  // support all three variants for the Table II ablation.
  require(!include_backward || fusion == AlgebraicFusion::kQKV,
          "backward graph requires AlgebraicFusion::kQKV");
  DataflowGraph g;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape bj("bj", {d.b, d.j});

  // ---- Containers: forward.
  g.AddTensor("x", ibj);
  const std::int64_t p3 = 3 * d.p;
  switch (fusion) {
    case AlgebraicFusion::kQKV:
      g.AddTensor("w_qkv", Shape("phi", {p3, d.h, d.i}), true);
      break;
    case AlgebraicFusion::kQK:
      g.AddTensor("w_qk", Shape("phi", {2 * d.p, d.h, d.i}), true);
      g.AddTensor("w_v", Shape("whi", {d.p, d.h, d.i}), true);
      break;
    case AlgebraicFusion::kNone:
      g.AddTensor("w_q", Shape("phi", {d.p, d.h, d.i}), true);
      g.AddTensor("w_k", Shape("phi", {d.p, d.h, d.i}), true);
      g.AddTensor("w_v", Shape("whi", {d.p, d.h, d.i}), true);
      break;
  }
  g.AddTensor("b_qkv", Shape("ph", {p3, d.h}), true);
  g.AddTensor("qq", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("kk", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("vv", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("qq_b", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("kk_b", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("vv_b", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("beta", hbjk);
  g.AddTensor("alpha", hbjk);
  g.AddTensor("attn_mask", hbjk);
  g.AddTensor("softmax_saved", hbjk);
  g.AddTensor("gamma_t", Shape("whbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("w_out", Shape("whi", {d.p, d.h, d.i}), true);
  g.AddTensor("b_out", Shape("i", {d.i}), true);
  g.AddTensor("attn_out", ibj);
  g.AddTensor("attn_biased", ibj);
  g.AddTensor("attn_dropped", ibj);
  g.AddTensor("attn_drop_mask", ibj);
  g.AddTensor("resid1", ibj);
  g.AddTensor("ln1_w", Shape("i", {d.i}), true);
  g.AddTensor("ln1_b", Shape("i", {d.i}), true);
  g.AddTensor("ln1_out", ibj);
  g.AddTensor("ln1_mean", bj);
  g.AddTensor("ln1_rstd", bj);
  g.AddTensor("w1", Shape("ui", {d.u, d.i}), true);
  g.AddTensor("b1", Shape("u", {d.u}), true);
  g.AddTensor("lin1", ubj);
  g.AddTensor("lin1_biased", ubj);
  g.AddTensor("relu1", ubj);
  g.AddTensor("ff_dropped", ubj);
  g.AddTensor("ff_drop_mask", ubj);
  g.AddTensor("w2", Shape("iu", {d.i, d.u}), true);
  g.AddTensor("b2", Shape("i", {d.i}), true);
  g.AddTensor("lin2", ibj);
  g.AddTensor("lin2_biased", ibj);
  g.AddTensor("lin2_dropped", ibj);
  g.AddTensor("lin2_drop_mask", ibj);
  g.AddTensor("resid2", ibj);
  g.AddTensor("ln2_w", Shape("i", {d.i}), true);
  g.AddTensor("ln2_b", Shape("i", {d.i}), true);
  g.AddTensor("y", ibj);
  g.AddTensor("ln2_mean", bj);
  g.AddTensor("ln2_rstd", bj);

  // ---- Forward operators (Table III order).
  switch (fusion) {
    case AlgebraicFusion::kQKV: {
      // One stacked GEMM produces all three projections (Sec. IV-D).
      const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
      OpNode op;
      op.name = "Q,K,V";
      op.kind = OpKind::kContraction;
      op.einsum = "phi,ibj->phbj";
      op.inputs = {"w_qkv", "x"};
      op.outputs = {"qq", "kk", "vv"};
      op.flop = static_cast<double>(
          spec.FlopCount(g.tensor("w_qkv").shape, g.tensor("x").shape));
      op.independent_dims = {{'p', p3}, {'h', d.h}, {'b', d.b}, {'j', d.j}};
      op.reduction_dims = {{'i', d.i}};
      g.AddOp(std::move(op));
      break;
    }
    case AlgebraicFusion::kQK: {
      const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
      OpNode op;
      op.name = "Q,K";
      op.kind = OpKind::kContraction;
      op.einsum = "phi,ibj->phbj";
      op.inputs = {"w_qk", "x"};
      op.outputs = {"qq", "kk"};
      op.flop = static_cast<double>(
          spec.FlopCount(g.tensor("w_qk").shape, g.tensor("x").shape));
      op.independent_dims = {{'p', 2 * d.p}, {'h', d.h}, {'b', d.b}, {'j', d.j}};
      op.reduction_dims = {{'i', d.i}};
      g.AddOp(std::move(op));
      AddContraction(g, "V", "whi,ibj->whbj", "w_v", "x", {"vv"});
      break;
    }
    case AlgebraicFusion::kNone:
      AddContraction(g, "Q", "phi,ibj->phbj", "w_q", "x", {"qq"});
      AddContraction(g, "K", "phi,ibj->phbj", "w_k", "x", {"kk"});
      AddContraction(g, "V", "whi,ibj->whbj", "w_v", "x", {"vv"});
      break;
  }
  {
    // Attention input bias over all three projections (AIB).
    OpNode op;
    op.name = "input bias";
    op.kind = OpKind::kBias;
    op.inputs = {"qq", "kk", "vv", "b_qkv"};
    op.outputs = {"qq_b", "kk_b", "vv_b"};
    op.independent_dims = {{'p', p3}, {'h', d.h}, {'b', d.b}, {'j', d.j}};
    op.flop = static_cast<double>(3 * g.tensor("qq").shape.num_elements());
    g.AddOp(std::move(op));
  }
  AddContraction(g, "QKT", "phbk,phbj->hbjk", "kk_b", "qq_b", {"beta"});
  AddMapOp(g, "scaled softmax", OpKind::kScaledSoftmax, {"beta"},
           {"alpha", "attn_mask", "softmax_saved"}, "beta", "k",
           {"attn_mask", "softmax_saved"});
  AddContraction(g, "gamma", "whbk,hbjk->whbj", "vv_b", "alpha", {"gamma_t"});
  AddContraction(g, "out", "whi,whbj->ibj", "w_out", "gamma_t", {"attn_out"});
  AddMapOp(g, "output bias", OpKind::kBias, {"attn_out", "b_out"},
           {"attn_biased"}, "attn_out");
  AddMapOp(g, "attn dropout", OpKind::kDropout, {"attn_biased"},
           {"attn_dropped", "attn_drop_mask"}, "attn_biased", "",
           {"attn_drop_mask"});
  AddMapOp(g, "residual 1", OpKind::kResidual, {"attn_dropped", "x"},
           {"resid1"}, "resid1");
  AddMapOp(g, "layernorm 1", OpKind::kLayerNorm, {"resid1", "ln1_w", "ln1_b"},
           {"ln1_out", "ln1_mean", "ln1_rstd"}, "resid1", "i",
           {"ln1_mean", "ln1_rstd"});
  AddContraction(g, "linear 1", "ui,ibj->ubj", "w1", "ln1_out", {"lin1"});
  AddMapOp(g, "bias 1", OpKind::kBias, {"lin1", "b1"}, {"lin1_biased"},
           "lin1");
  AddMapOp(g, "relu", OpKind::kReLU, {"lin1_biased"}, {"relu1"}, "relu1");
  AddMapOp(g, "ff dropout", OpKind::kDropout, {"relu1"},
           {"ff_dropped", "ff_drop_mask"}, "relu1", "", {"ff_drop_mask"});
  AddContraction(g, "linear 2", "iu,ubj->ibj", "w2", "ff_dropped", {"lin2"});
  AddMapOp(g, "bias 2", OpKind::kBias, {"lin2", "b2"}, {"lin2_biased"},
           "lin2");
  AddMapOp(g, "ff2 dropout", OpKind::kDropout, {"lin2_biased"},
           {"lin2_dropped", "lin2_drop_mask"}, "lin2_biased", "",
           {"lin2_drop_mask"});
  AddMapOp(g, "residual 2", OpKind::kResidual, {"lin2_dropped", "ln1_out"},
           {"resid2"}, "resid2");
  AddMapOp(g, "layernorm 2", OpKind::kLayerNorm, {"resid2", "ln2_w", "ln2_b"},
           {"y", "ln2_mean", "ln2_rstd"}, "resid2", "i",
           {"ln2_mean", "ln2_rstd"});

  if (!include_backward) return g;

  // ---- Containers: backward.
  g.AddTensor("d_y", ibj);
  g.AddTensor("d_ln2_w", Shape("i", {d.i}), true);
  g.AddTensor("d_ln2_b", Shape("i", {d.i}), true);
  g.AddTensor("d_resid2", ibj);
  g.AddTensor("d_lin2_biased", ibj);
  g.AddTensor("d_b2", Shape("i", {d.i}), true);
  g.AddTensor("d_ff_dropped", ubj);
  g.AddTensor("d_w2", Shape("iu", {d.i, d.u}), true);
  g.AddTensor("d_relu1", ubj);
  g.AddTensor("d_lin1_biased", ubj);
  g.AddTensor("d_b1", Shape("u", {d.u}), true);
  g.AddTensor("d_ln1_ff", ibj);
  g.AddTensor("d_w1", Shape("ui", {d.u, d.i}), true);
  g.AddTensor("d_ln1_out", ibj);
  g.AddTensor("d_ln1_w", Shape("i", {d.i}), true);
  g.AddTensor("d_ln1_b", Shape("i", {d.i}), true);
  g.AddTensor("d_resid1", ibj);
  g.AddTensor("d_attn_biased", ibj);
  g.AddTensor("d_b_out", Shape("i", {d.i}), true);
  g.AddTensor("d_gamma", Shape("whbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("d_w_out", Shape("whi", {d.p, d.h, d.i}), true);
  g.AddTensor("d_alpha", hbjk);
  g.AddTensor("d_vv", Shape("whbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("d_beta", hbjk);
  g.AddTensor("d_kk", Shape("phbk", {d.p, d.h, d.b, d.k}));
  g.AddTensor("d_qq", Shape("phbj", {d.p, d.h, d.b, d.j}));
  g.AddTensor("d_x_qkv", ibj);
  g.AddTensor("d_w_qkv", Shape("phi", {p3, d.h, d.i}), true);
  g.AddTensor("d_b_qkv", Shape("ph", {p3, d.h}), true);
  g.AddTensor("d_x", ibj);

  // ---- Backward operators (Table III order).
  AddMapOp(g, "layernorm 2 dW", OpKind::kLayerNormDW,
           {"d_y", "resid2", "ln2_mean", "ln2_rstd"}, {"d_ln2_w", "d_ln2_b"},
           "resid2", "bj");
  AddMapOp(g, "layernorm 2 dX", OpKind::kLayerNormDX,
           {"d_y", "ln2_w", "resid2", "ln2_mean", "ln2_rstd"}, {"d_resid2"},
           "resid2", "i");
  AddMapOp(g, "ff2 dropout dX", OpKind::kDropoutDX,
           {"d_resid2", "lin2_drop_mask"}, {"d_lin2_biased"}, "resid2");
  AddContraction(g, "linear 2 dX", "iu,ibj->ubj", "w2", "d_lin2_biased",
                 {"d_ff_dropped"});
  AddContraction(g, "linear 2 dW", "ibj,ubj->iu", "d_lin2_biased",
                 "ff_dropped", {"d_w2"});
  AddMapOp(g, "bias 2 dW", OpKind::kBiasDW, {"d_lin2_biased"}, {"d_b2"},
           "lin2_biased", "bj");
  AddMapOp(g, "ff dropout dX", OpKind::kDropoutDX,
           {"d_ff_dropped", "ff_drop_mask"}, {"d_relu1"}, "relu1");
  AddMapOp(g, "relu dX", OpKind::kReLUDX, {"d_relu1", "relu1"},
           {"d_lin1_biased"}, "relu1");
  AddMapOp(g, "bias 1 dW", OpKind::kBiasDW, {"d_lin1_biased"}, {"d_b1"},
           "lin1_biased", "bj");
  AddContraction(g, "linear 1 dX", "ui,ubj->ibj", "w1", "d_lin1_biased",
                 {"d_ln1_ff"});
  AddContraction(g, "linear 1 dW", "ubj,ibj->ui", "d_lin1_biased", "ln1_out",
                 {"d_w1"});
  AddMapOp(g, "residual 2 bwd", OpKind::kResidualBwd,
           {"d_ln1_ff", "d_resid2"}, {"d_ln1_out"}, "resid2");
  AddMapOp(g, "layernorm 1 dW", OpKind::kLayerNormDW,
           {"d_ln1_out", "resid1", "ln1_mean", "ln1_rstd"},
           {"d_ln1_w", "d_ln1_b"}, "resid1", "bj");
  AddMapOp(g, "layernorm 1 dX", OpKind::kLayerNormDX,
           {"d_ln1_out", "ln1_w", "resid1", "ln1_mean", "ln1_rstd"},
           {"d_resid1"}, "resid1", "i");
  AddMapOp(g, "attn dropout dX", OpKind::kDropoutDX,
           {"d_resid1", "attn_drop_mask"}, {"d_attn_biased"}, "resid1");
  AddMapOp(g, "output bias dW", OpKind::kBiasDW, {"d_attn_biased"},
           {"d_b_out"}, "attn_biased", "bj");
  AddContraction(g, "out dX", "whi,ibj->whbj", "w_out", "d_attn_biased",
                 {"d_gamma"});
  AddContraction(g, "out dW", "ibj,whbj->whi", "d_attn_biased", "gamma_t",
                 {"d_w_out"});
  AddContraction(g, "gamma dX1", "whbk,whbj->hbjk", "vv_b", "d_gamma",
                 {"d_alpha"});
  AddContraction(g, "gamma dX2", "whbj,hbjk->whbk", "d_gamma", "alpha",
                 {"d_vv"});
  AddMapOp(g, "scaled softmax dX", OpKind::kScaledSoftmaxDX,
           {"d_alpha", "attn_mask", "softmax_saved"}, {"d_beta"}, "beta",
           "k");
  AddContraction(g, "QKT dX1", "phbj,hbjk->phbk", "qq_b", "d_beta", {"d_kk"});
  AddContraction(g, "QKT dX2", "hbjk,phbk->phbj", "d_beta", "kk_b", {"d_qq"});
  {
    // dX and dW for the stacked projection: one GEMM each (Sec. IV-D).
    OpNode dx;
    dx.name = "Q,K,V dX";
    dx.kind = OpKind::kContraction;
    dx.einsum = "phi,phbj->ibj";
    dx.inputs = {"w_qkv", "d_qq", "d_kk", "d_vv"};
    dx.outputs = {"d_x_qkv"};
    dx.flop = 2.0 * static_cast<double>(p3 * d.h * d.i * d.b * d.j);
    dx.independent_dims = {{'i', d.i}, {'b', d.b}, {'j', d.j}};
    dx.reduction_dims = {{'p', p3}, {'h', d.h}};
    g.AddOp(std::move(dx));

    OpNode dw;
    dw.name = "Q,K,V dW";
    dw.kind = OpKind::kContraction;
    dw.einsum = "phbj,ibj->phi";
    dw.inputs = {"d_qq", "d_kk", "d_vv", "x"};
    dw.outputs = {"d_w_qkv"};
    dw.flop = 2.0 * static_cast<double>(p3 * d.h * d.i * d.b * d.j);
    dw.independent_dims = {{'p', p3}, {'h', d.h}, {'i', d.i}};
    dw.reduction_dims = {{'b', d.b}, {'j', d.j}};
    g.AddOp(std::move(dw));
  }
  {
    // Attention input bias gradient over all three projections (BAIB).
    OpNode op;
    op.name = "input bias dW";
    op.kind = OpKind::kBiasDW;
    op.inputs = {"d_qq", "d_kk", "d_vv"};
    op.outputs = {"d_b_qkv"};
    op.independent_dims = {{'p', p3}, {'h', d.h}};
    op.reduction_dims = {{'b', d.b}, {'j', d.j}};
    op.flop = static_cast<double>(3 * g.tensor("qq").shape.num_elements());
    g.AddOp(std::move(op));
  }
  AddMapOp(g, "encoder input bwd", OpKind::kResidualBwd,
           {"d_x_qkv", "d_resid1"}, {"d_x"}, "x");
  return g;
}

namespace {

/// Maps a per-layer container name into the whole-stack namespace: layer
/// boundaries collapse (layer l's `x` IS layer l-1's `y`, layer l's `d_y`
/// IS layer l+1's `d_x`), everything else gets the "L<l>." prefix.
std::string StackName(int layer, const StackGraphOptions& o,
                      const std::string& name) {
  if (name == "x") {
    return layer == 0 ? std::string("x") : StrFormat("L%d.y", layer - 1);
  }
  if (name == "d_y") {
    return layer == o.num_layers - 1 ? std::string("d_y")
                                     : StrFormat("L%d.d_x", layer + 1);
  }
  return StrFormat("L%d.%s", layer, name.c_str());
}

}  // namespace

DataflowGraph BuildEncoderStack(const ModelDims& d,
                                const StackGraphOptions& o) {
  require(o.num_layers >= 1, "stack graph needs at least one layer");
  for (int l : o.recompute_layers) {
    require(l >= 0 && l < o.num_layers, "recompute layer out of range");
    require(o.include_backward,
            "recompute layers only exist in the backward graph");
  }
  const DataflowGraph layer =
      BuildEncoder(d, AlgebraicFusion::kQKV, o.include_backward);
  // Split the per-layer op list into forward and backward regions (the
  // first gradient-computing op opens the backward region).
  std::size_t bwd_begin = layer.ops().size();
  for (std::size_t i = 0; i < layer.ops().size(); ++i) {
    if (IsBackwardOp(layer.ops()[i].kind)) {
      bwd_begin = i;
      break;
    }
  }
  // Interior forward products of one layer -- what a checkpointed layer
  // recomputes. `y` is a layer boundary: always stored, never cloned into
  // a consumable "@r" version (its clone output is a dead byproduct).
  std::set<std::string> fwd_interior;
  for (std::size_t i = 0; i < bwd_begin; ++i) {
    for (const auto& out : layer.ops()[i].outputs) {
      if (out != "y") fwd_interior.insert(out);
    }
  }
  const std::set<int> recompute(o.recompute_layers.begin(),
                                o.recompute_layers.end());

  DataflowGraph g;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  if (o.vocab > 0) {
    g.AddTensor("token_table", Shape("vi", {o.vocab, d.i}), true);
    g.AddTensor("pos_table", Shape("ji", {d.j, d.i}), true);
    if (o.include_backward) {
      g.AddTensor("d_token_table", Shape("vi", {o.vocab, d.i}), true);
      g.AddTensor("d_pos_table", Shape("ji", {d.j, d.i}), true);
    }
  }
  for (int l = 0; l < o.num_layers; ++l) {
    for (const auto& [name, t] : layer.tensors()) {
      const std::string mapped = StackName(l, o, name);
      if (!g.HasTensor(mapped)) g.AddTensor(mapped, t.shape, t.is_weight);
    }
  }
  if (o.include_loss) {
    g.AddTensor("target", ibj);
    g.AddTensor("loss", Shape("s", {1}));
    if (!g.HasTensor("d_y")) g.AddTensor("d_y", ibj);
  }

  // Clones a per-layer op into the stack. `as_clone` re-emits a forward op
  // as a checkpoint-recompute twin; `in_backward` marks ops of the
  // backward region, whose reads of a checkpointed layer's interior
  // tensors retarget to the recomputed "@r" versions.
  auto add_layer_op = [&](int l, const OpNode& op, bool as_clone,
                          bool in_backward) {
    const bool layer_ckpt = recompute.contains(l);
    OpNode mapped = op;
    mapped.name = StrFormat("L%d.%s%s", l, op.name.c_str(),
                            as_clone ? "@r" : "");
    mapped.inputs.clear();
    for (const auto& in : op.inputs) {
      std::string n = StackName(l, o, in);
      if (fwd_interior.contains(in) &&
          (as_clone || (layer_ckpt && in_backward))) {
        n += "@r";
      }
      mapped.inputs.push_back(std::move(n));
    }
    mapped.outputs.clear();
    for (const auto& out : op.outputs) {
      std::string n = StackName(l, o, out) + (as_clone ? "@r" : "");
      if (as_clone && !g.HasTensor(n)) {
        g.AddTensor(n, layer.tensor(out).shape);
      }
      mapped.outputs.push_back(std::move(n));
    }
    mapped.saved_outputs.clear();
    for (const auto& s : op.saved_outputs) {
      mapped.saved_outputs.push_back(StackName(l, o, s) +
                                     (as_clone ? "@r" : ""));
    }
    if (as_clone) {
      mapped.recompute_of = StrFormat("L%d.%s", l, op.name.c_str());
    }
    g.AddOp(std::move(mapped));
  };

  // ---- Forward: embedding, then every layer bottom-up, then the loss.
  if (o.vocab > 0) {
    OpNode op;
    op.name = "embed";
    op.kind = OpKind::kEmbed;
    op.inputs = {"token_table", "pos_table"};
    op.outputs = {"x"};
    op.independent_dims = {{'i', d.i}, {'b', d.b}, {'j', d.j}};
    op.flop = FlopPerElement(OpKind::kEmbed) *
              static_cast<double>(ibj.num_elements());
    g.AddOp(std::move(op));
  }
  for (int l = 0; l < o.num_layers; ++l) {
    for (std::size_t i = 0; i < bwd_begin; ++i) {
      add_layer_op(l, layer.ops()[i], /*as_clone=*/false,
                   /*in_backward=*/false);
    }
  }
  if (o.include_loss) {
    OpNode op;
    op.name = "loss";
    op.kind = OpKind::kMseLoss;
    op.inputs = {StackName(o.num_layers - 1, o, "y"), "target"};
    op.outputs = {"loss", "d_y"};
    // Reduces over the full space: the scalar loss is a serial
    // accumulation, which also bars fusion across the loss head.
    op.reduction_dims = {{'i', d.i}, {'b', d.b}, {'j', d.j}};
    op.flop = FlopPerElement(OpKind::kMseLoss) *
              static_cast<double>(ibj.num_elements());
    g.AddOp(std::move(op));
  }

  // ---- Backward: layers top-down (each checkpointed layer's recompute
  // clones run directly before its backward ops), then the embedding
  // table gradients.
  if (o.include_backward) {
    for (int l = o.num_layers - 1; l >= 0; --l) {
      if (recompute.contains(l)) {
        for (std::size_t i = 0; i < bwd_begin; ++i) {
          add_layer_op(l, layer.ops()[i], /*as_clone=*/true,
                       /*in_backward=*/false);
        }
      }
      for (std::size_t i = bwd_begin; i < layer.ops().size(); ++i) {
        add_layer_op(l, layer.ops()[i], /*as_clone=*/false,
                     /*in_backward=*/true);
      }
    }
    if (o.vocab > 0) {
      OpNode op;
      op.name = "embed dW";
      op.kind = OpKind::kEmbedDW;
      op.inputs = {StackName(0, o, "d_x")};
      op.outputs = {"d_token_table", "d_pos_table"};
      op.independent_dims = {{'i', d.i}};
      op.reduction_dims = {{'b', d.b}, {'j', d.j}};
      op.flop = FlopPerElement(OpKind::kEmbedDW) *
                static_cast<double>(ibj.num_elements());
      g.AddOp(std::move(op));
    }
  }
  return g;
}

}  // namespace xflow::graph
