// Roofline analysis utilities: arithmetic intensity, machine balance, and
// bound prediction -- the quantitative backbone of the paper's "training
// has now become memory-bound" argument (Sec. I) and of the
// IO>flop / IO~flop / IO<flop coloring in Figs. 1-2.
#pragma once

#include "graph/analysis.hpp"
#include "sim/device.hpp"

namespace xflow::sim {

/// flop per byte at which compute and memory time break even.
/// V100 fp16 FPUs: 31.4e12 / 900e9 ~ 35 flop/B; tensor cores: ~139 flop/B.
double MachineBalance(const DeviceSpec& spec, bool tensor_cores);

/// Arithmetic intensity of an operator: flop / bytes moved (fp16 elements).
double ArithmeticIntensity(const graph::OpCost& cost);

enum class RooflineBound { kMemory, kCompute };

/// Which roof the operator sits under on this device.
RooflineBound PredictBound(const DeviceSpec& spec, const graph::OpCost& cost,
                           bool tensor_cores);

/// Attainable flop/s under the roofline (min of both roofs).
double AttainableFlops(const DeviceSpec& spec, const graph::OpCost& cost,
                       bool tensor_cores);

/// The paper's headline diagnosis, computed from a graph: the fraction of
/// runtime a perfect roofline machine would spend in memory-bound
/// operators (paper: "over a third (37%) of the runtime ... is spent in
/// memory-bound operators").
double MemoryBoundRuntimeFraction(const graph::DataflowGraph& g,
                                  const DeviceSpec& spec);

}  // namespace xflow::sim
