#include "sim/roofline.hpp"

#include <algorithm>

#include "common/half.hpp"

namespace xflow::sim {

double MachineBalance(const DeviceSpec& spec, bool tensor_cores) {
  const double peak = tensor_cores ? spec.tensor_core_flops : spec.fp16_flops;
  return peak / spec.mem_bandwidth;
}

double ArithmeticIntensity(const graph::OpCost& cost) {
  const double bytes =
      static_cast<double>(cost.input_elems + cost.output_elems) * kHalfBytes;
  return bytes > 0 ? cost.flop / bytes : 0.0;
}

RooflineBound PredictBound(const DeviceSpec& spec, const graph::OpCost& cost,
                           bool tensor_cores) {
  return ArithmeticIntensity(cost) < MachineBalance(spec, tensor_cores)
             ? RooflineBound::kMemory
             : RooflineBound::kCompute;
}

double AttainableFlops(const DeviceSpec& spec, const graph::OpCost& cost,
                       bool tensor_cores) {
  const double peak = tensor_cores ? spec.tensor_core_flops : spec.fp16_flops;
  return std::min(peak, ArithmeticIntensity(cost) * spec.mem_bandwidth);
}

double MemoryBoundRuntimeFraction(const graph::DataflowGraph& g,
                                  const DeviceSpec& spec) {
  double memory_time = 0, total_time = 0;
  for (const auto& op : g.ops()) {
    const auto cost = CostOf(g, op);
    // Contractions use tensor cores; everything else the fp16 pipes.
    const bool tc = op.cls() == graph::OpClass::kContraction;
    const double peak = tc ? spec.tensor_core_flops : spec.fp16_flops;
    const double bytes =
        static_cast<double>(cost.input_elems + cost.output_elems) *
        kHalfBytes;
    const double t =
        std::max(cost.flop / peak, bytes / spec.mem_bandwidth);
    total_time += t;
    if (PredictBound(spec, cost, tc) == RooflineBound::kMemory) {
      memory_time += t;
    }
  }
  return total_time > 0 ? memory_time / total_time : 0.0;
}

}  // namespace xflow::sim
