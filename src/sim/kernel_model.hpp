// Kernel-level performance model: contractions (tensor cores / fp16 FPUs)
// and memory-bound kernels, plus the MUE metric (Sec. III-C).
#pragma once

#include <cstdint>

#include "sim/device.hpp"
#include "tensor/einsum.hpp"

namespace xflow::sim {

/// Result of modeling one kernel.
struct KernelTiming {
  double time_us = 0;
  double flop = 0;          // flop actually performed
  double bytes_moved = 0;   // DRAM traffic D
  double bytes_minimal = 0; // I/O lower bound Q
  double pct_peak = 0;      // achieved flop/s as % of the relevant peak
  double mue = 0;           // memory usage efficiency, 0..100
  bool memory_bound = false;  // MUE > pct_peak (paper's bolding rule)
};

/// Configuration knobs of a cuBLAS-style contraction call.
struct ContractionConfig {
  bool tensor_cores = true;
  /// Algorithm id in [0, kNumGemmAlgorithms); -1 selects via the built-in
  /// heuristic (which, as the paper found, is up to ~14% off the best).
  int algorithm = -1;
  /// Operand/output layout quality in (0, 1]; computed by the layouts
  /// module from the chosen dimension orders.
  double layout_factor = 1.0;
};

inline constexpr int kNumGemmAlgorithms = 8;

/// Configuration of a memory-bound (fused) kernel.
struct MemoryConfig {
  /// Effective fraction of peak DRAM bandwidth for this configuration
  /// (vectorization, coalescing, reduce/vector-dim interaction).
  double bandwidth_frac = 0.8;
  /// Extra flop-side load (e.g. RNG for dropout, exp for softmax) expressed
  /// as flop per byte moved; creates a compute ceiling for cheap kernels.
  double flop_per_byte_overhead = 0.0;
  int kernel_launches = 1;
};

class GpuModel {
 public:
  explicit GpuModel(DeviceSpec spec) : spec_(spec) {}
  const DeviceSpec& spec() const { return spec_; }

  /// Models a (batched) MMM of the given extents. `essential_bytes` is the
  /// I/O lower bound Q (operands + outputs, fp16).
  KernelTiming Contraction(const GemmExtents& e,
                           const ContractionConfig& cfg) const;

  /// Tensor-core utilization for the extents (the calibrated saturation
  /// curve; exposed for tests and for the layouts module).
  double TensorCoreUtilization(const GemmExtents& e) const;

  /// Per-algorithm efficiency in (0,1]; deterministic in (algorithm, e).
  double AlgorithmFactor(const GemmExtents& e, int algorithm) const;
  /// The algorithm the built-in heuristic would pick (not always the best).
  int HeuristicAlgorithm(const GemmExtents& e) const;
  /// Some library algorithms perform ~2x the necessary flop (Sec. VI-C);
  /// true when `algorithm` is such a pathological one for these extents.
  bool AlgorithmDoublesFlop(const GemmExtents& e, int algorithm) const;

  /// DRAM traffic of a tiled MMM (elements re-read per reuse tile).
  double ContractionTrafficBytes(const GemmExtents& e) const;

  /// Models a memory-bound kernel moving `actual_bytes` (>= minimal).
  KernelTiming MemoryBoundKernel(double minimal_bytes, double actual_bytes,
                                 double flop, const MemoryConfig& cfg) const;

 private:
  DeviceSpec spec_;
};

}  // namespace xflow::sim
