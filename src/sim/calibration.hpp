// Calibrated achieved-bandwidth fractions for memory-bound kernels.
//
// The roofline model needs, per kernel, the fraction of peak DRAM bandwidth
// the implementation achieves. These constants are derived from the paper's
// Table III measurements on V100 (time vs. exact bytes moved), separately
// for our tuned fused kernels and for generic framework (PyTorch-class)
// kernels. They encode real effects: plain streaming kernels (dropout,
// residual) run near peak; reduction kernels (layernorm dW, bias dW) achieve
// a small fraction; softmax pays for exp and RNG.
#pragma once

#include <string_view>

#include "graph/op.hpp"

namespace xflow::sim {

/// Achieved-bandwidth fraction of one of our fused kernels with a good
/// layout configuration, keyed by the paper's kernel name (AIB, SM, BRD,
/// DRLN, BDRLN, BSB, BLNRD, BDRB, EBSB, BS, BEI, BAOB, BAIB).
double TunedKernelBandwidthFrac(std::string_view fused_kernel_name);

/// Achieved-bandwidth fraction of a generic framework kernel per op kind.
double FrameworkBandwidthFrac(graph::OpKind kind);

/// Extra non-flop work (RNG, exp) expressed as flop per byte moved.
double FlopPerByteOverhead(graph::OpKind kind);

}  // namespace xflow::sim
