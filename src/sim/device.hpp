// Analytical GPU device model (the V100 substitution -- see DESIGN.md).
//
// The paper measures on Nvidia V100 (Sec. III-D): 125 Tflop/s tensor-core
// peak, 31.4 Tflop/s fp16 peak, 900 GB/s HBM2. We model kernels with a
// roofline: time = launch + max(flop / (peak * utilization),
//                               bytes / (bandwidth * efficiency)).
#pragma once

namespace xflow::sim {

struct DeviceSpec {
  double tensor_core_flops = 125e12;  // Tensor Core fp16 FMA peak
  double fp16_flops = 31.4e12;        // half-precision FPU peak
  double fp32_flops = 15.7e12;
  double mem_bandwidth = 900e9;       // HBM2 peak, bytes/s
  double kernel_launch_us = 3.0;      // launch + driver overhead per kernel
  int sm_count = 80;
  /// Effective per-SM tile edge (elements) for GEMM operand reuse; sets the
  /// DRAM traffic of a tiled MMM (see ContractionTrafficBytes).
  int gemm_reuse_tile = 256;

  static DeviceSpec V100() { return {}; }
};

}  // namespace xflow::sim
