#include "sim/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"

namespace xflow::sim {

namespace {

/// Deterministic hash used for per-algorithm behavior.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51'AFD7'ED55'8CCDull;
  x ^= x >> 33;
  x *= 0xC4CE'B9FE'1A85'EC53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t ExtentsKey(const GemmExtents& e) {
  return Mix((static_cast<std::uint64_t>(e.m) << 40) ^
             (static_cast<std::uint64_t>(e.n) << 20) ^
             static_cast<std::uint64_t>(e.k) ^
             (static_cast<std::uint64_t>(e.batch) << 52));
}

}  // namespace

double GpuModel::TensorCoreUtilization(const GemmExtents& e) const {
  // Calibrated saturation model:
  //  * K-depth factor: tensor cores need deep contractions to stream
  //    operands through the MMA pipeline. K=64 -> ~0.33, K=1024 -> ~0.89.
  //  * Occupancy factor: enough output tiles to occupy every SM.
  //  * Narrow-dim factor: output dims below one 128-wide MMA tile leave
  //    tensor-core lanes idle (the paper's QKT / gamma observation).
  //  * Peak ceiling u_max = 0.75: large GEMMs top out near ~62-68% of the
  //    125 Tflop/s marketing peak (paper Table III, Fig. 4).
  const double k_factor =
      static_cast<double>(e.k) / (static_cast<double>(e.k) + 128.0);
  const double tiles = std::ceil(static_cast<double>(e.m) / 128.0) *
                       std::ceil(static_cast<double>(e.n) / 128.0) *
                       static_cast<double>(e.batch);
  const double sms = static_cast<double>(spec_.sm_count);
  // Fewer tiles than SMs: idle SMs. More: the last wave is partially full
  // (wave quantization) -- the reason stacking Q/K/V into one GEMM beats
  // three separate calls (Table II) beyond saved launches.
  const double occupancy =
      tiles <= sms ? tiles / sms
                   : (tiles / sms) / std::ceil(tiles / sms);
  const double narrow =
      std::min({1.0, static_cast<double>(e.m) / 128.0,
                static_cast<double>(e.n) / 128.0});
  return 0.75 * k_factor * occupancy * narrow;
}

double GpuModel::AlgorithmFactor(const GemmExtents& e, int algorithm) const {
  require(algorithm >= 0 && algorithm < kNumGemmAlgorithms,
          "algorithm id out of range");
  // Deterministic efficiency in [0.84, 1.0] per (extents, algorithm). One
  // algorithm is always best; the heuristic picks by a skewed criterion and
  // can be up to ~14% off (Sec. V-A).
  const std::uint64_t h =
      Mix(ExtentsKey(e) ^ (0x9E37u * static_cast<std::uint64_t>(algorithm)));
  return 0.84 + 0.16 * (static_cast<double>(h % 10000) / 9999.0);
}

int GpuModel::HeuristicAlgorithm(const GemmExtents& e) const {
  // The heuristic scores algorithms with a perturbed objective: it sees the
  // true factor plus a deterministic error term, so its choice is usually
  // good but measurably suboptimal for some extents.
  int best = 0;
  double best_score = -1;
  for (int a = 0; a < kNumGemmAlgorithms; ++a) {
    const std::uint64_t h =
        Mix(ExtentsKey(e) ^ 0xABCDu ^ (static_cast<std::uint64_t>(a) << 8));
    const double noise =
        0.12 * (static_cast<double>(h % 1000) / 999.0);  // up to 12% error
    const double score = AlgorithmFactor(e, a) + noise;
    if (score > best_score) {
      best_score = score;
      best = a;
    }
  }
  return best;
}

bool GpuModel::AlgorithmDoublesFlop(const GemmExtents& e,
                                    int algorithm) const {
  // A couple of library algorithms use a complex-arithmetic formulation that
  // performs twice the flop (observed by the paper for some cuBLAS GEMMs).
  const std::uint64_t h =
      Mix(ExtentsKey(e) ^ (0x7777u + static_cast<std::uint64_t>(algorithm)));
  return algorithm >= kNumGemmAlgorithms - 2 && (h % 3 == 0);
}

double GpuModel::ContractionTrafficBytes(const GemmExtents& e) const {
  // Tiled MMM: the output is written once; each operand panel is re-read
  // once per reuse tile of the opposite dimension.
  const double r = spec_.gemm_reuse_tile;
  const double m = static_cast<double>(e.m), n = static_cast<double>(e.n),
               k = static_cast<double>(e.k),
               b = static_cast<double>(e.batch);
  const double elems =
      b * (m * n + m * k * std::ceil(n / r) + k * n * std::ceil(m / r));
  return elems * kHalfBytes;
}

KernelTiming GpuModel::Contraction(const GemmExtents& e,
                                   const ContractionConfig& cfg) const {
  KernelTiming t;
  const double flop = 2.0 * static_cast<double>(e.batch) *
                      static_cast<double>(e.m) * static_cast<double>(e.n) *
                      static_cast<double>(e.k);
  const int algo = cfg.algorithm < 0 ? HeuristicAlgorithm(e) : cfg.algorithm;
  const bool doubled = AlgorithmDoublesFlop(e, algo);
  t.flop = doubled ? 2 * flop : flop;

  const double peak =
      cfg.tensor_cores ? spec_.tensor_core_flops : spec_.fp16_flops;
  double util = cfg.tensor_cores
                    ? TensorCoreUtilization(e)
                    : 0.85 * (static_cast<double>(e.k) /
                              (static_cast<double>(e.k) + 24.0));
  util *= AlgorithmFactor(e, algo) * cfg.layout_factor;
  const double compute_us = t.flop / (peak * util) * 1e6;

  t.bytes_moved = ContractionTrafficBytes(e);
  t.bytes_minimal =
      static_cast<double>(e.batch) *
      (static_cast<double>(e.m) * e.k + static_cast<double>(e.k) * e.n +
       static_cast<double>(e.m) * e.n) *
      kHalfBytes;
  const double mem_us = t.bytes_moved / (spec_.mem_bandwidth * 0.85) * 1e6;

  t.time_us = spec_.kernel_launch_us + std::max(compute_us, mem_us);
  t.pct_peak = flop / (t.time_us * 1e-6) / peak * 100.0;  // required flop only
  t.mue = std::min(
      100.0, t.bytes_minimal / (t.time_us * 1e-6 * spec_.mem_bandwidth) *
                 100.0);
  t.memory_bound = t.mue > t.pct_peak;
  return t;
}

KernelTiming GpuModel::MemoryBoundKernel(double minimal_bytes,
                                         double actual_bytes, double flop,
                                         const MemoryConfig& cfg) const {
  require(actual_bytes + 1e-9 >= minimal_bytes,
          "a kernel cannot move less than its I/O lower bound");
  KernelTiming t;
  t.flop = flop;
  t.bytes_moved = actual_bytes;
  t.bytes_minimal = minimal_bytes;
  const double frac = std::clamp(cfg.bandwidth_frac, 0.005, 0.92);
  const double mem_us = actual_bytes / (spec_.mem_bandwidth * frac) * 1e6;
  // Flop ceiling: special-function / RNG work runs on the fp16/SFU pipes.
  const double effective_flop =
      flop + cfg.flop_per_byte_overhead * actual_bytes;
  const double compute_us = effective_flop / (spec_.fp16_flops * 0.5) * 1e6;
  t.time_us = cfg.kernel_launches * spec_.kernel_launch_us +
              std::max(mem_us, compute_us);
  t.pct_peak = flop / (t.time_us * 1e-6) / spec_.fp16_flops * 100.0;
  t.mue = std::min(
      100.0,
      minimal_bytes / (t.time_us * 1e-6 * spec_.mem_bandwidth) * 100.0);
  t.memory_bound = t.mue > t.pct_peak;
  return t;
}

}  // namespace xflow::sim
