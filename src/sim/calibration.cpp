#include "sim/calibration.hpp"

#include <map>
#include <string>

#include "common/error.hpp"

namespace xflow::sim {

double TunedKernelBandwidthFrac(std::string_view fused_kernel_name) {
  // Derived from Table III "Ours" times and exact per-kernel traffic:
  // frac = bytes_moved / (time * 900 GB/s). Streaming kernels (BEI, AIB,
  // BRD) approach peak; per-column reductions (BSB, EBSB, BAOB) are far
  // from it; softmax-family kernels sit in between (exp + RNG overhead).
  static const std::map<std::string, double, std::less<>> kFrac = {
      {"AIB", 0.85},  {"SM", 0.69},    {"DRLN", 0.46},  {"BRD", 0.81},
      {"BDRLN", 0.46}, {"BSB", 0.125}, {"BLNRD", 0.66}, {"BDRB", 0.44},
      {"EBSB", 0.15}, {"BS", 0.70},    {"BEI", 0.90},   {"BAOB", 0.24},
      {"BAIB", 0.72},
  };
  const auto it = kFrac.find(fused_kernel_name);
  require(it != kFrac.end(), "unknown fused kernel name");
  return it->second;
}

double FrameworkBandwidthFrac(graph::OpKind kind) {
  // Derived from Table III "PyTorch" per-operator times the same way.
  using graph::OpKind;
  switch (kind) {
    case OpKind::kContraction:
      check(false, "contractions use the tensor-core model");
      return 0;
    case OpKind::kBias: return 0.60;
    case OpKind::kReLU: return 0.67;
    case OpKind::kDropout: return 0.85;
    case OpKind::kResidual: return 0.78;
    case OpKind::kScale: return 0.80;
    case OpKind::kScaledSoftmax: return 0.66;
    case OpKind::kLayerNorm: return 0.30;
    case OpKind::kBiasDW: return 0.45;
    case OpKind::kReLUDX: return 0.67;
    case OpKind::kDropoutDX: return 0.85;
    case OpKind::kResidualBwd: return 0.78;
    case OpKind::kScaledSoftmaxDX: return 0.38;
    case OpKind::kLayerNormDX: return 0.36;
    case OpKind::kLayerNormDW: return 0.10;
    case OpKind::kEmbed: return 0.55;    // table gather
    case OpKind::kEmbedDW: return 0.40;  // scatter-add
    case OpKind::kMseLoss: return 0.70;  // streaming reduction
  }
  return 0.5;
}

double FlopPerByteOverhead(graph::OpKind kind) {
  using graph::OpKind;
  switch (kind) {
    case OpKind::kScaledSoftmax:
      return 12.0;  // exp + cuRAND Philox rounds per element
    case OpKind::kScaledSoftmaxDX:
      return 6.0;
    case OpKind::kDropout:
      return 8.0;   // Philox rounds per element
    case OpKind::kLayerNorm:
    case OpKind::kLayerNormDX:
      return 3.0;   // rsqrt + two-pass statistics
    default:
      return 0.5;
  }
}

}  // namespace xflow::sim
