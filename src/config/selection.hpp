// Global configuration selection (Sec. VI-A, Fig. 6).
//
// One cannot pick each operator's best layout independently: the benefit of
// running two operators in different layouts may not cover the transpose
// between them. We build a DAG whose nodes are (stage boundary, data
// layout) pairs and whose edge weights are the minimum runtime of any
// configuration of the stage with that input/output layout pair, then run
// single-source shortest path from the encoder input to its output. The
// backward pass inherits the selected layouts (as in the paper).
#pragma once

#include <string>
#include <vector>

#include "fusion/fuser.hpp"
#include "graph/graph.hpp"
#include "layouts/contraction_space.hpp"
#include "sim/kernel_model.hpp"

namespace xflow::config {

/// The chosen configuration of one forward stage.
struct StageChoice {
  std::string kernel_name;
  std::string in_layout;   // layout of the inbound activation
  std::string out_layout;  // layout of the outbound activation
  double time_us = 0;      // cost of the stage under that layout pair
  double best_time_us = 0; // per-stage minimum over all layout pairs
};

struct SelectionResult {
  std::vector<StageChoice> stages;
  double total_time_us = 0;           // SSSP path cost
  double per_stage_lower_bound_us = 0;  // sum of unconstrained minima
  int graph_nodes = 0;
  int graph_edges = 0;

  /// total / lower bound - 1; the paper reports their selection lands
  /// within 4% of the (infeasible) per-operator optimum.
  [[nodiscard]] double GapToLowerBound() const {
    return per_stage_lower_bound_us > 0
               ? total_time_us / per_stage_lower_bound_us - 1.0
               : 0.0;
  }

  /// Penalty factor (>= 1) the global selection imposes on a stage, by
  /// kernel name; 1.0 for stages running their unconstrained best.
  [[nodiscard]] double StagePenalty(const std::string& kernel_name) const;
};

/// One sim-ranked autotuner candidate configuration of a contraction.
struct CandidateConfig {
  layouts::GemmLayout layout;
  int algorithm = 0;
  double sim_us = 0;
};

/// The `top_k` fastest (layout, algorithm) configurations of `extents`
/// under the roofline model, best first (deterministic tie-break by
/// sweep order). This is the enumeration + pruning half of the online
/// autotuner (config/autotune.hpp): the device model discards the
/// hopeless configurations so only a handful are ever measured.
std::vector<CandidateConfig> EnumerateCandidates(const sim::GpuModel& model,
                                                 const GemmExtents& extents,
                                                 int top_k);

/// Runs selection over the forward part of the fused encoder schedule.
SelectionResult SelectConfigurations(const sim::GpuModel& model,
                                     const graph::DataflowGraph& g,
                                     const fusion::FusionResult& fused);

/// Greedy baseline for the ablation: each stage picks its locally best
/// configuration; a transpose penalty is paid whenever the next stage's
/// best input layout differs from the previous stage's chosen output.
double GreedySelectionTime(const sim::GpuModel& model,
                           const graph::DataflowGraph& g,
                           const fusion::FusionResult& fused);

}  // namespace xflow::config
