// Online per-(op class, shape bucket) contraction autotuner (Sec. VI).
//
// The paper's config-selection machinery picks layouts/algorithms
// offline; this module makes it live: the first time the executor
// dispatches a contraction of a given (EinsumClass, bucketed extents,
// element size), the autotuner enumerates candidate configurations
// (config/selection.hpp's EnumerateCandidates over the
// layouts/contraction_space sweep), prunes them with the sim/ roofline
// model, optionally measures the surviving execution-strategy candidates
// once on the real kernels, and caches the winner process-wide. Repeat
// steps -- and warm serving plans, which key their plan cache the same
// way -- always run the cached config and never re-measure (asserted via
// memstats::autotune_measures / autotune_hits).
//
// Every tunable knob is numerics-free (see EinsumExecConfig), so tuning
// never changes results: measuring simply re-runs the real contraction,
// which is legal whenever beta == 0 (the executor's only mode).
//
// XFLOW_AUTOTUNE selects the mode: "measure" (default) measures the
// sim-pruned candidates; "sim" trusts the roofline ranking without
// touching the host timers (deterministic -- what sanitizer CI runs);
// "off" bypasses the cache and always returns the built-in heuristic.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/einsum.hpp"

namespace xflow::config {

enum class AutotuneMode { kOff, kSim, kMeasure };

/// The pure decision behind AutotuneModeFromEnv (exposed for tests):
/// `value` is the environment string or nullptr for unset. "off" / "0" /
/// "false" / "no" -> kOff; "sim" -> kSim; anything else (including
/// unset, "measure", "on") -> kMeasure.
AutotuneMode ParseAutotuneMode(const char* value);

/// XFLOW_AUTOTUNE, read once per process.
AutotuneMode AutotuneModeFromEnv();

/// Cache key: contraction class + power-of-two-rounded extents + element
/// size. Rounding buckets the dynamic shapes that serving traffic varies
/// (batch, sequence length) so near-identical sites share one tuned
/// config -- the same bucketing ROADMAP item 2's plan cache will key by.
struct ShapeBucket {
  EinsumClass cls = EinsumClass::kUnclassified;
  std::int64_t m = 1, n = 1, k = 1, batch = 1;  // rounded up to 2^i
  std::int64_t elem_bytes = 4;

  auto operator<=>(const ShapeBucket&) const = default;
};

ShapeBucket BucketOf(EinsumClass cls, const GemmExtents& extents,
                     std::int64_t elem_bytes);

/// The tuned decision for one bucket.
struct TunedEntry {
  EinsumExecConfig exec;   // winning execution strategy
  int algorithm = -1;      // sim-best device algorithm id (diagnostics)
  double sim_us = 0;       // roofline estimate of the sim-best candidate
  bool measured = false;   // a real timing pass picked `exec`
};

/// Times one candidate execution strategy on the real kernels; returns a
/// relative cost (only comparisons matter). The executor passes a lambda
/// that re-runs its own EinsumLowered dispatch under the candidate.
using MeasureFn = std::function<double(const EinsumExecConfig&)>;

/// The cached entry for the bucket, tuning on first call (kOff bypasses
/// the cache entirely). In kMeasure mode with a non-null `measure`, the
/// candidate strategies are timed once and the fastest wins; otherwise
/// the deterministic sim-ranked default wins. Cache fills are metered
/// via memstats::autotune_measures, warm lookups via autotune_hits.
TunedEntry Autotune(const ShapeBucket& bucket, const MeasureFn& measure,
                    AutotuneMode mode);
TunedEntry Autotune(const ShapeBucket& bucket, const MeasureFn& measure);

/// The deterministic list of execution-strategy candidates the tuner
/// measures for a bucket, best-guess first (exposed for tests).
std::vector<EinsumExecConfig> ExecCandidates(const ShapeBucket& bucket);

/// Drops every cached entry (tests and the cold-vs-warm bench).
void ResetAutotuneCacheForTesting();

}  // namespace xflow::config
