#include "config/selection.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/half.hpp"
#include "layouts/contraction_space.hpp"
#include "layouts/fused_space.hpp"

namespace xflow::config {

std::vector<CandidateConfig> EnumerateCandidates(const sim::GpuModel& model,
                                                 const GemmExtents& extents,
                                                 int top_k) {
  const auto samples = layouts::SweepContraction(
      model, extents, /*tensor_cores=*/true, extents.batch > 1);
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return samples[x].timing.time_us <
                            samples[y].timing.time_us;
                   });
  std::vector<CandidateConfig> out;
  const auto n = std::min(order.size(),
                          static_cast<std::size_t>(std::max(top_k, 0)));
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = samples[order[i]];
    out.push_back({s.layout, s.algorithm, s.timing.time_us});
  }
  return out;
}

namespace {

using graph::DataflowGraph;
using graph::OpClass;
using graph::OpNode;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One stage of the forward chain with its boundary tensors.
struct Stage {
  const fusion::FusedKernel* kernel = nullptr;
  std::string in_tensor;
  std::string out_tensor;
  /// cost[li][lo] in microseconds.
  std::map<std::string, std::map<std::string, double>> cost;
  double best = kInf;
};

/// The boundary tensor between two adjacent stages: produced by `producer`
/// and consumed by `consumer` (the activation flowing along the chain).
std::string BoundaryTensor(const fusion::FusedKernel& producer,
                           const fusion::FusedKernel& consumer) {
  for (const auto& t : producer.external_outputs) {
    if (std::find(consumer.external_inputs.begin(),
                  consumer.external_inputs.end(),
                  t) != consumer.external_inputs.end()) {
      return t;
    }
  }
  require(false, "adjacent stages share no tensor");
  return {};
}

/// The final boundary: the stage output nothing consumes (the layer output).
std::string TerminalTensor(const DataflowGraph& g,
                           const fusion::FusedKernel& k) {
  for (const auto& t : k.external_outputs) {
    if (g.ConsumersOf(t).empty()) return t;
  }
  return k.external_outputs.front();
}

/// The graph input feeding the first stage (not a weight).
std::string SourceTensor(const DataflowGraph& g,
                         const fusion::FusedKernel& k) {
  for (const auto& t : k.external_inputs) {
    if (!g.tensor(t).is_weight && g.ProducerOf(t) < 0) return t;
  }
  require(false, "first stage has no graph input");
  return {};
}

layouts::GemmLayout MapBoundaryToGemmLayout(const EinsumSpec& spec,
                                            const std::string& li,
                                            const std::string& lo) {
  layouts::GemmLayout gl;
  // The activation operand streams contiguously when the contracted dims
  // are outermost; the output when its leading dim is a free (m) dim.
  gl.b_transposed = spec.k_dims.find(li.front()) == std::string::npos;
  gl.c_transposed = spec.m_dims.find(lo.front()) == std::string::npos &&
                    spec.batch_dims.find(lo.front()) == std::string::npos;
  gl.batch_interleaved =
      !spec.batch_dims.empty() &&
      spec.batch_dims.find(lo.front()) == std::string::npos &&
      spec.batch_dims.find(lo[1]) == std::string::npos;
  return gl;
}

std::vector<Stage> BuildForwardStages(const sim::GpuModel& model,
                                      const DataflowGraph& g,
                                      const fusion::FusionResult& fused) {
  // Forward kernels: those entirely before the first backward operator.
  int first_bwd = static_cast<int>(g.ops().size());
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    if (g.ops()[i].name == "layernorm 2 dW") {
      first_bwd = static_cast<int>(i);
      break;
    }
  }

  // Collect the forward kernels, then chain boundary tensors.
  std::vector<const fusion::FusedKernel*> chain;
  for (const auto& k : fused.kernels) {
    if (k.op_indices.front() >= first_bwd) break;
    chain.push_back(&k);
  }
  require(!chain.empty(), "no forward kernels");

  std::vector<Stage> stages;
  for (std::size_t ci = 0; ci < chain.size(); ++ci) {
    const auto& k = *chain[ci];
    Stage st;
    st.kernel = &k;
    st.in_tensor = ci == 0 ? SourceTensor(g, k) : stages.back().out_tensor;
    st.out_tensor = ci + 1 < chain.size() ? BoundaryTensor(k, *chain[ci + 1])
                                          : TerminalTensor(g, k);
    const auto in_layouts =
        AllPermutations(g.tensor(st.in_tensor).shape.names());
    const auto out_layouts =
        AllPermutations(g.tensor(st.out_tensor).shape.names());

    if (k.IsContraction(g)) {
      const auto& op = g.ops()[static_cast<std::size_t>(k.op_indices[0])];
      const auto spec = EinsumSpec::Parse(op.einsum);
      const auto extents =
          ContractionExtents(spec, g.tensor(op.inputs[0]).shape,
                             g.tensor(op.inputs[1]).shape);
      // Exhaustive algorithm choice at fixed layout pair.
      for (const auto& li : in_layouts) {
        for (const auto& lo : out_layouts) {
          const auto gl = MapBoundaryToGemmLayout(spec, li, lo);
          double best = kInf;
          for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
            sim::ContractionConfig cfg{
                .tensor_cores = true,
                .algorithm = algo,
                .layout_factor = layouts::GemmLayoutFactor(gl, extents)};
            best = std::min(best, model.Contraction(extents, cfg).time_us);
          }
          st.cost[li][lo] = best;
          st.best = std::min(st.best, best);
        }
      }
    } else {
      const auto space = layouts::SpaceFromKernel(g, k);
      const auto samples = SweepFusedKernel(model, space);
      // Primary-shape layouts may differ from boundary dims (e.g. BRD's
      // primary is ubj while its input boundary is ubj too; for kernels
      // where they match we can index directly; otherwise fall back to the
      // best sample for every pair).
      const bool in_match = g.tensor(st.in_tensor).shape.names().size() ==
                            space.primary.names().size();
      const bool out_match = g.tensor(st.out_tensor).shape.names().size() ==
                             space.primary.names().size();
      for (const auto& s : samples) {
        const std::string li = in_match ? s.config.in_layout
                                        : in_layouts.front();
        const std::string lo = out_match ? s.config.out_layout
                                         : out_layouts.front();
        auto& slot = st.cost[li];
        const auto it = slot.find(lo);
        if (it == slot.end() || s.timing.time_us < it->second) {
          slot[lo] = s.timing.time_us;
        }
        st.best = std::min(st.best, s.timing.time_us);
      }
    }
    stages.push_back(std::move(st));
  }
  return stages;
}

}  // namespace

double SelectionResult::StagePenalty(const std::string& kernel_name) const {
  for (const auto& s : stages) {
    if (s.kernel_name == kernel_name && s.best_time_us > 0) {
      return s.time_us / s.best_time_us;
    }
  }
  return 1.0;
}

SelectionResult SelectConfigurations(const sim::GpuModel& model,
                                     const DataflowGraph& g,
                                     const fusion::FusionResult& fused) {
  const auto stages = BuildForwardStages(model, g, fused);
  require(!stages.empty(), "no forward stages found");

  SelectionResult result;

  // DP over boundaries. dist[layout] = best cost to reach that layout of
  // the current boundary tensor. Source: the graph input in its canonical
  // dimension order.
  std::map<std::string, double> dist;
  dist[g.tensor(stages.front().in_tensor).shape.names()] = 0.0;

  // parent[stage][lo] = li chosen to reach lo.
  std::vector<std::map<std::string, std::string>> parent(stages.size());

  for (std::size_t si = 0; si < stages.size(); ++si) {
    const auto& st = stages[si];
    std::map<std::string, double> next;
    for (const auto& [li, base] : dist) {
      const auto row = st.cost.find(li);
      if (row == st.cost.end()) continue;
      for (const auto& [lo, c] : row->second) {
        const double total = base + c;
        const auto it = next.find(lo);
        if (it == next.end() || total < it->second) {
          next[lo] = total;
          parent[si][lo] = li;
        }
        ++result.graph_edges;
      }
    }
    require(!next.empty(), "selection graph disconnected at a stage");
    result.graph_nodes += static_cast<int>(next.size());
    dist = std::move(next);
  }

  // Pick the cheapest final layout and backtrack the path.
  auto best_final = std::min_element(
      dist.begin(), dist.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  result.total_time_us = best_final->second;

  std::vector<std::string> path(stages.size() + 1);
  path[stages.size()] = best_final->first;
  for (std::size_t si = stages.size(); si-- > 0;) {
    path[si] = parent[si].at(path[si + 1]);
  }

  for (std::size_t si = 0; si < stages.size(); ++si) {
    const auto& st = stages[si];
    StageChoice choice;
    choice.kernel_name = st.kernel->name;
    choice.in_layout = path[si];
    choice.out_layout = path[si + 1];
    choice.time_us = st.cost.at(path[si]).at(path[si + 1]);
    choice.best_time_us = st.best;
    result.per_stage_lower_bound_us += st.best;
    result.stages.push_back(std::move(choice));
  }
  return result;
}

double GreedySelectionTime(const sim::GpuModel& model,
                           const DataflowGraph& g,
                           const fusion::FusionResult& fused) {
  const auto stages = BuildForwardStages(model, g, fused);
  double total = 0;
  std::string carried;  // layout the previous stage produced
  for (const auto& st : stages) {
    // Locally best pair, ignoring what the previous stage produced.
    double best = kInf;
    std::string best_li, best_lo;
    for (const auto& [li, row] : st.cost) {
      for (const auto& [lo, c] : row) {
        if (c < best) {
          best = c;
          best_li = li;
          best_lo = lo;
        }
      }
    }
    if (!carried.empty() && carried != best_li) {
      // Pay an explicit transpose of the boundary tensor.
      const double bytes = static_cast<double>(
          g.tensor(st.in_tensor).shape.num_elements() * kHalfBytes);
      total += model.spec().kernel_launch_us +
               2 * bytes / (model.spec().mem_bandwidth * 0.75) * 1e6;
    }
    total += best;
    carried = best_lo;
  }
  return total;
}

}  // namespace xflow::config
