#include "config/autotune.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "config/selection.hpp"
#include "sim/device.hpp"
#include "tensor/memstats.hpp"

namespace xflow::config {

namespace {

/// How deep the sim ranking is trusted before measuring (Sec. VI-A keeps
/// only a handful of configurations per contraction in play).
constexpr int kSimTopK = 4;

std::int64_t RoundUpPow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::mutex& CacheMutex() {
  static std::mutex mu;
  return mu;
}

std::map<ShapeBucket, TunedEntry>& Cache() {
  static std::map<ShapeBucket, TunedEntry> cache;
  return cache;
}

}  // namespace

AutotuneMode ParseAutotuneMode(const char* value) {
  if (value == nullptr || *value == '\0') return AutotuneMode::kMeasure;
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "off" || v == "0" || v == "false" || v == "no") {
    return AutotuneMode::kOff;
  }
  if (v == "sim") return AutotuneMode::kSim;
  return AutotuneMode::kMeasure;
}

AutotuneMode AutotuneModeFromEnv() {
  static const AutotuneMode mode =
      ParseAutotuneMode(std::getenv("XFLOW_AUTOTUNE"));
  return mode;
}

ShapeBucket BucketOf(EinsumClass cls, const GemmExtents& extents,
                     std::int64_t elem_bytes) {
  ShapeBucket b;
  b.cls = cls;
  b.m = RoundUpPow2(extents.m);
  b.n = RoundUpPow2(extents.n);
  b.k = RoundUpPow2(extents.k);
  b.batch = RoundUpPow2(extents.batch);
  b.elem_bytes = elem_bytes;
  return b;
}

std::vector<EinsumExecConfig> ExecCandidates(const ShapeBucket& bucket) {
  std::vector<EinsumExecConfig> out;
  out.push_back(EinsumExecConfig{});  // the built-in heuristics
  const bool row_partitioned = bucket.cls == EinsumClass::kGemv ||
                               bucket.cls == EinsumClass::kGer ||
                               bucket.cls == EinsumClass::kView;
  if (row_partitioned) {
    // Finer grain balances better, coarser grain amortizes task
    // dispatch; which wins depends on rows-per-core on this host.
    out.push_back(EinsumExecConfig{.batch_parallel = -1, .row_grain = 16});
    out.push_back(EinsumExecConfig{.batch_parallel = -1, .row_grain = 256});
  }
  if (bucket.batch > 1) {
    out.push_back(EinsumExecConfig{.batch_parallel = 1, .row_grain = 0});
    out.push_back(EinsumExecConfig{.batch_parallel = 0, .row_grain = 0});
  }
  return out;
}

TunedEntry Autotune(const ShapeBucket& bucket, const MeasureFn& measure,
                    AutotuneMode mode) {
  if (mode == AutotuneMode::kOff) return TunedEntry{};

  // The lock is held across tuning so a bucket is tuned exactly once
  // even when the task scheduler dispatches two same-bucket contractions
  // concurrently: the loser blocks, then hits the cache. Measurement
  // under the lock cannot deadlock -- the pool's waiters execute their
  // own pending tasks.
  const std::lock_guard<std::mutex> lock(CacheMutex());
  auto& cache = Cache();
  if (const auto it = cache.find(bucket); it != cache.end()) {
    memstats::RecordAutotuneHit();
    return it->second;
  }

  TunedEntry entry;
  static const sim::GpuModel model{sim::DeviceSpec::V100()};
  const GemmExtents extents{bucket.m, bucket.n, bucket.k, bucket.batch};
  const auto sim_ranked = EnumerateCandidates(model, extents, kSimTopK);
  if (!sim_ranked.empty()) {
    entry.algorithm = sim_ranked.front().algorithm;
    entry.sim_us = sim_ranked.front().sim_us;
  }
  const auto candidates = ExecCandidates(bucket);
  entry.exec = candidates.front();
  if (mode == AutotuneMode::kMeasure && measure) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& cand : candidates) {
      // Best-of-two damps scheduler noise; every candidate computes the
      // same bits, so re-running the contraction is side-effect-free.
      const double t = std::min(measure(cand), measure(cand));
      if (t < best) {
        best = t;
        entry.exec = cand;
      }
    }
    entry.measured = true;
  }
  memstats::RecordAutotuneMeasure();
  cache.emplace(bucket, entry);
  return entry;
}

TunedEntry Autotune(const ShapeBucket& bucket, const MeasureFn& measure) {
  return Autotune(bucket, measure, AutotuneModeFromEnv());
}

void ResetAutotuneCacheForTesting() {
  const std::lock_guard<std::mutex> lock(CacheMutex());
  Cache().clear();
}

}  // namespace xflow::config
