// Binary checkpointing of named fp16 tensors (parameters, optimizer
// state). Self-describing format with shape validation on load.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace xflow::transformer {

/// Writes all tensors to `path`. Format: magic "XFLW", version, count,
/// then per tensor: name, dim names + extents, raw fp16 payload.
void SaveCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, const TensorH*>>& tensors);

/// Loads into pre-shaped tensors; names and shapes must match what was
/// saved (order-insensitive). Throws InvalidArgument on any mismatch.
void LoadCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, TensorH*>>& tensors);

/// Names + shapes present in a checkpoint (for inspection/tools).
std::vector<std::pair<std::string, Shape>> InspectCheckpoint(
    const std::string& path);

}  // namespace xflow::transformer
