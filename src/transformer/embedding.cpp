#include "transformer/embedding.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ops/embedding.hpp"
#include "tensor/einsum.hpp"

namespace xflow::transformer {

template <typename T>
EmbeddingT<T>::EmbeddingT(std::int64_t vocab, const graph::ModelDims& dims,
                          std::uint64_t seed)
    : dims_(dims),
      token_table_(Tensor<T>::Random(Shape("vi", {vocab, dims.i}), seed)),
      pos_table_(Tensor<T>::Random(Shape("ji", {dims.j, dims.i}), seed + 1)) {
  // Scale to unit-ish variance after the sum of two tables.
  for (auto* t : {&token_table_, &pos_table_}) {
    for (std::int64_t e = 0; e < t->size(); ++e) {
      t->data()[e] = T(float(t->data()[e]) * 0.5f);
    }
  }
}

template <typename T>
Tensor<T> EmbeddingT<T>::Forward(const TokenIds& tokens) const {
  Tensor<T> x(Shape("ibj", {dims_.i, dims_.b, dims_.j}));
  ops::EmbeddingForwardKernel(token_table_, pos_table_, tokens, x);
  return x;
}

template <typename T>
void EmbeddingT<T>::Backward(const Tensor<T>& d_x, const TokenIds& tokens,
                             Tensor<T>& d_token_table,
                             Tensor<T>& d_pos_table) const {
  ops::EmbeddingBackwardKernel(d_x, tokens, d_token_table, d_pos_table);
}

template <typename T>
Tensor<T> LmLogits(const Tensor<T>& token_table, const Tensor<T>& x) {
  return Einsum<T>("vi,ibj->vbj", token_table, x);
}

double SoftmaxCrossEntropy(const TensorF& logits, const TokenIds& targets,
                           TensorF& d_logits) {
  const std::int64_t v = logits.extent('v');
  const std::int64_t b = logits.extent('b');
  const std::int64_t j = logits.extent('j');
  require(static_cast<std::int64_t>(targets.size()) == b * j,
          "target count must equal batch * sequence length");
  const double inv_n = 1.0 / static_cast<double>(b * j);
  double loss = 0;
  for (std::int64_t bb = 0; bb < b; ++bb) {
    for (std::int64_t jj = 0; jj < j; ++jj) {
      const auto target =
          targets[static_cast<std::size_t>(bb * j + jj)];
      require(target >= 0 && target < v, "target id out of range");
      float max_v = -1e30f;
      for (std::int64_t vv = 0; vv < v; ++vv) {
        max_v = std::max(max_v,
                         logits.at({{'v', vv}, {'b', bb}, {'j', jj}}));
      }
      double sum = 0;
      for (std::int64_t vv = 0; vv < v; ++vv) {
        sum += std::exp(
            static_cast<double>(
                logits.at({{'v', vv}, {'b', bb}, {'j', jj}})) -
            max_v);
      }
      const double log_sum = std::log(sum) + max_v;
      loss += log_sum - static_cast<double>(logits.at(
                            {{'v', target}, {'b', bb}, {'j', jj}}));
      for (std::int64_t vv = 0; vv < v; ++vv) {
        const double p =
            std::exp(static_cast<double>(logits.at(
                         {{'v', vv}, {'b', bb}, {'j', jj}})) -
                     log_sum);
        d_logits.at({{'v', vv}, {'b', bb}, {'j', jj}}) =
            static_cast<float>((p - (vv == target ? 1.0 : 0.0)) * inv_n);
      }
    }
  }
  return loss * inv_n;
}

template class EmbeddingT<Half>;
template class EmbeddingT<float>;
template Tensor<Half> LmLogits<Half>(const Tensor<Half>&,
                                     const Tensor<Half>&);
template Tensor<float> LmLogits<float>(const Tensor<float>&,
                                       const Tensor<float>&);

}  // namespace xflow::transformer
