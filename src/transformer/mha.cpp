#include "transformer/mha.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ops/elementwise.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"
#include "transformer/arena.hpp"

namespace xflow::transformer {

namespace {

/// Contractions parsed once per process; every call site writes into
/// planned or reused storage via EinsumInto.
struct MhaSpecs {
  EinsumSpec q = EinsumSpec::Parse("phi,ibj->phbj");
  EinsumSpec k = EinsumSpec::Parse("phi,ibk->phbk");
  EinsumSpec v = EinsumSpec::Parse("whi,ibk->whbk");
  EinsumSpec qkt = EinsumSpec::Parse("phbk,phbj->hbjk");
  EinsumSpec gamma = EinsumSpec::Parse("whbk,hbjk->whbj");
  EinsumSpec out = EinsumSpec::Parse("whi,whbj->ibj");
  EinsumSpec out_dx = EinsumSpec::Parse("whi,ibj->whbj");
  EinsumSpec out_dw = EinsumSpec::Parse("ibj,whbj->whi");
  EinsumSpec gamma_dx1 = EinsumSpec::Parse("whbk,whbj->hbjk");
  EinsumSpec gamma_dx2 = EinsumSpec::Parse("whbj,hbjk->whbk");
  EinsumSpec qkt_dx1 = EinsumSpec::Parse("phbj,hbjk->phbk");
  EinsumSpec qkt_dx2 = EinsumSpec::Parse("hbjk,phbk->phbj");
  EinsumSpec q_dx = EinsumSpec::Parse("phi,phbj->ibj");
  EinsumSpec k_dx = EinsumSpec::Parse("phi,phbk->ibk");
  EinsumSpec v_dx = EinsumSpec::Parse("whi,whbk->ibk");
  EinsumSpec q_dw = EinsumSpec::Parse("phbj,ibj->phi");
  EinsumSpec k_dw = EinsumSpec::Parse("phbk,ibk->phi");
  EinsumSpec v_dw = EinsumSpec::Parse("whbk,ibk->whi");
};

const MhaSpecs& S() {
  static const MhaSpecs specs;
  return specs;
}

}  // namespace

template <typename T>
MhaParamsT<T> MhaParamsT<T>::Init(const graph::ModelDims& d,
                                  std::uint64_t seed) {
  auto scaled = [&](Shape shape, std::int64_t fan_in,
                    std::uint64_t s) -> Tensor<T> {
    auto t = Tensor<T>::Random(std::move(shape), s);
    const float scale = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (std::int64_t e = 0; e < t.size(); ++e) {
      t.data()[e] = T(float(t.data()[e]) * scale);
    }
    return t;
  };
  MhaParamsT<T> p;
  p.wq = scaled(Shape("phi", {d.p, d.h, d.i}), d.i, seed + 1);
  p.wk = scaled(Shape("phi", {d.p, d.h, d.i}), d.i, seed + 2);
  p.wv = scaled(Shape("whi", {d.p, d.h, d.i}), d.i, seed + 3);
  p.wo = scaled(Shape("whi", {d.p, d.h, d.i}), d.p * d.h, seed + 4);
  p.bq = scaled(Shape("ph", {d.p, d.h}), d.i, seed + 5);
  p.bk = scaled(Shape("ph", {d.p, d.h}), d.i, seed + 6);
  p.bv = scaled(Shape("wh", {d.p, d.h}), d.i, seed + 7);
  p.bo = scaled(Shape("i", {d.i}), d.i, seed + 8);
  return p;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>> MhaParamsT<T>::Named() {
  return {{"wq", &wq}, {"wk", &wk}, {"wv", &wv}, {"wo", &wo},
          {"bq", &bq}, {"bk", &bk}, {"bv", &bv}, {"bo", &bo}};
}

template <typename T>
void MhaParamsT<T>::EnsureShapes(const graph::ModelDims& d) {
  wq.EnsureShape(Shape("phi", {d.p, d.h, d.i}));
  wk.EnsureShape(Shape("phi", {d.p, d.h, d.i}));
  wv.EnsureShape(Shape("whi", {d.p, d.h, d.i}));
  wo.EnsureShape(Shape("whi", {d.p, d.h, d.i}));
  bq.EnsureShape(Shape("ph", {d.p, d.h}));
  bk.EnsureShape(Shape("ph", {d.p, d.h}));
  bv.EnsureShape(Shape("wh", {d.p, d.h}));
  bo.EnsureShape(Shape("i", {d.i}));
}

template <typename T>
MhaLayerT<T>::MhaLayerT(MhaConfig config, MhaParamsT<T> params)
    : config_(std::move(config)), params_(std::move(params)) {}

template <typename T>
const Tensor<T>& MhaLayerT<T>::Forward(const Tensor<T>& q, const Tensor<T>& k,
                                       const Tensor<T>& v,
                                       MhaActivationsT<T>& acts) const {
  const auto& d = config_.dims;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  std::uint64_t seed_state = config_.seed;
  const DropoutMask sm_mask(SplitMix64(seed_state), config_.dropout_prob);
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape phbj("phbj", {d.p, d.h, d.b, d.j});
  const Shape phbk("phbk", {d.p, d.h, d.b, d.k});
  const Shape whbk("whbk", {d.p, d.h, d.b, d.k});
  const Shape whbj("whbj", {d.p, d.h, d.b, d.j});
  const Shape ibj("ibj", {d.i, d.b, d.j});

  LayerArenaT<T>* ar = acts.arena;
  auto slot = [ar](Tensor<T>& t, const char* name,
                   const Shape& shape) -> Tensor<T>& {
    return BindSlot(ar, t, name, shape);
  };
  auto tmp = [ar](const char* name, const Shape& shape) -> Tensor<T> {
    return AcquireTemp(ar, name, shape);
  };

  CopyValuesInto(q, slot(acts.q, "q", q.shape()));
  CopyValuesInto(k, slot(acts.k, "k", k.shape()));
  CopyValuesInto(v, slot(acts.v, "v", v.shape()));

  // Input projections with bias (Fig. 1: three separate einsums; no
  // algebraic fusion since the inputs are distinct tensors).
  Tensor<T> qq = tmp("qq", phbj);
  Tensor<T> kk = tmp("kk", phbk);
  Tensor<T> vv = tmp("vv", whbk);
  EinsumInto(S().q, params_.wq, q, qq);
  EinsumInto(S().k, params_.wk, k, kk);
  EinsumInto(S().v, params_.wv, v, vv);
  slot(acts.qq_b, "qq_b", phbj);
  slot(acts.kk_b, "kk_b", phbk);
  slot(acts.vv_b, "vv_b", whbk);
  ops::BiasForward(qq, params_.bq, acts.qq_b);
  ops::BiasForward(kk, params_.bk, acts.kk_b);
  ops::BiasForward(vv, params_.bv, acts.vv_b);

  // Attention scores, scaled softmax (+ optional causal mask) and dropout.
  Tensor<T> beta = tmp("beta", hbjk);
  EinsumInto(S().qkt, acts.kk_b, acts.qq_b, beta);
  slot(acts.alpha, "alpha", hbjk);
  slot(acts.attn_mask, "attn_mask", hbjk);
  slot(acts.softmax_saved, "softmax_saved", hbjk);
  if (config_.causal) {
    ops::CausalScaledSoftmaxForward(beta, 'k', 'j', scale, sm_mask,
                                    acts.alpha, acts.attn_mask,
                                    acts.softmax_saved);
  } else {
    ops::ScaledSoftmaxForward(beta, 'k', scale, sm_mask, acts.alpha,
                              acts.attn_mask, acts.softmax_saved);
  }

  // Weighted values and output projection.
  slot(acts.gamma_t, "gamma", whbj);
  EinsumInto(S().gamma, acts.vv_b, acts.alpha, acts.gamma_t);
  Tensor<T> proj = tmp("attn_out", ibj);
  EinsumInto(S().out, params_.wo, acts.gamma_t, proj);
  slot(acts.out, "out", ibj);
  ops::BiasForward(proj, params_.bo, acts.out);
  return acts.out;
}

template <typename T>
void MhaLayerT<T>::Backward(const Tensor<T>& d_out,
                            const MhaActivationsT<T>& acts,
                            MhaGradientsT<T>& grads) const {
  const auto& d = config_.dims;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const float keep = 1.0f - config_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape ibk("ibk", {d.i, d.b, d.k});
  auto& gp = grads.params;
  gp.EnsureShapes(d);  // accumulators; every entry is overwritten below

  // Backward temporaries come from the bound arena (the backward graph is
  // planned too) or from owning buffers; weight gradients stay owning.
  LayerArenaT<T>* ar = grads.arena;
  auto tmp = [ar](const char* name, const Shape& shape) -> Tensor<T> {
    return AcquireTemp(ar, name, shape);
  };

  // Output bias and projection.
  ops::BiasBackwardDW(d_out, gp.bo);
  Tensor<T> d_gamma = tmp("d_gamma", Shape("whbj", {d.p, d.h, d.b, d.j}));
  EinsumInto(S().out_dx, params_.wo, d_out, d_gamma);
  EinsumInto(S().out_dw, d_out, acts.gamma_t, gp.wo);

  // gamma backward.
  Tensor<T> d_alpha = tmp("d_alpha", hbjk);
  EinsumInto(S().gamma_dx1, acts.vv_b, d_gamma, d_alpha);
  Tensor<T> d_vv = tmp("d_vv", Shape("whbk", {d.p, d.h, d.b, d.k}));
  EinsumInto(S().gamma_dx2, d_gamma, acts.alpha, d_vv);

  // BS: dropout + softmax + scale.
  Tensor<T> d_beta = tmp("d_beta", hbjk);
  ops::ScaledSoftmaxBackwardDX(d_alpha, acts.attn_mask, acts.softmax_saved,
                               'k', scale, keep_scale, d_beta);

  // QKT backward.
  Tensor<T> d_kk = tmp("d_kk", Shape("phbk", {d.p, d.h, d.b, d.k}));
  EinsumInto(S().qkt_dx1, acts.qq_b, d_beta, d_kk);
  Tensor<T> d_qq = tmp("d_qq", Shape("phbj", {d.p, d.h, d.b, d.j}));
  EinsumInto(S().qkt_dx2, d_beta, acts.kk_b, d_qq);

  // Projection biases, weights, and input gradients.
  ops::BiasBackwardDW(d_qq, gp.bq);
  ops::BiasBackwardDW(d_kk, gp.bk);
  ops::BiasBackwardDW(d_vv, gp.bv);
  BindSlot(ar, grads.d_q, "d_q", Shape("ibj", {d.i, d.b, d.j}));
  BindSlot(ar, grads.d_k, "d_k", ibk);
  BindSlot(ar, grads.d_v, "d_v", ibk);
  EinsumInto(S().q_dx, params_.wq, d_qq, grads.d_q);
  EinsumInto(S().k_dx, params_.wk, d_kk, grads.d_k);
  EinsumInto(S().v_dx, params_.wv, d_vv, grads.d_v);
  EinsumInto(S().q_dw, d_qq, acts.q, gp.wq);
  EinsumInto(S().k_dw, d_kk, acts.k, gp.wk);
  EinsumInto(S().v_dw, d_vv, acts.v, gp.wv);
}

template struct MhaParamsT<Half>;
template struct MhaParamsT<float>;
template class MhaLayerT<Half>;
template class MhaLayerT<float>;

}  // namespace xflow::transformer
