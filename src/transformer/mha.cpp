#include "transformer/mha.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ops/elementwise.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"

namespace xflow::transformer {

template <typename T>
MhaParamsT<T> MhaParamsT<T>::Init(const graph::ModelDims& d,
                                  std::uint64_t seed) {
  auto scaled = [&](Shape shape, std::int64_t fan_in,
                    std::uint64_t s) -> Tensor<T> {
    auto t = Tensor<T>::Random(std::move(shape), s);
    const float scale = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (std::int64_t e = 0; e < t.size(); ++e) {
      t.data()[e] = T(float(t.data()[e]) * scale);
    }
    return t;
  };
  MhaParamsT<T> p;
  p.wq = scaled(Shape("phi", {d.p, d.h, d.i}), d.i, seed + 1);
  p.wk = scaled(Shape("phi", {d.p, d.h, d.i}), d.i, seed + 2);
  p.wv = scaled(Shape("whi", {d.p, d.h, d.i}), d.i, seed + 3);
  p.wo = scaled(Shape("whi", {d.p, d.h, d.i}), d.p * d.h, seed + 4);
  p.bq = scaled(Shape("ph", {d.p, d.h}), d.i, seed + 5);
  p.bk = scaled(Shape("ph", {d.p, d.h}), d.i, seed + 6);
  p.bv = scaled(Shape("wh", {d.p, d.h}), d.i, seed + 7);
  p.bo = scaled(Shape("i", {d.i}), d.i, seed + 8);
  return p;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>> MhaParamsT<T>::Named() {
  return {{"wq", &wq}, {"wk", &wk}, {"wv", &wv}, {"wo", &wo},
          {"bq", &bq}, {"bk", &bk}, {"bv", &bv}, {"bo", &bo}};
}

template <typename T>
MhaLayerT<T>::MhaLayerT(MhaConfig config, MhaParamsT<T> params)
    : config_(std::move(config)), params_(std::move(params)) {}

template <typename T>
const Tensor<T>& MhaLayerT<T>::Forward(const Tensor<T>& q, const Tensor<T>& k,
                                       const Tensor<T>& v,
                                       MhaActivationsT<T>& acts) const {
  const auto& d = config_.dims;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  std::uint64_t seed_state = config_.seed;
  const DropoutMask sm_mask(SplitMix64(seed_state), config_.dropout_prob);
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});

  acts.q = q;
  acts.k = k;
  acts.v = v;

  // Input projections with bias (Fig. 1: three separate einsums; no
  // algebraic fusion since the inputs are distinct tensors).
  auto qq = Einsum<T>("phi,ibj->phbj", params_.wq, q);
  auto kk = Einsum<T>("phi,ibk->phbk", params_.wk, k);
  auto vv = Einsum<T>("whi,ibk->whbk", params_.wv, v);
  acts.qq_b = Tensor<T>(qq.shape());
  acts.kk_b = Tensor<T>(kk.shape());
  acts.vv_b = Tensor<T>(vv.shape());
  ops::BiasForward(qq, params_.bq, acts.qq_b);
  ops::BiasForward(kk, params_.bk, acts.kk_b);
  ops::BiasForward(vv, params_.bv, acts.vv_b);

  // Attention scores, scaled softmax (+ optional causal mask) and dropout.
  auto beta = Einsum<T>("phbk,phbj->hbjk", acts.kk_b, acts.qq_b);
  acts.alpha = Tensor<T>(hbjk);
  acts.attn_mask = Tensor<T>(hbjk);
  acts.softmax_saved = Tensor<T>(hbjk);
  if (config_.causal) {
    ops::CausalScaledSoftmaxForward(beta, 'k', 'j', scale, sm_mask,
                                    acts.alpha, acts.attn_mask,
                                    acts.softmax_saved);
  } else {
    ops::ScaledSoftmaxForward(beta, 'k', scale, sm_mask, acts.alpha,
                              acts.attn_mask, acts.softmax_saved);
  }

  // Weighted values and output projection.
  acts.gamma_t = Einsum<T>("whbk,hbjk->whbj", acts.vv_b, acts.alpha);
  auto proj = Einsum<T>("whi,whbj->ibj", params_.wo, acts.gamma_t);
  acts.out = Tensor<T>(proj.shape());
  ops::BiasForward(proj, params_.bo, acts.out);
  return acts.out;
}

template <typename T>
void MhaLayerT<T>::Backward(const Tensor<T>& d_out,
                            const MhaActivationsT<T>& acts,
                            MhaGradientsT<T>& grads) const {
  const auto& d = config_.dims;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const float keep = 1.0f - config_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  auto& gp = grads.params;
  gp = MhaParamsT<T>::Init(d, 0);  // allocate shapes

  // Output bias and projection.
  ops::BiasBackwardDW(d_out, gp.bo);
  auto d_gamma = Einsum<T>("whi,ibj->whbj", params_.wo, d_out);
  gp.wo = Einsum<T>("ibj,whbj->whi", d_out, acts.gamma_t);

  // gamma backward.
  auto d_alpha = Einsum<T>("whbk,whbj->hbjk", acts.vv_b, d_gamma);
  auto d_vv = Einsum<T>("whbj,hbjk->whbk", d_gamma, acts.alpha);

  // BS: dropout + softmax + scale.
  Tensor<T> d_beta(Shape("hbjk", {d.h, d.b, d.j, d.k}));
  ops::ScaledSoftmaxBackwardDX(d_alpha, acts.attn_mask, acts.softmax_saved,
                               'k', scale, keep_scale, d_beta);

  // QKT backward.
  auto d_kk = Einsum<T>("phbj,hbjk->phbk", acts.qq_b, d_beta);
  auto d_qq = Einsum<T>("hbjk,phbk->phbj", d_beta, acts.kk_b);

  // Projection biases, weights, and input gradients.
  ops::BiasBackwardDW(d_qq, gp.bq);
  ops::BiasBackwardDW(d_kk, gp.bk);
  ops::BiasBackwardDW(d_vv, gp.bv);
  grads.d_q = Einsum<T>("phi,phbj->ibj", params_.wq, d_qq);
  grads.d_k = Einsum<T>("phi,phbk->ibk", params_.wk, d_kk);
  grads.d_v = Einsum<T>("whi,whbk->ibk", params_.wv, d_vv);
  gp.wq = Einsum<T>("phbj,ibj->phi", d_qq, acts.q);
  gp.wk = Einsum<T>("phbk,ibk->phi", d_kk, acts.k);
  gp.wv = Einsum<T>("whbk,ibk->whi", d_vv, acts.v);
}

template struct MhaParamsT<Half>;
template struct MhaParamsT<float>;
template class MhaLayerT<Half>;
template class MhaLayerT<float>;

}  // namespace xflow::transformer
