#include "transformer/training.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "ops/embedding.hpp"

namespace xflow::transformer {

void MixedPrecisionAdam::Step(const std::string& name, TensorF& master,
                              TensorH& working, const TensorH& grad) {
  require(master.size() == working.size() && master.size() == grad.size(),
          "parameter/gradient sizes must match");
  auto it = state_.find(name);
  if (it == state_.end()) {
    State s;
    s.m = TensorF(master.shape());
    s.v = TensorF(master.shape());
    it = state_.emplace(name, std::move(s)).first;
  }
  State& s = it->second;
  require(s.m.size() == master.size(), "parameter changed shape");
  ++s.t;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(s.t));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(s.t));
  const AdamConfig c = config_;
  const std::int64_t n = master.size();
  float* mst = master.data();
  Half* wrk = working.data();
  const Half* grd = grad.data();
  float* m_state = s.m.data();
  float* v_state = s.v.data();
  // Runs in fixed-size chunks on the thread pool (same contract as the
  // ops engine): every element's update depends only on that element, so
  // any partitioning is bitwise deterministic at every thread count.
  constexpr std::int64_t kChunk = 4096;
  const std::int64_t chunks = (n + kChunk - 1) / kChunk;
  ParallelFor(chunks, 1, [&](std::int64_t ci) {
    const std::int64_t begin = ci * kChunk;
    const std::int64_t end = std::min(n, begin + kChunk);
    for (std::int64_t i = begin; i < end; ++i) {
      const float g = float(grd[i]);
      float& m = m_state[i];
      float& v = v_state[i];
      m = c.beta1 * m + (1.0f - c.beta1) * g;
      v = c.beta2 * v + (1.0f - c.beta2) * g * g;
      const float m_hat = m / bc1;
      const float v_hat = v / bc2;
      mst[i] -= c.lr * m_hat / (std::sqrt(v_hat) + c.eps);
      wrk[i] = Half(mst[i]);
    }
  });
}

std::int64_t MixedPrecisionAdam::steps(const std::string& name) const {
  const auto it = state_.find(name);
  return it == state_.end() ? 0 : it->second.t;
}

float WarmupSchedule::At(std::int64_t t) const {
  require(t >= 1, "steps are 1-based");
  if (warmup_ <= 0) return base_lr_;
  const auto tf = static_cast<float>(t);
  const auto wf = static_cast<float>(warmup_);
  if (t <= warmup_) return base_lr_ * tf / wf;
  return base_lr_ * std::sqrt(wf / tf);
}

double ClipGradNorm(const std::vector<TensorH*>& grads, double max_norm) {
  require(max_norm > 0, "max_norm must be positive");
  double sum_sq = 0;
  for (const TensorH* g : grads) {
    for (std::int64_t i = 0; i < g->size(); ++i) {
      const double v = float(g->data()[i]);
      sum_sq += v * v;
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (TensorH* g : grads) {
      for (std::int64_t i = 0; i < g->size(); ++i) {
        g->data()[i] = Half(float(g->data()[i]) * scale);
      }
    }
  }
  return norm;
}

double MseLoss(const TensorH& y, const TensorH& target, TensorH& d_y) {
  return ops::MseLossKernel(y, target, d_y);
}

}  // namespace xflow::transformer
