// Mixed-precision training utilities (Sec. III-D): fp32 master weights,
// fp16 working copies and gradients, Adam updates in fp32.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace xflow::transformer {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// Adam with per-parameter moment state. The master copy stays fp32; after
/// each step the fp16 working copy is refreshed from it (standard mixed
/// precision following Micikevicius et al., as the paper trains).
class MixedPrecisionAdam {
 public:
  explicit MixedPrecisionAdam(AdamConfig config = {}) : config_(config) {}

  /// One update for one parameter. `master` and `working` must stay the
  /// same shape across calls with the same name.
  void Step(const std::string& name, TensorF& master, TensorH& working,
            const TensorH& grad);

  [[nodiscard]] std::int64_t steps(const std::string& name) const;

 private:
  struct State {
    TensorF m, v;
    std::int64_t t = 0;
  };
  AdamConfig config_;
  std::map<std::string, State> state_;
};

/// Mean-squared-error loss; fills d_y = 2 (y - target) / N and returns the
/// scalar loss.
double MseLoss(const TensorH& y, const TensorH& target, TensorH& d_y);

/// Linear-warmup then inverse-square-root decay, the schedule transformer
/// training uses (Vaswani et al.; BERT uses the linear-decay variant).
class WarmupSchedule {
 public:
  WarmupSchedule(float base_lr, std::int64_t warmup_steps)
      : base_lr_(base_lr), warmup_(warmup_steps) {}

  /// Learning rate at 1-based step `t`.
  [[nodiscard]] float At(std::int64_t t) const;

 private:
  float base_lr_;
  std::int64_t warmup_;
};

/// Global-norm gradient clipping over a set of gradient tensors. Returns
/// the pre-clip norm; gradients are scaled in place when it exceeds
/// `max_norm`.
double ClipGradNorm(const std::vector<TensorH*>& grads, double max_norm);

}  // namespace xflow::transformer
