#include "transformer/arena.hpp"

#include "graph/builder.hpp"

namespace xflow::transformer {

template <typename T>
LayerArenaT<T>::LayerArenaT(const graph::DataflowGraph& graph,
                            graph::PlanOptions options)
    : LayerArenaT(graph::PlanMemory(graph, options)) {}

template <typename T>
LayerArenaT<T>::LayerArenaT(graph::MemoryPlan plan) : plan_(std::move(plan)) {
  workspace_.Reserve(plan_.peak_bytes());
}

template <typename T>
graph::PlanOptions EncoderPlanOptions() {
  graph::PlanOptions options;
  options.default_elem_bytes = sizeof(T);
  options.elem_bytes = [](const graph::TensorNode& t) -> std::size_t {
    // Layernorm statistics stay fp32 regardless of the activation type.
    if (t.name.ends_with("_mean") || t.name.ends_with("_rstd")) {
      return sizeof(float);
    }
    return sizeof(T);
  };
  options.groups = {{"qkv_proj", {"qq", "kk", "vv"}},
                    {"d_qkv_proj", {"d_qq", "d_kk", "d_vv"}}};
  // Backward takes d_y by reference; it never lives in the arena.
  options.exclude = {"d_y"};
  // The multi-op fused kernels (DRLN/BRD/BDRLN forward; BLNRD/BDRB/EBSB
  // backward): each reads its span's inputs while writing its outputs, so
  // the planner must not recycle one into the other. One plan serves both
  // execution styles -- the unfused pipeline only under-uses the spans.
  options.fused_spans = {
      {"output bias", "attn dropout", "residual 1", "layernorm 1"},
      {"bias 1", "relu", "ff dropout"},
      {"bias 2", "ff2 dropout", "residual 2", "layernorm 2"},
      {"layernorm 2 dX", "ff2 dropout dX"},
      {"bias 2 dW", "ff dropout dX", "relu dX", "bias 1 dW"},
      {"residual 2 bwd", "layernorm 1 dW"},
      {"layernorm 1 dX", "attn dropout dX"},
  };
  return options;
}

template <typename T>
LayerArenaT<T> MakeEncoderArena(const EncoderConfig& config) {
  const auto graph = graph::BuildEncoder(
      config.dims, graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  return LayerArenaT<T>(graph, EncoderPlanOptions<T>());
}

template <typename T>
LayerArenaT<T> MakeMhaArena(const MhaConfig& config) {
  graph::PlanOptions options;
  options.default_elem_bytes = sizeof(T);
  // The full forward+backward graph is modeled, so saved activations live
  // exactly until the backward op that consumes them and the backward
  // temporaries (d_gamma, d_beta, ...) share recycled bytes. Backward
  // takes d_out by reference; it never lives in the arena.
  options.exclude = {"d_out"};
  const auto graph = graph::BuildMha(config.dims, /*include_backward=*/true);
  return LayerArenaT<T>(graph, std::move(options));
}

template class LayerArenaT<Half>;
template class LayerArenaT<float>;
template graph::PlanOptions EncoderPlanOptions<Half>();
template graph::PlanOptions EncoderPlanOptions<float>();
template LayerArenaT<Half> MakeEncoderArena<Half>(const EncoderConfig&);
template LayerArenaT<float> MakeEncoderArena<float>(const EncoderConfig&);
template LayerArenaT<Half> MakeMhaArena<Half>(const MhaConfig&);
template LayerArenaT<float> MakeMhaArena<float>(const MhaConfig&);

}  // namespace xflow::transformer
