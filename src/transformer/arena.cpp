#include "transformer/arena.hpp"

#include <string_view>

#include "fusion/fuser.hpp"
#include "graph/builder.hpp"

namespace xflow::transformer {

template <typename T>
LayerArenaT<T>::LayerArenaT(const graph::DataflowGraph& graph,
                            graph::PlanOptions options)
    : LayerArenaT(graph::PlanMemory(graph, options)) {}

template <typename T>
LayerArenaT<T>::LayerArenaT(graph::MemoryPlan plan) : plan_(std::move(plan)) {
  workspace_.Reserve(plan_.peak_bytes());
}

template <typename T>
graph::PlanOptions EncoderPlanOptions() {
  graph::PlanOptions options;
  options.default_elem_bytes = sizeof(T);
  options.elem_bytes = [](const graph::TensorNode& t) -> std::size_t {
    // Layernorm statistics stay fp32 regardless of the activation type.
    if (t.name.ends_with("_mean") || t.name.ends_with("_rstd")) {
      return sizeof(float);
    }
    return sizeof(T);
  };
  options.groups = {{"qkv_proj", {"qq", "kk", "vv"}},
                    {"d_qkv_proj", {"d_qq", "d_kk", "d_vv"}}};
  // Backward takes d_y by reference; it never lives in the arena.
  options.exclude = {"d_y"};
  // The multi-op fused kernels (DRLN/BRD/BDRLN forward; BLNRD/BDRB/EBSB
  // backward): each reads its span's inputs while writing its outputs, so
  // the planner must not recycle one into the other. One plan serves both
  // execution styles -- the unfused pipeline only under-uses the spans.
  options.fused_spans = {
      {"output bias", "attn dropout", "residual 1", "layernorm 1"},
      {"bias 1", "relu", "ff dropout"},
      {"bias 2", "ff2 dropout", "residual 2", "layernorm 2"},
      {"layernorm 2 dX", "ff2 dropout dX"},
      {"bias 2 dW", "ff dropout dX", "relu dX", "bias 1 dW"},
      {"residual 2 bwd", "layernorm 1 dW"},
      {"layernorm 1 dX", "attn dropout dX"},
  };
  return options;
}

template <typename T>
LayerArenaT<T> MakeEncoderArena(const EncoderConfig& config) {
  const auto graph = graph::BuildEncoder(
      config.dims, graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  return LayerArenaT<T>(graph, EncoderPlanOptions<T>());
}

template <typename T>
LayerArenaT<T> MakeMhaArena(const MhaConfig& config) {
  graph::PlanOptions options;
  options.default_elem_bytes = sizeof(T);
  // The full forward+backward graph is modeled, so saved activations live
  // exactly until the backward op that consumes them and the backward
  // temporaries (d_gamma, d_beta, ...) share recycled bytes. Backward
  // takes d_out by reference; it never lives in the arena.
  options.exclude = {"d_out"};
  const auto graph = graph::BuildMha(config.dims, /*include_backward=*/true);
  return LayerArenaT<T>(graph, std::move(options));
}

template <typename T>
graph::PlanOptions StackPlanOptions(const graph::DataflowGraph& graph) {
  graph::PlanOptions options;
  options.default_elem_bytes = sizeof(T);
  options.elem_bytes = [](const graph::TensorNode& t) -> std::size_t {
    // Layernorm statistics and the loss scalar stay fp32 regardless of the
    // activation type; the "@r" recompute-clone suffix must not hide the
    // statistic suffix.
    std::string_view name = t.name;
    if (name.ends_with("@r")) name.remove_suffix(2);
    if (name.ends_with("_mean") || name.ends_with("_rstd") ||
        name == "loss") {
      return sizeof(float);
    }
    return sizeof(T);
  };
  // Per-layer stacked Q/K/V projections, plus the recompute clones of
  // checkpointed layers (the clone contraction writes the "@r" stack
  // exactly as the original wrote the stored one).
  for (int l = 0; graph.HasTensor(StrFormat("L%d.qq", l)); ++l) {
    const std::string p = StrFormat("L%d.", l);
    options.groups.push_back(
        {p + "qkv_proj", {p + "qq", p + "kk", p + "vv"}});
    options.groups.push_back(
        {p + "d_qkv_proj", {p + "d_qq", p + "d_kk", p + "d_vv"}});
    if (graph.HasTensor(p + "qq@r")) {
      options.groups.push_back(
          {p + "qkv_proj@r", {p + "qq@r", p + "kk@r", p + "vv@r"}});
    }
  }
  // Backward takes d_y by reference when it is a graph input; with a loss
  // head the graph produces d_y itself and it must be planned. The loss
  // target is always caller-provided.
  if (graph.HasTensor("d_y") && graph.ProducerOf("d_y") < 0) {
    options.exclude.push_back("d_y");
  }
  if (graph.HasTensor("target")) options.exclude.push_back("target");
  // Derive the fused spans from the fusion pass itself instead of a
  // hand-maintained list: every recognized multi-op kernel the executor
  // will launch (determinism/fused-spans requires declared == launched)
  // reads its span's inputs while writing its outputs, so the planner must
  // not recycle one into the other. This covers the cross-layer EBSB merge
  // and the checkpoint-clone chains automatically.
  const fusion::FusionResult fused = fusion::FuseMaximally(graph);
  const auto recognized = [](std::string_view name) {
    return name == "DRLN" || name == "BDRLN" || name == "BRD" ||
           name == "BLNRD" || name == "BDRB" || name == "EBSB";
  };
  for (const fusion::FusedKernel& kernel : fused.kernels) {
    if (kernel.op_indices.size() < 2 || !recognized(kernel.name)) continue;
    std::vector<std::string> span;
    span.reserve(kernel.op_indices.size());
    for (const int idx : kernel.op_indices) {
      span.push_back(graph.ops()[static_cast<std::size_t>(idx)].name);
    }
    options.fused_spans.push_back(std::move(span));
  }
  return options;
}

template <typename T>
StackArenaT<T> MakeStackArena(const EncoderConfig& config,
                              graph::StackGraphOptions options,
                              std::size_t memory_budget_bytes) {
  if (memory_budget_bytes > 0) {
    return StackArenaT<T>(graph::PlanCheckpointedStack(
        config.dims, std::move(options),
        [](const graph::DataflowGraph& g) { return StackPlanOptions<T>(g); },
        memory_budget_bytes));
  }
  auto graph = graph::BuildEncoderStack(config.dims, options);
  auto plan_options = StackPlanOptions<T>(graph);
  return StackArenaT<T>(std::move(graph), std::move(plan_options),
                        std::move(options.recompute_layers));
}

template class LayerArenaT<Half>;
template class LayerArenaT<float>;
template graph::PlanOptions EncoderPlanOptions<Half>();
template graph::PlanOptions EncoderPlanOptions<float>();
template LayerArenaT<Half> MakeEncoderArena<Half>(const EncoderConfig&);
template LayerArenaT<float> MakeEncoderArena<float>(const EncoderConfig&);
template LayerArenaT<Half> MakeMhaArena<Half>(const MhaConfig&);
template LayerArenaT<float> MakeMhaArena<float>(const MhaConfig&);
template graph::PlanOptions StackPlanOptions<Half>(const graph::DataflowGraph&);
template graph::PlanOptions StackPlanOptions<float>(
    const graph::DataflowGraph&);
template class StackArenaT<Half>;
template class StackArenaT<float>;
template StackArenaT<Half> MakeStackArena<Half>(const EncoderConfig&,
                                                graph::StackGraphOptions,
                                                std::size_t);
template StackArenaT<float> MakeStackArena<float>(const EncoderConfig&,
                                                  graph::StackGraphOptions,
                                                  std::size_t);

}  // namespace xflow::transformer
