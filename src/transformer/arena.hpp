// Per-layer planned arenas: bind a layer's activation/gradient structs to
// one of these and every saved activation, mask and backward temporary
// becomes a fixed-offset view into a single liveness-planned slab (see
// graph/memory_plan.hpp). Steady-state Forward/Backward then perform zero
// tensor allocations, and peak activation memory follows the plan instead
// of the naive sum-of-tensors.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/strings.hpp"
#include "graph/memory_plan.hpp"
#include "tensor/workspace.hpp"
#include "transformer/encoder.hpp"
#include "transformer/mha.hpp"

namespace xflow::transformer {

/// One layer instance's slab. Views are requested by graph container
/// name; the caller supplies the runtime shape, which may relabel dims
/// (the paper's j->k / p->w renames) but must match the planned byte
/// size. Element type per view lets fp32 layernorm statistics coexist
/// with fp16 activations in one slab.
template <typename T>
class LayerArenaT {
 public:
  LayerArenaT(const graph::DataflowGraph& graph, graph::PlanOptions options);
  /// Adopts an already computed plan (layers of one stack share a plan --
  /// same dims, same graph -- but each needs its own slab because its
  /// saved activations must survive until its backward runs).
  explicit LayerArenaT(graph::MemoryPlan plan);

  template <typename U>
  [[nodiscard]] Tensor<U> ViewAs(const std::string& name, Shape shape) {
    const graph::TensorPlacement& p = plan_.at(name);
    require(static_cast<std::size_t>(shape.num_elements()) * sizeof(U) ==
                p.bytes,
            StrFormat("arena view '%s' does not match its planned size",
                      name.c_str()));
    return workspace_.ViewAt<U>(p.offset, std::move(shape));
  }

  [[nodiscard]] const graph::MemoryPlan& plan() const { return plan_; }
  [[nodiscard]] Workspace& workspace() { return workspace_; }

 private:
  graph::MemoryPlan plan_;
  Workspace workspace_;
};

/// Arena-or-owning storage resolution, shared by the layer Forward and
/// Backward implementations. With an arena, `slot` becomes a view at the
/// container's planned offset; without one, owning storage is reused via
/// EnsureShape. Either way the caller overwrites the contents.
template <typename U, typename T>
Tensor<U>& BindSlot(LayerArenaT<T>* arena, Tensor<U>& slot,
                    const std::string& name, const Shape& shape) {
  if (arena != nullptr) {
    slot = arena->template ViewAs<U>(name, shape);
  } else {
    slot.EnsureShape(shape);
  }
  return slot;
}

/// Same resolution for a temporary that lives only inside one call.
template <typename T>
[[nodiscard]] Tensor<T> AcquireTemp(LayerArenaT<T>* arena,
                                    const std::string& name,
                                    const Shape& shape) {
  return arena != nullptr ? arena->template ViewAs<T>(name, shape)
                          : Tensor<T>(shape);
}

/// Plan options for a `Tensor<T>` transformer layer: activations take
/// sizeof(T) bytes, the fp32 layernorm statistics 4, and the stacked
/// Q/K/V blocks are grouped so the algebraically fused projections (and
/// the [dQ~ dK~ dV~] gradient stack) read/write one contiguous tensor.
template <typename T>
graph::PlanOptions EncoderPlanOptions();

/// Arena for one EncoderLayerT (full forward+backward graph, Fig. 2).
template <typename T>
LayerArenaT<T> MakeEncoderArena(const EncoderConfig& config);

/// Arena for one MhaLayerT step (Fig. 1 graph, forward + backward): bind
/// both MhaActivationsT::arena and MhaGradientsT::arena to it.
template <typename T>
LayerArenaT<T> MakeMhaArena(const MhaConfig& config);

extern template class LayerArenaT<Half>;
extern template class LayerArenaT<float>;
extern template graph::PlanOptions EncoderPlanOptions<Half>();
extern template graph::PlanOptions EncoderPlanOptions<float>();
extern template LayerArenaT<Half> MakeEncoderArena<Half>(const EncoderConfig&);
extern template LayerArenaT<float> MakeEncoderArena<float>(
    const EncoderConfig&);
extern template LayerArenaT<Half> MakeMhaArena<Half>(const MhaConfig&);
extern template LayerArenaT<float> MakeMhaArena<float>(const MhaConfig&);

}  // namespace xflow::transformer
