// Per-layer planned arenas: bind a layer's activation/gradient structs to
// one of these and every saved activation, mask and backward temporary
// becomes a fixed-offset view into a single liveness-planned slab (see
// graph/memory_plan.hpp). Steady-state Forward/Backward then perform zero
// tensor allocations, and peak activation memory follows the plan instead
// of the naive sum-of-tensors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "common/strings.hpp"
#include "graph/checkpoint.hpp"
#include "graph/memory_plan.hpp"
#include "tensor/workspace.hpp"
#include "transformer/encoder.hpp"
#include "transformer/mha.hpp"

namespace xflow::transformer {

/// One layer instance's slab. Views are requested by graph container
/// name; the caller supplies the runtime shape, which may relabel dims
/// (the paper's j->k / p->w renames) but must match the planned byte
/// size. Element type per view lets fp32 layernorm statistics coexist
/// with fp16 activations in one slab.
template <typename T>
class LayerArenaT {
 public:
  LayerArenaT(const graph::DataflowGraph& graph, graph::PlanOptions options);
  /// Adopts an already computed plan (layers of one stack share a plan --
  /// same dims, same graph -- but each needs its own slab because its
  /// saved activations must survive until its backward runs).
  explicit LayerArenaT(graph::MemoryPlan plan);

  template <typename U>
  [[nodiscard]] Tensor<U> ViewAs(const std::string& name, Shape shape) {
    const graph::TensorPlacement& p = plan_.at(name);
    require(static_cast<std::size_t>(shape.num_elements()) * sizeof(U) ==
                p.bytes,
            StrFormat("arena view '%s' does not match its planned size",
                      name.c_str()));
    return workspace_.ViewAt<U>(p.offset, std::move(shape));
  }

  [[nodiscard]] const graph::MemoryPlan& plan() const { return plan_; }
  [[nodiscard]] Workspace& workspace() { return workspace_; }

 private:
  graph::MemoryPlan plan_;
  Workspace workspace_;
};

/// Arena-or-owning storage resolution, shared by the layer Forward and
/// Backward implementations. With an arena, `slot` becomes a view at the
/// container's planned offset; without one, owning storage is reused via
/// EnsureShape. Either way the caller overwrites the contents.
template <typename U, typename T>
Tensor<U>& BindSlot(LayerArenaT<T>* arena, Tensor<U>& slot,
                    const std::string& name, const Shape& shape) {
  if (arena != nullptr) {
    slot = arena->template ViewAs<U>(name, shape);
  } else {
    slot.EnsureShape(shape);
  }
  return slot;
}

/// Same resolution for a temporary that lives only inside one call.
template <typename T>
[[nodiscard]] Tensor<T> AcquireTemp(LayerArenaT<T>* arena,
                                    const std::string& name,
                                    const Shape& shape) {
  return arena != nullptr ? arena->template ViewAs<T>(name, shape)
                          : Tensor<T>(shape);
}

/// Plan options for a `Tensor<T>` transformer layer: activations take
/// sizeof(T) bytes, the fp32 layernorm statistics 4, and the stacked
/// Q/K/V blocks are grouped so the algebraically fused projections (and
/// the [dQ~ dK~ dV~] gradient stack) read/write one contiguous tensor.
template <typename T>
graph::PlanOptions EncoderPlanOptions();

/// Arena for one EncoderLayerT (full forward+backward graph, Fig. 2).
template <typename T>
LayerArenaT<T> MakeEncoderArena(const EncoderConfig& config);

/// Arena for one MhaLayerT step (Fig. 1 graph, forward + backward): bind
/// both MhaActivationsT::arena and MhaGradientsT::arena to it.
template <typename T>
LayerArenaT<T> MakeMhaArena(const MhaConfig& config);

/// Plan options for a whole-stack graph (graph::BuildEncoderStack):
/// per-layer "L<l>." Q/K/V groups (recompute "@r" clones included), element
/// sizes that see through the "@r" suffix (fp32 layernorm statistics and
/// loss scalar), and fused spans derived from the fusion pass itself so
/// every recognized multi-op kernel -- cross-layer EBSB merges and
/// checkpoint-clone chains included -- is planned as one atomic span.
template <typename T>
graph::PlanOptions StackPlanOptions(const graph::DataflowGraph& graph);

/// One slab for an entire training step: the whole-stack graph, its plan,
/// and the checkpoint decisions that shaped it. Unlike per-layer arenas
/// (one slab per layer), every layer's activations and gradients live in
/// this single liveness-planned workspace, so transients of different
/// layers overlap whenever their store-until-backward windows permit.
template <typename T>
class StackArenaT {
 public:
  StackArenaT(graph::DataflowGraph graph, graph::PlanOptions options,
              std::vector<int> recompute_layers = {})
      : graph_(std::move(graph)),
        arena_(graph_, std::move(options)),
        recompute_layers_(std::move(recompute_layers)) {
    std::sort(recompute_layers_.begin(), recompute_layers_.end());
  }
  /// Adopts a checkpoint-aware plan (graph/checkpoint.hpp).
  explicit StackArenaT(graph::CheckpointedStackPlan plan)
      : graph_(std::move(plan.graph)),
        arena_(std::move(plan.plan)),
        recompute_layers_(std::move(plan.recompute_layers)),
        decisions_(std::move(plan.decisions)),
        recompute_seconds_(plan.recompute_seconds) {}

  [[nodiscard]] const graph::DataflowGraph& graph() const { return graph_; }
  [[nodiscard]] LayerArenaT<T>& arena() { return arena_; }
  [[nodiscard]] const graph::MemoryPlan& plan() const { return arena_.plan(); }
  [[nodiscard]] Workspace& workspace() { return arena_.workspace(); }
  /// Layers whose forward re-executes inside backward (sorted ascending);
  /// empty when nothing is checkpointed.
  [[nodiscard]] const std::vector<int>& recompute_layers() const {
    return recompute_layers_;
  }
  [[nodiscard]] const std::vector<graph::ActivationDecision>& decisions()
      const {
    return decisions_;
  }
  /// Roofline estimate of the extra re-execution per step (seconds).
  [[nodiscard]] double recompute_seconds() const { return recompute_seconds_; }

 private:
  graph::DataflowGraph graph_;
  LayerArenaT<T> arena_;
  std::vector<int> recompute_layers_;
  std::vector<graph::ActivationDecision> decisions_;
  double recompute_seconds_ = 0;
};

/// Whole-stack arena for EncoderStackT's graph-executor path. With
/// `memory_budget_bytes` > 0 the plan is checkpoint-aware: layers are
/// greedily marked for recompute until the planned peak fits the budget
/// (graph::PlanCheckpointedStack). `options.recompute_layers` is honored
/// as-is when the budget is 0 and overwritten by the planner otherwise.
template <typename T>
StackArenaT<T> MakeStackArena(const EncoderConfig& config,
                              graph::StackGraphOptions options,
                              std::size_t memory_budget_bytes = 0);

extern template class LayerArenaT<Half>;
extern template class LayerArenaT<float>;
extern template graph::PlanOptions EncoderPlanOptions<Half>();
extern template graph::PlanOptions EncoderPlanOptions<float>();
extern template LayerArenaT<Half> MakeEncoderArena<Half>(const EncoderConfig&);
extern template LayerArenaT<float> MakeEncoderArena<float>(
    const EncoderConfig&);
extern template LayerArenaT<Half> MakeMhaArena<Half>(const MhaConfig&);
extern template LayerArenaT<float> MakeMhaArena<float>(const MhaConfig&);
extern template graph::PlanOptions StackPlanOptions<Half>(
    const graph::DataflowGraph&);
extern template graph::PlanOptions StackPlanOptions<float>(
    const graph::DataflowGraph&);
extern template class StackArenaT<Half>;
extern template class StackArenaT<float>;
extern template StackArenaT<Half> MakeStackArena<Half>(
    const EncoderConfig&, graph::StackGraphOptions, std::size_t);
extern template StackArenaT<float> MakeStackArena<float>(
    const EncoderConfig&, graph::StackGraphOptions, std::size_t);

}  // namespace xflow::transformer
