#include "transformer/encoder.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "graph/executor.hpp"
#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"
#include "transformer/arena.hpp"

namespace xflow::transformer {

namespace {

/// Dropout sites get decorrelated Philox streams derived from the layer
/// seed. Identical across fused/unfused execution by construction.
enum DropoutSite : std::uint64_t {
  kAttnSoftmax = 0,
  kAttnOutput = 1,
  kFeedForward = 2,
  kOutput = 3,
};

std::uint64_t SiteSeed(std::uint64_t seed, DropoutSite site) {
  std::uint64_t s = seed * 4 + site;
  return SplitMix64(s);
}

/// The layer's contractions, parsed once per process: steady-state steps
/// must not re-parse specs (or allocate output tensors -- every call site
/// uses EinsumInto with planned or reused storage).
struct EncoderSpecs {
  EinsumSpec qkv = EinsumSpec::Parse("phi,ibj->phbj");
  EinsumSpec qkt = EinsumSpec::Parse("phbk,phbj->hbjk");
  EinsumSpec gamma = EinsumSpec::Parse("whbk,hbjk->whbj");
  EinsumSpec out = EinsumSpec::Parse("whi,whbj->ibj");
  EinsumSpec lin1 = EinsumSpec::Parse("ui,ibj->ubj");
  EinsumSpec lin2 = EinsumSpec::Parse("iu,ubj->ibj");
  EinsumSpec lin2_dx = EinsumSpec::Parse("iu,ibj->ubj");
  EinsumSpec lin2_dw = EinsumSpec::Parse("ibj,ubj->iu");
  EinsumSpec lin1_dx = EinsumSpec::Parse("ui,ubj->ibj");
  EinsumSpec lin1_dw = EinsumSpec::Parse("ubj,ibj->ui");
  EinsumSpec out_dx = EinsumSpec::Parse("whi,ibj->whbj");
  EinsumSpec out_dw = EinsumSpec::Parse("ibj,whbj->whi");
  EinsumSpec gamma_dx1 = EinsumSpec::Parse("whbk,whbj->hbjk");
  EinsumSpec gamma_dx2 = EinsumSpec::Parse("whbj,hbjk->whbk");
  EinsumSpec qkt_dx1 = EinsumSpec::Parse("phbj,hbjk->phbk");
  EinsumSpec qkt_dx2 = EinsumSpec::Parse("hbjk,phbk->phbj");
  EinsumSpec qkv_dx = EinsumSpec::Parse("phi,phbj->ibj");
  EinsumSpec qkv_dw = EinsumSpec::Parse("phbj,ibj->phi");
};

const EncoderSpecs& S() {
  static const EncoderSpecs specs;
  return specs;
}

}  // namespace

std::vector<std::uint64_t> EncoderDropoutSeeds(std::uint64_t layer_seed) {
  return {SiteSeed(layer_seed, kAttnSoftmax), SiteSeed(layer_seed, kAttnOutput),
          SiteSeed(layer_seed, kFeedForward), SiteSeed(layer_seed, kOutput)};
}

bool GraphExecutorDefault() {
  static const bool value = [] {
    const char* env = std::getenv("XFLOW_GRAPH_EXEC");
    if (env == nullptr || *env == '\0') return false;
    std::string v(env);
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return v != "0" && v != "false" && v != "off" && v != "no";
  }();
  return value;
}

template <typename T>
EncoderParamsT<T> EncoderParamsT<T>::Init(const graph::ModelDims& d,
                                          std::uint64_t seed) {
  const auto i = d.i;
  const auto p3 = 3 * d.p;
  auto scaled = [&](Shape shape, std::int64_t fan_in,
                    std::uint64_t s) -> Tensor<T> {
    auto t = Tensor<T>::Random(std::move(shape), s);
    const float scale = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (std::int64_t e = 0; e < t.size(); ++e) {
      t.data()[e] = T(float(t.data()[e]) * scale);
    }
    return t;
  };
  EncoderParamsT<T> params;
  params.w_qkv = scaled(Shape("phi", {p3, d.h, i}), i, seed + 1);
  params.b_qkv = scaled(Shape("ph", {p3, d.h}), i, seed + 2);
  params.w_out = scaled(Shape("whi", {d.p, d.h, i}), d.p * d.h, seed + 3);
  params.b_out = scaled(Shape("i", {i}), i, seed + 4);
  params.ln1_w = Tensor<T>::Full(Shape("i", {i}), 1.0f);
  params.ln1_b = Tensor<T>::Full(Shape("i", {i}), 0.0f);
  params.w1 = scaled(Shape("ui", {d.u, i}), i, seed + 5);
  params.b1 = scaled(Shape("u", {d.u}), i, seed + 6);
  params.w2 = scaled(Shape("iu", {i, d.u}), d.u, seed + 7);
  params.b2 = scaled(Shape("i", {i}), d.u, seed + 8);
  params.ln2_w = Tensor<T>::Full(Shape("i", {i}), 1.0f);
  params.ln2_b = Tensor<T>::Full(Shape("i", {i}), 0.0f);
  return params;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>> EncoderParamsT<T>::Named() {
  return {{"w_qkv", &w_qkv}, {"b_qkv", &b_qkv}, {"w_out", &w_out},
          {"b_out", &b_out}, {"ln1_w", &ln1_w}, {"ln1_b", &ln1_b},
          {"w1", &w1},       {"b1", &b1},       {"w2", &w2},
          {"b2", &b2},       {"ln2_w", &ln2_w}, {"ln2_b", &ln2_b}};
}

template <typename T>
void EncoderParamsT<T>::EnsureShapes(const graph::ModelDims& d) {
  const auto p3 = 3 * d.p;
  w_qkv.EnsureShape(Shape("phi", {p3, d.h, d.i}));
  b_qkv.EnsureShape(Shape("ph", {p3, d.h}));
  w_out.EnsureShape(Shape("whi", {d.p, d.h, d.i}));
  b_out.EnsureShape(Shape("i", {d.i}));
  ln1_w.EnsureShape(Shape("i", {d.i}));
  ln1_b.EnsureShape(Shape("i", {d.i}));
  w1.EnsureShape(Shape("ui", {d.u, d.i}));
  b1.EnsureShape(Shape("u", {d.u}));
  w2.EnsureShape(Shape("iu", {d.i, d.u}));
  b2.EnsureShape(Shape("i", {d.i}));
  ln2_w.EnsureShape(Shape("i", {d.i}));
  ln2_b.EnsureShape(Shape("i", {d.i}));
}

template <typename T>
EncoderLayerT<T>::EncoderLayerT(EncoderConfig config, EncoderParamsT<T> params)
    : config_(std::move(config)), params_(std::move(params)) {}

template <typename T>
EncoderLayerT<T>::EncoderLayerT(EncoderLayerT&&) noexcept = default;
template <typename T>
EncoderLayerT<T>& EncoderLayerT<T>::operator=(EncoderLayerT&&) noexcept =
    default;
template <typename T>
EncoderLayerT<T>::~EncoderLayerT() = default;

template <typename T>
graph::GraphExecutorT<T>& EncoderLayerT<T>::Executor(
    LayerArenaT<T>& arena) const {
  if (executor_ == nullptr || executor_arena_ != &arena ||
      executor_slab_ != arena.workspace().data()) {
    const auto& d = config_.dims;
    graph::ExecutorOptions opts;
    opts.use_fused_kernels = config_.use_fused_kernels;
    opts.use_task_scheduler = config_.use_task_scheduler;
    opts.causal = config_.causal;
    opts.dropout_prob = config_.dropout_prob;
    opts.ln_eps = config_.ln_eps;
    opts.attn_scale = 1.0f / std::sqrt(static_cast<float>(d.p));
    // Per-site Philox streams, in dropout-op graph order: SM's attention
    // dropout, the attention-output dropout, the two feed-forward ones.
    opts.dropout_seeds = {SiteSeed(config_.seed, kAttnSoftmax),
                          SiteSeed(config_.seed, kAttnOutput),
                          SiteSeed(config_.seed, kFeedForward),
                          SiteSeed(config_.seed, kOutput)};
    opts.stacked = EncoderPlanOptions<T>().groups;
    executor_ = std::make_unique<graph::GraphExecutorT<T>>(
        graph::BuildEncoder(d, graph::AlgebraicFusion::kQKV,
                            /*include_backward=*/true),
        &arena.plan(), &arena.workspace(), std::move(opts));
    executor_arena_ = &arena;
    executor_slab_ = arena.workspace().data();
    // Weights are stable across steps: bind them once per executor.
    auto& self = const_cast<EncoderLayerT<T>&>(*this);
    for (auto& [name, tensor] : self.params_.Named()) {
      executor_->BindInput(name, *tensor);
    }
  }
  return *executor_;
}

template <typename T>
void EncoderLayerT<T>::ExecutorForward(const Tensor<T>& x,
                                       EncoderActivationsT<T>& acts) const {
  const auto& d = config_.dims;
  auto& ex = Executor(*acts.arena);
  ex.BindInput("x", x);
  ex.Forward();
  // Expose the saved activations as arena views under the same dim names
  // the hand-wired path uses (the j->k / p->w renames of the paper).
  LayerArenaT<T>* ar = acts.arena;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  // The executor reads the caller's x by reference, but acts.x is still
  // populated (the plan pins a slot for it) so a hand-wired Backward on
  // an owning gradients struct keeps working after an executor Forward.
  acts.x = ar->template ViewAs<T>("x", x.shape());
  CopyValuesInto(x, acts.x);
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape bj("bj", {d.b, d.j});
  acts.qq_b = ar->template ViewAs<T>("qq_b",
                                     Shape("phbj", {d.p, d.h, d.b, d.j}));
  acts.kk_b = ar->template ViewAs<T>("kk_b",
                                     Shape("phbk", {d.p, d.h, d.b, d.k}));
  acts.vv_b = ar->template ViewAs<T>("vv_b",
                                     Shape("whbk", {d.p, d.h, d.b, d.k}));
  acts.alpha = ar->template ViewAs<T>("alpha", hbjk);
  acts.attn_mask = ar->template ViewAs<T>("attn_mask", hbjk);
  acts.softmax_saved = ar->template ViewAs<T>("softmax_saved", hbjk);
  acts.gamma_t = ar->template ViewAs<T>("gamma_t",
                                        Shape("whbj", {d.p, d.h, d.b, d.j}));
  acts.attn_drop_mask = ar->template ViewAs<T>("attn_drop_mask", ibj);
  acts.resid1 = ar->template ViewAs<T>("resid1", ibj);
  acts.ln1_mean = ar->template ViewAs<float>("ln1_mean", bj);
  acts.ln1_rstd = ar->template ViewAs<float>("ln1_rstd", bj);
  acts.ln1_out = ar->template ViewAs<T>("ln1_out", ibj);
  acts.relu1 = ar->template ViewAs<T>("relu1", ubj);
  acts.ff_dropped = ar->template ViewAs<T>("ff_dropped", ubj);
  acts.ff_drop_mask = ar->template ViewAs<T>("ff_drop_mask", ubj);
  acts.lin2_drop_mask = ar->template ViewAs<T>("lin2_drop_mask", ibj);
  acts.resid2 = ar->template ViewAs<T>("resid2", ibj);
  acts.ln2_mean = ar->template ViewAs<float>("ln2_mean", bj);
  acts.ln2_rstd = ar->template ViewAs<float>("ln2_rstd", bj);
  acts.y = ar->template ViewAs<T>("y", ibj);
}

template <typename T>
void EncoderLayerT<T>::ExecutorBackward(const Tensor<T>& d_y,
                                        const EncoderActivationsT<T>& /*acts*/,
                                        EncoderGradientsT<T>& grads) const {
  // The activations already live at their planned offsets in the arena
  // the executor is bound to; only d_y and the weight-gradient
  // accumulators need (re)binding.
  const auto& d = config_.dims;
  auto& gp = grads.params;
  gp.EnsureShapes(d);  // accumulators; the executor overwrites every entry
  require(executor_ != nullptr && grads.arena == executor_arena_,
          "executor Backward needs the arena ExecutorForward ran on (bind "
          "acts and grads to the same arena)");
  auto& ex = Executor(*grads.arena);
  ex.BindInput("d_y", d_y);
  for (auto& [name, tensor] : gp.Named()) {
    ex.BindOutput("d_" + name, *tensor);
  }
  ex.Backward();
  grads.d_x =
      grads.arena->template ViewAs<T>("d_x", Shape("ibj", {d.i, d.b, d.j}));
}

template <typename T>
const Tensor<T>& EncoderLayerT<T>::Forward(const Tensor<T>& x,
                                           EncoderActivationsT<T>& acts) const {
  if (config_.use_graph_executor && acts.arena != nullptr) {
    ExecutorForward(x, acts);
    return acts.y;
  }
  const auto& d = config_.dims;
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const DropoutMask attn_sm_mask(SiteSeed(config_.seed, kAttnSoftmax),
                                 config_.dropout_prob);
  const DropoutMask attn_out_mask(SiteSeed(config_.seed, kAttnOutput),
                                  config_.dropout_prob);
  const DropoutMask ff_mask(SiteSeed(config_.seed, kFeedForward),
                            config_.dropout_prob);
  const DropoutMask out_mask(SiteSeed(config_.seed, kOutput),
                             config_.dropout_prob);
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape whbj("whbj", {d.p, d.h, d.b, d.j});
  const Shape phbj("phbj", {d.p, d.h, d.b, d.j});
  const Shape phbj3("phbj", {3 * d.p, d.h, d.b, d.j});
  const Shape bj("bj", {d.b, d.j});

  // Saved activations and temporaries come from the bound arena (views at
  // planned offsets) or from owning buffers that EnsureShape reuses
  // across steps; either way the kernels below overwrite them fully.
  LayerArenaT<T>* ar = acts.arena;
  auto slot = [ar](Tensor<T>& t, const char* name,
                   const Shape& shape) -> Tensor<T>& {
    return BindSlot(ar, t, name, shape);
  };
  auto stat = [ar](TensorF& t, const char* name,
                   const Shape& shape) -> TensorF& {
    return BindSlot(ar, t, name, shape);
  };
  auto tmp = [ar](const char* name, const Shape& shape) -> Tensor<T> {
    return AcquireTemp(ar, name, shape);
  };

  // The input is saved for the backward dW contractions.
  CopyValuesInto(x, slot(acts.x, "x", x.shape()));

  // Q,K,V: one stacked GEMM (algebraic fusion, Sec. IV-D). The three
  // projections are contiguous sub-blocks of the stacked output, so the
  // split is a zero-copy view.
  Tensor<T> proj = tmp("qkv_proj", phbj3);
  EinsumInto(S().qkv, params_.w_qkv, x, proj);
  auto qq = proj.SliceViewDim('p', 0, d.p);
  auto kk = proj.SliceViewDim('p', d.p, d.p);
  auto vv = proj.SliceViewDim('p', 2 * d.p, d.p);

  // AIB.
  slot(acts.qq_b, "qq_b", phbj);
  Tensor<T> kk_b = tmp("kk_b", phbj);
  Tensor<T> vv_b = tmp("vv_b", phbj);
  if (config_.use_fused_kernels) {
    ops::AttnInputBias<T>({&qq, &kk, &vv}, params_.b_qkv, 'p',
                          {&acts.qq_b, &kk_b, &vv_b});
  } else {
    ops::BiasForward(qq, params_.b_qkv.SliceViewDim('p', 0, d.p), acts.qq_b);
    ops::BiasForward(kk, params_.b_qkv.SliceViewDim('p', d.p, d.p), kk_b);
    ops::BiasForward(vv, params_.b_qkv.SliceViewDim('p', 2 * d.p, d.p), vv_b);
  }
  acts.kk_b = kk_b.RenamedDim('j', 'k');
  acts.vv_b = vv_b.RenamedDim('j', 'k').RenamedDim('p', 'w');

  // QKT (the softmax scaling lives in the SM kernel).
  Tensor<T> beta = tmp("beta", hbjk);
  EinsumInto(S().qkt, acts.kk_b, acts.qq_b, beta);

  // SM: scale + softmax + attention dropout.
  slot(acts.alpha, "alpha", hbjk);
  slot(acts.attn_mask, "attn_mask", hbjk);
  slot(acts.softmax_saved, "softmax_saved", hbjk);
  if (config_.causal) {
    ops::CausalScaledSoftmaxForward(beta, 'k', 'j', attn_scale, attn_sm_mask,
                                    acts.alpha, acts.attn_mask,
                                    acts.softmax_saved);
  } else {
    ops::ScaledSoftmaxForward(beta, 'k', attn_scale, attn_sm_mask,
                              acts.alpha, acts.attn_mask,
                              acts.softmax_saved);
  }

  // gamma and the output projection.
  slot(acts.gamma_t, "gamma_t", whbj);
  EinsumInto(S().gamma, acts.vv_b, acts.alpha, acts.gamma_t);
  Tensor<T> attn_out = tmp("attn_out", ibj);
  EinsumInto(S().out, params_.w_out, acts.gamma_t, attn_out);

  // DRLN: output bias + dropout + residual + layernorm 1.
  slot(acts.resid1, "resid1", ibj);
  slot(acts.attn_drop_mask, "attn_drop_mask", ibj);
  slot(acts.ln1_out, "ln1_out", ibj);
  stat(acts.ln1_mean, "ln1_mean", bj);
  stat(acts.ln1_rstd, "ln1_rstd", bj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutResidualLayerNorm(
        attn_out, params_.b_out, x, attn_out_mask, params_.ln1_w,
        params_.ln1_b, 'i', config_.ln_eps, acts.resid1, acts.attn_drop_mask,
        acts.ln1_out, acts.ln1_mean, acts.ln1_rstd);
  } else {
    Tensor<T> biased = tmp("attn_biased", ibj);
    Tensor<T> dropped = tmp("attn_dropped", ibj);
    ops::BiasForward(attn_out, params_.b_out, biased);
    ops::DropoutForward(biased, attn_out_mask, dropped, acts.attn_drop_mask);
    ops::ResidualForward(dropped, x, acts.resid1);
    ops::LayerNormForward(acts.resid1, params_.ln1_w, params_.ln1_b, 'i',
                          config_.ln_eps, acts.ln1_out, acts.ln1_mean,
                          acts.ln1_rstd);
  }

  // Feed-forward: linear 1, BRD, linear 2, BDRLN.
  Tensor<T> lin1 = tmp("lin1", ubj);
  EinsumInto(S().lin1, params_.w1, acts.ln1_out, lin1);
  slot(acts.relu1, "relu1", ubj);
  slot(acts.ff_dropped, "ff_dropped", ubj);
  slot(acts.ff_drop_mask, "ff_drop_mask", ubj);
  if (config_.use_fused_kernels) {
    ops::BiasReluDropout(lin1, params_.b1, ff_mask, acts.relu1,
                         acts.ff_dropped, acts.ff_drop_mask);
  } else {
    Tensor<T> biased = tmp("lin1_biased", ubj);
    ops::BiasForward(lin1, params_.b1, biased);
    ops::ReluForward(biased, acts.relu1);
    ops::DropoutForward(acts.relu1, ff_mask, acts.ff_dropped,
                        acts.ff_drop_mask);
  }

  Tensor<T> lin2 = tmp("lin2", ibj);
  EinsumInto(S().lin2, params_.w2, acts.ff_dropped, lin2);
  slot(acts.resid2, "resid2", ibj);
  slot(acts.lin2_drop_mask, "lin2_drop_mask", ibj);
  slot(acts.y, "y", ibj);
  stat(acts.ln2_mean, "ln2_mean", bj);
  stat(acts.ln2_rstd, "ln2_rstd", bj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutResidualLayerNorm(
        lin2, params_.b2, acts.ln1_out, out_mask, params_.ln2_w,
        params_.ln2_b, 'i', config_.ln_eps, acts.resid2, acts.lin2_drop_mask,
        acts.y, acts.ln2_mean, acts.ln2_rstd);
  } else {
    Tensor<T> biased = tmp("lin2_biased", ibj);
    Tensor<T> dropped = tmp("lin2_dropped", ibj);
    ops::BiasForward(lin2, params_.b2, biased);
    ops::DropoutForward(biased, out_mask, dropped, acts.lin2_drop_mask);
    ops::ResidualForward(dropped, acts.ln1_out, acts.resid2);
    ops::LayerNormForward(acts.resid2, params_.ln2_w, params_.ln2_b, 'i',
                          config_.ln_eps, acts.y, acts.ln2_mean,
                          acts.ln2_rstd);
  }
  return acts.y;
}

template <typename T>
void EncoderLayerT<T>::Backward(const Tensor<T>& d_y,
                                const EncoderActivationsT<T>& acts,
                                EncoderGradientsT<T>& grads) const {
  if (config_.use_graph_executor && grads.arena != nullptr) {
    ExecutorBackward(d_y, acts, grads);
    return;
  }
  const auto& d = config_.dims;
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const float keep = 1.0f - config_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape whbj("whbj", {d.p, d.h, d.b, d.j});
  const Shape whbk("whbk", {d.p, d.h, d.b, d.k});
  const Shape phbk("phbk", {d.p, d.h, d.b, d.k});
  const Shape phbj("phbj", {d.p, d.h, d.b, d.j});
  const Shape phbj3("phbj", {3 * d.p, d.h, d.b, d.j});
  auto& gp = grads.params;
  gp.EnsureShapes(d);  // accumulators; every entry is overwritten below

  LayerArenaT<T>* ar = grads.arena;
  auto tmp = [ar](const char* name, const Shape& shape) -> Tensor<T> {
    return AcquireTemp(ar, name, shape);
  };

  // BSB: layernorm 2 dW.
  ops::LayerNormBackwardDW(d_y, acts.resid2, acts.ln2_mean, acts.ln2_rstd,
                           'i', gp.ln2_w, gp.ln2_b);

  // BLNRD: layernorm 2 dX + output dropout dX (keeps d_resid2 for EBSB).
  Tensor<T> d_resid2 = tmp("d_resid2", ibj);
  Tensor<T> d_lin2_biased = tmp("d_lin2_biased", ibj);
  if (config_.use_fused_kernels) {
    ops::LayerNormDropoutBackward(d_y, params_.ln2_w, acts.resid2,
                                  acts.ln2_mean, acts.ln2_rstd,
                                  acts.lin2_drop_mask, 'i', keep_scale,
                                  d_resid2, d_lin2_biased);
  } else {
    ops::LayerNormBackwardDX(d_y, params_.ln2_w, acts.resid2, acts.ln2_mean,
                             acts.ln2_rstd, 'i', d_resid2);
    ops::DropoutBackwardDX(d_resid2, acts.lin2_drop_mask, keep_scale,
                           d_lin2_biased);
  }

  // Linear 2 dX / dW.
  Tensor<T> d_ff_dropped = tmp("d_ff_dropped", ubj);
  EinsumInto(S().lin2_dx, params_.w2, d_lin2_biased, d_ff_dropped);
  EinsumInto(S().lin2_dw, d_lin2_biased, acts.ff_dropped, gp.w2);

  // BDRB: bias2 dW + ff dropout dX + relu dX + bias1 dW.
  Tensor<T> d_lin1_biased = tmp("d_lin1_biased", ubj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutReluBiasBackward(d_lin2_biased, d_ff_dropped,
                                     acts.ff_drop_mask, acts.relu1,
                                     keep_scale, gp.b2, d_lin1_biased, gp.b1);
  } else {
    ops::BiasBackwardDW(d_lin2_biased, gp.b2);
    Tensor<T> d_relu = tmp("d_relu1", ubj);
    ops::DropoutBackwardDX(d_ff_dropped, acts.ff_drop_mask, keep_scale,
                           d_relu);
    ops::ReluBackwardDX(d_relu, acts.relu1, d_lin1_biased);
    ops::BiasBackwardDW(d_lin1_biased, gp.b1);
  }

  // Linear 1 dX / dW.
  Tensor<T> d_ln1_ff = tmp("d_ln1_ff", ibj);
  EinsumInto(S().lin1_dx, params_.w1, d_lin1_biased, d_ln1_ff);
  EinsumInto(S().lin1_dw, d_lin1_biased, acts.ln1_out, gp.w1);

  // EBSB: residual merge + layernorm 1 dW.
  Tensor<T> d_ln1_out = tmp("d_ln1_out", ibj);
  if (config_.use_fused_kernels) {
    ops::ResidualLayerNormDwBackward(d_ln1_ff, d_resid2, acts.resid1,
                                     acts.ln1_mean, acts.ln1_rstd, 'i',
                                     d_ln1_out, gp.ln1_w, gp.ln1_b);
  } else {
    ops::ResidualForward(d_ln1_ff, d_resid2, d_ln1_out);
    ops::LayerNormBackwardDW(d_ln1_out, acts.resid1, acts.ln1_mean,
                             acts.ln1_rstd, 'i', gp.ln1_w, gp.ln1_b);
  }

  // BLNRD: layernorm 1 dX + attention dropout dX.
  Tensor<T> d_resid1 = tmp("d_resid1", ibj);
  Tensor<T> d_attn_biased = tmp("d_attn_biased", ibj);
  if (config_.use_fused_kernels) {
    ops::LayerNormDropoutBackward(d_ln1_out, params_.ln1_w, acts.resid1,
                                  acts.ln1_mean, acts.ln1_rstd,
                                  acts.attn_drop_mask, 'i', keep_scale,
                                  d_resid1, d_attn_biased);
  } else {
    ops::LayerNormBackwardDX(d_ln1_out, params_.ln1_w, acts.resid1,
                             acts.ln1_mean, acts.ln1_rstd, 'i', d_resid1);
    ops::DropoutBackwardDX(d_resid1, acts.attn_drop_mask, keep_scale,
                           d_attn_biased);
  }

  // BAOB: output bias dW.
  ops::BiasBackwardDW(d_attn_biased, gp.b_out);

  // Attention backward contractions.
  Tensor<T> d_gamma = tmp("d_gamma", whbj);
  EinsumInto(S().out_dx, params_.w_out, d_attn_biased, d_gamma);
  EinsumInto(S().out_dw, d_attn_biased, acts.gamma_t, gp.w_out);
  Tensor<T> d_alpha = tmp("d_alpha", hbjk);
  EinsumInto(S().gamma_dx1, acts.vv_b, d_gamma, d_alpha);
  Tensor<T> d_vv = tmp("d_vv", whbk);
  EinsumInto(S().gamma_dx2, d_gamma, acts.alpha, d_vv);

  // BS: dropout + softmax + scaling backward.
  Tensor<T> d_beta = tmp("d_beta", hbjk);
  ops::ScaledSoftmaxBackwardDX(d_alpha, acts.attn_mask, acts.softmax_saved,
                               'k', attn_scale, keep_scale, d_beta);

  // QKT dX1 / dX2.
  Tensor<T> d_kk = tmp("d_kk", phbk);
  EinsumInto(S().qkt_dx1, acts.qq_b, d_beta, d_kk);
  Tensor<T> d_qq = tmp("d_qq", phbj);
  EinsumInto(S().qkt_dx2, d_beta, acts.kk_b, d_qq);

  // Stacked [dQ~ dK~ dV~] (algebraic fusion): the plan places the three
  // gradients as one contiguous block, so stacking is a zero-copy view;
  // the owning path concatenates as before.
  auto d_kk_j = d_kk.RenamedDim('k', 'j');
  auto d_vv_j = d_vv.RenamedDim('k', 'j').RenamedDim('w', 'p');
  Tensor<T> d_proj = ar != nullptr
                         ? ar->template ViewAs<T>("d_qkv_proj", phbj3)
                         : ConcatDim<T>({&d_qq, &d_kk_j, &d_vv_j}, 'p');
  if (ar != nullptr) {
    grads.d_x = ar->template ViewAs<T>("d_x", ibj);
  } else {
    grads.d_x.EnsureShape(ibj);
  }
  Tensor<T> d_x_qkv = tmp("d_x_qkv", ibj);
  EinsumInto(S().qkv_dx, params_.w_qkv, d_proj, d_x_qkv);
  EinsumInto(S().qkv_dw, d_proj, acts.x, gp.w_qkv);

  // BAIB: stacked input-bias gradient.
  if (config_.use_fused_kernels) {
    ops::AttnInputBiasBackward<T>({&d_qq, &d_kk_j, &d_vv_j}, 'p', gp.b_qkv);
  } else {
    ops::BiasBackwardDW(d_proj, gp.b_qkv);
  }

  // BEI: encoder-input residual.
  ops::ResidualForward(d_x_qkv, d_resid1, grads.d_x);
}

template struct EncoderParamsT<Half>;
template struct EncoderParamsT<float>;
template class EncoderLayerT<Half>;
template class EncoderLayerT<float>;

}  // namespace xflow::transformer
