#include "transformer/encoder.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"

namespace xflow::transformer {

namespace {

/// Dropout sites get decorrelated Philox streams derived from the layer
/// seed. Identical across fused/unfused execution by construction.
enum DropoutSite : std::uint64_t {
  kAttnSoftmax = 0,
  kAttnOutput = 1,
  kFeedForward = 2,
  kOutput = 3,
};

std::uint64_t SiteSeed(std::uint64_t seed, DropoutSite site) {
  std::uint64_t s = seed * 4 + site;
  return SplitMix64(s);
}

}  // namespace

template <typename T>
EncoderParamsT<T> EncoderParamsT<T>::Init(const graph::ModelDims& d,
                                          std::uint64_t seed) {
  const auto i = d.i;
  const auto p3 = 3 * d.p;
  auto scaled = [&](Shape shape, std::int64_t fan_in,
                    std::uint64_t s) -> Tensor<T> {
    auto t = Tensor<T>::Random(std::move(shape), s);
    const float scale = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (std::int64_t e = 0; e < t.size(); ++e) {
      t.data()[e] = T(float(t.data()[e]) * scale);
    }
    return t;
  };
  EncoderParamsT<T> params;
  params.w_qkv = scaled(Shape("phi", {p3, d.h, i}), i, seed + 1);
  params.b_qkv = scaled(Shape("ph", {p3, d.h}), i, seed + 2);
  params.w_out = scaled(Shape("whi", {d.p, d.h, i}), d.p * d.h, seed + 3);
  params.b_out = scaled(Shape("i", {i}), i, seed + 4);
  params.ln1_w = Tensor<T>::Full(Shape("i", {i}), 1.0f);
  params.ln1_b = Tensor<T>::Full(Shape("i", {i}), 0.0f);
  params.w1 = scaled(Shape("ui", {d.u, i}), i, seed + 5);
  params.b1 = scaled(Shape("u", {d.u}), i, seed + 6);
  params.w2 = scaled(Shape("iu", {i, d.u}), d.u, seed + 7);
  params.b2 = scaled(Shape("i", {i}), d.u, seed + 8);
  params.ln2_w = Tensor<T>::Full(Shape("i", {i}), 1.0f);
  params.ln2_b = Tensor<T>::Full(Shape("i", {i}), 0.0f);
  return params;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>> EncoderParamsT<T>::Named() {
  return {{"w_qkv", &w_qkv}, {"b_qkv", &b_qkv}, {"w_out", &w_out},
          {"b_out", &b_out}, {"ln1_w", &ln1_w}, {"ln1_b", &ln1_b},
          {"w1", &w1},       {"b1", &b1},       {"w2", &w2},
          {"b2", &b2},       {"ln2_w", &ln2_w}, {"ln2_b", &ln2_b}};
}

template <typename T>
EncoderLayerT<T>::EncoderLayerT(EncoderConfig config, EncoderParamsT<T> params)
    : config_(std::move(config)), params_(std::move(params)) {}

template <typename T>
const Tensor<T>& EncoderLayerT<T>::Forward(const Tensor<T>& x,
                                           EncoderActivationsT<T>& acts) const {
  const auto& d = config_.dims;
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const DropoutMask attn_sm_mask(SiteSeed(config_.seed, kAttnSoftmax),
                                 config_.dropout_prob);
  const DropoutMask attn_out_mask(SiteSeed(config_.seed, kAttnOutput),
                                  config_.dropout_prob);
  const DropoutMask ff_mask(SiteSeed(config_.seed, kFeedForward),
                            config_.dropout_prob);
  const DropoutMask out_mask(SiteSeed(config_.seed, kOutput),
                             config_.dropout_prob);
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  const Shape bj("bj", {d.b, d.j});

  acts.x = x;

  // Q,K,V: one stacked GEMM (algebraic fusion, Sec. IV-D), then split.
  auto proj = Einsum<T>("phi,ibj->phbj", params_.w_qkv, x);
  auto qq = proj.SliceDim('p', 0, d.p);
  auto kk = proj.SliceDim('p', d.p, d.p);
  auto vv = proj.SliceDim('p', 2 * d.p, d.p);

  // AIB.
  acts.qq_b = Tensor<T>(qq.shape());
  Tensor<T> kk_b(kk.shape()), vv_b(vv.shape());
  if (config_.use_fused_kernels) {
    ops::AttnInputBias<T>({&qq, &kk, &vv}, params_.b_qkv, 'p',
                          {&acts.qq_b, &kk_b, &vv_b});
  } else {
    ops::BiasForward(qq, params_.b_qkv.SliceDim('p', 0, d.p), acts.qq_b);
    ops::BiasForward(kk, params_.b_qkv.SliceDim('p', d.p, d.p), kk_b);
    ops::BiasForward(vv, params_.b_qkv.SliceDim('p', 2 * d.p, d.p), vv_b);
  }
  acts.kk_b = kk_b.RenamedDim('j', 'k');
  acts.vv_b = vv_b.RenamedDim('j', 'k').RenamedDim('p', 'w');

  // QKT (the softmax scaling lives in the SM kernel).
  auto beta = Einsum<T>("phbk,phbj->hbjk", acts.kk_b, acts.qq_b);

  // SM: scale + softmax + attention dropout.
  acts.alpha = Tensor<T>(hbjk);
  acts.attn_mask = Tensor<T>(hbjk);
  acts.softmax_saved = Tensor<T>(hbjk);
  if (config_.causal) {
    ops::CausalScaledSoftmaxForward(beta, 'k', 'j', attn_scale, attn_sm_mask,
                                    acts.alpha, acts.attn_mask,
                                    acts.softmax_saved);
  } else {
    ops::ScaledSoftmaxForward(beta, 'k', attn_scale, attn_sm_mask,
                              acts.alpha, acts.attn_mask,
                              acts.softmax_saved);
  }

  // gamma and the output projection.
  acts.gamma_t = Einsum<T>("whbk,hbjk->whbj", acts.vv_b, acts.alpha);
  auto attn_out = Einsum<T>("whi,whbj->ibj", params_.w_out, acts.gamma_t);

  // DRLN: output bias + dropout + residual + layernorm 1.
  acts.resid1 = Tensor<T>(ibj);
  acts.attn_drop_mask = Tensor<T>(ibj);
  acts.ln1_out = Tensor<T>(ibj);
  acts.ln1_mean = TensorF(bj);
  acts.ln1_rstd = TensorF(bj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutResidualLayerNorm(
        attn_out, params_.b_out, x, attn_out_mask, params_.ln1_w,
        params_.ln1_b, 'i', config_.ln_eps, acts.resid1, acts.attn_drop_mask,
        acts.ln1_out, acts.ln1_mean, acts.ln1_rstd);
  } else {
    Tensor<T> biased(ibj), dropped(ibj);
    ops::BiasForward(attn_out, params_.b_out, biased);
    ops::DropoutForward(biased, attn_out_mask, dropped, acts.attn_drop_mask);
    ops::ResidualForward(dropped, x, acts.resid1);
    ops::LayerNormForward(acts.resid1, params_.ln1_w, params_.ln1_b, 'i',
                          config_.ln_eps, acts.ln1_out, acts.ln1_mean,
                          acts.ln1_rstd);
  }

  // Feed-forward: linear 1, BRD, linear 2, BDRLN.
  auto lin1 = Einsum<T>("ui,ibj->ubj", params_.w1, acts.ln1_out);
  acts.relu1 = Tensor<T>(ubj);
  acts.ff_dropped = Tensor<T>(ubj);
  acts.ff_drop_mask = Tensor<T>(ubj);
  if (config_.use_fused_kernels) {
    ops::BiasReluDropout(lin1, params_.b1, ff_mask, acts.relu1,
                         acts.ff_dropped, acts.ff_drop_mask);
  } else {
    Tensor<T> biased(ubj);
    ops::BiasForward(lin1, params_.b1, biased);
    ops::ReluForward(biased, acts.relu1);
    ops::DropoutForward(acts.relu1, ff_mask, acts.ff_dropped,
                        acts.ff_drop_mask);
  }

  auto lin2 = Einsum<T>("iu,ubj->ibj", params_.w2, acts.ff_dropped);
  acts.resid2 = Tensor<T>(ibj);
  acts.lin2_drop_mask = Tensor<T>(ibj);
  acts.y = Tensor<T>(ibj);
  acts.ln2_mean = TensorF(bj);
  acts.ln2_rstd = TensorF(bj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutResidualLayerNorm(
        lin2, params_.b2, acts.ln1_out, out_mask, params_.ln2_w,
        params_.ln2_b, 'i', config_.ln_eps, acts.resid2, acts.lin2_drop_mask,
        acts.y, acts.ln2_mean, acts.ln2_rstd);
  } else {
    Tensor<T> biased(ibj), dropped(ibj);
    ops::BiasForward(lin2, params_.b2, biased);
    ops::DropoutForward(biased, out_mask, dropped, acts.lin2_drop_mask);
    ops::ResidualForward(dropped, acts.ln1_out, acts.resid2);
    ops::LayerNormForward(acts.resid2, params_.ln2_w, params_.ln2_b, 'i',
                          config_.ln_eps, acts.y, acts.ln2_mean,
                          acts.ln2_rstd);
  }
  return acts.y;
}

template <typename T>
void EncoderLayerT<T>::Backward(const Tensor<T>& d_y,
                                const EncoderActivationsT<T>& acts,
                                EncoderGradientsT<T>& grads) const {
  const auto& d = config_.dims;
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d.p));
  const float keep = 1.0f - config_.dropout_prob;
  const float keep_scale = keep > 0 ? 1.0f / keep : 0.0f;
  const Shape ibj("ibj", {d.i, d.b, d.j});
  const Shape ubj("ubj", {d.u, d.b, d.j});
  const Shape hbjk("hbjk", {d.h, d.b, d.j, d.k});
  auto& gp = grads.params;
  gp = EncoderParamsT<T>::Init(d, 0);  // allocate shapes; overwritten below

  // BSB: layernorm 2 dW.
  ops::LayerNormBackwardDW(d_y, acts.resid2, acts.ln2_mean, acts.ln2_rstd,
                           'i', gp.ln2_w, gp.ln2_b);

  // BLNRD: layernorm 2 dX + output dropout dX (keeps d_resid2 for EBSB).
  Tensor<T> d_resid2(ibj), d_lin2_biased(ibj);
  if (config_.use_fused_kernels) {
    ops::LayerNormDropoutBackward(d_y, params_.ln2_w, acts.resid2,
                                  acts.ln2_mean, acts.ln2_rstd,
                                  acts.lin2_drop_mask, 'i', keep_scale,
                                  d_resid2, d_lin2_biased);
  } else {
    ops::LayerNormBackwardDX(d_y, params_.ln2_w, acts.resid2, acts.ln2_mean,
                             acts.ln2_rstd, 'i', d_resid2);
    ops::DropoutBackwardDX(d_resid2, acts.lin2_drop_mask, keep_scale,
                           d_lin2_biased);
  }

  // Linear 2 dX / dW.
  auto d_ff_dropped = Einsum<T>("iu,ibj->ubj", params_.w2, d_lin2_biased);
  gp.w2 = Einsum<T>("ibj,ubj->iu", d_lin2_biased, acts.ff_dropped);

  // BDRB: bias2 dW + ff dropout dX + relu dX + bias1 dW.
  Tensor<T> d_lin1_biased(ubj);
  if (config_.use_fused_kernels) {
    ops::BiasDropoutReluBiasBackward(d_lin2_biased, d_ff_dropped,
                                     acts.ff_drop_mask, acts.relu1,
                                     keep_scale, gp.b2, d_lin1_biased, gp.b1);
  } else {
    ops::BiasBackwardDW(d_lin2_biased, gp.b2);
    Tensor<T> d_relu(ubj);
    ops::DropoutBackwardDX(d_ff_dropped, acts.ff_drop_mask, keep_scale,
                           d_relu);
    ops::ReluBackwardDX(d_relu, acts.relu1, d_lin1_biased);
    ops::BiasBackwardDW(d_lin1_biased, gp.b1);
  }

  // Linear 1 dX / dW.
  auto d_ln1_ff = Einsum<T>("ui,ubj->ibj", params_.w1, d_lin1_biased);
  gp.w1 = Einsum<T>("ubj,ibj->ui", d_lin1_biased, acts.ln1_out);

  // EBSB: residual merge + layernorm 1 dW.
  Tensor<T> d_ln1_out(ibj);
  if (config_.use_fused_kernels) {
    ops::ResidualLayerNormDwBackward(d_ln1_ff, d_resid2, acts.resid1,
                                     acts.ln1_mean, acts.ln1_rstd, 'i',
                                     d_ln1_out, gp.ln1_w, gp.ln1_b);
  } else {
    ops::ResidualForward(d_ln1_ff, d_resid2, d_ln1_out);
    ops::LayerNormBackwardDW(d_ln1_out, acts.resid1, acts.ln1_mean,
                             acts.ln1_rstd, 'i', gp.ln1_w, gp.ln1_b);
  }

  // BLNRD: layernorm 1 dX + attention dropout dX.
  Tensor<T> d_resid1(ibj), d_attn_biased(ibj);
  if (config_.use_fused_kernels) {
    ops::LayerNormDropoutBackward(d_ln1_out, params_.ln1_w, acts.resid1,
                                  acts.ln1_mean, acts.ln1_rstd,
                                  acts.attn_drop_mask, 'i', keep_scale,
                                  d_resid1, d_attn_biased);
  } else {
    ops::LayerNormBackwardDX(d_ln1_out, params_.ln1_w, acts.resid1,
                             acts.ln1_mean, acts.ln1_rstd, 'i', d_resid1);
    ops::DropoutBackwardDX(d_resid1, acts.attn_drop_mask, keep_scale,
                           d_attn_biased);
  }

  // BAOB: output bias dW.
  ops::BiasBackwardDW(d_attn_biased, gp.b_out);

  // Attention backward contractions.
  auto d_gamma = Einsum<T>("whi,ibj->whbj", params_.w_out, d_attn_biased);
  gp.w_out = Einsum<T>("ibj,whbj->whi", d_attn_biased, acts.gamma_t);
  auto d_alpha = Einsum<T>("whbk,whbj->hbjk", acts.vv_b, d_gamma);
  auto d_vv = Einsum<T>("whbj,hbjk->whbk", d_gamma, acts.alpha);

  // BS: dropout + softmax + scaling backward.
  Tensor<T> d_beta(hbjk);
  ops::ScaledSoftmaxBackwardDX(d_alpha, acts.attn_mask, acts.softmax_saved,
                               'k', attn_scale, keep_scale, d_beta);

  // QKT dX1 / dX2.
  auto d_kk = Einsum<T>("phbj,hbjk->phbk", acts.qq_b, d_beta);
  auto d_qq = Einsum<T>("hbjk,phbk->phbj", d_beta, acts.kk_b);

  // Q,K,V dX / dW on the stacked gradient (algebraic fusion).
  auto d_kk_j = d_kk.RenamedDim('k', 'j');
  auto d_vv_j = d_vv.RenamedDim('k', 'j').RenamedDim('w', 'p');
  auto d_proj = ConcatDim<T>({&d_qq, &d_kk_j, &d_vv_j}, 'p');
  grads.d_x = Tensor<T>(ibj);
  auto d_x_qkv = Einsum<T>("phi,phbj->ibj", params_.w_qkv, d_proj);
  gp.w_qkv = Einsum<T>("phbj,ibj->phi", d_proj, acts.x);

  // BAIB: stacked input-bias gradient.
  if (config_.use_fused_kernels) {
    ops::AttnInputBiasBackward<T>({&d_qq, &d_kk_j, &d_vv_j}, 'p', gp.b_qkv);
  } else {
    ops::BiasBackwardDW(d_proj, gp.b_qkv);
  }

  // BEI: encoder-input residual.
  ops::ResidualForward(d_x_qkv, d_resid1, grads.d_x);
}

template struct EncoderParamsT<Half>;
template struct EncoderParamsT<float>;
template class EncoderLayerT<Half>;
template class EncoderLayerT<float>;

}  // namespace xflow::transformer
