// A stack of encoder (or causal decoder) layers with a single
// forward/backward interface -- "our implementation can also be extended
// to support a full training pipeline by stacking our optimized layers"
// (Sec. VI-C) -- plus the stack-level memory planning that makes a
// steady-state training step allocation-free: one liveness-planned arena
// per layer (layers share one plan, but each needs its own slab because
// its saved activations must survive until its backward runs).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "transformer/arena.hpp"
#include "transformer/encoder.hpp"

namespace xflow::transformer {

/// Planned arenas for every layer of one stack instance.
template <typename T>
class EncoderStackWorkspaceT {
 public:
  EncoderStackWorkspaceT(const EncoderConfig& config, int num_layers);

  [[nodiscard]] int num_layers() const {
    return static_cast<int>(arenas_.size());
  }
  [[nodiscard]] LayerArenaT<T>& layer(int index) {
    return arenas_[static_cast<std::size_t>(index)];
  }
  /// Total slab bytes across layers (what the plan reserves).
  [[nodiscard]] std::size_t planned_bytes() const;
  /// What per-tensor owning allocation would cost across layers.
  [[nodiscard]] std::size_t naive_bytes() const;

 private:
  std::vector<LayerArenaT<T>> arenas_;
};

template <typename T>
class EncoderStackT {
 public:
  /// `config.seed` seeds layer 0's dropout; deeper layers offset it.
  EncoderStackT(EncoderConfig config, int num_layers, std::uint64_t seed);
  EncoderStackT(EncoderStackT&&) noexcept;
  EncoderStackT& operator=(EncoderStackT&&) noexcept;
  ~EncoderStackT();

  [[nodiscard]] int num_layers() const {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] EncoderLayerT<T>& layer(int index) {
    return layers_[static_cast<std::size_t>(index)];
  }

  /// Sizes `acts`/`grads` for this stack and binds each layer's entry to
  /// the matching arena of `workspace`. After one warmup step, every
  /// subsequent Forward/Backward performs zero tensor allocations (the
  /// planner's steady-state contract, enforced by test).
  void BindWorkspace(EncoderStackWorkspaceT<T>& workspace,
                     std::vector<EncoderActivationsT<T>>& acts,
                     std::vector<EncoderGradientsT<T>>& grads) const;

  /// Runs every layer; `acts` gets one entry per layer (entries -- and
  /// their arena bindings -- are reused when already sized). Returns the
  /// final output (acts.back().y).
  const Tensor<T>& Forward(const Tensor<T>& x,
                           std::vector<EncoderActivationsT<T>>& acts) const;

  /// Backpropagates through the whole stack; fills one gradient set per
  /// layer and returns a reference to layer 0's d_x (grads.front().d_x --
  /// with a bound workspace that tensor is an arena view, overwritten by
  /// the next step; deep-copy it to keep it longer).
  const Tensor<T>& Backward(const Tensor<T>& d_y,
                            const std::vector<EncoderActivationsT<T>>& acts,
                            std::vector<EncoderGradientsT<T>>& grads) const;

  /// All parameters, names prefixed "layer<n>." -- optimizer/checkpoint
  /// friendly.
  std::vector<std::pair<std::string, Tensor<T>*>> NamedParams();

  // --- Whole-stack executor path (one graph, one plan, one slab) ---------
  //
  // Built on a StackArenaT (MakeStackArena): embedding -> N layers -> loss
  // live in ONE planned graph, so cross-layer transients share bytes and
  // PR 7's concurrent dispatch overlaps steps *across* layers. Bitwise
  // identical to the per-layer path above at every thread count, fused and
  // unfused, checkpointed or not.

  /// The cached whole-stack executor bound to `arena` (rebuilt when the
  /// arena or its slab changes). Every layer's weights are pre-bound as
  /// "L<l>.<name>"; the executor is public so callers can bind embedding
  /// token ids, the loss target, and embedding-table gradient accumulators
  /// before running graphs with vocab/loss heads.
  graph::GraphExecutorT<T>& Executor(StackArenaT<T>& arena) const;

  /// Whole-stack forward over `arena`'s plan. Requires a graph whose input
  /// is "x" (no embedding head). Returns the top layer's output as an
  /// arena view (overwritten by the next step; deep-copy to keep it).
  const Tensor<T>& Forward(const Tensor<T>& x, StackArenaT<T>& arena) const;

  /// Whole-stack backward from d_y (requires a graph without a loss head,
  /// so "d_y" is the graph input); must follow a Forward on the same
  /// arena. Fills one gradient set per layer (weight gradients stay
  /// owning; each d_x becomes an arena view) and returns layer 0's d_x.
  const Tensor<T>& Backward(const Tensor<T>& d_y, StackArenaT<T>& arena,
                            std::vector<EncoderGradientsT<T>>& grads) const;

 private:
  std::vector<EncoderLayerT<T>> layers_;
  // Whole-stack executor cache; same key discipline as EncoderLayerT's
  // per-layer cache (arena address and slab address).
  mutable std::unique_ptr<graph::GraphExecutorT<T>> stack_executor_;
  mutable const StackArenaT<T>* stack_arena_ = nullptr;
  mutable const void* stack_slab_ = nullptr;
  // Storage behind the references Forward/Backward return (arena views).
  mutable Tensor<T> y_view_, dx_view_;
};

using EncoderStack = EncoderStackT<Half>;
using EncoderStackWorkspace = EncoderStackWorkspaceT<Half>;
extern template class EncoderStackT<Half>;
extern template class EncoderStackT<float>;
extern template class EncoderStackWorkspaceT<Half>;
extern template class EncoderStackWorkspaceT<float>;

}  // namespace xflow::transformer
