// A stack of encoder (or causal decoder) layers with a single
// forward/backward interface -- "our implementation can also be extended
// to support a full training pipeline by stacking our optimized layers"
// (Sec. VI-C).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "transformer/encoder.hpp"

namespace xflow::transformer {

template <typename T>
class EncoderStackT {
 public:
  /// `config.seed` seeds layer 0's dropout; deeper layers offset it.
  EncoderStackT(EncoderConfig config, int num_layers, std::uint64_t seed);

  [[nodiscard]] int num_layers() const {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] EncoderLayerT<T>& layer(int index) {
    return layers_[static_cast<std::size_t>(index)];
  }

  /// Runs every layer; `acts` gets one entry per layer. Returns the final
  /// output (acts.back().y).
  const Tensor<T>& Forward(const Tensor<T>& x,
                           std::vector<EncoderActivationsT<T>>& acts) const;

  /// Backpropagates through the whole stack; returns d_x of layer 0 and
  /// fills one gradient set per layer.
  Tensor<T> Backward(const Tensor<T>& d_y,
                     const std::vector<EncoderActivationsT<T>>& acts,
                     std::vector<EncoderGradientsT<T>>& grads) const;

  /// All parameters, names prefixed "layer<n>." -- optimizer/checkpoint
  /// friendly.
  std::vector<std::pair<std::string, Tensor<T>*>> NamedParams();

 private:
  std::vector<EncoderLayerT<T>> layers_;
};

using EncoderStack = EncoderStackT<Half>;
extern template class EncoderStackT<Half>;
extern template class EncoderStackT<float>;

}  // namespace xflow::transformer
