#include "transformer/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::transformer {

namespace {

constexpr char kMagic[4] = {'X', 'F', 'L', 'W'};
constexpr std::uint32_t kVersion = 1;

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  require(bool(is), "checkpoint truncated");
  return v;
}
std::uint64_t ReadU64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  require(bool(is), "checkpoint truncated");
  return v;
}
void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string ReadString(std::istream& is) {
  const auto n = ReadU32(is);
  require(n < 4096, "implausible string length in checkpoint");
  std::string s(n, '\0');
  is.read(s.data(), n);
  require(bool(is), "checkpoint truncated");
  return s;
}

void WriteHeader(std::ostream& os, std::uint32_t count) {
  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, kVersion);
  WriteU32(os, count);
}

std::uint32_t ReadHeader(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  require(bool(is) && std::equal(magic, magic + 4, kMagic),
          "not an xflow checkpoint (bad magic)");
  require(ReadU32(is) == kVersion, "unsupported checkpoint version");
  return ReadU32(is);
}

void WriteTensor(std::ostream& os, const std::string& name,
                 const TensorH& t) {
  WriteString(os, name);
  WriteU32(os, static_cast<std::uint32_t>(t.shape().rank()));
  for (const auto& d : t.shape().dims()) {
    os.put(d.name);
    WriteU64(os, static_cast<std::uint64_t>(d.extent));
  }
  for (std::int64_t e = 0; e < t.size(); ++e) {
    const auto bits = t.data()[e].bits();
    os.write(reinterpret_cast<const char*>(&bits), sizeof(bits));
  }
}

std::pair<std::string, TensorH> ReadTensor(std::istream& is) {
  const std::string name = ReadString(is);
  const auto rank = ReadU32(is);
  require(rank <= 8, "implausible tensor rank in checkpoint");
  std::vector<DimExt> dims;
  for (std::uint32_t d = 0; d < rank; ++d) {
    const char c = static_cast<char>(is.get());
    const auto extent = static_cast<std::int64_t>(ReadU64(is));
    dims.push_back({c, extent});
  }
  TensorH t{Shape(std::move(dims))};
  for (std::int64_t e = 0; e < t.size(); ++e) {
    std::uint16_t bits = 0;
    is.read(reinterpret_cast<char*>(&bits), sizeof(bits));
    t.data()[e] = Half::FromBits(bits);
  }
  require(bool(is), "checkpoint truncated in tensor payload");
  return {name, std::move(t)};
}

}  // namespace

void SaveCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, const TensorH*>>& tensors) {
  std::ofstream os(path, std::ios::binary);
  require(bool(os), StrFormat("cannot open '%s' for writing", path.c_str()));
  WriteHeader(os, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) WriteTensor(os, name, *t);
  require(bool(os), "checkpoint write failed");
}

void LoadCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, TensorH*>>& tensors) {
  std::ifstream is(path, std::ios::binary);
  require(bool(is), StrFormat("cannot open '%s'", path.c_str()));
  const auto count = ReadHeader(is);

  std::map<std::string, TensorH> loaded;
  for (std::uint32_t c = 0; c < count; ++c) {
    auto [name, t] = ReadTensor(is);
    loaded.emplace(std::move(name), std::move(t));
  }
  for (const auto& [name, dst] : tensors) {
    const auto it = loaded.find(name);
    require(it != loaded.end(),
            StrFormat("checkpoint lacks tensor '%s'", name.c_str()));
    require(it->second.shape() == dst->shape(),
            StrFormat("shape mismatch for '%s'", name.c_str()));
    *dst = std::move(it->second);
  }
}

std::vector<std::pair<std::string, Shape>> InspectCheckpoint(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(bool(is), StrFormat("cannot open '%s'", path.c_str()));
  const auto count = ReadHeader(is);
  std::vector<std::pair<std::string, Shape>> out;
  for (std::uint32_t c = 0; c < count; ++c) {
    auto [name, t] = ReadTensor(is);
    out.emplace_back(std::move(name), t.shape());
  }
  return out;
}

}  // namespace xflow::transformer
