// BERT encoder layer: numerically complete forward and backward passes on
// the CPU substrate, in both execution styles the paper compares --
// per-operator kernels (the framework baseline) and our fused kernels.
// Both produce bit-identical results; fusion changes data movement only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "tensor/tensor.hpp"

namespace xflow::graph {
template <typename T>
class GraphExecutorT;  // graph/executor.hpp
bool TaskSchedulerDefault();  // graph/executor.hpp
}  // namespace xflow::graph

namespace xflow::transformer {

template <typename T>
class LayerArenaT;  // transformer/arena.hpp

/// Default for EncoderConfig::use_graph_executor: the XFLOW_GRAPH_EXEC
/// environment variable (1/true/on/yes, case-insensitive) when set,
/// false otherwise. Read once per process.
bool GraphExecutorDefault();

/// One layer's four dropout-site Philox seeds, in dropout-op graph order
/// (SM attention dropout, attention-output dropout, feed-forward, output).
/// This is the exact ExecutorOptions::dropout_seeds block a single layer
/// uses; a whole-stack executor concatenates one block per layer.
std::vector<std::uint64_t> EncoderDropoutSeeds(std::uint64_t layer_seed);

struct EncoderConfig {
  graph::ModelDims dims = graph::ModelDims::Tiny();
  float dropout_prob = 0.1f;
  float ln_eps = 1e-5f;
  std::uint64_t seed = 1;        // drives dropout masks
  bool use_fused_kernels = true;
  /// Causal attention masking: turns the layer into a GPT-2/3 style
  /// decoder block (the paper notes decoders differ only in such minor
  /// aspects, Sec. VIII).
  bool causal = false;
  /// Execute through the graph-level executor (graph/executor.hpp)
  /// instead of the hand-wired kernel sequence whenever an arena is
  /// bound: the planned dataflow graph itself is walked, with every
  /// container resolved to its planned slab offset. Bitwise identical to
  /// the hand-wired path. Without a bound arena the layer falls back to
  /// hand-wired execution (the executor requires a plan to bind to).
  bool use_graph_executor = GraphExecutorDefault();
  /// Let the graph executor run dependency-free schedule steps
  /// concurrently on the work-stealing pool (graph/executor.hpp).
  /// Bitwise identical to serial execution at every thread count; only
  /// meaningful together with `use_graph_executor`.
  bool use_task_scheduler = graph::TaskSchedulerDefault();
};

/// Layer parameters. Dimension names follow the paper; the Q/K/V projection
/// is stored algebraically fused ([W^Q W^K W^V] stacked along p, Sec. IV-D).
template <typename T>
struct EncoderParamsT {
  Tensor<T> w_qkv;   // [3p, h, i]
  Tensor<T> b_qkv;   // [3p, h]
  Tensor<T> w_out;   // [w=p, h, i]
  Tensor<T> b_out;   // [i]
  Tensor<T> ln1_w, ln1_b;  // [i]
  Tensor<T> w1;      // [u, i]
  Tensor<T> b1;      // [u]
  Tensor<T> w2;      // [i, u]
  Tensor<T> b2;      // [i]
  Tensor<T> ln2_w, ln2_b;  // [i]

  /// Scaled uniform init (layernorm scale = 1, biases = 0).
  static EncoderParamsT Init(const graph::ModelDims& d, std::uint64_t seed);
  /// Name -> tensor map, for optimizers and checkpointing.
  std::vector<std::pair<std::string, Tensor<T>*>> Named();
  /// Gives every tensor its parameter shape without initializing values,
  /// reusing existing storage when already shaped -- the allocation path
  /// for gradient accumulators (Backward overwrites every entry).
  void EnsureShapes(const graph::ModelDims& d);
};

/// Every tensor the forward pass produces that backward needs (the "saved"
/// edges of the dataflow graph).
template <typename T>
struct EncoderActivationsT {
  Tensor<T> x;
  Tensor<T> qq_b, kk_b, vv_b;
  Tensor<T> alpha, attn_mask, softmax_saved;
  Tensor<T> gamma_t;
  Tensor<T> attn_drop_mask;
  Tensor<T> resid1;
  TensorF ln1_mean, ln1_rstd;
  Tensor<T> ln1_out;
  Tensor<T> relu1, ff_dropped, ff_drop_mask;
  Tensor<T> lin2_drop_mask;
  Tensor<T> resid2;
  TensorF ln2_mean, ln2_rstd;
  Tensor<T> y;

  /// When set, Forward acquires every activation *and* temporary from
  /// this liveness-planned arena instead of heap-allocating (bind the
  /// matching gradients struct to the same arena; one arena serves
  /// exactly one layer instance). Values are bitwise identical to the
  /// owning mode -- planning changes where bytes live, never what they
  /// are.
  LayerArenaT<T>* arena = nullptr;
};

template <typename T>
struct EncoderGradientsT {
  EncoderParamsT<T> params;  // same shapes as the parameters
  Tensor<T> d_x;

  /// Same contract as EncoderActivationsT::arena, for Backward. Weight
  /// gradients stay owning (they outlive the step); only d_* temporaries
  /// and d_x come from the plan.
  LayerArenaT<T>* arena = nullptr;
};

/// The encoder layer. Forward/Backward follow the Table III operator
/// sequence exactly; with `use_fused_kernels` the paper's 12 fused kernels
/// replace the per-operator pipeline.
template <typename T>
class EncoderLayerT {
 public:
  EncoderLayerT(EncoderConfig config, EncoderParamsT<T> params);
  EncoderLayerT(EncoderLayerT&&) noexcept;
  EncoderLayerT& operator=(EncoderLayerT&&) noexcept;
  ~EncoderLayerT();

  /// Runs forward propagation; fills `acts` and returns acts.y.
  /// With `use_graph_executor` and a bound arena, the input `x` is bound
  /// into the executor by reference and must stay valid (and unmoved)
  /// until the matching Backward has run.
  const Tensor<T>& Forward(const Tensor<T>& x,
                           EncoderActivationsT<T>& acts) const;

  /// Runs backpropagation from d_y; fills all parameter gradients and d_x.
  void Backward(const Tensor<T>& d_y, const EncoderActivationsT<T>& acts,
                EncoderGradientsT<T>& grads) const;

  [[nodiscard]] const EncoderConfig& config() const { return config_; }
  [[nodiscard]] EncoderParamsT<T>& params() { return params_; }
  [[nodiscard]] const EncoderParamsT<T>& params() const { return params_; }

 private:
  /// The cached graph executor bound to `arena` (rebuilt when the bound
  /// arena changes; reused allocation-free across steady-state steps).
  graph::GraphExecutorT<T>& Executor(LayerArenaT<T>& arena) const;
  void ExecutorForward(const Tensor<T>& x, EncoderActivationsT<T>& acts) const;
  void ExecutorBackward(const Tensor<T>& d_y,
                        const EncoderActivationsT<T>& acts,
                        EncoderGradientsT<T>& grads) const;

  EncoderConfig config_;
  EncoderParamsT<T> params_;
  // Lazily built on the first executor-backed call; mutable because the
  // executor is a cache of the (const) layer + arena pair. The cache key
  // is the arena address *and* its slab address: a new arena reusing a
  // freed arena's address must not revive an executor whose views point
  // into the old slab. (Like the rest of the layer API, concurrent calls
  // on one layer instance are not supported.)
  mutable std::unique_ptr<graph::GraphExecutorT<T>> executor_;
  mutable const LayerArenaT<T>* executor_arena_ = nullptr;
  mutable const void* executor_slab_ = nullptr;
};

using EncoderParams = EncoderParamsT<Half>;
using EncoderActivations = EncoderActivationsT<Half>;
using EncoderGradients = EncoderGradientsT<Half>;
using EncoderLayer = EncoderLayerT<Half>;

extern template class EncoderLayerT<Half>;
extern template class EncoderLayerT<float>;
extern template struct EncoderParamsT<Half>;
extern template struct EncoderParamsT<float>;

}  // namespace xflow::transformer
