#include "transformer/stack.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::transformer {

template <typename T>
EncoderStackT<T>::EncoderStackT(EncoderConfig config, int num_layers,
                                std::uint64_t seed) {
  require(num_layers > 0, "stack needs at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    EncoderConfig layer_cfg = config;
    layer_cfg.seed = config.seed + 1000 * static_cast<std::uint64_t>(l);
    layers_.emplace_back(
        layer_cfg,
        EncoderParamsT<T>::Init(config.dims,
                                seed + static_cast<std::uint64_t>(l)));
  }
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Forward(
    const Tensor<T>& x, std::vector<EncoderActivationsT<T>>& acts) const {
  acts.assign(layers_.size(), {});
  const Tensor<T>* cur = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(*cur, acts[l]);
    cur = &acts[l].y;
  }
  return acts.back().y;
}

template <typename T>
Tensor<T> EncoderStackT<T>::Backward(
    const Tensor<T>& d_y, const std::vector<EncoderActivationsT<T>>& acts,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(acts.size() == layers_.size(),
          "activations must come from this stack's Forward");
  grads.assign(layers_.size(), {});
  Tensor<T> grad = d_y;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    layers_[l].Backward(grad, acts[l], grads[l]);
    grad = grads[l].d_x;
  }
  return grad;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>>
EncoderStackT<T>::NamedParams() {
  std::vector<std::pair<std::string, Tensor<T>*>> out;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (auto& [name, t] : layers_[l].params().Named()) {
      out.emplace_back(
          StrFormat("layer%zu.%s", l, name.c_str()), t);
    }
  }
  return out;
}

template class EncoderStackT<Half>;
template class EncoderStackT<float>;

}  // namespace xflow::transformer
