#include "transformer/stack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "graph/builder.hpp"
#include "graph/executor.hpp"

namespace xflow::transformer {

template <typename T>
EncoderStackWorkspaceT<T>::EncoderStackWorkspaceT(const EncoderConfig& config,
                                                  int num_layers) {
  require(num_layers > 0, "workspace needs at least one layer");
  // One plan serves every layer (same dims, same graph); each layer gets
  // its own slab.
  const auto graph = graph::BuildEncoder(
      config.dims, graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  const auto plan = graph::PlanMemory(graph, EncoderPlanOptions<T>());
  arenas_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    arenas_.emplace_back(plan);
  }
}

template <typename T>
std::size_t EncoderStackWorkspaceT<T>::planned_bytes() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.plan().peak_bytes();
  return total;
}

template <typename T>
std::size_t EncoderStackWorkspaceT<T>::naive_bytes() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.plan().naive_bytes();
  return total;
}

template <typename T>
EncoderStackT<T>::EncoderStackT(EncoderConfig config, int num_layers,
                                std::uint64_t seed) {
  require(num_layers > 0, "stack needs at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    EncoderConfig layer_cfg = config;
    layer_cfg.seed = config.seed + 1000 * static_cast<std::uint64_t>(l);
    layers_.emplace_back(
        layer_cfg,
        EncoderParamsT<T>::Init(config.dims,
                                seed + static_cast<std::uint64_t>(l)));
  }
}

template <typename T>
void EncoderStackT<T>::BindWorkspace(
    EncoderStackWorkspaceT<T>& workspace,
    std::vector<EncoderActivationsT<T>>& acts,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(workspace.num_layers() == num_layers(),
          "workspace must have one arena per layer");
  if (acts.size() != layers_.size()) acts.assign(layers_.size(), {});
  if (grads.size() != layers_.size()) grads.assign(layers_.size(), {});
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    acts[l].arena = &workspace.layer(static_cast<int>(l));
    grads[l].arena = &workspace.layer(static_cast<int>(l));
  }
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Forward(
    const Tensor<T>& x, std::vector<EncoderActivationsT<T>>& acts) const {
  // Reuse existing entries (and their arena bindings / owning buffers)
  // when the caller iterates steps; only resize on first use.
  if (acts.size() != layers_.size()) acts.assign(layers_.size(), {});
  const Tensor<T>* cur = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(*cur, acts[l]);
    cur = &acts[l].y;
  }
  return acts.back().y;
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Backward(
    const Tensor<T>& d_y, const std::vector<EncoderActivationsT<T>>& acts,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(acts.size() == layers_.size(),
          "activations must come from this stack's Forward");
  if (grads.size() != layers_.size()) grads.assign(layers_.size(), {});
  const Tensor<T>* grad = &d_y;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    layers_[l].Backward(*grad, acts[l], grads[l]);
    grad = &grads[l].d_x;
  }
  return *grad;
}

template <typename T>
EncoderStackT<T>::EncoderStackT(EncoderStackT&&) noexcept = default;
template <typename T>
EncoderStackT<T>& EncoderStackT<T>::operator=(EncoderStackT&&) noexcept =
    default;
template <typename T>
EncoderStackT<T>::~EncoderStackT() = default;

template <typename T>
graph::GraphExecutorT<T>& EncoderStackT<T>::Executor(
    StackArenaT<T>& arena) const {
  if (stack_executor_ == nullptr || stack_arena_ != &arena ||
      stack_slab_ != arena.workspace().data()) {
    const EncoderConfig& cfg = layers_.front().config();
    graph::ExecutorOptions opts;
    opts.use_fused_kernels = cfg.use_fused_kernels;
    opts.use_task_scheduler = cfg.use_task_scheduler;
    opts.causal = cfg.causal;
    opts.dropout_prob = cfg.dropout_prob;
    opts.ln_eps = cfg.ln_eps;
    opts.attn_scale = 1.0f / std::sqrt(static_cast<float>(cfg.dims.p));
    // One four-seed block per layer, in layer order -- exactly the streams
    // each layer's own executor would use, so whole-stack execution is
    // bitwise identical to the per-layer path. Recompute clones reuse
    // their original's seed (executor rule), so checkpointing never
    // shifts this schedule.
    for (const EncoderLayerT<T>& layer : layers_) {
      for (const std::uint64_t s : EncoderDropoutSeeds(layer.config().seed)) {
        opts.dropout_seeds.push_back(s);
      }
    }
    opts.stacked = StackPlanOptions<T>(arena.graph()).groups;
    stack_executor_ = std::make_unique<graph::GraphExecutorT<T>>(
        arena.graph(), &arena.plan(), &arena.workspace(), std::move(opts));
    stack_arena_ = &arena;
    stack_slab_ = arena.workspace().data();
    // Weights are stable across steps: bind them once per executor, under
    // their stacked names.
    auto& self = const_cast<EncoderStackT<T>&>(*this);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      for (auto& [name, tensor] : self.layers_[l].params().Named()) {
        stack_executor_->BindInput(StrFormat("L%zu.%s", l, name.c_str()),
                                   *tensor);
      }
    }
  }
  return *stack_executor_;
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Forward(const Tensor<T>& x,
                                           StackArenaT<T>& arena) const {
  require(arena.graph().HasTensor("x") && arena.graph().ProducerOf("x") < 0,
          "whole-stack Forward(x, arena) needs 'x' as the graph input -- "
          "graphs with an embedding head take token ids via "
          "Executor(arena).BindTokens");
  auto& ex = Executor(arena);
  ex.BindInput("x", x);
  ex.Forward();
  const auto& d = layers_.front().config().dims;
  y_view_ = arena.arena().template ViewAs<T>(
      StrFormat("L%zu.y", layers_.size() - 1), Shape("ibj", {d.i, d.b, d.j}));
  return y_view_;
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Backward(
    const Tensor<T>& d_y, StackArenaT<T>& arena,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(arena.graph().HasTensor("d_y") &&
              arena.graph().ProducerOf("d_y") < 0,
          "whole-stack Backward(d_y, ...) needs 'd_y' as a graph input -- "
          "graphs with a loss head produce d_y themselves; just call "
          "Executor(arena).Backward()");
  require(stack_executor_ != nullptr && stack_arena_ == &arena,
          "whole-stack Backward needs the arena Forward ran on");
  auto& ex = Executor(arena);
  ex.BindInput("d_y", d_y);
  const auto& d = layers_.front().config().dims;
  if (grads.size() != layers_.size()) grads.assign(layers_.size(), {});
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& gp = grads[l].params;
    gp.EnsureShapes(d);  // accumulators; the executor overwrites every entry
    for (auto& [name, tensor] : gp.Named()) {
      ex.BindOutput(StrFormat("L%zu.d_%s", l, name.c_str()), *tensor);
    }
  }
  ex.Backward();
  const Shape ibj("ibj", {d.i, d.b, d.j});
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grads[l].d_x =
        arena.arena().template ViewAs<T>(StrFormat("L%zu.d_x", l), ibj);
  }
  dx_view_ = arena.arena().template ViewAs<T>("L0.d_x", ibj);
  return dx_view_;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>>
EncoderStackT<T>::NamedParams() {
  std::vector<std::pair<std::string, Tensor<T>*>> out;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (auto& [name, t] : layers_[l].params().Named()) {
      out.emplace_back(
          StrFormat("layer%zu.%s", l, name.c_str()), t);
    }
  }
  return out;
}

template class EncoderStackT<Half>;
template class EncoderStackT<float>;
template class EncoderStackWorkspaceT<Half>;
template class EncoderStackWorkspaceT<float>;

}  // namespace xflow::transformer
