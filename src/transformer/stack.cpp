#include "transformer/stack.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "graph/builder.hpp"

namespace xflow::transformer {

template <typename T>
EncoderStackWorkspaceT<T>::EncoderStackWorkspaceT(const EncoderConfig& config,
                                                  int num_layers) {
  require(num_layers > 0, "workspace needs at least one layer");
  // One plan serves every layer (same dims, same graph); each layer gets
  // its own slab.
  const auto graph = graph::BuildEncoder(
      config.dims, graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  const auto plan = graph::PlanMemory(graph, EncoderPlanOptions<T>());
  arenas_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    arenas_.emplace_back(plan);
  }
}

template <typename T>
std::size_t EncoderStackWorkspaceT<T>::planned_bytes() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.plan().peak_bytes();
  return total;
}

template <typename T>
std::size_t EncoderStackWorkspaceT<T>::naive_bytes() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.plan().naive_bytes();
  return total;
}

template <typename T>
EncoderStackT<T>::EncoderStackT(EncoderConfig config, int num_layers,
                                std::uint64_t seed) {
  require(num_layers > 0, "stack needs at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    EncoderConfig layer_cfg = config;
    layer_cfg.seed = config.seed + 1000 * static_cast<std::uint64_t>(l);
    layers_.emplace_back(
        layer_cfg,
        EncoderParamsT<T>::Init(config.dims,
                                seed + static_cast<std::uint64_t>(l)));
  }
}

template <typename T>
void EncoderStackT<T>::BindWorkspace(
    EncoderStackWorkspaceT<T>& workspace,
    std::vector<EncoderActivationsT<T>>& acts,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(workspace.num_layers() == num_layers(),
          "workspace must have one arena per layer");
  if (acts.size() != layers_.size()) acts.assign(layers_.size(), {});
  if (grads.size() != layers_.size()) grads.assign(layers_.size(), {});
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    acts[l].arena = &workspace.layer(static_cast<int>(l));
    grads[l].arena = &workspace.layer(static_cast<int>(l));
  }
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Forward(
    const Tensor<T>& x, std::vector<EncoderActivationsT<T>>& acts) const {
  // Reuse existing entries (and their arena bindings / owning buffers)
  // when the caller iterates steps; only resize on first use.
  if (acts.size() != layers_.size()) acts.assign(layers_.size(), {});
  const Tensor<T>* cur = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(*cur, acts[l]);
    cur = &acts[l].y;
  }
  return acts.back().y;
}

template <typename T>
const Tensor<T>& EncoderStackT<T>::Backward(
    const Tensor<T>& d_y, const std::vector<EncoderActivationsT<T>>& acts,
    std::vector<EncoderGradientsT<T>>& grads) const {
  require(acts.size() == layers_.size(),
          "activations must come from this stack's Forward");
  if (grads.size() != layers_.size()) grads.assign(layers_.size(), {});
  const Tensor<T>* grad = &d_y;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    layers_[l].Backward(*grad, acts[l], grads[l]);
    grad = &grads[l].d_x;
  }
  return *grad;
}

template <typename T>
std::vector<std::pair<std::string, Tensor<T>*>>
EncoderStackT<T>::NamedParams() {
  std::vector<std::pair<std::string, Tensor<T>*>> out;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (auto& [name, t] : layers_[l].params().Named()) {
      out.emplace_back(
          StrFormat("layer%zu.%s", l, name.c_str()), t);
    }
  }
  return out;
}

template class EncoderStackT<Half>;
template class EncoderStackT<float>;
template class EncoderStackWorkspaceT<Half>;
template class EncoderStackWorkspaceT<float>;

}  // namespace xflow::transformer
