// Input embeddings and language-model head -- the layers around the
// encoder stack that the paper mentions but does not profile (Sec. II-B2:
// "embedding layers for input sequences and various output layers").
// They complete the training pipeline for the end-to-end examples.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "tensor/tensor.hpp"

namespace xflow::transformer {

using TokenIds = std::vector<std::int32_t>;  // row-major [b][j]

/// Token + learned positional embeddings: x[i,b,j] =
/// token_table[tokens[b,j], i] + pos_table[j, i].
template <typename T>
class EmbeddingT {
 public:
  EmbeddingT(std::int64_t vocab, const graph::ModelDims& dims,
             std::uint64_t seed);

  /// tokens.size() must equal b*j; ids in [0, vocab).
  Tensor<T> Forward(const TokenIds& tokens) const;

  /// Scatter-add gradients for both tables (fp32 accumulation).
  void Backward(const Tensor<T>& d_x, const TokenIds& tokens,
                Tensor<T>& d_token_table, Tensor<T>& d_pos_table) const;

  [[nodiscard]] Tensor<T>& token_table() { return token_table_; }
  [[nodiscard]] Tensor<T>& pos_table() { return pos_table_; }
  [[nodiscard]] std::int64_t vocab() const {
    return token_table_.extent('v');
  }

 private:
  graph::ModelDims dims_;
  Tensor<T> token_table_;  // [v, i]
  Tensor<T> pos_table_;    // [j, i]
};

/// Tied language-model head: logits[v,b,j] = token_table[v,:] . x[:,b,j].
template <typename T>
Tensor<T> LmLogits(const Tensor<T>& token_table, const Tensor<T>& x);

/// Softmax cross-entropy over the vocabulary dim 'v'; fills d_logits
/// (softmax - onehot) / (b*j) and returns mean loss.
double SoftmaxCrossEntropy(const TensorF& logits, const TokenIds& targets,
                           TensorF& d_logits);

using Embedding = EmbeddingT<Half>;
extern template class EmbeddingT<Half>;
extern template class EmbeddingT<float>;
extern template Tensor<Half> LmLogits<Half>(const Tensor<Half>&,
                                            const Tensor<Half>&);
extern template Tensor<float> LmLogits<float>(const Tensor<float>&,
                                              const Tensor<float>&);

}  // namespace xflow::transformer
