// Standalone multi-head attention with distinct query/key/value inputs --
// the paper's Fig. 1 primitive ("MHA is also used outside of transformers,
// so understanding its performance in isolation can inform other models").
//
// Supports the three MHA classes of Sec. II-B1:
//   general attention       (q, k, v distinct),
//   encoder/decoder attention (k == v),
//   self-attention          (q == k == v; what EncoderLayer uses inline),
// plus the optional causal masking step.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "tensor/tensor.hpp"

namespace xflow::transformer {

template <typename T>
class LayerArenaT;  // transformer/arena.hpp

struct MhaConfig {
  graph::ModelDims dims = graph::ModelDims::Tiny();
  float dropout_prob = 0.0f;
  std::uint64_t seed = 1;
  bool causal = false;
};

/// Separate projection weights (the general-attention layout of Fig. 1;
/// algebraic stacking only applies to self-attention where the three
/// inputs coincide, Sec. IV-D).
template <typename T>
struct MhaParamsT {
  Tensor<T> wq, wk;  // [p, h, i]
  Tensor<T> wv, wo;  // [w, h, i]
  Tensor<T> bq, bk;  // [p, h]
  Tensor<T> bv;      // [w, h]
  Tensor<T> bo;      // [i]

  static MhaParamsT Init(const graph::ModelDims& d, std::uint64_t seed);
  std::vector<std::pair<std::string, Tensor<T>*>> Named();
  /// Gives every tensor its parameter shape without initializing values
  /// (gradient accumulators; Backward overwrites every entry).
  void EnsureShapes(const graph::ModelDims& d);
};

template <typename T>
struct MhaActivationsT {
  Tensor<T> q, k, v;  // inputs (saved for dW)
  Tensor<T> qq_b, kk_b, vv_b;
  Tensor<T> alpha, attn_mask, softmax_saved;
  Tensor<T> gamma_t;
  Tensor<T> out;  // final output [i, b, j]

  /// When set, Forward acquires every activation and temporary from this
  /// liveness-planned arena (MakeMhaArena) instead of heap-allocating;
  /// values are bitwise identical to the owning mode.
  LayerArenaT<T>* arena = nullptr;
};

template <typename T>
struct MhaGradientsT {
  MhaParamsT<T> params;
  Tensor<T> d_q, d_k, d_v;

  /// When set, Backward acquires every d_* temporary and the input
  /// gradients from this arena (the same MakeMhaArena instance bound to
  /// the activations); weight gradients stay owning. Values are bitwise
  /// identical to the owning mode.
  LayerArenaT<T>* arena = nullptr;
};

template <typename T>
class MhaLayerT {
 public:
  MhaLayerT(MhaConfig config, MhaParamsT<T> params);

  /// General attention: q is [i, b, j]; k and v are [i, b, k].
  const Tensor<T>& Forward(const Tensor<T>& q, const Tensor<T>& k,
                           const Tensor<T>& v, MhaActivationsT<T>& acts) const;

  /// Backward from d_out [i, b, j]; fills parameter gradients and the
  /// gradients of all three inputs.
  void Backward(const Tensor<T>& d_out, const MhaActivationsT<T>& acts,
                MhaGradientsT<T>& grads) const;

  [[nodiscard]] const MhaConfig& config() const { return config_; }
  [[nodiscard]] MhaParamsT<T>& params() { return params_; }

 private:
  MhaConfig config_;
  MhaParamsT<T> params_;
};

using MhaParams = MhaParamsT<Half>;
using MhaActivations = MhaActivationsT<Half>;
using MhaGradients = MhaGradientsT<Half>;
using MhaLayer = MhaLayerT<Half>;

extern template class MhaLayerT<Half>;
extern template class MhaLayerT<float>;
extern template struct MhaParamsT<Half>;
extern template struct MhaParamsT<float>;

}  // namespace xflow::transformer
