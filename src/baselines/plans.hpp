// Framework execution-strategy models (the paper's comparison targets).
//
// Each framework is modeled as an explicit execution plan over the same
// dataflow graph, run through the device model:
//  * PyTorch: per-operator kernels, good layouts, built-in cuBLAS
//    heuristic, eager dispatch overhead, no cross-operator fusion.
//  * TensorFlow+XLA: fuses softmax/element-wise chains but misses the
//    algebraic Q/K/V fusion and uses subpar contraction layouts (Sec. VI-B).
//  * cuDNN MHA: the experimental multi-head attention entry point that
//    launches one softmax kernel per attention row (orders of magnitude
//    slower, Table IV).
//  * DeepSpeed: manually fused kernels, near-optimal but without global
//    layout selection.
//  * Ours: the fused kernels with exhaustively searched configurations and
//    SSSP-selected global layouts.
#pragma once

#include <string>
#include <vector>

#include "config/selection.hpp"
#include "fusion/fuser.hpp"
#include "graph/builder.hpp"
#include "sim/kernel_model.hpp"

namespace xflow::baselines {

enum class Framework { kPyTorch, kTensorFlowXla, kCuDnn, kDeepSpeed, kOurs };
std::string ToString(Framework fw);

/// One kernel of a framework's plan.
struct PlannedKernel {
  std::string name;
  graph::OpClass cls = graph::OpClass::kElementwise;
  bool forward = true;
  std::vector<int> op_indices;  // graph ops this kernel covers
  sim::KernelTiming timing;
  double dispatch_overhead_us = 0;  // framework-side per-kernel cost

  [[nodiscard]] double TotalUs() const {
    return timing.time_us + dispatch_overhead_us;
  }
};

struct ExecutionProfile {
  Framework framework = Framework::kPyTorch;
  std::vector<PlannedKernel> kernels;

  [[nodiscard]] double ForwardUs() const;
  [[nodiscard]] double BackwardUs() const;
  [[nodiscard]] double TotalUs() const { return ForwardUs() + BackwardUs(); }
  [[nodiscard]] double TotalBytesMoved() const;
  /// Sum of times for kernels of one operator class (Table I denominator).
  [[nodiscard]] double ClassUs(graph::OpClass cls) const;
  /// The kernel covering a given graph-op index, or nullptr.
  [[nodiscard]] const PlannedKernel* KernelForOp(int op_index) const;
};

/// Scope of the plan: the full encoder layer or only the MHA operators
/// (for Table IV).
enum class PlanScope { kEncoder, kMhaOnly };

/// Build the execution profile of a framework on the encoder graph.
/// `selection` carries the SSSP layout choices; only kOurs consumes it.
ExecutionProfile PlanEncoder(Framework fw, const sim::GpuModel& model,
                             const graph::DataflowGraph& g,
                             const fusion::FusionResult& fused,
                             const config::SelectionResult& selection,
                             PlanScope scope = PlanScope::kEncoder);

/// Convenience: runs fusion + selection internally.
ExecutionProfile PlanEncoder(Framework fw, const sim::GpuModel& model,
                             const graph::ModelDims& dims,
                             PlanScope scope = PlanScope::kEncoder);

}  // namespace xflow::baselines
