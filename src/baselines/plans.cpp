#include "baselines/plans.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/half.hpp"
#include "layouts/fused_space.hpp"
#include "sim/calibration.hpp"

namespace xflow::baselines {

namespace {

using graph::DataflowGraph;
using graph::OpClass;
using graph::OpKind;
using graph::OpNode;

/// MHA operators of the encoder graph (Table IV scope).
const std::set<std::string>& MhaOpNames() {
  static const std::set<std::string> kNames = {
      "Q,K,V",      "input bias",    "QKT",          "scaled softmax",
      "gamma",      "out",           "output bias",  "output bias dW",
      "out dX",     "out dW",        "gamma dX1",    "gamma dX2",
      "scaled softmax dX",           "QKT dX1",      "QKT dX2",
      "Q,K,V dX",   "Q,K,V dW",      "input bias dW"};
  return kNames;
}

int FirstBackwardOp(const DataflowGraph& g) {
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    if (g.ops()[i].name == "layernorm 2 dW") return static_cast<int>(i);
  }
  return static_cast<int>(g.ops().size());
}

GemmExtents ExtentsOf(const DataflowGraph& g, const OpNode& op) {
  const auto spec = EinsumSpec::Parse(op.einsum);
  // Ops like "Q,K,V dW" list several stacked-gradient inputs; pick, for
  // each spec operand, the first input carrying all of its dimensions.
  auto operand_shape = [&](const std::string& dims) -> const Shape& {
    for (const auto& in : op.inputs) {
      const Shape& s = g.tensor(in).shape;
      if (std::all_of(dims.begin(), dims.end(),
                      [&](char d) { return s.has(d); })) {
        return s;
      }
    }
    return g.tensor(op.inputs.front()).shape;
  };
  auto e = ContractionExtents(spec, operand_shape(spec.a),
                              operand_shape(spec.b));
  // Stacked projections carry their full flop in op.flop; for ops whose
  // inputs are the split tensors (Q,K,V dX / dW), rescale via flop.
  const double spec_flop =
      2.0 * static_cast<double>(e.batch) * static_cast<double>(e.m) *
      static_cast<double>(e.n) * static_cast<double>(e.k);
  if (op.flop > 1.5 * spec_flop) {
    e.n *= static_cast<std::int64_t>(op.flop / spec_flop + 0.5);
  }
  return e;
}

double BytesOf(const DataflowGraph& g, const OpNode& op) {
  return static_cast<double>(g.InputElements(op) + g.OutputElements(op)) *
         kHalfBytes;
}

sim::KernelTiming BestContraction(const sim::GpuModel& model,
                                  const GemmExtents& e, double layout_factor) {
  sim::KernelTiming best;
  best.time_us = 1e30;
  for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
    const auto t = model.Contraction(
        e, {.tensor_cores = true, .algorithm = algo,
            .layout_factor = layout_factor});
    if (t.time_us < best.time_us) best = t;
  }
  return best;
}

/// Per-kernel dispatch overhead of each framework (eager vs compiled).
double DispatchOverheadUs(Framework fw) {
  switch (fw) {
    // PyTorch's eager per-operator cost: Table V totals exceed Table III
    // kernel sums by ~1 ms over 46 operators (~22 us each).
    case Framework::kPyTorch: return 22.0;
    case Framework::kTensorFlowXla: return 0.8;
    case Framework::kCuDnn: return 0.5;
    case Framework::kDeepSpeed: return 0.6;
    case Framework::kOurs: return 0.5;
  }
  return 1.0;
}

/// Map a backward kernel/op name onto its forward SSSP stage.
std::string ForwardStageOf(std::string name) {
  for (const char* suffix : {" dX1", " dX2", " dX", " dW"}) {
    const auto pos = name.rfind(suffix);
    if (pos != std::string::npos &&
        pos + std::string(suffix).size() == name.size()) {
      return name.substr(0, pos);
    }
  }
  return name;
}

/// Per-operator plan (PyTorch-style; Table III granularity).
ExecutionProfile PlanPerOperator(Framework fw, const sim::GpuModel& model,
                                 const DataflowGraph& g, PlanScope scope) {
  const int first_bwd = FirstBackwardOp(g);
  ExecutionProfile profile;
  profile.framework = fw;

  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    const auto& op = g.ops()[i];
    if (scope == PlanScope::kMhaOnly && !MhaOpNames().contains(op.name)) {
      continue;
    }
    PlannedKernel k;
    k.name = op.name;
    k.cls = op.cls();
    k.forward = static_cast<int>(i) < first_bwd;
    k.op_indices = {static_cast<int>(i)};
    k.dispatch_overhead_us = DispatchOverheadUs(fw);

    if (op.cls() == OpClass::kContraction) {
      const auto e = ExtentsOf(g, op);
      // PyTorch uses the library heuristic; good but not optimal layouts.
      // Batched MMMs additionally pay permute/contiguous copies to massage
      // operands into bmm's expected 3-D views.
      const bool batched = e.batch > 1;
      const auto t = model.Contraction(
          e, {.tensor_cores = true,
              .algorithm = -1,
              .layout_factor = batched ? 0.85 : 0.97});
      k.timing = t;
      if (batched) k.dispatch_overhead_us += 30.0;
    } else {
      const double frac = sim::FrameworkBandwidthFrac(op.kind);
      const int launches =
          op.kind == OpKind::kScaledSoftmax ||
                  op.kind == OpKind::kScaledSoftmaxDX
              ? 3   // scale + softmax + dropout as separate kernels
              : 1;
      sim::MemoryConfig mc{
          .bandwidth_frac = frac,
          .flop_per_byte_overhead = sim::FlopPerByteOverhead(op.kind),
          .kernel_launches = launches};
      const double bytes = BytesOf(g, op);
      k.timing = model.MemoryBoundKernel(bytes, bytes, op.flop, mc);
    }
    profile.kernels.push_back(std::move(k));
  }
  return profile;
}

/// Fused-kernel plan (Ours / DeepSpeed / TF+XLA with variations).
ExecutionProfile PlanFused(Framework fw, const sim::GpuModel& model,
                           const DataflowGraph& g,
                           const fusion::FusionResult& fused,
                           const config::SelectionResult& selection,
                           PlanScope scope) {
  const int first_bwd = FirstBackwardOp(g);
  ExecutionProfile profile;
  profile.framework = fw;

  // Framework-specific knobs.
  double contraction_layout = 1.0;  // ours: exhaustively tuned
  double memory_frac_scale = 1.0;
  bool exhaustive_algorithms = true;
  bool algebraic_qkv_fusion = true;
  bool use_selection_penalty = false;
  switch (fw) {
    case Framework::kOurs:
      use_selection_penalty = true;
      break;
    case Framework::kDeepSpeed:
      contraction_layout = 0.95;  // hand-tuned, no global selection
      memory_frac_scale = 0.92;
      break;
    case Framework::kTensorFlowXla:
      contraction_layout = 0.91;  // subpar data layouts (Sec. VI-B)
      memory_frac_scale = 0.90;
      exhaustive_algorithms = false;
      algebraic_qkv_fusion = false;
      break;
    default:
      check(false, "framework is not fused-plan based");
  }

  for (const auto& fk : fused.kernels) {
    const auto& first_op =
        g.ops()[static_cast<std::size_t>(fk.op_indices.front())];
    if (scope == PlanScope::kMhaOnly) {
      const bool any_mha = std::any_of(
          fk.op_indices.begin(), fk.op_indices.end(), [&](int idx) {
            return MhaOpNames().contains(
                g.ops()[static_cast<std::size_t>(idx)].name);
          });
      if (!any_mha) continue;
    }
    PlannedKernel k;
    k.name = fk.name;
    k.cls = first_op.cls();
    k.forward = fk.op_indices.front() < first_bwd;
    k.op_indices = fk.op_indices;
    k.dispatch_overhead_us = DispatchOverheadUs(fw);

    if (fk.IsContraction(g)) {
      auto e = ExtentsOf(g, first_op);
      double layout = contraction_layout;
      if (use_selection_penalty) {
        layout = 1.0 / selection.StagePenalty(ForwardStageOf(fk.name));
      }
      int copies = 1;
      if (!algebraic_qkv_fusion && fk.name.rfind("Q,K,V", 0) == 0) {
        // Three separate projection GEMMs instead of one stacked call.
        e.n /= 3;
        copies = 3;
      }
      auto t = exhaustive_algorithms
                   ? BestContraction(model, e, layout)
                   : model.Contraction(e, {.tensor_cores = true,
                                           .algorithm = -1,
                                           .layout_factor = layout});
      t.time_us *= copies;
      t.flop *= copies;
      t.bytes_moved *= copies;
      t.bytes_minimal *= copies;
      k.timing = t;
      k.dispatch_overhead_us *= copies;
    } else {
      double frac =
          sim::TunedKernelBandwidthFrac(fk.name) * memory_frac_scale;
      if (use_selection_penalty) {
        frac /= selection.StagePenalty(fk.name);
      }
      double elems = 0;
      for (const auto& lists : {fk.external_inputs, fk.external_outputs}) {
        for (const auto& t : lists) {
          elems += static_cast<double>(g.tensor(t).shape.num_elements());
        }
      }
      const double bytes = elems * kHalfBytes;
      double flop = 0;
      double flop_overhead = 0;
      for (int idx : fk.op_indices) {
        const auto& op = g.ops()[static_cast<std::size_t>(idx)];
        flop += op.flop;
        flop_overhead =
            std::max(flop_overhead, sim::FlopPerByteOverhead(op.kind));
      }
      sim::MemoryConfig mc{.bandwidth_frac = frac,
                           .flop_per_byte_overhead = flop_overhead,
                           .kernel_launches = 1};
      k.timing = model.MemoryBoundKernel(bytes, bytes, flop, mc);
    }
    profile.kernels.push_back(std::move(k));
  }
  return profile;
}

/// cuDNN's experimental MHA: contractions plus one softmax kernel per
/// attention row forward (and ~5 per row backward) -- Table IV's outlier.
ExecutionProfile PlanCudnnMha(const sim::GpuModel& model,
                              const DataflowGraph& g) {
  const int first_bwd = FirstBackwardOp(g);
  ExecutionProfile profile = PlanPerOperator(Framework::kCuDnn, model, g,
                                             PlanScope::kMhaOnly);
  // Replace the softmax kernels by the per-row launch storm.
  const auto& sm = g.op("scaled softmax");
  double rows = 1;
  for (const auto& d : sm.independent_dims) {
    rows *= static_cast<double>(d.extent);
  }
  const double per_launch_us = 2.0;  // small kernels, driver-limited
  for (auto& k : profile.kernels) {
    if (k.name == "scaled softmax") {
      k.timing.time_us = rows * per_launch_us;
      k.forward = true;
    } else if (k.name == "scaled softmax dX") {
      k.timing.time_us = 5 * rows * per_launch_us;
      k.forward = false;
    }
  }
  (void)first_bwd;
  return profile;
}

}  // namespace

std::string ToString(Framework fw) {
  switch (fw) {
    case Framework::kPyTorch: return "PyTorch";
    case Framework::kTensorFlowXla: return "TF+XLA";
    case Framework::kCuDnn: return "cuDNN";
    case Framework::kDeepSpeed: return "DeepSpeed";
    case Framework::kOurs: return "Ours";
  }
  return "?";
}

double ExecutionProfile::ForwardUs() const {
  double total = 0;
  for (const auto& k : kernels) {
    if (k.forward) total += k.TotalUs();
  }
  return total;
}

double ExecutionProfile::BackwardUs() const {
  double total = 0;
  for (const auto& k : kernels) {
    if (!k.forward) total += k.TotalUs();
  }
  return total;
}

double ExecutionProfile::TotalBytesMoved() const {
  double total = 0;
  for (const auto& k : kernels) total += k.timing.bytes_moved;
  return total;
}

double ExecutionProfile::ClassUs(OpClass cls) const {
  double total = 0;
  for (const auto& k : kernels) {
    if (k.cls == cls) total += k.TotalUs();
  }
  return total;
}

const PlannedKernel* ExecutionProfile::KernelForOp(int op_index) const {
  for (const auto& k : kernels) {
    if (std::find(k.op_indices.begin(), k.op_indices.end(), op_index) !=
        k.op_indices.end()) {
      return &k;
    }
  }
  return nullptr;
}

ExecutionProfile PlanEncoder(Framework fw, const sim::GpuModel& model,
                             const DataflowGraph& g,
                             const fusion::FusionResult& fused,
                             const config::SelectionResult& selection,
                             PlanScope scope) {
  switch (fw) {
    case Framework::kPyTorch:
      return PlanPerOperator(fw, model, g, scope);
    case Framework::kCuDnn:
      require(scope == PlanScope::kMhaOnly,
              "cuDNN baseline models only multi-head attention");
      return PlanCudnnMha(model, g);
    case Framework::kTensorFlowXla:
    case Framework::kDeepSpeed:
    case Framework::kOurs:
      return PlanFused(fw, model, g, fused, selection, scope);
  }
  check(false, "unknown framework");
  return {};
}

ExecutionProfile PlanEncoder(Framework fw, const sim::GpuModel& model,
                             const graph::ModelDims& dims, PlanScope scope) {
  const auto g =
      BuildEncoder(dims, graph::AlgebraicFusion::kQKV, /*backward=*/true);
  const auto fused = fusion::FuseMaximally(g);
  config::SelectionResult selection;
  if (fw == Framework::kOurs) {
    selection = config::SelectConfigurations(model, g, fused);
  }
  return PlanEncoder(fw, model, g, fused, selection, scope);
}

}  // namespace xflow::baselines
