// The paper's fused operators (Sec. IV-A): each function is one "kernel" --
// a single pass over memory that avoids materializing interim tensors.
// Naming follows the paper:
//   AIB    attention input bias                      (forward)
//   SM     scaling + softmax + dropout               (forward; softmax.hpp)
//   BRD    bias + ReLU + dropout                     (forward)
//   BDRLN  bias + dropout + residual + layernorm     (forward; also DRLN)
//   BSB    backward layernorm scale and bias         (layernorm.hpp)
//   BLNRD  backward layernorm dX + dropout dX
//   BDRB   backward bias dW + dropout dX + ReLU dX + bias dW
//   EBSB   backward residual + layernorm scale/bias
//   BS     backward dropout + softmax + scaling      (softmax.hpp)
//   BEI    backward encoder-input residual           (elementwise.hpp)
//   BAOB   backward attention output bias            (elementwise.hpp)
//   BAIB   backward attention input bias
#pragma once

#include <array>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace xflow::ops {

/// AIB: adds the stacked projection bias [3p, h] to qq, kk and vv in a
/// single launch (slices 0/1/2 of the bias stack respectively).
template <typename T>
void AttnInputBias(const std::array<const Tensor<T>*, 3>& inputs,
                   const Tensor<T>& stacked_bias, char stack_dim,
                   const std::array<Tensor<T>*, 3>& outputs);

/// BRD: y = dropout(relu(x + bias)). The ReLU output is additionally saved
/// for the backward pass (the paper's BDRB kernel consumes it).
template <typename T>
void BiasReluDropout(const Tensor<T>& x, const Tensor<T>& bias,
                     const DropoutMask& mask, Tensor<T>& relu_saved,
                     Tensor<T>& y, Tensor<T>& mask_out);

/// BDRLN (and DRLN): resid = dropout(x + bias) + residual_in;
/// y = layernorm(resid). The interim biased/dropped tensors are never
/// written to memory; `resid` is saved because backward needs it.
template <typename T>
void BiasDropoutResidualLayerNorm(const Tensor<T>& x, const Tensor<T>& bias,
                                  const Tensor<T>& residual_in,
                                  const DropoutMask& mask,
                                  const Tensor<T>& ln_gamma,
                                  const Tensor<T>& ln_beta, char norm_dim,
                                  float eps, Tensor<T>& resid_saved,
                                  Tensor<T>& mask_out, Tensor<T>& y,
                                  TensorF& ln_mean, TensorF& ln_rstd);

/// BLNRD: d_resid = layernorm-dX(dy); d_out = dropout-dX(d_resid).
/// d_resid is written out too ("saving the intermediate result for the
/// residual connection", Sec. IV-A).
template <typename T>
void LayerNormDropoutBackward(const Tensor<T>& dy, const Tensor<T>& ln_gamma,
                              const Tensor<T>& x_saved, const TensorF& mean,
                              const TensorF& rstd, const Tensor<T>& drop_mask,
                              char norm_dim, float keep_scale,
                              Tensor<T>& d_resid, Tensor<T>& d_out);

/// BDRB: d_bias_hi = sum(dy_hi); t = relu-dX(dropout-dX(dy_lo));
/// d_x_lo = t; d_bias_lo = sum(t). Two gradient streams, one launch.
template <typename T>
void BiasDropoutReluBiasBackward(const Tensor<T>& dy_hi,
                                 const Tensor<T>& dy_lo,
                                 const Tensor<T>& drop_mask,
                                 const Tensor<T>& relu_saved, float keep_scale,
                                 Tensor<T>& d_bias_hi, Tensor<T>& d_x_lo,
                                 Tensor<T>& d_bias_lo);

/// EBSB: d_sum = da + db (residual gradient merge), then layernorm dW
/// reductions using d_sum.
template <typename T>
void ResidualLayerNormDwBackward(const Tensor<T>& da, const Tensor<T>& db,
                                 const Tensor<T>& x_saved, const TensorF& mean,
                                 const TensorF& rstd, char norm_dim,
                                 Tensor<T>& d_sum, Tensor<T>& dgamma,
                                 Tensor<T>& dbeta);

/// BAIB: db_stacked[slice s] = sum over (b, j) of d_inputs[s].
template <typename T>
void AttnInputBiasBackward(const std::array<const Tensor<T>*, 3>& d_inputs,
                           char stack_dim, Tensor<T>& d_stacked_bias);

}  // namespace xflow::ops
