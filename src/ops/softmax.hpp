// Softmax-family operators (⬜ class): plain softmax over one dimension and
// the paper's scaled-softmax-with-dropout (the SM / BS fused kernels).
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace xflow::ops {

/// y = softmax(x) along `reduce_dim` (numerically stable; fp32 math).
template <typename T>
void SoftmaxForward(const Tensor<T>& x, char reduce_dim, Tensor<T>& y);

/// The SM kernel: alpha = dropout(softmax(scale * beta)) along `reduce_dim`.
/// Also emits the dropout mask and the pre-dropout softmax result, both
/// needed by the backward pass (Table III: outputs = 3x the input volume).
template <typename T>
void ScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim, float scale,
                          const DropoutMask& mask, Tensor<T>& alpha,
                          Tensor<T>& mask_out, Tensor<T>& softmax_saved);

/// Causal (autoregressive) variant of the SM kernel: entries with
/// key position > query position are masked out before the softmax --
/// the paper's "masking step ... used during training to prevent a model
/// from seeing the future" (Sec. II-B1), as in GPT-2/3 decoder layers.
/// `query_dim` indexes positions along the query sequence. Backward is
/// unchanged (ScaledSoftmaxBackwardDX): masked entries have saved
/// softmax 0, which zeroes their gradient exactly.
template <typename T>
void CausalScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim,
                                char query_dim, float scale,
                                const DropoutMask& mask, Tensor<T>& alpha,
                                Tensor<T>& mask_out, Tensor<T>& softmax_saved);

/// dx = softmax backward: dx = y * (dy - sum(dy * y)) along `reduce_dim`.
template <typename T>
void SoftmaxBackwardDX(const Tensor<T>& dy, const Tensor<T>& y,
                       char reduce_dim, Tensor<T>& dx);

/// The BS kernel: backward of dropout + softmax + scale in one pass.
template <typename T>
void ScaledSoftmaxBackwardDX(const Tensor<T>& d_alpha, const Tensor<T>& mask,
                             const Tensor<T>& softmax_saved, char reduce_dim,
                             float scale, float keep_scale, Tensor<T>& d_beta);

}  // namespace xflow::ops
