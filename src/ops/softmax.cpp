#include "ops/softmax.hpp"

#include <cmath>
#include <limits>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::LoopWithInnermost;
using detail::ParallelRows;
using detail::RowOf;

template <typename T>
void SoftmaxForward(const Tensor<T>& x, char reduce_dim, Tensor<T>& y) {
  const auto ld = LoopWithInnermost(y.shape(), reduce_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  detail::DispatchUnit(detail::UnitInner(xv, yv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelRows(ld.extents, [&](auto a, auto b, auto c) {
      const auto xr = RowOf<kU>(xv, a, b, c);
      const auto yr = RowOf<kU>(yv, a, b, c);
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::int64_t k = 0; k < n; ++k) {
        max_v = std::max(max_v, float(xr[k]));
      }
      float sum = 0;
      for (std::int64_t k = 0; k < n; ++k) {
        sum += std::exp(float(xr[k]) - max_v);
      }
      const float inv = 1.0f / sum;
      for (std::int64_t k = 0; k < n; ++k) {
        yr[k] = T(std::exp(float(xr[k]) - max_v) * inv);
      }
    });
  });
}

template <typename T>
void ScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim, float scale,
                          const DropoutMask& mask, Tensor<T>& alpha,
                          Tensor<T>& mask_out, Tensor<T>& softmax_saved) {
  const auto ld = LoopWithInnermost(alpha.shape(), reduce_dim);
  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  detail::DispatchUnit(detail::UnitInner(bv, av, mv, sv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelRows(ld.extents, [&](auto a, auto b, auto c) {
      const auto br = RowOf<kU>(bv, a, b, c);
      const auto ar = RowOf<kU>(av, a, b, c);
      const auto mr = RowOf<kU>(mv, a, b, c);
      const auto sr = RowOf<kU>(sv, a, b, c);
      const std::int64_t base = Dot(canon, a, b, c, 0);
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::int64_t k = 0; k < n; ++k) {
        max_v = std::max(max_v, scale * float(br[k]));
      }
      float sum = 0;
      for (std::int64_t k = 0; k < n; ++k) {
        sum += std::exp(scale * float(br[k]) - max_v);
      }
      const float inv = 1.0f / sum;
      for (std::int64_t k = 0; k < n; ++k) {
        const float soft = std::exp(scale * float(br[k]) - max_v) * inv;
        const bool keep =
            mask.Keep(static_cast<std::uint64_t>(base + k * canon[3]));
        sr[k] = T(soft);
        mr[k] = T(keep ? 1.0f : 0.0f);
        ar[k] = T(keep ? soft * keep_scale : 0.0f);
      }
    });
  });
}

template <typename T>
void CausalScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim,
                                char query_dim, float scale,
                                const DropoutMask& mask, Tensor<T>& alpha,
                                Tensor<T>& mask_out,
                                Tensor<T>& softmax_saved) {
  const auto ld = LoopWithInnermost(alpha.shape(), reduce_dim);
  // Which of the three outer loop slots runs over query positions?
  int query_slot = -1;
  for (int s = 0; s < 3; ++s) {
    if (ld.names[static_cast<std::size_t>(s)] == query_dim) query_slot = s;
  }
  require(query_slot >= 0, "tensor lacks the query dimension");

  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  detail::DispatchUnit(detail::UnitInner(bv, av, mv, sv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelRows(ld.extents, [&](auto a, auto b, auto c) {
      const auto br = RowOf<kU>(bv, a, b, c);
      const auto ar = RowOf<kU>(av, a, b, c);
      const auto mr = RowOf<kU>(mv, a, b, c);
      const auto sr = RowOf<kU>(sv, a, b, c);
      const std::int64_t base = Dot(canon, a, b, c, 0);
      const std::int64_t q = query_slot == 0 ? a : query_slot == 1 ? b : c;
      const std::int64_t visible = std::min(q + 1, n);
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::int64_t k = 0; k < visible; ++k) {
        max_v = std::max(max_v, scale * float(br[k]));
      }
      float sum = 0;
      for (std::int64_t k = 0; k < visible; ++k) {
        sum += std::exp(scale * float(br[k]) - max_v);
      }
      const float inv = 1.0f / sum;
      for (std::int64_t k = 0; k < n; ++k) {
        float soft = 0;
        if (k < visible) {
          soft = std::exp(scale * float(br[k]) - max_v) * inv;
        }
        const bool keep =
            mask.Keep(static_cast<std::uint64_t>(base + k * canon[3]));
        sr[k] = T(soft);
        mr[k] = T(keep ? 1.0f : 0.0f);
        ar[k] = T(keep && k < visible ? soft * keep_scale : 0.0f);
      }
    });
  });
}

template <typename T>
void SoftmaxBackwardDX(const Tensor<T>& dy, const Tensor<T>& y,
                       char reduce_dim, Tensor<T>& dx) {
  const auto ld = LoopWithInnermost(dx.shape(), reduce_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto yv = View<const T, 4>::Bind(y, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  detail::DispatchUnit(detail::UnitInner(dyv, yv, dxv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelRows(ld.extents, [&](auto a, auto b, auto c) {
      const auto dyr = RowOf<kU>(dyv, a, b, c);
      const auto yr = RowOf<kU>(yv, a, b, c);
      const auto dxr = RowOf<kU>(dxv, a, b, c);
      float inner = 0;
      for (std::int64_t k = 0; k < n; ++k) {
        inner += float(dyr[k]) * float(yr[k]);
      }
      for (std::int64_t k = 0; k < n; ++k) {
        dxr[k] = T(float(yr[k]) * (float(dyr[k]) - inner));
      }
    });
  });
}

template <typename T>
void ScaledSoftmaxBackwardDX(const Tensor<T>& d_alpha, const Tensor<T>& mask,
                             const Tensor<T>& softmax_saved, char reduce_dim,
                             float scale, float keep_scale,
                             Tensor<T>& d_beta) {
  const auto ld = LoopWithInnermost(d_beta.shape(), reduce_dim);
  auto dav = View<const T, 4>::Bind(d_alpha, ld.names);
  auto mv = View<const T, 4>::Bind(mask, ld.names);
  auto sv = View<const T, 4>::Bind(softmax_saved, ld.names);
  auto dbv = View<T, 4>::Bind(d_beta, ld.names);
  const std::int64_t n = ld.extents[3];
  detail::DispatchUnit(detail::UnitInner(dav, mv, sv, dbv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelRows(ld.extents, [&](auto a, auto b, auto c) {
      const auto dar = RowOf<kU>(dav, a, b, c);
      const auto mr = RowOf<kU>(mv, a, b, c);
      const auto sr = RowOf<kU>(sv, a, b, c);
      const auto dbr = RowOf<kU>(dbv, a, b, c);
      // ds = d_alpha through dropout; inner = sum(ds * s).
      float inner = 0;
      for (std::int64_t k = 0; k < n; ++k) {
        const float ds = float(dar[k]) * float(mr[k]) * keep_scale;
        inner += ds * float(sr[k]);
      }
      for (std::int64_t k = 0; k < n; ++k) {
        const float ds = float(dar[k]) * float(mr[k]) * keep_scale;
        const float s = float(sr[k]);
        dbr[k] = T(scale * s * (ds - inner));
      }
    });
  });
}

#define XFLOW_INSTANTIATE_SOFTMAX(T)                                          \
  template void SoftmaxForward<T>(const Tensor<T>&, char, Tensor<T>&);        \
  template void ScaledSoftmaxForward<T>(const Tensor<T>&, char, float,        \
                                        const DropoutMask&, Tensor<T>&,       \
                                        Tensor<T>&, Tensor<T>&);              \
  template void CausalScaledSoftmaxForward<T>(                                \
      const Tensor<T>&, char, char, float, const DropoutMask&, Tensor<T>&,    \
      Tensor<T>&, Tensor<T>&);                                                \
  template void SoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,      \
                                     char, Tensor<T>&);                       \
  template void ScaledSoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,\
                                           const Tensor<T>&, char, float,     \
                                           float, Tensor<T>&)

XFLOW_INSTANTIATE_SOFTMAX(Half);
XFLOW_INSTANTIATE_SOFTMAX(float);
#undef XFLOW_INSTANTIATE_SOFTMAX

}  // namespace xflow::ops
