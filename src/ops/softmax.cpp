#include "ops/softmax.hpp"

#include <cmath>
#include <limits>

#include "ops/detail.hpp"

namespace xflow::ops {

namespace {

/// Loop layout for reduction kernels: the three non-reduced dims (padded)
/// come first, the reduced dim is the innermost (fourth) loop.
detail::LoopDims ReductionLoop(const Shape& shape, char reduce_dim) {
  require(shape.rank() <= 4, "reduction kernels support rank <= 4");
  require(shape.has(reduce_dim), "tensor lacks the reduction dimension");
  detail::LoopDims ld;
  std::size_t slot = 0;
  for (const auto& d : shape.dims()) {
    if (d.name == reduce_dim) continue;
    ld.names[slot] = d.name;
    ld.extents[slot] = d.extent;
    ++slot;
  }
  ld.names[3] = reduce_dim;
  ld.extents[3] = shape.extent(reduce_dim);
  return ld;
}

}  // namespace

template <typename T>
void SoftmaxForward(const Tensor<T>& x, char reduce_dim, Tensor<T>& y) {
  const auto ld = ReductionLoop(y.shape(), reduce_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        float max_v = -std::numeric_limits<float>::infinity();
        for (std::int64_t k = 0; k < n; ++k) {
          max_v = std::max(max_v, float(xv.ptr[detail::Off(xv, a, b, c, k)]));
        }
        float sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += std::exp(float(xv.ptr[detail::Off(xv, a, b, c, k)]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          yv.ptr[detail::Off(yv, a, b, c, k)] =
              T(std::exp(float(xv.ptr[detail::Off(xv, a, b, c, k)]) - max_v) *
                inv);
        }
      }
    }
  }
}

template <typename T>
void ScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim, float scale,
                          const DropoutMask& mask, Tensor<T>& alpha,
                          Tensor<T>& mask_out, Tensor<T>& softmax_saved) {
  const auto ld = ReductionLoop(alpha.shape(), reduce_dim);
  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        float max_v = -std::numeric_limits<float>::infinity();
        for (std::int64_t k = 0; k < n; ++k) {
          max_v = std::max(
              max_v, scale * float(bv.ptr[detail::Off(bv, a, b, c, k)]));
        }
        float sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += std::exp(
              scale * float(bv.ptr[detail::Off(bv, a, b, c, k)]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          const float soft =
              std::exp(scale * float(bv.ptr[detail::Off(bv, a, b, c, k)]) -
                       max_v) *
              inv;
          const bool keep = mask.Keep(
              static_cast<std::uint64_t>(detail::Dot(canon, a, b, c, k)));
          sv.ptr[detail::Off(sv, a, b, c, k)] = T(soft);
          mv.ptr[detail::Off(mv, a, b, c, k)] = T(keep ? 1.0f : 0.0f);
          av.ptr[detail::Off(av, a, b, c, k)] =
              T(keep ? soft * keep_scale : 0.0f);
        }
      }
    }
  }
}

template <typename T>
void CausalScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim,
                                char query_dim, float scale,
                                const DropoutMask& mask, Tensor<T>& alpha,
                                Tensor<T>& mask_out,
                                Tensor<T>& softmax_saved) {
  const auto ld = ReductionLoop(alpha.shape(), reduce_dim);
  // Which of the three outer loop slots runs over query positions?
  int query_slot = -1;
  for (int s = 0; s < 3; ++s) {
    if (ld.names[static_cast<std::size_t>(s)] == query_dim) query_slot = s;
  }
  require(query_slot >= 0, "tensor lacks the query dimension");

  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        const std::int64_t q = query_slot == 0 ? a : query_slot == 1 ? b : c;
        const std::int64_t visible = std::min(q + 1, n);
        float max_v = -std::numeric_limits<float>::infinity();
        for (std::int64_t k = 0; k < visible; ++k) {
          max_v = std::max(
              max_v, scale * float(bv.ptr[detail::Off(bv, a, b, c, k)]));
        }
        float sum = 0;
        for (std::int64_t k = 0; k < visible; ++k) {
          sum += std::exp(
              scale * float(bv.ptr[detail::Off(bv, a, b, c, k)]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          float soft = 0;
          if (k < visible) {
            soft = std::exp(scale *
                                float(bv.ptr[detail::Off(bv, a, b, c, k)]) -
                            max_v) *
                   inv;
          }
          const bool keep = mask.Keep(
              static_cast<std::uint64_t>(detail::Dot(canon, a, b, c, k)));
          sv.ptr[detail::Off(sv, a, b, c, k)] = T(soft);
          mv.ptr[detail::Off(mv, a, b, c, k)] = T(keep ? 1.0f : 0.0f);
          av.ptr[detail::Off(av, a, b, c, k)] =
              T(keep && k < visible ? soft * keep_scale : 0.0f);
        }
      }
    }
  }
}

template <typename T>
void SoftmaxBackwardDX(const Tensor<T>& dy, const Tensor<T>& y,
                       char reduce_dim, Tensor<T>& dx) {
  const auto ld = ReductionLoop(dx.shape(), reduce_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto yv = View<const T, 4>::Bind(y, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        float inner = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          inner += float(dyv.ptr[detail::Off(dyv, a, b, c, k)]) *
                   float(yv.ptr[detail::Off(yv, a, b, c, k)]);
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const float yk = float(yv.ptr[detail::Off(yv, a, b, c, k)]);
          const float dyk = float(dyv.ptr[detail::Off(dyv, a, b, c, k)]);
          dxv.ptr[detail::Off(dxv, a, b, c, k)] = T(yk * (dyk - inner));
        }
      }
    }
  }
}

template <typename T>
void ScaledSoftmaxBackwardDX(const Tensor<T>& d_alpha, const Tensor<T>& mask,
                             const Tensor<T>& softmax_saved, char reduce_dim,
                             float scale, float keep_scale,
                             Tensor<T>& d_beta) {
  const auto ld = ReductionLoop(d_beta.shape(), reduce_dim);
  auto dav = View<const T, 4>::Bind(d_alpha, ld.names);
  auto mv = View<const T, 4>::Bind(mask, ld.names);
  auto sv = View<const T, 4>::Bind(softmax_saved, ld.names);
  auto dbv = View<T, 4>::Bind(d_beta, ld.names);
  const std::int64_t n = ld.extents[3];
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        // ds = d_alpha through dropout; inner = sum(ds * s).
        float inner = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          const float ds = float(dav.ptr[detail::Off(dav, a, b, c, k)]) *
                           float(mv.ptr[detail::Off(mv, a, b, c, k)]) *
                           keep_scale;
          inner += ds * float(sv.ptr[detail::Off(sv, a, b, c, k)]);
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const float ds = float(dav.ptr[detail::Off(dav, a, b, c, k)]) *
                           float(mv.ptr[detail::Off(mv, a, b, c, k)]) *
                           keep_scale;
          const float s = float(sv.ptr[detail::Off(sv, a, b, c, k)]);
          dbv.ptr[detail::Off(dbv, a, b, c, k)] =
              T(scale * s * (ds - inner));
        }
      }
    }
  }
}

#define XFLOW_INSTANTIATE_SOFTMAX(T)                                          \
  template void SoftmaxForward<T>(const Tensor<T>&, char, Tensor<T>&);        \
  template void ScaledSoftmaxForward<T>(const Tensor<T>&, char, float,        \
                                        const DropoutMask&, Tensor<T>&,       \
                                        Tensor<T>&, Tensor<T>&);              \
  template void CausalScaledSoftmaxForward<T>(                                \
      const Tensor<T>&, char, char, float, const DropoutMask&, Tensor<T>&,    \
      Tensor<T>&, Tensor<T>&);                                                \
  template void SoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,      \
                                     char, Tensor<T>&);                       \
  template void ScaledSoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,\
                                           const Tensor<T>&, char, float,     \
                                           float, Tensor<T>&)

XFLOW_INSTANTIATE_SOFTMAX(Half);
XFLOW_INSTANTIATE_SOFTMAX(float);
#undef XFLOW_INSTANTIATE_SOFTMAX

}  // namespace xflow::ops
