#include "ops/softmax.hpp"

#include <cmath>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::ForEachRow;
using detail::In;
using detail::LoopWithInnermost;
using detail::Out;
using detail::RowDot;
using detail::RowDropoutDot;
using detail::RowMax;

template <typename T>
void SoftmaxForward(const Tensor<T>& x, char reduce_dim, Tensor<T>& y) {
  const auto ld = LoopWithInnermost(y.shape(), reduce_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& xr,
          const auto& yr) {
        const float max_v = RowMax(xr, n, 1.0f);
        float sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += std::exp(float(xr[k]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          yr[k] = T(std::exp(float(xr[k]) - max_v) * inv);
        }
      },
      In{xv}, Out{yv});
}

template <typename T>
void ScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim, float scale,
                          const DropoutMask& mask, Tensor<T>& alpha,
                          Tensor<T>& mask_out, Tensor<T>& softmax_saved) {
  const auto ld = LoopWithInnermost(alpha.shape(), reduce_dim);
  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [&, n, scale, keep_scale](std::int64_t a, std::int64_t b,
                                std::int64_t c, const auto& br,
                                const auto& ar, const auto& mr,
                                const auto& sr) {
        const std::int64_t base = Dot(canon, a, b, c, 0);
        const float max_v = RowMax(br, n, scale);
        float sum = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          sum += std::exp(scale * float(br[k]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          const float soft = std::exp(scale * float(br[k]) - max_v) * inv;
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(base + k * canon[3]));
          sr[k] = T(soft);
          mr[k] = T(keep ? 1.0f : 0.0f);
          ar[k] = T(keep ? soft * keep_scale : 0.0f);
        }
      },
      In{bv}, Out{av}, Out{mv}, Out{sv});
}

template <typename T>
void CausalScaledSoftmaxForward(const Tensor<T>& beta, char reduce_dim,
                                char query_dim, float scale,
                                const DropoutMask& mask, Tensor<T>& alpha,
                                Tensor<T>& mask_out,
                                Tensor<T>& softmax_saved) {
  const auto ld = LoopWithInnermost(alpha.shape(), reduce_dim);
  // Which of the three outer loop slots runs over query positions?
  int query_slot = -1;
  for (int s = 0; s < 3; ++s) {
    if (ld.names[static_cast<std::size_t>(s)] == query_dim) query_slot = s;
  }
  require(query_slot >= 0, "tensor lacks the query dimension");

  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto av = View<T, 4>::Bind(alpha, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto sv = View<T, 4>::Bind(softmax_saved, ld.names);
  const auto canon = CanonicalStrides(alpha.shape(), ld.names);
  const float keep_scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [&, n, scale, keep_scale, query_slot](
          std::int64_t a, std::int64_t b, std::int64_t c, const auto& br,
          const auto& ar, const auto& mr, const auto& sr) {
        const std::int64_t base = Dot(canon, a, b, c, 0);
        const std::int64_t q = query_slot == 0 ? a : query_slot == 1 ? b : c;
        const std::int64_t visible = std::min(q + 1, n);
        const float max_v = RowMax(br, visible, scale);
        float sum = 0;
        for (std::int64_t k = 0; k < visible; ++k) {
          sum += std::exp(scale * float(br[k]) - max_v);
        }
        const float inv = 1.0f / sum;
        for (std::int64_t k = 0; k < n; ++k) {
          float soft = 0;
          if (k < visible) {
            soft = std::exp(scale * float(br[k]) - max_v) * inv;
          }
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(base + k * canon[3]));
          sr[k] = T(soft);
          mr[k] = T(keep ? 1.0f : 0.0f);
          ar[k] = T(keep && k < visible ? soft * keep_scale : 0.0f);
        }
      },
      In{bv}, Out{av}, Out{mv}, Out{sv});
}

template <typename T>
void SoftmaxBackwardDX(const Tensor<T>& dy, const Tensor<T>& y,
                       char reduce_dim, Tensor<T>& dx) {
  const auto ld = LoopWithInnermost(dx.shape(), reduce_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto yv = View<const T, 4>::Bind(y, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& dyr,
          const auto& yr, const auto& dxr) {
        const float inner = RowDot(dyr, yr, n);
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          dxr[k] = T(float(yr[k]) * (float(dyr[k]) - inner));
        }
      },
      In{dyv}, In{yv}, Out{dxv});
}

template <typename T>
void ScaledSoftmaxBackwardDX(const Tensor<T>& d_alpha, const Tensor<T>& mask,
                             const Tensor<T>& softmax_saved, char reduce_dim,
                             float scale, float keep_scale,
                             Tensor<T>& d_beta) {
  const auto ld = LoopWithInnermost(d_beta.shape(), reduce_dim);
  auto dav = View<const T, 4>::Bind(d_alpha, ld.names);
  auto mv = View<const T, 4>::Bind(mask, ld.names);
  auto sv = View<const T, 4>::Bind(softmax_saved, ld.names);
  auto dbv = View<T, 4>::Bind(d_beta, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n, scale, keep_scale](std::int64_t, std::int64_t, std::int64_t,
                             const auto& dar, const auto& mr, const auto& sr,
                             const auto& dbr) {
        // ds = d_alpha through dropout; inner = sum(ds * s).
        const float inner = RowDropoutDot(dar, mr, sr, keep_scale, n);
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          const float ds = float(dar[k]) * float(mr[k]) * keep_scale;
          const float s = float(sr[k]);
          dbr[k] = T(scale * s * (ds - inner));
        }
      },
      In{dav}, In{mv}, In{sv}, Out{dbv});
}

#define XFLOW_INSTANTIATE_SOFTMAX(T)                                          \
  template void SoftmaxForward<T>(const Tensor<T>&, char, Tensor<T>&);        \
  template void ScaledSoftmaxForward<T>(const Tensor<T>&, char, float,        \
                                        const DropoutMask&, Tensor<T>&,       \
                                        Tensor<T>&, Tensor<T>&);              \
  template void CausalScaledSoftmaxForward<T>(                                \
      const Tensor<T>&, char, char, float, const DropoutMask&, Tensor<T>&,    \
      Tensor<T>&, Tensor<T>&);                                                \
  template void SoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,      \
                                     char, Tensor<T>&);                       \
  template void ScaledSoftmaxBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,\
                                           const Tensor<T>&, char, float,     \
                                           float, Tensor<T>&)

XFLOW_INSTANTIATE_SOFTMAX(Half);
XFLOW_INSTANTIATE_SOFTMAX(float);
#undef XFLOW_INSTANTIATE_SOFTMAX

}  // namespace xflow::ops
