#include "ops/elementwise.hpp"

#include <vector>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::ForEachRow;
using detail::In;
using detail::LoopOverOutput;
using detail::Out;
using detail::Pass;

template <typename T>
void BiasForward(const Tensor<T>& x, const Tensor<T>& bias, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  // The bias may broadcast along the innermost dim (stride 0), so it keeps
  // a strided accessor (Pass) and stays out of the unit-stride gating.
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& xr,
          const auto& br, const auto& yr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          yr[d] = T(float(xr[d]) + float(br[d]));
        }
      },
      In{xv}, Pass{bv}, Out{yv});
}

template <typename T>
void ReluForward(const Tensor<T>& x, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& xr,
          const auto& yr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          const float v = float(xr[d]);
          yr[d] = T(v > 0.0f ? v : 0.0f);
        }
      },
      In{xv}, Out{yv});
}

template <typename T>
void DropoutForward(const Tensor<T>& x, const DropoutMask& mask, Tensor<T>& y,
                    Tensor<T>& mask_out) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [&, n](std::int64_t a, std::int64_t b, std::int64_t c, const auto& xr,
             const auto& yr, const auto& mr) {
        const std::int64_t base = Dot(canon, a, b, c, 0);
        for (std::int64_t d = 0; d < n; ++d) {
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(base + d * canon[3]));
          yr[d] = T(keep ? float(xr[d]) * scale : 0.0f);
          mr[d] = T(keep ? 1.0f : 0.0f);
        }
      },
      In{xv}, Out{yv}, Out{mv});
}

template <typename T>
void ResidualForward(const Tensor<T>& a, const Tensor<T>& b, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto av = View<const T, 4>::Bind(a, ld.names);
  auto bv = View<const T, 4>::Bind(b, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& ar,
          const auto& br, const auto& yr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          yr[d] = T(float(ar[d]) + float(br[d]));
        }
      },
      In{av}, In{bv}, Out{yv});
}

template <typename T>
void ScaleForward(const Tensor<T>& x, float alpha, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n, alpha](std::int64_t, std::int64_t, std::int64_t, const auto& xr,
                 const auto& yr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          yr[d] = T(alpha * float(xr[d]));
        }
      },
      In{xv}, Out{yv});
}

template <typename T>
void BiasBackwardDW(const Tensor<T>& dy, Tensor<T>& db) {
  // Accumulate in fp32 scratch indexed by db's layout, then round once.
  std::vector<float> acc(static_cast<std::size_t>(db.size()), 0.0f);
  const auto ld = LoopOverOutput(dy.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto dbv = View<T, 4>::Bind(db, ld.names);  // stride 0 on reduced dims
  detail::ReduceBiasRows(ld, dyv, dbv, 0, acc);
  for (std::int64_t i = 0; i < db.size(); ++i) {
    db.data()[i] = T(acc[static_cast<std::size_t>(i)]);
  }
}

template <typename T>
void ReluBackwardDX(const Tensor<T>& dy, const Tensor<T>& y, Tensor<T>& dx) {
  const auto ld = LoopOverOutput(dx.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto yv = View<const T, 4>::Bind(y, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n](std::int64_t, std::int64_t, std::int64_t, const auto& dyr,
          const auto& yr, const auto& dxr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          const bool active = float(yr[d]) > 0.0f;
          dxr[d] = active ? dyr[d] : T(0.0f);
        }
      },
      In{dyv}, In{yv}, Out{dxv});
}

template <typename T>
void DropoutBackwardDX(const Tensor<T>& dy, const Tensor<T>& mask,
                       float keep_scale, Tensor<T>& dx) {
  const auto ld = LoopOverOutput(dx.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto mv = View<const T, 4>::Bind(mask, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  ForEachRow(
      ld,
      [n, keep_scale](std::int64_t, std::int64_t, std::int64_t,
                      const auto& dyr, const auto& mr, const auto& dxr) {
        XFLOW_SIMD
        for (std::int64_t d = 0; d < n; ++d) {
          dxr[d] = T(float(dyr[d]) * float(mr[d]) * keep_scale);
        }
      },
      In{dyv}, In{mv}, Out{dxv});
}

#define XFLOW_INSTANTIATE_ELEMENTWISE(T)                                      \
  template void BiasForward<T>(const Tensor<T>&, const Tensor<T>&,            \
                               Tensor<T>&);                                   \
  template void ReluForward<T>(const Tensor<T>&, Tensor<T>&);                 \
  template void DropoutForward<T>(const Tensor<T>&, const DropoutMask&,       \
                                  Tensor<T>&, Tensor<T>&);                    \
  template void ResidualForward<T>(const Tensor<T>&, const Tensor<T>&,        \
                                   Tensor<T>&);                               \
  template void ScaleForward<T>(const Tensor<T>&, float, Tensor<T>&);         \
  template void BiasBackwardDW<T>(const Tensor<T>&, Tensor<T>&);              \
  template void ReluBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,         \
                                  Tensor<T>&);                                \
  template void DropoutBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,      \
                                     float, Tensor<T>&)

XFLOW_INSTANTIATE_ELEMENTWISE(Half);
XFLOW_INSTANTIATE_ELEMENTWISE(float);
#undef XFLOW_INSTANTIATE_ELEMENTWISE

}  // namespace xflow::ops
