#include "ops/elementwise.hpp"

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::For4;
using detail::LoopOverOutput;
using detail::Off;

template <typename T>
void BiasForward(const Tensor<T>& x, const Tensor<T>& bias, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    yv.ptr[Off(yv, a, b, c, d)] = T(float(xv.ptr[Off(xv, a, b, c, d)]) +
                                    float(bv.ptr[Off(bv, a, b, c, d)]));
  });
}

template <typename T>
void ReluForward(const Tensor<T>& x, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    const float v = float(xv.ptr[Off(xv, a, b, c, d)]);
    yv.ptr[Off(yv, a, b, c, d)] = T(v > 0.0f ? v : 0.0f);
  });
}

template <typename T>
void DropoutForward(const Tensor<T>& x, const DropoutMask& mask, Tensor<T>& y,
                    Tensor<T>& mask_out) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    const bool keep =
        mask.Keep(static_cast<std::uint64_t>(Dot(canon, a, b, c, d)));
    const float v = keep ? float(xv.ptr[Off(xv, a, b, c, d)]) * scale : 0.0f;
    yv.ptr[Off(yv, a, b, c, d)] = T(v);
    mv.ptr[Off(mv, a, b, c, d)] = T(keep ? 1.0f : 0.0f);
  });
}

template <typename T>
void ResidualForward(const Tensor<T>& a, const Tensor<T>& b, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto av = View<const T, 4>::Bind(a, ld.names);
  auto bv = View<const T, 4>::Bind(b, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  For4(ld.extents, [&](auto i, auto j, auto k, auto l) {
    yv.ptr[Off(yv, i, j, k, l)] = T(float(av.ptr[Off(av, i, j, k, l)]) +
                                    float(bv.ptr[Off(bv, i, j, k, l)]));
  });
}

template <typename T>
void ScaleForward(const Tensor<T>& x, float alpha, Tensor<T>& y) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    yv.ptr[Off(yv, a, b, c, d)] = T(alpha * float(xv.ptr[Off(xv, a, b, c, d)]));
  });
}

template <typename T>
void BiasBackwardDW(const Tensor<T>& dy, Tensor<T>& db) {
  // Accumulate in fp32 scratch indexed by db's layout, then round once.
  std::vector<float> acc(static_cast<std::size_t>(db.size()), 0.0f);
  const auto ld = LoopOverOutput(dy.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto dbv = View<T, 4>::Bind(db, ld.names);  // stride 0 on reduced dims
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    acc[static_cast<std::size_t>(Off(dbv, a, b, c, d))] +=
        float(dyv.ptr[Off(dyv, a, b, c, d)]);
  });
  for (std::int64_t i = 0; i < db.size(); ++i) {
    db.data()[i] = T(acc[static_cast<std::size_t>(i)]);
  }
}

template <typename T>
void ReluBackwardDX(const Tensor<T>& dy, const Tensor<T>& y, Tensor<T>& dx) {
  const auto ld = LoopOverOutput(dx.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto yv = View<const T, 4>::Bind(y, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    const bool active = float(yv.ptr[Off(yv, a, b, c, d)]) > 0.0f;
    dxv.ptr[Off(dxv, a, b, c, d)] =
        active ? dyv.ptr[Off(dyv, a, b, c, d)] : T(0.0f);
  });
}

template <typename T>
void DropoutBackwardDX(const Tensor<T>& dy, const Tensor<T>& mask,
                       float keep_scale, Tensor<T>& dx) {
  const auto ld = LoopOverOutput(dx.shape());
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto mv = View<const T, 4>::Bind(mask, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    dxv.ptr[Off(dxv, a, b, c, d)] =
        T(float(dyv.ptr[Off(dyv, a, b, c, d)]) *
          float(mv.ptr[Off(mv, a, b, c, d)]) * keep_scale);
  });
}

#define XFLOW_INSTANTIATE_ELEMENTWISE(T)                                      \
  template void BiasForward<T>(const Tensor<T>&, const Tensor<T>&,            \
                               Tensor<T>&);                                   \
  template void ReluForward<T>(const Tensor<T>&, Tensor<T>&);                 \
  template void DropoutForward<T>(const Tensor<T>&, const DropoutMask&,       \
                                  Tensor<T>&, Tensor<T>&);                    \
  template void ResidualForward<T>(const Tensor<T>&, const Tensor<T>&,        \
                                   Tensor<T>&);                               \
  template void ScaleForward<T>(const Tensor<T>&, float, Tensor<T>&);         \
  template void BiasBackwardDW<T>(const Tensor<T>&, Tensor<T>&);              \
  template void ReluBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,         \
                                  Tensor<T>&);                                \
  template void DropoutBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,      \
                                     float, Tensor<T>&)

XFLOW_INSTANTIATE_ELEMENTWISE(Half);
XFLOW_INSTANTIATE_ELEMENTWISE(float);
#undef XFLOW_INSTANTIATE_ELEMENTWISE

}  // namespace xflow::ops
