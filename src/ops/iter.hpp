// Iteration helpers for layout-agnostic CPU kernels.
//
// Kernels iterate in the memory order of their primary output (for locality)
// while addressing every operand through per-dimension strides, so any data
// layout executes correctly -- layout only affects speed, as on the GPU.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace xflow::ops {

/// Strided accessor over up to four named loop dimensions. Dimensions the
/// tensor lacks get stride 0 (broadcast); extra tensor dims are not allowed.
template <typename T, int N>
struct View {
  T* ptr = nullptr;
  std::array<std::int64_t, N> stride{};

  template <typename TensorLike>
  static View Bind(TensorLike& t, const std::array<char, N>& dims) {
    View v;
    v.ptr = t.data();
    for (int d = 0; d < N; ++d) {
      v.stride[static_cast<std::size_t>(d)] =
          t.shape().has(dims[static_cast<std::size_t>(d)])
              ? t.stride(dims[static_cast<std::size_t>(d)])
              : 0;
    }
    return v;
  }
};

/// The subset `wanted` of dimension names, ordered as they appear in
/// `shape`'s memory order (outermost first). Used to pick loop order.
inline std::string OrderedSubset(const Shape& shape, std::string_view wanted) {
  std::string out;
  for (const auto& d : shape.dims()) {
    if (wanted.find(d.name) != std::string_view::npos) out += d.name;
  }
  require(out.size() == wanted.size(),
          "output tensor must contain all loop dimensions");
  return out;
}

/// Strides of a *canonical* (alphabetically ordered, row-major) layout of
/// `shape`. Dropout masks are indexed canonically so that the same element
/// keeps/drops regardless of the layout a kernel runs in.
inline std::array<std::int64_t, 4> CanonicalStrides(
    const Shape& shape, const std::array<char, 4>& dims) {
  std::string sorted;
  for (const auto& d : shape.dims()) sorted += d.name;
  std::sort(sorted.begin(), sorted.end());
  std::array<std::int64_t, 4> out{};
  for (int d = 0; d < 4; ++d) {
    const char name = dims[static_cast<std::size_t>(d)];
    if (!shape.has(name)) {
      out[static_cast<std::size_t>(d)] = 0;
      continue;
    }
    std::int64_t acc = 1;
    for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
      if (*it == name) break;
      acc *= shape.extent(*it);
    }
    out[static_cast<std::size_t>(d)] = acc;
  }
  return out;
}

}  // namespace xflow::ops
