// Unfused element-wise operators (the ○ class): bias, ReLU, dropout,
// residual, scale, and their backward variants. Any operand layout is
// accepted; iteration follows the output's memory order.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace xflow::ops {

/// y = x + bias, broadcasting bias over the dims it lacks.
template <typename T>
void BiasForward(const Tensor<T>& x, const Tensor<T>& bias, Tensor<T>& y);

/// y = max(x, 0).
template <typename T>
void ReluForward(const Tensor<T>& x, Tensor<T>& y);

/// Inverted dropout: y = keep ? x / (1-p) : 0. Also materializes the mask
/// (1/0) for the backward pass, as the paper's dropout operators do. Masks
/// are indexed canonically, so results are layout-independent.
template <typename T>
void DropoutForward(const Tensor<T>& x, const DropoutMask& mask, Tensor<T>& y,
                    Tensor<T>& mask_out);

/// y = a + b.
template <typename T>
void ResidualForward(const Tensor<T>& a, const Tensor<T>& b, Tensor<T>& y);

/// y = alpha * x.
template <typename T>
void ScaleForward(const Tensor<T>& x, float alpha, Tensor<T>& y);

/// db = sum of dy over the dims db lacks (bias gradient).
template <typename T>
void BiasBackwardDW(const Tensor<T>& dy, Tensor<T>& db);

/// dx = dy where the saved forward output y was positive, else 0.
template <typename T>
void ReluBackwardDX(const Tensor<T>& dy, const Tensor<T>& y, Tensor<T>& dx);

/// dx = dy * mask / (1-p).
template <typename T>
void DropoutBackwardDX(const Tensor<T>& dy, const Tensor<T>& mask,
                       float keep_scale, Tensor<T>& dx);

}  // namespace xflow::ops
