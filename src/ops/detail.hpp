// Shared kernel-execution engine for the memory-bound operators.
//
// Every kernel in src/ops/ runs through the drivers in this header instead
// of hand-rolled loop nests. The iteration space is always a padded 4-deep
// loop (LoopDims); the outer three dims form independent *rows* and the
// fourth (innermost) dim is walked entirely by the thread that owns the
// row. Rows are partitioned over the persistent thread pool, which makes
// the whole ops layer scale with cores while keeping results bitwise
// identical at every thread count:
//
//  * ParallelRows -- map kernels. Each output element is written by
//    exactly one thread and the per-element arithmetic does not depend on
//    the partitioning, so any grain is deterministic.
//  * ParallelReduceRows -- cross-row reductions (bias gradients, dgamma /
//    dbeta). Rows are split into a *fixed* number of chunks derived only
//    from the row count (never the thread count); each chunk accumulates
//    its rows in order into a private fp32 partial, and partials are
//    combined in chunk order. The floating-point summation tree is
//    therefore a pure function of the loop extents, so results are bitwise
//    stable across thread counts *and* fused kernels match their unfused
//    pipelines exactly (both iterate the same extents).
//
// The Row accessor provides the contiguous-innermost fast path: kernels
// dispatch once per call on "is every innermost stride 1" and the unit
// variant compiles to a plain pointer walk the vectorizer can handle,
// instead of a strided multiply per element.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/threadpool.hpp"
#include "ops/iter.hpp"

namespace xflow::ops::detail {

/// Loop dimensions of a kernel: up to four named dims plus '\0'-named
/// padding of extent 1. Padding slots bind to stride 0 in every View and
/// contribute index 0, so where they sit never changes the elements
/// visited -- only which slots form rows.
struct LoopDims {
  std::array<char, 4> names{};
  std::array<std::int64_t, 4> extents{1, 1, 1, 1};
};

/// Loop over the output's dims in memory order, right-aligned so the
/// output's innermost (contiguous) dim always lands in the fourth slot and
/// padding occupies the outer slots. Rows then have the full memory-order
/// width of the tensor, which is what the fast path wants.
inline LoopDims LoopOverOutput(const Shape& out_shape) {
  require(out_shape.rank() <= 4, "kernels support rank <= 4");
  LoopDims ld;
  const auto& dims = out_shape.dims();
  const std::size_t pad = 4 - dims.size();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    ld.names[pad + d] = dims[d].name;
    ld.extents[pad + d] = dims[d].extent;
  }
  return ld;
}

/// Loop with `inner_dim` pinned to the fourth slot and the remaining dims
/// of `shape` in memory order in slots 0..2. Reduction-then-map kernels
/// (softmax, layernorm, the fused LN family) use this so the reduced dim
/// is walked by one thread while rows parallelize.
inline LoopDims LoopWithInnermost(const Shape& shape, char inner_dim) {
  require(shape.rank() <= 4, "kernels support rank <= 4");
  require(shape.has(inner_dim), "tensor lacks the innermost loop dimension");
  LoopDims ld;
  std::size_t slot = 0;
  for (const auto& d : shape.dims()) {
    if (d.name == inner_dim) continue;
    ld.names[slot] = d.name;
    ld.extents[slot] = d.extent;
    ++slot;
  }
  ld.names[3] = inner_dim;
  ld.extents[3] = shape.extent(inner_dim);
  return ld;
}

template <typename T>
inline std::int64_t Off(const View<T, 4>& v, std::int64_t a, std::int64_t b,
                        std::int64_t c, std::int64_t d) {
  return a * v.stride[0] + b * v.stride[1] + c * v.stride[2] + d * v.stride[3];
}

inline std::int64_t Dot(const std::array<std::int64_t, 4>& s, std::int64_t a,
                        std::int64_t b, std::int64_t c, std::int64_t d) {
  return a * s[0] + b * s[1] + c * s[2] + d * s[3];
}

/// Strided row accessor: base pointer for a fixed (a, b, c) plus the
/// innermost stride. The kUnit specialization is the contiguous fast path
/// -- a literal p[d] the compiler can vectorize.
template <bool kUnit, typename T>
struct Row {
  T* p;
  std::int64_t s;
  T& operator[](std::int64_t d) const {
    if constexpr (kUnit) {
      return p[d];
    } else {
      return p[d * s];
    }
  }
};

template <bool kUnit, typename T>
inline Row<kUnit, T> RowOf(const View<T, 4>& v, std::int64_t a,
                           std::int64_t b, std::int64_t c) {
  return {v.ptr + a * v.stride[0] + b * v.stride[1] + c * v.stride[2],
          v.stride[3]};
}

/// True when every given view walks the innermost loop at unit stride.
/// Pass only the views that should gate the fast path: operands that may
/// broadcast along the innermost dim (stride 0, e.g. a bias whose dim is
/// not the output's innermost) should instead keep a Row<false> accessor,
/// so they don't forfeit the fast path for everything else; mean/rstd
/// style views read only at d = 0 are addressed via Off directly.
template <typename... V>
inline bool UnitInner(const V&... v) {
  return ((v.stride[3] == 1) && ...);
}

/// Runs fn(std::true_type) when `unit`, fn(std::false_type) otherwise, so
/// a kernel's row body is compiled twice and the contiguous variant keeps
/// no per-element stride arithmetic.
template <typename Fn>
inline void DispatchUnit(bool unit, Fn&& fn) {
  if (unit) {
    fn(std::true_type{});
  } else {
    fn(std::false_type{});
  }
}

inline std::int64_t RowsOf(const std::array<std::int64_t, 4>& e) {
  return e[0] * e[1] * e[2];
}

/// Target work-item size handed to the pool: chunks of rows totalling at
/// least this many innermost elements, so dispatch overhead stays
/// negligible for skinny rows. Grain only changes which thread runs a row,
/// never the arithmetic, so it is determinism-neutral.
constexpr std::int64_t kRowGrainElems = 2048;

/// Runs fn(a, b, c) for every row, partitioned over the global pool. The
/// body owns the entire innermost loop of its row.
template <typename Fn>
inline void ParallelRows(const std::array<std::int64_t, 4>& e, Fn&& fn) {
  const std::int64_t rows = RowsOf(e);
  if (rows <= 0) return;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kRowGrainElems / std::max<std::int64_t>(1, e[3]));
  const std::int64_t bc = e[1] * e[2];
  xflow::ParallelFor(rows, grain, [&](std::int64_t r) {
    fn(r / bc, (r % bc) / e[2], r % e[2]);
  });
}

/// Fixed chunk count for deterministic reductions: a pure function of the
/// row count (never the thread count or pool state), so the combine tree
/// is identical for every run over the same extents.
inline std::int64_t ReduceChunks(std::int64_t rows) {
  constexpr std::int64_t kMaxChunks = 64;
  return std::min<std::int64_t>(rows, kMaxChunks);
}

/// Deterministic parallel reduction over rows into a caller-zeroed fp32
/// accumulator. row_fn(a, b, c, acc) must fold one row into `acc` (and may
/// also write row-exclusive outputs, e.g. a fused dX stream). Each fixed
/// chunk of rows accumulates in row order into a private partial of
/// acc.size() floats; partials are then added into `acc` in chunk order.
/// Partials are padded out to cache-line multiples so concurrent chunks
/// never false-share -- padding changes memory placement only, never the
/// combine order, so it is determinism-neutral.
template <typename RowFn>
inline void ParallelReduceRows(const std::array<std::int64_t, 4>& e,
                               std::span<float> acc, RowFn&& row_fn) {
  const std::int64_t rows = RowsOf(e);
  if (rows <= 0) return;
  const std::int64_t bc = e[1] * e[2];
  auto run_rows = [&](std::int64_t begin, std::int64_t end, float* partial) {
    for (std::int64_t r = begin; r < end; ++r) {
      row_fn(r / bc, (r % bc) / e[2], r % e[2], partial);
    }
  };
  const std::int64_t chunks = ReduceChunks(rows);
  if (chunks <= 1) {
    run_rows(0, rows, acc.data());
    return;
  }
  constexpr std::size_t kLineFloats = 64 / sizeof(float);
  const std::size_t stride =
      (acc.size() + kLineFloats - 1) / kLineFloats * kLineFloats;
  std::vector<float> partials(static_cast<std::size_t>(chunks) * stride,
                              0.0f);
  xflow::ParallelFor(chunks, 1, [&](std::int64_t ci) {
    run_rows(rows * ci / chunks, rows * (ci + 1) / chunks,
             partials.data() + static_cast<std::size_t>(ci) * stride);
  });
  for (std::int64_t ci = 0; ci < chunks; ++ci) {
    const float* p = partials.data() + static_cast<std::size_t>(ci) * stride;
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += p[i];
  }
}

/// Shared bias-gradient reduction: folds dy over every dim the gradient
/// view lacks (stride 0), accumulating part[extra_base + Off(dbv, ...)].
/// One definition keeps the combine tree identical across BiasBackwardDW,
/// the fused BDRB bias stream, and the stacked AttnInputBias gradient --
/// which is what makes their fused==unfused bitwise matches hold.
template <typename T>
inline void ReduceBiasRows(const LoopDims& ld, const View<const T, 4>& dyv,
                           const View<T, 4>& dbv, std::int64_t extra_base,
                           std::span<float> acc) {
  const std::int64_t n = ld.extents[3];
  DispatchUnit(UnitInner(dyv), [&](auto unit) {
    constexpr bool kU = decltype(unit)::value;
    ParallelReduceRows(ld.extents, acc,
                       [&](std::int64_t a, std::int64_t b, std::int64_t c,
                           float* part) {
      const auto dyr = RowOf<kU>(dyv, a, b, c);
      const std::int64_t base = extra_base + Off(dbv, a, b, c, 0);
      for (std::int64_t d = 0; d < n; ++d) {
        part[base + d * dbv.stride[3]] += float(dyr[d]);
      }
    });
  });
}

}  // namespace xflow::ops::detail
