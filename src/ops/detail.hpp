// Shared kernel plumbing: 4-deep nested loops over a padded dimension list.
#pragma once

#include <array>
#include <cstdint>

#include "ops/iter.hpp"

namespace xflow::ops::detail {

/// Loop dimensions of a kernel: the output's dims in memory order, padded to
/// four entries ('\0' with extent 1).
struct LoopDims {
  std::array<char, 4> names{};
  std::array<std::int64_t, 4> extents{1, 1, 1, 1};
};

inline LoopDims LoopOverOutput(const Shape& out_shape) {
  require(out_shape.rank() <= 4, "kernels support rank <= 4");
  LoopDims ld;
  const auto& dims = out_shape.dims();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    ld.names[d] = dims[d].name;
    ld.extents[d] = dims[d].extent;
  }
  return ld;
}

template <typename Fn>
inline void For4(const std::array<std::int64_t, 4>& e, Fn&& fn) {
  for (std::int64_t a = 0; a < e[0]; ++a) {
    for (std::int64_t b = 0; b < e[1]; ++b) {
      for (std::int64_t c = 0; c < e[2]; ++c) {
        for (std::int64_t d = 0; d < e[3]; ++d) fn(a, b, c, d);
      }
    }
  }
}

template <typename T>
inline std::int64_t Off(const View<T, 4>& v, std::int64_t a, std::int64_t b,
                        std::int64_t c, std::int64_t d) {
  return a * v.stride[0] + b * v.stride[1] + c * v.stride[2] + d * v.stride[3];
}

inline std::int64_t Dot(const std::array<std::int64_t, 4>& s, std::int64_t a,
                        std::int64_t b, std::int64_t c, std::int64_t d) {
  return a * s[0] + b * s[1] + c * s[2] + d * s[3];
}

}  // namespace xflow::ops::detail
