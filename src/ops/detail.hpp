// Shared kernel-execution engine for the memory-bound operators.
//
// Every kernel in src/ops/ runs through the drivers in this header instead
// of hand-rolled loop nests. The iteration space is always a padded 4-deep
// loop (LoopDims); the outer three dims form independent *rows* and the
// fourth (innermost) dim is walked entirely by the thread that owns the
// row. Rows are partitioned over the persistent thread pool, which makes
// the whole ops layer scale with cores while keeping results bitwise
// identical at every thread count.
//
// A kernel declares its operands as view specs and provides one generic
// row body:
//
//   ForEachRow(ld, [&](a, b, c, xr, yr) { ... }, In{xv}, Out{yv});
//
//  * In / Out operands are handed to the body as unit-stride Row<true>
//    accessors, always. When every In/Out innermost stride is 1 the
//    accessors point straight at tensor memory (the contiguous fast path:
//    a plain pointer walk the vectorizer handles, helped along by the
//    XFLOW_SIMD row helpers below). When any stride is not 1, the engine
//    switches to the *transpose-on-the-fly* path: rows are processed in
//    tiles of kTileRows, each strided operand's tile is gathered into
//    per-thread contiguous scratch (ThreadScratch) with a cache-blocked
//    loop order, the same body runs on the scratch rows, and staged
//    outputs are scattered back. Staging is a pure copy, so both paths
//    execute the identical body instantiation -- strided layouts produce
//    bitwise the same values as contiguous ones, and fused kernels match
//    their unfused pipelines on every layout.
//  * Pass operands keep a strided Row<false> accessor and never gate or
//    join the staging: use it for operands that may broadcast along the
//    innermost dim (stride 0, e.g. a bias whose dim is not the output's
//    innermost). Row-scalar views (mean / rstd) read at d = 0 are
//    addressed via Off directly inside the body.
//
// Requirements on the body: it may write an Out row only (no
// read-modify-write of prior memory contents, though reading back values
// it wrote earlier in the same call is fine), and it must write every
// element of each Out row -- staged tiles are scattered in full.
//
// Cross-row reductions (bias gradients, dgamma / dbeta) use
// ForEachRowReduce: rows are split into a *fixed* number of chunks derived
// only from the row count (never the thread count); each chunk accumulates
// its rows in order into a private fp32 partial, and partials are combined
// in chunk order. The floating-point summation tree is therefore a pure
// function of the loop extents, so results are bitwise stable across
// thread counts *and* fused kernels match their unfused pipelines exactly
// (both iterate the same extents).
//
// Horizontal reductions *within* a row (softmax max, layernorm moments,
// the dX dot products) go through the Row* helpers below: fixed-width
// lane accumulators whose summation tree depends only on the extent, so
// the vectorized tree is identical everywhere it must match -- fused and
// unfused, staged and contiguous, any buffer alignment.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/function_ref.hpp"
#include "common/threadpool.hpp"
#include "ops/iter.hpp"

// SIMD hint layer: compiled with -fopenmp-simd (no OpenMP runtime) when the
// toolchain supports it; otherwise the pragma vanishes and the loops run
// scalar with bitwise-identical results -- every loop under XFLOW_SIMD is
// either element-wise independent or a fixed-lane accumulation, so
// vectorization never changes the arithmetic, only the speed.
#if defined(XFLOW_HAVE_OPENMP_SIMD)
#define XFLOW_PRAGMA(x) _Pragma(#x)
#define XFLOW_SIMD XFLOW_PRAGMA(omp simd)
#else
#define XFLOW_SIMD
#endif

namespace xflow::ops::detail {

/// Loop dimensions of a kernel: up to four named dims plus '\0'-named
/// padding of extent 1. Padding slots bind to stride 0 in every View and
/// contribute index 0, so where they sit never changes the elements
/// visited -- only which slots form rows.
///
/// Invariant: padding always occupies the *outer* slots. Both drivers
/// below right-align the real dims against slot 3, so rows pack densest at
/// the inner end and row decoding / staging never straddles padding.
struct LoopDims {
  std::array<char, 4> names{};
  std::array<std::int64_t, 4> extents{1, 1, 1, 1};
};

/// Loop over the output's dims in memory order, right-aligned so the
/// output's innermost (contiguous) dim always lands in the fourth slot.
/// Rows then have the full memory-order width of the tensor, which is what
/// the fast path wants.
inline LoopDims LoopOverOutput(const Shape& out_shape) {
  require(out_shape.rank() <= 4, "kernels support rank <= 4");
  LoopDims ld;
  const auto& dims = out_shape.dims();
  const std::size_t pad = 4 - dims.size();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    ld.names[pad + d] = dims[d].name;
    ld.extents[pad + d] = dims[d].extent;
  }
  return ld;
}

/// Loop with `inner_dim` pinned to the fourth slot and the remaining dims
/// of `shape` in memory order, right-aligned against it (same padding
/// invariant as LoopOverOutput). Reduction-then-map kernels (softmax,
/// layernorm, the fused LN family) use this so the reduced dim is walked
/// by one thread while rows parallelize.
inline LoopDims LoopWithInnermost(const Shape& shape, char inner_dim) {
  require(shape.rank() <= 4, "kernels support rank <= 4");
  require(shape.has(inner_dim), "tensor lacks the innermost loop dimension");
  LoopDims ld;
  std::size_t slot = 4 - shape.rank();
  for (const auto& d : shape.dims()) {
    if (d.name == inner_dim) continue;
    ld.names[slot] = d.name;
    ld.extents[slot] = d.extent;
    ++slot;
  }
  ld.names[3] = inner_dim;
  ld.extents[3] = shape.extent(inner_dim);
  return ld;
}

template <typename T>
inline std::int64_t Off(const View<T, 4>& v, std::int64_t a, std::int64_t b,
                        std::int64_t c, std::int64_t d) {
  return a * v.stride[0] + b * v.stride[1] + c * v.stride[2] + d * v.stride[3];
}

inline std::int64_t Dot(const std::array<std::int64_t, 4>& s, std::int64_t a,
                        std::int64_t b, std::int64_t c, std::int64_t d) {
  return a * s[0] + b * s[1] + c * s[2] + d * s[3];
}

/// Strided row accessor: base pointer for a fixed (a, b, c) plus the
/// innermost stride. The kUnit specialization is the contiguous fast path
/// -- a literal p[d] the compiler can vectorize.
template <bool kUnit, typename T>
struct Row {
  T* p = nullptr;
  std::int64_t s = 0;
  T& operator[](std::int64_t d) const {
    if constexpr (kUnit) {
      return p[d];
    } else {
      return p[d * s];
    }
  }
};

template <bool kUnit, typename T>
inline Row<kUnit, T> RowOf(const View<T, 4>& v, std::int64_t a,
                           std::int64_t b, std::int64_t c) {
  return {v.ptr + a * v.stride[0] + b * v.stride[1] + c * v.stride[2],
          v.stride[3]};
}

// ------------------------------------------------------- row reduction
// fp32 horizontal reductions over one row. All kernels -- fused and
// unfused -- compute these quantities through the helpers below, never
// with ad-hoc loops. Each helper accumulates into a fixed kRowLanes-wide
// lane array (element k always lands in lane k % kRowLanes) and combines
// the lanes in index order at the end. The summation tree is therefore a
// pure function of the extent n: independent of pointer alignment (no
// vectorizer peeling can reorder it), of whether the row is staged scratch
// or tensor memory, and of whether the build vectorizes at all -- while
// still giving the compiler an embarrassingly-vectorizable inner loop.

constexpr int kRowLanes = 8;  // one AVX2 fp32 vector

/// max over k of scale * r[k].
template <typename R>
inline float RowMax(const R& r, std::int64_t n, float scale) {
  alignas(32) float lane[kRowLanes];
  for (int j = 0; j < kRowLanes; ++j) {
    lane[j] = -std::numeric_limits<float>::infinity();
  }
  std::int64_t k = 0;
  for (; k + kRowLanes <= n; k += kRowLanes) {
    XFLOW_SIMD
    for (int j = 0; j < kRowLanes; ++j) {
      lane[j] = std::max(lane[j], scale * float(r[k + j]));
    }
  }
  for (int j = 0; k < n; ++k, ++j) {
    lane[j] = std::max(lane[j], scale * float(r[k]));
  }
  float m = lane[0];
  for (int j = 1; j < kRowLanes; ++j) m = std::max(m, lane[j]);
  return m;
}

/// sum and sum of squares of r[k] (layernorm moments).
template <typename R>
inline void RowMoments(const R& r, std::int64_t n, float* sum,
                       float* sum_sq) {
  alignas(32) float ls[kRowLanes] = {};
  alignas(32) float lss[kRowLanes] = {};
  std::int64_t k = 0;
  for (; k + kRowLanes <= n; k += kRowLanes) {
    XFLOW_SIMD
    for (int j = 0; j < kRowLanes; ++j) {
      const float v = float(r[k + j]);
      ls[j] += v;
      lss[j] += v * v;
    }
  }
  for (int j = 0; k < n; ++k, ++j) {
    const float v = float(r[k]);
    ls[j] += v;
    lss[j] += v * v;
  }
  float s = 0, ss = 0;
  for (int j = 0; j < kRowLanes; ++j) {
    s += ls[j];
    ss += lss[j];
  }
  *sum = s;
  *sum_sq = ss;
}

/// sum over k of a[k] * b[k] (softmax dX inner product).
template <typename RA, typename RB>
inline float RowDot(const RA& a, const RB& b, std::int64_t n) {
  alignas(32) float lane[kRowLanes] = {};
  std::int64_t k = 0;
  for (; k + kRowLanes <= n; k += kRowLanes) {
    XFLOW_SIMD
    for (int j = 0; j < kRowLanes; ++j) {
      lane[j] += float(a[k + j]) * float(b[k + j]);
    }
  }
  for (int j = 0; k < n; ++k, ++j) lane[j] += float(a[k]) * float(b[k]);
  float s = 0;
  for (int j = 0; j < kRowLanes; ++j) s += lane[j];
  return s;
}

/// sum_g = sum dy*g and sum_gx = sum dy*g*(x-mu)*rs -- the two layernorm
/// dX reductions. Shared by LayerNormBackwardDX and the fused
/// LayerNormDropoutBackward so their dX streams stay bitwise equal.
template <typename RD, typename RG, typename RX>
inline void RowNormDots(const RD& dyr, const RG& gr, const RX& xr, float mu,
                        float rs, std::int64_t n, float* sum_g,
                        float* sum_gx) {
  alignas(32) float lg[kRowLanes] = {};
  alignas(32) float lgx[kRowLanes] = {};
  std::int64_t k = 0;
  for (; k + kRowLanes <= n; k += kRowLanes) {
    XFLOW_SIMD
    for (int j = 0; j < kRowLanes; ++j) {
      const float g = float(dyr[k + j]) * float(gr[k + j]);
      const float xhat = (float(xr[k + j]) - mu) * rs;
      lg[j] += g;
      lgx[j] += g * xhat;
    }
  }
  for (int j = 0; k < n; ++k, ++j) {
    const float g = float(dyr[k]) * float(gr[k]);
    const float xhat = (float(xr[k]) - mu) * rs;
    lg[j] += g;
    lgx[j] += g * xhat;
  }
  float sg = 0, sgx = 0;
  for (int j = 0; j < kRowLanes; ++j) {
    sg += lg[j];
    sgx += lgx[j];
  }
  *sum_g = sg;
  *sum_gx = sgx;
}

/// sum over k of (da[k] * m[k] * keep_scale) * s[k] -- the scaled-softmax
/// dX inner product through the dropout mask.
template <typename RA, typename RM, typename RS>
inline float RowDropoutDot(const RA& dar, const RM& mr, const RS& sr,
                           float keep_scale, std::int64_t n) {
  alignas(32) float lane[kRowLanes] = {};
  std::int64_t k = 0;
  for (; k + kRowLanes <= n; k += kRowLanes) {
    XFLOW_SIMD
    for (int j = 0; j < kRowLanes; ++j) {
      const float ds = float(dar[k + j]) * float(mr[k + j]) * keep_scale;
      lane[j] += ds * float(sr[k + j]);
    }
  }
  for (int j = 0; k < n; ++k, ++j) {
    const float ds = float(dar[k]) * float(mr[k]) * keep_scale;
    lane[j] += ds * float(sr[k]);
  }
  float acc = 0;
  for (int j = 0; j < kRowLanes; ++j) acc += lane[j];
  return acc;
}

// ------------------------------------------------------- parallel rows

inline std::int64_t RowsOf(const std::array<std::int64_t, 4>& e) {
  return e[0] * e[1] * e[2];
}

/// Target work-item size handed to the pool: chunks of rows totalling at
/// least this many innermost elements, so dispatch overhead stays
/// negligible for skinny rows. Grain only changes which thread runs a row,
/// never the arithmetic, so it is determinism-neutral.
constexpr std::int64_t kRowGrainElems = 2048;

/// Runs fn(a, b, c) for every row, partitioned over the global pool. The
/// body owns the entire innermost loop of its row. Non-owning on purpose
/// (FunctionRef): one instantiation serves every kernel and the loop
/// launch carries no std::function allocation or double indirection.
inline void ParallelRows(
    const std::array<std::int64_t, 4>& e,
    FunctionRef<void(std::int64_t, std::int64_t, std::int64_t)> fn) {
  const std::int64_t rows = RowsOf(e);
  if (rows <= 0) return;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kRowGrainElems / std::max<std::int64_t>(1, e[3]));
  const std::int64_t bc = e[1] * e[2];
  xflow::ParallelFor(rows, grain, [&](std::int64_t r) {
    fn(r / bc, (r % bc) / e[2], r % e[2]);
  });
}

// ------------------------------------------------ transpose-on-the-fly
// Staging tiles: kTileRows rows of a strided operand are copied through
// per-thread contiguous scratch so the row bodies always walk unit-stride
// memory. 32 rows make a transposed gather consume each fetched cache
// line in full (32 x 2 B fp16 = one 64 B line) and give page-strided
// layouts kTileRows uses per TLB entry instead of one; the 64-column
// blocks bound the strided footprint per sweep. Tiles of a few operands
// land in L2 (e.g. 32 x 2048 fp16 = 128 KB per operand at the bench's
// extreme row length; typical transformer rows are far smaller).

constexpr std::int64_t kTileRows = 32;
constexpr std::int64_t kTileCols = 64;

/// Scratch leading dimension for rows of n elements: one cache line of
/// padding between consecutive scratch rows, so power-of-two row lengths
/// (the common transformer extents) do not alias all tile rows onto the
/// same L1 set during the transposed gather.
template <typename T>
inline std::int64_t ScratchRowElems(std::int64_t n) {
  return n + static_cast<std::int64_t>(64 / sizeof(T));
}

/// Copies nrows strided source rows of length n (innermost stride
/// `stride`, per-row base offsets `base`) into contiguous buf rows
/// (buf[r * ldb + k]). Loop order follows the smaller memory distance:
/// when the tile's rows sit closer together than its columns (the
/// transposed-tensor case, uniform base delta < stride), columns walk the
/// outer loop so each cache line / TLB page fetched for a column serves
/// every row of the tile before the walk moves on -- kTileRows is sized so
/// such a fetch is consumed in full; otherwise rows walk the outer loop
/// over kTileCols-column blocks.
template <typename T>
inline void GatherTile(const T* p, const std::int64_t* base,
                       std::int64_t nrows, std::int64_t n, std::int64_t stride,
                       T* buf, std::int64_t ldb) {
  const std::int64_t delta = nrows > 1 ? base[1] - base[0] : 0;
  bool uniform = nrows > 1;
  for (std::int64_t r = 2; r < nrows; ++r) {
    uniform = uniform && base[r] - base[r - 1] == delta;
  }
  if (uniform && delta >= 0 && delta < stride) {
    const T* p0 = p + base[0];
    for (std::int64_t k = 0; k < n; ++k) {
      const T* src = p0 + k * stride;
      T* dst = buf + k;
      for (std::int64_t r = 0; r < nrows; ++r) dst[r * ldb] = src[r * delta];
    }
  } else {
    for (std::int64_t k0 = 0; k0 < n; k0 += kTileCols) {
      const std::int64_t k1 = std::min(k0 + kTileCols, n);
      for (std::int64_t r = 0; r < nrows; ++r) {
        const T* src = p + base[r];
        T* dst = buf + r * ldb;
        XFLOW_SIMD
        for (std::int64_t k = k0; k < k1; ++k) dst[k] = src[k * stride];
      }
    }
  }
}

/// Inverse of GatherTile: writes contiguous buf rows back to the strided
/// destination, with the same orientation choice.
template <typename T>
inline void ScatterTile(const T* buf, const std::int64_t* base,
                        std::int64_t nrows, std::int64_t n,
                        std::int64_t stride, T* p, std::int64_t ldb) {
  const std::int64_t delta = nrows > 1 ? base[1] - base[0] : 0;
  bool uniform = nrows > 1;
  for (std::int64_t r = 2; r < nrows; ++r) {
    uniform = uniform && base[r] - base[r - 1] == delta;
  }
  if (uniform && delta >= 0 && delta < stride) {
    T* p0 = p + base[0];
    for (std::int64_t k = 0; k < n; ++k) {
      const T* src = buf + k;
      T* dst = p0 + k * stride;
      for (std::int64_t r = 0; r < nrows; ++r) dst[r * delta] = src[r * ldb];
    }
  } else {
    for (std::int64_t k0 = 0; k0 < n; k0 += kTileCols) {
      const std::int64_t k1 = std::min(k0 + kTileCols, n);
      for (std::int64_t r = 0; r < nrows; ++r) {
        const T* src = buf + r * ldb;
        T* dst = p + base[r];
        XFLOW_SIMD
        for (std::int64_t k = k0; k < k1; ++k) dst[k * stride] = src[k];
      }
    }
  }
}

// ----------------------------------------------------------- view specs

/// Operand read along the row. The body receives a unit-stride accessor
/// (staged through scratch when the view's innermost stride is not 1).
template <typename T>
struct In {
  View<const T, 4> v;
  using Elem = const T;
  using RowT = Row<true, const T>;
  static constexpr bool kStaged = true;
  static constexpr bool kWrite = false;
};
template <typename T>
In(View<const T, 4>) -> In<T>;

/// Operand written along the row (write-only; see the header comment for
/// the body's obligations). Unit-stride accessor, scattered back from
/// scratch when the view is strided.
template <typename T>
struct Out {
  View<T, 4> v;
  using Elem = T;
  using RowT = Row<true, T>;
  static constexpr bool kStaged = true;
  static constexpr bool kWrite = true;
};
template <typename T>
Out(View<T, 4>) -> Out<T>;

/// Read-only operand that keeps per-element stride addressing and never
/// gates the fast path nor stages: for views that may broadcast along the
/// innermost dim (stride 0), where a unit accessor is impossible.
template <typename T>
struct Pass {
  View<const T, 4> v;
  using Elem = const T;
  using RowT = Row<false, const T>;
  static constexpr bool kStaged = false;
  static constexpr bool kWrite = false;
};
template <typename T>
Pass(View<const T, 4>) -> Pass<T>;

/// True when this spec is satisfied by direct (unstaged) unit addressing.
template <typename Spec>
inline bool SpecUnit(const Spec& s) {
  return !Spec::kStaged || s.v.stride[3] == 1;
}

/// The accessor handed to the body on the direct (unstaged) paths.
template <typename Spec>
inline typename Spec::RowT DirectRow(const Spec& s, std::int64_t a,
                                     std::int64_t b, std::int64_t c) {
  if constexpr (Spec::kStaged) {
    return {s.v.ptr + a * s.v.stride[0] + b * s.v.stride[1] +
                c * s.v.stride[2],
            1};
  } else {
    return RowOf<false>(s.v, a, b, c);
  }
}

/// Scratch bytes this spec needs per staged tile (0 when it stages
/// nothing), rounded to cache-line multiples so carved buffers stay
/// aligned.
template <typename Spec>
inline std::size_t SpecScratchBytes(const Spec& s, std::int64_t n) {
  if constexpr (Spec::kStaged) {
    if (s.v.stride[3] != 1) {
      using E = std::remove_const_t<typename Spec::Elem>;
      const std::size_t raw =
          static_cast<std::size_t>(kTileRows * ScratchRowElems<E>(n)) *
          sizeof(E);
      return (raw + 63) / 64 * 64;
    }
  }
  return 0;
}

template <typename Spec>
struct PreparedRows {
  std::array<typename Spec::RowT, kTileRows> row{};
  std::remove_const_t<typename Spec::Elem>* buf = nullptr;  // scratch tile
  std::array<std::int64_t, kTileRows> base{};               // for scatter
};

/// Executes rows [begin, end) -- at most kTileRows of them -- staging every
/// strided In/Out operand's tile through per-thread scratch and invoking
/// body(a, b, c, row...) per row with the same accessor types as the
/// direct paths.
template <typename Body, typename... Specs>
inline void StagedRows(const std::array<std::int64_t, 4>& e,
                       std::int64_t begin, std::int64_t end, Body& body,
                       const Specs&... specs) {
  const std::int64_t n = e[3];
  const std::int64_t bc = e[1] * e[2];
  const std::int64_t nrows = end - begin;
  std::array<std::int64_t, kTileRows> a{}, b{}, c{};
  for (std::int64_t r = 0; r < nrows; ++r) {
    const std::int64_t row = begin + r;
    a[r] = row / bc;
    b[r] = (row % bc) / e[2];
    c[r] = row % e[2];
  }
  const std::size_t bytes = (SpecScratchBytes(specs, n) + ... + 0u);
  std::byte* scratch =
      bytes == 0 ? nullptr : static_cast<std::byte*>(ThreadScratch(bytes));
  std::size_t cursor = 0;

  auto prepare = [&](const auto& spec) {
    using Spec = std::remove_cvref_t<decltype(spec)>;
    PreparedRows<Spec> p;
    if constexpr (!Spec::kStaged) {
      for (std::int64_t r = 0; r < nrows; ++r) {
        p.row[r] = RowOf<false>(spec.v, a[r], b[r], c[r]);
      }
    } else {
      if (spec.v.stride[3] == 1) {
        for (std::int64_t r = 0; r < nrows; ++r) {
          p.row[r] = {spec.v.ptr + Off(spec.v, a[r], b[r], c[r], 0), 1};
        }
      } else {
        using E = std::remove_const_t<typename Spec::Elem>;
        E* buf = reinterpret_cast<E*>(scratch + cursor);
        cursor += SpecScratchBytes(spec, n);
        const std::int64_t ldb = ScratchRowElems<E>(n);
        for (std::int64_t r = 0; r < nrows; ++r) {
          p.base[r] = Off(spec.v, a[r], b[r], c[r], 0);
        }
        if constexpr (!Spec::kWrite) {
          GatherTile(spec.v.ptr, p.base.data(), nrows, n, spec.v.stride[3],
                     buf, ldb);
        }
        p.buf = buf;
        for (std::int64_t r = 0; r < nrows; ++r) {
          p.row[r] = {buf + r * ldb, 1};
        }
      }
    }
    return p;
  };
  // Braced init keeps left-to-right evaluation, so scratch carving is
  // sequential.
  std::tuple<PreparedRows<std::remove_cvref_t<Specs>>...> prepared{
      prepare(specs)...};

  for (std::int64_t r = 0; r < nrows; ++r) {
    std::apply(
        [&](const auto&... p) { body(a[r], b[r], c[r], p.row[r]...); },
        prepared);
  }

  [&]<std::size_t... I>(std::index_sequence<I...>) {
    auto scatter = [&](const auto& spec, const auto& p) {
      using Spec = std::remove_cvref_t<decltype(spec)>;
      if constexpr (Spec::kStaged && Spec::kWrite) {
        if (p.buf != nullptr) {
          using E = std::remove_const_t<typename Spec::Elem>;
          ScatterTile(p.buf, p.base.data(), nrows, n, spec.v.stride[3],
                      spec.v.ptr, ScratchRowElems<E>(n));
        }
      }
    };
    (scatter(specs, std::get<I>(prepared)), ...);
  }(std::index_sequence_for<Specs...>{});
}

// --------------------------------------------------------- map drivers

/// Runs body(a, b, c, row...) for every row, partitioned over the global
/// pool. Row accessors follow the specs (see the header comment); a single
/// body instantiation serves the contiguous fast path and the staged
/// strided path alike.
template <typename Body, typename... Specs>
inline void ForEachRow(const LoopDims& ld, Body&& body, Specs... specs) {
  const auto& e = ld.extents;
  const std::int64_t rows = RowsOf(e);
  if (rows <= 0 || e[3] <= 0) return;
  if ((SpecUnit(specs) && ...)) {
    ParallelRows(e, [&](std::int64_t a, std::int64_t b, std::int64_t c) {
      body(a, b, c, DirectRow(specs, a, b, c)...);
    });
    return;
  }
  const std::int64_t groups = (rows + kTileRows - 1) / kTileRows;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kRowGrainElems / std::max<std::int64_t>(1, e[3] * kTileRows));
  xflow::ParallelFor(groups, grain, [&](std::int64_t g) {
    const std::int64_t begin = g * kTileRows;
    StagedRows(e, begin, std::min(rows, begin + kTileRows), body, specs...);
  });
}

// ------------------------------------------------------ reduce drivers

/// Fixed chunk count for deterministic reductions: a pure function of the
/// row count (never the thread count or pool state), so the combine tree
/// is identical for every run over the same extents.
inline std::int64_t ReduceChunks(std::int64_t rows) {
  constexpr std::int64_t kMaxChunks = 64;
  return std::min<std::int64_t>(rows, kMaxChunks);
}

/// Deterministic parallel reduction over row ranges into a caller-zeroed
/// fp32 accumulator. run_range(begin, end, partial) must fold rows
/// [begin, end) in order into `partial` (acc.size() floats). Each fixed
/// chunk accumulates into a private partial; partials are added into `acc`
/// in chunk order. Partials are padded out to cache-line multiples so
/// concurrent chunks never false-share -- padding changes memory placement
/// only, never the combine order, so it is determinism-neutral.
template <typename RangeFn>
inline void ParallelReduceRanges(std::int64_t rows, std::span<float> acc,
                                 RangeFn&& run_range) {
  if (rows <= 0) return;
  const std::int64_t chunks = ReduceChunks(rows);
  if (chunks <= 1) {
    run_range(0, rows, acc.data());
    return;
  }
  constexpr std::size_t kLineFloats = 64 / sizeof(float);
  const std::size_t stride =
      (acc.size() + kLineFloats - 1) / kLineFloats * kLineFloats;
  std::vector<float> partials(static_cast<std::size_t>(chunks) * stride,
                              0.0f);
  xflow::ParallelFor(chunks, 1, [&](std::int64_t ci) {
    run_range(rows * ci / chunks, rows * (ci + 1) / chunks,
              partials.data() + static_cast<std::size_t>(ci) * stride);
  });
  for (std::int64_t ci = 0; ci < chunks; ++ci) {
    const float* p = partials.data() + static_cast<std::size_t>(ci) * stride;
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += p[i];
  }
}

/// Cross-row reduction counterpart of ForEachRow:
/// body(a, b, c, part, row...) folds one row into the fp32 partial `part`
/// (and may also write row-exclusive Out streams, e.g. a fused dX).
/// Chunking follows ParallelReduceRanges; strided operands stage in tiles
/// *within* a chunk, which regroups copies but never reorders the
/// accumulation, so the combine tree stays a pure function of the extents.
template <typename Body, typename... Specs>
inline void ForEachRowReduce(const LoopDims& ld, std::span<float> acc,
                             Body&& body, Specs... specs) {
  const auto& e = ld.extents;
  const std::int64_t rows = RowsOf(e);
  if (rows <= 0 || e[3] <= 0) return;
  const std::int64_t bc = e[1] * e[2];
  const bool unit = (SpecUnit(specs) && ...);
  ParallelReduceRanges(
      rows, acc, [&](std::int64_t begin, std::int64_t end, float* part) {
        if (unit) {
          for (std::int64_t r = begin; r < end; ++r) {
            const std::int64_t a = r / bc;
            const std::int64_t b = (r % bc) / e[2];
            const std::int64_t c = r % e[2];
            body(a, b, c, part, DirectRow(specs, a, b, c)...);
          }
          return;
        }
        auto with_part = [&](std::int64_t a, std::int64_t b, std::int64_t c,
                             const auto&... row) {
          body(a, b, c, part, row...);
        };
        for (std::int64_t g = begin; g < end; g += kTileRows) {
          StagedRows(e, g, std::min(end, g + kTileRows), with_part,
                     specs...);
        }
      });
}

/// Shared bias-gradient reduction: folds dy over every dim the gradient
/// view lacks (stride 0), accumulating part[extra_base + Off(dbv, ...)].
/// One definition keeps the combine tree identical across BiasBackwardDW,
/// the fused BDRB bias stream, and the stacked AttnInputBias gradient --
/// which is what makes their fused==unfused bitwise matches hold.
template <typename T>
inline void ReduceBiasRows(const LoopDims& ld, const View<const T, 4>& dyv,
                           const View<T, 4>& dbv, std::int64_t extra_base,
                           std::span<float> acc) {
  const std::int64_t n = ld.extents[3];
  ForEachRowReduce(
      ld, acc,
      [&, n](std::int64_t a, std::int64_t b, std::int64_t c, float* part,
             const auto& dyr) {
        const std::int64_t base = extra_base + Off(dbv, a, b, c, 0);
        for (std::int64_t d = 0; d < n; ++d) {
          part[base + d * dbv.stride[3]] += float(dyr[d]);
        }
      },
      In{dyv});
}

}  // namespace xflow::ops::detail
