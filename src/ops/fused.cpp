#include "ops/fused.hpp"

#include <cmath>
#include <vector>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::For4;
using detail::LoopOverOutput;
using detail::Off;

template <typename T>
void AttnInputBias(const std::array<const Tensor<T>*, 3>& inputs,
                   const Tensor<T>& stacked_bias, char stack_dim,
                   const std::array<Tensor<T>*, 3>& outputs) {
  const std::int64_t slice = inputs[0]->extent(stack_dim);
  const std::int64_t bias_stride = stacked_bias.stride(stack_dim);
  for (std::size_t s = 0; s < 3; ++s) {
    const Tensor<T>& x = *inputs[s];
    Tensor<T>& y = *outputs[s];
    const auto ld = LoopOverOutput(y.shape());
    auto xv = View<const T, 4>::Bind(x, ld.names);
    auto bv = View<const T, 4>::Bind(stacked_bias, ld.names);
    auto yv = View<T, 4>::Bind(y, ld.names);
    const T* bias_base =
        bv.ptr + static_cast<std::int64_t>(s) * slice * bias_stride;
    For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
      yv.ptr[Off(yv, a, b, c, d)] = T(float(xv.ptr[Off(xv, a, b, c, d)]) +
                                      float(bias_base[Off(bv, a, b, c, d)]));
    });
  }
}

template <typename T>
void BiasReluDropout(const Tensor<T>& x, const Tensor<T>& bias,
                     const DropoutMask& mask, Tensor<T>& relu_saved,
                     Tensor<T>& y, Tensor<T>& mask_out) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto rv = View<T, 4>::Bind(relu_saved, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
    float v = float(xv.ptr[Off(xv, a, b, c, d)]) +
              float(bv.ptr[Off(bv, a, b, c, d)]);
    v = v > 0.0f ? v : 0.0f;
    // ReLU is saved in fp16, so the backward pass sees the rounded value:
    // recompute the dropout from that rounded number, exactly as the
    // separate-kernel pipeline would.
    const T r = T(v);
    rv.ptr[Off(rv, a, b, c, d)] = r;
    const bool keep =
        mask.Keep(static_cast<std::uint64_t>(Dot(canon, a, b, c, d)));
    yv.ptr[Off(yv, a, b, c, d)] = T(keep ? float(r) * scale : 0.0f);
    mv.ptr[Off(mv, a, b, c, d)] = T(keep ? 1.0f : 0.0f);
  });
}

template <typename T>
void BiasDropoutResidualLayerNorm(const Tensor<T>& x, const Tensor<T>& bias,
                                  const Tensor<T>& residual_in,
                                  const DropoutMask& mask,
                                  const Tensor<T>& ln_gamma,
                                  const Tensor<T>& ln_beta, char norm_dim,
                                  float eps, Tensor<T>& resid_saved,
                                  Tensor<T>& mask_out, Tensor<T>& y,
                                  TensorF& ln_mean, TensorF& ln_rstd) {
  // Loop with norm_dim innermost so the reduction-then-map structure of the
  // paper's two-loop fused kernels applies directly.
  require(y.shape().rank() <= 4, "rank <= 4");
  detail::LoopDims ld;
  std::size_t slot = 0;
  for (const auto& dim : y.shape().dims()) {
    if (dim.name == norm_dim) continue;
    ld.names[slot] = dim.name;
    ld.extents[slot] = dim.extent;
    ++slot;
  }
  ld.names[3] = norm_dim;
  ld.extents[3] = y.shape().extent(norm_dim);

  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto resinv = View<const T, 4>::Bind(residual_in, ld.names);
  auto gv = View<const T, 4>::Bind(ln_gamma, ld.names);
  auto betav = View<const T, 4>::Bind(ln_beta, ld.names);
  auto resv = View<T, 4>::Bind(resid_saved, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto meanv = View<float, 4>::Bind(ln_mean, ld.names);
  auto rstdv = View<float, 4>::Bind(ln_rstd, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);

  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        // Loop 1: bias + dropout + residual, accumulate moments.
        float sum = 0, sum_sq = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          // Match the unfused pipeline bit-for-bit: every interim that the
          // separate-kernel pipeline would write to memory (biased value,
          // dropout output) is rounded to T at the same point here.
          const float biased =
              float(T(float(xv.ptr[Off(xv, a, b, c, k)]) +
                      float(bv.ptr[Off(bv, a, b, c, k)])));
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(Dot(canon, a, b, c, k)));
          const float dropped = float(T(keep ? biased * scale : 0.0f));
          const T resid =
              T(dropped + float(resinv.ptr[Off(resinv, a, b, c, k)]));
          resv.ptr[Off(resv, a, b, c, k)] = resid;
          mv.ptr[Off(mv, a, b, c, k)] = T(keep ? 1.0f : 0.0f);
          sum += float(resid);
          sum_sq += float(resid) * float(resid);
        }
        const float mu = sum * inv_n;
        const float var = std::max(sum_sq * inv_n - mu * mu, 0.0f);
        const float rs = 1.0f / std::sqrt(var + eps);
        meanv.ptr[Off(meanv, a, b, c, 0)] = mu;
        rstdv.ptr[Off(rstdv, a, b, c, 0)] = rs;
        // Loop 2: apply the normalization.
        for (std::int64_t k = 0; k < n; ++k) {
          const float r = float(resv.ptr[Off(resv, a, b, c, k)]);
          const float g = float(gv.ptr[Off(gv, a, b, c, k)]);
          const float bb = float(betav.ptr[Off(betav, a, b, c, k)]);
          yv.ptr[Off(yv, a, b, c, k)] = T((r - mu) * rs * g + bb);
        }
      }
    }
  }
}

template <typename T>
void LayerNormDropoutBackward(const Tensor<T>& dy, const Tensor<T>& ln_gamma,
                              const Tensor<T>& x_saved, const TensorF& mean,
                              const TensorF& rstd, const Tensor<T>& drop_mask,
                              char norm_dim, float keep_scale,
                              Tensor<T>& d_resid, Tensor<T>& d_out) {
  require(d_out.shape().rank() <= 4, "rank <= 4");
  detail::LoopDims ld;
  std::size_t slot = 0;
  for (const auto& dim : d_out.shape().dims()) {
    if (dim.name == norm_dim) continue;
    ld.names[slot] = dim.name;
    ld.extents[slot] = dim.extent;
    ++slot;
  }
  ld.names[3] = norm_dim;
  ld.extents[3] = d_out.shape().extent(norm_dim);

  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto gv = View<const T, 4>::Bind(ln_gamma, ld.names);
  auto xv = View<const T, 4>::Bind(x_saved, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto mv = View<const T, 4>::Bind(drop_mask, ld.names);
  auto drv = View<T, 4>::Bind(d_resid, ld.names);
  auto dov = View<T, 4>::Bind(d_out, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);

  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        float sum_g = 0, sum_gx = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyv.ptr[Off(dyv, a, b, c, k)]) *
                          float(gv.ptr[Off(gv, a, b, c, k)]);
          const float xhat =
              (float(xv.ptr[Off(xv, a, b, c, k)]) - mu) * rs;
          sum_g += g;
          sum_gx += g * xhat;
        }
        const float mean_g = sum_g * inv_n;
        const float mean_gx = sum_gx * inv_n;
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyv.ptr[Off(dyv, a, b, c, k)]) *
                          float(gv.ptr[Off(gv, a, b, c, k)]);
          const float xhat =
              (float(xv.ptr[Off(xv, a, b, c, k)]) - mu) * rs;
          const T dr = T(rs * (g - mean_g - xhat * mean_gx));
          drv.ptr[Off(drv, a, b, c, k)] = dr;
          dov.ptr[Off(dov, a, b, c, k)] =
              T(float(dr) * float(mv.ptr[Off(mv, a, b, c, k)]) * keep_scale);
        }
      }
    }
  }
}

template <typename T>
void BiasDropoutReluBiasBackward(const Tensor<T>& dy_hi,
                                 const Tensor<T>& dy_lo,
                                 const Tensor<T>& drop_mask,
                                 const Tensor<T>& relu_saved, float keep_scale,
                                 Tensor<T>& d_bias_hi, Tensor<T>& d_x_lo,
                                 Tensor<T>& d_bias_lo) {
  // Stream 1: bias gradient of the upper (embedding-width) tensor.
  {
    std::vector<float> acc(static_cast<std::size_t>(d_bias_hi.size()), 0.0f);
    const auto ld = LoopOverOutput(dy_hi.shape());
    auto dyv = View<const T, 4>::Bind(dy_hi, ld.names);
    auto dbv = View<T, 4>::Bind(d_bias_hi, ld.names);
    For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
      acc[static_cast<std::size_t>(Off(dbv, a, b, c, d))] +=
          float(dyv.ptr[Off(dyv, a, b, c, d)]);
    });
    for (std::int64_t i = 0; i < d_bias_hi.size(); ++i) {
      d_bias_hi.data()[i] = T(acc[static_cast<std::size_t>(i)]);
    }
  }
  // Stream 2: dropout dX -> relu dX -> bias dW, without storing interims.
  {
    std::vector<float> acc(static_cast<std::size_t>(d_bias_lo.size()), 0.0f);
    const auto ld = LoopOverOutput(d_x_lo.shape());
    auto dyv = View<const T, 4>::Bind(dy_lo, ld.names);
    auto mv = View<const T, 4>::Bind(drop_mask, ld.names);
    auto rv = View<const T, 4>::Bind(relu_saved, ld.names);
    auto dxv = View<T, 4>::Bind(d_x_lo, ld.names);
    auto dbv = View<T, 4>::Bind(d_bias_lo, ld.names);
    For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
      // Match unfused pipeline: dropout dX result is rounded to T before
      // the ReLU gate, as it would be when written to memory.
      const float dd = float(T(float(dyv.ptr[Off(dyv, a, b, c, d)]) *
                               float(mv.ptr[Off(mv, a, b, c, d)]) *
                               keep_scale));
      const bool active = float(rv.ptr[Off(rv, a, b, c, d)]) > 0.0f;
      const T dx = active ? T(dd) : T(0.0f);
      dxv.ptr[Off(dxv, a, b, c, d)] = dx;
      acc[static_cast<std::size_t>(Off(dbv, a, b, c, d))] += float(dx);
    });
    for (std::int64_t i = 0; i < d_bias_lo.size(); ++i) {
      d_bias_lo.data()[i] = T(acc[static_cast<std::size_t>(i)]);
    }
  }
}

template <typename T>
void ResidualLayerNormDwBackward(const Tensor<T>& da, const Tensor<T>& db,
                                 const Tensor<T>& x_saved, const TensorF& mean,
                                 const TensorF& rstd, char norm_dim,
                                 Tensor<T>& d_sum, Tensor<T>& dgamma,
                                 Tensor<T>& dbeta) {
  require(dgamma.shape().names() == std::string(1, norm_dim),
          "dgamma is 1-D over the normalized dimension");
  detail::LoopDims ld;
  std::size_t slot = 0;
  for (const auto& dim : d_sum.shape().dims()) {
    if (dim.name == norm_dim) continue;
    ld.names[slot] = dim.name;
    ld.extents[slot] = dim.extent;
    ++slot;
  }
  ld.names[3] = norm_dim;
  ld.extents[3] = d_sum.shape().extent(norm_dim);

  auto dav = View<const T, 4>::Bind(da, ld.names);
  auto dbv = View<const T, 4>::Bind(db, ld.names);
  auto xv = View<const T, 4>::Bind(x_saved, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto dsv = View<T, 4>::Bind(d_sum, ld.names);
  const std::int64_t n = ld.extents[3];
  std::vector<float> acc_g(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> acc_b(static_cast<std::size_t>(n), 0.0f);

  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        for (std::int64_t k = 0; k < n; ++k) {
          const T ds = T(float(dav.ptr[Off(dav, a, b, c, k)]) +
                         float(dbv.ptr[Off(dbv, a, b, c, k)]));
          dsv.ptr[Off(dsv, a, b, c, k)] = ds;
          const float xhat =
              (float(xv.ptr[Off(xv, a, b, c, k)]) - mu) * rs;
          acc_g[static_cast<std::size_t>(k)] += float(ds) * xhat;
          acc_b[static_cast<std::size_t>(k)] += float(ds);
        }
      }
    }
  }
  for (std::int64_t k = 0; k < n; ++k) {
    dgamma.data()[k] = T(acc_g[static_cast<std::size_t>(k)]);
    dbeta.data()[k] = T(acc_b[static_cast<std::size_t>(k)]);
  }
}

template <typename T>
void AttnInputBiasBackward(const std::array<const Tensor<T>*, 3>& d_inputs,
                           char stack_dim, Tensor<T>& d_stacked_bias) {
  std::vector<float> acc(static_cast<std::size_t>(d_stacked_bias.size()),
                         0.0f);
  const std::int64_t slice = d_inputs[0]->extent(stack_dim);
  const std::int64_t stack_stride = d_stacked_bias.stride(stack_dim);
  for (std::size_t s = 0; s < 3; ++s) {
    const Tensor<T>& dy = *d_inputs[s];
    const auto ld = LoopOverOutput(dy.shape());
    auto dyv = View<const T, 4>::Bind(dy, ld.names);
    auto dbv = View<T, 4>::Bind(d_stacked_bias, ld.names);
    const std::int64_t base =
        static_cast<std::int64_t>(s) * slice * stack_stride;
    For4(ld.extents, [&](auto a, auto b, auto c, auto d) {
      acc[static_cast<std::size_t>(base + Off(dbv, a, b, c, d))] +=
          float(dyv.ptr[Off(dyv, a, b, c, d)]);
    });
  }
  for (std::int64_t i = 0; i < d_stacked_bias.size(); ++i) {
    d_stacked_bias.data()[i] = T(acc[static_cast<std::size_t>(i)]);
  }
}

#define XFLOW_INSTANTIATE_FUSED(T)                                            \
  template void AttnInputBias<T>(const std::array<const Tensor<T>*, 3>&,      \
                                 const Tensor<T>&, char,                      \
                                 const std::array<Tensor<T>*, 3>&);           \
  template void BiasReluDropout<T>(const Tensor<T>&, const Tensor<T>&,        \
                                   const DropoutMask&, Tensor<T>&,            \
                                   Tensor<T>&, Tensor<T>&);                   \
  template void BiasDropoutResidualLayerNorm<T>(                              \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&,                   \
      const DropoutMask&, const Tensor<T>&, const Tensor<T>&, char, float,    \
      Tensor<T>&, Tensor<T>&, Tensor<T>&, TensorF&, TensorF&);                \
  template void LayerNormDropoutBackward<T>(                                  \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const TensorF&,   \
      const TensorF&, const Tensor<T>&, char, float, Tensor<T>&, Tensor<T>&); \
  template void BiasDropoutReluBiasBackward<T>(                               \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, \
      float, Tensor<T>&, Tensor<T>&, Tensor<T>&);                             \
  template void ResidualLayerNormDwBackward<T>(                               \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const TensorF&,   \
      const TensorF&, char, Tensor<T>&, Tensor<T>&, Tensor<T>&);              \
  template void AttnInputBiasBackward<T>(                                     \
      const std::array<const Tensor<T>*, 3>&, char, Tensor<T>&)

XFLOW_INSTANTIATE_FUSED(Half);
XFLOW_INSTANTIATE_FUSED(float);
#undef XFLOW_INSTANTIATE_FUSED

}  // namespace xflow::ops
