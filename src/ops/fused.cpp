#include "ops/fused.hpp"

#include <cmath>
#include <vector>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::Dot;
using detail::ForEachRow;
using detail::ForEachRowReduce;
using detail::In;
using detail::LoopOverOutput;
using detail::LoopWithInnermost;
using detail::Off;
using detail::Out;
using detail::Pass;
using detail::RowMoments;
using detail::RowNormDots;

template <typename T>
void AttnInputBias(const std::array<const Tensor<T>*, 3>& inputs,
                   const Tensor<T>& stacked_bias, char stack_dim,
                   const std::array<Tensor<T>*, 3>& outputs) {
  const std::int64_t slice = inputs[0]->extent(stack_dim);
  const std::int64_t bias_stride = stacked_bias.stride(stack_dim);
  for (std::size_t s = 0; s < 3; ++s) {
    const Tensor<T>& x = *inputs[s];
    Tensor<T>& y = *outputs[s];
    const auto ld = LoopOverOutput(y.shape());
    auto xv = View<const T, 4>::Bind(x, ld.names);
    auto bv = View<const T, 4>::Bind(stacked_bias, ld.names);
    auto yv = View<T, 4>::Bind(y, ld.names);
    // Shift the bias view to this input's slice of the stack.
    bv.ptr += static_cast<std::int64_t>(s) * slice * bias_stride;
    const std::int64_t n = ld.extents[3];
    // The stacked bias may broadcast along the innermost dim (stride 0),
    // so it keeps a strided accessor (Pass).
    ForEachRow(
        ld,
        [n](std::int64_t, std::int64_t, std::int64_t, const auto& xr,
            const auto& br, const auto& yr) {
          XFLOW_SIMD
          for (std::int64_t d = 0; d < n; ++d) {
            yr[d] = T(float(xr[d]) + float(br[d]));
          }
        },
        In{xv}, Pass{bv}, Out{yv});
  }
}

template <typename T>
void BiasReluDropout(const Tensor<T>& x, const Tensor<T>& bias,
                     const DropoutMask& mask, Tensor<T>& relu_saved,
                     Tensor<T>& y, Tensor<T>& mask_out) {
  const auto ld = LoopOverOutput(y.shape());
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto rv = View<T, 4>::Bind(relu_saved, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  // The bias may broadcast along the innermost dim (stride 0; e.g. the FFN
  // "ubj" layout with the bias over u), so it keeps a strided accessor.
  ForEachRow(
      ld,
      [&, n, scale](std::int64_t a, std::int64_t b, std::int64_t c,
                    const auto& xr, const auto& br, const auto& rr,
                    const auto& yr, const auto& mr) {
        const std::int64_t base = Dot(canon, a, b, c, 0);
        for (std::int64_t d = 0; d < n; ++d) {
          float v = float(xr[d]) + float(br[d]);
          v = v > 0.0f ? v : 0.0f;
          // ReLU is saved in fp16, so the backward pass sees the rounded
          // value: recompute the dropout from that rounded number, exactly
          // as the separate-kernel pipeline would.
          const T r = T(v);
          rr[d] = r;
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(base + d * canon[3]));
          yr[d] = T(keep ? float(r) * scale : 0.0f);
          mr[d] = T(keep ? 1.0f : 0.0f);
        }
      },
      In{xv}, Pass{bv}, Out{rv}, Out{yv}, Out{mv});
}

template <typename T>
void BiasDropoutResidualLayerNorm(const Tensor<T>& x, const Tensor<T>& bias,
                                  const Tensor<T>& residual_in,
                                  const DropoutMask& mask,
                                  const Tensor<T>& ln_gamma,
                                  const Tensor<T>& ln_beta, char norm_dim,
                                  float eps, Tensor<T>& resid_saved,
                                  Tensor<T>& mask_out, Tensor<T>& y,
                                  TensorF& ln_mean, TensorF& ln_rstd) {
  // Loop with norm_dim innermost so the reduction-then-map structure of the
  // paper's two-loop fused kernels applies directly.
  const auto ld = LoopWithInnermost(y.shape(), norm_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto bv = View<const T, 4>::Bind(bias, ld.names);
  auto resinv = View<const T, 4>::Bind(residual_in, ld.names);
  auto gv = View<const T, 4>::Bind(ln_gamma, ld.names);
  auto betav = View<const T, 4>::Bind(ln_beta, ld.names);
  auto resv = View<T, 4>::Bind(resid_saved, ld.names);
  auto mv = View<T, 4>::Bind(mask_out, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto meanv = View<float, 4>::Bind(ln_mean, ld.names);
  auto rstdv = View<float, 4>::Bind(ln_rstd, ld.names);
  const auto canon = CanonicalStrides(y.shape(), ld.names);
  const float scale = mask.Scale();
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  ForEachRow(
      ld,
      [&, n, scale, eps, inv_n](std::int64_t a, std::int64_t b,
                                std::int64_t c, const auto& xr,
                                const auto& br, const auto& resinr,
                                const auto& gr, const auto& betar,
                                const auto& resr, const auto& mr,
                                const auto& yr) {
        const std::int64_t base = Dot(canon, a, b, c, 0);
        // Loop 1: bias + dropout + residual.
        for (std::int64_t k = 0; k < n; ++k) {
          // Match the unfused pipeline bit-for-bit: every interim that the
          // separate-kernel pipeline would write to memory (biased value,
          // dropout output) is rounded to T at the same point here.
          const float biased = float(T(float(xr[k]) + float(br[k])));
          const bool keep =
              mask.Keep(static_cast<std::uint64_t>(base + k * canon[3]));
          const float dropped = float(T(keep ? biased * scale : 0.0f));
          resr[k] = T(dropped + float(resinr[k]));
          mr[k] = T(keep ? 1.0f : 0.0f);
        }
        // Moments over the saved residual row -- through the same helper
        // LayerNormForward uses, so fused mean/rstd match the unfused
        // pipeline bitwise.
        float sum = 0, sum_sq = 0;
        RowMoments(resr, n, &sum, &sum_sq);
        const float mu = sum * inv_n;
        const float var = std::max(sum_sq * inv_n - mu * mu, 0.0f);
        const float rs = 1.0f / std::sqrt(var + eps);
        meanv.ptr[Off(meanv, a, b, c, 0)] = mu;
        rstdv.ptr[Off(rstdv, a, b, c, 0)] = rs;
        // Loop 2: apply the normalization.
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          yr[k] =
              T((float(resr[k]) - mu) * rs * float(gr[k]) + float(betar[k]));
        }
      },
      In{xv}, In{bv}, In{resinv}, In{gv}, In{betav}, Out{resv}, Out{mv},
      Out{yv});
}

template <typename T>
void LayerNormDropoutBackward(const Tensor<T>& dy, const Tensor<T>& ln_gamma,
                              const Tensor<T>& x_saved, const TensorF& mean,
                              const TensorF& rstd, const Tensor<T>& drop_mask,
                              char norm_dim, float keep_scale,
                              Tensor<T>& d_resid, Tensor<T>& d_out) {
  const auto ld = LoopWithInnermost(d_out.shape(), norm_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto gv = View<const T, 4>::Bind(ln_gamma, ld.names);
  auto xv = View<const T, 4>::Bind(x_saved, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto mv = View<const T, 4>::Bind(drop_mask, ld.names);
  auto drv = View<T, 4>::Bind(d_resid, ld.names);
  auto dov = View<T, 4>::Bind(d_out, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  ForEachRow(
      ld,
      [&, n, keep_scale, inv_n](std::int64_t a, std::int64_t b,
                                std::int64_t c, const auto& dyr,
                                const auto& gr, const auto& xr,
                                const auto& mr, const auto& drr,
                                const auto& dor) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        float sum_g = 0, sum_gx = 0;
        RowNormDots(dyr, gr, xr, mu, rs, n, &sum_g, &sum_gx);
        const float mean_g = sum_g * inv_n;
        const float mean_gx = sum_gx * inv_n;
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyr[k]) * float(gr[k]);
          const float xhat = (float(xr[k]) - mu) * rs;
          const T dr = T(rs * (g - mean_g - xhat * mean_gx));
          drr[k] = dr;
          dor[k] = T(float(dr) * float(mr[k]) * keep_scale);
        }
      },
      In{dyv}, In{gv}, In{xv}, In{mv}, Out{drv}, Out{dov});
}

template <typename T>
void BiasDropoutReluBiasBackward(const Tensor<T>& dy_hi,
                                 const Tensor<T>& dy_lo,
                                 const Tensor<T>& drop_mask,
                                 const Tensor<T>& relu_saved, float keep_scale,
                                 Tensor<T>& d_bias_hi, Tensor<T>& d_x_lo,
                                 Tensor<T>& d_bias_lo) {
  // Stream 1: bias gradient of the upper (embedding-width) tensor.
  {
    std::vector<float> acc(static_cast<std::size_t>(d_bias_hi.size()), 0.0f);
    const auto ld = LoopOverOutput(dy_hi.shape());
    auto dyv = View<const T, 4>::Bind(dy_hi, ld.names);
    auto dbv = View<T, 4>::Bind(d_bias_hi, ld.names);
    detail::ReduceBiasRows(ld, dyv, dbv, 0, acc);
    for (std::int64_t i = 0; i < d_bias_hi.size(); ++i) {
      d_bias_hi.data()[i] = T(acc[static_cast<std::size_t>(i)]);
    }
  }
  // Stream 2: dropout dX -> relu dX -> bias dW, without storing interims.
  // The dX writes are row-exclusive, so they ride along with the reduction.
  {
    std::vector<float> acc(static_cast<std::size_t>(d_bias_lo.size()), 0.0f);
    const auto ld = LoopOverOutput(d_x_lo.shape());
    auto dyv = View<const T, 4>::Bind(dy_lo, ld.names);
    auto mv = View<const T, 4>::Bind(drop_mask, ld.names);
    auto rv = View<const T, 4>::Bind(relu_saved, ld.names);
    auto dxv = View<T, 4>::Bind(d_x_lo, ld.names);
    auto dbv = View<T, 4>::Bind(d_bias_lo, ld.names);
    const std::int64_t n = ld.extents[3];
    ForEachRowReduce(
        ld, acc,
        [&, n, keep_scale](std::int64_t a, std::int64_t b, std::int64_t c,
                           float* part, const auto& dyr, const auto& mr,
                           const auto& rr, const auto& dxr) {
          const std::int64_t base = Off(dbv, a, b, c, 0);
          for (std::int64_t d = 0; d < n; ++d) {
            // Match unfused pipeline: dropout dX result is rounded to T
            // before the ReLU gate, as it would be when written to memory.
            const float dd =
                float(T(float(dyr[d]) * float(mr[d]) * keep_scale));
            const bool active = float(rr[d]) > 0.0f;
            const T dx = active ? T(dd) : T(0.0f);
            dxr[d] = dx;
            part[base + d * dbv.stride[3]] += float(dx);
          }
        },
        In{dyv}, In{mv}, In{rv}, Out{dxv});
    for (std::int64_t i = 0; i < d_bias_lo.size(); ++i) {
      d_bias_lo.data()[i] = T(acc[static_cast<std::size_t>(i)]);
    }
  }
}

template <typename T>
void ResidualLayerNormDwBackward(const Tensor<T>& da, const Tensor<T>& db,
                                 const Tensor<T>& x_saved, const TensorF& mean,
                                 const TensorF& rstd, char norm_dim,
                                 Tensor<T>& d_sum, Tensor<T>& dgamma,
                                 Tensor<T>& dbeta) {
  require(dgamma.shape().names() == std::string(1, norm_dim),
          "dgamma is 1-D over the normalized dimension");
  const auto ld = LoopWithInnermost(d_sum.shape(), norm_dim);
  auto dav = View<const T, 4>::Bind(da, ld.names);
  auto dbv = View<const T, 4>::Bind(db, ld.names);
  auto xv = View<const T, 4>::Bind(x_saved, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto dsv = View<T, 4>::Bind(d_sum, ld.names);
  const std::int64_t n = ld.extents[3];
  // Accumulator layout: [0, n) = dgamma, [n, 2n) = dbeta -- the same
  // combine tree as LayerNormBackwardDW, which this kernel must match
  // exactly. The d_sum writes are row-exclusive.
  std::vector<float> acc(static_cast<std::size_t>(2 * n), 0.0f);
  ForEachRowReduce(
      ld, acc,
      [&, n](std::int64_t a, std::int64_t b, std::int64_t c, float* part,
             const auto& dar, const auto& dbr, const auto& xr,
             const auto& dsr) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          const T ds = T(float(dar[k]) + float(dbr[k]));
          dsr[k] = ds;
          const float xhat = (float(xr[k]) - mu) * rs;
          part[k] += float(ds) * xhat;
          part[n + k] += float(ds);
        }
      },
      In{dav}, In{dbv}, In{xv}, Out{dsv});
  for (std::int64_t k = 0; k < n; ++k) {
    dgamma.data()[k] = T(acc[static_cast<std::size_t>(k)]);
    dbeta.data()[k] = T(acc[static_cast<std::size_t>(n + k)]);
  }
}

template <typename T>
void AttnInputBiasBackward(const std::array<const Tensor<T>*, 3>& d_inputs,
                           char stack_dim, Tensor<T>& d_stacked_bias) {
  std::vector<float> acc(static_cast<std::size_t>(d_stacked_bias.size()),
                         0.0f);
  const std::int64_t slice = d_inputs[0]->extent(stack_dim);
  const std::int64_t stack_stride = d_stacked_bias.stride(stack_dim);
  // Each slice's accumulator range is contiguous iff the stacked dim is
  // the bias tensor's outermost dim; then the per-slice reduction can run
  // on a slice-sized subspan (3x smaller partial buffers and combines).
  const bool slices_contiguous =
      stack_stride * d_stacked_bias.extent(stack_dim) ==
      d_stacked_bias.size();
  const std::size_t slice_floats =
      static_cast<std::size_t>(slice * stack_stride);
  for (std::size_t s = 0; s < 3; ++s) {
    const Tensor<T>& dy = *d_inputs[s];
    const auto ld = LoopOverOutput(dy.shape());
    auto dyv = View<const T, 4>::Bind(dy, ld.names);
    auto dbv = View<T, 4>::Bind(d_stacked_bias, ld.names);
    const std::int64_t stack_base =
        static_cast<std::int64_t>(s) * slice * stack_stride;
    if (slices_contiguous) {
      detail::ReduceBiasRows(
          ld, dyv, dbv, 0,
          std::span<float>(acc).subspan(static_cast<std::size_t>(stack_base),
                                        slice_floats));
    } else {
      detail::ReduceBiasRows(ld, dyv, dbv, stack_base, acc);
    }
  }
  for (std::int64_t i = 0; i < d_stacked_bias.size(); ++i) {
    d_stacked_bias.data()[i] = T(acc[static_cast<std::size_t>(i)]);
  }
}

#define XFLOW_INSTANTIATE_FUSED(T)                                            \
  template void AttnInputBias<T>(const std::array<const Tensor<T>*, 3>&,      \
                                 const Tensor<T>&, char,                      \
                                 const std::array<Tensor<T>*, 3>&);           \
  template void BiasReluDropout<T>(const Tensor<T>&, const Tensor<T>&,        \
                                   const DropoutMask&, Tensor<T>&,            \
                                   Tensor<T>&, Tensor<T>&);                   \
  template void BiasDropoutResidualLayerNorm<T>(                              \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&,                   \
      const DropoutMask&, const Tensor<T>&, const Tensor<T>&, char, float,    \
      Tensor<T>&, Tensor<T>&, Tensor<T>&, TensorF&, TensorF&);                \
  template void LayerNormDropoutBackward<T>(                                  \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const TensorF&,   \
      const TensorF&, const Tensor<T>&, char, float, Tensor<T>&, Tensor<T>&); \
  template void BiasDropoutReluBiasBackward<T>(                               \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, \
      float, Tensor<T>&, Tensor<T>&, Tensor<T>&);                             \
  template void ResidualLayerNormDwBackward<T>(                               \
      const Tensor<T>&, const Tensor<T>&, const Tensor<T>&, const TensorF&,   \
      const TensorF&, char, Tensor<T>&, Tensor<T>&, Tensor<T>&);              \
  template void AttnInputBiasBackward<T>(                                     \
      const std::array<const Tensor<T>*, 3>&, char, Tensor<T>&)

XFLOW_INSTANTIATE_FUSED(Half);
XFLOW_INSTANTIATE_FUSED(float);
#undef XFLOW_INSTANTIATE_FUSED

}  // namespace xflow::ops
