#include "ops/layernorm.hpp"

#include <cmath>
#include <vector>

#include "ops/detail.hpp"

namespace xflow::ops {

namespace {

/// Loop layout: non-normalized dims in slots 0..2, `norm_dim` innermost.
detail::LoopDims NormLoop(const Shape& shape, char norm_dim) {
  require(shape.rank() <= 4, "layernorm kernels support rank <= 4");
  require(shape.has(norm_dim), "tensor lacks the normalization dimension");
  detail::LoopDims ld;
  std::size_t slot = 0;
  for (const auto& d : shape.dims()) {
    if (d.name == norm_dim) continue;
    ld.names[slot] = d.name;
    ld.extents[slot] = d.extent;
    ++slot;
  }
  ld.names[3] = norm_dim;
  ld.extents[3] = shape.extent(norm_dim);
  return ld;
}

}  // namespace

template <typename T>
void LayerNormForward(const Tensor<T>& x, const Tensor<T>& gamma,
                      const Tensor<T>& beta, char norm_dim, float eps,
                      Tensor<T>& y, TensorF& mean, TensorF& rstd) {
  const auto ld = NormLoop(y.shape(), norm_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto gv = View<const T, 4>::Bind(gamma, ld.names);
  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto meanv = View<float, 4>::Bind(mean, ld.names);
  auto rstdv = View<float, 4>::Bind(rstd, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        float sum = 0, sum_sq = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          const float v = float(xv.ptr[detail::Off(xv, a, b, c, k)]);
          sum += v;
          sum_sq += v * v;
        }
        const float mu = sum * inv_n;
        const float var = std::max(sum_sq * inv_n - mu * mu, 0.0f);
        const float rs = 1.0f / std::sqrt(var + eps);
        meanv.ptr[detail::Off(meanv, a, b, c, 0)] = mu;
        rstdv.ptr[detail::Off(rstdv, a, b, c, 0)] = rs;
        for (std::int64_t k = 0; k < n; ++k) {
          const float v = float(xv.ptr[detail::Off(xv, a, b, c, k)]);
          const float g = float(gv.ptr[detail::Off(gv, a, b, c, k)]);
          const float bb = float(bv.ptr[detail::Off(bv, a, b, c, k)]);
          yv.ptr[detail::Off(yv, a, b, c, k)] = T((v - mu) * rs * g + bb);
        }
      }
    }
  }
}

template <typename T>
void LayerNormBackwardDX(const Tensor<T>& dy, const Tensor<T>& gamma,
                         const Tensor<T>& x, const TensorF& mean,
                         const TensorF& rstd, char norm_dim, Tensor<T>& dx) {
  const auto ld = NormLoop(dx.shape(), norm_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto gv = View<const T, 4>::Bind(gamma, ld.names);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        const float mu = meanv.ptr[detail::Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[detail::Off(rstdv, a, b, c, 0)];
        float sum_g = 0, sum_gx = 0;
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyv.ptr[detail::Off(dyv, a, b, c, k)]) *
                          float(gv.ptr[detail::Off(gv, a, b, c, k)]);
          const float xhat =
              (float(xv.ptr[detail::Off(xv, a, b, c, k)]) - mu) * rs;
          sum_g += g;
          sum_gx += g * xhat;
        }
        const float mean_g = sum_g * inv_n;
        const float mean_gx = sum_gx * inv_n;
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyv.ptr[detail::Off(dyv, a, b, c, k)]) *
                          float(gv.ptr[detail::Off(gv, a, b, c, k)]);
          const float xhat =
              (float(xv.ptr[detail::Off(xv, a, b, c, k)]) - mu) * rs;
          dxv.ptr[detail::Off(dxv, a, b, c, k)] =
              T(rs * (g - mean_g - xhat * mean_gx));
        }
      }
    }
  }
}

template <typename T>
void LayerNormBackwardDW(const Tensor<T>& dy, const Tensor<T>& x,
                         const TensorF& mean, const TensorF& rstd,
                         char norm_dim, Tensor<T>& dgamma, Tensor<T>& dbeta) {
  require(dgamma.shape().names() == std::string(1, norm_dim) &&
              dbeta.shape().names() == std::string(1, norm_dim),
          "parameter gradients are 1-D over the normalized dimension");
  const auto ld = NormLoop(dy.shape(), norm_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  const std::int64_t n = ld.extents[3];
  std::vector<float> acc_g(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> acc_b(static_cast<std::size_t>(n), 0.0f);
  for (std::int64_t a = 0; a < ld.extents[0]; ++a) {
    for (std::int64_t b = 0; b < ld.extents[1]; ++b) {
      for (std::int64_t c = 0; c < ld.extents[2]; ++c) {
        const float mu = meanv.ptr[detail::Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[detail::Off(rstdv, a, b, c, 0)];
        for (std::int64_t k = 0; k < n; ++k) {
          const float d = float(dyv.ptr[detail::Off(dyv, a, b, c, k)]);
          const float xhat =
              (float(xv.ptr[detail::Off(xv, a, b, c, k)]) - mu) * rs;
          acc_g[static_cast<std::size_t>(k)] += d * xhat;
          acc_b[static_cast<std::size_t>(k)] += d;
        }
      }
    }
  }
  for (std::int64_t k = 0; k < n; ++k) {
    dgamma.data()[k] = T(acc_g[static_cast<std::size_t>(k)]);
    dbeta.data()[k] = T(acc_b[static_cast<std::size_t>(k)]);
  }
}

#define XFLOW_INSTANTIATE_LAYERNORM(T)                                        \
  template void LayerNormForward<T>(const Tensor<T>&, const Tensor<T>&,       \
                                    const Tensor<T>&, char, float,            \
                                    Tensor<T>&, TensorF&, TensorF&);          \
  template void LayerNormBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,    \
                                       const Tensor<T>&, const TensorF&,      \
                                       const TensorF&, char, Tensor<T>&);     \
  template void LayerNormBackwardDW<T>(const Tensor<T>&, const Tensor<T>&,    \
                                       const TensorF&, const TensorF&, char,  \
                                       Tensor<T>&, Tensor<T>&)

XFLOW_INSTANTIATE_LAYERNORM(Half);
XFLOW_INSTANTIATE_LAYERNORM(float);
#undef XFLOW_INSTANTIATE_LAYERNORM

}  // namespace xflow::ops
