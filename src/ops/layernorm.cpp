#include "ops/layernorm.hpp"

#include <cmath>
#include <vector>

#include "ops/detail.hpp"

namespace xflow::ops {

using detail::ForEachRow;
using detail::ForEachRowReduce;
using detail::In;
using detail::LoopWithInnermost;
using detail::Off;
using detail::Out;
using detail::RowMoments;
using detail::RowNormDots;

template <typename T>
void LayerNormForward(const Tensor<T>& x, const Tensor<T>& gamma,
                      const Tensor<T>& beta, char norm_dim, float eps,
                      Tensor<T>& y, TensorF& mean, TensorF& rstd) {
  const auto ld = LoopWithInnermost(y.shape(), norm_dim);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto gv = View<const T, 4>::Bind(gamma, ld.names);
  auto bv = View<const T, 4>::Bind(beta, ld.names);
  auto yv = View<T, 4>::Bind(y, ld.names);
  auto meanv = View<float, 4>::Bind(mean, ld.names);
  auto rstdv = View<float, 4>::Bind(rstd, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  ForEachRow(
      ld,
      [&, n, eps, inv_n](std::int64_t a, std::int64_t b, std::int64_t c,
                         const auto& xr, const auto& gr, const auto& br,
                         const auto& yr) {
        float sum = 0, sum_sq = 0;
        RowMoments(xr, n, &sum, &sum_sq);
        const float mu = sum * inv_n;
        const float var = std::max(sum_sq * inv_n - mu * mu, 0.0f);
        const float rs = 1.0f / std::sqrt(var + eps);
        meanv.ptr[Off(meanv, a, b, c, 0)] = mu;
        rstdv.ptr[Off(rstdv, a, b, c, 0)] = rs;
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          yr[k] = T((float(xr[k]) - mu) * rs * float(gr[k]) + float(br[k]));
        }
      },
      In{xv}, In{gv}, In{bv}, Out{yv});
}

template <typename T>
void LayerNormBackwardDX(const Tensor<T>& dy, const Tensor<T>& gamma,
                         const Tensor<T>& x, const TensorF& mean,
                         const TensorF& rstd, char norm_dim, Tensor<T>& dx) {
  const auto ld = LoopWithInnermost(dx.shape(), norm_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto gv = View<const T, 4>::Bind(gamma, ld.names);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  auto dxv = View<T, 4>::Bind(dx, ld.names);
  const std::int64_t n = ld.extents[3];
  const float inv_n = 1.0f / static_cast<float>(n);
  ForEachRow(
      ld,
      [&, n, inv_n](std::int64_t a, std::int64_t b, std::int64_t c,
                    const auto& dyr, const auto& gr, const auto& xr,
                    const auto& dxr) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        float sum_g = 0, sum_gx = 0;
        RowNormDots(dyr, gr, xr, mu, rs, n, &sum_g, &sum_gx);
        const float mean_g = sum_g * inv_n;
        const float mean_gx = sum_gx * inv_n;
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          const float g = float(dyr[k]) * float(gr[k]);
          const float xhat = (float(xr[k]) - mu) * rs;
          dxr[k] = T(rs * (g - mean_g - xhat * mean_gx));
        }
      },
      In{dyv}, In{gv}, In{xv}, Out{dxv});
}

template <typename T>
void LayerNormBackwardDW(const Tensor<T>& dy, const Tensor<T>& x,
                         const TensorF& mean, const TensorF& rstd,
                         char norm_dim, Tensor<T>& dgamma, Tensor<T>& dbeta) {
  require(dgamma.shape().names() == std::string(1, norm_dim) &&
              dbeta.shape().names() == std::string(1, norm_dim),
          "parameter gradients are 1-D over the normalized dimension");
  const auto ld = LoopWithInnermost(dy.shape(), norm_dim);
  auto dyv = View<const T, 4>::Bind(dy, ld.names);
  auto xv = View<const T, 4>::Bind(x, ld.names);
  auto meanv = View<const float, 4>::Bind(mean, ld.names);
  auto rstdv = View<const float, 4>::Bind(rstd, ld.names);
  const std::int64_t n = ld.extents[3];
  // Accumulator layout: [0, n) = dgamma, [n, 2n) = dbeta.
  std::vector<float> acc(static_cast<std::size_t>(2 * n), 0.0f);
  ForEachRowReduce(
      ld, acc,
      [&, n](std::int64_t a, std::int64_t b, std::int64_t c, float* part,
             const auto& dyr, const auto& xr) {
        const float mu = meanv.ptr[Off(meanv, a, b, c, 0)];
        const float rs = rstdv.ptr[Off(rstdv, a, b, c, 0)];
        XFLOW_SIMD
        for (std::int64_t k = 0; k < n; ++k) {
          const float d = float(dyr[k]);
          const float xhat = (float(xr[k]) - mu) * rs;
          part[k] += d * xhat;
          part[n + k] += d;
        }
      },
      In{dyv}, In{xv});
  for (std::int64_t k = 0; k < n; ++k) {
    dgamma.data()[k] = T(acc[static_cast<std::size_t>(k)]);
    dbeta.data()[k] = T(acc[static_cast<std::size_t>(n + k)]);
  }
}

#define XFLOW_INSTANTIATE_LAYERNORM(T)                                        \
  template void LayerNormForward<T>(const Tensor<T>&, const Tensor<T>&,       \
                                    const Tensor<T>&, char, float,            \
                                    Tensor<T>&, TensorF&, TensorF&);          \
  template void LayerNormBackwardDX<T>(const Tensor<T>&, const Tensor<T>&,    \
                                       const Tensor<T>&, const TensorF&,      \
                                       const TensorF&, char, Tensor<T>&);     \
  template void LayerNormBackwardDW<T>(const Tensor<T>&, const Tensor<T>&,    \
                                       const TensorF&, const TensorF&, char,  \
                                       Tensor<T>&, Tensor<T>&)

XFLOW_INSTANTIATE_LAYERNORM(Half);
XFLOW_INSTANTIATE_LAYERNORM(float);
#undef XFLOW_INSTANTIATE_LAYERNORM

}  // namespace xflow::ops
