// Embedding lookup and MSE-loss kernels, shared between the hand-wired
// transformer layers (transformer/embedding.cpp, transformer/training.cpp)
// and the graph executor's kEmbed/kEmbedDW/kMseLoss dispatch. One loop nest
// per operation keeps the two paths bitwise identical by construction.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace xflow::ops {

/// x[i,b,j] = token_table[tokens[b,j], i] + pos_table[j, i], summed in
/// fp32. `tokens` is row-major [b][j]; ids must lie in [0, vocab).
template <typename T>
void EmbeddingForwardKernel(const Tensor<T>& token_table,
                            const Tensor<T>& pos_table,
                            const std::vector<std::int32_t>& tokens,
                            Tensor<T>& x) {
  const std::int64_t bn = x.extent('b');
  const std::int64_t jn = x.extent('j');
  const std::int64_t in = x.extent('i');
  const std::int64_t vocab = token_table.extent('v');
  require(static_cast<std::int64_t>(tokens.size()) == bn * jn,
          "token count must equal batch * sequence length");
  for (std::int64_t b = 0; b < bn; ++b) {
    for (std::int64_t j = 0; j < jn; ++j) {
      const auto id = tokens[static_cast<std::size_t>(b * jn + j)];
      require(id >= 0 && id < vocab, "token id out of range");
      for (std::int64_t i = 0; i < in; ++i) {
        const float tok = float(token_table.at({{'v', id}, {'i', i}}));
        const float pos = float(pos_table.at({{'j', j}, {'i', i}}));
        x.at({{'i', i}, {'b', b}, {'j', j}}) = T(tok + pos);
      }
    }
  }
}

/// Scatter-add table gradients with fp32 accumulation; overwrites both
/// gradient tensors.
template <typename T>
void EmbeddingBackwardKernel(const Tensor<T>& d_x,
                             const std::vector<std::int32_t>& tokens,
                             Tensor<T>& d_token_table, Tensor<T>& d_pos_table) {
  const std::int64_t bn = d_x.extent('b');
  const std::int64_t jn = d_x.extent('j');
  const std::int64_t in = d_x.extent('i');
  require(static_cast<std::int64_t>(tokens.size()) == bn * jn,
          "token count must equal batch * sequence length");
  std::vector<float> acc_tok(static_cast<std::size_t>(d_token_table.size()),
                             0.0f);
  std::vector<float> acc_pos(static_cast<std::size_t>(d_pos_table.size()),
                             0.0f);
  for (std::int64_t b = 0; b < bn; ++b) {
    for (std::int64_t j = 0; j < jn; ++j) {
      const auto id = tokens[static_cast<std::size_t>(b * jn + j)];
      for (std::int64_t i = 0; i < in; ++i) {
        const float g = float(d_x.at({{'i', i}, {'b', b}, {'j', j}}));
        acc_tok[static_cast<std::size_t>(
            d_token_table.OffsetOf(std::array{std::pair{'v', std::int64_t(id)},
                                              std::pair{'i', i}}))] += g;
        acc_pos[static_cast<std::size_t>(d_pos_table.OffsetOf(
            std::array{std::pair{'j', j}, std::pair{'i', i}}))] += g;
      }
    }
  }
  for (std::int64_t e = 0; e < d_token_table.size(); ++e) {
    d_token_table.data()[e] = T(acc_tok[static_cast<std::size_t>(e)]);
  }
  for (std::int64_t e = 0; e < d_pos_table.size(); ++e) {
    d_pos_table.data()[e] = T(acc_pos[static_cast<std::size_t>(e)]);
  }
}

/// Mean-squared error over all elements: fills d_y = 2 (y - target) / N
/// and returns the scalar loss (accumulated in double).
template <typename T>
double MseLossKernel(const Tensor<T>& y, const Tensor<T>& target,
                     Tensor<T>& d_y) {
  require(y.size() == target.size() && y.size() == d_y.size(),
          "loss tensors must match in size");
  const double n = static_cast<double>(y.size());
  double loss = 0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    const float diff = float(y.data()[i]) - float(target.data()[i]);
    loss += static_cast<double>(diff) * diff;
    d_y.data()[i] = T(2.0f * diff / static_cast<float>(n));
  }
  return loss / n;
}

}  // namespace xflow::ops
