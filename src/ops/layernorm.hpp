// Layer normalization (⬜ class): forward, input gradient, parameter
// gradients. Normalizes over one dimension (the embedding dim 'i' in BERT).
#pragma once

#include "tensor/tensor.hpp"

namespace xflow::ops {

/// y = (x - mean) * rstd * gamma + beta, normalizing over `norm_dim`.
/// `mean` and `rstd` (1/sqrt(var + eps)) are emitted for the backward pass;
/// their shapes are x's shape without `norm_dim`.
template <typename T>
void LayerNormForward(const Tensor<T>& x, const Tensor<T>& gamma,
                      const Tensor<T>& beta, char norm_dim, float eps,
                      Tensor<T>& y, TensorF& mean, TensorF& rstd);

/// dx = rstd * (g - mean(g) - xhat * mean(g * xhat)), with g = dy * gamma
/// and xhat the normalized forward input (recomputed from x, mean, rstd).
template <typename T>
void LayerNormBackwardDX(const Tensor<T>& dy, const Tensor<T>& gamma,
                         const Tensor<T>& x, const TensorF& mean,
                         const TensorF& rstd, char norm_dim, Tensor<T>& dx);

/// dgamma = sum(dy * xhat), dbeta = sum(dy), reducing all non-norm dims.
template <typename T>
void LayerNormBackwardDW(const Tensor<T>& dy, const Tensor<T>& x,
                         const TensorF& mean, const TensorF& rstd,
                         char norm_dim, Tensor<T>& dgamma, Tensor<T>& dbeta);

}  // namespace xflow::ops
