// Operator fusion (Sec. IV): detects fusable groups in a dataflow graph via
// iteration-space compatibility and produces the paper's fused kernels.
//
// Rules implemented (Sec. IV, Fig. 3):
//  * Tensor contractions are fusion barriers (only simple scaling is ever
//    folded into them, Sec. IV-C).
//  * A chain continues while iteration spaces are compatible: equal
//    independent dims, or one operator adds a reduction over dims the other
//    iterates independently ("fuse until a reduction dimension or iteration
//    space changes").
//  * Joining requires a dataflow link (consumes a group output or shares an
//    input with a group member).
//  * Launch merge: a lone all-reduce operator (e.g. bias dW) merges into an
//    adjacent group that ends in a reduction over the same dims, sharing
//    one kernel's warp-reduction machinery (gives the paper's BDRB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace xflow::fusion {

/// One fused kernel: a group of operator indices plus its external I/O.
struct FusedKernel {
  std::string name;  // paper name when recognized (AIB, SM, BRD, ...)
  std::vector<int> op_indices;
  std::vector<std::string> external_inputs;
  std::vector<std::string> external_outputs;
  /// Tensors produced and consumed strictly inside the group: their loads
  /// and stores are eliminated -- the data-movement saving of fusion.
  std::vector<std::string> interim;
  /// Reduction dims established by the group ('\0'-free names), if any.
  std::string reduction_dims;

  [[nodiscard]] bool IsContraction(const graph::DataflowGraph& g) const;
};

struct FusionResult {
  std::vector<FusedKernel> kernels;

  /// Elements moved by the fused schedule (sum of external I/O).
  std::int64_t FusedElementsMoved(const graph::DataflowGraph& g) const;
  /// Elements moved by the standard per-operator schedule, counting the
  /// softmax composites at framework kernel granularity (scale / softmax /
  /// dropout as separate kernels), as PyTorch executes them.
  std::int64_t StandardElementsMoved(const graph::DataflowGraph& g) const;
  /// 1 - fused/standard: the paper reports ~22.91% for the encoder layer.
  double DataMovementReduction(const graph::DataflowGraph& g) const;
};

/// Runs the fusion pass over a graph.
FusionResult FuseMaximally(const graph::DataflowGraph& g);

/// True when the two operators' iteration spaces are fusion-compatible.
bool IterationSpacesCompatible(const graph::OpNode& a, const graph::OpNode& b);

}  // namespace xflow::fusion
