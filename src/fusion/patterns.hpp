// The four structural fusion patterns of the paper's Fig. 3, as an
// explicit classifier over adjacent operator pairs inside a fused kernel.
//
//   Pattern 1 (map-map):       producer and consumer share the same
//                              independent iteration space.
//   Pattern 2 (map-reduce):    the consumer reduces over dims the producer
//                              iterated independently (e.g. bias -> LN).
//   Pattern 3 (reduce-map):    a reduction result is broadcast back into a
//                              map over the pre-reduction space (the
//                              two-loop kernels, e.g. LN dX -> dropout dX).
//   Pattern 4 (sibling):       independent operators sharing outer
//                              iteration dims merged into one launch
//                              (e.g. bias dW + the dropout/relu chain).
#pragma once

#include <string>
#include <vector>

#include "fusion/fuser.hpp"
#include "graph/graph.hpp"

namespace xflow::fusion {

enum class FusionPattern {
  kMapMap,      // pattern 1
  kMapReduce,   // pattern 2
  kReduceMap,   // pattern 3
  kSibling,     // pattern 4
};

std::string ToString(FusionPattern p);

/// Classify the fusion of adjacent operators `a` then `b` (a before b in
/// the kernel's schedule). `linked` tells whether b consumes one of a's
/// outputs (a dataflow edge) -- without it the pair is a sibling merge.
FusionPattern ClassifyPair(const graph::OpNode& a, const graph::OpNode& b,
                           bool linked);

/// One classified edge inside a fused kernel.
struct PatternInstance {
  std::string producer;
  std::string consumer;
  FusionPattern pattern;
};

/// All adjacent-pair patterns inside a fused kernel (empty for single-op
/// kernels and contractions).
std::vector<PatternInstance> KernelPatterns(const graph::DataflowGraph& g,
                                            const FusedKernel& kernel);

/// Census over a whole fusion result: how many instances of each pattern
/// the pass exploited (the quantitative content of Fig. 3).
std::vector<std::pair<FusionPattern, int>> PatternCensus(
    const graph::DataflowGraph& g, const FusionResult& fused);

}  // namespace xflow::fusion
