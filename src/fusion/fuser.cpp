#include "fusion/fuser.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow::fusion {

namespace {

using graph::DataflowGraph;
using graph::OpClass;
using graph::OpKind;
using graph::OpNode;

std::string DimNames(const std::vector<DimExt>& dims) {
  std::string s;
  for (const auto& d : dims) s += d.name;
  std::sort(s.begin(), s.end());
  return s;
}

std::string SpaceOf(const OpNode& op) {
  std::string s = DimNames(op.independent_dims) + DimNames(op.reduction_dims);
  std::sort(s.begin(), s.end());
  return s;
}

int SharedDims(const std::string& a, const std::string& b) {
  int n = 0;
  for (char c : a) n += b.find(c) != std::string::npos;
  return n;
}

/// Does `op` have a dataflow link into the group: consumes a tensor some
/// member produced, or shares an input tensor with a member?
bool HasDataflowLink(const DataflowGraph& g, const std::vector<int>& group,
                     const OpNode& op) {
  std::set<std::string> produced, read;
  for (int idx : group) {
    const auto& member = g.ops()[static_cast<std::size_t>(idx)];
    produced.insert(member.outputs.begin(), member.outputs.end());
    read.insert(member.inputs.begin(), member.inputs.end());
  }
  return std::any_of(op.inputs.begin(), op.inputs.end(),
                     [&](const std::string& in) {
                       return produced.contains(in) || read.contains(in);
                     });
}

/// Paper names for recognized kind sequences.
std::string PaperName(const DataflowGraph& g, const std::vector<int>& group,
                      int& drln_count) {
  std::vector<OpKind> kinds;
  kinds.reserve(group.size());
  for (int idx : group) {
    kinds.push_back(g.ops()[static_cast<std::size_t>(idx)].kind);
  }
  const auto is = [&](std::initializer_list<OpKind> seq) {
    return kinds == std::vector<OpKind>(seq);
  };

  if (is({OpKind::kBias, OpKind::kDropout, OpKind::kResidual,
          OpKind::kLayerNorm})) {
    return ++drln_count == 1 ? "DRLN" : "BDRLN";
  }
  if (is({OpKind::kBias, OpKind::kReLU, OpKind::kDropout})) return "BRD";
  if (is({OpKind::kLayerNormDX, OpKind::kDropoutDX})) return "BLNRD";
  if (is({OpKind::kBiasDW, OpKind::kDropoutDX, OpKind::kReLUDX,
          OpKind::kBiasDW})) {
    return "BDRB";
  }
  if (is({OpKind::kResidualBwd, OpKind::kLayerNormDW})) return "EBSB";
  if (kinds.size() == 1) {
    const auto& op = g.ops()[static_cast<std::size_t>(group[0])];
    switch (kinds[0]) {
      case OpKind::kScaledSoftmax: return "SM";
      case OpKind::kScaledSoftmaxDX: return "BS";
      case OpKind::kLayerNormDW: return "BSB";
      case OpKind::kBias: return "AIB";
      case OpKind::kBiasDW:
        return op.name.find("input") != std::string::npos ? "BAIB" : "BAOB";
      case OpKind::kResidualBwd: return "BEI";
      default: break;
    }
    return op.name;
  }
  std::vector<std::string> names;
  for (int idx : group) {
    names.push_back(g.ops()[static_cast<std::size_t>(idx)].name);
  }
  return "fused{" + Join(names, "+") + "}";
}

FusedKernel MakeKernel(const DataflowGraph& g, std::vector<int> group,
                       int& drln_count) {
  FusedKernel k;
  k.op_indices = std::move(group);
  std::set<std::string> produced;
  for (int idx : k.op_indices) {
    const auto& op = g.ops()[static_cast<std::size_t>(idx)];
    for (const auto& out : op.outputs) produced.insert(out);
    if (!op.reduction_dims.empty() && k.reduction_dims.empty()) {
      k.reduction_dims = DimNames(op.reduction_dims);
    }
  }
  std::set<std::string> inputs;
  for (int idx : k.op_indices) {
    const auto& op = g.ops()[static_cast<std::size_t>(idx)];
    for (const auto& in : op.inputs) {
      if (!produced.contains(in)) inputs.insert(in);
    }
  }
  k.external_inputs.assign(inputs.begin(), inputs.end());

  const std::set<int> in_group(k.op_indices.begin(), k.op_indices.end());
  for (const auto& t : produced) {
    const auto consumers = g.ConsumersOf(t);
    const bool consumed_outside =
        std::any_of(consumers.begin(), consumers.end(),
                    [&](int c) { return !in_group.contains(c); });
    if (consumed_outside || consumers.empty()) {
      k.external_outputs.push_back(t);  // graph outputs / saved tensors too
    } else {
      k.interim.push_back(t);
    }
  }
  k.name = PaperName(g, k.op_indices, drln_count);
  return k;
}

}  // namespace

bool FusedKernel::IsContraction(const DataflowGraph& g) const {
  return op_indices.size() == 1 &&
         g.ops()[static_cast<std::size_t>(op_indices[0])].cls() ==
             OpClass::kContraction;
}

bool IterationSpacesCompatible(const OpNode& a, const OpNode& b) {
  const std::string red_a = DimNames(a.reduction_dims);
  const std::string red_b = DimNames(b.reduction_dims);
  // A reduction dimension change breaks fusion.
  if (!red_a.empty() && !red_b.empty() && red_a != red_b) return false;
  // The spaces must conform: sharing at least two dimensions lets the
  // outermost independent dims be shared across the merged kernel.
  return SharedDims(SpaceOf(a), SpaceOf(b)) >= 2;
}

FusionResult FuseMaximally(const DataflowGraph& g) {
  FusionResult result;
  int drln_count = 0;
  std::vector<int> current;

  auto flush = [&] {
    if (!current.empty()) {
      result.kernels.push_back(MakeKernel(g, std::move(current), drln_count));
      current.clear();
    }
  };

  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    const auto& op = g.ops()[i];
    if (op.cls() == OpClass::kContraction) {
      flush();
      current = {static_cast<int>(i)};
      flush();  // contractions stand alone
      continue;
    }
    if (!current.empty()) {
      const auto& last =
          g.ops()[static_cast<std::size_t>(current.back())];
      std::string group_red;
      for (int idx : current) {
        const auto& member = g.ops()[static_cast<std::size_t>(idx)];
        if (!member.reduction_dims.empty()) {
          group_red = DimNames(member.reduction_dims);
          break;
        }
      }
      const std::string op_red = DimNames(op.reduction_dims);
      const bool red_ok =
          group_red.empty() || op_red.empty() || group_red == op_red;
      if (!red_ok || !IterationSpacesCompatible(last, op) ||
          !HasDataflowLink(g, current, op)) {
        flush();
      }
    }
    current.push_back(static_cast<int>(i));
  }
  flush();

  // Launch-merge pass: a lone two-dim reduction operator (bias dW pattern)
  // merges into the next kernel when that kernel ends with a reduction over
  // the same dims -- they share one warp-reduction kernel (paper's BDRB).
  for (std::size_t i = 0; i + 1 < result.kernels.size();) {
    auto& a = result.kernels[i];
    auto& b = result.kernels[i + 1];
    const bool a_is_lone_reduce =
        a.op_indices.size() == 1 && !a.reduction_dims.empty() &&
        !a.IsContraction(g) &&
        g.ops()[static_cast<std::size_t>(a.op_indices[0])].kind ==
            OpKind::kBiasDW;
    const auto& b_last_op =
        g.ops()[static_cast<std::size_t>(b.op_indices.back())];
    const bool b_ends_in_same_reduce =
        !b.IsContraction(g) &&
        DimNames(b_last_op.reduction_dims) == a.reduction_dims;
    if (a_is_lone_reduce && b_ends_in_same_reduce) {
      std::vector<int> merged = a.op_indices;
      merged.insert(merged.end(), b.op_indices.begin(), b.op_indices.end());
      int dummy = 2;  // DRLN naming not applicable here
      result.kernels[i] = MakeKernel(g, std::move(merged), dummy);
      result.kernels.erase(result.kernels.begin() +
                           static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
  return result;
}

std::int64_t FusionResult::FusedElementsMoved(const DataflowGraph& g) const {
  std::int64_t total = 0;
  for (const auto& k : kernels) {
    for (const auto& t : k.external_inputs) {
      total += g.tensor(t).shape.num_elements();
    }
    for (const auto& t : k.external_outputs) {
      total += g.tensor(t).shape.num_elements();
    }
  }
  return total;
}

std::int64_t FusionResult::StandardElementsMoved(
    const DataflowGraph& g) const {
  std::int64_t total = 0;
  for (const auto& op : g.ops()) {
    const std::int64_t in = g.InputElements(op);
    const std::int64_t out = g.OutputElements(op);
    switch (op.kind) {
      case OpKind::kScaledSoftmax: {
        // Framework granularity: scale (r/w), softmax (r/w), dropout
        // (r, w value + mask). The composite's saved softmax equals the
        // softmax stage's output.
        const std::int64_t e = g.InputElements(op);  // |beta|
        total += (e + e) + (e + e) + (e + 2 * e);
        break;
      }
      case OpKind::kScaledSoftmaxDX: {
        // dropout dX (r dy + mask, w), softmax dX (r dy + y, w), scale (r/w).
        const std::int64_t e = g.OutputElements(op);  // |d_beta|
        total += (2 * e + e) + (2 * e + e) + (e + e);
        break;
      }
      default:
        total += in + out;
    }
  }
  return total;
}

double FusionResult::DataMovementReduction(const DataflowGraph& g) const {
  const double standard = static_cast<double>(StandardElementsMoved(g));
  const double fused = static_cast<double>(FusedElementsMoved(g));
  return standard > 0 ? 1.0 - fused / standard : 0.0;
}

}  // namespace xflow::fusion
