#include "fusion/patterns.hpp"

#include <algorithm>
#include <map>

namespace xflow::fusion {

std::string ToString(FusionPattern p) {
  switch (p) {
    case FusionPattern::kMapMap: return "1: map->map";
    case FusionPattern::kMapReduce: return "2: map->reduce";
    case FusionPattern::kReduceMap: return "3: reduce->map";
    case FusionPattern::kSibling: return "4: sibling merge";
  }
  return "?";
}

FusionPattern ClassifyPair(const graph::OpNode& a, const graph::OpNode& b,
                           bool linked) {
  if (!linked) return FusionPattern::kSibling;
  const bool a_reduces = !a.reduction_dims.empty();
  const bool b_reduces = !b.reduction_dims.empty();
  if (a_reduces && !b_reduces) return FusionPattern::kReduceMap;
  if (!a_reduces && b_reduces) return FusionPattern::kMapReduce;
  if (a_reduces && b_reduces) return FusionPattern::kReduceMap;  // chained
  return FusionPattern::kMapMap;
}

std::vector<PatternInstance> KernelPatterns(const graph::DataflowGraph& g,
                                            const FusedKernel& kernel) {
  std::vector<PatternInstance> out;
  for (std::size_t i = 0; i + 1 < kernel.op_indices.size(); ++i) {
    const auto& a =
        g.ops()[static_cast<std::size_t>(kernel.op_indices[i])];
    const auto& b =
        g.ops()[static_cast<std::size_t>(kernel.op_indices[i + 1])];
    const bool linked = std::any_of(
        b.inputs.begin(), b.inputs.end(), [&](const std::string& in) {
          return std::find(a.outputs.begin(), a.outputs.end(), in) !=
                 a.outputs.end();
        });
    out.push_back({a.name, b.name, ClassifyPair(a, b, linked)});
  }
  return out;
}

std::vector<std::pair<FusionPattern, int>> PatternCensus(
    const graph::DataflowGraph& g, const FusionResult& fused) {
  std::map<FusionPattern, int> counts = {{FusionPattern::kMapMap, 0},
                                         {FusionPattern::kMapReduce, 0},
                                         {FusionPattern::kReduceMap, 0},
                                         {FusionPattern::kSibling, 0}};
  for (const auto& k : fused.kernels) {
    if (k.IsContraction(g)) continue;
    for (const auto& inst : KernelPatterns(g, k)) ++counts[inst.pattern];
  }
  return {counts.begin(), counts.end()};
}

}  // namespace xflow::fusion
