// Structural classification of einsum contractions (the lowering taxonomy).
//
// Every contraction flattens to a (batched) GEMM of extents (m, n, k,
// batch), but most of the degenerate shapes deserve cheaper kernels than
// the macro-tile/pack GEMM pipeline: a matrix-vector product has no B
// panel to pack, an outer product performs one multiply per output
// element, a pure reduction is a dot product, and a contraction with
// every GEMM dim degenerate is just a scaled copy. ClassifyContraction
// derives the class from the extents alone, so the graph lowering pass,
// the einsum engine and the verifier's graph/lowering-consistent rule all
// agree by construction. This header is dependency-light on purpose: the
// graph layer records an EinsumClass on every contraction op without
// pulling in the tensor engine.
#pragma once

#include <cstdint>
#include <string_view>

namespace xflow {

/// Flattened GEMM dimensions of a contraction (used by the device model
/// and the lowering classification).
struct GemmExtents {
  std::int64_t m = 1, n = 1, k = 1, batch = 1;
};

/// The lowering class of a contraction. Classes describe the *inner*
/// GEMM; a batched gemv is still kGemv (the batch loop wraps any class,
/// and kBatchedGemm is the batch>1 case of the full-rank pipeline).
enum class EinsumClass {
  kUnclassified,  // not yet lowered (graphs before the lowering pass)
  kGemm,          // m, n, k > 1, single batch: the generic pipeline
  kBatchedGemm,   // m, n, k > 1 across batch > 1 strided GEMMs
  kGemv,          // exactly one of m/n is 1 with k > 1: matrix x vector
  kGer,           // k == 1 with m, n > 1: outer product, one FMA per output
  kReduction,     // m == n == 1 with k > 1: a dot product per batch
  kView,          // k == 1 and (m == 1 or n == 1): a transpose-free
                  // scaled copy -- no contraction arithmetic at all
};

/// Class of the given extents. Total classification: never returns
/// kUnclassified.
constexpr EinsumClass ClassifyContraction(const GemmExtents& e) {
  const bool m1 = e.m == 1, n1 = e.n == 1, k1 = e.k == 1;
  if (k1 && (m1 || n1)) return EinsumClass::kView;
  if (m1 && n1) return EinsumClass::kReduction;
  if (k1) return EinsumClass::kGer;
  if (m1 || n1) return EinsumClass::kGemv;
  return e.batch > 1 ? EinsumClass::kBatchedGemm : EinsumClass::kGemm;
}

/// Stable lowercase names ("gemv", "batched-gemm", ...) for diagnostics.
std::string_view ToString(EinsumClass cls);

}  // namespace xflow
