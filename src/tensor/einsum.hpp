// Einstein-summation tensor contraction (the paper's △ operator class).
//
// Specs use the paper's notation, e.g. "phi,ibj->phbj". The fast path maps a
// contraction onto the strided batched GEMM in gemm.hpp; a naive reference
// path exists for validation.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/einsum_class.hpp"
#include "tensor/tensor.hpp"

namespace xflow {

/// Parsed and classified einsum specification.
struct EinsumSpec {
  std::string a;    // dims of the first operand
  std::string b;    // dims of the second operand
  std::string out;  // dims of the output

  std::string batch_dims;  // in a, b and out (ordered as in out)
  std::string m_dims;      // in a and out only (ordered as in out)
  std::string n_dims;      // in b and out only (ordered as in out)
  std::string k_dims;      // in a and b only (ordered as in a) -- contracted

  /// Parse "ab,bc->ac"-style strings. Throws InvalidArgument on malformed
  /// specs or dims that appear in only one tensor.
  static EinsumSpec Parse(std::string_view spec);

  /// Flop count for given operand extents: 2 * |batch| * M * N * K.
  [[nodiscard]] std::int64_t FlopCount(const Shape& a_shape,
                                       const Shape& b_shape) const;
};

/// Flattened GEMM dimensions of a contraction (see einsum_class.hpp for
/// the GemmExtents definition shared with the graph layer). Throws
/// InvalidArgument naming the spec and both operand shapes when a spec
/// dim is missing from the operand that must carry it.
GemmExtents ContractionExtents(const EinsumSpec& spec, const Shape& a_shape,
                               const Shape& b_shape);

/// Classification of one (spec, operand shapes) site, cached process-wide
/// alongside the offset-table cache (misses are metered via
/// memstats::einsum_class_builds -- a steady-state step re-derives
/// nothing).
struct EinsumClassInfo {
  EinsumClass cls = EinsumClass::kUnclassified;
  GemmExtents extents;
};
const EinsumClassInfo& ClassifyEinsum(const EinsumSpec& spec,
                                      const Shape& a_shape,
                                      const Shape& b_shape);

/// Execution-strategy knobs of one contraction dispatch. Every setting is
/// numerics-free by construction -- each output element is computed start
/// to finish by one thread in a fixed ascending-k order -- so the online
/// autotuner (config/autotune.hpp) may pick any of them and results stay
/// bitwise identical at every thread count.
struct EinsumExecConfig {
  /// Parallelize the batch loop (1), the per-GEMM tiles/rows (0), or let
  /// the built-in heuristic decide (-1).
  int batch_parallel = -1;
  /// Rows per pool task in the gemv/ger row partition; 0 = default.
  std::int64_t row_grain = 0;
};

/// out = alpha * einsum(a, b) + beta * out. `out` must already be shaped with
/// exactly the spec's output dims (any memory order -- layouts are free).
/// Classifies via the cache and dispatches through the lowered kernel set.
template <typename T>
void EinsumInto(const EinsumSpec& spec, const Tensor<T>& a, const Tensor<T>& b,
                Tensor<T>& out, float alpha = 1.0f, float beta = 0.0f);

/// EinsumInto with the lowering class chosen by the caller (the graph
/// executor dispatches through the class its lowering pass recorded).
/// `cls` must be the site's derived class, except that kGemm /
/// kBatchedGemm always run the generic macro-tile pipeline -- passing
/// kGemm forces the generic path for any shape, which is how the bitwise
/// specialized-vs-generic tests and benches get their baseline --
/// and kUnclassified classifies on the fly. `exec`, when non-null,
/// overrides the parallelization heuristics (see EinsumExecConfig).
template <typename T>
void EinsumLowered(const EinsumSpec& spec, EinsumClass cls, const Tensor<T>& a,
                   const Tensor<T>& b, Tensor<T>& out, float alpha = 1.0f,
                   float beta = 0.0f,
                   const EinsumExecConfig* exec = nullptr);

/// Convenience: allocates the output with dims in spec order.
template <typename T>
Tensor<T> Einsum(const EinsumSpec& spec, const Tensor<T>& a,
                 const Tensor<T>& b, float alpha = 1.0f);
template <typename T>
Tensor<T> Einsum(std::string_view spec, const Tensor<T>& a, const Tensor<T>& b,
                 float alpha = 1.0f) {
  return Einsum(EinsumSpec::Parse(spec), a, b, alpha);
}

/// Naive triple-loop reference, fp32 output regardless of input type.
template <typename T>
TensorF EinsumRef(const EinsumSpec& spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha = 1.0f);
template <typename T>
TensorF EinsumRef(std::string_view spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha = 1.0f) {
  return EinsumRef(EinsumSpec::Parse(spec), a, b, alpha);
}

}  // namespace xflow
