// Einstein-summation tensor contraction (the paper's △ operator class).
//
// Specs use the paper's notation, e.g. "phi,ibj->phbj". The fast path maps a
// contraction onto the strided batched GEMM in gemm.hpp; a naive reference
// path exists for validation.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace xflow {

/// Parsed and classified einsum specification.
struct EinsumSpec {
  std::string a;    // dims of the first operand
  std::string b;    // dims of the second operand
  std::string out;  // dims of the output

  std::string batch_dims;  // in a, b and out (ordered as in out)
  std::string m_dims;      // in a and out only (ordered as in out)
  std::string n_dims;      // in b and out only (ordered as in out)
  std::string k_dims;      // in a and b only (ordered as in a) -- contracted

  /// Parse "ab,bc->ac"-style strings. Throws InvalidArgument on malformed
  /// specs or dims that appear in only one tensor.
  static EinsumSpec Parse(std::string_view spec);

  /// Flop count for given operand extents: 2 * |batch| * M * N * K.
  [[nodiscard]] std::int64_t FlopCount(const Shape& a_shape,
                                       const Shape& b_shape) const;
};

/// Flattened GEMM dimensions of a contraction (used by the device model).
struct GemmExtents {
  std::int64_t m = 1, n = 1, k = 1, batch = 1;
};
GemmExtents ContractionExtents(const EinsumSpec& spec, const Shape& a_shape,
                               const Shape& b_shape);

/// out = alpha * einsum(a, b) + beta * out. `out` must already be shaped with
/// exactly the spec's output dims (any memory order -- layouts are free).
template <typename T>
void EinsumInto(const EinsumSpec& spec, const Tensor<T>& a, const Tensor<T>& b,
                Tensor<T>& out, float alpha = 1.0f, float beta = 0.0f);

/// Convenience: allocates the output with dims in spec order.
template <typename T>
Tensor<T> Einsum(const EinsumSpec& spec, const Tensor<T>& a,
                 const Tensor<T>& b, float alpha = 1.0f);
template <typename T>
Tensor<T> Einsum(std::string_view spec, const Tensor<T>& a, const Tensor<T>& b,
                 float alpha = 1.0f) {
  return Einsum(EinsumSpec::Parse(spec), a, b, alpha);
}

/// Naive triple-loop reference, fp32 output regardless of input type.
template <typename T>
TensorF EinsumRef(const EinsumSpec& spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha = 1.0f);
template <typename T>
TensorF EinsumRef(std::string_view spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha = 1.0f) {
  return EinsumRef(EinsumSpec::Parse(spec), a, b, alpha);
}

}  // namespace xflow
