#include "tensor/einsum.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/memstats.hpp"

namespace xflow {

namespace {

bool Contains(std::string_view s, char c) {
  return s.find(c) != std::string_view::npos;
}

/// "[b:2,i:24]" -- operand shapes as they appear in diagnostics, so a
/// failed contraction names exactly the (spec, shapes) site that broke.
std::string ShapeStr(const Shape& s) {
  std::string out = "[";
  bool first = true;
  for (const auto& d : s.dims()) {
    if (!first) out += ',';
    first = false;
    out += d.name;
    out += ':';
    out += std::to_string(d.extent);
  }
  out += ']';
  return out;
}

std::string SpecStr(const EinsumSpec& spec) {
  std::string out;
  out.reserve(spec.a.size() + spec.b.size() + spec.out.size() + 3);
  out += spec.a;
  out += ',';
  out += spec.b;
  out += "->";
  out += spec.out;
  return out;
}

/// Builds, for a group of dims, the table of memory offsets in `stride_src`
/// over the flattened group index (row-major in group order). The group's
/// extents come from `extent_src`; dims missing from `stride_src` contribute
/// stride 0 (broadcast), so the table always spans the full group space.
std::vector<std::int64_t> OffsetTable(const std::string& group,
                                      const Shape& extent_src,
                                      const Shape& stride_src) {
  std::int64_t total = 1;
  std::vector<std::int64_t> extents, strides;
  for (char d : group) {
    const std::int64_t e = extent_src.extent(d);
    extents.push_back(e);
    strides.push_back(stride_src.has(d) ? stride_src.stride(d) : 0);
    total *= e;
  }
  std::vector<std::int64_t> table(static_cast<std::size_t>(total));
  std::vector<std::int64_t> idx(group.size(), 0);
  for (std::int64_t flat = 0; flat < total; ++flat) {
    std::int64_t off = 0;
    for (std::size_t d = 0; d < group.size(); ++d) off += idx[d] * strides[d];
    table[static_cast<std::size_t>(flat)] = off;
    for (int d = static_cast<int>(group.size()) - 1; d >= 0; --d) {
      auto du = static_cast<std::size_t>(d);
      if (++idx[du] < extents[du]) break;
      idx[du] = 0;
    }
  }
  return table;
}

std::int64_t GroupSize(const std::string& group, const Shape& shape) {
  std::int64_t total = 1;
  for (char d : group) total *= shape.has(d) ? shape.extent(d) : 1;
  return total;
}

/// The nine offset tables one (spec, operand shapes, output shape)
/// combination needs, built once and cached: transformer layers run the
/// same handful of contractions every step, and a steady-state step must
/// not rebuild its tables (the executor's allocation-free contract --
/// cache misses are metered via memstats::einsum_table_builds).
struct EinsumTables {
  std::vector<std::int64_t> a_batch, b_batch, c_batch;
  std::vector<std::int64_t> a_m, c_m;
  std::vector<std::int64_t> b_n, c_n;
  std::vector<std::int64_t> a_k, b_k;
};

void AppendShapeSig(const Shape& s, std::string& key) {
  for (const auto& d : s.dims()) {
    key += d.name;
    key += std::to_string(d.extent);
    key += '.';
  }
  key += '|';
}

const EinsumTables& CachedTables(const EinsumSpec& spec, const Shape& a,
                                 const Shape& b, const Shape& c) {
  // Dense tensors derive their strides from the shape, so (spec, shapes)
  // fully determines every table. The cache is tiny in practice (one
  // entry per distinct contraction site per model configuration) and
  // never evicts; map nodes keep returned references stable.
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<EinsumTables>> cache;
  std::string key;
  key.reserve(64);
  key += spec.a;
  key += ',';
  key += spec.b;
  key += '>';
  key += spec.out;
  key += '|';
  AppendShapeSig(a, key);
  AppendShapeSig(b, key);
  AppendShapeSig(c, key);

  const std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto tables = std::make_unique<EinsumTables>();
    tables->a_batch = OffsetTable(spec.batch_dims, a, a);
    tables->b_batch = OffsetTable(spec.batch_dims, a, b);
    tables->c_batch = OffsetTable(spec.batch_dims, a, c);
    tables->a_m = OffsetTable(spec.m_dims, a, a);
    tables->c_m = OffsetTable(spec.m_dims, a, c);
    tables->b_n = OffsetTable(spec.n_dims, b, b);
    tables->c_n = OffsetTable(spec.n_dims, b, c);
    tables->a_k = OffsetTable(spec.k_dims, a, a);
    tables->b_k = OffsetTable(spec.k_dims, a, b);
    memstats::RecordEinsumTableBuild();
    it = cache.emplace(std::move(key), std::move(tables)).first;
  }
  return *it->second;
}

}  // namespace

EinsumSpec EinsumSpec::Parse(std::string_view spec) {
  const auto comma = spec.find(',');
  const auto arrow = spec.find("->");
  require(comma != std::string_view::npos && arrow != std::string_view::npos &&
              comma < arrow,
          StrFormat("malformed einsum spec '%.*s'",
                    static_cast<int>(spec.size()), spec.data()));
  EinsumSpec s;
  s.a = std::string(spec.substr(0, comma));
  s.b = std::string(spec.substr(comma + 1, arrow - comma - 1));
  s.out = std::string(spec.substr(arrow + 2));

  for (char d : s.out) {
    const bool in_a = Contains(s.a, d), in_b = Contains(s.b, d);
    require(in_a || in_b,
            StrFormat("einsum spec '%s': output dim '%c' appears in "
                      "neither input ('%s' / '%s')",
                      SpecStr(s).c_str(), d, s.a.c_str(), s.b.c_str()));
    if (in_a && in_b) {
      s.batch_dims += d;
    } else if (in_a) {
      s.m_dims += d;
    } else {
      s.n_dims += d;
    }
  }
  for (char d : s.a) {
    if (!Contains(s.out, d)) {
      require(Contains(s.b, d),
              StrFormat("einsum spec '%s': contracted dim '%c' of input "
                        "'%s' does not appear in input '%s'",
                        SpecStr(s).c_str(), d, s.a.c_str(), s.b.c_str()));
      s.k_dims += d;
    }
  }
  for (char d : s.b) {
    require(Contains(s.out, d) || Contains(s.a, d),
            StrFormat("einsum spec '%s': dim '%c' of input '%s' appears "
                      "in neither input '%s' nor output '%s'",
                      SpecStr(s).c_str(), d, s.b.c_str(), s.a.c_str(),
                      s.out.c_str()));
  }
  return s;
}

std::int64_t EinsumSpec::FlopCount(const Shape& a_shape,
                                   const Shape& b_shape) const {
  const auto e = ContractionExtents(*this, a_shape, b_shape);
  return 2 * e.batch * e.m * e.n * e.k;
}

GemmExtents ContractionExtents(const EinsumSpec& spec, const Shape& a_shape,
                               const Shape& b_shape) {
  const auto missing = [&](char d, const char* group) {
    return StrFormat(
        "einsum '%s': %s dim '%c' missing from operand shapes a=%s b=%s",
        SpecStr(spec).c_str(), group, d, ShapeStr(a_shape).c_str(),
        ShapeStr(b_shape).c_str());
  };
  GemmExtents e;
  for (char d : spec.batch_dims) {
    require(a_shape.has(d) || b_shape.has(d), missing(d, "batch"));
    e.batch *= a_shape.has(d) ? a_shape.extent(d) : b_shape.extent(d);
  }
  for (char d : spec.m_dims) {
    require(a_shape.has(d), missing(d, "m"));
    e.m *= a_shape.extent(d);
  }
  for (char d : spec.n_dims) {
    require(b_shape.has(d), missing(d, "n"));
    e.n *= b_shape.extent(d);
  }
  for (char d : spec.k_dims) {
    require(a_shape.has(d), missing(d, "k"));
    e.k *= a_shape.extent(d);
  }
  return e;
}

std::string_view ToString(EinsumClass cls) {
  switch (cls) {
    case EinsumClass::kUnclassified:
      return "unclassified";
    case EinsumClass::kGemm:
      return "gemm";
    case EinsumClass::kBatchedGemm:
      return "batched-gemm";
    case EinsumClass::kGemv:
      return "gemv";
    case EinsumClass::kGer:
      return "ger";
    case EinsumClass::kReduction:
      return "reduction";
    case EinsumClass::kView:
      return "view";
  }
  return "unclassified";
}

const EinsumClassInfo& ClassifyEinsum(const EinsumSpec& spec,
                                      const Shape& a_shape,
                                      const Shape& b_shape) {
  // Same lifecycle as CachedTables: (spec, operand shapes) fully
  // determines the extents, the cache never evicts, and map nodes keep
  // the returned references stable. Misses are metered so steady-state
  // zero-rebuild tests cover classification too.
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<EinsumClassInfo>> cache;
  std::string key;
  key.reserve(48);
  key += spec.a;
  key += ',';
  key += spec.b;
  key += '>';
  key += spec.out;
  key += '|';
  AppendShapeSig(a_shape, key);
  AppendShapeSig(b_shape, key);

  const std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto info = std::make_unique<EinsumClassInfo>();
    info->extents = ContractionExtents(spec, a_shape, b_shape);
    info->cls = ClassifyContraction(info->extents);
    memstats::RecordEinsumClassBuild();
    it = cache.emplace(std::move(key), std::move(info)).first;
  }
  return *it->second;
}

namespace {

/// Default rows-per-task for the specialized row-partitioned kernels;
/// matches the generic pipeline's M macro-tile height so a lowered gemv
/// spawns about as many tasks as the GEMM it replaced.
constexpr std::int64_t kDefaultRowGrain = 64;

}  // namespace

template <typename T>
void EinsumLowered(const EinsumSpec& spec, EinsumClass cls, const Tensor<T>& a,
                   const Tensor<T>& b, Tensor<T>& out, float alpha, float beta,
                   const EinsumExecConfig* exec) {
  // Validate extents agree across operands.
  for (char d : spec.k_dims) {
    require(a.extent(d) == b.extent(d),
            StrFormat("einsum '%s': contracted dim '%c' extent mismatch: "
                      "a=%s vs b=%s",
                      SpecStr(spec).c_str(), d, ShapeStr(a.shape()).c_str(),
                      ShapeStr(b.shape()).c_str()));
  }
  for (char d : spec.batch_dims) {
    require(a.extent(d) == b.extent(d) && a.extent(d) == out.extent(d),
            StrFormat("einsum '%s': batch dim '%c' extent mismatch: a=%s "
                      "b=%s out=%s",
                      SpecStr(spec).c_str(), d, ShapeStr(a.shape()).c_str(),
                      ShapeStr(b.shape()).c_str(),
                      ShapeStr(out.shape()).c_str()));
  }
  require(out.shape().names().size() == spec.out.size(),
          StrFormat("einsum '%s': output tensor rank %zu does not match "
                    "the spec's %zu output dims (out=%s)",
                    SpecStr(spec).c_str(), out.shape().names().size(),
                    spec.out.size(), ShapeStr(out.shape()).c_str()));

  const EinsumClassInfo& info = ClassifyEinsum(spec, a.shape(), b.shape());
  if (cls == EinsumClass::kUnclassified) cls = info.cls;
  // kGemm / kBatchedGemm force the generic pipeline for any shape (the
  // bitwise baseline); any *specialized* class must be the one this
  // site's extents derive, or the kernel would read the wrong tables.
  require(cls == info.cls || cls == EinsumClass::kGemm ||
              cls == EinsumClass::kBatchedGemm,
          StrFormat("einsum '%s': lowered class '%.*s' does not match the "
                    "derived class '%.*s' (a=%s b=%s)",
                    SpecStr(spec).c_str(),
                    static_cast<int>(ToString(cls).size()),
                    ToString(cls).data(),
                    static_cast<int>(ToString(info.cls).size()),
                    ToString(info.cls).data(), ShapeStr(a.shape()).c_str(),
                    ShapeStr(b.shape()).c_str()));

  const EinsumTables& t = CachedTables(spec, a.shape(), b.shape(),
                                       out.shape());
  const auto& a_batch = t.a_batch;
  const auto& b_batch = t.b_batch;
  const auto& c_batch = t.c_batch;
  const auto& a_m = t.a_m;
  const auto& c_m = t.c_m;
  const auto& b_n = t.b_n;
  const auto& c_n = t.c_n;
  const auto& a_k = t.a_k;
  const auto& b_k = t.b_k;

  const auto m = static_cast<std::int64_t>(a_m.size());
  const auto n = static_cast<std::int64_t>(b_n.size());
  const std::int64_t row_grain =
      exec != nullptr && exec->row_grain > 0 ? exec->row_grain
                                             : kDefaultRowGrain;

  // One inner GEMM/kernel of the batch. Specialized classes index the
  // same offset tables as the generic path, with degenerate (size-1)
  // groups folded into the operand base pointers; per output element
  // they run the generic pipeline's exact float-op sequence, so every
  // class is bitwise identical to GemmOffsets on the same site.
  auto run_one = [&](std::int64_t batch) {
    const auto i = static_cast<std::size_t>(batch);
    const T* pa = a.data() + a_batch[i];
    const T* pb = b.data() + b_batch[i];
    T* pc = out.data() + c_batch[i];
    switch (cls) {
      case EinsumClass::kGemv:
        if (n == 1) {
          GemvOffsets<T, T>(pa, pb + b_n[0], pc + c_n[0], a_m, a_k, b_k, c_m,
                            alpha, beta, row_grain);
        } else {  // m == 1: the matrix is b, the vector is a.
          GemvOffsets<T, T>(pb, pa + a_m[0], pc + c_m[0], b_n, b_k, a_k, c_n,
                            alpha, beta, row_grain);
        }
        break;
      case EinsumClass::kGer:
        GerOffsets<T, T>(pa + a_k[0], pb + b_k[0], pc, a_m, b_n, c_m, c_n,
                         alpha, beta, row_grain);
        break;
      case EinsumClass::kReduction:
        DotOffsets<T, T>(pa + a_m[0], pb + b_n[0], pc + c_m[0] + c_n[0], a_k,
                         b_k, alpha, beta);
        break;
      case EinsumClass::kView:
        if (n == 1) {  // covers the fully-degenerate single-element case
          ScaledCopyOffsets<T, T>(pa + a_k[0], float(pb[b_k[0] + b_n[0]]),
                                  pc + c_n[0], a_m, c_m, alpha, beta,
                                  row_grain);
        } else {  // m == 1: copy b, scaled by a's single element.
          ScaledCopyOffsets<T, T>(pb + b_k[0], float(pa[a_m[0] + a_k[0]]),
                                  pc + c_m[0], b_n, c_n, alpha, beta,
                                  row_grain);
        }
        break;
      default:  // kGemm / kBatchedGemm: the generic macro-tile pipeline.
        GemmOffsets<T, T>(pa, pb, pc, a_m, a_k, b_k, b_n, c_m, c_n, alpha,
                          beta);
        break;
    }
  };

  // Batched inner kernels write disjoint output slices, so they can run
  // on the pool directly; but when each inner kernel has enough tasks to
  // cover the pool by itself, inner parallelism balances better than a
  // few coarse batch tasks, so the batch loop stays serial (the inner
  // kernels run inline when called from a pool worker). Either path
  // performs the same per-element arithmetic, so results do not depend
  // on thread count -- which also makes the choice a legal autotuner
  // knob (EinsumExecConfig::batch_parallel).
  const auto batches = static_cast<std::int64_t>(a_batch.size());
  std::int64_t inner_tasks = 1;
  switch (cls) {
    case EinsumClass::kGemv:
      inner_tasks = ((n == 1 ? m : n) + row_grain - 1) / row_grain;
      break;
    case EinsumClass::kGer:
      inner_tasks = (m + row_grain - 1) / row_grain;
      break;
    case EinsumClass::kView:
      inner_tasks = ((n == 1 ? m : n) + row_grain - 1) / row_grain;
      break;
    case EinsumClass::kReduction:
      inner_tasks = 1;
      break;
    default:
      inner_tasks = GemmTileCount(m, n);
      break;
  }
  const std::int64_t threads = ThreadPool::Global().threads();
  const bool batch_par =
      batches > 1 &&
      (exec != nullptr && exec->batch_parallel >= 0
           ? exec->batch_parallel != 0
           : batches >= threads || inner_tasks < threads);
  if (batch_par) {
    ParallelFor(batches, 1, run_one);
  } else {
    for (std::int64_t batch = 0; batch < batches; ++batch) run_one(batch);
  }
}

template <typename T>
void EinsumInto(const EinsumSpec& spec, const Tensor<T>& a, const Tensor<T>& b,
                Tensor<T>& out, float alpha, float beta) {
  EinsumLowered(spec, EinsumClass::kUnclassified, a, b, out, alpha, beta,
                nullptr);
}

template <typename T>
Tensor<T> Einsum(const EinsumSpec& spec, const Tensor<T>& a,
                 const Tensor<T>& b, float alpha) {
  std::vector<DimExt> dims;
  for (char d : spec.out) {
    dims.push_back({d, a.shape().has(d) ? a.extent(d) : b.extent(d)});
  }
  Tensor<T> out{Shape(std::move(dims))};
  EinsumInto(spec, a, b, out, alpha, 0.0f);
  return out;
}

template <typename T>
TensorF EinsumRef(const EinsumSpec& spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha) {
  std::vector<DimExt> dims;
  for (char d : spec.out) {
    dims.push_back({d, a.shape().has(d) ? a.extent(d) : b.extent(d)});
  }
  TensorF out{Shape(dims)};

  std::vector<DimExt> k_dims;
  for (char d : spec.k_dims) k_dims.push_back({d, a.extent(d)});
  const Shape k_shape{k_dims};
  const std::int64_t k_total = GroupSize(spec.k_dims, a.shape());

  const auto a_out = OffsetTable(spec.out, out.shape(), a.shape());
  const auto b_out = OffsetTable(spec.out, out.shape(), b.shape());
  const auto a_k = OffsetTable(spec.k_dims, a.shape(), a.shape());
  const auto b_k = OffsetTable(spec.k_dims, a.shape(), b.shape());

  for (std::int64_t o = 0; o < out.size(); ++o) {
    float acc = 0;
    for (std::int64_t k = 0; k < k_total; ++k) {
      acc += float(a.data()[a_out[static_cast<std::size_t>(o)] +
                            a_k[static_cast<std::size_t>(k)]]) *
             float(b.data()[b_out[static_cast<std::size_t>(o)] +
                            b_k[static_cast<std::size_t>(k)]]);
    }
    out.data()[o] = alpha * acc;
  }
  return out;
}

template void EinsumLowered<Half>(const EinsumSpec&, EinsumClass,
                                  const Tensor<Half>&, const Tensor<Half>&,
                                  Tensor<Half>&, float, float,
                                  const EinsumExecConfig*);
template void EinsumLowered<float>(const EinsumSpec&, EinsumClass,
                                   const Tensor<float>&, const Tensor<float>&,
                                   Tensor<float>&, float, float,
                                   const EinsumExecConfig*);
template void EinsumInto<Half>(const EinsumSpec&, const Tensor<Half>&,
                               const Tensor<Half>&, Tensor<Half>&, float,
                               float);
template void EinsumInto<float>(const EinsumSpec&, const Tensor<float>&,
                                const Tensor<float>&, Tensor<float>&, float,
                                float);
template Tensor<Half> Einsum<Half>(const EinsumSpec&, const Tensor<Half>&,
                                   const Tensor<Half>&, float);
template Tensor<float> Einsum<float>(const EinsumSpec&, const Tensor<float>&,
                                     const Tensor<float>&, float);
template TensorF EinsumRef<Half>(const EinsumSpec&, const Tensor<Half>&,
                                 const Tensor<Half>&, float);
template TensorF EinsumRef<float>(const EinsumSpec&, const Tensor<float>&,
                                  const Tensor<float>&, float);

}  // namespace xflow
