#include "tensor/einsum.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/memstats.hpp"

namespace xflow {

namespace {

bool Contains(std::string_view s, char c) {
  return s.find(c) != std::string_view::npos;
}

/// Builds, for a group of dims, the table of memory offsets in `stride_src`
/// over the flattened group index (row-major in group order). The group's
/// extents come from `extent_src`; dims missing from `stride_src` contribute
/// stride 0 (broadcast), so the table always spans the full group space.
std::vector<std::int64_t> OffsetTable(const std::string& group,
                                      const Shape& extent_src,
                                      const Shape& stride_src) {
  std::int64_t total = 1;
  std::vector<std::int64_t> extents, strides;
  for (char d : group) {
    const std::int64_t e = extent_src.extent(d);
    extents.push_back(e);
    strides.push_back(stride_src.has(d) ? stride_src.stride(d) : 0);
    total *= e;
  }
  std::vector<std::int64_t> table(static_cast<std::size_t>(total));
  std::vector<std::int64_t> idx(group.size(), 0);
  for (std::int64_t flat = 0; flat < total; ++flat) {
    std::int64_t off = 0;
    for (std::size_t d = 0; d < group.size(); ++d) off += idx[d] * strides[d];
    table[static_cast<std::size_t>(flat)] = off;
    for (int d = static_cast<int>(group.size()) - 1; d >= 0; --d) {
      auto du = static_cast<std::size_t>(d);
      if (++idx[du] < extents[du]) break;
      idx[du] = 0;
    }
  }
  return table;
}

std::int64_t GroupSize(const std::string& group, const Shape& shape) {
  std::int64_t total = 1;
  for (char d : group) total *= shape.has(d) ? shape.extent(d) : 1;
  return total;
}

/// The nine offset tables one (spec, operand shapes, output shape)
/// combination needs, built once and cached: transformer layers run the
/// same handful of contractions every step, and a steady-state step must
/// not rebuild its tables (the executor's allocation-free contract --
/// cache misses are metered via memstats::einsum_table_builds).
struct EinsumTables {
  std::vector<std::int64_t> a_batch, b_batch, c_batch;
  std::vector<std::int64_t> a_m, c_m;
  std::vector<std::int64_t> b_n, c_n;
  std::vector<std::int64_t> a_k, b_k;
};

void AppendShapeSig(const Shape& s, std::string& key) {
  for (const auto& d : s.dims()) {
    key += d.name;
    key += std::to_string(d.extent);
    key += '.';
  }
  key += '|';
}

const EinsumTables& CachedTables(const EinsumSpec& spec, const Shape& a,
                                 const Shape& b, const Shape& c) {
  // Dense tensors derive their strides from the shape, so (spec, shapes)
  // fully determines every table. The cache is tiny in practice (one
  // entry per distinct contraction site per model configuration) and
  // never evicts; map nodes keep returned references stable.
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<EinsumTables>> cache;
  std::string key;
  key.reserve(64);
  key += spec.a;
  key += ',';
  key += spec.b;
  key += '>';
  key += spec.out;
  key += '|';
  AppendShapeSig(a, key);
  AppendShapeSig(b, key);
  AppendShapeSig(c, key);

  const std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto tables = std::make_unique<EinsumTables>();
    tables->a_batch = OffsetTable(spec.batch_dims, a, a);
    tables->b_batch = OffsetTable(spec.batch_dims, a, b);
    tables->c_batch = OffsetTable(spec.batch_dims, a, c);
    tables->a_m = OffsetTable(spec.m_dims, a, a);
    tables->c_m = OffsetTable(spec.m_dims, a, c);
    tables->b_n = OffsetTable(spec.n_dims, b, b);
    tables->c_n = OffsetTable(spec.n_dims, b, c);
    tables->a_k = OffsetTable(spec.k_dims, a, a);
    tables->b_k = OffsetTable(spec.k_dims, a, b);
    memstats::RecordEinsumTableBuild();
    it = cache.emplace(std::move(key), std::move(tables)).first;
  }
  return *it->second;
}

}  // namespace

EinsumSpec EinsumSpec::Parse(std::string_view spec) {
  const auto comma = spec.find(',');
  const auto arrow = spec.find("->");
  require(comma != std::string_view::npos && arrow != std::string_view::npos &&
              comma < arrow,
          StrFormat("malformed einsum spec '%.*s'",
                    static_cast<int>(spec.size()), spec.data()));
  EinsumSpec s;
  s.a = std::string(spec.substr(0, comma));
  s.b = std::string(spec.substr(comma + 1, arrow - comma - 1));
  s.out = std::string(spec.substr(arrow + 2));

  for (char d : s.out) {
    const bool in_a = Contains(s.a, d), in_b = Contains(s.b, d);
    require(in_a || in_b, "output dim must appear in an input");
    if (in_a && in_b) {
      s.batch_dims += d;
    } else if (in_a) {
      s.m_dims += d;
    } else {
      s.n_dims += d;
    }
  }
  for (char d : s.a) {
    if (!Contains(s.out, d)) {
      require(Contains(s.b, d),
              "contracted dim must appear in both inputs");
      s.k_dims += d;
    }
  }
  for (char d : s.b) {
    require(Contains(s.out, d) || Contains(s.a, d),
            "every dim of b must appear in a or out");
  }
  return s;
}

std::int64_t EinsumSpec::FlopCount(const Shape& a_shape,
                                   const Shape& b_shape) const {
  const auto e = ContractionExtents(*this, a_shape, b_shape);
  return 2 * e.batch * e.m * e.n * e.k;
}

GemmExtents ContractionExtents(const EinsumSpec& spec, const Shape& a_shape,
                               const Shape& b_shape) {
  GemmExtents e;
  for (char d : spec.batch_dims) {
    e.batch *= a_shape.has(d) ? a_shape.extent(d) : b_shape.extent(d);
  }
  for (char d : spec.m_dims) e.m *= a_shape.extent(d);
  for (char d : spec.n_dims) e.n *= b_shape.extent(d);
  for (char d : spec.k_dims) e.k *= a_shape.extent(d);
  return e;
}

template <typename T>
void EinsumInto(const EinsumSpec& spec, const Tensor<T>& a, const Tensor<T>& b,
                Tensor<T>& out, float alpha, float beta) {
  // Validate extents agree across operands.
  for (char d : spec.k_dims) {
    require(a.extent(d) == b.extent(d), "contracted extents must match");
  }
  for (char d : spec.batch_dims) {
    require(a.extent(d) == b.extent(d) && a.extent(d) == out.extent(d),
            "batch extents must match");
  }
  require(out.shape().names().size() == spec.out.size(),
          "output tensor rank must match spec");

  const EinsumTables& t = CachedTables(spec, a.shape(), b.shape(),
                                       out.shape());
  const auto& a_batch = t.a_batch;
  const auto& b_batch = t.b_batch;
  const auto& c_batch = t.c_batch;
  const auto& a_m = t.a_m;
  const auto& c_m = t.c_m;
  const auto& b_n = t.b_n;
  const auto& c_n = t.c_n;
  const auto& a_k = t.a_k;
  const auto& b_k = t.b_k;

  // Batched GEMMs write disjoint output slices, so they can run on the
  // pool directly; but when each GEMM has enough macro-tiles to cover the
  // pool by itself, tile-level parallelism balances better than a few
  // coarse batch tasks, so the batch loop stays serial (GemmOffsets runs
  // inline when called from a pool worker). Either path performs the same
  // per-tile arithmetic, so results do not depend on thread count.
  const auto batches = static_cast<std::int64_t>(a_batch.size());
  auto run_one = [&](std::int64_t batch) {
    const auto i = static_cast<std::size_t>(batch);
    GemmOffsets<T, T>(a.data() + a_batch[i], b.data() + b_batch[i],
                      out.data() + c_batch[i], a_m, a_k, b_k, b_n, c_m, c_n,
                      alpha, beta);
  };
  const std::int64_t threads = ThreadPool::Global().threads();
  const std::int64_t tiles_per_gemm =
      GemmTileCount(static_cast<std::int64_t>(a_m.size()),
                    static_cast<std::int64_t>(b_n.size()));
  if (batches > 1 && (batches >= threads || tiles_per_gemm < threads)) {
    ParallelFor(batches, 1, run_one);
  } else {
    for (std::int64_t batch = 0; batch < batches; ++batch) run_one(batch);
  }
}

template <typename T>
Tensor<T> Einsum(const EinsumSpec& spec, const Tensor<T>& a,
                 const Tensor<T>& b, float alpha) {
  std::vector<DimExt> dims;
  for (char d : spec.out) {
    dims.push_back({d, a.shape().has(d) ? a.extent(d) : b.extent(d)});
  }
  Tensor<T> out{Shape(std::move(dims))};
  EinsumInto(spec, a, b, out, alpha, 0.0f);
  return out;
}

template <typename T>
TensorF EinsumRef(const EinsumSpec& spec, const Tensor<T>& a,
                  const Tensor<T>& b, float alpha) {
  std::vector<DimExt> dims;
  for (char d : spec.out) {
    dims.push_back({d, a.shape().has(d) ? a.extent(d) : b.extent(d)});
  }
  TensorF out{Shape(dims)};

  std::vector<DimExt> k_dims;
  for (char d : spec.k_dims) k_dims.push_back({d, a.extent(d)});
  const Shape k_shape{k_dims};
  const std::int64_t k_total = GroupSize(spec.k_dims, a.shape());

  const auto a_out = OffsetTable(spec.out, out.shape(), a.shape());
  const auto b_out = OffsetTable(spec.out, out.shape(), b.shape());
  const auto a_k = OffsetTable(spec.k_dims, a.shape(), a.shape());
  const auto b_k = OffsetTable(spec.k_dims, a.shape(), b.shape());

  for (std::int64_t o = 0; o < out.size(); ++o) {
    float acc = 0;
    for (std::int64_t k = 0; k < k_total; ++k) {
      acc += float(a.data()[a_out[static_cast<std::size_t>(o)] +
                            a_k[static_cast<std::size_t>(k)]]) *
             float(b.data()[b_out[static_cast<std::size_t>(o)] +
                            b_k[static_cast<std::size_t>(k)]]);
    }
    out.data()[o] = alpha * acc;
  }
  return out;
}

template void EinsumInto<Half>(const EinsumSpec&, const Tensor<Half>&,
                               const Tensor<Half>&, Tensor<Half>&, float,
                               float);
template void EinsumInto<float>(const EinsumSpec&, const Tensor<float>&,
                                const Tensor<float>&, Tensor<float>&, float,
                                float);
template Tensor<Half> Einsum<Half>(const EinsumSpec&, const Tensor<Half>&,
                                   const Tensor<Half>&, float);
template Tensor<float> Einsum<float>(const EinsumSpec&, const Tensor<float>&,
                                     const Tensor<float>&, float);
template TensorF EinsumRef<Half>(const EinsumSpec&, const Tensor<Half>&,
                                 const Tensor<Half>&, float);
template TensorF EinsumRef<float>(const EinsumSpec&, const Tensor<float>&,
                                  const Tensor<float>&, float);

}  // namespace xflow
