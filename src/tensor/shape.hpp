// Named-dimension shapes.
//
// Following the paper's notation, dimensions are single letters:
//   b: batch   j,k: sequence   h: heads   p,w: head projection
//   i: embedding   u: feed-forward width
// A Shape lists dimensions in *memory order* (outermost / slowest first);
// permuting that order is exactly the paper's "data layout" knob.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace xflow {

/// One named dimension with its extent.
struct DimExt {
  char name;
  std::int64_t extent;

  friend bool operator==(const DimExt&, const DimExt&) = default;
};

/// An ordered list of named dimensions. Order is memory order.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<DimExt> dims);
  /// Convenience: Shape("phb", {64, 16, 8}).
  Shape(std::string_view names, std::span<const std::int64_t> extents);
  Shape(std::string_view names, std::initializer_list<std::int64_t> extents);

  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<DimExt>& dims() const { return dims_; }
  /// Dimension names in memory order, e.g. "phbj".
  [[nodiscard]] std::string names() const;
  [[nodiscard]] bool has(char name) const;
  [[nodiscard]] std::int64_t extent(char name) const;
  [[nodiscard]] std::int64_t num_elements() const;

  /// Row-major strides (elements) for the current memory order.
  [[nodiscard]] std::vector<std::int64_t> strides() const;
  [[nodiscard]] std::int64_t stride(char name) const;

  /// Same dimensions, reordered to `new_order` (a permutation of names()).
  [[nodiscard]] Shape Permuted(std::string_view new_order) const;

  friend bool operator==(const Shape&, const Shape&) = default;

 private:
  std::vector<DimExt> dims_;
};

/// All permutations of a dimension-name string (the layout search space).
std::vector<std::string> AllPermutations(std::string names);

/// Calls `fn` once per logical index tuple (indices ordered as shape.names()).
void ForEachIndex(const Shape& shape,
                  const std::function<void(std::span<const std::int64_t>)>& fn);

}  // namespace xflow
