// A reusable arena for activation memory: one aligned slab backing
// non-owning Tensor views at fixed (planner-chosen) offsets.
//
// Two usage styles:
//   * plan-driven (the transformer layers): Reserve(plan.peak_bytes())
//     once, then vend ViewAt(offset, shape) views at the offsets a
//     liveness plan assigned -- the slab never moves, so views stay valid
//     and steady-state steps perform zero allocations;
//   * bump mode (scratch / tests): Acquire(shape) hands out aligned views
//     in order and Reset() rewinds. Growth replaces the slab and stales
//     every outstanding view, so treat growth as a warmup-only event.
//
// Slab allocations report to memstats (the planner's instrumentation
// hook) and are zeroed with a parallel first touch so pages are faulted
// in across threads.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace xflow {

class Workspace {
 public:
  /// Offset granularity of Acquire and the usual plan alignment.
  static constexpr std::size_t kAlignment = 64;

  Workspace() = default;
  explicit Workspace(std::size_t bytes) { Reserve(bytes); }
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&& other) noexcept;
  Workspace& operator=(Workspace&& other) noexcept;

  /// Grows the slab to at least `bytes` (never shrinks; contents are not
  /// carried over -- the new slab is zeroed). Growing replaces the slab,
  /// invalidating every outstanding view: size up front when views must
  /// stay stable.
  void Reserve(std::size_t bytes);

  /// View of `shape` elements of T at a fixed byte offset (a planner
  /// placement). The view is valid until the slab is grown or destroyed.
  template <typename T>
  [[nodiscard]] Tensor<T> ViewAt(std::size_t offset_bytes, Shape shape) {
    const std::size_t bytes =
        static_cast<std::size_t>(shape.num_elements()) * sizeof(T);
    require(offset_bytes % alignof(T) == 0,
            "workspace view offset is misaligned for the element type");
    require(offset_bytes + bytes <= capacity_,
            "workspace view exceeds the reserved slab");
    return Tensor<T>::FromSpan(std::move(shape),
                               reinterpret_cast<T*>(slab_ + offset_bytes));
  }

  /// Bump-allocates an aligned view (no liveness reuse). Grows the slab
  /// when out of space, staling earlier views -- Reserve enough up front
  /// when that matters.
  template <typename T>
  [[nodiscard]] Tensor<T> Acquire(Shape shape) {
    const std::size_t bytes =
        static_cast<std::size_t>(shape.num_elements()) * sizeof(T);
    const std::size_t offset = AlignUp(cursor_);
    if (offset + bytes > capacity_) {
      Reserve(std::max(offset + bytes, 2 * capacity_));
    }
    cursor_ = offset + bytes;
    return Tensor<T>::FromSpan(std::move(shape),
                               reinterpret_cast<T*>(slab_ + offset));
  }

  /// Rewinds the bump cursor; ViewAt placements are unaffected.
  void Reset() { cursor_ = 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return cursor_; }
  [[nodiscard]] std::byte* data() { return slab_; }

  static constexpr std::size_t AlignUp(std::size_t v) {
    return (v + kAlignment - 1) / kAlignment * kAlignment;
  }

 private:
  void Release();

  std::byte* slab_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t cursor_ = 0;
};

}  // namespace xflow
