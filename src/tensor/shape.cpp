#include "tensor/shape.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xflow {

Shape::Shape(std::vector<DimExt> dims) : dims_(std::move(dims)) {
  for (std::size_t a = 0; a < dims_.size(); ++a) {
    require(dims_[a].extent > 0, "dimension extents must be positive");
    for (std::size_t b = a + 1; b < dims_.size(); ++b) {
      require(dims_[a].name != dims_[b].name,
              "dimension names must be unique within a shape");
    }
  }
}

Shape::Shape(std::string_view names, std::span<const std::int64_t> extents) {
  require(names.size() == extents.size(),
          "names and extents must have equal length");
  std::vector<DimExt> dims;
  dims.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    dims.push_back({names[i], extents[i]});
  }
  *this = Shape(std::move(dims));
}

Shape::Shape(std::string_view names, std::initializer_list<std::int64_t> extents)
    : Shape(names, std::span<const std::int64_t>(extents.begin(), extents.size())) {}

std::string Shape::names() const {
  std::string s;
  s.reserve(dims_.size());
  for (const auto& d : dims_) s += d.name;
  return s;
}

bool Shape::has(char name) const {
  return std::any_of(dims_.begin(), dims_.end(),
                     [&](const DimExt& d) { return d.name == name; });
}

std::int64_t Shape::extent(char name) const {
  for (const auto& d : dims_) {
    if (d.name == name) return d.extent;
  }
  require(false, StrFormat("shape has no dimension '%c'", name));
  return 0;
}

std::int64_t Shape::num_elements() const {
  std::int64_t n = 1;
  for (const auto& d : dims_) n *= d.extent;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size());
  std::int64_t acc = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = acc;
    acc *= dims_[static_cast<std::size_t>(i)].extent;
  }
  return s;
}

std::int64_t Shape::stride(char name) const {
  std::int64_t acc = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    if (dims_[static_cast<std::size_t>(i)].name == name) return acc;
    acc *= dims_[static_cast<std::size_t>(i)].extent;
  }
  require(false, StrFormat("shape has no dimension '%c'", name));
  return 0;
}

Shape Shape::Permuted(std::string_view new_order) const {
  require(new_order.size() == dims_.size(),
          "permutation must cover every dimension exactly once");
  std::vector<DimExt> dims;
  dims.reserve(dims_.size());
  for (char c : new_order) dims.push_back({c, extent(c)});
  return Shape(std::move(dims));
}

std::vector<std::string> AllPermutations(std::string names) {
  std::sort(names.begin(), names.end());
  std::vector<std::string> out;
  do {
    out.push_back(names);
  } while (std::next_permutation(names.begin(), names.end()));
  return out;
}

void ForEachIndex(const Shape& shape,
                  const std::function<void(std::span<const std::int64_t>)>& fn) {
  const int rank = shape.rank();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  if (rank == 0) {
    fn(idx);
    return;
  }
  const auto& dims = shape.dims();
  while (true) {
    fn(idx);
    int d = rank - 1;
    while (d >= 0) {
      auto du = static_cast<std::size_t>(d);
      if (++idx[du] < dims[du].extent) break;
      idx[du] = 0;
      --d;
    }
    if (d < 0) return;
  }
}

}  // namespace xflow
