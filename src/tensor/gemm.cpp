#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

namespace xflow {

namespace {
// Cache blocking. The packed A block (kMB x kKB floats) and B block
// (kKB x kNB) together stay within L2; the accumulator tile row fits in L1.
constexpr std::int64_t kMB = 64;
constexpr std::int64_t kNB = 96;
constexpr std::int64_t kKB = 256;
}  // namespace

template <typename TIn, typename TOut>
void GemmOffsets(const TIn* a, const TIn* b, TOut* c,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> b_k,
                 std::span<const std::int64_t> b_n,
                 std::span<const std::int64_t> c_m,
                 std::span<const std::int64_t> c_n, float alpha, float beta) {
  const auto m_total = static_cast<std::int64_t>(a_m.size());
  const auto n_total = static_cast<std::int64_t>(b_n.size());
  const auto k_total = static_cast<std::int64_t>(a_k.size());

  std::vector<float> a_pack(static_cast<std::size_t>(kMB * kKB));
  std::vector<float> b_pack(static_cast<std::size_t>(kKB * kNB));
  std::vector<float> acc(static_cast<std::size_t>(kMB * kNB));

  for (std::int64_t m0 = 0; m0 < m_total; m0 += kMB) {
    const std::int64_t mb = std::min(kMB, m_total - m0);
    for (std::int64_t n0 = 0; n0 < n_total; n0 += kNB) {
      const std::int64_t nb = std::min(kNB, n_total - n0);
      std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(mb * nb),
                0.0f);

      for (std::int64_t k0 = 0; k0 < k_total; k0 += kKB) {
        const std::int64_t kb = std::min(kKB, k_total - k0);
        // Pack A block as [mb][kb] and B block as [kb][nb], converting to
        // fp32 once so the inner loop is pure fp32 FMA.
        for (std::int64_t m = 0; m < mb; ++m) {
          const std::int64_t am = a_m[static_cast<std::size_t>(m0 + m)];
          float* dst = &a_pack[static_cast<std::size_t>(m * kb)];
          for (std::int64_t k = 0; k < kb; ++k) {
            dst[k] = float(a[am + a_k[static_cast<std::size_t>(k0 + k)]]);
          }
        }
        for (std::int64_t k = 0; k < kb; ++k) {
          const std::int64_t bk = b_k[static_cast<std::size_t>(k0 + k)];
          float* dst = &b_pack[static_cast<std::size_t>(k * nb)];
          for (std::int64_t n = 0; n < nb; ++n) {
            dst[n] = float(b[bk + b_n[static_cast<std::size_t>(n0 + n)]]);
          }
        }
        for (std::int64_t m = 0; m < mb; ++m) {
          const float* ap = &a_pack[static_cast<std::size_t>(m * kb)];
          float* accrow = &acc[static_cast<std::size_t>(m * nb)];
          for (std::int64_t k = 0; k < kb; ++k) {
            const float av = ap[k];
            const float* bp = &b_pack[static_cast<std::size_t>(k * nb)];
            for (std::int64_t n = 0; n < nb; ++n) {
              accrow[n] += av * bp[n];
            }
          }
        }
      }

      for (std::int64_t m = 0; m < mb; ++m) {
        const std::int64_t cm = c_m[static_cast<std::size_t>(m0 + m)];
        const float* accrow = &acc[static_cast<std::size_t>(m * nb)];
        for (std::int64_t n = 0; n < nb; ++n) {
          TOut& dst = c[cm + c_n[static_cast<std::size_t>(n0 + n)]];
          const float prior = beta == 0.0f ? 0.0f : beta * float(dst);
          dst = TOut(alpha * accrow[n] + prior);
        }
      }
    }
  }
}

template void GemmOffsets<Half, Half>(
    const Half*, const Half*, Half*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<float, float>(
    const float*, const float*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<Half, float>(
    const Half*, const Half*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);

}  // namespace xflow
